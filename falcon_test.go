package falcon

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"falcon/internal/core"
	"falcon/internal/datagen"
	"falcon/internal/table"
)

// dsLabeler wraps a generated dataset's ground truth as a Labeler keyed by
// a hidden row-identity column lookup (here we just compare against truth
// by re-finding the rows; datasets are small in tests so a value-keyed map
// works).
func dsLabeler(d *datagen.Dataset) Labeler {
	type key struct{ a, b string }
	truth := map[key]bool{}
	join := func(vs []string) string { return strings.Join(vs, "\x1f") }
	for p := range d.Truth {
		truth[key{join(d.A.Tuples[p.A].Values), join(d.B.Tuples[p.B].Values)}] = true
	}
	return LabelerFunc(func(a, b []string) bool {
		return truth[key{join(a), join(b)}]
	})
}

func scoreF1(d *datagen.Dataset, matches []Pair) float64 {
	pred := make([]table.Pair, len(matches))
	for i, m := range matches {
		pred[i] = table.Pair{A: m.ARow, B: m.BRow}
	}
	tp := 0
	seen := map[table.Pair]bool{}
	for _, p := range pred {
		if seen[p] {
			continue
		}
		seen[p] = true
		if d.Truth[p] {
			tp++
		}
	}
	if len(seen) == 0 || len(d.Truth) == 0 {
		return 0
	}
	prec := float64(tp) / float64(len(seen))
	rec := float64(tp) / float64(len(d.Truth))
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("books", "title", "price")
	tb.Append("dune", "9.99")
	tb.Append("hyperion", "12.50")
	if tb.Len() != 2 || tb.Name() != "books" {
		t.Fatalf("table = %s/%d", tb.Name(), tb.Len())
	}
	if cols := tb.Columns(); len(cols) != 2 || cols[1] != "price" {
		t.Fatalf("columns = %v", cols)
	}
	row := tb.Row(0)
	row[0] = "mutated"
	if tb.Row(0)[0] != "dune" {
		t.Fatal("Row should return a copy")
	}
}

func TestReadCSV(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("a,b\n1,x\n2,y\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if _, err := ReadCSV(strings.NewReader(""), "t"); err == nil {
		t.Fatal("empty CSV should error")
	}
}

func TestMatchValidation(t *testing.T) {
	tb := NewTable("x", "a")
	if _, err := Match(nil, tb, LabelerFunc(func(a, b []string) bool { return false })); err == nil {
		t.Fatal("nil table should error")
	}
	if _, err := Match(tb, tb, nil); err != ErrNilLabeler {
		t.Fatal("nil labeler should return ErrNilLabeler")
	}
}

func TestMatchEndToEnd(t *testing.T) {
	d := datagen.Songs(600, 42)
	report, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(1),
		WithSampleSize(3000),
		WithMaxIterations(10),
		WithBlocking(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !report.UsedBlocking {
		t.Fatal("blocking not used")
	}
	if f1 := scoreF1(d, report.Matches); f1 < 0.7 {
		t.Fatalf("F1 = %.3f, want ≥0.7", f1)
	}
	if report.CrowdCost <= 0 || report.Questions <= 0 {
		t.Fatalf("cost accounting: $%.2f / %d questions", report.CrowdCost, report.Questions)
	}
	if report.TotalTime <= 0 || report.CrowdTime <= 0 {
		t.Fatal("time accounting missing")
	}
	if report.MaskedMachineTime+report.UnmaskedMachineTime != report.MachineTime {
		t.Fatal("masking accounting inconsistent")
	}
	if len(report.PerOperator) == 0 {
		t.Fatal("no per-operator breakdown")
	}
	if report.RulesRetained <= 0 || report.RulesLearned < report.RulesRetained {
		t.Fatalf("rules: %d/%d", report.RulesRetained, report.RulesLearned)
	}
	if report.Strategy == "" {
		t.Fatal("no strategy reported")
	}
}

func TestMatchInHouseCrowd(t *testing.T) {
	d := datagen.Drugs(300, 7)
	report, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(2),
		WithSampleSize(2000),
		WithMaxIterations(8),
		WithBlocking(true),
		WithInHouseCrowd(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Crowd of one: one answer per question → cost = questions × 2¢.
	if report.CrowdCost != float64(report.Questions)*0.02 {
		t.Fatalf("in-house cost %.2f != questions %d × $0.02", report.CrowdCost, report.Questions)
	}
	if f1 := scoreF1(d, report.Matches); f1 < 0.6 {
		t.Fatalf("drug matching F1 = %.3f", f1)
	}
}

func TestMatchBudgetOption(t *testing.T) {
	d := datagen.Songs(400, 9)
	_, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(3), WithSampleSize(2000), WithMaxIterations(10),
		WithBlocking(true), WithBudget(0.05))
	if err == nil {
		t.Fatal("five-cent budget should fail")
	}
}

func TestMatchWithoutMaskingStillCorrect(t *testing.T) {
	d := datagen.Songs(400, 11)
	on, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(4), WithSampleSize(2000), WithMaxIterations(8), WithBlocking(true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(4), WithSampleSize(2000), WithMaxIterations(8), WithBlocking(true), WithoutMasking())
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Matches) != len(off.Matches) {
		t.Fatalf("masking changed results: %d vs %d matches", len(on.Matches), len(off.Matches))
	}
	if off.MaskedMachineTime != 0 {
		t.Fatalf("unmasked run reports masked time %v", off.MaskedMachineTime)
	}
}

func TestWithStrategyOption(t *testing.T) {
	d := datagen.Songs(300, 13)
	report, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(5), WithSampleSize(1500), WithMaxIterations(6),
		WithBlocking(true), WithStrategy("apply-greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Strategy != "apply-greedy" {
		t.Fatalf("strategy = %s", report.Strategy)
	}
}

func TestWithStrategyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WithStrategy("bogus")(&config{})
}

func TestWithClusterOption(t *testing.T) {
	c := &config{opt: core.DefaultOptions()}
	WithCluster(5, 4, 1<<30)(c)
	if c.opt.Cluster.Nodes != 5 || c.opt.Cluster.SlotsPerNode != 4 {
		t.Fatalf("cluster = %+v", c.opt.Cluster)
	}
}

func TestMatchWithAccuracyEstimate(t *testing.T) {
	d := datagen.Songs(400, 17)
	report, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(6), WithSampleSize(2000), WithMaxIterations(8),
		WithBlocking(true), WithAccuracyEstimate())
	if err != nil {
		t.Fatal(err)
	}
	if report.Estimate == nil {
		t.Fatal("no estimate in report")
	}
	if report.Estimate.F1 < 0 || report.Estimate.F1 > 1 {
		t.Fatalf("estimated F1 = %v", report.Estimate.F1)
	}
	if report.Estimate.Labeled == 0 {
		t.Fatal("estimator asked nothing")
	}
}

func TestMatchWithIterativeWorkflow(t *testing.T) {
	d := datagen.Songs(400, 19)
	report, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(8), WithSampleSize(2000), WithMaxIterations(4),
		WithBlocking(true), WithIterativeWorkflow(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.RoundF1) < 1 || len(report.RoundF1) > 3 {
		t.Fatalf("RoundF1 = %v", report.RoundF1)
	}
	if f1 := scoreF1(d, report.Matches); f1 < 0.6 {
		t.Fatalf("iterated F1 = %.3f", f1)
	}
}

func TestModelExportAndApply(t *testing.T) {
	d := datagen.Songs(400, 23)
	report, err := Match(WrapTable(d.A), WrapTable(d.B), dsLabeler(d),
		WithSeed(10), WithSampleSize(2000), WithMaxIterations(8), WithBlocking(true))
	if err != nil {
		t.Fatal(err)
	}
	blob := report.Model()
	if len(blob) == 0 {
		t.Fatal("no model exported")
	}
	// Re-apply to the same tables: no crowd, similar matches.
	again, err := ApplyModel(blob, WrapTable(d.A), WrapTable(d.B))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) == 0 {
		t.Fatal("model found nothing on re-apply")
	}
	if f1 := scoreF1(d, again); f1 < 0.6 {
		t.Fatalf("re-applied model F1 = %.3f", f1)
	}
	// Re-apply to a *fresh* same-shape dataset: the learned model
	// transfers without any further crowdsourcing.
	d2 := datagen.Songs(400, 77)
	fresh, err := ApplyModel(blob, WrapTable(d2.A), WrapTable(d2.B))
	if err != nil {
		t.Fatal(err)
	}
	if f1 := scoreF1(d2, fresh); f1 < 0.5 {
		t.Fatalf("transferred model F1 = %.3f", f1)
	}
	// Garbage rejects.
	if _, err := ApplyModel([]byte("junk"), WrapTable(d.A), WrapTable(d.B)); err == nil {
		t.Fatal("junk model should fail")
	}
}

func TestDedupSingleTable(t *testing.T) {
	// A songs table with planted duplicate clusters: rows 2i and 2i+1 are
	// the same song for the first half of the table.
	tb := NewTable("songs", "title", "artist", "year")
	truthPairs := map[Pair]bool{}
	base := []struct{ title, artist, year string }{
		{"whispering bells", "the del vikings", "1957"},
		{"blue moon river", "the ramblers", "1961"},
		{"midnight golden road", "los echoes", "1973"},
		{"summer rain dance", "dj strangers", "1988"},
		{"broken city light", "mc foxes", "1994"},
	}
	row := 0
	for _, s := range base {
		tb.Append(s.title, s.artist, s.year)
		tb.Append(s.title, s.artist+"s", s.year) // dirty duplicate
		truthPairs[Pair{ARow: row, BRow: row + 1}] = true
		row += 2
	}
	distinct := []string{"alpha night", "beta fire", "gamma dream", "delta heart", "epsilon ghost",
		"zeta road", "eta home", "theta rain", "iota river", "kappa wild"}
	for i, title := range distinct {
		tb.Append(title+" song", "artist "+title, fmt.Sprint(1950+i))
	}

	norm := func(vs []string) string { return strings.ToLower(vs[0]) + "|" + vs[2] }
	labeler := LabelerFunc(func(a, b []string) bool { return norm(a) == norm(b) })

	report, err := Dedup(tb, labeler, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	found := map[Pair]bool{}
	for _, m := range report.Matches {
		if m.ARow >= m.BRow {
			t.Fatalf("non-canonical or self pair %v", m)
		}
		if found[m] {
			t.Fatalf("duplicate pair %v", m)
		}
		found[m] = true
	}
	hits := 0
	for p := range truthPairs {
		if found[p] {
			hits++
		}
	}
	if hits < 4 {
		t.Fatalf("dedup found %d/5 planted duplicate pairs (matches: %v)", hits, report.Matches)
	}
}
