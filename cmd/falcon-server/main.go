// Command falcon-server runs the EM-as-a-cloud-service HTTP front end of
// the paper's Example 1: submit two CSV tables and a crowd budget, poll the
// job, download the matches and the learned model.
//
//	falcon-server -addr :8080
//
//	curl -F tableA=@a.csv -F tableB=@b.csv -F oracle_key=isbn \
//	     -F budget=300 http://localhost:8080/jobs
//	curl http://localhost:8080/jobs/job-1
//	curl http://localhost:8080/jobs/job-1/matches
//	curl http://localhost:8080/jobs/job-1/model
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"falcon/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobTimeout := flag.Duration("job-timeout", 0, "cancel jobs running longer than this (0 = no limit)")
	flag.Parse()

	var opts []service.Option
	if *jobTimeout > 0 {
		opts = append(opts, service.WithJobTimeout(*jobTimeout))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.New(opts...),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("falcon EM service listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
