// Command falcon-bench regenerates the paper's evaluation (§11): every
// table and figure plus the additional sensitivity studies, on the
// synthetic datasets at a configurable scale.
//
//	falcon-bench -exp all                 # everything, default scale
//	falcon-bench -exp table2 -scale 0.2   # Table 2 at 20% of paper sizes
//	falcon-bench -exp fig9 -dataset Songs
//
// Experiments: table1 table2 table3 table4 table5 fig9 fig10 blockers
// memory cluster sample itercap kbb ruleseq costcap drugs all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"falcon/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (comma-separated or 'all')")
		scale   = flag.Float64("scale", 0.08, "dataset scale factor (1.0 = paper sizes)")
		seed    = flag.Int64("seed", 5, "random seed")
		runs    = flag.Int("runs", 3, "runs per dataset for averaged tables")
		alIter  = flag.Int("al-iter", 12, "active-learning iteration cap")
		errRate = flag.Float64("error-rate", 0, "simulated crowd error rate")
		dataset = flag.String("dataset", "Songs", "dataset for single-dataset experiments (Products|Songs|Citations)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:   *scale,
		Seed:    *seed,
		Runs:    *runs,
		ALIter:  *alIter,
		ErrRate: *errRate,
		Out:     os.Stdout,
	}
	ds := experiments.DatasetName(*dataset)

	all := map[string]func() error{
		"table1": cfg.Table1,
		"table2": func() error { _, err := cfg.Table2(); return err },
		"table3": func() error { _, err := cfg.Table3(); return err },
		"table4": func() error { _, err := cfg.Table4(); return err },
		"table5": func() error { _, err := cfg.Table5(); return err },
		"fig9":   func() error { _, err := cfg.Fig9(ds); return err },
		"fig10":  func() error { _, err := cfg.Fig10(ds); return err },
		"blockers": func() error {
			_, _, err := cfg.Blockers(ds)
			return err
		},
		"memory":   func() error { _, err := cfg.MemorySweep(ds); return err },
		"cluster":  func() error { _, err := cfg.ClusterSweep(ds); return err },
		"sample":   func() error { _, err := cfg.SampleSweep(ds); return err },
		"itercap":  func() error { _, err := cfg.IterCapSweep(ds); return err },
		"kbb":      func() error { _, err := cfg.KBB(); return err },
		"ruleseq":  func() error { _, err := cfg.RuleSeq(ds); return err },
		"costcap":  func() error { cfg.CostCap(); return nil },
		"drugs":    func() error { _, err := cfg.DrugsStudy(); return err },
		"corleone": func() error { _, err := cfg.CorleoneVsFalcon(); return err },
	}
	order := []string{"table1", "table2", "table3", "table4", "table5",
		"fig9", "fig10", "blockers", "memory", "cluster", "sample",
		"itercap", "kbb", "ruleseq", "costcap", "drugs", "corleone"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		selected = strings.Split(*exp, ",")
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		fn, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "falcon-bench: unknown experiment %q (known: %s)\n", name, strings.Join(order, " "))
			os.Exit(1)
		}
		fmt.Printf("===== %s =====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "falcon-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
