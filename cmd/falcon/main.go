// Command falcon runs hands-off crowdsourced entity matching over two CSV
// files — the paper's "EM as a cloud service" front end (Example 1): submit
// two tables and a budget, get back the matching row pairs.
//
// The crowd is pluggable:
//
//	-oracle-key <col>   simulate a crowd from a shared key column (demo
//	                    mode; the column is hidden from the learner)
//	-interactive        you are the crowd: answer match questions on stdin
//	                    (an in-house "crowd of one", as in §11.1)
//	-error-rate <p>     simulated worker error rate on top of the oracle
//
// Example:
//
//	falcon -a dblp.csv -b citeseer.csv -oracle-key paper_id -budget 300 \
//	       -out matches.csv
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"falcon"
	"falcon/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "falcon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		aPath       = flag.String("a", "", "CSV file for table A (required)")
		bPath       = flag.String("b", "", "CSV file for table B (required)")
		oracleKey   = flag.String("oracle-key", "", "column whose equality defines ground truth (simulation mode); hidden from the learner")
		interactive = flag.Bool("interactive", false, "answer match questions yourself on stdin")
		errorRate   = flag.Float64("error-rate", 0, "simulated crowd error rate (0..1)")
		budget      = flag.Float64("budget", 0, "crowd budget in dollars (0 = only the $349.60 structural cap)")
		seed        = flag.Int64("seed", 1, "random seed")
		sampleN     = flag.Int("sample", 0, "sample_pairs size (0 = 1M default)")
		maxIter     = flag.Int("max-iter", 30, "active-learning iteration cap")
		outPath     = flag.String("out", "", "write matches as CSV (default: stdout summary only)")
		noMask      = flag.Bool("no-masking", false, "disable the §10.2 masking optimizations")
		timeout     = flag.Duration("timeout", 0, "abort the run after this much wall time (0 = no limit)")
		workers     = flag.Int("workers", 0, "worker goroutines for cluster tasks (0 = NumCPU; results are identical either way)")
		gantt       = flag.Bool("gantt", false, "print an ASCII Gantt chart of the simulated timeline")
		explain     = flag.Bool("explain", false, "print the executed EM plan (RDBMS EXPLAIN style)")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		flag.Usage()
		return fmt.Errorf("both -a and -b are required")
	}
	if *oracleKey == "" && !*interactive {
		return fmt.Errorf("choose a crowd: -oracle-key <col> or -interactive")
	}

	a, err := falcon.ReadCSVFile(*aPath)
	if err != nil {
		return err
	}
	b, err := falcon.ReadCSVFile(*bPath)
	if err != nil {
		return err
	}
	fmt.Printf("A: %s (%d rows), B: %s (%d rows)\n", a.Name(), a.Len(), b.Name(), b.Len())

	var labeler falcon.Labeler
	var opts []falcon.Option
	switch {
	case *interactive:
		labeler = &stdinLabeler{in: bufio.NewScanner(os.Stdin), aCols: a.Columns(), bCols: b.Columns()}
		opts = append(opts, falcon.WithInHouseCrowd(0))
	default:
		aKey, bKey := colIndex(a.Columns(), *oracleKey), colIndex(b.Columns(), *oracleKey)
		if aKey < 0 || bKey < 0 {
			return fmt.Errorf("oracle key %q missing from a table", *oracleKey)
		}
		labeler = falcon.LabelerFunc(func(ar, br []string) bool {
			av := strings.TrimSpace(strings.ToLower(ar[aKey]))
			bv := strings.TrimSpace(strings.ToLower(br[bKey]))
			return av != "" && av == bv
		})
		opts = append(opts, falcon.WithCrowdErrorRate(*errorRate))
	}

	opts = append(opts,
		falcon.WithSeed(*seed),
		falcon.WithBudget(*budget),
		falcon.WithMaxIterations(*maxIter),
	)
	if *sampleN > 0 {
		opts = append(opts, falcon.WithSampleSize(*sampleN))
	}
	if *noMask {
		opts = append(opts, falcon.WithoutMasking())
	}
	if *workers > 0 {
		opts = append(opts, falcon.WithWorkers(*workers))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The CLI reports real elapsed wall time alongside the simulated times;
	// it never feeds back into the deterministic pipeline.
	//falcon:allow determinism user-facing wall-clock timer, not simulation state
	start := time.Now()
	report, err := falcon.MatchContext(ctx, a, b, labeler, opts...)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("aborted after %s: %w", *timeout, err)
		}
		return err
	}

	//falcon:allow determinism same user-facing wall-clock timer as the time.Now above; never feeds the pipeline
	fmt.Printf("\n%d matches found (wall clock %s)\n", len(report.Matches), time.Since(start).Round(time.Millisecond))
	fmt.Printf("plan: blocking=%v strategy=%s rules=%d/%d candidates=%s\n",
		report.UsedBlocking, report.Strategy, report.RulesRetained, report.RulesLearned,
		metrics.FmtCount(int64(report.CandidatePairs)))
	fmt.Printf("crowd: $%.2f for %d questions\n", report.CrowdCost, report.Questions)
	fmt.Printf("simulated times: total=%s crowd=%s machine=%s (masked %s, unmasked %s)\n",
		metrics.FmtDuration(report.TotalTime), metrics.FmtDuration(report.CrowdTime),
		metrics.FmtDuration(report.MachineTime), metrics.FmtDuration(report.MaskedMachineTime),
		metrics.FmtDuration(report.UnmaskedMachineTime))

	if *explain {
		fmt.Printf("\n%s", report.Explain())
	}
	if *gantt {
		fmt.Printf("\n%s", report.Gantt())
	}

	if *outPath != "" {
		if err := writeMatches(*outPath, a, b, report.Matches); err != nil {
			return err
		}
		fmt.Printf("matches written to %s\n", *outPath)
	}
	return nil
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// stdinLabeler implements the interactive crowd of one.
type stdinLabeler struct {
	in           *bufio.Scanner
	aCols, bCols []string
	asked        int
}

// Label implements falcon.Labeler by asking the terminal.
func (s *stdinLabeler) Label(a, b []string) bool {
	s.asked++
	fmt.Printf("\n--- question %d: do these rows match? ---\n", s.asked)
	for i, c := range s.aCols {
		fmt.Printf("  A.%-15s %s\n", c, a[i])
	}
	for i, c := range s.bCols {
		fmt.Printf("  B.%-15s %s\n", c, b[i])
	}
	for {
		fmt.Print("match? [y/n]: ")
		if !s.in.Scan() {
			return false
		}
		switch strings.ToLower(strings.TrimSpace(s.in.Text())) {
		case "y", "yes":
			return true
		case "n", "no":
			return false
		}
	}
}

func writeMatches(path string, a, b *falcon.Table, matches []falcon.Pair) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"a_row", "b_row"}
	for _, c := range a.Columns() {
		header = append(header, "a_"+c)
	}
	for _, c := range b.Columns() {
		header = append(header, "b_"+c)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, m := range matches {
		rec := []string{fmt.Sprint(m.ARow), fmt.Sprint(m.BRow)}
		rec = append(rec, a.Row(m.ARow)...)
		rec = append(rec, b.Row(m.BRow)...)
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
