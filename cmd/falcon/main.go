// Command falcon runs hands-off crowdsourced entity matching over two CSV
// files — the paper's "EM as a cloud service" front end (Example 1): submit
// two tables and a budget, get back the matching row pairs.
//
// The crowd is pluggable:
//
//	-oracle-key <col>   simulate a crowd from a shared key column (demo
//	                    mode; the column is hidden from the learner)
//	-interactive        you are the crowd: answer match questions on stdin
//	                    (an in-house "crowd of one", as in §11.1)
//	-error-rate <p>     simulated worker error rate on top of the oracle
//
// Example:
//
//	falcon -a dblp.csv -b citeseer.csv -oracle-key paper_id -budget 300 \
//	       -out matches.csv
//
// The train/serve split runs the same pipeline in two phases:
//
//	falcon train -a dblp.csv -b citeseer.csv -oracle-key paper_id \
//	             -out matcher.falcon
//	falcon serve -artifact matcher.falcon -addr :8080
//	curl -d '{"record": {"title": "..."}}' http://localhost:8080/match/one
//
// train pays the crowd once and freezes everything matching needs into a
// versioned artifact file; serve loads it and answers point lookups with no
// crowd, no training, and no locks on the hot path.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"falcon"
	"falcon/internal/metrics"
	"falcon/internal/model"
	"falcon/internal/service"
)

func main() {
	var err error
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		switch os.Args[1] {
		case "train":
			err = runTrain(os.Args[2:])
		case "serve":
			err = runServe(os.Args[2:])
		default:
			err = fmt.Errorf("unknown subcommand %q (want train or serve; flat flags run a one-shot batch match)", os.Args[1])
		}
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		aPath       = flag.String("a", "", "CSV file for table A (required)")
		bPath       = flag.String("b", "", "CSV file for table B (required)")
		oracleKey   = flag.String("oracle-key", "", "column whose equality defines ground truth (simulation mode); hidden from the learner")
		interactive = flag.Bool("interactive", false, "answer match questions yourself on stdin")
		errorRate   = flag.Float64("error-rate", 0, "simulated crowd error rate (0..1)")
		budget      = flag.Float64("budget", 0, "crowd budget in dollars (0 = only the $349.60 structural cap)")
		seed        = flag.Int64("seed", 1, "random seed")
		sampleN     = flag.Int("sample", 0, "sample_pairs size (0 = 1M default)")
		maxIter     = flag.Int("max-iter", 30, "active-learning iteration cap")
		outPath     = flag.String("out", "", "write matches as CSV (default: stdout summary only)")
		noMask      = flag.Bool("no-masking", false, "disable the §10.2 masking optimizations")
		timeout     = flag.Duration("timeout", 0, "abort the run after this much wall time (0 = no limit)")
		workers     = flag.Int("workers", 0, "worker goroutines for cluster tasks (0 = NumCPU; results are identical either way)")
		gantt       = flag.Bool("gantt", false, "print an ASCII Gantt chart of the simulated timeline")
		explain     = flag.Bool("explain", false, "print the executed EM plan (RDBMS EXPLAIN style)")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		flag.Usage()
		return fmt.Errorf("both -a and -b are required")
	}
	if *oracleKey == "" && !*interactive {
		return fmt.Errorf("choose a crowd: -oracle-key <col> or -interactive")
	}

	a, err := falcon.ReadCSVFile(*aPath)
	if err != nil {
		return err
	}
	b, err := falcon.ReadCSVFile(*bPath)
	if err != nil {
		return err
	}
	fmt.Printf("A: %s (%d rows), B: %s (%d rows)\n", a.Name(), a.Len(), b.Name(), b.Len())

	labeler, opts, err := buildCrowd(a, b, *oracleKey, *interactive, *errorRate)
	if err != nil {
		return err
	}

	opts = append(opts,
		falcon.WithSeed(*seed),
		falcon.WithBudget(*budget),
		falcon.WithMaxIterations(*maxIter),
	)
	if *sampleN > 0 {
		opts = append(opts, falcon.WithSampleSize(*sampleN))
	}
	if *noMask {
		opts = append(opts, falcon.WithoutMasking())
	}
	if *workers > 0 {
		opts = append(opts, falcon.WithWorkers(*workers))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The CLI reports real elapsed wall time alongside the simulated times;
	// it never feeds back into the deterministic pipeline.
	//falcon:allow determinism user-facing wall-clock timer, not simulation state
	start := time.Now()
	report, err := falcon.MatchContext(ctx, a, b, labeler, opts...)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("aborted after %s: %w", *timeout, err)
		}
		return err
	}

	//falcon:allow determinism same user-facing wall-clock timer as the time.Now above; never feeds the pipeline
	fmt.Printf("\n%d matches found (wall clock %s)\n", len(report.Matches), time.Since(start).Round(time.Millisecond))
	fmt.Printf("plan: blocking=%v strategy=%s rules=%d/%d candidates=%s\n",
		report.UsedBlocking, report.Strategy, report.RulesRetained, report.RulesLearned,
		metrics.FmtCount(int64(report.CandidatePairs)))
	fmt.Printf("crowd: $%.2f for %d questions\n", report.CrowdCost, report.Questions)
	fmt.Printf("simulated times: total=%s crowd=%s machine=%s (masked %s, unmasked %s)\n",
		metrics.FmtDuration(report.TotalTime), metrics.FmtDuration(report.CrowdTime),
		metrics.FmtDuration(report.MachineTime), metrics.FmtDuration(report.MaskedMachineTime),
		metrics.FmtDuration(report.UnmaskedMachineTime))

	if *explain {
		fmt.Printf("\n%s", report.Explain())
	}
	if *gantt {
		fmt.Printf("\n%s", report.Gantt())
	}

	if *outPath != "" {
		if err := writeMatches(*outPath, a, b, report.Matches); err != nil {
			return err
		}
		fmt.Printf("matches written to %s\n", *outPath)
	}
	return nil
}

// buildCrowd wires up the labeler and crowd options shared by the batch and
// train modes: either the interactive crowd-of-one or the key-column oracle.
func buildCrowd(a, b *falcon.Table, oracleKey string, interactive bool, errorRate float64) (falcon.Labeler, []falcon.Option, error) {
	if interactive {
		labeler := &stdinLabeler{in: bufio.NewScanner(os.Stdin), aCols: a.Columns(), bCols: b.Columns()}
		return labeler, []falcon.Option{falcon.WithInHouseCrowd(0)}, nil
	}
	if oracleKey == "" {
		return nil, nil, fmt.Errorf("choose a crowd: -oracle-key <col> or -interactive")
	}
	aKey, bKey := colIndex(a.Columns(), oracleKey), colIndex(b.Columns(), oracleKey)
	if aKey < 0 || bKey < 0 {
		return nil, nil, fmt.Errorf("oracle key %q missing from a table", oracleKey)
	}
	labeler := falcon.LabelerFunc(func(ar, br []string) bool {
		av := strings.TrimSpace(strings.ToLower(ar[aKey]))
		bv := strings.TrimSpace(strings.ToLower(br[bKey]))
		return av != "" && av == bv
	})
	return labeler, []falcon.Option{falcon.WithCrowdErrorRate(errorRate)}, nil
}

// runTrain is the train phase: run the full crowd workflow once and freeze
// the learned matcher plus everything serving needs into an artifact file.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("falcon train", flag.ExitOnError)
	var (
		aPath       = fs.String("a", "", "CSV file for table A (required)")
		bPath       = fs.String("b", "", "CSV file for table B (required)")
		oracleKey   = fs.String("oracle-key", "", "column whose equality defines ground truth (simulation mode)")
		interactive = fs.Bool("interactive", false, "answer match questions yourself on stdin")
		errorRate   = fs.Float64("error-rate", 0, "simulated crowd error rate (0..1)")
		budget      = fs.Float64("budget", 0, "crowd budget in dollars")
		seed        = fs.Int64("seed", 1, "random seed")
		sampleN     = fs.Int("sample", 0, "sample_pairs size (0 = 1M default)")
		maxIter     = fs.Int("max-iter", 30, "active-learning iteration cap")
		outPath     = fs.String("out", "matcher.falcon", "artifact output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" || *bPath == "" {
		fs.Usage()
		return fmt.Errorf("train: both -a and -b are required")
	}
	a, err := falcon.ReadCSVFile(*aPath)
	if err != nil {
		return err
	}
	b, err := falcon.ReadCSVFile(*bPath)
	if err != nil {
		return err
	}
	labeler, opts, err := buildCrowd(a, b, *oracleKey, *interactive, *errorRate)
	if err != nil {
		return err
	}
	opts = append(opts,
		falcon.WithSeed(*seed),
		falcon.WithBudget(*budget),
		falcon.WithMaxIterations(*maxIter),
	)
	if *sampleN > 0 {
		opts = append(opts, falcon.WithSampleSize(*sampleN))
	}
	report, err := falcon.Match(a, b, labeler, opts...)
	if err != nil {
		return err
	}
	if !report.HasArtifact() {
		return fmt.Errorf("train: run learned no matcher; nothing to save")
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := report.SaveArtifact(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	fmt.Printf("trained on %d×%d rows: %d matches, crowd $%.2f for %d questions\n",
		a.Len(), b.Len(), len(report.Matches), report.CrowdCost, report.Questions)
	fmt.Printf("artifact written to %s (%d bytes)\n", *outPath, st.Size())
	return nil
}

// runServe is the serve phase: load a frozen artifact and answer
// POST /match/one point lookups over HTTP — no crowd, no training.
func runServe(args []string) error {
	fs := flag.NewFlagSet("falcon serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		artPath = fs.String("artifact", "", "artifact file written by `falcon train` (optional; server starts empty and accepts PUT /artifacts/current)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := service.New()
	if *artPath != "" {
		f, err := os.Open(*artPath)
		if err != nil {
			return err
		}
		art, err := model.LoadArtifact(f)
		_ = f.Close() // read-only; LoadArtifact already saw every byte
		if err != nil {
			return fmt.Errorf("loading %s: %w", *artPath, err)
		}
		if err := srv.Publish(art); err != nil {
			return fmt.Errorf("publishing %s: %w", *artPath, err)
		}
		log.Printf("published artifact %s", *artPath)
	} else {
		log.Printf("no -artifact given; waiting for PUT /artifacts/current")
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("falcon serving on %s (POST /match/one)", *addr)
	return hs.ListenAndServe()
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// stdinLabeler implements the interactive crowd of one.
type stdinLabeler struct {
	in           *bufio.Scanner
	aCols, bCols []string
	asked        int
}

// Label implements falcon.Labeler by asking the terminal.
func (s *stdinLabeler) Label(a, b []string) bool {
	s.asked++
	fmt.Printf("\n--- question %d: do these rows match? ---\n", s.asked)
	for i, c := range s.aCols {
		fmt.Printf("  A.%-15s %s\n", c, a[i])
	}
	for i, c := range s.bCols {
		fmt.Printf("  B.%-15s %s\n", c, b[i])
	}
	for {
		fmt.Print("match? [y/n]: ")
		if !s.in.Scan() {
			return false
		}
		switch strings.ToLower(strings.TrimSpace(s.in.Text())) {
		case "y", "yes":
			return true
		case "n", "no":
			return false
		}
	}
}

func writeMatches(path string, a, b *falcon.Table, matches []falcon.Pair) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"a_row", "b_row"}
	for _, c := range a.Columns() {
		header = append(header, "a_"+c)
	}
	for _, c := range b.Columns() {
		header = append(header, "b_"+c)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, m := range matches {
		rec := []string{fmt.Sprint(m.ARow), fmt.Sprint(m.BRow)}
		rec = append(rec, a.Row(m.ARow)...)
		rec = append(rec, b.Row(m.BRow)...)
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
