package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"falcon"
)

func TestColIndex(t *testing.T) {
	cols := []string{"Title", "price", "ISBN"}
	if colIndex(cols, "isbn") != 2 {
		t.Fatal("case-insensitive lookup failed")
	}
	if colIndex(cols, "missing") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestWriteMatches(t *testing.T) {
	a := falcon.NewTable("a", "x")
	a.Append("va")
	b := falcon.NewTable("b", "y")
	b.Append("vb")
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := writeMatches(path, a, b, []falcon.Pair{{ARow: 0, BRow: 0}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(string(raw))
	want := "a_row,b_row,a_x,b_y\n0,0,va,vb"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestStdinLabeler(t *testing.T) {
	in := bufio.NewScanner(strings.NewReader("maybe\ny\nn\n"))
	l := &stdinLabeler{in: in, aCols: []string{"x"}, bCols: []string{"y"}}
	if !l.Label([]string{"a"}, []string{"b"}) {
		t.Fatal("'y' after junk should label true")
	}
	if l.Label([]string{"a"}, []string{"b"}) {
		t.Fatal("'n' should label false")
	}
	// EOF defaults to false.
	if l.Label([]string{"a"}, []string{"b"}) {
		t.Fatal("EOF should label false")
	}
	if l.asked != 3 {
		t.Fatalf("asked = %d", l.asked)
	}
}
