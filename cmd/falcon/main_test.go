package main

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"falcon"
	"falcon/internal/datagen"
	"falcon/internal/model"
	"falcon/internal/serve"
	"falcon/internal/table"
)

func TestColIndex(t *testing.T) {
	cols := []string{"Title", "price", "ISBN"}
	if colIndex(cols, "isbn") != 2 {
		t.Fatal("case-insensitive lookup failed")
	}
	if colIndex(cols, "missing") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestWriteMatches(t *testing.T) {
	a := falcon.NewTable("a", "x")
	a.Append("va")
	b := falcon.NewTable("b", "y")
	b.Append("vb")
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := writeMatches(path, a, b, []falcon.Pair{{ARow: 0, BRow: 0}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(string(raw))
	want := "a_row,b_row,a_x,b_y\n0,0,va,vb"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

// writeSongsCSV writes a datagen table plus a hidden match_key oracle
// column to a CSV file and returns its path.
func writeSongsCSV(t *testing.T, dir, name string, src *table.Table, key func(row int) string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(append(append([]string(nil), src.Schema.Names()...), "match_key")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Len(); i++ {
		if err := w.Write(append(append([]string(nil), src.Tuples[i].Values...), key(i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTrainWritesLoadableArtifact runs the train subcommand end to end and
// checks the artifact file it writes resolves into a serving bundle that
// answers a point lookup.
func TestTrainWritesLoadableArtifact(t *testing.T) {
	d := datagen.Songs(60, 42)
	dir := t.TempDir()
	aPath := writeSongsCSV(t, dir, "a.csv", d.A, func(i int) string { return fmt.Sprintf("k%d", i) })
	bPath := writeSongsCSV(t, dir, "b.csv", d.B, func(i int) string {
		for p := range d.Truth {
			if p.B == i {
				return fmt.Sprintf("k%d", p.A)
			}
		}
		return fmt.Sprintf("b%d", i)
	})
	artPath := filepath.Join(dir, "matcher.falcon")

	err := runTrain([]string{"-a", aPath, "-b", bPath, "-oracle-key", "match_key", "-seed", "2", "-out", artPath})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	art, err := model.LoadArtifact(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	bn, err := serve.NewBundle(art)
	if err != nil {
		t.Fatal(err)
	}
	rec := append(append([]string(nil), d.A.Tuples[0].Values...), "k0")
	if _, err := bn.MatchOne(rec); err != nil {
		t.Fatal(err)
	}
}

func TestStdinLabeler(t *testing.T) {
	in := bufio.NewScanner(strings.NewReader("maybe\ny\nn\n"))
	l := &stdinLabeler{in: in, aCols: []string{"x"}, bCols: []string{"y"}}
	if !l.Label([]string{"a"}, []string{"b"}) {
		t.Fatal("'y' after junk should label true")
	}
	if l.Label([]string{"a"}, []string{"b"}) {
		t.Fatal("'n' should label false")
	}
	// EOF defaults to false.
	if l.Label([]string{"a"}, []string{"b"}) {
		t.Fatal("EOF should label false")
	}
	if l.asked != 3 {
		t.Fatalf("asked = %d", l.asked)
	}
}
