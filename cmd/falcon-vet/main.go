// Command falcon-vet runs Falcon's project-specific static-analysis suite:
// zero-dependency analyzers, built on go/parser and go/types, that enforce
// the determinism, cost-accounting, lock-safety, error-handling,
// hot-path-allocation, context-propagation, scratch-escape, task-purity,
// lock-ordering, publish-then-freeze immutability, and serving-budget
// invariants the simulated-cluster evaluation and the lock-free serving
// path depend on. The suite is
// interprocedural: the requested packages' whole dependency closure is
// analyzed in dependency order, and the transdeterminism/ctxflow/
// scratchescape/immutpublish/servebudget analyzers chase violations
// across package boundaries, printing the call chain they followed.
//
// Usage:
//
//	falcon-vet [flags] [patterns]
//
// Patterns default to ./... (every package in the module). Diagnostics
// print as file:line:col: analyzer: message — interprocedural analyzers
// spell out the call chain they followed inside the message; the exit
// status is 1 when any diagnostic is reported and 2 on usage or load
// errors. With -json, each diagnostic is one JSON object per line (file,
// line, col, analyzer, message, chain, suggested_fixes) for CI
// annotation. With -fix, suggested fixes (stale allow-directive removal,
// errcheck explicit discards, sort.Slice modernization, frozen-map
// clone-then-swap rewrites) are applied in place; -fix is idempotent — a
// second run applies zero fixes.
//
// A finding is suppressed by a directive comment on, or directly above,
// the flagged line:
//
//	//falcon:allow <analyzer> <reason>
//
// Directives that no longer suppress anything are themselves reported
// (analyzer name "staleallow"), so the allowlist cannot rot. Two more
// directives mark contracts on a function's doc comment: //falcon:frozen
// (the constructor's results are published — frozen — at every call
// site, enforced by immutpublish) and //falcon:hotpath (the function is
// part of the lock-free serving path and must transitively stay
// lock-free, channel-free, submission-free, and allocation-free,
// enforced by servebudget).
//
// The engine schedules one task per package over the import DAG:
// -parallel N analyzes independent packages concurrently (diagnostics are
// byte-identical to a serial run), -cache DIR keeps a content-addressed
// result cache so unchanged packages are never re-analyzed — a warm
// no-change run skips type-checking entirely — and -diff REF analyzes
// only packages with .go files changed since the git ref plus their
// transitive reverse dependents. Cache hit/miss counts print to stderr
// and always cover the requested packages' whole dependency closure, so
// warm fast-path and partially-cached runs report comparable numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"falcon/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiagnostic is the one-per-line -json output shape.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
	// SuggestedFixes carries the machine-applicable edits -fix would
	// apply, each tagged with the analyzer that proposed it, so the CI
	// artifact stays self-describing.
	SuggestedFixes []jsonFix `json:"suggested_fixes,omitempty"`
}

type jsonFix struct {
	Analyzer string     `json:"analyzer"`
	Message  string     `json:"message"`
	Edits    []jsonEdit `json:"edits"`
}

type jsonEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

func jsonFixes(cwd string, d analysis.Diagnostic) []jsonFix {
	var out []jsonFix
	for _, f := range d.Fixes {
		jf := jsonFix{Analyzer: d.Analyzer, Message: f.Message}
		for _, e := range f.Edits {
			file := e.File
			if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
				file = rel
			}
			jf.Edits = append(jf.Edits, jsonEdit{File: file, Start: e.Start, End: e.End, New: e.New})
		}
		out = append(out, jf)
	}
	return out
}

func run(args []string) int {
	fs := flag.NewFlagSet("falcon-vet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := fs.Bool("json", false, "emit one JSON diagnostic per line (file, line, col, analyzer, message, chain, suggested_fixes)")
	fix := fs.Bool("fix", false, "apply suggested fixes in place; only diagnostics without a fix are reported")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "number of packages analyzed concurrently (1 = serial)")
	cacheDir := fs.String("cache", "", "directory for the content-addressed result cache (empty = no caching)")
	diffRef := fs.String("diff", "", "git ref: analyze only packages with .go files changed since it, plus reverse dependents")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon-vet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon-vet:", err)
		return 2
	}
	res, err := analysis.Vet(analysis.VetRequest{
		Dir:       cwd,
		Patterns:  fs.Args(),
		Analyzers: analyzers,
		Parallel:  *parallel,
		CacheDir:  *cacheDir,
		DiffRef:   *diffRef,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon-vet:", err)
		return 2
	}
	if len(res.Errors) > 0 {
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "falcon-vet: %v\n", e)
		}
		return 2
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "falcon-vet: cache %d hit(s), %d miss(es)\n", len(res.CacheHits), len(res.Analyzed))
	}

	diags := res.Diags
	skipped := 0
	if *fix {
		res, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "falcon-vet:", err)
			return 2
		}
		if err := res.Write(); err != nil {
			fmt.Fprintln(os.Stderr, "falcon-vet:", err)
			return 2
		}
		fmt.Printf("falcon-vet: applied %d fix(es) in %d file(s)\n", res.Applied, len(res.Files))
		// Skipped fixes and unfixable findings remain: report those, so a
		// clean tree plus -fix exits 0 only when nothing is left to do.
		var rest []analysis.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				rest = append(rest, d)
			}
		}
		if res.Skipped > 0 {
			fmt.Printf("falcon-vet: %d overlapping fix(es) skipped; run -fix again\n", res.Skipped)
		}
		skipped = res.Skipped
		diags = rest
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
			pos.Filename = rel
		}
		if *asJSON {
			// One object per line so CI can annotate without buffering; the
			// encoder's write error surfaces as a short count below, and a
			// broken pipe ends the process anyway.
			_ = enc.Encode(jsonDiagnostic{
				File:           pos.Filename,
				Line:           pos.Line,
				Col:            pos.Column,
				Analyzer:       d.Analyzer,
				Message:        d.Message,
				Chain:          d.Chain,
				SuggestedFixes: jsonFixes(cwd, d),
			})
			continue
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 || skipped > 0 {
		fmt.Fprintf(os.Stderr, "falcon-vet: %d finding(s) in %d package(s)\n", len(diags)+skipped, len(res.Requested))
		return 1
	}
	return 0
}
