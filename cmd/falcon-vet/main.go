// Command falcon-vet runs Falcon's project-specific static-analysis suite:
// zero-dependency analyzers, built on go/parser and go/types, that enforce
// the determinism, cost-accounting, lock-safety, and error-handling
// invariants the simulated-cluster evaluation depends on.
//
// Usage:
//
//	falcon-vet [flags] [patterns]
//
// Patterns default to ./... (every package in the module). Diagnostics
// print as file:line:col: analyzer: message; the exit status is 1 when any
// diagnostic is reported and 2 on usage or load errors.
//
// A finding is suppressed by a directive comment on, or directly above,
// the flagged line:
//
//	//falcon:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"falcon/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("falcon-vet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon-vet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon-vet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon-vet:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon-vet:", err)
		return 2
	}
	broken := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "falcon-vet: %s: %v\n", pkg.Path, e)
			broken++
		}
	}
	if broken > 0 {
		return 2
	}

	diags := analysis.Run(analyzers, pkgs)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "falcon-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
