# make check reproduces the CI gate (.github/workflows/ci.yml) locally.

GO ?= go

.PHONY: check fmt vet build falcon-vet falcon-vet-diff vet-fix test race bench scale

check: fmt vet build falcon-vet test race
	@echo "all gates passed"

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# falcon-vet runs the full suite on the parallel DAG scheduler with the
# content-addressed result cache: a warm no-change run skips
# type-checking entirely. falcon-vet-diff only re-analyzes packages with
# .go files changed since origin/main (plus reverse dependents) — the
# pre-commit-speed variant.
falcon-vet:
	$(GO) run ./cmd/falcon-vet -cache .falcon-vet-cache ./...

falcon-vet-diff:
	$(GO) run ./cmd/falcon-vet -cache .falcon-vet-cache -diff origin/main ./...

# vet-fix applies every suggested fix (stale allow-directive removal,
# errcheck explicit discards, sort.Slice modernization, frozen-map
# clone-then-swap rewrites) in place, then reports whatever is left for a
# human.
vet-fix:
	$(GO) run ./cmd/falcon-vet -fix ./...

test:
	$(GO) test ./...

# The race gate also runs the vet engine's parallel scheduler and cache
# under the detector: the serial/parallel/cached byte-identity tests
# exercise every cross-task edge (fact shards, lock-edge streams,
# diagnostics sinks).
race:
	$(GO) test -race ./internal/service/... ./internal/mapreduce/... ./internal/core/... ./internal/serve/...
	$(GO) test -race -run 'TestParallelByteIdentical|TestVetEquality|TestSiblingLockCycle|TestCacheInvalidationMatrix|TestDiffMode' ./internal/analysis/

# bench records the executor worker-pool benchmark (speedup needs >1 CPU),
# the blocking hot-path benchmarks (bit-parallel kernels vs the sorted-merge
# ID baseline vs the retired string reference path, plus the simfn
# set/edit-distance kernel microbenchmarks), the falcon-vet whole-tree
# benchmark (the pre-flow suite, the flow-sensitive layer, the
# publish-then-freeze layer, the out-of-core layer, and all fifteen
# analyzers over the module, loading amortized), and the serving
# point-lookup benchmark (QPS, p99 latency, allocs per request).
bench:
	$(GO) test -run '^$$' -bench BenchmarkExecutorWorkers -benchmem -json \
		./internal/mapreduce/ > BENCH_executor.json
	@echo "wrote BENCH_executor.json"
	$(GO) test -run '^$$' -bench 'BenchmarkBlocking$$|BenchmarkVectorize$$|BenchmarkPrefixProbe$$|BenchmarkJaccardKernels$$|BenchmarkEditDistanceKernels$$' \
		-benchmem -json ./internal/block/ ./internal/feature/ ./internal/index/ ./internal/simfn/ > BENCH_blocking.json
	@echo "wrote BENCH_blocking.json"
	$(GO) test -run '^$$' -bench 'BenchmarkVetTree$$' -benchmem -json \
		./internal/analysis/ > BENCH_vet.json
	@echo "wrote BENCH_vet.json"
	$(GO) test -run '^$$' -bench 'BenchmarkServeMatchOne$$' -benchmem -json \
		./internal/serve/ > BENCH_serve.json
	@echo "wrote BENCH_serve.json"

# scale runs the CI-optional out-of-core long gate: a datagen 1M×1M Songs
# workload executed in-memory and spilled (results must be byte-identical),
# then re-run under an enforced GOMEMLIMIT below the in-memory path's
# measured heap peak. Records makespan + peak memory to BENCH_scale.json.
scale:
	FALCON_SCALE=1 $(GO) test -run 'TestScaleSongs1M$$' -v -timeout 45m \
		./internal/mapreduce/
	@echo "wrote BENCH_scale.json"
