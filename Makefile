# make check reproduces the CI gate (.github/workflows/ci.yml) locally.

GO ?= go

.PHONY: check fmt vet build falcon-vet test race bench

check: fmt vet build falcon-vet test race
	@echo "all gates passed"

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

falcon-vet:
	$(GO) run ./cmd/falcon-vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/... ./internal/mapreduce/... ./internal/core/...

# bench records the executor worker-pool benchmark (speedup needs >1 CPU),
# the blocking hot-path benchmarks (dictionary ID path vs the retired
# string reference path), and the falcon-vet whole-tree benchmark (all
# eight analyzers over the module, loading amortized).
bench:
	$(GO) test -run '^$$' -bench BenchmarkExecutorWorkers -benchmem -json \
		./internal/mapreduce/ > BENCH_executor.json
	@echo "wrote BENCH_executor.json"
	$(GO) test -run '^$$' -bench 'BenchmarkBlocking$$|BenchmarkVectorize$$|BenchmarkPrefixProbe$$' \
		-benchmem -json ./internal/block/ ./internal/feature/ ./internal/index/ > BENCH_blocking.json
	@echo "wrote BENCH_blocking.json"
	$(GO) test -run '^$$' -bench 'BenchmarkVetTree$$' -benchmem -json \
		./internal/analysis/ > BENCH_vet.json
	@echo "wrote BENCH_vet.json"
