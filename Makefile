# make check reproduces the CI gate (.github/workflows/ci.yml) locally.

GO ?= go

.PHONY: check fmt vet build falcon-vet test race

check: fmt vet build falcon-vet test race
	@echo "all gates passed"

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

falcon-vet:
	$(GO) run ./cmd/falcon-vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/... ./internal/mapreduce/...
