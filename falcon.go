// Package falcon provides hands-off crowdsourced entity matching as a
// library — a from-scratch reproduction of "Falcon: Scaling Up Hands-Off
// Crowdsourced Entity Matching to Build Cloud Services" (SIGMOD 2017).
//
// Given two tables A and B, Falcon finds all pairs of rows that refer to
// the same real-world entity, with no developer in the loop: blocking
// rules and matchers are learned by asking a crowd (or any Labeler) to
// label a bounded number of row pairs. The EM task compiles to an
// RDBMS-style plan of eight operators executed over a simulated Hadoop
// cluster, and machine work is masked inside crowd-wait time.
//
// Quickstart:
//
//	a, _ := falcon.ReadCSVFile("a.csv")
//	b, _ := falcon.ReadCSVFile("b.csv")
//	report, err := falcon.Match(a, b, myLabeler,
//	    falcon.WithBudget(300),
//	    falcon.WithSeed(1))
//	for _, m := range report.Matches { ... }
//
// The Labeler answers "do these two rows match?" — a Mechanical-Turk-style
// simulated crowd (with configurable error rate and HIT latency) wraps it
// by default, reproducing the paper's crowdsourcing mechanics: 10-question
// HITs, majority and strong-majority voting, 2¢ per answer, and the §3.4
// cost cap.
package falcon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"falcon/internal/block"
	"falcon/internal/core"
	"falcon/internal/crowd"
	"falcon/internal/mapreduce"
	"falcon/internal/model"
	"falcon/internal/table"
	"falcon/internal/vclock"
)

// Table is a named relation loaded from CSV or built row by row.
type Table struct {
	t *table.Table
}

// NewTable creates an empty table with the given column names.
func NewTable(name string, columns ...string) *Table {
	return &Table{t: table.New(name, table.NewSchema(columns...))}
}

// Append adds a row. It panics if the value count does not match the
// column count.
func (t *Table) Append(values ...string) { t.t.Append(values...) }

// Len returns the number of rows.
func (t *Table) Len() int { return t.t.Len() }

// Name returns the table name.
func (t *Table) Name() string { return t.t.Name }

// Columns returns the column names.
func (t *Table) Columns() []string { return t.t.Schema.Names() }

// Row returns a copy of row i's values.
func (t *Table) Row(i int) []string {
	return append([]string(nil), t.t.Tuples[i].Values...)
}

// ReadCSV parses a table (header row + records) from r.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	t, err := table.ReadCSV(r, name)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// ReadCSVFile parses a table from a CSV file.
func ReadCSVFile(path string) (*Table, error) {
	t, err := table.ReadCSVFile(path)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// Internal returns the underlying table for advanced integrations (cmd,
// benchmarks); most users never need it.
func (t *Table) Internal() *table.Table { return t.t }

// WrapTable adopts an internal table as a public Table.
func WrapTable(t *table.Table) *Table { return &Table{t: t} }

// Labeler answers match questions about raw row values. It stands in for
// the ground truth behind the crowd: simulated workers perturb its answers
// with their error rate.
type Labeler interface {
	Label(aRow, bRow []string) bool
}

// LabelerFunc adapts a function to the Labeler interface.
type LabelerFunc func(aRow, bRow []string) bool

// Label implements Labeler.
func (f LabelerFunc) Label(a, b []string) bool { return f(a, b) }

// Pair identifies one predicted match by row indexes into A and B.
type Pair struct {
	ARow, BRow int
}

// OperatorTime is the crowd/machine time split of one plan operator.
type OperatorTime struct {
	Crowd   time.Duration
	Machine time.Duration
}

// Report is the outcome of a Match run.
type Report struct {
	// Matches are the predicted matching row pairs.
	Matches []Pair
	// CandidatePairs is the number of pairs surviving blocking.
	CandidatePairs int
	// UsedBlocking reports whether the blocking plan template ran.
	UsedBlocking bool
	// Strategy names the physical operator used by apply_blocking_rules.
	Strategy string
	// RulesLearned / RulesRetained count candidate blocking rules and the
	// crowd-validated survivors.
	RulesLearned  int
	RulesRetained int

	// CrowdCost is the crowd spend in dollars; Questions the number of
	// row pairs sent to the crowd.
	CrowdCost float64
	Questions int

	// Time accounting in the paper's terms (§3.4): TotalTime ≈ CrowdTime
	// + UnmaskedMachineTime.
	CrowdTime           time.Duration
	MachineTime         time.Duration
	MaskedMachineTime   time.Duration
	UnmaskedMachineTime time.Duration
	TotalTime           time.Duration
	// PerOperator breaks times down by plan operator (Table 4).
	PerOperator map[string]OperatorTime

	// Estimate carries the Accuracy Estimator's crowd-based estimate (nil
	// unless WithAccuracyEstimate or WithIterativeWorkflow was set).
	Estimate *AccuracyEstimate
	// RoundF1 records the estimated F1 of each iterative-workflow round.
	RoundF1 []float64

	modelJSON []byte
	artifact  *model.MatcherArtifact
	gantt     string
	explain   string
}

// Explain returns the executed EM plan in RDBMS EXPLAIN style: operators in
// execution order with crowd/machine/masked times, the learned rule
// sequence, the chosen physical blocking operator, and totals.
func (r *Report) Explain() string { return r.explain }

// Gantt returns an ASCII Gantt chart of the run's virtual timeline: crowd
// activity (▒) and cluster activity (█) per operator, showing what masking
// hid under crowd time.
func (r *Report) Gantt() string { return r.gantt }

// Model returns the learned model (blocking rules + matcher) serialized as
// JSON. Feed it to ApplyModel to re-match schema-compatible tables with no
// crowd involvement. Returns nil if the run learned no matcher.
func (r *Report) Model() []byte { return r.modelJSON }

// SaveArtifact writes the run's complete serving artifact — model, frozen B
// table, token dictionaries, corpus statistics, and prefix indexes — in the
// versioned binary format that `falcon serve` and the falcon-server artifact
// endpoints load. Returns an error if the run learned no matcher.
func (r *Report) SaveArtifact(w io.Writer) error {
	if r.artifact == nil {
		return fmt.Errorf("falcon: run learned no matcher; no artifact to save")
	}
	return r.artifact.Save(w)
}

// HasArtifact reports whether the run produced a serving artifact.
func (r *Report) HasArtifact() bool { return r.artifact != nil }

// ApplyModel re-applies a previously learned model to two tables: it runs
// the stored blocking-rule sequence and matcher, asking the crowd nothing.
func ApplyModel(modelJSON []byte, a, b *Table) ([]Pair, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("falcon: nil table")
	}
	m, err := model.Load(bytes.NewReader(modelJSON))
	if err != nil {
		return nil, err
	}
	a.Internal().InferTypes()
	b.Internal().InferTypes()
	matches, _, err := m.Apply(nil, a.Internal(), b.Internal())
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(matches))
	for i, p := range matches {
		out[i] = Pair{ARow: p.A, BRow: p.B}
	}
	return out, nil
}

// AccuracyEstimate is the crowd-estimated quality of the final matcher.
type AccuracyEstimate struct {
	Precision    float64
	PrecisionErr float64
	Recall       float64
	RecallErr    float64
	F1           float64
	// Labeled counts the extra pairs the estimator sent to the crowd.
	Labeled int
}

// config collects option state.
type config struct {
	opt          core.Options
	errRate      float64
	latency      time.Duration
	inHouse      bool
	platform     crowd.Platform
	workers      int
	spillRecords int
	spillDir     string
}

// Option customizes a Match run.
type Option func(*config)

// WithSeed fixes all randomness, making runs reproducible.
func WithSeed(seed int64) Option {
	return func(c *config) { c.opt.Seed = seed }
}

// WithBudget caps crowd spending in dollars; exceeding it aborts the run
// with an error. The structural cap C_max (§3.4) applies regardless.
func WithBudget(dollars float64) Option {
	return func(c *config) { c.opt.Budget = dollars }
}

// WithCluster configures the simulated Hadoop cluster (default: 10 nodes ×
// 8 slots, 2 GB mapper memory).
func WithCluster(nodes, slotsPerNode int, mapperMemory int64) Option {
	return func(c *config) {
		c.opt.Cluster = &mapreduce.Cluster{Nodes: nodes, SlotsPerNode: slotsPerNode, MapperMemory: mapperMemory}
	}
}

// WithWorkers caps how many goroutines execute cluster tasks concurrently
// (default: runtime.NumCPU()). It is an execution knob only — results,
// counters, and simulated times are byte-identical for any worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithSpill bounds shuffle memory (out-of-core execution): each cluster
// map task buffers at most records shuffle pairs per reduce partition,
// spilling sorted runs to temp files under dir (default os.TempDir())
// that reducers stream back through a merge. Like WithWorkers it is an
// execution knob only — results, counters, and simulated times are
// byte-identical to the in-memory shuffle at any threshold. records <= 0
// keeps the shuffle fully in memory.
func WithSpill(records int, dir string) Option {
	return func(c *config) {
		c.spillRecords = records
		c.spillDir = dir
	}
}

// WithSampleSize sets the sample_pairs size (paper default 1M).
func WithSampleSize(n int) Option {
	return func(c *config) { c.opt.SampleN = n }
}

// WithMaxIterations caps active-learning crowd iterations (default 30).
func WithMaxIterations(k int) Option {
	return func(c *config) { c.opt.ALIterations = k }
}

// WithCrowdErrorRate simulates workers who answer incorrectly with the
// given probability (Corleone's random-worker model).
func WithCrowdErrorRate(rate float64) Option {
	return func(c *config) { c.errRate = rate }
}

// WithCrowdLatency sets the simulated latency of one 10-question HIT
// (default 1.5 minutes, as measured on Mechanical Turk).
func WithCrowdLatency(d time.Duration) Option {
	return func(c *config) { c.latency = d }
}

// WithInHouseCrowd uses a single dedicated expert labeler (a "crowd of
// one", as in the paper's drug-matching deployment): one answer per
// question, no worker error, short latency.
func WithInHouseCrowd(latency time.Duration) Option {
	return func(c *config) {
		c.inHouse = true
		c.latency = latency
	}
}

// WithAccuracyEstimate enables the Accuracy Estimator extension: after
// matching, the crowd labels stratified samples of the predictions and the
// report carries estimated precision/recall with confidence margins.
func WithAccuracyEstimate() Option {
	return func(c *config) { c.opt.EstimateAccuracy = true }
}

// WithIterativeWorkflow enables the full Corleone workflow (paper Fig. 1):
// estimate the matcher's accuracy, crowd-label the most difficult pairs,
// retrain, and repeat up to `rounds` times or until the estimated accuracy
// stops improving. Implies WithAccuracyEstimate.
func WithIterativeWorkflow(rounds int) Option {
	return func(c *config) {
		c.opt.EstimateAccuracy = true
		c.opt.IterateRounds = rounds
	}
}

// WithoutMasking disables all three §10.2 masking optimizations (the
// unoptimized baseline of Table 5).
func WithoutMasking() Option {
	return func(c *config) {
		c.opt.MaskIndexBuild = false
		c.opt.Speculative = false
		c.opt.MaskedSelection = false
	}
}

// WithBlocking forces the plan-template choice: true always blocks, false
// always takes the matcher-only plan.
func WithBlocking(on bool) Option {
	return func(c *config) { c.opt.ForceBlocking = &on }
}

// WithStrategy forces apply_blocking_rules' physical operator. Valid names:
// apply-all, apply-greedy, apply-conjunct, apply-predicate, map-side,
// reduce-split.
func WithStrategy(name string) Option {
	return func(c *config) {
		for s := block.ApplyAll; s <= block.ReduceSplit; s++ {
			if s.String() == name {
				c.opt.ForceStrategy = &s
				return
			}
		}
		panic("falcon: unknown strategy " + name)
	}
}

// ErrNilLabeler is returned when Match is called without a labeler.
var ErrNilLabeler = errors.New("falcon: Match requires a Labeler")

// Dedup finds duplicate rows *within* one table — the paper's Songs task
// matches a table of songs against itself. Self-pairs are excluded
// throughout the pipeline, and each duplicate pair is reported once with
// ARow < BRow.
func Dedup(t *Table, labeler Labeler, opts ...Option) (*Report, error) {
	return DedupContext(context.Background(), t, labeler, opts...)
}

// DedupContext is Dedup honoring ctx cancellation; see MatchContext.
func DedupContext(ctx context.Context, t *Table, labeler Labeler, opts ...Option) (*Report, error) {
	report, err := MatchContext(ctx, t, t, labeler, append(opts, withSelfExclusion())...)
	if err != nil {
		return nil, err
	}
	seen := map[Pair]bool{}
	out := report.Matches[:0]
	for _, m := range report.Matches {
		if m.ARow == m.BRow {
			continue
		}
		if m.ARow > m.BRow {
			m.ARow, m.BRow = m.BRow, m.ARow
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, m)
	}
	report.Matches = out
	return report, nil
}

func withSelfExclusion() Option {
	return func(c *config) { c.opt.ExcludeSelfPairs = true }
}

// Match runs the hands-off EM workflow over tables a and b, asking the
// labeler (through the simulated crowd) to label a bounded number of row
// pairs, and returns the predicted matches with full cost/time accounting.
func Match(a, b *Table, labeler Labeler, opts ...Option) (*Report, error) {
	return MatchContext(context.Background(), a, b, labeler, opts...)
}

// MatchContext is Match with cancellation and deadline support: when ctx is
// cancelled the run stops at the next task boundary — cluster jobs between
// records, crowd waits between questions — and returns ctx.Err().
func MatchContext(ctx context.Context, a, b *Table, labeler Labeler, opts ...Option) (*Report, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("falcon: nil table")
	}
	if labeler == nil {
		return nil, ErrNilLabeler
	}
	cfg := &config{opt: core.DefaultOptions()}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.platform == nil {
		if cfg.inHouse {
			cfg.platform = crowd.InHouse{Latency: cfg.latency}
		} else {
			cfg.platform = crowd.NewRandomWorkers(cfg.errRate, cfg.latency, cfg.opt.Seed+1)
		}
	}
	cfg.opt.Platform = cfg.platform
	if cfg.workers != 0 {
		if cfg.opt.Cluster == nil {
			cfg.opt.Cluster = mapreduce.Default()
		}
		cfg.opt.Cluster.Workers = cfg.workers
	}
	if cfg.spillRecords > 0 {
		if cfg.opt.Cluster == nil {
			cfg.opt.Cluster = mapreduce.Default()
		}
		cfg.opt.Cluster.SpillRecords = cfg.spillRecords
		cfg.opt.Cluster.SpillDir = cfg.spillDir
	}

	a.Internal().InferTypes()
	b.Internal().InferTypes()
	oracle := func(p table.Pair) bool {
		return labeler.Label(a.Internal().Tuples[p.A].Values, b.Internal().Tuples[p.B].Values)
	}
	res, err := core.RunContext(ctx, a.Internal(), b.Internal(), oracle, cfg.opt)
	if err != nil {
		return nil, err
	}
	return buildReport(res), nil
}

func buildReport(res *core.Result) *Report {
	r := &Report{
		CandidatePairs:      len(res.Candidates),
		UsedBlocking:        res.UsedBlocking,
		Strategy:            res.Strategy.String(),
		RulesLearned:        res.CandidateRules,
		RulesRetained:       res.RetainedRules,
		CrowdCost:           res.Cost,
		Questions:           res.Questions,
		CrowdTime:           res.Timeline.CrowdTime,
		MachineTime:         res.Timeline.MachineTime,
		MaskedMachineTime:   res.Timeline.MaskedMachine,
		UnmaskedMachineTime: res.Timeline.UnmaskedMachine,
		TotalTime:           res.Timeline.Total,
		PerOperator:         map[string]OperatorTime{},
	}
	for op, ot := range res.Timeline.PerOp {
		r.PerOperator[op] = OperatorTime{Crowd: ot.Crowd, Machine: ot.Machine}
	}
	r.Matches = make([]Pair, len(res.Matches))
	for i, m := range res.Matches {
		r.Matches[i] = Pair{ARow: m.A, BRow: m.B}
	}
	var gantt bytes.Buffer
	vclock.RenderGantt(&gantt, res.Tasks, 100)
	r.gantt = gantt.String()
	r.explain = res.Explain()
	if res.Model != nil {
		var buf bytes.Buffer
		if err := res.Model.Save(&buf); err == nil {
			r.modelJSON = buf.Bytes()
		}
	}
	r.artifact = res.Artifact
	if res.Accuracy != nil {
		r.Estimate = &AccuracyEstimate{
			Precision:    res.Accuracy.Precision,
			PrecisionErr: res.Accuracy.PrecisionErr,
			Recall:       res.Accuracy.Recall,
			RecallErr:    res.Accuracy.RecallErr,
			F1:           res.Accuracy.F1,
			Labeled:      res.Accuracy.Labeled,
		}
		r.RoundF1 = append([]float64(nil), res.RoundF1...)
	}
	return r
}
