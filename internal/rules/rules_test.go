package rules

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"falcon/internal/forest"
)

func TestOpEvalAndNegate(t *testing.T) {
	cases := []struct {
		op       Op
		v, bound float64
		want     bool
	}{
		{LE, 0.5, 0.5, true},
		{LE, 0.6, 0.5, false},
		{GT, 0.6, 0.5, true},
		{GT, 0.5, 0.5, false},
		{LT, 0.4, 0.5, true},
		{GE, 0.5, 0.5, true},
		{EQ, 1, 1, true},
		{NE, 1, 1, false},
	}
	for _, c := range cases {
		p := Predicate{Feature: 0, Op: c.op, Value: c.bound}
		if got := p.Eval(c.v); got != c.want {
			t.Errorf("%v Eval(%v) = %v, want %v", p, c.v, got, c.want)
		}
		n := p.Negate()
		if got := n.Eval(c.v); got == c.want {
			t.Errorf("negated %v should flip on %v", p, c.v)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op, s := range map[Op]string{LE: "<=", GT: ">", LT: "<", GE: ">=", EQ: "==", NE: "!="} {
		if op.String() != s {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), s)
		}
	}
}

func TestRuleFires(t *testing.T) {
	// "isbn_exact <= 0.5 AND pages_exact <= 0.5 → drop" (Figure 2 rule 2).
	r := Rule{Preds: []Predicate{
		{Feature: 0, Op: LE, Value: 0.5},
		{Feature: 1, Op: LE, Value: 0.5},
	}}
	if !r.Fires([]float64{0, 0}) {
		t.Fatal("both predicates hold; should fire")
	}
	if r.Fires([]float64{1, 0}) {
		t.Fatal("first predicate fails; should not fire")
	}
}

func TestCoverage(t *testing.T) {
	r := Rule{Preds: []Predicate{{Feature: 0, Op: LE, Value: 0.5}}}
	vecs := [][]float64{{0.1}, {0.9}, {0.5}, {0.6}}
	cov := r.Coverage(vecs)
	if cov.Count() != 2 || !cov.Get(0) || !cov.Get(2) {
		t.Fatalf("coverage = %v", cov.Ones())
	}
}

func trainSmallForest(t *testing.T) *forest.Forest {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var exs []forest.Example
	for i := 0; i < 400; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		exs = append(exs, forest.Example{Values: []float64{x0, x1}, Label: x0 > 0.6 && x1 > 0.3})
	}
	return forest.Train(exs, forest.Config{Seed: 2, NumTrees: 5})
}

func TestExtract(t *testing.T) {
	f := trainSmallForest(t)
	rs := Extract(f)
	if len(rs) == 0 {
		t.Fatal("no rules extracted")
	}
	// IDs dense.
	for i, r := range rs {
		if r.ID != i {
			t.Fatalf("rule %d has ID %d", i, r.ID)
		}
		if len(r.Preds) == 0 {
			t.Fatalf("rule %d has no predicates", i)
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.key()] {
			t.Fatalf("duplicate rule %v", r)
		}
		seen[r.key()] = true
	}
	// Extracted rules must agree with the trees: a vector dropped by all
	// trees should fire at least one rule.
	vec := []float64{0.1, 0.1} // clear negative
	fired := false
	for _, r := range rs {
		if r.Fires(vec) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no extracted rule fires on a clear negative")
	}
}

func TestExtractOnlyNoLeaves(t *testing.T) {
	// Tree with one split: left=No, right=Yes → exactly one rule (f0 <= t).
	tree := &forest.Tree{Root: &forest.Node{
		Feature:   0,
		Threshold: 0.5,
		Left:      &forest.Node{Feature: -1, Match: false},
		Right:     &forest.Node{Feature: -1, Match: true},
	}}
	f := &forest.Forest{Trees: []*forest.Tree{tree}, NumFeatures: 1}
	rs := Extract(f)
	if len(rs) != 1 {
		t.Fatalf("got %d rules, want 1", len(rs))
	}
	want := Predicate{Feature: 0, Op: LE, Value: 0.5}
	if rs[0].Preds[0] != want {
		t.Fatalf("rule = %v", rs[0])
	}
}

func TestSimplifyMergesBounds(t *testing.T) {
	r := Rule{Preds: []Predicate{
		{Feature: 0, Op: LT, Value: 0.5},
		{Feature: 0, Op: LT, Value: 0.2},
		{Feature: 0, Op: GT, Value: 0.05},
		{Feature: 1, Op: GE, Value: 0.7},
	}}
	s := Simplify(r)
	if len(s.Preds) != 3 {
		t.Fatalf("simplified to %d predicates, want 3: %v", len(s.Preds), s)
	}
	// Feature 0 keeps > 0.05 and < 0.2.
	found := map[string]bool{}
	for _, p := range s.Preds {
		found[p.String()] = true
	}
	for _, want := range []string{"f0 > 0.05", "f0 < 0.2", "f1 >= 0.7"} {
		if !found[want] {
			t.Fatalf("missing %q in %v", want, s)
		}
	}
}

func TestSimplifyTieBreaksStrictness(t *testing.T) {
	r := Rule{Preds: []Predicate{
		{Feature: 0, Op: LE, Value: 0.5},
		{Feature: 0, Op: LT, Value: 0.5},
	}}
	s := Simplify(r)
	if len(s.Preds) != 1 || s.Preds[0].Op != LT {
		t.Fatalf("want single strict <, got %v", s)
	}
}

func TestSimplifyKeepsEquality(t *testing.T) {
	r := Rule{Preds: []Predicate{
		{Feature: 0, Op: EQ, Value: 1},
		{Feature: 0, Op: LE, Value: 2},
	}}
	s := Simplify(r)
	if len(s.Preds) != 2 {
		t.Fatalf("EQ should pass through: %v", s)
	}
}

// Property: Simplify preserves rule semantics.
func TestQuickSimplifyEquivalent(t *testing.T) {
	ops := []Op{LE, GT, LT, GE}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var preds []Predicate
		for i := 0; i < 1+rng.Intn(6); i++ {
			preds = append(preds, Predicate{
				Feature: rng.Intn(3),
				Op:      ops[rng.Intn(len(ops))],
				Value:   float64(rng.Intn(10)) / 10,
			})
		}
		r := Rule{Preds: preds}
		s := Simplify(r)
		for trial := 0; trial < 50; trial++ {
			vec := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			if r.Fires(vec) != s.Fires(vec) {
				t.Logf("rule %v vs simplified %v differ on %v", r, s, vec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestToCNFKeepSemantics(t *testing.T) {
	seq := []Rule{
		{ID: 0, Preds: []Predicate{{Feature: 0, Op: LE, Value: 0.6}}},
		{ID: 1, Preds: []Predicate{
			{Feature: 1, Op: LE, Value: 0.5},
			{Feature: 2, Op: GE, Value: 10},
		}},
	}
	cnf := ToCNF(seq)
	if len(cnf.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(cnf.Clauses))
	}
	cases := []struct {
		vec  []float64
		keep bool
	}{
		{[]float64{0.7, 0.6, 0}, true},   // survives both
		{[]float64{0.5, 0.6, 0}, false},  // rule 0 fires
		{[]float64{0.7, 0.4, 15}, false}, // rule 1 fires
		{[]float64{0.7, 0.4, 5}, true},   // rule 1 half-fires only
	}
	for _, c := range cases {
		if got := cnf.Keep(c.vec); got != c.keep {
			t.Errorf("Keep(%v) = %v, want %v", c.vec, got, c.keep)
		}
	}
}

// Property: CNF.Keep ⇔ no rule in the sequence fires.
func TestQuickCNFMatchesSequence(t *testing.T) {
	ops := []Op{LE, GT, LT, GE}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var seq []Rule
		for r := 0; r < 1+rng.Intn(4); r++ {
			var preds []Predicate
			for i := 0; i < 1+rng.Intn(3); i++ {
				preds = append(preds, Predicate{
					Feature: rng.Intn(4),
					Op:      ops[rng.Intn(len(ops))],
					Value:   rng.Float64(),
				})
			}
			seq = append(seq, Rule{ID: r, Preds: preds})
		}
		cnf := ToCNF(seq)
		for trial := 0; trial < 40; trial++ {
			vec := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			if cnf.Keep(vec) == SequenceFires(seq, vec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	r := Rule{ID: 3, Preds: []Predicate{{Feature: 1, Op: LE, Value: 0.25}}}
	if !strings.Contains(r.String(), "R3") || !strings.Contains(r.String(), "f1 <= 0.25") {
		t.Fatalf("Rule.String = %q", r.String())
	}
	cnf := ToCNF([]Rule{r})
	if !strings.Contains(cnf.String(), "keep") {
		t.Fatalf("CNF.String = %q", cnf.String())
	}
}
