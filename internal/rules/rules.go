// Package rules implements blocking rules: predicates over feature values,
// conjunction rules extracted from random-forest trees (paper Figure 2,
// get_blocking_rules), rewriting a rule sequence into a positive CNF rule
// (§7.3 step 1), and the predicate simplification optimization (§7.3 opt 3).
//
// A blocking rule is
//
//	p_1(a,b) ∧ … ∧ p_m(a,b) → drop (a,b)
//
// where each predicate compares a feature score f(a.x, b.y) with a constant.
// Feature indexes refer to positions in the feature-vector space the forest
// was trained on (the blocking-feature subspace during the blocking stage).
package rules

import (
	"fmt"
	"sort"
	"strings"

	"falcon/internal/bitset"
	"falcon/internal/forest"
)

// Op is a comparison operator.
type Op int

const (
	LE Op = iota // <=
	GT           // >
	LT           // <
	GE           // >=
	EQ           // ==
	NE           // !=
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GT:
		return ">"
	case LT:
		return "<"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Negate returns the complementary operator.
func (o Op) Negate() Op {
	switch o {
	case LE:
		return GT
	case GT:
		return LE
	case LT:
		return GE
	case GE:
		return LT
	case EQ:
		return NE
	case NE:
		return EQ
	default:
		panic("rules: unknown op")
	}
}

// Predicate is one comparison f_i op v.
type Predicate struct {
	Feature int
	Op      Op
	Value   float64
}

// Eval evaluates the predicate against a feature value.
func (p Predicate) Eval(v float64) bool {
	switch p.Op {
	case LE:
		return v <= p.Value
	case GT:
		return v > p.Value
	case LT:
		return v < p.Value
	case GE:
		return v >= p.Value
	case EQ:
		return v == p.Value
	case NE:
		return v != p.Value
	default:
		panic("rules: unknown op")
	}
}

// Negate returns the complementary predicate.
func (p Predicate) Negate() Predicate {
	return Predicate{Feature: p.Feature, Op: p.Op.Negate(), Value: p.Value}
}

// String renders the predicate with generic feature naming.
func (p Predicate) String() string {
	return fmt.Sprintf("f%d %s %.4g", p.Feature, p.Op, p.Value)
}

// Rule is a conjunction of predicates that drops a pair when all hold.
type Rule struct {
	ID    int
	Preds []Predicate
}

// Fires reports whether the rule drops the pair with feature vector vec.
func (r *Rule) Fires(vec []float64) bool {
	for _, p := range r.Preds {
		if !p.Eval(vec[p.Feature]) {
			return false
		}
	}
	return true
}

// String renders the rule.
func (r *Rule) String() string {
	parts := make([]string, len(r.Preds))
	for i, p := range r.Preds {
		parts[i] = p.String()
	}
	return fmt.Sprintf("R%d: %s -> drop", r.ID, strings.Join(parts, " AND "))
}

// key returns a canonical representation for de-duplication.
func (r *Rule) key() string {
	parts := make([]string, len(r.Preds))
	for i, p := range r.Preds {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// Coverage returns the bitmap of sample vectors the rule drops (§6). vecs is
// the sample encoded as feature vectors.
func (r *Rule) Coverage(vecs [][]float64) *bitset.Bitset {
	b := bitset.New(len(vecs))
	for i, v := range vecs {
		if r.Fires(v) {
			b.Set(i)
		}
	}
	return b
}

// Extract walks every tree of the forest and returns each root→"No"-leaf
// path as a candidate blocking rule (Figure 2.b), de-duplicated and with
// predicates simplified per §7.3. Rules are assigned dense IDs.
func Extract(f *forest.Forest) []Rule {
	var out []Rule
	seen := map[string]bool{}
	var walk func(n *forest.Node, path []Predicate)
	walk = func(n *forest.Node, path []Predicate) {
		if n.IsLeaf() {
			if !n.Match && len(path) > 0 {
				r := Rule{Preds: append([]Predicate(nil), path...)}
				r = Simplify(r)
				k := r.key()
				if !seen[k] {
					seen[k] = true
					r.ID = len(out)
					out = append(out, r)
				}
			}
			return
		}
		walk(n.Left, append(path, Predicate{Feature: n.Feature, Op: LE, Value: n.Threshold}))
		walk(n.Right, append(path[:len(path):len(path)], Predicate{Feature: n.Feature, Op: GT, Value: n.Threshold}))
	}
	for _, t := range f.Trees {
		walk(t.Root, nil)
	}
	return out
}

// Simplify merges redundant inequality predicates on the same feature
// (§7.3 opt 3): of all "< / <=" predicates keep the one with minimal bound,
// of all "> / >=" the one with maximal bound. EQ/NE predicates pass through.
func Simplify(r Rule) Rule {
	type bound struct {
		has bool
		op  Op
		v   float64
	}
	upper := map[int]bound{} // < or <=
	lower := map[int]bound{} // > or >=
	var passthrough []Predicate
	var order []int
	seenFeat := map[int]bool{}
	note := func(f int) {
		if !seenFeat[f] {
			seenFeat[f] = true
			order = append(order, f)
		}
	}
	for _, p := range r.Preds {
		switch p.Op {
		case LT, LE:
			note(p.Feature)
			b := upper[p.Feature]
			// Smaller bound is tighter; at equal bounds "<" is tighter.
			if !b.has || p.Value < b.v || (p.Value == b.v && p.Op == LT) {
				upper[p.Feature] = bound{true, p.Op, p.Value}
			}
		case GT, GE:
			note(p.Feature)
			b := lower[p.Feature]
			if !b.has || p.Value > b.v || (p.Value == b.v && p.Op == GT) {
				lower[p.Feature] = bound{true, p.Op, p.Value}
			}
		default:
			passthrough = append(passthrough, p)
		}
	}
	out := Rule{ID: r.ID}
	for _, f := range order {
		if b := lower[f]; b.has {
			out.Preds = append(out.Preds, Predicate{Feature: f, Op: b.op, Value: b.v})
		}
		if b := upper[f]; b.has {
			out.Preds = append(out.Preds, Predicate{Feature: f, Op: b.op, Value: b.v})
		}
	}
	out.Preds = append(out.Preds, passthrough...)
	return out
}

// Clause is a disjunction of predicates.
type Clause []Predicate

// Eval reports whether any predicate in the clause holds on vec.
func (c Clause) Eval(vec []float64) bool {
	for _, p := range c {
		if p.Eval(vec[p.Feature]) {
			return true
		}
	}
	return false
}

// CNF is the "positive" rule Q of §7.3: keep (a,b) iff every clause holds.
// Each clause is the negation of one blocking rule in the sequence.
type CNF struct {
	Clauses []Clause
}

// ToCNF rewrites a rule sequence [R_1..R_n] (drop semantics) into the single
// positive CNF rule: keep(a,b) ⇔ ∧_i ∨_j ¬p_j^i.
func ToCNF(seq []Rule) CNF {
	cnf := CNF{Clauses: make([]Clause, 0, len(seq))}
	for _, r := range seq {
		clause := make(Clause, len(r.Preds))
		for i, p := range r.Preds {
			clause[i] = p.Negate()
		}
		cnf.Clauses = append(cnf.Clauses, clause)
	}
	return cnf
}

// Keep reports whether the pair survives blocking (no rule fires).
func (c CNF) Keep(vec []float64) bool {
	for _, cl := range c.Clauses {
		if !cl.Eval(vec) {
			return false
		}
	}
	return true
}

// String renders the CNF rule.
func (c CNF) String() string {
	var clauses []string
	for _, cl := range c.Clauses {
		var parts []string
		for _, p := range cl {
			parts = append(parts, p.String())
		}
		clauses = append(clauses, "("+strings.Join(parts, " OR ")+")")
	}
	return strings.Join(clauses, " AND ") + " -> keep"
}

// SequenceFires reports whether any rule in the sequence drops vec
// (short-circuit, in order — the execution model of §6).
func SequenceFires(seq []Rule, vec []float64) bool {
	for i := range seq {
		if seq[i].Fires(vec) {
			return true
		}
	}
	return false
}
