// Package datagen generates the three evaluation datasets of the paper's
// Table 1 — Products, Songs, and Citations — as deterministic synthetic
// tables with planted ground truth.
//
// The real datasets (Magellan data repository) are not redistributable
// inside this build, so each generator reproduces the *characteristics*
// that drive Falcon's behaviour: the published schemas, realistic attribute
// characteristics (single-word/short/medium/long strings, numerics), dirty
// values, format variation, and missing data — the properties that make
// key-based blocking lose recall (§3.2) while learned rule-based blocking
// keeps it. Sizes scale with a factor so the same code path covers both
// laptop tests and paper-scale runs.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"falcon/internal/table"
)

// Dataset is a generated table pair with ground truth.
type Dataset struct {
	Name  string
	A, B  *table.Table
	Truth map[table.Pair]bool
}

// Matches returns the number of true matches.
func (d *Dataset) Matches() int { return len(d.Truth) }

// Oracle returns the ground-truth lookup used by the simulated crowd.
func (d *Dataset) Oracle() func(table.Pair) bool {
	return func(p table.Pair) bool { return d.Truth[p] }
}

// corruptor applies dataset-style dirt deterministically.
type corruptor struct {
	rng *rand.Rand
}

// typo mutates one character of a word-ish string.
func (c *corruptor) typo(s string) string {
	if len(s) < 3 {
		return s
	}
	r := []rune(s)
	i := 1 + c.rng.Intn(len(r)-2)
	switch c.rng.Intn(3) {
	case 0: // delete
		return string(append(r[:i], r[i+1:]...))
	case 1: // transpose
		r[i-1], r[i] = r[i], r[i-1]
		return string(r)
	default: // replace
		r[i] = rune('a' + c.rng.Intn(26))
		return string(r)
	}
}

// maybeTypo corrupts with probability p.
func (c *corruptor) maybeTypo(s string, p float64) string {
	if c.rng.Float64() < p {
		return c.typo(s)
	}
	return s
}

// dropToken removes one token with probability p.
func (c *corruptor) dropToken(s string, p float64) string {
	if c.rng.Float64() >= p {
		return s
	}
	toks := strings.Fields(s)
	if len(toks) < 3 {
		return s
	}
	i := c.rng.Intn(len(toks))
	return strings.Join(append(toks[:i], toks[i+1:]...), " ")
}

// jitter perturbs a price-like number by up to frac.
func (c *corruptor) jitter(v float64, frac float64) float64 {
	return v * (1 + (c.rng.Float64()*2-1)*frac)
}

// missing blanks the value with probability p.
func (c *corruptor) missing(s string, p float64) string {
	if c.rng.Float64() < p {
		return ""
	}
	return s
}

var (
	brandWords = []string{"sony", "samsung", "panasonic", "canon", "nikon", "logitech", "philips", "toshiba", "dell", "asus", "acer", "lenovo", "garmin", "jbl", "bose"}
	prodNouns  = []string{"camera", "laptop", "monitor", "keyboard", "mouse", "speaker", "headphones", "router", "printer", "tablet", "charger", "projector", "webcam", "microphone", "drive"}
	prodAdjs   = []string{"wireless", "portable", "digital", "compact", "professional", "gaming", "ultra", "premium", "slim", "rugged"}
	descWords  = makeVocab(240, []string{"high", "quality", "performance", "battery", "life", "design", "display", "resolution", "warranty", "includes", "features", "advanced", "technology", "lightweight", "durable", "connectivity", "storage", "memory", "processor", "speed", "color", "black", "silver", "edition", "model", "series", "supports", "compatible", "system", "power"})
	groupNames = []string{"electronics", "computers", "photography", "audio", "accessories", "networking", "office"}
)

// makeVocab builds a deterministic pseudo-word vocabulary of size n by
// combining syllables — realistic datasets have thousands of distinct
// tokens, and blocking-rule quality (and inverted-index posting lengths)
// depend on that diversity. Two-syllable combinations cover the first ~420
// words (their order is frozen: every historical vocabulary is a prefix of
// a larger one); a third syllable extends the tail into the thousands for
// paper-scale runs.
func makeVocab(n int, seedWords []string) []string {
	onsets := []string{"bel", "cor", "dan", "fel", "gar", "hol", "jin", "kel", "lor", "mar",
		"nor", "pal", "quin", "ros", "sal", "tam", "vel", "wes", "yar", "zan"}
	rimes := []string{"da", "den", "dor", "ia", "in", "is", "lan", "lo", "mont", "na",
		"net", "on", "ra", "rell", "ri", "son", "ta", "ton", "va", "wick"}
	out := append([]string(nil), seedWords...)
	for _, o := range onsets {
		for _, r := range rimes {
			if len(out) >= n {
				return out
			}
			out = append(out, o+r)
		}
	}
	seen := make(map[string]bool, len(out))
	for _, w := range out {
		seen[w] = true
	}
	for _, o := range onsets {
		for _, r1 := range rimes {
			for _, r2 := range rimes {
				if len(out) >= n {
					return out
				}
				w := o + r1 + r2
				if !seen[w] {
					seen[w] = true
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// zipfDist is a truncated-Zipf sampler over vocabulary ranks [0, n): low
// ranks are common (shared stopword-ish tokens), the tail is rare
// (discriminative). The weight of rank r is (1/(r+3))^skew, so skew=1
// reproduces the generator's historical token frequencies exactly and
// larger skews concentrate mass in the head (heavier posting lists for the
// same vocabulary). The CDF is computed once at construction; each draw is
// one rng.Float64 plus a binary search, which is what makes million-row
// table generation affordable.
type zipfDist struct {
	cdf []float64
}

func newZipfDist(n int, skew float64) *zipfDist {
	weight := func(r int) float64 {
		x := 1 / float64(r+3)
		if skew != 1 {
			x = math.Pow(x, skew)
		}
		return x
	}
	total := 0.0
	for r := 0; r < n; r++ {
		total += weight(r)
	}
	cdf := make([]float64, n)
	acc := 0.0
	for r := 0; r < n; r++ {
		acc += weight(r) / total
		cdf[r] = acc
	}
	return &zipfDist{cdf: cdf}
}

// pick draws a rank. For a given u the result is identical to walking the
// weights and returning the first rank whose cumulative mass reaches u, so
// same-seed outputs are unchanged from the pre-CDF implementation.
func (z *zipfDist) pick(rng *rand.Rand) int {
	i := sort.SearchFloat64s(z.cdf, rng.Float64())
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

func zipfSentence(rng *rand.Rand, z *zipfDist, vocab []string, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(vocab[z.pick(rng)])
	}
	return sb.String()
}

func sentence(rng *rand.Rand, words []string, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(words[rng.Intn(len(words))])
	}
	return sb.String()
}

// product is the clean source record products are rendered from.
type product struct {
	brand, modelno, group, title, descr string
	price, weight                       float64
}

func genProduct(rng *rand.Rand) product {
	brand := brandWords[rng.Intn(len(brandWords))]
	model := fmt.Sprintf("%s%d%c", strings.ToUpper(brand[:2]), 100+rng.Intn(9900), 'a'+rune(rng.Intn(26)))
	adj := prodAdjs[rng.Intn(len(prodAdjs))]
	noun := prodNouns[rng.Intn(len(prodNouns))]
	title := fmt.Sprintf("%s %s %s %s", brand, adj, noun, model)
	return product{
		brand:   brand,
		modelno: model,
		group:   groupNames[rng.Intn(len(groupNames))],
		title:   title,
		descr:   sentence(rng, descWords, 12+rng.Intn(12)),
		price:   20 + rng.Float64()*800,
		weight:  0.2 + rng.Float64()*10,
	}
}

// Products generates the electronics-products dataset (paper: 2,554 ×
// 22,074 tuples, 1,154 matches). scale=1 reproduces those sizes.
func Products(scale float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cor := &corruptor{rng: rng}
	nA := int(2554 * scale)
	nB := int(22074 * scale)
	nMatch := int(1154 * scale)
	if nA < 10 {
		nA = 10
	}
	if nB < 20 {
		nB = 20
	}
	if nMatch > nA {
		nMatch = nA
	}

	a := table.New("products-A", table.NewSchema("url", "brand", "modelno", "groupname", "title", "price", "descr", "image_url", "shipweight"))
	b := table.New("products-B", table.NewSchema("url", "brand", "modelno", "cat1", "cat2", "pcategory", "title", "price", "features", "image_url", "shipweight"))
	truth := map[table.Pair]bool{}

	prods := make([]product, nA)
	for i := range prods {
		prods[i] = genProduct(rng)
		p := prods[i]
		a.Append(
			fmt.Sprintf("http://site-a.example/%d", i),
			p.brand, p.modelno, p.group, p.title,
			fmt.Sprintf("%.2f", p.price), p.descr,
			fmt.Sprintf("http://img-a.example/%d.jpg", i),
			fmt.Sprintf("%.1f", p.weight),
		)
	}
	// B: nMatch dirty copies of A products + unrelated products.
	bRow := 0
	appendB := func(p product, url int) {
		b.Append(
			fmt.Sprintf("http://site-b.example/%d", url),
			p.brand, p.modelno,
			p.group, groupNames[rng.Intn(len(groupNames))], p.group,
			p.title, fmt.Sprintf("%.2f", p.price), p.descr,
			fmt.Sprintf("http://img-b.example/%d.jpg", url),
			fmt.Sprintf("%.1f", p.weight),
		)
		bRow++
	}
	perm := rng.Perm(nA)
	for i := 0; i < nMatch; i++ {
		src := prods[perm[i]]
		dirty := src
		dirty.title = cor.dropToken(cor.maybeTypo(src.title, 0.35), 0.15)
		dirty.brand = cor.maybeTypo(src.brand, 0.15)
		dirty.modelno = cor.missing(cor.maybeTypo(src.modelno, 0.15), 0.08)
		dirty.price = cor.jitter(src.price, 0.05)
		dirty.descr = cor.dropToken(src.descr, 0.5)
		truth[table.Pair{A: perm[i], B: bRow}] = true
		appendB(dirty, bRow)
	}
	for bRow < nB {
		appendB(genProduct(rng), bRow)
	}
	a.InferTypes()
	b.InferTypes()
	return &Dataset{Name: "Products", A: a, B: b, Truth: truth}
}

var (
	songSeedWords = []string{"love", "night", "heart", "dance", "fire", "dream", "blue", "road", "home", "light", "rain", "river", "summer", "ghost", "city", "golden", "wild", "broken", "sweet", "midnight"}
	songWords     = makeVocab(320, songSeedWords)
	songZipf      = newZipfDist(len(songWords), 1)
	artistFirst   = []string{"the", "los", "dj", "mc", "little", "big"}
	artistNames   = makeVocab(160, []string{"vikings", "ramblers", "echoes", "strangers", "foxes", "pilots", "sparrows", "wolves", "drifters", "shadows"})
	albumWords    = []string{"greatest", "hits", "live", "sessions", "collection", "volume", "one", "two", "gold", "anthology", "best", "of"}
)

type song struct {
	title, release, artist string
	duration               float64
	familiarity, hotness   float64
	year                   int
}

func genSong(rng *rand.Rand, vocab []string, z *zipfDist) song {
	return song{
		title:       strings.Title(zipfSentence(rng, z, vocab, 2+rng.Intn(3))),
		release:     strings.Title(sentence(rng, albumWords, 2+rng.Intn(3))),
		artist:      strings.Title(artistFirst[rng.Intn(len(artistFirst))] + " " + artistNames[rng.Intn(len(artistNames))] + fmt.Sprint(rng.Intn(1000))),
		duration:    120 + rng.Float64()*240,
		familiarity: rng.Float64(),
		hotness:     rng.Float64(),
		year:        1950 + rng.Intn(60),
	}
}

func appendSong(t *table.Table, s song, missingYear bool) {
	year := fmt.Sprint(s.year)
	if missingYear {
		year = ""
	}
	t.Append(s.title, s.release, s.artist,
		fmt.Sprintf("%.2f", s.duration),
		fmt.Sprintf("%.4f", s.familiarity),
		fmt.Sprintf("%.4f", s.hotness),
		year)
}

// SongsOpts shapes SongsWith beyond the paper defaults, so the 1M×1M
// scale workload is generatable without shipping fixtures. The zero value
// of every field means "paper default": SongsWith(SongsOpts{NA: n, NB: n},
// seed) is row-for-row identical to Songs(n, seed).
type SongsOpts struct {
	// NA and NB are the per-table tuple counts (clamped to ≥20; the paper
	// runs 1M × 1M).
	NA, NB int
	// Vocab is the title vocabulary size (default 320). Larger
	// vocabularies thin out the inverted-index posting lists; smaller ones
	// fatten them.
	Vocab int
	// Skew is the Zipf exponent on title-token frequencies (default 1,
	// the generator's historical distribution). Larger skews pile mass on
	// the head tokens — the Songs-shaped stress case for blocking, where
	// a few stopword-ish tokens appear in a large fraction of titles.
	Skew float64
	// DupFrac is the fraction of B rows that are dirty re-releases of A
	// songs, i.e. true matches (default 0.55).
	DupFrac float64
}

// Songs generates the Million-Song-style dataset (paper: 1M × 1M,
// 1.29M matches). n is the per-table tuple count.
func Songs(n int, seed int64) *Dataset {
	return SongsWith(SongsOpts{NA: n, NB: n}, seed)
}

// SongsWith generates the Songs dataset under explicit size and skew
// knobs. Same-seed runs are deterministic for any fixed set of knobs.
func SongsWith(o SongsOpts, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cor := &corruptor{rng: rng}
	if o.NA < 20 {
		o.NA = 20
	}
	if o.NB < 20 {
		o.NB = 20
	}
	if o.DupFrac <= 0 {
		o.DupFrac = 0.55
	}
	vocab, zipf := songWords, songZipf
	if o.Vocab > 0 && o.Vocab != len(songWords) {
		vocab = makeVocab(o.Vocab, songSeedWords)
	}
	if skew := o.Skew; (skew > 0 && skew != 1) || len(vocab) != len(songWords) {
		if skew <= 0 {
			skew = 1
		}
		zipf = newZipfDist(len(vocab), skew)
	}
	schema := func() *table.Schema {
		return table.NewSchema("title", "release", "artist_name", "duration", "artist_familiarity", "artist_hotness", "year")
	}
	a := table.New("songs-A", schema())
	b := table.New("songs-B", schema())
	truth := map[table.Pair]bool{}

	// ~DupFrac of B rows are re-releases of A songs (matches, sometimes
	// multiple per source), the rest are distinct songs.
	base := make([]song, o.NA)
	for i := range base {
		base[i] = genSong(rng, vocab, zipf)
		appendSong(a, base[i], rng.Float64() < 0.1)
	}
	bRow := 0
	for bRow < o.NB {
		if rng.Float64() < o.DupFrac {
			src := rng.Intn(o.NA)
			dup := base[src]
			// Same song on a different album with formatting variation.
			dup.release = strings.Title(sentence(rng, albumWords, 2+rng.Intn(3)))
			dup.title = cor.maybeTypo(dup.title, 0.25)
			dup.artist = cor.maybeTypo(strings.ReplaceAll(dup.artist, " ", "-"), 0.2)
			dup.duration = cor.jitter(dup.duration, 0.01)
			truth[table.Pair{A: src, B: bRow}] = true
			appendSong(b, dup, rng.Float64() < 0.2)
		} else {
			appendSong(b, genSong(rng, vocab, zipf), rng.Float64() < 0.1)
		}
		bRow++
	}
	a.InferTypes()
	b.InferTypes()
	return &Dataset{Name: "Songs", A: a, B: b, Truth: truth}
}

var (
	csWords  = makeVocab(260, []string{"query", "optimization", "distributed", "systems", "learning", "entity", "matching", "parallel", "database", "graph", "streaming", "index", "join", "crowdsourcing", "scalable", "adaptive", "efficient", "approximate", "transactional", "storage"})
	csZipf   = newZipfDist(len(csWords), 1)
	journals = []string{"vldb journal", "acm transactions on database systems", "sigmod record", "ieee transactions on knowledge and data engineering", "information systems", "journal of machine learning research"}
	months   = []string{"january", "february", "march", "april", "may", "june", "july", "august", "september", "october", "november", "december"}
	surnames = []string{"smith", "chen", "garcia", "kumar", "mueller", "tanaka", "johnson", "lee", "patel", "rossi", "kim", "novak"}
	initials = "abcdefghijklmnoprstw"
)

type citation struct {
	title, authors, journal, pubType string
	month, year                      int
	authorList                       []string
}

func genCitation(rng *rand.Rand) citation {
	var authors []string
	for i := 0; i < 1+rng.Intn(3); i++ {
		authors = append(authors, fmt.Sprintf("%c. %s", initials[rng.Intn(len(initials))], surnames[rng.Intn(len(surnames))]))
	}
	return citation{
		title:      strings.Title(zipfSentence(rng, csZipf, csWords, 4+rng.Intn(5))),
		authorList: authors,
		authors:    strings.Join(authors, ", "),
		journal:    journals[rng.Intn(len(journals))],
		pubType:    []string{"article", "inproceedings"}[rng.Intn(2)],
		month:      rng.Intn(12),
		year:       1990 + rng.Intn(30),
	}
}

// abbreviateJournal produces the Citeseer-style abbreviation.
func abbreviateJournal(j string) string {
	toks := strings.Fields(j)
	var sb strings.Builder
	for _, t := range toks {
		if t == "on" || t == "of" || t == "the" {
			continue
		}
		sb.WriteByte(t[0])
	}
	return strings.ToUpper(sb.String())
}

func appendCitation(t *table.Table, c citation, withMonth bool) {
	month := ""
	if withMonth {
		month = months[c.month]
	}
	t.Append(c.title, c.authors, c.journal, month, fmt.Sprint(c.year), c.pubType)
}

// Citations generates the Citeseer×DBLP-style dataset (paper: 1.82M ×
// 2.51M, 559K matches). nA and nB are the table sizes.
func Citations(nA, nB int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cor := &corruptor{rng: rng}
	if nA < 10 {
		nA = 10
	}
	if nB < 10 {
		nB = 10
	}
	schema := func() *table.Schema {
		return table.NewSchema("title", "authors", "journal", "month", "year", "pub_type")
	}
	a := table.New("citations-A", schema())
	b := table.New("citations-B", schema())
	truth := map[table.Pair]bool{}

	base := make([]citation, nA)
	for i := range base {
		base[i] = genCitation(rng)
		appendCitation(a, base[i], rng.Float64() < 0.7)
	}
	// ~30% of B are the same papers as in A (Citeseer-style noisy copies).
	nMatch := int(float64(nB) * 0.3)
	if nMatch > nA {
		nMatch = nA
	}
	perm := rng.Perm(nA)
	bRow := 0
	for i := 0; i < nMatch; i++ {
		src := base[perm[i]]
		dirty := src
		dirty.title = cor.maybeTypo(src.title, 0.4)
		if rng.Float64() < 0.5 {
			dirty.journal = abbreviateJournal(src.journal)
		}
		switch {
		case rng.Float64() < 0.35:
			// Citeseer-style author reformatting: strip periods, swap to
			// "surname initial" order.
			var parts []string
			for _, a := range src.authorList {
				fs := strings.Fields(strings.ReplaceAll(a, ".", ""))
				if len(fs) == 2 {
					parts = append(parts, fs[1]+" "+fs[0])
				} else {
					parts = append(parts, a)
				}
			}
			dirty.authors = strings.Join(parts, " and ")
		case rng.Float64() < 0.3:
			dirty.authors = cor.maybeTypo(src.authors, 0.8)
		}
		truth[table.Pair{A: perm[i], B: bRow}] = true
		appendCitation(b, dirty, rng.Float64() < 0.3)
		bRow++
	}
	for bRow < nB {
		appendCitation(b, genCitation(rng), rng.Float64() < 0.5)
		bRow++
	}
	a.InferTypes()
	b.InferTypes()
	return &Dataset{Name: "Citations", A: a, B: b, Truth: truth}
}

// Drugs generates the §11.1 drug-matching workload: two ~equal tables of
// drug descriptions with heavy abbreviation noise, matched by an in-house
// crowd of one. n is the per-table size (paper: 453K × 451K).
func Drugs(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cor := &corruptor{rng: rng}
	if n < 10 {
		n = 10
	}
	forms := []string{"tablet", "capsule", "syrup", "injection", "cream"}
	drugs := []string{"metformin", "lisinopril", "atorvastatin", "omeprazole", "amlodipine", "gabapentin", "sertraline", "ibuprofen", "amoxicillin", "azithromycin", "prednisone", "tramadol"}
	schema := func() *table.Schema { return table.NewSchema("name", "form", "strength_mg", "manufacturer") }
	a := table.New("drugs-A", schema())
	b := table.New("drugs-B", schema())
	truth := map[table.Pair]bool{}
	type drug struct {
		name, form, mfr string
		mg              int
	}
	mk := func() drug {
		return drug{
			name: drugs[rng.Intn(len(drugs))] + " " + forms[rng.Intn(len(forms))],
			form: forms[rng.Intn(len(forms))],
			mg:   []int{5, 10, 20, 25, 50, 100, 200, 250, 500, 850}[rng.Intn(10)],
			mfr:  brandWords[rng.Intn(len(brandWords))] + " pharma",
		}
	}
	base := make([]drug, n)
	for i := range base {
		base[i] = mk()
		d := base[i]
		a.Append(d.name, d.form, fmt.Sprint(d.mg), d.mfr)
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			src := rng.Intn(n)
			d := base[src]
			d.name = cor.maybeTypo(d.name, 0.3)
			d.mfr = cor.missing(d.mfr, 0.2)
			truth[table.Pair{A: src, B: i}] = true
			b.Append(d.name, d.form, fmt.Sprint(d.mg), d.mfr)
		} else {
			d := mk()
			b.Append(d.name, d.form, fmt.Sprint(d.mg), d.mfr)
		}
	}
	a.InferTypes()
	b.InferTypes()
	return &Dataset{Name: "Drugs", A: a, B: b, Truth: truth}
}
