package datagen

import (
	"strings"
	"testing"

	"falcon/internal/table"
	"falcon/internal/tokenize"
)

func TestProductsShape(t *testing.T) {
	d := Products(0.1, 1)
	if d.A.Len() != 255 || d.B.Len() != 2207 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	if d.Matches() != 115 {
		t.Fatalf("matches = %d", d.Matches())
	}
	// Schemas per Figure 7.
	if d.A.Schema.Len() != 9 || d.B.Schema.Len() != 11 {
		t.Fatalf("schema sizes = %d/%d", d.A.Schema.Len(), d.B.Schema.Len())
	}
	// price must infer numeric, title string.
	if d.A.Schema.Attrs[d.A.Schema.Col("price")].Type != table.Numeric {
		t.Fatal("price not numeric")
	}
	if d.A.Schema.Attrs[d.A.Schema.Col("title")].Type != table.String {
		t.Fatal("title not string")
	}
}

func TestProductsTruthValid(t *testing.T) {
	d := Products(0.05, 2)
	aTitle := d.A.Schema.Col("title")
	bTitle := d.B.Schema.Col("title")
	shared, total := 0, 0
	for p := range d.Truth {
		if p.A < 0 || p.A >= d.A.Len() || p.B < 0 || p.B >= d.B.Len() {
			t.Fatalf("truth pair %v out of range", p)
		}
		at := tokenize.WordSet(d.A.Value(p.A, aTitle))
		bt := tokenize.WordSet(d.B.Value(p.B, bTitle))
		inter := 0
		bm := map[string]bool{}
		for _, w := range bt {
			bm[w] = true
		}
		for _, w := range at {
			if bm[w] {
				inter++
			}
		}
		if inter > 0 {
			shared++
		}
		total++
	}
	// Matches are dirty copies: most still share title tokens.
	if float64(shared)/float64(total) < 0.8 {
		t.Fatalf("only %d/%d matches share title tokens", shared, total)
	}
}

func TestProductsDeterministic(t *testing.T) {
	d1 := Products(0.02, 7)
	d2 := Products(0.02, 7)
	if d1.A.Len() != d2.A.Len() || d1.Matches() != d2.Matches() {
		t.Fatal("not deterministic")
	}
	for i := 0; i < d1.A.Len(); i++ {
		if d1.A.Value(i, 4) != d2.A.Value(i, 4) {
			t.Fatal("titles differ across same-seed runs")
		}
	}
}

func TestSongsShape(t *testing.T) {
	d := Songs(500, 3)
	if d.A.Len() != 500 || d.B.Len() != 500 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	// ~55% duplicates.
	if d.Matches() < 200 || d.Matches() > 350 {
		t.Fatalf("matches = %d, want ≈275", d.Matches())
	}
	if d.A.Schema.Len() != 7 {
		t.Fatalf("songs schema = %d cols", d.A.Schema.Len())
	}
	if d.A.Schema.Attrs[d.A.Schema.Col("duration")].Type != table.Numeric {
		t.Fatal("duration not numeric")
	}
}

func TestSongsDirtyKeys(t *testing.T) {
	// Key-based blocking on exact title must lose a meaningful share of
	// matches (the §3.2 motivation).
	d := Songs(1000, 4)
	tCol := d.A.Schema.Col("title")
	exact := 0
	for p := range d.Truth {
		if strings.EqualFold(d.A.Value(p.A, tCol), d.B.Value(p.B, tCol)) {
			exact++
		}
	}
	frac := float64(exact) / float64(d.Matches())
	if frac > 0.95 {
		t.Fatalf("%.0f%% of matches share exact titles; KBB would not lose recall", frac*100)
	}
	if frac < 0.4 {
		t.Fatalf("only %.0f%% share exact titles; data too dirty to learn from", frac*100)
	}
}

func TestCitationsShape(t *testing.T) {
	d := Citations(800, 1100, 5)
	if d.A.Len() != 800 || d.B.Len() != 1100 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	want := int(1100 * 0.3)
	if d.Matches() != want {
		t.Fatalf("matches = %d, want %d", d.Matches(), want)
	}
	if d.A.Schema.Col("pub_type") == -1 {
		t.Fatal("schema missing pub_type")
	}
}

func TestCitationsJournalAbbreviation(t *testing.T) {
	if got := abbreviateJournal("acm transactions on database systems"); got != "ATDS" {
		t.Fatalf("abbreviation = %q", got)
	}
	// Some matched B rows should carry abbreviated journals.
	d := Citations(300, 400, 6)
	jCol := d.B.Schema.Col("journal")
	abbrev := 0
	for p := range d.Truth {
		v := d.B.Value(p.B, jCol)
		if v == strings.ToUpper(v) && len(v) <= 8 {
			abbrev++
		}
	}
	if abbrev == 0 {
		t.Fatal("no abbreviated journals among matches")
	}
}

func TestDrugsShape(t *testing.T) {
	d := Drugs(400, 7)
	if d.A.Len() != 400 || d.B.Len() != 400 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	if d.Matches() < 120 || d.Matches() > 280 {
		t.Fatalf("matches = %d, want ≈200", d.Matches())
	}
}

func TestOracle(t *testing.T) {
	d := Songs(100, 8)
	oracle := d.Oracle()
	hits := 0
	for p := range d.Truth {
		if !oracle(p) {
			t.Fatalf("oracle denies true match %v", p)
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("no matches to check")
	}
	if oracle(table.Pair{A: -1, B: -1}) {
		t.Fatal("oracle accepts bogus pair")
	}
}

func TestMinimumSizesClamped(t *testing.T) {
	for _, d := range []*Dataset{Products(0, 9), Songs(1, 9), Citations(1, 1, 9), Drugs(1, 9)} {
		if d.A.Len() == 0 || d.B.Len() == 0 {
			t.Fatalf("%s generated empty tables", d.Name)
		}
	}
}
