package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"falcon/internal/table"
	"falcon/internal/tokenize"
)

func TestProductsShape(t *testing.T) {
	d := Products(0.1, 1)
	if d.A.Len() != 255 || d.B.Len() != 2207 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	if d.Matches() != 115 {
		t.Fatalf("matches = %d", d.Matches())
	}
	// Schemas per Figure 7.
	if d.A.Schema.Len() != 9 || d.B.Schema.Len() != 11 {
		t.Fatalf("schema sizes = %d/%d", d.A.Schema.Len(), d.B.Schema.Len())
	}
	// price must infer numeric, title string.
	if d.A.Schema.Attrs[d.A.Schema.Col("price")].Type != table.Numeric {
		t.Fatal("price not numeric")
	}
	if d.A.Schema.Attrs[d.A.Schema.Col("title")].Type != table.String {
		t.Fatal("title not string")
	}
}

func TestProductsTruthValid(t *testing.T) {
	d := Products(0.05, 2)
	aTitle := d.A.Schema.Col("title")
	bTitle := d.B.Schema.Col("title")
	shared, total := 0, 0
	for p := range d.Truth {
		if p.A < 0 || p.A >= d.A.Len() || p.B < 0 || p.B >= d.B.Len() {
			t.Fatalf("truth pair %v out of range", p)
		}
		at := tokenize.WordSet(d.A.Value(p.A, aTitle))
		bt := tokenize.WordSet(d.B.Value(p.B, bTitle))
		inter := 0
		bm := map[string]bool{}
		for _, w := range bt {
			bm[w] = true
		}
		for _, w := range at {
			if bm[w] {
				inter++
			}
		}
		if inter > 0 {
			shared++
		}
		total++
	}
	// Matches are dirty copies: most still share title tokens.
	if float64(shared)/float64(total) < 0.8 {
		t.Fatalf("only %d/%d matches share title tokens", shared, total)
	}
}

func TestProductsDeterministic(t *testing.T) {
	d1 := Products(0.02, 7)
	d2 := Products(0.02, 7)
	if d1.A.Len() != d2.A.Len() || d1.Matches() != d2.Matches() {
		t.Fatal("not deterministic")
	}
	for i := 0; i < d1.A.Len(); i++ {
		if d1.A.Value(i, 4) != d2.A.Value(i, 4) {
			t.Fatal("titles differ across same-seed runs")
		}
	}
}

func TestSongsShape(t *testing.T) {
	d := Songs(500, 3)
	if d.A.Len() != 500 || d.B.Len() != 500 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	// ~55% duplicates.
	if d.Matches() < 200 || d.Matches() > 350 {
		t.Fatalf("matches = %d, want ≈275", d.Matches())
	}
	if d.A.Schema.Len() != 7 {
		t.Fatalf("songs schema = %d cols", d.A.Schema.Len())
	}
	if d.A.Schema.Attrs[d.A.Schema.Col("duration")].Type != table.Numeric {
		t.Fatal("duration not numeric")
	}
}

func TestSongsDirtyKeys(t *testing.T) {
	// Key-based blocking on exact title must lose a meaningful share of
	// matches (the §3.2 motivation).
	d := Songs(1000, 4)
	tCol := d.A.Schema.Col("title")
	exact := 0
	for p := range d.Truth {
		if strings.EqualFold(d.A.Value(p.A, tCol), d.B.Value(p.B, tCol)) {
			exact++
		}
	}
	frac := float64(exact) / float64(d.Matches())
	if frac > 0.95 {
		t.Fatalf("%.0f%% of matches share exact titles; KBB would not lose recall", frac*100)
	}
	if frac < 0.4 {
		t.Fatalf("only %.0f%% share exact titles; data too dirty to learn from", frac*100)
	}
}

func TestCitationsShape(t *testing.T) {
	d := Citations(800, 1100, 5)
	if d.A.Len() != 800 || d.B.Len() != 1100 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	want := int(1100 * 0.3)
	if d.Matches() != want {
		t.Fatalf("matches = %d, want %d", d.Matches(), want)
	}
	if d.A.Schema.Col("pub_type") == -1 {
		t.Fatal("schema missing pub_type")
	}
}

func TestCitationsJournalAbbreviation(t *testing.T) {
	if got := abbreviateJournal("acm transactions on database systems"); got != "ATDS" {
		t.Fatalf("abbreviation = %q", got)
	}
	// Some matched B rows should carry abbreviated journals.
	d := Citations(300, 400, 6)
	jCol := d.B.Schema.Col("journal")
	abbrev := 0
	for p := range d.Truth {
		v := d.B.Value(p.B, jCol)
		if v == strings.ToUpper(v) && len(v) <= 8 {
			abbrev++
		}
	}
	if abbrev == 0 {
		t.Fatal("no abbreviated journals among matches")
	}
}

func TestDrugsShape(t *testing.T) {
	d := Drugs(400, 7)
	if d.A.Len() != 400 || d.B.Len() != 400 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	if d.Matches() < 120 || d.Matches() > 280 {
		t.Fatalf("matches = %d, want ≈200", d.Matches())
	}
}

func TestOracle(t *testing.T) {
	d := Songs(100, 8)
	oracle := d.Oracle()
	hits := 0
	for p := range d.Truth {
		if !oracle(p) {
			t.Fatalf("oracle denies true match %v", p)
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("no matches to check")
	}
	if oracle(table.Pair{A: -1, B: -1}) {
		t.Fatal("oracle accepts bogus pair")
	}
}

// TestZipfDistMatchesLinearScan pins the precomputed-CDF sampler to the
// linear-scan implementation it replaced: for the same u, both must return
// the same rank, so same-seed datasets are unchanged by the speedup.
func TestZipfDistMatchesLinearScan(t *testing.T) {
	const n = 320
	z := newZipfDist(n, 1)
	rng1 := rand.New(rand.NewSource(11))
	rng2 := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		got := z.pick(rng1)
		u := rng2.Float64()
		total := 0.0
		for r := 0; r < n; r++ {
			total += 1 / float64(r+3)
		}
		acc, want := 0.0, n-1
		for r := 0; r < n; r++ {
			acc += 1 / float64(r+3) / total
			if u <= acc {
				want = r
				break
			}
		}
		if got != want {
			t.Fatalf("draw %d: pick = %d, linear scan = %d", i, got, want)
		}
	}
}

func TestMakeVocabThirdSyllable(t *testing.T) {
	v := makeVocab(3000, nil)
	if len(v) != 3000 {
		t.Fatalf("len = %d, want 3000", len(v))
	}
	seen := map[string]bool{}
	for _, w := range v {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
	// Historical vocabularies stay a frozen prefix.
	old := makeVocab(400, nil)
	for i, w := range old {
		if v[i] != w {
			t.Fatalf("prefix changed at %d: %q vs %q", i, v[i], w)
		}
	}
}

func TestSongsWithSizesAndDupFrac(t *testing.T) {
	d := SongsWith(SongsOpts{NA: 300, NB: 800, DupFrac: 0.8}, 21)
	if d.A.Len() != 300 || d.B.Len() != 800 {
		t.Fatalf("sizes = %d×%d", d.A.Len(), d.B.Len())
	}
	if d.Matches() < 560 || d.Matches() > 720 {
		t.Fatalf("matches = %d, want ≈640 at DupFrac 0.8", d.Matches())
	}
	sparse := SongsWith(SongsOpts{NA: 300, NB: 800, DupFrac: 0.2}, 21)
	if sparse.Matches() >= d.Matches() {
		t.Fatalf("DupFrac 0.2 produced %d matches, ≥ the %d at 0.8", sparse.Matches(), d.Matches())
	}
}

// titleTokenStats returns the number of distinct title tokens in A and the
// frequency share of the most common one.
func titleTokenStats(d *Dataset) (distinct int, topShare float64) {
	col := d.A.Schema.Col("title")
	counts := map[string]int{}
	total := 0
	for i := 0; i < d.A.Len(); i++ {
		for _, w := range strings.Fields(d.A.Value(i, col)) {
			counts[w]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return len(counts), float64(max) / float64(total)
}

func TestSongsSkewAndVocabKnobs(t *testing.T) {
	flat := SongsWith(SongsOpts{NA: 800, NB: 20}, 5)
	skewed := SongsWith(SongsOpts{NA: 800, NB: 20, Skew: 2.5}, 5)
	_, flatTop := titleTokenStats(flat)
	_, skewTop := titleTokenStats(skewed)
	if skewTop < flatTop*2 {
		t.Fatalf("skew 2.5 top-token share %.3f not ≫ default %.3f", skewTop, flatTop)
	}
	narrow := SongsWith(SongsOpts{NA: 800, NB: 20, Vocab: 40}, 5)
	wide := SongsWith(SongsOpts{NA: 800, NB: 20, Vocab: 2000}, 5)
	narrowDistinct, _ := titleTokenStats(narrow)
	wideDistinct, _ := titleTokenStats(wide)
	if narrowDistinct >= wideDistinct {
		t.Fatalf("vocab 40 gave %d distinct tokens, ≥ vocab 2000's %d", narrowDistinct, wideDistinct)
	}
	// Same knobs, same seed → identical tables.
	again := SongsWith(SongsOpts{NA: 800, NB: 20, Skew: 2.5}, 5)
	col := skewed.A.Schema.Col("title")
	for i := 0; i < skewed.A.Len(); i++ {
		if skewed.A.Value(i, col) != again.A.Value(i, col) {
			t.Fatal("same-seed SongsWith runs differ")
		}
	}
}

func TestMinimumSizesClamped(t *testing.T) {
	for _, d := range []*Dataset{Products(0, 9), Songs(1, 9), Citations(1, 1, 9), Drugs(1, 9)} {
		if d.A.Len() == 0 || d.B.Len() == 0 {
			t.Fatalf("%s generated empty tables", d.Name)
		}
	}
}
