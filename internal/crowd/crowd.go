// Package crowd simulates the crowdsourcing platform Falcon labels tuple
// pairs with (paper §3.4, §11). It reproduces the paper's crowdsourcing
// mechanics exactly:
//
//   - questions are batched into HITs of q=10 questions, h=2 HITs per
//     active-learning iteration (20 pairs/iteration);
//   - al_matcher questions take v_m=3 answers with majority voting;
//   - eval_rules questions use the strong-majority scheme with up to v_e=7
//     answers;
//   - each answer costs c=$0.02;
//   - the crowd-cost cap C_max of §3.4 is enforced.
//
// Workers are simulated with Corleone's random-worker model: a worker
// answers correctly with probability 1−errorRate (used for Figure 9 and
// all synthetic-crowd runs, as in §11.4). An in-house "crowd of one"
// (§11.1's drug-matching deployment) is a platform with one perfect worker
// and one answer per question.
package crowd

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"falcon/internal/table"
)

// Question asks the crowd whether a tuple pair matches. Truth carries the
// ground-truth label the simulated workers perturb; a real platform would
// ignore it.
type Question struct {
	Pair  table.Pair
	Truth bool
}

// Platform produces one worker answer for a question. Implementations must
// be deterministic given their construction seed.
type Platform interface {
	// Answer returns one worker's yes/no answer for the question.
	Answer(q Question) bool
	// AnswersPerQuestion returns how many answers the platform collects per
	// question under simple voting (3 on Mechanical Turk, 1 in-house).
	AnswersPerQuestion() int
	// HITLatency is the latency of one HIT posting wave.
	HITLatency() time.Duration
}

// RandomWorkers is Corleone's random-worker model: every answer is wrong
// independently with probability ErrorRate.
type RandomWorkers struct {
	ErrorRate float64
	Latency   time.Duration
	Votes     int
	rng       *rand.Rand
}

// NewRandomWorkers returns a Mechanical-Turk-style simulated platform.
// A zero latency defaults to the paper's 1.5 minutes per 10-question HIT;
// zero votes defaults to 3.
func NewRandomWorkers(errorRate float64, latency time.Duration, seed int64) *RandomWorkers {
	if latency == 0 {
		latency = 90 * time.Second
	}
	return &RandomWorkers{ErrorRate: errorRate, Latency: latency, Votes: 3, rng: rand.New(rand.NewSource(seed))}
}

// Answer implements Platform.
func (w *RandomWorkers) Answer(q Question) bool {
	if w.rng.Float64() < w.ErrorRate {
		return !q.Truth
	}
	return q.Truth
}

// AnswersPerQuestion implements Platform.
func (w *RandomWorkers) AnswersPerQuestion() int {
	if w.Votes <= 0 {
		return 3
	}
	return w.Votes
}

// HITLatency implements Platform.
func (w *RandomWorkers) HITLatency() time.Duration { return w.Latency }

// InHouse models a single dedicated expert labeler (a "crowd of 1"):
// perfect answers, one answer per question, configurable per-HIT latency.
type InHouse struct {
	Latency time.Duration
}

// Answer implements Platform.
func (InHouse) Answer(q Question) bool { return q.Truth }

// AnswersPerQuestion implements Platform.
func (InHouse) AnswersPerQuestion() int { return 1 }

// HITLatency implements Platform.
func (h InHouse) HITLatency() time.Duration {
	if h.Latency == 0 {
		return 20 * time.Second
	}
	return h.Latency
}

// Config holds the crowdsourcing constants of §3.4.
type Config struct {
	QuestionsPerHIT int     // q, default 10
	HITsPerBatch    int     // h, default 2
	CostPerAnswer   float64 // c, default $0.02
	StrongMaxVotes  int     // v_e, default 7
	// MaxParallelHITs bounds how many HITs one posting wave can absorb;
	// larger batches take multiple waves of HITLatency. Default 4.
	MaxParallelHITs int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{QuestionsPerHIT: 10, HITsPerBatch: 2, CostPerAnswer: 0.02, StrongMaxVotes: 7, MaxParallelHITs: 4}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.QuestionsPerHIT <= 0 {
		c.QuestionsPerHIT = d.QuestionsPerHIT
	}
	if c.HITsPerBatch <= 0 {
		c.HITsPerBatch = d.HITsPerBatch
	}
	if c.CostPerAnswer <= 0 {
		c.CostPerAnswer = d.CostPerAnswer
	}
	if c.StrongMaxVotes <= 0 {
		c.StrongMaxVotes = d.StrongMaxVotes
	}
	if c.MaxParallelHITs <= 0 {
		c.MaxParallelHITs = d.MaxParallelHITs
	}
	return c
}

// Ledger accumulates crowdsourcing usage across a run.
type Ledger struct {
	Questions int
	Answers   int
	Cost      float64
	Latency   time.Duration
}

// Crowd wraps a platform with HIT batching, voting, and cost accounting.
type Crowd struct {
	platform Platform
	cfg      Config
	ledger   Ledger
}

// New builds a crowd runner over a platform.
func New(p Platform, cfg Config) *Crowd {
	return &Crowd{platform: p, cfg: cfg.withDefaults()}
}

// Ledger returns the usage accumulated so far.
func (c *Crowd) Ledger() Ledger { return c.ledger }

// Config returns the effective configuration.
func (c *Crowd) Config() Config { return c.cfg }

// BatchSize returns the number of pairs labeled per active-learning
// iteration (h × q = 20 by default).
func (c *Crowd) BatchSize() int { return c.cfg.QuestionsPerHIT * c.cfg.HITsPerBatch }

// LabelMajority labels the questions with simple majority voting; see
// LabelMajorityContext.
func (c *Crowd) LabelMajority(qs []Question) ([]bool, time.Duration) {
	labels, lat, _ := c.LabelMajorityContext(context.Background(), qs)
	return labels, lat
}

// LabelMajorityContext labels the questions with simple majority voting over
// the platform's per-question answer count (al_matcher's scheme). It returns
// the voted labels and the simulated wall-clock latency of the batch. The
// crowd wait is cancellable: when ctx ends mid-batch, the questions already
// answered stay on the ledger and ctx.Err() is returned.
func (c *Crowd) LabelMajorityContext(ctx context.Context, qs []Question) ([]bool, time.Duration, error) {
	votes := c.platform.AnswersPerQuestion()
	labels := make([]bool, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			c.ledger.Questions += i
			return nil, 0, err
		}
		yes := 0
		for v := 0; v < votes; v++ {
			if c.platform.Answer(q) {
				yes++
			}
		}
		labels[i] = 2*yes > votes
		c.ledger.Answers += votes
	}
	c.ledger.Questions += len(qs)
	lat := c.batchLatency(len(qs), 1)
	c.ledger.Latency += lat
	return labels, lat, nil
}

// LabelStrongMajority labels the questions with the strong-majority scheme;
// see LabelStrongMajorityContext.
func (c *Crowd) LabelStrongMajority(qs []Question) ([]bool, time.Duration) {
	labels, lat, _ := c.LabelStrongMajorityContext(context.Background(), qs)
	return labels, lat
}

// LabelStrongMajorityContext labels the questions with the strong-majority
// scheme of eval_rules: collect 3 answers; while no side holds a strong
// majority (≥4 of up to 7), collect two more, stopping at StrongMaxVotes.
// Platforms that collect fewer than 3 answers per question (an in-house
// crowd of one) start — and stop — with that many. The crowd wait is
// cancellable: when ctx ends mid-batch, answered questions stay on the
// ledger and ctx.Err() is returned.
func (c *Crowd) LabelStrongMajorityContext(ctx context.Context, qs []Question) ([]bool, time.Duration, error) {
	labels := make([]bool, len(qs))
	maxRounds := 1
	initial := c.platform.AnswersPerQuestion()
	if initial > 3 {
		initial = 3
	}
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			c.ledger.Questions += i
			return nil, 0, err
		}
		yes, total := 0, 0
		ask := func(n int) {
			for v := 0; v < n; v++ {
				if c.platform.Answer(q) {
					yes++
				}
				total++
			}
		}
		ask(initial)
		rounds := 1
		strong := func() bool { return yes >= 4 || total-yes >= 4 || yes == total || yes == 0 }
		for !strong() && total+2 <= c.cfg.StrongMaxVotes {
			ask(2)
			rounds++
		}
		if rounds > maxRounds {
			maxRounds = rounds
		}
		labels[i] = 2*yes > total
		c.ledger.Answers += total
	}
	c.ledger.Questions += len(qs)
	lat := c.batchLatency(len(qs), maxRounds)
	c.ledger.Latency += lat
	return labels, lat, nil
}

// batchLatency models posting-wave latency: HITs post in waves of
// MaxParallelHITs; each wave (and each extra voting round) costs one HIT
// latency.
func (c *Crowd) batchLatency(nQuestions, rounds int) time.Duration {
	if nQuestions == 0 {
		return 0
	}
	hits := (nQuestions + c.cfg.QuestionsPerHIT - 1) / c.cfg.QuestionsPerHIT
	waves := (hits + c.cfg.MaxParallelHITs - 1) / c.cfg.MaxParallelHITs
	return time.Duration(waves+rounds-1) * c.platform.HITLatency()
}

// TotalCost returns the monetary cost so far (answers × cost/answer).
func (c *Crowd) TotalCost() float64 {
	return float64(c.ledger.Answers) * c.cfg.CostPerAnswer
}

// CapParams are the constants of the §3.4 cost-cap formula.
type CapParams struct {
	NM int     // n_m: max al_matcher iterations beyond the seed (29)
	VM int     // v_m: answers per al_matcher question (3)
	K  int     // k: max rules evaluated by eval_rules (20)
	NE int     // n_e: max iterations per rule in eval_rules (5)
	VE int     // v_e: max answers per eval_rules question (7)
	H  int     // h: HITs per iteration (2)
	Q  int     // q: questions per HIT (10)
	C  float64 // c: reward per answer ($0.02)
}

// DefaultCapParams returns the paper's setting, which yields $349.60.
func DefaultCapParams() CapParams {
	return CapParams{NM: 29, VM: 3, K: 20, NE: 5, VE: 7, H: 2, Q: 10, C: 0.02}
}

// CostCap computes C_max = (2·n_m·v_m + k·n_e·v_e) · h · q · c.
func CostCap(p CapParams) float64 {
	return (2*float64(p.NM)*float64(p.VM) + float64(p.K)*float64(p.NE)*float64(p.VE)) *
		float64(p.H) * float64(p.Q) * p.C
}

// ErrBudgetExceeded is returned by CheckBudget when spending passes a cap.
type ErrBudgetExceeded struct {
	Spent, Budget float64
}

// Error implements error.
func (e ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("crowd budget exceeded: spent $%.2f of $%.2f", e.Spent, e.Budget)
}

// CheckBudget returns an error if spending has passed the budget (0 means
// unlimited).
func (c *Crowd) CheckBudget(budget float64) error {
	if budget > 0 && c.TotalCost() > budget {
		return ErrBudgetExceeded{Spent: c.TotalCost(), Budget: budget}
	}
	return nil
}

// MixedWorkers models a realistic worker population: each answer comes from
// a worker whose error rate is drawn from a pool mixing reliable workers
// with a minority of sloppy ones (turker qualifications filter spammers but
// not all noise — §11's "common turker qualifications"). Majority voting is
// what makes the aggregate usable.
type MixedWorkers struct {
	workers []float64 // per-worker error rates
	latency time.Duration
	rng     *rand.Rand
}

// NewMixedWorkers builds a pool of n workers: goodShare of them answer with
// goodErr error, the rest with badErr.
func NewMixedWorkers(n int, goodShare, goodErr, badErr float64, latency time.Duration, seed int64) *MixedWorkers {
	if n < 1 {
		n = 1
	}
	if latency == 0 {
		latency = 90 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	for i := range w {
		if rng.Float64() < goodShare {
			w[i] = goodErr
		} else {
			w[i] = badErr
		}
	}
	return &MixedWorkers{workers: w, latency: latency, rng: rng}
}

// Answer implements Platform: a random worker from the pool answers.
func (m *MixedWorkers) Answer(q Question) bool {
	errRate := m.workers[m.rng.Intn(len(m.workers))]
	if m.rng.Float64() < errRate {
		return !q.Truth
	}
	return q.Truth
}

// AnswersPerQuestion implements Platform.
func (m *MixedWorkers) AnswersPerQuestion() int { return 3 }

// HITLatency implements Platform.
func (m *MixedWorkers) HITLatency() time.Duration { return m.latency }
