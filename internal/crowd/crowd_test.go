package crowd

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"falcon/internal/table"
)

func questions(n int, truth bool) []Question {
	qs := make([]Question, n)
	for i := range qs {
		qs[i] = Question{Pair: table.Pair{A: i, B: i}, Truth: truth}
	}
	return qs
}

func TestCostCapMatchesPaper(t *testing.T) {
	got := CostCap(DefaultCapParams())
	if math.Abs(got-349.60) > 1e-9 {
		t.Fatalf("C_max = %v, want 349.60", got)
	}
}

func TestPerfectCrowdMajority(t *testing.T) {
	c := New(NewRandomWorkers(0, 0, 1), Config{})
	labels, lat := c.LabelMajority(questions(20, true))
	for i, l := range labels {
		if !l {
			t.Fatalf("perfect crowd mislabeled question %d", i)
		}
	}
	// 20 questions = 2 HITs = 1 wave of 1.5 minutes.
	if lat != 90*time.Second {
		t.Fatalf("latency = %v, want 90s", lat)
	}
	led := c.Ledger()
	if led.Questions != 20 || led.Answers != 60 {
		t.Fatalf("ledger = %+v", led)
	}
	if got := c.TotalCost(); math.Abs(got-60*0.02) > 1e-9 {
		t.Fatalf("cost = %v, want $1.20", got)
	}
}

func TestNoisyCrowdMajorityHelps(t *testing.T) {
	// With 20% error and 3 votes, majority error ≈ 10.4%; over many
	// questions the accuracy should land well above single-answer accuracy.
	c := New(NewRandomWorkers(0.2, 0, 42), Config{})
	qs := questions(2000, true)
	labels, _ := c.LabelMajority(qs)
	correct := 0
	for _, l := range labels {
		if l {
			correct++
		}
	}
	acc := float64(correct) / float64(len(labels))
	if acc < 0.85 || acc > 0.95 {
		t.Fatalf("majority accuracy = %v, want ≈0.896", acc)
	}
}

func TestVeryNoisyCrowdDegrades(t *testing.T) {
	c := New(NewRandomWorkers(0.5, 0, 7), Config{})
	labels, _ := c.LabelMajority(questions(1000, true))
	correct := 0
	for _, l := range labels {
		if l {
			correct++
		}
	}
	acc := float64(correct) / 1000
	if acc < 0.4 || acc > 0.6 {
		t.Fatalf("50%% error crowd accuracy = %v, want ≈0.5", acc)
	}
}

func TestStrongMajorityPerfectStopsAtThree(t *testing.T) {
	c := New(NewRandomWorkers(0, 0, 1), Config{})
	labels, _ := c.LabelStrongMajority(questions(10, false))
	for _, l := range labels {
		if l {
			t.Fatal("perfect crowd mislabeled")
		}
	}
	// Unanimous after 3 answers → exactly 3 answers per question.
	if got := c.Ledger().Answers; got != 30 {
		t.Fatalf("answers = %d, want 30", got)
	}
}

func TestStrongMajorityEscalates(t *testing.T) {
	c := New(NewRandomWorkers(0.45, 0, 3), Config{})
	qs := questions(500, true)
	c.LabelStrongMajority(qs)
	led := c.Ledger()
	avg := float64(led.Answers) / float64(led.Questions)
	if avg <= 3.05 {
		t.Fatalf("noisy crowd should escalate beyond 3 answers on average, got %v", avg)
	}
	if avg > 7 {
		t.Fatalf("average answers %v exceeds v_e = 7", avg)
	}
	// No question may exceed 7 answers: with 500 questions the max is
	// bounded by the ledger only in aggregate, so spot-check the cap math.
	if led.Answers > 7*led.Questions {
		t.Fatalf("answers %d exceed cap %d", led.Answers, 7*led.Questions)
	}
}

func TestInHousePlatform(t *testing.T) {
	c := New(InHouse{Latency: time.Minute}, Config{})
	labels, lat := c.LabelMajority(questions(20, true))
	for _, l := range labels {
		if !l {
			t.Fatal("in-house expert mislabeled")
		}
	}
	if got := c.Ledger().Answers; got != 20 {
		t.Fatalf("in-house should use 1 answer per question, got %d", got)
	}
	if lat != time.Minute {
		t.Fatalf("latency = %v", lat)
	}
}

func TestInHouseDefaultLatency(t *testing.T) {
	if (InHouse{}).HITLatency() != 20*time.Second {
		t.Fatal("default in-house latency wrong")
	}
}

func TestBatchLatencyWaves(t *testing.T) {
	// 100 questions = 10 HITs; 4 parallel → 3 waves.
	c := New(NewRandomWorkers(0, 0, 1), Config{})
	_, lat := c.LabelMajority(questions(100, true))
	if lat != 3*90*time.Second {
		t.Fatalf("latency = %v, want 4.5m", lat)
	}
}

func TestEmptyBatch(t *testing.T) {
	c := New(NewRandomWorkers(0, 0, 1), Config{})
	labels, lat := c.LabelMajority(nil)
	if len(labels) != 0 || lat != 0 {
		t.Fatal("empty batch should be free")
	}
}

func TestBatchSizeDefault(t *testing.T) {
	c := New(NewRandomWorkers(0, 0, 1), Config{})
	if c.BatchSize() != 20 {
		t.Fatalf("BatchSize = %d, want 20", c.BatchSize())
	}
}

func TestBudget(t *testing.T) {
	c := New(NewRandomWorkers(0, 0, 1), Config{})
	c.LabelMajority(questions(100, true)) // 300 answers = $6
	if err := c.CheckBudget(10); err != nil {
		t.Fatalf("under budget errored: %v", err)
	}
	err := c.CheckBudget(5)
	if err == nil {
		t.Fatal("over budget should error")
	}
	if _, ok := err.(ErrBudgetExceeded); !ok {
		t.Fatalf("error type %T", err)
	}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
	if err := c.CheckBudget(0); err != nil {
		t.Fatal("0 budget means unlimited")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []bool {
		c := New(NewRandomWorkers(0.3, 0, 99), Config{})
		labels, _ := c.LabelMajority(questions(200, true))
		return labels
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce answers")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(NewRandomWorkers(0, 0, 1), Config{QuestionsPerHIT: 5})
	cfg := c.Config()
	if cfg.QuestionsPerHIT != 5 {
		t.Fatal("explicit value overridden")
	}
	if cfg.HITsPerBatch != 2 || cfg.CostPerAnswer != 0.02 || cfg.StrongMaxVotes != 7 || cfg.MaxParallelHITs != 4 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// Property: ledger monotonically accumulates; cost = answers × $0.02;
// answers per question within [votes, StrongMaxVotes].
func TestQuickLedgerInvariants(t *testing.T) {
	f := func(seed int64, errPct uint8, n uint8) bool {
		c := New(NewRandomWorkers(float64(errPct%50)/100, 0, seed), Config{})
		qs := questions(int(n%50)+1, seed%2 == 0)
		c.LabelStrongMajority(qs)
		led := c.Ledger()
		if led.Questions != len(qs) {
			return false
		}
		if led.Answers < 3*led.Questions || led.Answers > 7*led.Questions {
			return false
		}
		return math.Abs(c.TotalCost()-float64(led.Answers)*0.02) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: C_max grows monotonically in every parameter.
func TestQuickCostCapMonotone(t *testing.T) {
	base := DefaultCapParams()
	baseCap := CostCap(base)
	f := func(bump uint8) bool {
		p := base
		switch bump % 5 {
		case 0:
			p.NM++
		case 1:
			p.K++
		case 2:
			p.NE++
		case 3:
			p.VE++
		case 4:
			p.H++
		}
		return CostCap(p) > baseCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedWorkersPool(t *testing.T) {
	// 80% good workers (2% error), 20% sloppy (35% error): majority voting
	// should still label accurately.
	p := NewMixedWorkers(50, 0.8, 0.02, 0.35, 0, 9)
	c := New(p, Config{})
	labels, lat := c.LabelMajority(questions(1000, true))
	correct := 0
	for _, l := range labels {
		if l {
			correct++
		}
	}
	acc := float64(correct) / 1000
	if acc < 0.95 {
		t.Fatalf("mixed-pool accuracy %v, want ≥0.95 after voting", acc)
	}
	if lat <= 0 {
		t.Fatal("no latency")
	}
	if p.AnswersPerQuestion() != 3 {
		t.Fatal("votes wrong")
	}
	if p.HITLatency() != 90*time.Second {
		t.Fatal("default latency wrong")
	}
}

func TestMixedWorkersAllSloppyDegrades(t *testing.T) {
	p := NewMixedWorkers(10, 0, 0.02, 0.45, time.Minute, 11)
	c := New(p, Config{})
	labels, _ := c.LabelMajority(questions(1000, true))
	correct := 0
	for _, l := range labels {
		if l {
			correct++
		}
	}
	acc := float64(correct) / 1000
	// 45% per-answer error → majority-of-3 ≈ 57.7% accuracy.
	if acc > 0.75 {
		t.Fatalf("all-sloppy pool accuracy %v suspiciously high", acc)
	}
	if p.HITLatency() != time.Minute {
		t.Fatal("latency override lost")
	}
}

func TestMixedWorkersClampsPoolSize(t *testing.T) {
	p := NewMixedWorkers(0, 1, 0, 0, 0, 1)
	if !p.Answer(Question{Truth: true}) {
		t.Fatal("single perfect worker mislabeled")
	}
}
