package filters

import (
	"context"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"falcon/internal/feature"
	"falcon/internal/index"
	"falcon/internal/mapreduce"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Indexes is the registry of built filter indexes over table A. It is
// filled incrementally — generic pieces (token orderings, hash and tree
// indexes) can be built during al_matcher's crowd time, predicate-specific
// prefix indexes during eval_rules (§10.2 optimization 1) — and reused.
type Indexes struct {
	cluster *mapreduce.Cluster
	a       *table.Table

	hash   map[int]*index.HashIndex
	tree   map[int]*index.TreeIndex
	ord    map[ordKey]*index.Ordering
	prefix map[specKey]*index.PrefixIndex

	// Reference routes prefix probes through the retired string-keyed path
	// (per-probe tokenization + map dedup). Test-only: the golden
	// equivalence tests prove both paths produce identical candidates,
	// probe counts, and therefore SimTime.
	Reference bool

	// bcols caches probe-side columns dictionary-encoded under a prefix
	// index's ordering, so probing B re-tokenizes nothing. Built whole-
	// column under mu on first access (like feature.Vectorizer's caches)
	// and immutable afterwards.
	mu    sync.RWMutex
	bcols map[bcolKey][][]uint32
}

type ordKey struct {
	col  int
	kind tokenize.Kind
}

// bcolKey identifies one probe-side encoded column: the probed table and
// column, encoded under the ordering of (A column, tokenization).
type bcolKey struct {
	tab *table.Table
	col int
	ord ordKey
}

// NewIndexes returns an empty registry for table a on the cluster.
func NewIndexes(cluster *mapreduce.Cluster, a *table.Table) *Indexes {
	return &Indexes{
		cluster: cluster,
		a:       a,
		hash:    map[int]*index.HashIndex{},
		tree:    map[int]*index.TreeIndex{},
		ord:     map[ordKey]*index.Ordering{},
		prefix:  map[specKey]*index.PrefixIndex{},
		bcols:   map[bcolKey][][]uint32{},
	}
}

// encodedCol returns the b column encoded as sorted token-ID sets under the
// ordering for ok, building it on first access. Tokens the ordering does
// not know get distinct extension IDs ≥ Ordering.Len(): they keep the probe
// set's length and the known tokens' positions, carry no postings, and cost
// one lookup each — exactly the string path's behavior (see the ProbeIDs
// contract). Raw values are encoded as-is (no missing-value check), again
// matching the string probe, which tokenizes whatever the tuple holds.
func (ix *Indexes) encodedCol(b *table.Table, col int, ok ordKey) [][]uint32 {
	k := bcolKey{b, col, ok}
	ix.mu.RLock()
	rows, hit := ix.bcols[k]
	ix.mu.RUnlock()
	if hit {
		return rows
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if rows, hit := ix.bcols[k]; hit {
		return rows
	}
	ord := ix.ord[ok]
	dict := ord.Dict()
	ext := tokenize.NewDict()
	base := uint32(ord.Len())
	rows = make([][]uint32, b.Len())
	for row := range rows {
		toks := tokenize.Set(ok.kind, b.Value(row, col))
		if len(toks) == 0 {
			continue
		}
		ids := make([]uint32, len(toks))
		for i, t := range toks {
			if id, known := dict.ID(t); known {
				ids[i] = id
			} else {
				ids[i] = base + ext.Intern(t)
			}
		}
		slices.Sort(ids)
		rows[row] = ids
	}
	ix.bcols[k] = rows //falcon:allow streambound one entry per (table, column, ordering) triple — bounded by the schema, not the record stream
	return rows
}

// probePrefix probes one prefix index for b's row, serving the probe token
// set from the encoded column cache. Indexes whose build tokens fell
// outside their ordering (only possible with a mismatched ordering) keep
// string-keyed postings the ID path cannot see, so they take the
// string-probing path instead.
func (ix *Indexes) probePrefix(idx *index.PrefixIndex, bp BoundPred, b *table.Table, row int) ([]int32, int64) {
	if ix.Reference {
		return idx.ReferenceProbe(bp.Feat.Measure, bp.Threshold, b.Value(row, bp.Feat.BCol))
	}
	if idx.HasExtension() {
		return idx.Probe(bp.Feat.Measure, bp.Threshold, b.Value(row, bp.Feat.BCol))
	}
	rows := ix.encodedCol(b, bp.Feat.BCol, ordKey{bp.Feat.ACol, idx.Kind})
	return idx.ProbeIDs(bp.Feat.Measure, bp.Threshold, rows[row])
}

// EnsureOrdering builds (or reuses) the global token ordering for a
// (column, tokenization) pair, returning the cluster time spent (0 if
// cached).
func (ix *Indexes) EnsureOrdering(ctx context.Context, col int, kind tokenize.Kind) (time.Duration, error) {
	k := ordKey{col, kind}
	if _, ok := ix.ord[k]; ok {
		return 0, nil
	}
	ord, d, err := index.BuildOrderingMR(ctx, ix.cluster, ix.a, col, kind)
	if err != nil {
		return 0, err
	}
	ix.ord[k] = ord
	return d, nil
}

// EnsureHash builds (or reuses) the hash index for a column.
func (ix *Indexes) EnsureHash(ctx context.Context, col int) (time.Duration, error) {
	if _, ok := ix.hash[col]; ok {
		return 0, nil
	}
	h, d, err := index.BuildHashMR(ctx, ix.cluster, ix.a, col)
	if err != nil {
		return 0, err
	}
	ix.hash[col] = h
	return d, nil
}

// EnsureTree builds (or reuses) the tree index for a column.
func (ix *Indexes) EnsureTree(ctx context.Context, col int) (time.Duration, error) {
	if _, ok := ix.tree[col]; ok {
		return 0, nil
	}
	t, d, err := index.BuildTreeMR(ctx, ix.cluster, ix.a, col)
	if err != nil {
		return 0, err
	}
	ix.tree[col] = t
	return d, nil
}

// EnsureSpec builds (or reuses) the index for one spec, including any token
// ordering a prefix index depends on. A cached prefix index is reused only
// if its build threshold is low enough for the spec.
func (ix *Indexes) EnsureSpec(ctx context.Context, spec IndexSpec) (time.Duration, error) {
	switch spec.Kind {
	case Equivalence:
		return ix.EnsureHash(ctx, spec.ACol)
	case Range:
		return ix.EnsureTree(ctx, spec.ACol)
	case PrefixSet, ShareGram:
		k := specKey{PrefixSet, spec.ACol, spec.Token, spec.Measure}
		if spec.Kind == ShareGram {
			k.kind = ShareGram
		}
		if old, ok := ix.prefix[k]; ok && old.Threshold <= spec.Threshold {
			return 0, nil
		}
		dOrd, err := ix.EnsureOrdering(ctx, spec.ACol, spec.Token)
		if err != nil {
			return 0, err
		}
		idx, dIdx, err := index.BuildPrefixMR(ctx, ix.cluster, ix.a, spec.ACol, spec.Token, ix.ord[ordKey{spec.ACol, spec.Token}], spec.Measure, spec.Threshold)
		if err != nil {
			return 0, err
		}
		ix.prefix[k] = idx
		return dOrd + dIdx, nil
	default:
		panic("filters: EnsureSpec on unfilterable kind")
	}
}

// EnsureAll builds every spec, returning total cluster time.
func (ix *Indexes) EnsureAll(ctx context.Context, specs []IndexSpec) (time.Duration, error) {
	var total time.Duration
	for _, s := range specs {
		d, err := ix.EnsureSpec(ctx, s)
		if err != nil {
			return total, err
		}
		total += d
	}
	return total, nil
}

// SpecBytes returns the built size of the spec's index (0 if absent).
func (ix *Indexes) SpecBytes(spec IndexSpec) int64 {
	switch spec.Kind {
	case Equivalence:
		if h := ix.hash[spec.ACol]; h != nil {
			return h.SizeBytes()
		}
	case Range:
		if t := ix.tree[spec.ACol]; t != nil {
			return t.SizeBytes()
		}
	case PrefixSet, ShareGram:
		k := specKey{spec.Kind, spec.ACol, spec.Token, spec.Measure}
		if p := ix.prefix[k]; p != nil {
			b := p.SizeBytes()
			if o := ix.ord[ordKey{spec.ACol, spec.Token}]; o != nil {
				b += o.SizeBytes()
			}
			return b
		}
	}
	return 0
}

// ClauseBytes sums the unique index sizes a clause's filters need.
func (ix *Indexes) ClauseBytes(ci ClauseInfo) int64 {
	seen := map[specKey]bool{}
	var total int64
	for _, bp := range ci.Preds {
		if bp.Kind == Unfilterable {
			continue
		}
		spec := bp.indexSpec()
		k := specKey{spec.Kind, spec.ACol, spec.Token, spec.Measure}
		if seen[k] {
			continue
		}
		seen[k] = true
		total += ix.SpecBytes(spec)
	}
	return total
}

// TotalBytes sums all built index sizes.
func (ix *Indexes) TotalBytes() int64 {
	var total int64
	for _, h := range ix.hash {
		total += h.SizeBytes()
	}
	for _, t := range ix.tree {
		total += t.SizeBytes()
	}
	for _, o := range ix.ord {
		total += o.SizeBytes()
	}
	for _, p := range ix.prefix {
		total += p.SizeBytes()
	}
	return total
}

// PredCandidates returns the IDs of A tuples that may satisfy the bound
// predicate against tuple row of B. all=true means the filter cannot prune
// for this probe (every A tuple is a candidate). cost counts index probes
// for the MapReduce cost model.
func (ix *Indexes) PredCandidates(bp BoundPred, b *table.Table, row int) (cands []int32, all bool, cost int64) {
	bv := b.Value(row, bp.Feat.BCol)
	switch bp.Kind {
	case Equivalence:
		h := ix.hash[bp.Feat.ACol]
		got := h.Probe(bv)
		return got, false, int64(1 + len(got))
	case Range:
		if table.IsMissing(bv) {
			// Feature value is Missing for every a; the keep predicate
			// accepts Missing (e.g. −1 ≤ v), so nothing can be pruned.
			return nil, bp.Pred.Eval(feature.Missing), 1
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(bv), 64)
		if err != nil {
			return nil, bp.Pred.Eval(feature.Missing), 1
		}
		t := ix.tree[bp.Feat.ACol]
		lo, hi := RangeBounds(bp.Feat.Measure, y, bp.Threshold)
		got := t.ProbeRange(lo, hi)
		// A-side unparseables also evaluate to Missing → keep.
		if bp.Pred.Eval(feature.Missing) {
			got = append(append([]int32(nil), got...), t.Unparseable()...)
		}
		sortIDs(got)
		return got, false, int64(1 + len(got))
	case PrefixSet:
		k := specKey{PrefixSet, bp.Feat.ACol, bp.Feat.Token, bp.Feat.Measure}
		got, probes := ix.probePrefix(ix.prefix[k], bp, b, row)
		return got, false, probes + 1
	case ShareGram:
		k := specKey{ShareGram, bp.Feat.ACol, tokenize.Gram3, bp.Feat.Measure}
		got, probes := ix.probePrefix(ix.prefix[k], bp, b, row)
		return got, false, probes + 1
	default:
		return nil, true, 0
	}
}

// ClauseCandidates unions predicate candidates for one clause (disjunction).
func (ix *Indexes) ClauseCandidates(ci ClauseInfo, b *table.Table, row int) (cands []int32, all bool, cost int64) {
	if !ci.Filterable {
		return nil, true, 0
	}
	var lists [][]int32
	for _, bp := range ci.Preds {
		got, isAll, c := ix.PredCandidates(bp, b, row)
		cost += c
		if isAll {
			return nil, true, cost
		}
		lists = append(lists, got)
	}
	return unionSorted(lists), false, cost
}

// RuleCandidates intersects the filterable clauses' candidates — the
// C_Q ← ∩_q ∪_p FindProbableCandidates(V, p) step of Algorithm 1. Clauses
// in `use` (indexes into a.Clauses) participate; pass nil to use all
// filterable clauses. all=true means no clause pruned.
func (ix *Indexes) RuleCandidates(a *Analysis, use []int, b *table.Table, row int) (cands []int32, all bool, cost int64) {
	if use == nil {
		use = a.FilterableClauses()
	}
	first := true
	for _, cidx := range use {
		got, isAll, c := ix.ClauseCandidates(a.Clauses[cidx], b, row)
		cost += c
		if isAll {
			continue
		}
		if first {
			cands, first = got, false
			continue
		}
		cands = intersectSorted(cands, got)
		if len(cands) == 0 {
			return nil, false, cost
		}
	}
	if first {
		return nil, true, cost
	}
	return cands, false, cost
}

// batchPred is one predicate occurrence's hoisted probe state inside a
// RuleCandidatesBatch call. pr != nil means the predicate probes through a
// pinned index session (the batched ID path); otherwise it falls back to the
// per-row PredCandidates path (Equivalence, Range, Reference mode, and
// extension-carrying prefix indexes).
type batchPred struct {
	bp  BoundPred
	pr  *index.Prober
	col [][]uint32 // encoded probe column for the session path
	buf []int32    // probe result buffer, reused across rows
}

// batchClause is one clause's hoisted batch state: its predicates plus union
// buffers grown to the clause's high-water mark across the batch.
type batchClause struct {
	info   ClauseInfo
	preds  []batchPred
	lists  [][]int32
	u1, u2 []int32
}

// candidates is ClauseCandidates through the hoisted state: identical
// candidate IDs, all flag, and probe cost, with the probe and union results
// landing in reused buffers. The returned slice is valid until the clause is
// evaluated for the next row.
func (bc *batchClause) candidates(ix *Indexes, b *table.Table, row int) (cands []int32, all bool, cost int64) {
	if !bc.info.Filterable {
		return nil, true, 0
	}
	bc.lists = bc.lists[:0]
	for pi := range bc.preds {
		p := &bc.preds[pi]
		var got []int32
		var isAll bool
		var c int64
		if p.pr != nil {
			var probes int64
			p.buf, probes = p.pr.ProbeIDsInto(p.bp.Feat.Measure, p.bp.Threshold, p.col[row], p.buf[:0])
			got, isAll, c = p.buf, false, probes+1
		} else {
			got, isAll, c = ix.PredCandidates(p.bp, b, row)
		}
		cost += c
		if isAll {
			return nil, true, cost
		}
		bc.lists = append(bc.lists, got)
	}
	return bc.union(bc.lists), false, cost
}

// union is unionSorted into the clause's double buffer. Alternating the
// destination guarantees the accumulator never aliases the buffer being
// written.
func (bc *batchClause) union(lists [][]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	out := lists[0]
	useFirst := true
	for _, l := range lists[1:] {
		var dst []int32
		if useFirst {
			dst = bc.u1[:0]
		} else {
			dst = bc.u2[:0]
		}
		dst = mergeUnionInto(dst, out, l)
		if useFirst {
			bc.u1 = dst
		} else {
			bc.u2 = dst
		}
		out = dst
		useFirst = !useFirst
	}
	return out
}

// RuleCandidatesBatch runs RuleCandidates for every B row in rows, calling
// visit(i, cands, all, cost) in input order. Per-row results are identical —
// same candidate IDs, same all flag, same probe cost, in the same clause and
// predicate order — but the per-row setup is hoisted out of the loop: each
// prefix predicate pins one probe session (index.Prober) for the whole batch,
// the encoded probe columns are resolved once, and probe, union, and
// intersection results land in buffers reused across rows. cands is valid
// only during the visit call.
func (ix *Indexes) RuleCandidatesBatch(a *Analysis, use []int, b *table.Table, rows []int, visit func(i int, cands []int32, all bool, cost int64)) {
	if use == nil {
		use = a.FilterableClauses()
	}
	clauses := make([]*batchClause, len(use))
	for ci, cidx := range use {
		bc := &batchClause{info: a.Clauses[cidx]}
		if bc.info.Filterable {
			for _, bp := range bc.info.Preds {
				pred := batchPred{bp: bp}
				if bp.Kind == PrefixSet || bp.Kind == ShareGram {
					tok := bp.Feat.Token
					if bp.Kind == ShareGram {
						tok = tokenize.Gram3
					}
					idx := ix.prefix[specKey{bp.Kind, bp.Feat.ACol, tok, bp.Feat.Measure}]
					if idx != nil && !ix.Reference && !idx.HasExtension() {
						//falcon:allow scratchescape the batch owns the session for the stripe; the deferred cleanup releases every prober
						pred.pr = idx.AcquireProber()
						pred.col = ix.encodedCol(b, bp.Feat.BCol, ordKey{bp.Feat.ACol, idx.Kind})
					}
				}
				bc.preds = append(bc.preds, pred)
			}
		}
		clauses[ci] = bc
	}
	defer func() {
		for _, bc := range clauses {
			for i := range bc.preds {
				if bc.preds[i].pr != nil {
					bc.preds[i].pr.Release()
				}
			}
		}
	}()

	var i1, i2 []int32 // intersection double buffer
	for ri, row := range rows {
		var cands []int32
		var cost int64
		first, empty, useFirst := true, false, true
		for _, bc := range clauses {
			got, isAll, c := bc.candidates(ix, b, row)
			cost += c
			if isAll {
				continue
			}
			if first {
				cands, first = got, false
				continue
			}
			var dst []int32
			if useFirst {
				dst = i1[:0]
			} else {
				dst = i2[:0]
			}
			dst = intersectInto(dst, cands, got)
			if useFirst {
				i1 = dst
			} else {
				i2 = dst
			}
			cands = dst
			useFirst = !useFirst
			if len(cands) == 0 {
				empty = true
				break
			}
		}
		switch {
		case first:
			visit(ri, nil, true, cost)
		case empty:
			visit(ri, nil, false, cost)
		default:
			visit(ri, cands, false, cost)
		}
	}
}

func sortIDs(ids []int32) { slices.Sort(ids) }

// unionSorted merges sorted ID lists into a sorted, de-duplicated union.
func unionSorted(lists [][]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	var out []int32
	for _, l := range lists {
		out = mergeUnion(out, l)
	}
	return out
}

func mergeUnion(a, b []int32) []int32 {
	return mergeUnionInto(make([]int32, 0, len(a)+len(b)), a, b)
}

// mergeUnionInto appends the sorted de-duplicated union of a and b to dst.
// dst must not alias a or b.
func mergeUnionInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

func intersectSorted(a, b []int32) []int32 {
	return intersectInto(nil, a, b)
}

// intersectInto appends the sorted intersection of a and b to dst. dst must
// not alias a or b.
func intersectInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
