package filters

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/feature"
	"falcon/internal/mapreduce"
	"falcon/internal/rules"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// booksTables builds a small A/B pair with title (short string), year and
// price (numeric) columns, including dirty rows.
func booksTables(nA, nB int, seed int64) (*table.Table, *table.Table) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"war", "peace", "art", "code", "go", "data", "cloud", "entity", "match", "systems"}
	mk := func(name string, n int) *table.Table {
		t := table.New(name, table.NewSchema("title", "year", "price"))
		for i := 0; i < n; i++ {
			var ws []string
			for j := 0; j < 2+rng.Intn(4); j++ {
				ws = append(ws, words[rng.Intn(len(words))])
			}
			title := ""
			for j, w := range ws {
				if j > 0 {
					title += " "
				}
				title += w
			}
			year := fmt.Sprint(1990 + rng.Intn(30))
			price := fmt.Sprintf("%.2f", 10+rng.Float64()*90)
			if rng.Intn(10) == 0 {
				year = "" // missing
			}
			if rng.Intn(30) == 0 {
				price = "n/a" // dirty
			}
			t.Append(title, year, price)
		}
		t.InferTypes()
		return t
	}
	return mk("A", nA), mk("B", nB)
}

// blockingFeatures returns the blocking feature pointers in vector order.
func blockingFeatures(set *feature.Set) []*feature.Feature {
	out := make([]*feature.Feature, len(set.BlockingIdx))
	for i, idx := range set.BlockingIdx {
		out[i] = &set.Features[idx]
	}
	return out
}

// featPos finds the blocking-vector position of a named feature.
func featPos(set *feature.Set, name string) int {
	for i, idx := range set.BlockingIdx {
		if set.Features[idx].Name == name {
			return i
		}
	}
	panic("feature not found: " + name)
}

func TestClassify(t *testing.T) {
	a, b := booksTables(10, 10, 1)
	set := feature.Generate(a, b)
	feats := blockingFeatures(set)

	em := featPos(set, "exact_match(year)")
	jw := featPos(set, "jaccard_word(title)")
	ad := featPos(set, "abs_diff(price)")
	rd := featPos(set, "rel_diff(price)")
	lev := featPos(set, "levenshtein(year)")

	cases := []struct {
		pred rules.Predicate
		want Kind
	}{
		{rules.Predicate{Feature: em, Op: rules.GT, Value: 0.5}, Equivalence},
		{rules.Predicate{Feature: em, Op: rules.LE, Value: 0.5}, Unfilterable},
		{rules.Predicate{Feature: jw, Op: rules.GT, Value: 0.4}, PrefixSet},
		{rules.Predicate{Feature: jw, Op: rules.LE, Value: 0.4}, Unfilterable},
		{rules.Predicate{Feature: ad, Op: rules.LE, Value: 10}, Range},
		{rules.Predicate{Feature: ad, Op: rules.GT, Value: 10}, Unfilterable},
		{rules.Predicate{Feature: rd, Op: rules.LT, Value: 0.2}, Range},
		{rules.Predicate{Feature: rd, Op: rules.LT, Value: 1.5}, Unfilterable},
		{rules.Predicate{Feature: lev, Op: rules.GE, Value: 0.8}, ShareGram},
		{rules.Predicate{Feature: lev, Op: rules.GE, Value: 0.5}, Unfilterable},
	}
	for _, c := range cases {
		got, _ := Classify(c.pred, feats[c.pred.Feature])
		if got != c.want {
			t.Errorf("Classify(%v on %s) = %v, want %v", c.pred, feats[c.pred.Feature].Name, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Unfilterable, Equivalence, Range, PrefixSet, ShareGram} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
	if Kind(42).String() != "kind(42)" {
		t.Fatal("unknown kind string")
	}
}

func TestAnalyzeAndNeededIndexes(t *testing.T) {
	a, b := booksTables(30, 30, 2)
	set := feature.Generate(a, b)
	feats := blockingFeatures(set)
	jw := featPos(set, "jaccard_word(title)")
	em := featPos(set, "exact_match(year)")
	ad := featPos(set, "abs_diff(price)")

	// Two rules: (jaccard ≤ 0.6 → drop) and (year differs AND price far → drop).
	seq := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: jw, Op: rules.LE, Value: 0.6}}},
		{ID: 1, Preds: []rules.Predicate{
			{Feature: em, Op: rules.LE, Value: 0.5},
			{Feature: ad, Op: rules.GE, Value: 10},
		}},
	}
	an := Analyze(rules.ToCNF(seq), feats)
	if len(an.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(an.Clauses))
	}
	if !an.Clauses[0].Filterable || !an.Clauses[1].Filterable {
		t.Fatalf("both clauses should be filterable: %+v", an.Clauses)
	}
	specs := an.NeededIndexes()
	kinds := map[Kind]int{}
	for _, s := range specs {
		kinds[s.Kind]++
	}
	if kinds[PrefixSet] != 1 || kinds[Equivalence] != 1 || kinds[Range] != 1 {
		t.Fatalf("specs = %v", specs)
	}
	if got := an.FilterableClauses(); len(got) != 2 {
		t.Fatalf("FilterableClauses = %v", got)
	}
}

func TestAnalyzeUnfilterableClause(t *testing.T) {
	a, b := booksTables(10, 10, 3)
	set := feature.Generate(a, b)
	feats := blockingFeatures(set)
	jw := featPos(set, "jaccard_word(title)")
	// Rule "jaccard > 0.6 → drop" negates to keep-pred jaccard ≤ 0.6:
	// dissimilarity, unfilterable.
	seq := []rules.Rule{{ID: 0, Preds: []rules.Predicate{{Feature: jw, Op: rules.GT, Value: 0.6}}}}
	an := Analyze(rules.ToCNF(seq), feats)
	if an.Clauses[0].Filterable {
		t.Fatal("dissimilarity clause must be unfilterable")
	}
	if len(an.NeededIndexes()) != 0 {
		t.Fatal("unfilterable clause should need no indexes")
	}
}

func TestThresholdMergingTakesMin(t *testing.T) {
	a, b := booksTables(10, 10, 4)
	set := feature.Generate(a, b)
	feats := blockingFeatures(set)
	jw := featPos(set, "jaccard_word(title)")
	seq := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: jw, Op: rules.LE, Value: 0.7}}},
		{ID: 1, Preds: []rules.Predicate{{Feature: jw, Op: rules.LE, Value: 0.3}}},
	}
	an := Analyze(rules.ToCNF(seq), feats)
	specs := an.NeededIndexes()
	if len(specs) != 1 {
		t.Fatalf("specs = %v, want one merged", specs)
	}
	if specs[0].Threshold != 0.3 {
		t.Fatalf("merged threshold = %v, want 0.3 (the min)", specs[0].Threshold)
	}
}

func TestRangeBounds(t *testing.T) {
	lo, hi := RangeBounds(simfn.MAbsDiff, 100, 10)
	if lo != 90 || hi != 110 {
		t.Fatalf("abs bounds = [%v,%v]", lo, hi)
	}
	lo, hi = RangeBounds(simfn.MRelDiff, 100, 0.5)
	if lo != -200 || hi != 200 {
		t.Fatalf("rel bounds = [%v,%v]", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-range measure")
		}
	}()
	RangeBounds(simfn.MJaccard, 1, 1)
}

// buildAnalysis creates a realistic rule set and builds its indexes.
func buildAnalysis(t *testing.T, a, b *table.Table) (*Analysis, *Indexes, *feature.Set, []rules.Rule) {
	t.Helper()
	set := feature.Generate(a, b)
	feats := blockingFeatures(set)
	jw := featPos(set, "jaccard_word(title)")
	em := featPos(set, "exact_match(year)")
	ad := featPos(set, "abs_diff(price)")
	seq := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: jw, Op: rules.LE, Value: 0.5}}},
		{ID: 1, Preds: []rules.Predicate{
			{Feature: em, Op: rules.LE, Value: 0.5},
			{Feature: ad, Op: rules.GE, Value: 20},
		}},
	}
	an := Analyze(rules.ToCNF(seq), feats)
	ix := NewIndexes(mapreduce.Default(), a)
	if _, err := ix.EnsureAll(context.Background(), an.NeededIndexes()); err != nil {
		t.Fatal(err)
	}
	return an, ix, set, seq
}

// TestRuleCandidatesComplete is the soundness property of Algorithm 1: every
// pair the CNF rule keeps must appear in the candidate set.
func TestRuleCandidatesComplete(t *testing.T) {
	a, b := booksTables(80, 40, 5)
	an, ix, set, _ := buildAnalysis(t, a, b)
	vz := feature.NewVectorizer(set, a, b)
	for row := 0; row < b.Len(); row++ {
		cands, all, _ := ix.RuleCandidates(an, nil, b, row)
		inCands := map[int32]bool{}
		for _, c := range cands {
			inCands[c] = true
		}
		for aRow := 0; aRow < a.Len(); aRow++ {
			vec := vz.BlockingVector(table.Pair{A: aRow, B: row})
			if an.CNF.Keep(vec.Values) && !all && !inCands[int32(aRow)] {
				t.Fatalf("pair (%d,%d) kept by CNF but missing from candidates", aRow, row)
			}
		}
	}
}

func TestRuleCandidatesPrune(t *testing.T) {
	a, b := booksTables(200, 30, 6)
	an, ix, _, _ := buildAnalysis(t, a, b)
	totalCands, probes := 0, int64(0)
	for row := 0; row < b.Len(); row++ {
		cands, all, cost := ix.RuleCandidates(an, nil, b, row)
		if all {
			t.Fatalf("row %d: filters should prune", row)
		}
		totalCands += len(cands)
		probes += cost
	}
	if totalCands >= a.Len()*b.Len()/2 {
		t.Fatalf("filters pruned almost nothing: %d of %d", totalCands, a.Len()*b.Len())
	}
	if probes <= 0 {
		t.Fatal("no probe cost accounted")
	}
}

func TestClauseCandidatesUnfilterable(t *testing.T) {
	a, b := booksTables(10, 10, 7)
	set := feature.Generate(a, b)
	feats := blockingFeatures(set)
	jw := featPos(set, "jaccard_word(title)")
	seq := []rules.Rule{{ID: 0, Preds: []rules.Predicate{{Feature: jw, Op: rules.GT, Value: 0.6}}}}
	an := Analyze(rules.ToCNF(seq), feats)
	ix := NewIndexes(mapreduce.Default(), a)
	_, all, _ := ix.ClauseCandidates(an.Clauses[0], b, 0)
	if !all {
		t.Fatal("unfilterable clause must return all=true")
	}
	_, all, _ = ix.RuleCandidates(an, nil, b, 0)
	if !all {
		t.Fatal("rule with no filterable clause must return all=true")
	}
}

func TestEnsureSpecCaching(t *testing.T) {
	a, b := booksTables(50, 10, 8)
	an, ix, _, _ := buildAnalysis(t, a, b)
	// Second EnsureAll must be free.
	d, err := ix.EnsureAll(context.Background(), an.NeededIndexes())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("cached rebuild took %v, want 0", d)
	}
	if ix.TotalBytes() <= 0 {
		t.Fatal("TotalBytes = 0")
	}
	for _, ci := range an.Clauses {
		if ci.Filterable && ix.ClauseBytes(ci) <= 0 {
			t.Fatal("ClauseBytes = 0 for filterable clause")
		}
	}
}

func TestEnsureSpecThresholdRebuild(t *testing.T) {
	a, _ := booksTables(50, 10, 9)
	ix := NewIndexes(mapreduce.Default(), a)
	spec := IndexSpec{Kind: PrefixSet, ACol: 0, Token: tokenize.Word, Measure: simfn.MJaccard, Threshold: 0.8}
	if _, err := ix.EnsureSpec(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	// Lower threshold needs a longer prefix → rebuild.
	spec.Threshold = 0.4
	d, err := ix.EnsureSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("lower threshold should force rebuild")
	}
	// Higher threshold reuses.
	spec.Threshold = 0.9
	d, err = ix.EnsureSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatal("higher threshold should reuse")
	}
}

func TestSetOps(t *testing.T) {
	u := unionSorted([][]int32{{1, 3, 5}, {2, 3, 6}, {5}})
	want := []int32{1, 2, 3, 5, 6}
	if len(u) != len(want) {
		t.Fatalf("union = %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("union = %v", u)
		}
	}
	i := intersectSorted([]int32{1, 2, 3, 7}, []int32{2, 3, 4, 7})
	if len(i) != 3 || i[0] != 2 || i[2] != 7 {
		t.Fatalf("intersect = %v", i)
	}
	if unionSorted(nil) != nil {
		t.Fatal("empty union should be nil")
	}
	if got := unionSorted([][]int32{{9}}); len(got) != 1 {
		t.Fatal("single union wrong")
	}
}

// Property: candidates are always sorted and duplicate-free.
func TestQuickCandidatesSortedUnique(t *testing.T) {
	a, b := booksTables(100, 50, 10)
	an, ix, _, _ := buildAnalysis(t, a, b)
	f := func(row uint8) bool {
		r := int(row) % b.Len()
		cands, all, _ := ix.RuleCandidates(an, nil, b, r)
		if all {
			return true
		}
		for i := 1; i < len(cands); i++ {
			if cands[i] <= cands[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: using a subset of clauses yields a superset of candidates.
func TestQuickClauseSubsetMonotone(t *testing.T) {
	a, b := booksTables(100, 50, 11)
	an, ix, _, _ := buildAnalysis(t, a, b)
	all := an.FilterableClauses()
	if len(all) < 2 {
		t.Skip("need 2 filterable clauses")
	}
	f := func(row uint8) bool {
		r := int(row) % b.Len()
		full, fAll, _ := ix.RuleCandidates(an, all, b, r)
		part, pAll, _ := ix.RuleCandidates(an, all[:1], b, r)
		if fAll || pAll {
			return true
		}
		set := map[int32]bool{}
		for _, c := range part {
			set[c] = true
		}
		for _, c := range full {
			if !set[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRuleCandidatesBatchEquivalence: the batched entry point must report,
// for every row, exactly what the per-row path reports — same candidates,
// same all flag, same probe cost — in both the ID path and Reference mode
// (where every prefix predicate takes the per-row fallback inside the batch).
func TestRuleCandidatesBatchEquivalence(t *testing.T) {
	a, b := booksTables(200, 60, 12)
	an, ix, _, _ := buildAnalysis(t, a, b)
	for _, ref := range []bool{false, true} {
		ix.Reference = ref
		rows := make([]int, 0, b.Len())
		for r := 0; r < b.Len(); r++ {
			rows = append(rows, r)
		}
		visited := 0
		ix.RuleCandidatesBatch(an, nil, b, rows, func(i int, cands []int32, all bool, cost int64) {
			if i != visited {
				t.Fatalf("ref=%v: visit order %d, want %d", ref, i, visited)
			}
			visited++
			wc, wAll, wCost := ix.RuleCandidates(an, nil, b, rows[i])
			if all != wAll || cost != wCost {
				t.Fatalf("ref=%v row %d: (all,cost)=(%v,%d), want (%v,%d)", ref, rows[i], all, cost, wAll, wCost)
			}
			if len(cands) != len(wc) {
				t.Fatalf("ref=%v row %d: %d candidates, want %d", ref, rows[i], len(cands), len(wc))
			}
			for j := range cands {
				if cands[j] != wc[j] {
					t.Fatalf("ref=%v row %d: cands[%d]=%d, want %d", ref, rows[i], j, cands[j], wc[j])
				}
			}
		})
		if visited != len(rows) {
			t.Fatalf("ref=%v: visited %d rows, want %d", ref, visited, len(rows))
		}
	}
	ix.Reference = false
}
