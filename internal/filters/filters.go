// Package filters implements Falcon's filter inference (§7.4): given the
// positive CNF rule Q produced from a blocking-rule sequence, it decides
// which index-based filter serves each predicate, which indexes must be
// built, and how to compute candidate tuples for a probe tuple b ∈ B
// (the FindProbableCandidates procedure of Algorithm 1).
//
// A filter is a necessary condition: if it rejects (a,b), the predicate is
// guaranteed false; survivors still need predicate evaluation. Predicates
// that admit no sound filter (e.g. "jaccard ≤ v", which asks for
// *dissimilarity*) are Unfilterable; a clause containing one contributes no
// pruning, and the intersection in Algorithm 1 simply skips it.
package filters

import (
	"fmt"
	"math"

	"falcon/internal/feature"
	"falcon/internal/rules"
	"falcon/internal/simfn"
	"falcon/internal/tokenize"
)

// Kind classifies the filter serving a predicate.
type Kind int

const (
	// Unfilterable predicates admit no index filter.
	Unfilterable Kind = iota
	// Equivalence uses a hash index (exact_match = 1).
	Equivalence
	// Range uses a tree index (abs_diff/rel_diff ≤ v).
	Range
	// PrefixSet uses prefix+length+position filters over an inverted index
	// (Jaccard/Dice/Cosine/Overlap ≥ v).
	PrefixSet
	// ShareGram uses a 3-gram share-token filter (Levenshtein ≥ v, v ≥ 2/3).
	ShareGram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Unfilterable:
		return "unfilterable"
	case Equivalence:
		return "equivalence"
	case Range:
		return "range"
	case PrefixSet:
		return "prefix-set"
	case ShareGram:
		return "share-gram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// levenshteinFilterMin is the smallest Levenshtein similarity threshold for
// which the shared-3-gram bound is sound (max+2 − 3(1−t)·max ≥ 1 for all
// lengths requires t ≥ 2/3).
const levenshteinFilterMin = 2.0 / 3.0

// BoundPred is a CNF predicate bound to its feature metadata and filter.
type BoundPred struct {
	Pred rules.Predicate
	Feat *feature.Feature
	Kind Kind
	// Threshold is the similarity threshold (PrefixSet/ShareGram) or range
	// radius parameter (Range).
	Threshold float64
}

// Classify determines the filter kind for a keep-side predicate.
func Classify(p rules.Predicate, f *feature.Feature) (Kind, float64) {
	switch f.Measure {
	case simfn.MExactMatch:
		// Must the value be exactly 1 (equal)?
		if p.Eval(1) && !p.Eval(0) {
			return Equivalence, 1
		}
		return Unfilterable, 0
	case simfn.MAbsDiff, simfn.MRelDiff:
		// Distances: keep-side filterable when bounded above.
		if p.Op == rules.LT || p.Op == rules.LE {
			if f.Measure == simfn.MRelDiff && p.Value >= 1 {
				return Unfilterable, 0
			}
			return Range, p.Value
		}
		return Unfilterable, 0
	case simfn.MJaccard, simfn.MDice, simfn.MCosine, simfn.MOverlap:
		if (p.Op == rules.GT || p.Op == rules.GE) && p.Value > 0 {
			return PrefixSet, p.Value
		}
		return Unfilterable, 0
	case simfn.MLevenshtein:
		if (p.Op == rules.GT || p.Op == rules.GE) && p.Value >= levenshteinFilterMin {
			return ShareGram, p.Value
		}
		return Unfilterable, 0
	default:
		return Unfilterable, 0
	}
}

// ClauseInfo is one CNF clause (disjunction) with bound predicates. The
// clause prunes only if every disjunct is filterable (candidates are the
// union over disjuncts).
type ClauseInfo struct {
	Preds      []BoundPred
	Filterable bool
}

// Analysis is the filter plan for a CNF rule.
type Analysis struct {
	CNF     rules.CNF
	Clauses []ClauseInfo
	// Feats maps vector positions to features, for predicate evaluation.
	Feats []*feature.Feature
}

// Analyze binds each CNF predicate to its feature (via the blocking-feature
// index space) and classifies its filter. blockingFeats[i] must be the
// feature behind vector position i.
func Analyze(cnf rules.CNF, blockingFeats []*feature.Feature) *Analysis {
	a := &Analysis{CNF: cnf, Feats: blockingFeats}
	for _, clause := range cnf.Clauses {
		ci := ClauseInfo{Filterable: len(clause) > 0}
		for _, p := range clause {
			f := blockingFeats[p.Feature]
			kind, thr := Classify(p, f)
			if kind == Unfilterable {
				ci.Filterable = false
			}
			ci.Preds = append(ci.Preds, BoundPred{Pred: p, Feat: f, Kind: kind, Threshold: thr})
		}
		a.Clauses = append(a.Clauses, ci)
	}
	return a
}

// FilterableClauses returns the indexes of clauses that can prune.
func (a *Analysis) FilterableClauses() []int {
	var out []int
	for i, c := range a.Clauses {
		if c.Filterable {
			out = append(out, i)
		}
	}
	return out
}

// IndexSpec identifies one index to build over table A.
type IndexSpec struct {
	Kind    Kind
	ACol    int
	Token   tokenize.Kind // PrefixSet/ShareGram
	Measure simfn.Measure // PrefixSet/ShareGram: measure driving prefix length
	// Threshold is the minimal threshold among predicates served, which
	// yields the longest (most conservative) prefix.
	Threshold float64
}

// Key returns a canonical identity for the physical index this spec needs,
// used to match queued background builds against the final rule set.
func (s IndexSpec) Key() string {
	return fmt.Sprintf("%s/%d/%s/%s", s.Kind, s.ACol, s.Token, s.Measure)
}

// specKey collapses specs that share one physical index.
type specKey struct {
	kind    Kind
	col     int
	token   tokenize.Kind
	measure simfn.Measure
}

// NeededIndexes returns the de-duplicated index specs for all filterable
// clauses, merging thresholds downward so one index serves every predicate
// on the same (column, tokenization, measure).
func (a *Analysis) NeededIndexes() []IndexSpec {
	merged := map[specKey]IndexSpec{}
	var order []specKey
	for _, c := range a.Clauses {
		if !c.Filterable {
			continue
		}
		for _, bp := range c.Preds {
			spec := bp.indexSpec()
			k := specKey{spec.Kind, spec.ACol, spec.Token, spec.Measure}
			if prev, ok := merged[k]; ok {
				if spec.Threshold < prev.Threshold {
					prev.Threshold = spec.Threshold
					merged[k] = prev
				}
				continue
			}
			merged[k] = spec
			order = append(order, k)
		}
	}
	out := make([]IndexSpec, 0, len(order))
	for _, k := range order {
		out = append(out, merged[k])
	}
	return out
}

func (bp BoundPred) indexSpec() IndexSpec {
	switch bp.Kind {
	case Equivalence:
		return IndexSpec{Kind: Equivalence, ACol: bp.Feat.ACol}
	case Range:
		return IndexSpec{Kind: Range, ACol: bp.Feat.ACol}
	case PrefixSet:
		return IndexSpec{Kind: PrefixSet, ACol: bp.Feat.ACol, Token: bp.Feat.Token, Measure: bp.Feat.Measure, Threshold: bp.Threshold}
	case ShareGram:
		return IndexSpec{Kind: ShareGram, ACol: bp.Feat.ACol, Token: tokenize.Gram3, Measure: simfn.MLevenshtein, Threshold: bp.Threshold}
	default:
		panic("filters: no index for unfilterable predicate")
	}
}

// RangeBounds computes the tree-index probe window for a Range predicate
// given the probe tuple's numeric value y: abs_diff ≤ v → [y−v, y+v];
// rel_diff ≤ v → [−|y|/(1−v), |y|/(1−v)] (a sound superset for v < 1).
func RangeBounds(m simfn.Measure, y, v float64) (lo, hi float64) {
	switch m {
	case simfn.MAbsDiff:
		return y - v, y + v
	case simfn.MRelDiff:
		r := math.Abs(y) / (1 - v)
		return -r, r
	default:
		panic("filters: RangeBounds on non-range measure " + m.String())
	}
}
