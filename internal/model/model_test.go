package model

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"falcon/internal/feature"
	"falcon/internal/forest"
	"falcon/internal/mapreduce"
	"falcon/internal/rules"
	"falcon/internal/table"
)

// trainWorld builds tables, a feature set, and a hand-trained matcher with
// a simple rule sequence, so models can be built without the full pipeline.
func trainWorld(t *testing.T, n int, seed int64) (*table.Table, *table.Table, *feature.Set, *Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := []string{"war", "peace", "art", "code", "go", "data", "cloud", "entity"}
	mk := func(name string) *table.Table {
		tb := table.New(name, table.NewSchema("title", "price"))
		for i := 0; i < n; i++ {
			var ws []string
			for j := 0; j < 3+rng.Intn(3); j++ {
				ws = append(ws, words[rng.Intn(len(words))])
			}
			tb.Append(strings.Join(ws, " "), "10")
		}
		tb.InferTypes()
		return tb
	}
	a, b := mk("A"), mk("B")
	// Plant exact-title matches so the matcher has positives to find.
	for i := 0; i < n/2; i++ {
		b.Tuples[i].Values[0] = a.Tuples[i].Values[0]
	}
	set := feature.Generate(a, b)
	vz := feature.NewVectorizer(set, a, b)

	// Train a matcher on "same title" ground truth: the planted positives
	// plus random (mostly negative) pairs.
	var exs []forest.Example
	addExample := func(p table.Pair) {
		vec := vz.Vector(p)
		exs = append(exs, forest.Example{Values: vec.Values, Label: a.Value(p.A, 0) == b.Value(p.B, 0)})
	}
	for i := 0; i < n/2; i++ {
		addExample(table.Pair{A: i, B: i})
	}
	for i := 0; i < 300; i++ {
		addExample(table.Pair{A: rng.Intn(n), B: rng.Intn(n)})
	}
	matcher := forest.Train(exs, forest.Config{Seed: 5})

	// One blocking rule: drop if title jaccard ≤ 0.5.
	jw := -1
	for i, idx := range set.BlockingIdx {
		if set.Features[idx].Name == "jaccard_word(title)" {
			jw = i
		}
	}
	if jw < 0 {
		t.Fatal("no jaccard_word(title) feature")
	}
	seq := []rules.Rule{{ID: 0, Preds: []rules.Predicate{{Feature: jw, Op: rules.LE, Value: 0.5}}}}
	m := New(set, seq, []float64{0.2}, matcher)
	return a, b, set, m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a, b, _, m := trainWorld(t, 60, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.FeatureNames) != len(m.FeatureNames) || len(m2.RuleSeq) != 1 {
		t.Fatalf("round trip lost structure: %d features, %d rules", len(m2.FeatureNames), len(m2.RuleSeq))
	}
	// Both models must predict identically.
	got1, n1, err := m.Apply(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := m2.Apply(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got1) != len(got2) || n1 != n2 {
		t.Fatalf("loaded model differs: %d/%d vs %d/%d", len(got1), n1, len(got2), n2)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestApplyMatchesTruth(t *testing.T) {
	a, b, _, m := trainWorld(t, 80, 2)
	matches, cands, err := m.Apply(mapreduce.Default(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cands == 0 {
		t.Fatal("blocking dropped everything")
	}
	if cands >= a.Len()*b.Len() {
		t.Fatal("blocking dropped nothing")
	}
	// Spot-check: predicted matches mostly share titles.
	good := 0
	for _, p := range matches {
		if a.Value(p.A, 0) == b.Value(p.B, 0) {
			good++
		}
	}
	if len(matches) == 0 || good < len(matches)*6/10 {
		t.Fatalf("model predictions poor: %d/%d share titles", good, len(matches))
	}
}

func TestApplyMatcherOnly(t *testing.T) {
	a, b, set, m := trainWorld(t, 25, 3)
	m2 := New(set, nil, nil, m.Matcher)
	matches, cands, err := m2.Apply(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cands != a.Len()*b.Len() {
		t.Fatalf("matcher-only should scan the full product: %d", cands)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
}

func TestBindRejectsSchemaMismatch(t *testing.T) {
	a, _, _, m := trainWorld(t, 20, 4)
	other := table.New("other", table.NewSchema("totally", "different", "schema"))
	other.Append("x", "y", "z")
	other.InferTypes()
	if _, err := m.Bind(a, other); err == nil {
		t.Fatal("schema mismatch should fail Bind")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Fatal("missing matcher should fail")
	}
}

func TestSeqSel(t *testing.T) {
	if got := seqSel([]float64{0.5, 0.5}); got != 0.25 {
		t.Fatalf("seqSel = %v", got)
	}
	if got := seqSel(nil); got != 1 {
		t.Fatalf("empty seqSel = %v", got)
	}
}
