package model

import (
	"context"
	"fmt"
	"maps"

	"falcon/internal/filters"
	"falcon/internal/forest"
	"falcon/internal/index"
	"falcon/internal/mapreduce"
	"falcon/internal/rules"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// ArtifactVersion is bumped on breaking changes to the serving-artifact
// layout, independently of the trained-model format (Version). Version 2
// grew the artifact from rules/forest/dicts into the complete serving
// contract: feature specs, corpora, the frozen B table, per-correspondence
// B-row ID sets, and the prefix-index postings over B.
const ArtifactVersion = 2

// FeatureSpec is one feature's serialized definition. Together with the
// corpora it reconstructs the exact feature space the model was trained
// on, so a served record is vectorized bit-identically to a batch row.
type FeatureSpec struct {
	Name      string
	Measure   simfn.Measure
	Token     tokenize.Kind
	ACol      int
	BCol      int
	Attr      string
	Blockable bool
	// Corpus indexes MatcherArtifact.Corpora, or -1 when the measure is
	// not corpus-based.
	Corpus int
}

// CorpusData is one TF/IDF corpus in serializable form (see
// simfn.Corpus.State): document count plus per-token document frequencies
// with tokens in lexicographic order.
type CorpusData struct {
	Docs int
	Toks []string
	DFs  []int
}

// CorrData freezes one attribute correspondence's dictionary-encoded
// state: the shared frequency-ordered dictionary as its ranked token list,
// and every B row's sorted token-ID set under it. The serving path encodes
// the incoming record under the same dictionary (unknown tokens get
// distinct extension IDs ≥ the dictionary length, matching nothing), so
// count-set measures reproduce the batch values exactly.
type CorrData struct {
	ACol   int
	BCol   int
	Kind   tokenize.Kind
	Ranked []string
	RowsB  [][]uint32
}

// CorrKey names a correspondence's dictionary in MatcherArtifact.Dicts.
func CorrKey(acol, bcol int, kind tokenize.Kind) string {
	return fmt.Sprintf("%d/%d/%s", acol, bcol, kind)
}

// PrefixData is one serialized prefix index over a column of the frozen B
// table. The batch pipeline indexes A and probes with rows of B; serving
// flips the roles, which is sound because every filterable set measure is
// symmetric in its two arguments. BCol is the indexed B column.
type PrefixData struct {
	Kind      filters.Kind
	BCol      int
	Token     tokenize.Kind
	Measure   simfn.Measure
	Threshold float64
	Ranked    []string
	Post      [][]index.Posting
	SetLen    []int32
}

// Spec returns the filter-index spec this data answers, with the indexed
// column in the spec's ACol slot (specs name the indexed table's column).
func (p *PrefixData) Spec() filters.IndexSpec {
	return filters.IndexSpec{Kind: p.Kind, ACol: p.BCol, Token: p.Token, Measure: p.Measure, Threshold: p.Threshold}
}

// ServingData collects the serving-side state the train phase assembles —
// a plain mutable builder, handed whole to NewMatcherArtifact so every
// artifact field is set inside the frozen constructor.
type ServingData struct {
	Feats   []FeatureSpec
	Corpora []CorpusData
	AName   string
	AAttrs  []table.Attribute
	B       *table.Table
	Corrs   []CorrData
	Prefix  []PrefixData
	Dicts   map[string]*tokenize.Dict
}

// MatcherArtifact is the frozen serving contract: everything the
// point-match path (POST /match/one) reads per request, assembled once at
// train or load time and published through an atomic pointer. Readers take
// no lock, so nothing reachable from an artifact may ever be written after
// construction — the //falcon:frozen directive on NewMatcherArtifact puts
// every call site under the immutpublish analyzer, and a model swap
// replaces the whole artifact (clone-then-swap), never patches one in
// place.
type MatcherArtifact struct {
	// Version is the artifact layout version (ArtifactVersion).
	Version int
	// FeatureNames is the feature-space signature in vector order; a
	// request-time vectorizer must bind to exactly this space.
	FeatureNames []string
	// BlockingIdx indexes the blocking-feature subspace.
	BlockingIdx []int
	// RuleSeq and ClauseSel are the learned blocking-rule sequence and its
	// per-rule sample selectivities.
	RuleSeq   []rules.Rule
	ClauseSel []float64
	// Matcher is the matching-stage forest. Forests are immutable after
	// Train, so the artifact shares the reference.
	Matcher *forest.Forest
	// Dicts references the frequency-ordered token dictionaries, keyed by
	// CorrKey, so probe values can be ID-encoded for the allocation-free
	// ProbeIDs path. Rebuilt from Corrs on Load.
	Dicts map[string]*tokenize.Dict

	// Serving payload (nil/empty on interim artifacts the batch path
	// builds mid-run, where A, B, and the vectorizer are still live).
	Feats   []FeatureSpec
	Corpora []CorpusData
	AName   string
	AAttrs  []table.Attribute
	B       *table.Table
	Corrs   []CorrData
	Prefix  []PrefixData
}

// NewMatcherArtifact assembles the serving artifact from a trained model
// and the serving-side state the train phase froze (sv may be nil for
// interim artifacts that only carry the model). Slice spines and the
// dictionary map are copied, so later mutation of the inputs cannot reach
// the artifact; the forest, dictionaries, B table, ID sets, and postings
// are shared (all immutable once built).
//
//falcon:frozen
func NewMatcherArtifact(m *Model, sv *ServingData) *MatcherArtifact {
	a := &MatcherArtifact{
		Version:      ArtifactVersion,
		FeatureNames: append([]string(nil), m.FeatureNames...),
		BlockingIdx:  append([]int(nil), m.BlockingIdx...),
		RuleSeq:      append([]rules.Rule(nil), m.RuleSeq...),
		ClauseSel:    append([]float64(nil), m.ClauseSel...),
		Matcher:      m.Matcher,
	}
	if sv != nil {
		a.Dicts = maps.Clone(sv.Dicts)
		a.Feats = append([]FeatureSpec(nil), sv.Feats...)
		a.Corpora = append([]CorpusData(nil), sv.Corpora...)
		a.AName = sv.AName
		a.AAttrs = append([]table.Attribute(nil), sv.AAttrs...)
		a.B = sv.B
		a.Corrs = append([]CorrData(nil), sv.Corrs...)
		a.Prefix = append([]PrefixData(nil), sv.Prefix...)
	}
	return a
}

// TrainedModel reconstructs the trained-model view of the artifact. The
// returned model shares the artifact's slices and forest; callers treat it
// as read-only.
func (a *MatcherArtifact) TrainedModel() *Model {
	return &Model{
		Version:      Version,
		FeatureNames: a.FeatureNames,
		BlockingIdx:  a.BlockingIdx,
		RuleSeq:      a.RuleSeq,
		ClauseSel:    a.ClauseSel,
		Matcher:      a.Matcher,
	}
}

// Apply is the batch apply half of the train/serve split: it runs the
// artifact's blocking rules and matcher over a new table pair with no
// crowd involved, returning predicted matches and the surviving candidate
// count.
func (a *MatcherArtifact) Apply(cluster *mapreduce.Cluster, ta, tb *table.Table) ([]table.Pair, int, error) {
	return a.ApplyContext(context.Background(), cluster, ta, tb)
}

// ApplyContext is Apply honoring ctx cancellation inside the blocking jobs.
func (a *MatcherArtifact) ApplyContext(ctx context.Context, cluster *mapreduce.Cluster, ta, tb *table.Table) ([]table.Pair, int, error) {
	return a.TrainedModel().ApplyContext(ctx, cluster, ta, tb)
}
