package model

import (
	"maps"

	"falcon/internal/forest"
	"falcon/internal/rules"
	"falcon/internal/tokenize"
)

// ArtifactVersion is bumped on breaking changes to the serving-artifact
// layout, independently of the trained-model format (Version).
const ArtifactVersion = 1

// MatcherArtifact is the frozen serving contract: everything the
// point-match path (the future POST /match/one handler) reads per
// request, assembled once at load time and published through an
// atomic.Pointer[MatcherArtifact]. Readers take no lock, so nothing
// reachable from an artifact may ever be written after construction —
// the //falcon:frozen directive on NewMatcherArtifact puts every call
// site under the immutpublish analyzer, and a model swap replaces the
// whole artifact (clone-then-swap), never patches one in place.
type MatcherArtifact struct {
	// Version is the artifact layout version (ArtifactVersion).
	Version int
	// FeatureNames is the feature-space signature in vector order; a
	// request-time vectorizer must bind to exactly this space.
	FeatureNames []string
	// BlockingIdx indexes the blocking-feature subspace.
	BlockingIdx []int
	// RuleSeq and ClauseSel are the learned blocking-rule sequence and its
	// per-rule sample selectivities.
	RuleSeq   []rules.Rule
	ClauseSel []float64
	// Matcher is the matching-stage forest. Forests are immutable after
	// Train, so the artifact shares the reference.
	Matcher *forest.Forest
	// Dicts references the frequency-ordered token dictionaries, keyed by
	// attribute correspondence (see index.Ordering), so probe values can be
	// ID-encoded for the allocation-free ProbeIDs path.
	Dicts map[string]*tokenize.Dict
}

// NewMatcherArtifact assembles the serving artifact from a trained model
// and the token dictionaries its probe path needs. Slice spines and the
// dictionary map are copied, so later mutation of the inputs cannot reach
// the artifact; the forest and the dictionaries themselves are shared
// (both are immutable once built).
//
//falcon:frozen
func NewMatcherArtifact(m *Model, dicts map[string]*tokenize.Dict) *MatcherArtifact {
	return &MatcherArtifact{
		Version:      ArtifactVersion,
		FeatureNames: append([]string(nil), m.FeatureNames...),
		BlockingIdx:  append([]int(nil), m.BlockingIdx...),
		RuleSeq:      append([]rules.Rule(nil), m.RuleSeq...),
		ClauseSel:    append([]float64(nil), m.ClauseSel...),
		Matcher:      m.Matcher,
		Dicts:        maps.Clone(dicts),
	}
}
