// Binary serialization for MatcherArtifact: a magic header, the layout
// version, a content checksum, and a deterministic payload.
//
// The payload encodes only slices (never map iterations) and stores floats
// as their IEEE-754 bit patterns, so Save(Load(Save(a))) is byte-identical
// to Save(a) and every similarity weight round-trips bit-for-bit. Maps
// (Dicts) and derived state are rebuilt on Load.
package model

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"falcon/internal/filters"
	"falcon/internal/forest"
	"falcon/internal/index"
	"falcon/internal/rules"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// artifactMagic identifies a serialized MatcherArtifact file.
const artifactMagic = "FALCNART"

// encoder accumulates the payload in one growable buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i(v int)     { e.buf = binary.AppendVarint(e.buf, int64(v)) }
func (e *encoder) f(v float64) { e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *encoder) s(v string)  { e.u(uint64(len(v))); e.buf = append(e.buf, v...) }
func (e *encoder) b(v bool) {
	var x byte
	if v {
		x = 1
	}
	e.buf = append(e.buf, x)
}

func (e *encoder) strs(vs []string) {
	e.u(uint64(len(vs)))
	for _, v := range vs {
		e.s(v)
	}
}

func (e *encoder) ints(vs []int) {
	e.u(uint64(len(vs)))
	for _, v := range vs {
		e.i(v)
	}
}

func (e *encoder) f64s(vs []float64) {
	e.u(uint64(len(vs)))
	for _, v := range vs {
		e.f(v)
	}
}

func (e *encoder) u32s(vs []uint32) {
	e.u(uint64(len(vs)))
	for _, v := range vs {
		e.u(uint64(v))
	}
}

// decoder is a sticky-error reader over the whole payload; every primitive
// bounds-checks against the buffer so truncated input surfaces as an error
// instead of a panic.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("model: artifact truncated at offset %d", d.off)
	}
}

func (d *decoder) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return int(v)
}

func (d *decoder) f() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) s() string {
	n := d.n()
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

func (d *decoder) b1() bool {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

// n decodes a length, rejecting counts larger than the remaining bytes
// (every encoded element occupies at least one byte), so corrupt input
// cannot trigger huge allocations before the mismatch is noticed.
func (d *decoder) n() int {
	v := d.u()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *decoder) strs() []string {
	n := d.n()
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.s()
	}
	return out
}

func (d *decoder) ints() []int {
	n := d.n()
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.i()
	}
	return out
}

func (d *decoder) f64s() []float64 {
	n := d.n()
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f()
	}
	return out
}

func (d *decoder) u32s() []uint32 {
	n := d.n()
	if d.err != nil {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(d.u())
	}
	return out
}

// Save writes the artifact in the versioned binary format: magic, layout
// version, SHA-256 of the payload, payload.
func (a *MatcherArtifact) Save(w io.Writer) error {
	if a.Version != ArtifactVersion {
		return fmt.Errorf("model: cannot save artifact layout version %d (current %d)", a.Version, ArtifactVersion)
	}
	var e encoder
	a.encodePayload(&e)
	sum := sha256.Sum256(e.buf)
	var hdr []byte
	hdr = append(hdr, artifactMagic...)
	hdr = binary.AppendUvarint(hdr, uint64(a.Version))
	hdr = append(hdr, sum[:]...)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("model: writing artifact header: %w", err)
	}
	if _, err := w.Write(e.buf); err != nil {
		return fmt.Errorf("model: writing artifact payload: %w", err)
	}
	return nil
}

// LoadArtifact reads an artifact written by Save, verifying the magic, the
// layout version, and the payload checksum, and rebuilding the derived
// in-memory state (the correspondence dictionaries).
func LoadArtifact(r io.Reader) (*MatcherArtifact, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("model: reading artifact: %w", err)
	}
	if len(raw) < len(artifactMagic) || string(raw[:len(artifactMagic)]) != artifactMagic {
		return nil, fmt.Errorf("model: not an artifact file (bad magic)")
	}
	rest := raw[len(artifactMagic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("model: artifact truncated in header")
	}
	if ver != ArtifactVersion {
		return nil, fmt.Errorf("model: artifact layout version %d unsupported (want %d)", ver, ArtifactVersion)
	}
	rest = rest[n:]
	if len(rest) < sha256.Size {
		return nil, fmt.Errorf("model: artifact truncated in header")
	}
	want := rest[:sha256.Size]
	payload := rest[sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("model: artifact checksum mismatch")
	}
	d := &decoder{b: payload}
	a := decodePayload(d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("model: artifact has %d trailing bytes", len(d.b)-d.off)
	}
	a.Version = int(ver)
	a.Dicts = make(map[string]*tokenize.Dict, len(a.Corrs))
	for i := range a.Corrs {
		c := &a.Corrs[i]
		a.Dicts[CorrKey(c.ACol, c.BCol, c.Kind)] = tokenize.DictOf(c.Ranked)
	}
	if a.Matcher == nil {
		return nil, fmt.Errorf("model: artifact missing matcher")
	}
	return a, nil
}

func (a *MatcherArtifact) encodePayload(e *encoder) {
	e.strs(a.FeatureNames)
	e.ints(a.BlockingIdx)
	e.u(uint64(len(a.RuleSeq)))
	for i := range a.RuleSeq {
		r := &a.RuleSeq[i]
		e.i(r.ID)
		e.u(uint64(len(r.Preds)))
		for _, p := range r.Preds {
			e.i(p.Feature)
			e.i(int(p.Op))
			e.f(p.Value)
		}
	}
	e.f64s(a.ClauseSel)
	encodeForest(e, a.Matcher)

	e.u(uint64(len(a.Feats)))
	for i := range a.Feats {
		f := &a.Feats[i]
		e.s(f.Name)
		e.i(int(f.Measure))
		e.s(string(f.Token))
		e.i(f.ACol)
		e.i(f.BCol)
		e.s(f.Attr)
		e.b(f.Blockable)
		e.i(f.Corpus)
	}
	e.u(uint64(len(a.Corpora)))
	for i := range a.Corpora {
		c := &a.Corpora[i]
		e.i(c.Docs)
		e.strs(c.Toks)
		e.ints(c.DFs)
	}
	e.s(a.AName)
	encodeAttrs(e, a.AAttrs)
	encodeTable(e, a.B)
	e.u(uint64(len(a.Corrs)))
	for i := range a.Corrs {
		c := &a.Corrs[i]
		e.i(c.ACol)
		e.i(c.BCol)
		e.s(string(c.Kind))
		e.strs(c.Ranked)
		e.u(uint64(len(c.RowsB)))
		for _, row := range c.RowsB {
			e.u32s(row)
		}
	}
	e.u(uint64(len(a.Prefix)))
	for i := range a.Prefix {
		p := &a.Prefix[i]
		e.i(int(p.Kind))
		e.i(p.BCol)
		e.s(string(p.Token))
		e.i(int(p.Measure))
		e.f(p.Threshold)
		e.strs(p.Ranked)
		e.u(uint64(len(p.Post)))
		for _, plist := range p.Post {
			e.u(uint64(len(plist)))
			for _, pst := range plist {
				e.u(uint64(pst.ID))
				e.u(uint64(pst.Pos))
			}
		}
		e.u(uint64(len(p.SetLen)))
		for _, l := range p.SetLen {
			e.u(uint64(l))
		}
	}
}

func decodePayload(d *decoder) *MatcherArtifact {
	a := &MatcherArtifact{}
	a.FeatureNames = d.strs()
	a.BlockingIdx = d.ints()
	nr := d.n()
	if nr > 0 {
		a.RuleSeq = make([]rules.Rule, nr)
	}
	for i := 0; i < nr && d.err == nil; i++ {
		r := &a.RuleSeq[i]
		r.ID = d.i()
		np := d.n()
		if np > 0 {
			r.Preds = make([]rules.Predicate, np)
		}
		for j := 0; j < np && d.err == nil; j++ {
			r.Preds[j] = rules.Predicate{Feature: d.i(), Op: rules.Op(d.i()), Value: d.f()}
		}
	}
	a.ClauseSel = d.f64s()
	a.Matcher = decodeForest(d)

	nf := d.n()
	if nf > 0 {
		a.Feats = make([]FeatureSpec, nf)
	}
	for i := 0; i < nf && d.err == nil; i++ {
		f := &a.Feats[i]
		f.Name = d.s()
		f.Measure = simfn.Measure(d.i())
		f.Token = tokenize.Kind(d.s())
		f.ACol = d.i()
		f.BCol = d.i()
		f.Attr = d.s()
		f.Blockable = d.b1()
		f.Corpus = d.i()
	}
	nc := d.n()
	if nc > 0 {
		a.Corpora = make([]CorpusData, nc)
	}
	for i := 0; i < nc && d.err == nil; i++ {
		c := &a.Corpora[i]
		c.Docs = d.i()
		c.Toks = d.strs()
		c.DFs = d.ints()
	}
	a.AName = d.s()
	a.AAttrs = decodeAttrs(d)
	a.B = decodeTable(d)
	ncorr := d.n()
	if ncorr > 0 {
		a.Corrs = make([]CorrData, ncorr)
	}
	for i := 0; i < ncorr && d.err == nil; i++ {
		c := &a.Corrs[i]
		c.ACol = d.i()
		c.BCol = d.i()
		c.Kind = tokenize.Kind(d.s())
		c.Ranked = d.strs()
		nrows := d.n()
		if nrows > 0 {
			c.RowsB = make([][]uint32, nrows)
		}
		for j := 0; j < nrows && d.err == nil; j++ {
			c.RowsB[j] = d.u32s()
		}
	}
	npx := d.n()
	if npx > 0 {
		a.Prefix = make([]PrefixData, npx)
	}
	for i := 0; i < npx && d.err == nil; i++ {
		p := &a.Prefix[i]
		p.Kind = filters.Kind(d.i())
		p.BCol = d.i()
		p.Token = tokenize.Kind(d.s())
		p.Measure = simfn.Measure(d.i())
		p.Threshold = d.f()
		p.Ranked = d.strs()
		nrank := d.n()
		if nrank > 0 {
			p.Post = make([][]index.Posting, nrank)
		}
		for j := 0; j < nrank && d.err == nil; j++ {
			nps := d.n()
			if nps == 0 {
				continue
			}
			plist := make([]index.Posting, nps)
			for k := 0; k < nps && d.err == nil; k++ {
				plist[k] = index.Posting{ID: int32(d.u()), Pos: int32(d.u())}
			}
			p.Post[j] = plist
		}
		nl := d.n()
		if nl > 0 {
			p.SetLen = make([]int32, nl)
		}
		for j := 0; j < nl && d.err == nil; j++ {
			p.SetLen[j] = int32(d.u())
		}
	}
	return a
}

func encodeAttrs(e *encoder, attrs []table.Attribute) {
	e.u(uint64(len(attrs)))
	for _, at := range attrs {
		e.s(at.Name)
		e.i(int(at.Type))
		e.i(int(at.Char))
	}
}

func decodeAttrs(d *decoder) []table.Attribute {
	n := d.n()
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]table.Attribute, n)
	for i := range out {
		out[i] = table.Attribute{Name: d.s(), Type: table.AttrType(d.i()), Char: table.AttrChar(d.i())}
	}
	return out
}

func encodeTable(e *encoder, t *table.Table) {
	if t == nil {
		e.b(false)
		return
	}
	e.b(true)
	e.s(t.Name)
	encodeAttrs(e, t.Schema.Attrs)
	e.u(uint64(len(t.Tuples)))
	for i := range t.Tuples {
		for _, v := range t.Tuples[i].Values {
			e.s(v)
		}
	}
}

func decodeTable(d *decoder) *table.Table {
	if !d.b1() {
		return nil
	}
	name := d.s()
	attrs := decodeAttrs(d)
	names := make([]string, len(attrs))
	for i, at := range attrs {
		names[i] = at.Name
	}
	sch := table.NewSchema(names...)
	copy(sch.Attrs, attrs)
	t := table.New(name, sch)
	nrows := d.n()
	for i := 0; i < nrows && d.err == nil; i++ {
		// Append retains the variadic slice, so each row needs its own.
		vals := make([]string, len(attrs))
		for j := range vals {
			vals[j] = d.s()
		}
		if d.err != nil {
			return t
		}
		t.Append(vals...)
	}
	return t
}

// encodeForest writes the forest as NumFeatures plus each tree in preorder
// (leaf iff Feature < 0; internal nodes always carry both children).
func encodeForest(e *encoder, f *forest.Forest) {
	if f == nil {
		e.b(false)
		return
	}
	e.b(true)
	e.i(f.NumFeatures)
	e.u(uint64(len(f.Trees)))
	for _, t := range f.Trees {
		encodeNode(e, t.Root)
	}
}

func encodeNode(e *encoder, n *forest.Node) {
	e.i(n.Feature)
	e.f(n.Threshold)
	e.b(n.Match)
	e.i(n.NPos)
	e.i(n.NNeg)
	if n.Feature >= 0 {
		encodeNode(e, n.Left)
		encodeNode(e, n.Right)
	}
}

func decodeForest(d *decoder) *forest.Forest {
	if !d.b1() {
		return nil
	}
	f := &forest.Forest{NumFeatures: d.i()}
	nt := d.n()
	for i := 0; i < nt && d.err == nil; i++ {
		f.Trees = append(f.Trees, &forest.Tree{Root: decodeNode(d)})
	}
	return f
}

func decodeNode(d *decoder) *forest.Node {
	if d.err != nil {
		return &forest.Node{Feature: -1}
	}
	n := &forest.Node{
		Feature:   d.i(),
		Threshold: d.f(),
		Match:     d.b1(),
		NPos:      d.i(),
		NNeg:      d.i(),
	}
	if n.Feature >= 0 {
		n.Left = decodeNode(d)
		n.Right = decodeNode(d)
	}
	return n
}
