package model_test

// External test package: it drives a real training run through core (which
// imports model) to get a fully-populated artifact for wire-format tests.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"strings"
	"testing"

	"falcon/internal/core"
	"falcon/internal/crowd"
	"falcon/internal/datagen"
	"falcon/internal/model"
)

func trainedArtifact(t *testing.T) *model.MatcherArtifact {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Seed = 3
	opt.SampleN = 4000
	opt.SampleY = 20
	opt.ALIterations = 10
	opt.MaskedSelectionMinPool = 1000
	opt.Platform = crowd.NewRandomWorkers(0, 0, 4)
	force := true
	opt.ForceBlocking = &force
	d := datagen.Songs(300, 42)
	res, err := core.Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifact == nil {
		t.Fatal("run produced no artifact")
	}
	return res.Artifact
}

// TestArtifactRoundTripGolden saves a trained artifact, loads it, and saves
// again: the two byte streams must be identical (the format has no map
// iterations or other nondeterminism), and the loaded artifact must carry
// the full serving payload.
func TestArtifactRoundTripGolden(t *testing.T) {
	art := trainedArtifact(t)

	var b1 bytes.Buffer
	if err := art.Save(&b1); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.LoadArtifact(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := loaded.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("re-save not byte-identical: %d vs %d bytes", b1.Len(), b2.Len())
	}

	if loaded.Version != model.ArtifactVersion {
		t.Fatalf("loaded version %d", loaded.Version)
	}
	if len(loaded.FeatureNames) != len(art.FeatureNames) ||
		len(loaded.Feats) != len(art.Feats) ||
		len(loaded.Corrs) != len(art.Corrs) ||
		len(loaded.Corpora) != len(art.Corpora) ||
		len(loaded.Prefix) != len(art.Prefix) {
		t.Fatal("loaded artifact payload shape differs")
	}
	if loaded.B == nil || loaded.B.Len() != art.B.Len() {
		t.Fatal("B table did not round-trip")
	}
	for r := 0; r < art.B.Len(); r++ {
		for c := range art.B.Schema.Attrs {
			if loaded.B.Value(r, c) != art.B.Value(r, c) {
				t.Fatalf("B[%d][%d] = %q, want %q", r, c, loaded.B.Value(r, c), art.B.Value(r, c))
			}
		}
	}
	if len(loaded.Dicts) != len(art.Dicts) {
		t.Fatalf("rebuilt %d dicts, want %d", len(loaded.Dicts), len(art.Dicts))
	}
	for key, want := range art.Dicts {
		got := loaded.Dicts[key]
		if got == nil || got.Len() != want.Len() {
			t.Fatalf("dict %q did not round-trip", key)
		}
	}
}

// headerLen returns the offset where the payload starts: magic, uvarint
// version, SHA-256 checksum.
func headerLen(raw []byte) int {
	_, n := binary.Uvarint(raw[8:])
	return 8 + n + sha256.Size
}

func TestLoadArtifactRejectsCorruptInput(t *testing.T) {
	art := trainedArtifact(t)
	var buf bytes.Buffer
	if err := art.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	load := func(b []byte) error {
		_, err := model.LoadArtifact(bytes.NewReader(b))
		return err
	}
	expect := func(name string, b []byte, frag string) {
		t.Helper()
		err := load(b)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("%s: error %q, want mention of %q", name, err, frag)
		}
	}

	expect("empty", nil, "bad magic")
	expect("garbage magic", []byte("NOTANART0123456789"), "bad magic")

	badVer := append([]byte(nil), raw...)
	badVer[8] = 99 // uvarint version byte
	expect("version mismatch", badVer, "unsupported")

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0xff
	expect("payload corruption", flipped, "checksum mismatch")

	expect("cut file", raw[:len(raw)/2], "checksum mismatch")

	// A truncated payload with a recomputed checksum must fail in the
	// decoder itself (the sticky bounds-checked path), not just the hash.
	h := headerLen(raw)
	cut := append([]byte(nil), raw[:h+len(raw[h:])/2]...)
	sum := sha256.Sum256(cut[h:])
	copy(cut[h-sha256.Size:h], sum[:])
	expect("truncated payload", cut, "truncated")

	// Trailing junk after a valid payload is rejected too.
	ext := append(append([]byte(nil), raw...), 0, 0, 0)
	sum = sha256.Sum256(ext[h:])
	copy(ext[h-sha256.Size:h], sum[:])
	expect("trailing bytes", ext, "trailing")
}
