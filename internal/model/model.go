// Package model serializes what a Falcon run learns — the blocking-rule
// sequence and the random-forest matcher, bound to a feature-space
// signature — so an EM service can train once with the crowd and re-apply
// the learned model to refreshed tables with no further crowdsourcing.
package model

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"falcon/internal/block"
	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/forest"
	"falcon/internal/mapreduce"
	"falcon/internal/rules"
	"falcon/internal/table"
)

// Version is bumped on breaking format changes.
const Version = 1

// Model is the serializable outcome of hands-off learning.
type Model struct {
	Version int `json:"version"`
	// FeatureNames is the full feature space in vector order; it must
	// regenerate identically from schema-compatible tables.
	FeatureNames []string `json:"feature_names"`
	// BlockingIdx indexes the blocking-feature subspace.
	BlockingIdx []int `json:"blocking_idx"`
	// RuleSeq is the selected blocking-rule sequence over blocking-vector
	// positions; empty means the matcher-only plan.
	RuleSeq []rules.Rule `json:"rule_seq"`
	// ClauseSel holds each rule's sample selectivity (for apply-greedy).
	ClauseSel []float64 `json:"clause_sel"`
	// Matcher is the matching-stage forest over the full feature space.
	Matcher *forest.Forest `json:"matcher"`
}

// New assembles a model from learned artifacts.
func New(set *feature.Set, seq []rules.Rule, clauseSel []float64, matcher *forest.Forest) *Model {
	m := &Model{
		Version:     Version,
		BlockingIdx: append([]int(nil), set.BlockingIdx...),
		RuleSeq:     seq,
		ClauseSel:   clauseSel,
		Matcher:     matcher,
	}
	for _, f := range set.Features {
		m.FeatureNames = append(m.FeatureNames, f.Name)
	}
	return m
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("model: decoding: %w", err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("model: version %d unsupported (want %d)", m.Version, Version)
	}
	if m.Matcher == nil {
		return nil, fmt.Errorf("model: missing matcher")
	}
	return &m, nil
}

// Bind regenerates the feature space for a new table pair and verifies it
// matches the model's signature, returning the bound set.
func (m *Model) Bind(a, b *table.Table) (*feature.Set, error) {
	set := feature.Generate(a, b)
	if len(set.Features) != len(m.FeatureNames) {
		return nil, fmt.Errorf("model: feature space mismatch: tables yield %d features, model has %d",
			len(set.Features), len(m.FeatureNames))
	}
	for i, f := range set.Features {
		if f.Name != m.FeatureNames[i] {
			return nil, fmt.Errorf("model: feature %d is %q, model expects %q", i, f.Name, m.FeatureNames[i])
		}
	}
	if len(set.BlockingIdx) != len(m.BlockingIdx) {
		return nil, fmt.Errorf("model: blocking subspace mismatch")
	}
	return set, nil
}

// Apply runs the stored blocking rules and matcher over a new table pair —
// no crowd involved. It returns the predicted matches and the surviving
// candidate count.
func (m *Model) Apply(cluster *mapreduce.Cluster, a, b *table.Table) ([]table.Pair, int, error) {
	return m.ApplyContext(context.Background(), cluster, a, b)
}

// ApplyContext is Apply honoring ctx cancellation inside the blocking jobs.
func (m *Model) ApplyContext(ctx context.Context, cluster *mapreduce.Cluster, a, b *table.Table) ([]table.Pair, int, error) {
	if cluster == nil {
		cluster = mapreduce.Default()
	}
	set, err := m.Bind(a, b)
	if err != nil {
		return nil, 0, err
	}
	vz := feature.NewVectorizer(set, a, b)

	var candidates []table.Pair
	if len(m.RuleSeq) > 0 {
		feats := make([]*feature.Feature, len(set.BlockingIdx))
		for i, idx := range set.BlockingIdx {
			feats[i] = &set.Features[idx]
		}
		an := filters.Analyze(rules.ToCNF(m.RuleSeq), feats)
		ix := filters.NewIndexes(cluster, a)
		if _, err := ix.EnsureAll(ctx, an.NeededIndexes()); err != nil {
			return nil, 0, err
		}
		in := &block.Input{
			A: a, B: b,
			Analysis:    an,
			Indexes:     ix,
			Vectorizer:  vz,
			ClauseSel:   m.ClauseSel,
			PassIDsOnly: true,
		}
		res, err := block.Run(ctx, cluster, in, block.Choose(cluster, in, seqSel(m.ClauseSel)))
		if err != nil {
			return nil, 0, err
		}
		candidates = res.Pairs
	} else {
		for i := 0; i < a.Len(); i++ {
			for j := 0; j < b.Len(); j++ {
				candidates = append(candidates, table.Pair{A: i, B: j})
			}
		}
	}

	var matches []table.Pair
	for _, p := range candidates {
		vec := vz.Vector(p)
		if m.Matcher.Predict(vec.Values) {
			matches = append(matches, p)
		}
	}
	return matches, len(candidates), nil
}

// seqSel approximates the sequence selectivity as the product of the
// per-rule selectivities (the independence estimate of §6).
func seqSel(sel []float64) float64 {
	s := 1.0
	for _, v := range sel {
		s *= v
	}
	return s
}
