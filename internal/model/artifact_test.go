package model

import (
	"testing"

	"falcon/internal/forest"
	"falcon/internal/rules"
	"falcon/internal/tokenize"
)

// TestNewMatcherArtifact proves the serving artifact is insulated from its
// inputs: mutating the model's slices or the dictionary map after
// construction must not be visible through the artifact (the artifact is
// frozen — see //falcon:frozen on the constructor).
func TestNewMatcherArtifact(t *testing.T) {
	m := &Model{
		Version:      Version,
		FeatureNames: []string{"jaccard_word(title)", "abs_diff(price)"},
		BlockingIdx:  []int{0},
		RuleSeq:      make([]rules.Rule, 1),
		ClauseSel:    []float64{0.25},
		Matcher:      &forest.Forest{},
	}
	d := tokenize.NewDict()
	d.Intern("cloud")
	dicts := map[string]*tokenize.Dict{"title": d}

	art := NewMatcherArtifact(m, &ServingData{Dicts: dicts})

	if art.Version != ArtifactVersion {
		t.Fatalf("Version = %d, want %d", art.Version, ArtifactVersion)
	}
	if art.Matcher != m.Matcher {
		t.Fatalf("Matcher should be shared, not copied")
	}
	if art.Dicts["title"] != d {
		t.Fatalf("dictionary reference should be shared, not copied")
	}

	m.FeatureNames[0] = "mutated"
	m.BlockingIdx[0] = 99
	m.ClauseSel[0] = 0.99
	dicts["price"] = tokenize.NewDict()

	if art.FeatureNames[0] != "jaccard_word(title)" {
		t.Fatalf("FeatureNames shares the input spine: %q", art.FeatureNames[0])
	}
	if art.BlockingIdx[0] != 0 {
		t.Fatalf("BlockingIdx shares the input spine: %d", art.BlockingIdx[0])
	}
	if art.ClauseSel[0] != 0.25 {
		t.Fatalf("ClauseSel shares the input spine: %g", art.ClauseSel[0])
	}
	if len(art.Dicts) != 1 {
		t.Fatalf("Dicts shares the input map: %d entries", len(art.Dicts))
	}
}
