package experiments

import (
	"time"

	"falcon/internal/core"
	"falcon/internal/datagen"
	"falcon/internal/metrics"
)

func coreRun(d *datagen.Dataset, opt core.Options) (*core.Result, error) {
	return core.Run(d.A, d.B, d.Oracle(), opt)
}

// Fig9Point is one crowd-error-rate measurement.
type Fig9Point struct {
	ErrorRate float64
	F1        float64
	Total     time.Duration
	Cost      float64
}

// Fig9 sweeps the simulated crowd error rate 0–15% and reports F1, run
// time, and cost (paper Figure 9), averaged over c.Runs runs.
func (c Config) Fig9(dataset DatasetName) ([]Fig9Point, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Figure 9: crowd error rate vs F1 / run time / cost (%s)\n", dataset)
	fprintf(c.Out, "%6s %8s %12s %10s\n", "err%", "F1%", "run time", "cost")
	var out []Fig9Point
	for _, rate := range []float64{0, 0.05, 0.10, 0.15} {
		cc := c
		cc.ErrRate = rate
		var f1, cost float64
		var total time.Duration
		for r := 1; r <= c.Runs; r++ {
			rs, err := cc.RunOnce(dataset, r)
			if err != nil {
				return nil, err
			}
			f1 += rs.Score.F1
			cost += rs.Cost
			total += rs.Total
		}
		n := float64(c.Runs)
		p := Fig9Point{ErrorRate: rate, F1: f1 / n, Total: total / time.Duration(c.Runs), Cost: cost / n}
		out = append(out, p)
		fprintf(c.Out, "%6.0f %8.1f %12s %9.2f$\n", rate*100, p.F1*100, metrics.FmtDuration(p.Total), p.Cost)
	}
	return out, nil
}

// Fig10Point is one table-size measurement.
type Fig10Point struct {
	Fraction float64
	Rows     int
	F1       float64
	Total    time.Duration
	Machine  time.Duration
	// BlockTime is the unoptimized apply_blocking_rules time (indexes +
	// blocking job) — the component that must grow with table size.
	BlockTime time.Duration
	Cands     int
	Cost      float64
}

// Fig10 sweeps the table size over 25/50/75/100% of the dataset (paper
// Figure 10) with a 5% simulated crowd, as in §11.4.
func (c Config) Fig10(dataset DatasetName) ([]Fig10Point, error) {
	c = c.WithDefaults()
	if c.ErrRate == 0 {
		c.ErrRate = 0.05
	}
	fprintf(c.Out, "Figure 10: table size vs F1 / run time / cost (%s)\n", dataset)
	fprintf(c.Out, "%6s %8s %8s %12s %10s\n", "frac", "rows", "F1%", "run time", "cost")
	base := c.Scale
	var out []Fig10Point
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		cc := c
		cc.Scale = base * frac
		cc.SampleN = 0 // rescale with the data
		cc = cc.WithDefaults()
		var f1, cost float64
		var total, machine, blockT time.Duration
		rows, cands := 0, 0
		for r := 1; r <= c.Runs; r++ {
			rs, err := cc.RunOnce(dataset, r)
			if err != nil {
				return nil, err
			}
			f1 += rs.Score.F1
			cost += rs.Cost
			total += rs.Total
			machine += rs.Machine
			blockT += rs.Result.UnoptimizedBlockTime
			rows = rs.Data.A.Len()
			cands += rs.CandSize
		}
		n := float64(c.Runs)
		p := Fig10Point{Fraction: frac, Rows: rows, F1: f1 / n,
			Total: total / time.Duration(c.Runs), Machine: machine / time.Duration(c.Runs),
			BlockTime: blockT / time.Duration(c.Runs), Cands: cands / c.Runs, Cost: cost / n}
		out = append(out, p)
		fprintf(c.Out, "%6.2f %8d %8.1f %12s %9.2f$\n", frac, p.Rows, p.F1*100, metrics.FmtDuration(p.Total), p.Cost)
	}
	return out, nil
}
