package experiments

import (
	"errors"
	"time"

	"falcon/internal/block"
	"falcon/internal/mapreduce"
	"falcon/internal/metrics"
)

// CorleoneRow is the headline Falcon-vs-Corleone comparison (§3.3: Corleone
// "had to be stopped after more than a week" on 100K×100K; Falcon finishes
// in hours).
type CorleoneRow struct {
	Dataset         DatasetName
	FalconMachine   time.Duration
	CorleoneMachine time.Duration
	// Speedup is the machine-time ratio Corleone/Falcon.
	Speedup float64
	// CorleoneKilled reports the baseline refusing the Cartesian product
	// (the paper's "killed after a week" outcome).
	CorleoneKilled bool
	FalconF1       float64
}

// CorleoneVsFalcon runs the pipeline twice per dataset: once as Falcon
// (index-based blocking on the cluster, masking on) and once as Corleone —
// a single machine (1 node × 1 slot) that enumerates the entire A×B with
// ReduceSplit-style evaluation and no masking.
func (c Config) CorleoneVsFalcon() ([]CorleoneRow, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Falcon vs Corleone (single-machine, Cartesian enumeration)\n")
	fprintf(c.Out, "%-11s %14s %16s %9s\n", "Dataset", "Falcon mach.", "Corleone mach.", "speedup")
	var rows []CorleoneRow
	for _, name := range AllDatasets {
		d := c.Generate(name, c.Seed+7)
		row := CorleoneRow{Dataset: name}

		// Falcon.
		opt := c.Options(c.Seed + 101)
		opt.SampleN = c.sampleSize(d.B.Len())
		res, err := coreRun(d, opt)
		if err != nil {
			return nil, err
		}
		row.FalconMachine = res.Timeline.MachineTime
		row.FalconF1 = metrics.Score(res.Matches, d.Truth).F1

		// Corleone: one machine, exhaustive rule application, no masking.
		cOpt := c.Options(c.Seed + 101)
		cOpt.SampleN = opt.SampleN
		cOpt.Cluster = &mapreduce.Cluster{
			Nodes: 1, SlotsPerNode: 1, MapperMemory: 2 << 30,
			CostUnit:    8 * time.Millisecond,
			ShuffleUnit: 1 * time.Millisecond,
			JobOverhead: time.Second, // no Hadoop startup on one machine
		}
		cOpt.MaskIndexBuild, cOpt.Speculative, cOpt.MaskedSelection = false, false, false
		reduceSplit := block.ReduceSplit
		cOpt.ForceStrategy = &reduceSplit
		cRes, err := coreRun(d, cOpt)
		switch {
		case errors.Is(err, block.ErrTooLarge):
			row.CorleoneKilled = true
			fprintf(c.Out, "%-11s %14s %16s\n", name, metrics.FmtDuration(row.FalconMachine), "KILLED (A×B too large)")
		case err != nil:
			return nil, err
		default:
			row.CorleoneMachine = cRes.Timeline.MachineTime
			if row.FalconMachine > 0 {
				row.Speedup = float64(row.CorleoneMachine) / float64(row.FalconMachine)
			}
			fprintf(c.Out, "%-11s %14s %16s %8.1fx\n", name,
				metrics.FmtDuration(row.FalconMachine), metrics.FmtDuration(row.CorleoneMachine), row.Speedup)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
