package experiments

import (
	"context"
	"strings"
	"time"

	"falcon/internal/block"
	"falcon/internal/core"
	"falcon/internal/crowd"
	"falcon/internal/datagen"
	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/forest"
	"falcon/internal/learn"
	"falcon/internal/mapreduce"
	"falcon/internal/metrics"
	"falcon/internal/rules"
	"falcon/internal/rulesel"
	"falcon/internal/sample"
	"falcon/internal/table"
)

// frontHalf runs the blocking-stage front of the pipeline — sample_pairs,
// gen_fvs, al_matcher, get_blocking_rules, eval_rules — and returns the
// pieces the physical-operator and rule-sequence experiments need.
type frontHalf struct {
	d        *datagen.Dataset
	cluster  *mapreduce.Cluster
	set      *feature.Set
	vz       *feature.Vectorizer
	feats    []*feature.Feature
	retained []rulesel.EvaluatedRule
	choice   rulesel.SeqChoice
	nSample  int
}

func (c Config) runFrontHalf(name DatasetName) (*frontHalf, error) {
	c = c.WithDefaults()
	d := c.Generate(name, c.Seed+7)
	cluster := &mapreduce.Cluster{
		Nodes: c.Nodes, SlotsPerNode: 8, MapperMemory: 2 << 30,
		CostUnit:    8 * time.Millisecond,
		ShuffleUnit: 1 * time.Millisecond,
		JobOverhead: 5 * time.Second,
	}
	cr := crowd.New(crowd.NewRandomWorkers(c.ErrRate, 0, c.Seed+1), crowd.Config{})

	set := feature.Generate(d.A, d.B)
	vz := feature.NewVectorizer(set, d.A, d.B)
	pairs, _, err := sample.Pairs(context.Background(), cluster, d.A, d.B, sample.Config{N: c.sampleSize(d.B.Len()), Y: 20, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	vecs := vz.BlockingVectorizeAll(pairs)
	pool := make([]learn.Item, len(vecs))
	sampleVecs := make([][]float64, len(vecs))
	for i, v := range vecs {
		pool[i] = learn.Item{Pair: v.Pair, Vec: v.Values}
		sampleVecs[i] = v.Values
	}
	feats := make([]*feature.Feature, len(set.BlockingIdx))
	for i, idx := range set.BlockingIdx {
		feats[i] = &set.Features[idx]
	}
	isDist := func(i int) bool { return feats[i].Measure.Distance() }
	learner := learn.New(cluster, cr, d.Oracle(), learn.Config{
		MaxIterations: c.ALIter,
		Forest:        forest.Config{Seed: c.Seed + 10},
		SeedScore: func(vec []float64) float64 {
			sum, n := 0.0, 0
			for i, v := range vec {
				if isDist(i) || v == feature.Missing {
					continue
				}
				sum += v
				n++
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		},
	})
	alRes, err := learner.Run(context.Background(), pool)
	if err != nil {
		return nil, err
	}
	cands := rules.Extract(alRes.Forest)
	evalRes, err := rulesel.EvalRules(context.Background(), cands, pairs, sampleVecs, cr, d.Oracle(), nil, rulesel.EvalConfig{Seed: c.Seed + 20})
	if err != nil {
		return nil, err
	}
	choice := rulesel.SelectOptSeq(evalRes.Retained, len(vecs), rulesel.Weights{})
	return &frontHalf{
		d: d, cluster: cluster, set: set, vz: vz, feats: feats,
		retained: evalRes.Retained, choice: choice, nSample: len(vecs),
	}, nil
}

// blockInput builds an apply_blocking_rules input for a rule sequence.
func (fh *frontHalf) blockInput(seq []rulesel.EvaluatedRule) (*block.Input, error) {
	rs := make([]rules.Rule, len(seq))
	sel := make([]float64, len(seq))
	for i, er := range seq {
		rs[i] = er.Rule
		sel[i] = er.Selectivity
	}
	an := filters.Analyze(rules.ToCNF(rs), fh.feats)
	ix := filters.NewIndexes(fh.cluster, fh.d.A)
	if _, err := ix.EnsureAll(context.Background(), an.NeededIndexes()); err != nil {
		return nil, err
	}
	return &block.Input{
		A: fh.d.A, B: fh.d.B,
		Analysis:    an,
		Indexes:     ix,
		Vectorizer:  fh.vz,
		ClauseSel:   sel,
		PassIDsOnly: true,
	}, nil
}

// BlockerRow is one strategy measurement of the §11.2 comparison.
type BlockerRow struct {
	Strategy   block.Strategy
	SimTime    time.Duration
	Candidates int
	MemoryNeed int64
	Err        string
}

// Blockers compares the six apply_blocking_rules physical operators
// (§11.2) on one dataset, plus the §10.1 automatic choice.
func (c Config) Blockers(name DatasetName) ([]BlockerRow, block.Strategy, error) {
	c = c.WithDefaults()
	fh, err := c.runFrontHalf(name)
	if err != nil {
		return nil, 0, err
	}
	if len(fh.choice.Seq) == 0 {
		return nil, 0, errNoRules(name)
	}
	in, err := fh.blockInput(fh.choice.Seq)
	if err != nil {
		return nil, 0, err
	}
	fprintf(c.Out, "Blocking strategies on %s (rules=%d, |A|=%d, |B|=%d)\n",
		name, len(fh.choice.Seq), fh.d.A.Len(), fh.d.B.Len())
	fprintf(c.Out, "%-16s %12s %10s %12s\n", "strategy", "sim time", "cands", "mapper mem")
	var rows []BlockerRow
	for s := block.ApplyAll; s <= block.ReduceSplit; s++ {
		row := BlockerRow{Strategy: s, MemoryNeed: block.MemoryNeed(in, s)}
		res, err := block.Run(context.Background(), fh.cluster, in, s)
		if err != nil {
			row.Err = err.Error()
			fprintf(c.Out, "%-16s %12s\n", s, "KILLED ("+err.Error()+")")
		} else {
			row.SimTime = res.SimTime
			row.Candidates = len(res.Pairs)
			fprintf(c.Out, "%-16s %12s %10d %12d\n", s, metrics.FmtDuration(res.SimTime), len(res.Pairs), row.MemoryNeed)
		}
		rows = append(rows, row)
	}
	chosen := block.Choose(fh.cluster, in, fh.choice.Selectivity)
	fprintf(c.Out, "§10.1 choice: %s\n", chosen)
	return rows, chosen, nil
}

// MemorySweep reruns strategy selection under shrinking mapper memory
// (the 2G/1G/500M sweep of §11.2).
func (c Config) MemorySweep(name DatasetName) (map[int64]block.Strategy, error) {
	c = c.WithDefaults()
	fh, err := c.runFrontHalf(name)
	if err != nil {
		return nil, err
	}
	if len(fh.choice.Seq) == 0 {
		return nil, errNoRules(name)
	}
	in, err := fh.blockInput(fh.choice.Seq)
	if err != nil {
		return nil, err
	}
	out := map[int64]block.Strategy{}
	fprintf(c.Out, "Memory sweep on %s\n", name)
	for _, mem := range []int64{2 << 30, 1 << 30, 500 << 20, 64 << 10, 1 << 10} {
		cl := *fh.cluster
		cl.MapperMemory = mem
		s := block.Choose(&cl, in, fh.choice.Selectivity)
		out[mem] = s
		fprintf(c.Out, "  mem=%-12d → %s\n", mem, s)
	}
	return out, nil
}

type noRulesErr string

func (e noRulesErr) Error() string { return "experiments: no rules retained on " + string(e) }

func errNoRules(name DatasetName) error { return noRulesErr(name) }

// ClusterRow is one cluster-size measurement.
type ClusterRow struct {
	Nodes   int
	Machine time.Duration
}

// ClusterSweep varies cluster size 5→20 nodes (§11.4's additional
// experiment) and reports machine time.
func (c Config) ClusterSweep(name DatasetName) ([]ClusterRow, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Cluster-size sweep (%s)\n", name)
	var rows []ClusterRow
	for _, nodes := range []int{5, 10, 15, 20} {
		cc := c
		cc.Nodes = nodes
		rs, err := cc.RunOnce(name, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClusterRow{Nodes: nodes, Machine: rs.Machine})
		fprintf(c.Out, "  %2d nodes → machine %s\n", nodes, metrics.FmtDuration(rs.Machine))
	}
	return rows, nil
}

// SampleSweepRow is one sample-size measurement.
type SampleSweepRow struct {
	SampleN int
	F1      float64
	Total   time.Duration
	Cost    float64
}

// SampleSweep varies the sample size ×0.5/×1/×2 (§11.4).
func (c Config) SampleSweep(name DatasetName) ([]SampleSweepRow, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Sample-size sweep (%s)\n", name)
	base := c.sampleSize(c.Generate(name, c.Seed+7).B.Len())
	var rows []SampleSweepRow
	for _, mult := range []float64{0.5, 1, 2} {
		cc := c
		cc.SampleN = int(float64(base) * mult)
		rs, err := cc.RunOnce(name, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SampleSweepRow{SampleN: cc.SampleN, F1: rs.Score.F1, Total: rs.Total, Cost: rs.Cost})
		fprintf(c.Out, "  n=%-8d F1=%.1f%% total=%s cost=%.2f$\n", cc.SampleN, rs.Score.F1*100, metrics.FmtDuration(rs.Total), rs.Cost)
	}
	return rows, nil
}

// IterCapRow is one iteration-cap measurement.
type IterCapRow struct {
	Cap   int
	F1    float64
	Total time.Duration
}

// IterCapSweep varies the active-learning iteration cap (§11.4: 30→100).
func (c Config) IterCapSweep(name DatasetName) ([]IterCapRow, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Iteration-cap sweep (%s)\n", name)
	var rows []IterCapRow
	for _, k := range []int{6, 12, 24, 48} {
		cc := c
		cc.ALIter = k
		rs, err := cc.RunOnce(name, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, IterCapRow{Cap: k, F1: rs.Score.F1, Total: rs.Total})
		fprintf(c.Out, "  k=%-3d F1=%.1f%% total=%s\n", k, rs.Score.F1*100, metrics.FmtDuration(rs.Total))
	}
	return rows, nil
}

// KBBRow compares key-based and sorted-neighborhood blocking against
// learned rule-based blocking recall (§3.2 and the related-work baselines).
type KBBRow struct {
	Dataset   DatasetName
	KBBRecall float64
	SNBRecall float64
	SNBCands  int
	RBBRecall float64
	KBBKey    string
}

// KBB measures the best single-attribute key-based blocking recall against
// Falcon's learned rule-based blocking recall.
func (c Config) KBB() ([]KBBRow, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Key-based vs rule-based blocking recall (§3.2)\n")
	var rows []KBBRow
	for _, name := range AllDatasets {
		rs, err := c.RunOnce(name, 1)
		if err != nil {
			return nil, err
		}
		d := rs.Data
		row := KBBRow{Dataset: name, RBBRecall: metrics.BlockingRecall(rs.Result.Candidates, d.Truth)}
		// Best exact-match key over shared string attributes, restricted to
		// *usable* keys: a key whose blocks cover more than 5% of A×B does
		// no blocking at all (e.g. a category column).
		maxCand := int64(d.A.Len()) * int64(d.B.Len()) / 20
		for _, attr := range d.A.Schema.Attrs {
			bCol := d.B.Schema.Col(attr.Name)
			if bCol < 0 || attr.Type != table.String {
				continue
			}
			aCol := d.A.Schema.Col(attr.Name)
			if kbbCandidates(d, aCol, bCol) > maxCand {
				continue
			}
			rec := kbbRecall(d, aCol, bCol)
			if rec > row.KBBRecall {
				row.KBBRecall = rec
				row.KBBKey = attr.Name
			}
		}
		// Sorted-neighborhood baseline on the same key, window 10.
		if row.KBBKey != "" {
			aCol := d.A.Schema.Col(row.KBBKey)
			bCol := d.B.Schema.Col(row.KBBKey)
			snb := block.SortedNeighborhood(d.A, d.B, aCol, bCol, 10)
			row.SNBRecall = metrics.BlockingRecall(snb, d.Truth)
			row.SNBCands = len(snb)
		}
		rows = append(rows, row)
		fprintf(c.Out, "  %-11s KBB(best key=%s)=%.1f%%  SNB(w=10)=%.1f%%  RBB=%.1f%%\n",
			name, row.KBBKey, row.KBBRecall*100, row.SNBRecall*100, row.RBBRecall*100)
	}
	return rows, nil
}

// kbbCandidates counts the pairs a key-based blocker would produce.
func kbbCandidates(d *datagen.Dataset, aCol, bCol int) int64 {
	cntA := map[string]int64{}
	for i := 0; i < d.A.Len(); i++ {
		v := strings.ToLower(strings.TrimSpace(d.A.Value(i, aCol)))
		if v != "" {
			cntA[v]++
		}
	}
	var total int64
	for i := 0; i < d.B.Len(); i++ {
		v := strings.ToLower(strings.TrimSpace(d.B.Value(i, bCol)))
		if v != "" {
			total += cntA[v]
		}
	}
	return total
}

// kbbRecall is the fraction of true matches sharing an exact key value.
func kbbRecall(d *datagen.Dataset, aCol, bCol int) float64 {
	if len(d.Truth) == 0 {
		return 1
	}
	hit := 0
	for p := range d.Truth {
		av := strings.ToLower(strings.TrimSpace(d.A.Value(p.A, aCol)))
		bv := strings.ToLower(strings.TrimSpace(d.B.Value(p.B, bCol)))
		if av != "" && av == bv {
			hit++
		}
	}
	return float64(hit) / float64(len(d.Truth))
}

// RuleSeqRow compares rule-sequence choices (§11.2's sel_opt_seq study).
type RuleSeqRow struct {
	Variant    string
	Recall     float64
	SimTime    time.Duration
	Candidates int
}

// RuleSeq compares the optimal sequence against all-rules, top-1, and
// top-3 orderings.
func (c Config) RuleSeq(name DatasetName) ([]RuleSeqRow, error) {
	c = c.WithDefaults()
	fh, err := c.runFrontHalf(name)
	if err != nil {
		return nil, err
	}
	if len(fh.retained) == 0 {
		return nil, errNoRules(name)
	}
	variants := map[string][]rulesel.EvaluatedRule{
		"optimal": fh.choice.Seq,
		"all":     fh.retained,
	}
	variants["top-1"] = fh.retained[:1]
	if len(fh.retained) >= 3 {
		variants["top-3"] = fh.retained[:3]
	}
	fprintf(c.Out, "Rule-sequence comparison on %s\n", name)
	var rows []RuleSeqRow
	for _, v := range []string{"optimal", "all", "top-1", "top-3"} {
		seq, ok := variants[v]
		if !ok {
			continue
		}
		in, err := fh.blockInput(seq)
		if err != nil {
			return nil, err
		}
		res, err := block.Run(context.Background(), fh.cluster, in, block.ApplyAll)
		if err != nil {
			return nil, err
		}
		row := RuleSeqRow{
			Variant:    v,
			Recall:     metrics.BlockingRecall(res.Pairs, fh.d.Truth),
			SimTime:    res.SimTime,
			Candidates: len(res.Pairs),
		}
		rows = append(rows, row)
		fprintf(c.Out, "  %-8s recall=%.2f%% time=%s cands=%d\n",
			v, row.Recall*100, metrics.FmtDuration(row.SimTime), row.Candidates)
	}
	return rows, nil
}

// CostCap prints and returns the §3.4 crowd-cost cap.
func (c Config) CostCap() float64 {
	c = c.WithDefaults()
	cap := crowd.CostCap(crowd.DefaultCapParams())
	fprintf(c.Out, "Crowd cost cap C_max = $%.2f (paper: $349.60)\n", cap)
	return cap
}

// DrugsRow reports the §11.1 drug-matching deployment reproduction.
type DrugsRow struct {
	Score            metrics.PRF1
	CrowdTime        time.Duration
	MachineUnmasked  time.Duration
	MachineNoMasking time.Duration
	Reduction        float64
	Labeled          int
}

// DrugsStudy runs the drug-matching workload with an in-house crowd of one
// and measures the masking reduction of machine time.
func (c Config) DrugsStudy() (*DrugsRow, error) {
	c = c.WithDefaults()
	d := c.Generate(Drugs, c.Seed+7)
	run := func(mask bool) (*core.Result, error) {
		opt := c.Options(c.Seed + 101)
		opt.Platform = crowd.InHouse{Latency: 20 * time.Second}
		if !mask {
			opt.MaskIndexBuild, opt.Speculative, opt.MaskedSelection = false, false, false
		}
		return coreRun(d, opt)
	}
	masked, err := run(true)
	if err != nil {
		return nil, err
	}
	unmasked, err := run(false)
	if err != nil {
		return nil, err
	}
	row := &DrugsRow{
		Score:            metrics.Score(masked.Matches, d.Truth),
		CrowdTime:        masked.Timeline.CrowdTime,
		MachineUnmasked:  masked.Timeline.UnmaskedMachine,
		MachineNoMasking: unmasked.Timeline.UnmaskedMachine,
		Labeled:          masked.Questions,
	}
	if row.MachineNoMasking > 0 {
		row.Reduction = 1 - float64(row.MachineUnmasked)/float64(row.MachineNoMasking)
	}
	fprintf(c.Out, "Drug matching (in-house crowd of 1): %v, %d pairs labeled\n", row.Score, row.Labeled)
	fprintf(c.Out, "  crowd time %s, machine %s (no masking: %s, reduction %.0f%%)\n",
		metrics.FmtDuration(row.CrowdTime), metrics.FmtDuration(row.MachineUnmasked),
		metrics.FmtDuration(row.MachineNoMasking), row.Reduction*100)
	return row, nil
}
