package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"falcon/internal/block"
)

// fastConfig keeps every experiment in test-friendly territory.
func fastConfig(buf *bytes.Buffer) Config {
	return Config{Scale: 0.03, Seed: 5, Runs: 2, ALIter: 8, Out: buf}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := fastConfig(&buf).Table1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Products", "Songs", "Citations"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %s:\n%s", name, out)
		}
	}
}

func TestTable2ShapesHold(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper shape: high accuracy, bounded cost, crowd time dominating
		// machine time on MTurk latencies.
		if r.F1 < 0.6 {
			t.Errorf("%s F1 = %.2f, want ≥0.6", r.Dataset, r.F1)
		}
		if r.Cost <= 0 || r.Cost > 349.60 {
			t.Errorf("%s cost = %.2f outside (0, C_max]", r.Dataset, r.Cost)
		}
		if r.Crowd <= r.Machine {
			t.Errorf("%s crowd (%v) should dominate machine (%v) at MTurk latency", r.Dataset, r.Crowd, r.Machine)
		}
		if r.Total < r.Crowd {
			t.Errorf("%s total < crowd", r.Dataset)
		}
		if r.CandMin <= 0 || r.CandMax < r.CandMin {
			t.Errorf("%s candidate range [%d,%d]", r.Dataset, r.CandMin, r.CandMax)
		}
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	c := fastConfig(&buf)
	c.Runs = 2
	runs, err := c.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 { // 3 datasets × 2 runs
		t.Fatalf("runs = %d", len(runs))
	}
}

func TestTable4(t *testing.T) {
	var buf bytes.Buffer
	perOp, err := fastConfig(&buf).Table4()
	if err != nil {
		t.Fatal(err)
	}
	for name, ops := range perOp {
		if ops["al_matcher(block)"] <= 0 {
			t.Errorf("%s: al_matcher(block) time missing", name)
		}
		// Crowd operators dominate the machine-only ones, as in Table 4.
		if ops["al_matcher(block)"] < ops["select_opt_seq"] {
			t.Errorf("%s: crowd operator cheaper than select_opt_seq", name)
		}
	}
}

func TestTable5MaskingShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).Table5()
	if err != nil {
		t.Fatal(err)
	}
	bigReduction := false
	for _, r := range rows {
		if float64(r.O) > float64(r.U)*1.02 {
			t.Errorf("%s: optimized unmasked time %v exceeds unoptimized %v", r.Dataset, r.O, r.U)
		}
		if r.Reduction > 1 {
			t.Errorf("%s: reduction %.2f out of range", r.Dataset, r.Reduction)
		}
		if r.Reduction >= 0.10 {
			bigReduction = true
		}
		// Ablations sit between O and U (small negative margins are
		// expected — the paper's own Table 5 has O−O1 within a minute of
		// O on every dataset).
		for _, abl := range []struct {
			name string
			v    float64
		}{{"O-O1", float64(r.NoO1)}, {"O-O2", float64(r.NoO2)}, {"O-O3", float64(r.NoO3)}} {
			if abl.v > float64(r.U)*1.05 {
				t.Errorf("%s: ablation %s (%v) exceeds the unoptimized baseline (%v)", r.Dataset, abl.name, abl.v, r.U)
			}
			if abl.v < float64(r.O)*0.85 {
				t.Errorf("%s: ablation %s (%v) far below full optimization (%v)", r.Dataset, abl.name, abl.v, r.O)
			}
		}
	}
	if !bigReduction {
		t.Error("no dataset showed ≥10% masking reduction")
	}
}

func TestFig9ErrorShape(t *testing.T) {
	var buf bytes.Buffer
	c := fastConfig(&buf)
	c.Runs = 1
	pts, err := c.Fig9(Songs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// F1 at 0% error should not be (much) worse than at 15%.
	if pts[0].F1+0.02 < pts[3].F1 {
		t.Errorf("F1 rose with error rate: %v → %v", pts[0].F1, pts[3].F1)
	}
	for _, p := range pts {
		if p.Cost <= 0 || p.Cost > 349.6 {
			t.Errorf("cost %.2f out of range at err=%v", p.Cost, p.ErrorRate)
		}
	}
}

func TestFig10SizeShape(t *testing.T) {
	var buf bytes.Buffer
	c := fastConfig(&buf)
	c.Scale = 0.05
	c.Runs = 1
	pts, err := c.Fig10(Songs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Blocking work and candidate sets grow with size (totals are
	// crowd-dominated at this scale, and speculative gambling makes raw
	// machine time noisy); F1 stays in a band.
	if pts[3].Cands <= pts[0].Cands {
		t.Errorf("candidate set did not grow with table size: %d → %d", pts[0].Cands, pts[3].Cands)
	}
	if float64(pts[3].BlockTime) < 0.8*float64(pts[0].BlockTime) {
		t.Errorf("blocking time fell sharply with table size: %v → %v", pts[0].BlockTime, pts[3].BlockTime)
	}
	var f1s []float64
	for _, p := range pts {
		f1s = append(f1s, p.F1)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, f := range f1s {
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	if lo < 0.4 {
		t.Errorf("F1 collapsed at some size: %v", f1s)
	}
}

func TestBlockersComparison(t *testing.T) {
	var buf bytes.Buffer
	c := fastConfig(&buf)
	c.Scale = 0.12 // large enough that strategy costs separate from job overhead
	rows, chosen, err := c.Blockers(Songs)
	if err != nil {
		t.Fatal(err)
	}
	byStrat := map[block.Strategy]BlockerRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
	}
	// All successful strategies agree on the candidate count.
	counts := map[int]bool{}
	for _, r := range rows {
		if r.Err == "" {
			counts[r.Candidates] = true
		}
	}
	if len(counts) != 1 {
		t.Fatalf("strategies disagree on candidates: %v", rows)
	}
	// Index-based beats the enumerating baselines.
	aa, rs := byStrat[block.ApplyAll], byStrat[block.ReduceSplit]
	if rs.Err == "" && aa.SimTime >= rs.SimTime {
		t.Errorf("apply-all (%v) should beat reduce-split (%v)", aa.SimTime, rs.SimTime)
	}
	if chosen == block.MapSide || chosen == block.ReduceSplit {
		t.Errorf("§10.1 chose a baseline (%v) with plenty of memory", chosen)
	}
}

func TestMemorySweep(t *testing.T) {
	var buf bytes.Buffer
	choices, err := fastConfig(&buf).MemorySweep(Songs)
	if err != nil {
		t.Fatal(err)
	}
	if choices[2<<30] == block.ReduceSplit {
		t.Error("2G memory should not force reduce-split")
	}
	if got := choices[1<<10]; got != block.ReduceSplit && got != block.MapSide {
		t.Errorf("1KB memory chose %v, want a baseline", got)
	}
}

func TestClusterSweepSubLinear(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).ClusterSweep(Songs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Machine < rows[1].Machine {
		t.Errorf("5 nodes (%v) faster than 10 (%v)", rows[0].Machine, rows[1].Machine)
	}
	gain1 := rows[0].Machine - rows[1].Machine
	gain2 := rows[2].Machine - rows[3].Machine
	if gain2 > gain1 {
		t.Errorf("speedup not sub-linear: 5→10 gain %v, 15→20 gain %v", gain1, gain2)
	}
}

func TestSampleSweep(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).SampleSweep(Songs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// F1 should be stable-ish across sample sizes (paper: negligible).
	for _, r := range rows {
		if r.F1 < 0.5 {
			t.Errorf("sample n=%d F1=%.2f collapsed", r.SampleN, r.F1)
		}
	}
}

func TestIterCapSweep(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).IterCapSweep(Songs)
	if err != nil {
		t.Fatal(err)
	}
	// Run time grows with the cap; F1 stays in a small band (paper §11.4).
	if rows[len(rows)-1].Total < rows[0].Total {
		t.Errorf("run time fell as cap grew: %v", rows)
	}
}

func TestKBBLosesRecall(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).KBB()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		floor := 0.8
		if r.Dataset == Products {
			floor = 0.6 // the paper's hard dataset; heavy corruption at tiny scale
		}
		if r.RBBRecall < floor {
			t.Errorf("%s: RBB recall %.2f too low", r.Dataset, r.RBBRecall)
		}
	}
	// On at least two datasets RBB must beat the best key (the §3.2 story).
	beats := 0
	for _, r := range rows {
		if r.RBBRecall > r.KBBRecall {
			beats++
		}
	}
	if beats < 2 {
		t.Errorf("RBB beat KBB on only %d/3 datasets: %+v", beats, rows)
	}
}

func TestRuleSeqOptimalCompetitive(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).RuleSeq(Songs)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]RuleSeqRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	opt, ok := byVariant["optimal"]
	if !ok {
		t.Fatal("no optimal row")
	}
	all := byVariant["all"]
	// Optimal recall within 2% of the all-rules recall... all-rules drops
	// the most pairs so its recall is the floor; optimal should match or
	// beat it.
	if opt.Recall+1e-9 < all.Recall-0.02 {
		t.Errorf("optimal recall %.3f well below all-rules %.3f", opt.Recall, all.Recall)
	}
}

func TestCostCap(t *testing.T) {
	var buf bytes.Buffer
	got := fastConfig(&buf).CostCap()
	if math.Abs(got-349.60) > 1e-9 {
		t.Fatalf("C_max = %v", got)
	}
}

func TestDrugsStudy(t *testing.T) {
	var buf bytes.Buffer
	row, err := fastConfig(&buf).DrugsStudy()
	if err != nil {
		t.Fatal(err)
	}
	if row.Score.F1 < 0.6 {
		t.Errorf("drug matching F1 = %.2f", row.Score.F1)
	}
	if row.Reduction < 0 {
		t.Errorf("masking increased machine time: %.2f", row.Reduction)
	}
	// In-house crowd latency is short, so machine time is a meaningful
	// share of the total — the §11.1 observation.
	if row.CrowdTime == 0 {
		t.Error("no crowd time recorded")
	}
}

func TestCorleoneVsFalcon(t *testing.T) {
	var buf bytes.Buffer
	rows, err := fastConfig(&buf).CorleoneVsFalcon()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CorleoneKilled {
			continue // the paper's outcome on large tables
		}
		// The single-machine Cartesian baseline must lose, and badly.
		if r.Speedup < 2 {
			t.Errorf("%s: Corleone only %.1fx slower (falcon %v vs corleone %v)",
				r.Dataset, r.Speedup, r.FalconMachine, r.CorleoneMachine)
		}
	}
}
