// Package experiments regenerates every table and figure of the paper's
// evaluation (§11) on the synthetic datasets, printing paper-style rows.
// Both cmd/falcon-bench and the repository's bench_test.go drive it.
//
// Absolute numbers come from the simulated cluster and crowd, not the
// authors' testbed; the reproduction target is the *shape* of each result
// (who wins, rough factors, crossovers). EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package experiments

import (
	"fmt"
	"io"
	"time"

	"falcon/internal/core"
	"falcon/internal/crowd"
	"falcon/internal/datagen"
	"falcon/internal/mapreduce"
	"falcon/internal/metrics"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = paper sizes; default 0.08,
	// which keeps full pipelines in seconds on one core).
	Scale float64
	// Seed bases all per-run seeds.
	Seed int64
	// Runs per dataset for averaged tables (paper: 3).
	Runs int
	// SampleN for sample_pairs (scaled down with the data).
	SampleN int
	// ALIter caps active-learning iterations.
	ALIter int
	// ErrRate is the simulated crowd error (paper's sensitivity runs: 5%).
	ErrRate float64
	// Nodes is the cluster size (paper: 10).
	Nodes int
	// Out receives the formatted tables.
	Out io.Writer
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.08
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	// SampleN == 0 means auto-size per dataset (≈ half of B × y, the
	// coverage fraction the paper's 1M sample achieves on its tables).
	if c.ALIter <= 0 {
		c.ALIter = 12
	}
	if c.Nodes <= 0 {
		c.Nodes = 10
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// DatasetName selects one of the three evaluation datasets.
type DatasetName string

// The three datasets of Table 1 plus the §11.1 drug workload.
const (
	Products  DatasetName = "Products"
	Songs     DatasetName = "Songs"
	Citations DatasetName = "Citations"
	Drugs     DatasetName = "Drugs"
)

// AllDatasets lists the Table-1 datasets in paper order.
var AllDatasets = []DatasetName{Products, Songs, Citations}

// Generate builds a dataset at the config's scale.
func (c Config) Generate(name DatasetName, seed int64) *datagen.Dataset {
	switch name {
	case Products:
		return datagen.Products(c.Scale, seed)
	case Songs:
		return datagen.Songs(int(20000*c.Scale), seed)
	case Citations:
		return datagen.Citations(int(18000*c.Scale), int(25000*c.Scale), seed)
	case Drugs:
		return datagen.Drugs(int(20000*c.Scale), seed)
	default:
		panic("experiments: unknown dataset " + string(name))
	}
}

// sampleSize resolves the sample size for a dataset: explicit SampleN, or
// half of B's rows × y (bounded to [1000, 60000]).
func (c Config) sampleSize(bLen int) int {
	if c.SampleN > 0 {
		return c.SampleN
	}
	n := bLen * 20 / 2
	if n < 1000 {
		n = 1000
	}
	if n > 60000 {
		n = 60000
	}
	return n
}

// Options builds core options for one run.
func (c Config) Options(runSeed int64) core.Options {
	o := core.DefaultOptions()
	o.Seed = runSeed
	o.SampleN = c.SampleN
	o.SampleY = 20
	o.ALIterations = c.ALIter
	o.MaskedSelectionMinPool = 2000 // scaled-down stand-in for the 50M bar
	// Calibrated cost model: experiment datasets are 12×–1000× smaller
	// than the paper's tables, so each record carries the cost of many
	// records (8 ms/unit instead of the engine's 25 µs default). This puts
	// machine times in the paper's magnitude range — well below crowd time
	// on MTurk latencies, as in Table 2 — while keeping data-size effects
	// visible above fixed job overhead.
	o.Cluster = &mapreduce.Cluster{
		Nodes: c.Nodes, SlotsPerNode: 8, MapperMemory: 2 << 30,
		CostUnit:    8 * time.Millisecond,
		ShuffleUnit: 1 * time.Millisecond,
		JobOverhead: 5 * time.Second,
	}
	o.Platform = crowd.NewRandomWorkers(c.ErrRate, 0, runSeed+1)
	force := true
	o.ForceBlocking = &force
	return o
}

// RunStats is one end-to-end run's measurements.
type RunStats struct {
	Dataset   DatasetName
	Run       int
	Score     metrics.PRF1
	Cost      float64
	Questions int
	Machine   time.Duration
	Crowd     time.Duration
	Total     time.Duration
	Masked    time.Duration
	Unmasked  time.Duration
	CandSize  int
	Result    *core.Result
	Data      *datagen.Dataset
}

// RunOnce executes the full pipeline once on the named dataset.
func (c Config) RunOnce(name DatasetName, run int) (*RunStats, error) {
	seed := c.Seed + int64(run)*101
	d := c.Generate(name, c.Seed+7) // same data across runs; crowd/sampling vary
	opt := c.Options(seed)
	opt.SampleN = c.sampleSize(d.B.Len())
	res, err := core.Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		return nil, fmt.Errorf("%s run %d: %w", name, run, err)
	}
	return &RunStats{
		Dataset:   name,
		Run:       run,
		Score:     metrics.Score(res.Matches, d.Truth),
		Cost:      res.Cost,
		Questions: res.Questions,
		Machine:   res.Timeline.MachineTime,
		Crowd:     res.Timeline.CrowdTime,
		Total:     res.Timeline.Total,
		Masked:    res.Timeline.MaskedMachine,
		Unmasked:  res.Timeline.UnmaskedMachine,
		CandSize:  len(res.Candidates),
		Result:    res,
		Data:      d,
	}, nil
}

// RunAll executes c.Runs runs on the named dataset.
func (c Config) RunAll(name DatasetName) ([]*RunStats, error) {
	out := make([]*RunStats, 0, c.Runs)
	for r := 1; r <= c.Runs; r++ {
		rs, err := c.RunOnce(name, r)
		if err != nil {
			return nil, err
		}
		out = append(out, rs)
	}
	return out, nil
}

func avgDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// fprintf funnels all experiment-report output. Reports go to stdout or an
// in-memory buffer; a failed write cannot corrupt results, so the error is
// deliberately discarded here — once — instead of at every call site.
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}
