package experiments

import (
	"time"

	"falcon/internal/metrics"
)

// Table1 prints the dataset statistics (paper Table 1).
func (c Config) Table1() error {
	c = c.WithDefaults()
	fprintf(c.Out, "Table 1: datasets (scale %.2f)\n", c.Scale)
	fprintf(c.Out, "%-11s %10s %10s %12s\n", "Dataset", "Table A", "Table B", "# Matches")
	for _, name := range AllDatasets {
		d := c.Generate(name, c.Seed+7)
		fprintf(c.Out, "%-11s %10d %10d %12d\n", name, d.A.Len(), d.B.Len(), d.Matches())
	}
	return nil
}

// Table2Row is one averaged row of Table 2.
type Table2Row struct {
	Dataset               DatasetName
	P, R, F1              float64
	Cost                  float64
	Questions             int
	Machine, Crowd, Total time.Duration
	CandMin, CandMax      int
}

// Table2 runs the full pipeline c.Runs times per dataset and prints the
// averaged overall-performance table (paper Table 2). It returns the rows
// for programmatic checks.
func (c Config) Table2() ([]Table2Row, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Table 2: overall performance (avg of %d runs)\n", c.Runs)
	fprintf(c.Out, "%-11s %6s %6s %6s %10s %6s %10s %10s %10s %15s\n",
		"Dataset", "P%", "R%", "F1%", "Cost", "#Q", "Machine", "Crowd", "Total", "Cand. size")
	var rows []Table2Row
	for _, name := range AllDatasets {
		runs, err := c.RunAll(name)
		if err != nil {
			return nil, err
		}
		row := summarize(name, runs)
		rows = append(rows, row)
		fprintf(c.Out, "%-11s %6.1f %6.1f %6.1f %9.2f$ %6d %10s %10s %10s %7s - %6s\n",
			row.Dataset, row.P*100, row.R*100, row.F1*100, row.Cost, row.Questions,
			metrics.FmtDuration(row.Machine), metrics.FmtDuration(row.Crowd), metrics.FmtDuration(row.Total),
			metrics.FmtCount(int64(row.CandMin)), metrics.FmtCount(int64(row.CandMax)))
	}
	return rows, nil
}

func summarize(name DatasetName, runs []*RunStats) Table2Row {
	row := Table2Row{Dataset: name, CandMin: 1 << 60}
	var machine, crowdT, total []time.Duration
	for _, r := range runs {
		row.P += r.Score.Precision
		row.R += r.Score.Recall
		row.F1 += r.Score.F1
		row.Cost += r.Cost
		row.Questions += r.Questions
		machine = append(machine, r.Machine)
		crowdT = append(crowdT, r.Crowd)
		total = append(total, r.Total)
		if r.CandSize < row.CandMin {
			row.CandMin = r.CandSize
		}
		if r.CandSize > row.CandMax {
			row.CandMax = r.CandSize
		}
	}
	n := float64(len(runs))
	row.P /= n
	row.R /= n
	row.F1 /= n
	row.Cost /= n
	row.Questions /= len(runs)
	row.Machine = avgDur(machine)
	row.Crowd = avgDur(crowdT)
	row.Total = avgDur(total)
	return row
}

// Table3 prints every individual run (paper Table 3).
func (c Config) Table3() ([]*RunStats, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Table 3: all runs\n")
	fprintf(c.Out, "%-11s %-6s %6s %6s %6s %10s %6s %10s %10s %10s %10s\n",
		"Dataset", "Run", "P%", "R%", "F1%", "Cost", "#Q", "Machine", "Crowd", "Total", "Cand.")
	var all []*RunStats
	for _, name := range AllDatasets {
		runs, err := c.RunAll(name)
		if err != nil {
			return nil, err
		}
		for _, r := range runs {
			fprintf(c.Out, "%-11s Run %-2d %6.1f %6.1f %6.1f %9.2f$ %6d %10s %10s %10s %10s\n",
				r.Dataset, r.Run, r.Score.Precision*100, r.Score.Recall*100, r.Score.F1*100,
				r.Cost, r.Questions, metrics.FmtDuration(r.Machine), metrics.FmtDuration(r.Crowd),
				metrics.FmtDuration(r.Total), metrics.FmtCount(int64(r.CandSize)))
			all = append(all, r)
		}
	}
	return all, nil
}

// table4Ops lists the Table 4 operator columns in paper order.
var table4Ops = []string{
	"sample_pairs", "gen_fvs", "al_matcher(block)", "get_blocking_rules",
	"eval_rules", "select_opt_seq", "apply_blocking_rules",
	"gen_fvs(match)", "al_matcher(match)", "apply_matcher",
}

// Table4 prints per-operator run times of the first run on each dataset
// (paper Table 4). The apply_blocking_rules column shows the optimized time
// with the unoptimized (unmasked) time in parentheses.
func (c Config) Table4() (map[DatasetName]map[string]time.Duration, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Table 4: per-operator times (run 1 of each dataset)\n")
	out := map[DatasetName]map[string]time.Duration{}
	for _, name := range AllDatasets {
		r, err := c.RunOnce(name, 1)
		if err != nil {
			return nil, err
		}
		perOp := map[string]time.Duration{}
		fprintf(c.Out, "%-11s", name)
		for _, op := range table4Ops {
			ot := r.Result.Timeline.PerOp[op]
			// The visible cost of an operator is its crowd time plus the
			// machine time masking could not hide (speculative work that
			// ran under crowd time is free, as in the paper's Table 4).
			total := ot.Crowd + ot.Machine - ot.Masked
			perOp[op] = total
			if op == "apply_blocking_rules" {
				fprintf(c.Out, "  %s=%s(%s)", op, metrics.FmtDuration(total), metrics.FmtDuration(r.Result.UnoptimizedBlockTime))
			} else {
				fprintf(c.Out, "  %s=%s", op, metrics.FmtDuration(total))
			}
		}
		fprintf(c.Out, "\n")
		out[name] = perOp
	}
	return out, nil
}

// Table5Row is one row of the optimization-effect table.
type Table5Row struct {
	Dataset   DatasetName
	U         time.Duration // unmasked machine time with no optimizations
	O         time.Duration // with all optimizations
	Reduction float64
	NoO1      time.Duration // O with index masking off
	NoO2      time.Duration // O with speculation off
	NoO3      time.Duration // O with masked pair selection off
}

// Table5 measures the §10.2 optimizations' effect on unmasked machine time
// (paper Table 5): U (no masking), O (all three), and the three ablations.
func (c Config) Table5() ([]Table5Row, error) {
	c = c.WithDefaults()
	fprintf(c.Out, "Table 5: effect of masking optimizations on unmasked machine time\n")
	fprintf(c.Out, "%-11s %10s %10s %9s %10s %10s %10s\n", "Dataset", "U", "O", "Reduce%", "O-O1", "O-O2", "O-O3")
	variant := func(name DatasetName, o1, o2, o3 bool) (time.Duration, error) {
		opt := c.Options(c.Seed + 1*101)
		opt.MaskIndexBuild = o1
		opt.Speculative = o2
		opt.MaskedSelection = o3
		d := c.Generate(name, c.Seed+7)
		res, err := coreRun(d, opt)
		if err != nil {
			return 0, err
		}
		return res.Timeline.UnmaskedMachine, nil
	}
	var rows []Table5Row
	for _, name := range AllDatasets {
		row := Table5Row{Dataset: name}
		var err error
		if row.U, err = variant(name, false, false, false); err != nil {
			return nil, err
		}
		if row.O, err = variant(name, true, true, true); err != nil {
			return nil, err
		}
		if row.NoO1, err = variant(name, false, true, true); err != nil {
			return nil, err
		}
		if row.NoO2, err = variant(name, true, false, true); err != nil {
			return nil, err
		}
		if row.NoO3, err = variant(name, true, true, false); err != nil {
			return nil, err
		}
		if row.U > 0 {
			row.Reduction = 1 - float64(row.O)/float64(row.U)
		}
		rows = append(rows, row)
		fprintf(c.Out, "%-11s %10s %10s %8.0f%% %10s %10s %10s\n",
			row.Dataset, metrics.FmtDuration(row.U), metrics.FmtDuration(row.O), row.Reduction*100,
			metrics.FmtDuration(row.NoO1), metrics.FmtDuration(row.NoO2), metrics.FmtDuration(row.NoO3))
	}
	return rows, nil
}
