package mapreduce

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// Executor runs jobs on a goroutine worker pool. It is stateless apart from
// its configuration and safe for concurrent use.
//
// Go methods cannot introduce type parameters, so the generic entry points
// are the free functions Execute and ExecuteMapOnly taking an *Executor;
// Run/RunContext and RunMapOnly/RunMapOnlyContext are thin wrappers that
// build one from the cluster.
type Executor struct {
	// Cluster supplies the simulated cost model (nil means Default()).
	Cluster *Cluster
	// Workers caps real task concurrency; <=0 means Cluster.Workers,
	// falling back to runtime.NumCPU().
	Workers int
}

// NewExecutor returns an executor for the cluster, taking its worker count
// from Cluster.Workers when set.
func NewExecutor(c *Cluster) *Executor {
	if c == nil {
		c = Default()
	}
	return &Executor{Cluster: c, Workers: c.Workers}
}

func (e *Executor) cluster() Cluster {
	c := e.Cluster
	if c == nil {
		c = Default()
	}
	return c.withDefaults()
}

func (e *Executor) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	if e.Cluster != nil && e.Cluster.Workers > 0 {
		return e.Cluster.Workers
	}
	return runtime.NumCPU()
}

// runTasks executes fn(ctx, i) for i in [0, n) on at most `workers`
// concurrent goroutines. Each invocation must write only to state owned by
// task i. On error or cancellation the remaining tasks are skipped and the
// first error in task order (or the parent context's error) is returned.
func runTasks(ctx context.Context, workers, n int, fn func(ctx context.Context, task int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := tctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(tctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			continue
		}
		// A task failure after the parent context died is just the
		// cancellation propagating; report the parent's error then.
		if perr := ctx.Err(); perr != nil {
			return perr
		}
		return err
	}
	return nil
}

// mapTask is one map task's isolated result: per-partition groups (or, in
// spill mode, per-partition sorted run files), shuffle volume, and
// accounting. Results are merged strictly in task (split) order, so
// per-key value order matches sequential execution exactly.
type mapTask[K comparable, V any] struct {
	groups   []map[K][]V
	runs     [][]spillRun
	cost     int64
	shuffled int64
	counters map[string]int64
}

// reduceTask is one reduce task's isolated result.
type reduceTask[O any] struct {
	out      []O
	cost     int64
	counters map[string]int64
	ran      bool
}

// mergeCounters folds src into dst.
func mergeCounters(dst, src map[string]int64) {
	// Integer addition commutes, so the map visit order cannot affect the
	// summed counters.
	for name, delta := range src {
		dst[name] += delta //falcon:allow streambound counters are bounded by the handful of counter names, not the record stream
	}
}

// Execute runs a full map/shuffle/reduce job on the executor's worker pool,
// honoring ctx cancellation between records and at task boundaries. Output,
// Stats, and Counters are byte-identical for any worker count.
func Execute[I any, K comparable, V any, O any](ctx context.Context, ex *Executor, job Job[I, K, V, O]) (*Result[O], error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs both Map and Reduce", job.Name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cc := ex.cluster()
	workers := ex.workers()

	reducers := job.Reducers
	if reducers <= 0 {
		reducers = cc.Nodes * cc.SlotsPerNode
	}
	partition := job.Partition
	if partition == nil {
		partition = defaultPartition[K]
	}
	ord := &keyOrd[K]{user: job.Less}

	// Spill mode (Cluster.SpillRecords > 0): map tasks buffer raw records
	// per partition and overflow to sorted temp-file runs; the reduce side
	// merges the runs streaming instead of holding the whole group map. The
	// job-scoped spill directory is removed on every exit path, including
	// errors and cancellation.
	spill := cc.SpillRecords > 0
	var codec *kvCodec[K, V]
	var spillDir string
	if spill {
		codec = newKVCodec[K, V]()
		dir, derr := os.MkdirTemp(cc.SpillDir, "falcon-spill-")
		if derr != nil {
			return nil, derr
		}
		spillDir = dir
		defer os.RemoveAll(spillDir)
	}

	// Map phase: one task per split, each shuffling into private groups
	// (or private spill runs).
	tasks := make([]mapTask[K, V], len(job.Splits))
	err := runTasks(ctx, workers, len(job.Splits), func(tctx context.Context, ti int) error {
		t := &tasks[ti]
		t.counters = map[string]int64{}
		// Partition is a pure function of the key; memoize it (and with the
		// default partitioner, the key's string form) once per distinct key.
		parts := make(map[K]int)
		mc := &MapCtx[K, V]{taskCtx: taskCtx{counters: t.counters, canceled: tctx.Err}}
		var spillErr error
		var flushAll func() error
		if spill {
			bufs := make([][]kv[K, V], reducers)
			t.runs = make([][]spillRun, reducers)
			var strs map[K]string
			if ord.byString() {
				strs = make(map[K]string)
			}
			seq := 0
			flush := func(p int) error {
				sortRun(bufs[p], ord, strs)
				run, werr := codec.writeRun(spillDir, ti, p, seq, bufs[p])
				if werr != nil {
					return werr
				}
				seq++
				t.runs[p] = append(t.runs[p], run)
				bufs[p] = bufs[p][:0]
				return nil
			}
			flushAll = func() error {
				for p := range bufs {
					if len(bufs[p]) == 0 {
						continue
					}
					if err := flush(p); err != nil {
						return err
					}
				}
				return nil
			}
			mc.emit = func(k K, v V) {
				if spillErr != nil {
					return
				}
				p, ok := parts[k]
				if !ok {
					p = partition(k, reducers)
					parts[k] = p
				}
				bufs[p] = append(bufs[p], kv[K, V]{k: k, v: v})
				t.shuffled++
				if len(bufs[p]) >= cc.SpillRecords {
					spillErr = flush(p)
				}
			}
		} else {
			t.groups = make([]map[K][]V, reducers)
			mc.emit = func(k K, v V) {
				p, ok := parts[k]
				if !ok {
					p = partition(k, reducers)
					parts[k] = p
				}
				g := t.groups[p]
				if g == nil {
					g = map[K][]V{}
					t.groups[p] = g
				}
				g[k] = append(g[k], v)
				t.shuffled++
			}
		}
		for _, rec := range job.Splits[ti] {
			mc.cost++
			job.Map(rec, mc)
			if spillErr != nil {
				return spillErr
			}
			if err := mc.poll(); err != nil {
				return err
			}
		}
		if flushAll != nil {
			if err := flushAll(); err != nil {
				return err
			}
		}
		t.cost = mc.cost
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Shuffle merge, strictly in task order: appending each task's values
	// per key (or listing each task's runs) in split order reproduces the
	// sequential emit order.
	stats := Stats{Name: job.Name, MapTasks: len(job.Splits), ReduceTasks: reducers, Counters: map[string]int64{}}
	var groups []map[K][]V
	var partRuns [][]spillRun
	if spill {
		partRuns = make([][]spillRun, reducers)
	} else {
		groups = make([]map[K][]V, reducers)
		for i := range groups {
			groups[i] = map[K][]V{}
		}
	}
	mapCosts := make([]int64, 0, len(tasks))
	for ti := range tasks {
		t := &tasks[ti]
		mapCosts = append(mapCosts, t.cost)
		stats.MapCost += t.cost
		stats.Shuffled += t.shuffled
		mergeCounters(stats.Counters, t.counters)
		if spill {
			for p, rs := range t.runs {
				partRuns[p] = append(partRuns[p], rs...)
			}
			continue
		}
		for p, g := range t.groups {
			if g == nil {
				continue
			}
			dst := groups[p]
			//falcon:allow determinism per-key append: values land under their own key, so cross-key visit order is never observable
			for k, vs := range g {
				dst[k] = append(dst[k], vs...)
			}
		}
	}

	// Reduce phase: one task per non-empty partition, keys in deterministic
	// order within each. With a Sink, delivery is gated into partition
	// order so streamed output matches Result.Output exactly.
	var gate *sinkGate
	if job.Sink != nil {
		gate = newSinkGate(reducers)
	}
	reds := make([]reduceTask[O], reducers)
	err = runTasks(ctx, workers, reducers, gateTasks(gate, func(tctx context.Context, p int) error {
		if spill {
			if len(partRuns[p]) == 0 {
				return nil
			}
		} else if len(groups[p]) == 0 {
			return nil
		}
		t := &reds[p]
		t.ran = true
		t.counters = map[string]int64{}
		rc := &ReduceCtx[O]{outCtx: outCtx[O]{taskCtx: taskCtx{counters: t.counters, canceled: tctx.Err}, out: &t.out}}
		if gate != nil {
			rc.sink = func(o O) {
				if gate.await(p) {
					job.Sink(o)
				}
			}
		}
		if spill {
			if err := drainSpill(partRuns[p], codec, ord, job.Reduce, rc); err != nil {
				return err
			}
			t.cost = rc.cost
			return nil
		}
		g := groups[p]
		keys := sortedKeys(g, job.Less)
		for _, k := range keys {
			rc.cost += int64(len(g[k]))
			job.Reduce(k, g[k], rc)
			if err := rc.poll(); err != nil {
				return err
			}
		}
		t.cost = rc.cost
		return nil
	}))
	if err != nil {
		return nil, err
	}

	// Output merge, strictly in partition order.
	res := &Result[O]{}
	reduceCosts := make([]int64, 0, reducers)
	for p := range reds {
		t := &reds[p]
		if !t.ran {
			continue
		}
		res.Output = append(res.Output, t.out...)
		reduceCosts = append(reduceCosts, t.cost)
		stats.ReduceCost += t.cost
		mergeCounters(stats.Counters, t.counters)
	}
	slots := cc.Nodes * cc.SlotsPerNode
	mapSpan := makespan(mapCosts, slots)
	reduceSpan := makespan(reduceCosts, slots)
	stats.SimTime = cc.JobOverhead +
		time.Duration(mapSpan)*cc.CostUnit +
		time.Duration(reduceSpan)*cc.CostUnit +
		time.Duration(stats.Shuffled/int64(slots))*cc.ShuffleUnit
	res.Stats = stats
	return res, nil
}

// drainSpill streams one reduce partition: it opens the partition's sorted
// runs, merges them with a loser tree, and feeds the reducer one key group
// at a time. Per-group cost accounting matches the in-memory path exactly.
// Every opened run reader is closed on every exit path.
//
//falcon:streaming
func drainSpill[K comparable, V any, O any](runs []spillRun, codec *kvCodec[K, V], ord *keyOrd[K], reduce func(K, []V, *ReduceCtx[O]), rc *ReduceCtx[O]) (err error) {
	streams := make([]*runReader[K, V], len(runs)) //falcon:allow hotalloc one slice per partition drain, amortized over the whole merge
	defer func() {
		if cerr := closeRuns(streams); err == nil {
			err = cerr
		}
	}()
	for i, run := range runs {
		streams[i], err = openRun(run, codec, ord)
		if err != nil {
			return err
		}
	}
	lt := newLoserTree(streams, ord)
	for {
		k, vs, ok, gerr := lt.nextGroup()
		if gerr != nil {
			return gerr
		}
		if !ok {
			return nil
		}
		rc.cost += int64(len(vs))
		reduce(k, vs, rc)
		if perr := rc.poll(); perr != nil {
			return perr
		}
	}
}

// ExecuteMapOnly runs a map-only job on the executor's worker pool,
// honoring ctx cancellation between records and at task boundaries.
func ExecuteMapOnly[I any, O any](ctx context.Context, ex *Executor, job MapOnlyJob[I, O]) (*Result[O], error) {
	if job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs Map", job.Name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cc := ex.cluster()

	var gate *sinkGate
	if job.Sink != nil {
		gate = newSinkGate(len(job.Splits))
	}
	tasks := make([]reduceTask[O], len(job.Splits))
	err := runTasks(ctx, ex.workers(), len(job.Splits), gateTasks(gate, func(tctx context.Context, ti int) error {
		t := &tasks[ti]
		t.ran = true
		t.counters = map[string]int64{}
		mc := &MapOnlyCtx[O]{outCtx: outCtx[O]{taskCtx: taskCtx{counters: t.counters, canceled: tctx.Err}, out: &t.out}}
		if gate != nil {
			mc.sink = func(o O) {
				if gate.await(ti) {
					job.Sink(o)
				}
			}
		}
		for _, rec := range job.Splits[ti] {
			mc.cost++
			job.Map(rec, mc)
			if err := mc.poll(); err != nil {
				return err
			}
		}
		t.cost = mc.cost
		return nil
	}))
	if err != nil {
		return nil, err
	}

	res := &Result[O]{}
	stats := Stats{Name: job.Name, MapTasks: len(job.Splits), Counters: map[string]int64{}}
	costs := make([]int64, 0, len(tasks))
	for ti := range tasks {
		t := &tasks[ti]
		res.Output = append(res.Output, t.out...)
		costs = append(costs, t.cost)
		stats.MapCost += t.cost
		mergeCounters(stats.Counters, t.counters)
	}
	slots := cc.Nodes * cc.SlotsPerNode
	stats.SimTime = cc.JobOverhead + time.Duration(makespan(costs, slots))*cc.CostUnit
	res.Stats = stats
	return res, nil
}

// Run executes the job with background context; see RunContext.
func Run[I any, K comparable, V any, O any](cluster *Cluster, job Job[I, K, V, O]) (*Result[O], error) {
	return Execute(context.Background(), NewExecutor(cluster), job)
}

// RunContext executes the job on the cluster's executor (Cluster.Workers
// goroutines, default NumCPU), stopping early with ctx.Err() when ctx is
// cancelled.
func RunContext[I any, K comparable, V any, O any](ctx context.Context, cluster *Cluster, job Job[I, K, V, O]) (*Result[O], error) {
	return Execute(ctx, NewExecutor(cluster), job)
}

// RunMapOnly executes the map-only job with background context; see
// RunMapOnlyContext.
func RunMapOnly[I any, O any](cluster *Cluster, job MapOnlyJob[I, O]) (*Result[O], error) {
	return ExecuteMapOnly(context.Background(), NewExecutor(cluster), job)
}

// RunMapOnlyContext executes the map-only job on the cluster's executor,
// stopping early with ctx.Err() when ctx is cancelled.
func RunMapOnlyContext[I any, O any](ctx context.Context, cluster *Cluster, job MapOnlyJob[I, O]) (*Result[O], error) {
	return ExecuteMapOnly(ctx, NewExecutor(cluster), job)
}
