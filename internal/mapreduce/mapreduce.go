// Package mapreduce is Falcon's Hadoop substitute: an in-process MapReduce
// engine with a deterministic cluster cost model.
//
// The paper runs every machine operator as MapReduce jobs on a 10-node
// Hadoop cluster. We reproduce that execution model — splits, map tasks,
// a shuffle grouping by key, reduce tasks — in one process, and model
// cluster time explicitly: every task accrues cost units (one per record by
// default; mappers and reducers may add more for heavy work such as index
// probes or rule evaluations), and job time is the makespan of greedily
// scheduling task costs onto nodes × slots parallel slots, plus shuffle and
// fixed job overhead.
//
// The model is deterministic (no wall-clock measurement), which keeps every
// experiment reproducible, and it preserves the behaviours the paper's
// evaluation depends on: sub-linear speedup with cluster size (§11.4), skew
// sensitivity (the §7.3 load-balancing optimization), and the memory-budget
// ladder that picks among apply_all/greedy/conjunct/predicate (§10.1).
package mapreduce

import (
	"fmt"
	"sort"
	"time"
)

// Cluster describes the simulated Hadoop cluster.
type Cluster struct {
	// Nodes is the number of worker machines (paper default: 10).
	Nodes int
	// SlotsPerNode is the number of parallel task slots per node (8 cores).
	SlotsPerNode int
	// MapperMemory is the per-mapper memory budget in bytes used by
	// physical-operator selection (paper default: 2 GB).
	MapperMemory int64
	// CostUnit converts one cost unit (≈ one record touch) into simulated
	// time. Default 25µs.
	CostUnit time.Duration
	// ShuffleUnit is the simulated time per shuffled key/value pair spread
	// across the cluster. Default 2µs.
	ShuffleUnit time.Duration
	// JobOverhead is the fixed startup/teardown time per job. Default 5s.
	JobOverhead time.Duration
}

// Default returns the paper's 10-node, 8-slot, 2GB-mapper cluster.
func Default() *Cluster {
	return &Cluster{Nodes: 10, SlotsPerNode: 8, MapperMemory: 2 << 30}
}

func (c *Cluster) withDefaults() Cluster {
	out := *c
	if out.Nodes <= 0 {
		out.Nodes = 10
	}
	if out.SlotsPerNode <= 0 {
		out.SlotsPerNode = 8
	}
	if out.MapperMemory <= 0 {
		out.MapperMemory = 2 << 30
	}
	if out.CostUnit <= 0 {
		out.CostUnit = 25 * time.Microsecond
	}
	if out.ShuffleUnit <= 0 {
		out.ShuffleUnit = 2 * time.Microsecond
	}
	if out.JobOverhead <= 0 {
		out.JobOverhead = 5 * time.Second
	}
	return out
}

// Slots returns the number of parallel task slots.
func (c *Cluster) Slots() int {
	cc := c.withDefaults()
	return cc.Nodes * cc.SlotsPerNode
}

// Stats describes one executed job.
type Stats struct {
	Name        string
	MapTasks    int
	ReduceTasks int
	MapCost     int64 // total map cost units
	ReduceCost  int64 // total reduce cost units
	Shuffled    int64 // key/value pairs shuffled
	// SimTime is the modeled cluster time for the job.
	SimTime time.Duration
	// Counters carries user counters.
	Counters map[string]int64
}

// MapCtx is passed to map functions.
type MapCtx[K comparable, V any] struct {
	cost     int64
	counters map[string]int64
	emit     func(K, V)
}

// Emit sends a key/value pair to the shuffle.
func (c *MapCtx[K, V]) Emit(k K, v V) { c.emit(k, v) }

// AddCost charges extra cost units to the current task (e.g. per index
// probe or per string comparison beyond the default one-per-record).
func (c *MapCtx[K, V]) AddCost(units int64) { c.cost += units }

// Inc increments a named counter.
func (c *MapCtx[K, V]) Inc(name string, delta int64) { c.counters[name] += delta }

// ReduceCtx is passed to reduce functions.
type ReduceCtx[O any] struct {
	cost     int64
	counters map[string]int64
	out      *[]O
}

// Output appends a record to the job output.
func (c *ReduceCtx[O]) Output(o O) { *c.out = append(*c.out, o) }

// AddCost charges extra cost units to the current reduce task.
func (c *ReduceCtx[O]) AddCost(units int64) { c.cost += units }

// Inc increments a named counter.
func (c *ReduceCtx[O]) Inc(name string, delta int64) { c.counters[name] += delta }

// Job is a full map/shuffle/reduce job. I is the input record type, K/V the
// intermediate key/value types, O the output record type.
type Job[I any, K comparable, V any, O any] struct {
	Name string
	// Splits are the input partitions; each becomes one map task.
	Splits [][]I
	// Map processes one record. Required.
	Map func(rec I, ctx *MapCtx[K, V])
	// Reduce processes one key group. Required.
	Reduce func(key K, values []V, ctx *ReduceCtx[O])
	// Reducers is the number of reduce tasks (default: cluster slots).
	Reducers int
	// Less optionally orders keys within a reduce partition; when nil,
	// groups are processed in an engine-chosen but deterministic order.
	Less func(a, b K) bool
	// Partition optionally routes keys to reduce tasks; default hashes via
	// fmt.Sprint. Must return a value in [0, Reducers).
	Partition func(key K, reducers int) int
}

// Result carries job output and stats.
type Result[O any] struct {
	Output []O
	Stats  Stats
}

// makespan schedules task costs onto n slots longest-first and returns the
// resulting makespan in cost units.
func makespan(tasks []int64, slots int) int64 {
	if len(tasks) == 0 {
		return 0
	}
	sorted := append([]int64(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if slots < 1 {
		slots = 1
	}
	loads := make([]int64, slots)
	for _, t := range sorted {
		// Assign to least-loaded slot.
		min := 0
		for i := 1; i < slots; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += t
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// fnv1a hashes a string.
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Run executes the job and returns its output plus modeled cluster time.
func Run[I any, K comparable, V any, O any](c *Cluster, job Job[I, K, V, O]) (*Result[O], error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs both Map and Reduce", job.Name)
	}
	cc := c.withDefaults()
	reducers := job.Reducers
	if reducers <= 0 {
		reducers = cc.Nodes * cc.SlotsPerNode
	}
	partition := job.Partition
	if partition == nil {
		partition = func(k K, r int) int { return int(fnv1a(fmt.Sprint(k)) % uint64(r)) }
	}

	counters := map[string]int64{}
	stats := Stats{Name: job.Name, MapTasks: len(job.Splits), ReduceTasks: reducers, Counters: counters}

	// Map phase: each split is one task; record per-task cost.
	groups := make([]map[K][]V, reducers)
	for i := range groups {
		groups[i] = map[K][]V{}
	}
	mapCosts := make([]int64, 0, len(job.Splits))
	var shuffled int64
	for _, split := range job.Splits {
		mc := &MapCtx[K, V]{counters: counters}
		mc.emit = func(k K, v V) {
			p := partition(k, reducers)
			groups[p][k] = append(groups[p][k], v)
			shuffled++
		}
		for _, rec := range split {
			mc.cost++ // every record costs at least one unit
			job.Map(rec, mc)
		}
		mapCosts = append(mapCosts, mc.cost)
		stats.MapCost += mc.cost
	}
	stats.Shuffled = shuffled

	// Reduce phase: one task per reduce partition; keys ordered
	// deterministically within a partition.
	var output []O
	reduceCosts := make([]int64, 0, reducers)
	for p := 0; p < reducers; p++ {
		g := groups[p]
		if len(g) == 0 {
			continue
		}
		keys := make([]K, 0, len(g))
		for k := range g {
			keys = append(keys, k)
		}
		if job.Less != nil {
			sort.Slice(keys, func(i, j int) bool { return job.Less(keys[i], keys[j]) })
		} else {
			sort.Slice(keys, func(i, j int) bool { return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j]) })
		}
		rc := &ReduceCtx[O]{counters: counters, out: &output}
		for _, k := range keys {
			rc.cost += int64(len(g[k])) // each grouped value costs a unit
			job.Reduce(k, g[k], rc)
		}
		reduceCosts = append(reduceCosts, rc.cost)
		stats.ReduceCost += rc.cost
	}

	slots := cc.Nodes * cc.SlotsPerNode
	mapSpan := makespan(mapCosts, slots)
	reduceSpan := makespan(reduceCosts, slots)
	stats.SimTime = cc.JobOverhead +
		time.Duration(mapSpan)*cc.CostUnit +
		time.Duration(reduceSpan)*cc.CostUnit +
		time.Duration(shuffled/int64(slots))*cc.ShuffleUnit

	return &Result[O]{Output: output, Stats: stats}, nil
}

// MapOnlyJob is a map-only job (no shuffle or reduce), used for gen_fvs,
// apply_matcher, and speculative rule re-application.
type MapOnlyJob[I any, O any] struct {
	Name   string
	Splits [][]I
	// Map transforms one record into zero or more outputs via ctx.Output.
	Map func(rec I, ctx *MapOnlyCtx[O])
}

// MapOnlyCtx is passed to map-only map functions.
type MapOnlyCtx[O any] struct {
	cost     int64
	counters map[string]int64
	out      *[]O
}

// Output appends a record to the job output.
func (c *MapOnlyCtx[O]) Output(o O) { *c.out = append(*c.out, o) }

// AddCost charges extra cost units.
func (c *MapOnlyCtx[O]) AddCost(units int64) { c.cost += units }

// Inc increments a named counter.
func (c *MapOnlyCtx[O]) Inc(name string, delta int64) { c.counters[name] += delta }

// RunMapOnly executes a map-only job.
func RunMapOnly[I any, O any](c *Cluster, job MapOnlyJob[I, O]) (*Result[O], error) {
	if job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs Map", job.Name)
	}
	cc := c.withDefaults()
	counters := map[string]int64{}
	stats := Stats{Name: job.Name, MapTasks: len(job.Splits), Counters: counters}
	var output []O
	costs := make([]int64, 0, len(job.Splits))
	for _, split := range job.Splits {
		mc := &MapOnlyCtx[O]{counters: counters, out: &output}
		for _, rec := range split {
			mc.cost++
			job.Map(rec, mc)
		}
		costs = append(costs, mc.cost)
		stats.MapCost += mc.cost
	}
	slots := cc.Nodes * cc.SlotsPerNode
	stats.SimTime = cc.JobOverhead + time.Duration(makespan(costs, slots))*cc.CostUnit
	return &Result[O]{Output: output, Stats: stats}, nil
}

// SplitSlice partitions records into n roughly equal contiguous splits.
func SplitSlice[T any](records []T, n int) [][]T {
	if n < 1 {
		n = 1
	}
	if n > len(records) {
		n = len(records)
	}
	if n == 0 {
		return nil
	}
	out := make([][]T, 0, n)
	size := (len(records) + n - 1) / n
	for i := 0; i < len(records); i += size {
		end := i + size
		if end > len(records) {
			end = len(records)
		}
		out = append(out, records[i:end])
	}
	return out
}

// Interleave builds splits that mix records from two inputs proportionally —
// the §7.3 load-balancing optimization that evens out mapper loads when A
// tuples are cheap and B tuples are expensive to process.
func Interleave[T any](a, b []T, n int) [][]T {
	if n < 1 {
		n = 1
	}
	total := len(a) + len(b)
	if total == 0 {
		return nil
	}
	mixed := make([]T, 0, total)
	// Round-robin proportional merge.
	ia, ib := 0, 0
	for ia < len(a) || ib < len(b) {
		// Advance whichever stream is behind its proportional position.
		if ib >= len(b) || (ia < len(a) && ia*len(b) <= ib*len(a)) {
			mixed = append(mixed, a[ia])
			ia++
		} else {
			mixed = append(mixed, b[ib])
			ib++
		}
	}
	return SplitSlice(mixed, n)
}
