// Package mapreduce is Falcon's Hadoop substitute: an in-process MapReduce
// engine with a deterministic cluster cost model.
//
// The paper runs every machine operator as MapReduce jobs on a 10-node
// Hadoop cluster. We reproduce that execution model — splits, map tasks,
// a shuffle grouping by key, reduce tasks — in one process, and model
// cluster time explicitly: every task accrues cost units (one per record by
// default; mappers and reducers may add more for heavy work such as index
// probes or rule evaluations), and job time is the makespan of greedily
// scheduling task costs onto nodes × slots parallel slots, plus shuffle and
// fixed job overhead.
//
// The model is deterministic (no wall-clock measurement), which keeps every
// experiment reproducible, and it preserves the behaviours the paper's
// evaluation depends on: sub-linear speedup with cluster size (§11.4), skew
// sensitivity (the §7.3 load-balancing optimization), and the memory-budget
// ladder that picks among apply_all/greedy/conjunct/predicate (§10.1).
//
// # Execution model
//
// Simulated time and real execution are decoupled. The cost model above
// fixes what the cluster clock reads; an Executor decides how the tasks
// actually run on the host: map splits and reduce partitions execute
// concurrently on a goroutine worker pool of Executor.Workers (default
// runtime.NumCPU()). Every task produces an isolated result — per-task
// shuffle groups, an ordered output slice, private cost and counter
// accumulators — and results are merged in task order, never in completion
// order, so output, counters, and cost stats are byte-identical whatever
// the worker count. Execution honors context cancellation between records.
package mapreduce

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"time"
)

// Cluster describes the simulated Hadoop cluster.
type Cluster struct {
	// Nodes is the number of worker machines (paper default: 10).
	Nodes int
	// SlotsPerNode is the number of parallel task slots per node (8 cores).
	SlotsPerNode int
	// MapperMemory is the per-mapper memory budget in bytes used by
	// physical-operator selection (paper default: 2 GB).
	MapperMemory int64
	// CostUnit converts one cost unit (≈ one record touch) into simulated
	// time. Default 25µs.
	CostUnit time.Duration
	// ShuffleUnit is the simulated time per shuffled key/value pair spread
	// across the cluster. Default 2µs.
	ShuffleUnit time.Duration
	// JobOverhead is the fixed startup/teardown time per job. Default 5s.
	JobOverhead time.Duration
	// Workers is the number of real OS worker goroutines jobs execute on
	// (default runtime.NumCPU()). It is an execution knob only: it never
	// influences the simulated cost model, and any worker count produces
	// byte-identical output, stats, and counters.
	Workers int
	// SpillRecords, when positive, bounds how many shuffle records a map
	// task buffers per reduce partition before sorting them and spilling a
	// run to a temp file; reducers then stream each partition through a
	// loser-tree merge of its runs instead of holding the whole group map.
	// Like Workers it is an execution knob only: any threshold produces
	// byte-identical output, stats, and counters ("out-of-core" execution,
	// ROADMAP item 2). <=0 keeps the shuffle fully in memory.
	SpillRecords int
	// SpillDir is where spill runs are written (default os.TempDir()). Each
	// job uses a private subdirectory removed when the job finishes, fails,
	// or is cancelled.
	SpillDir string
}

// Default returns the paper's 10-node, 8-slot, 2GB-mapper cluster.
func Default() *Cluster {
	return &Cluster{Nodes: 10, SlotsPerNode: 8, MapperMemory: 2 << 30}
}

func (c *Cluster) withDefaults() Cluster {
	out := *c
	if out.Nodes <= 0 {
		out.Nodes = 10
	}
	if out.SlotsPerNode <= 0 {
		out.SlotsPerNode = 8
	}
	if out.MapperMemory <= 0 {
		out.MapperMemory = 2 << 30
	}
	if out.CostUnit <= 0 {
		out.CostUnit = 25 * time.Microsecond
	}
	if out.ShuffleUnit <= 0 {
		out.ShuffleUnit = 2 * time.Microsecond
	}
	if out.JobOverhead <= 0 {
		out.JobOverhead = 5 * time.Second
	}
	return out
}

// Slots returns the number of parallel task slots.
func (c *Cluster) Slots() int {
	cc := c.withDefaults()
	return cc.Nodes * cc.SlotsPerNode
}

// Stats describes one executed job.
type Stats struct {
	Name        string
	MapTasks    int
	ReduceTasks int
	MapCost     int64 // total map cost units
	ReduceCost  int64 // total reduce cost units
	Shuffled    int64 // key/value pairs shuffled
	// SimTime is the modeled cluster time for the job.
	SimTime time.Duration
	// Counters carries user counters.
	Counters map[string]int64
}

// taskCtx is the per-task accounting every map/reduce context shares: cost
// units, user counters, and the cancellation poll. Each task owns a private
// instance, so the worker pool can snapshot and merge accounting without
// synchronizing with other tasks.
type taskCtx struct {
	cost     int64
	counters map[string]int64
	canceled func() error
	tick     int
}

// AddCost charges extra cost units to the current task (e.g. per index
// probe or per string comparison beyond the default one-per-record).
func (c *taskCtx) AddCost(units int64) { c.cost += units }

// Inc increments a named counter.
func (c *taskCtx) Inc(name string, delta int64) { c.counters[name] += delta } //falcon:allow streambound counters are bounded by the handful of counter names, not the record stream

// cancelStride bounds how many records run between cancellation polls.
const cancelStride = 64

// poll reports the task context's cancellation error, checking once every
// cancelStride records to keep the per-record overhead negligible.
func (c *taskCtx) poll() error {
	c.tick++
	if c.tick%cancelStride != 0 || c.canceled == nil {
		return nil
	}
	return c.canceled()
}

// outCtx extends taskCtx with an ordered output sink.
type outCtx[O any] struct {
	taskCtx
	out  *[]O
	sink func(O)
}

// Output appends a record to the job output, or streams it to the job's
// Sink when one is set.
func (c *outCtx[O]) Output(o O) {
	if c.sink != nil {
		c.sink(o)
		return
	}
	*c.out = append(*c.out, o) //falcon:allow streambound the task output buffer itself — drained per task by the executor, streamed through the sink when one is set
}

// MapCtx is passed to map functions.
type MapCtx[K comparable, V any] struct {
	taskCtx
	emit func(K, V)
}

// Emit sends a key/value pair to the shuffle.
func (c *MapCtx[K, V]) Emit(k K, v V) { c.emit(k, v) }

// ReduceCtx is passed to reduce functions.
type ReduceCtx[O any] struct {
	outCtx[O]
}

// MapOnlyCtx is passed to map-only map functions.
type MapOnlyCtx[O any] struct {
	outCtx[O]
}

// Job is a full map/shuffle/reduce job. I is the input record type, K/V the
// intermediate key/value types, O the output record type.
//
// Map and Reduce may run concurrently across tasks (one map task per split,
// one reduce task per partition): they must not mutate state shared between
// tasks without synchronization — use ctx.Inc counters for cross-task
// tallies, or write to disjoint elements of a preallocated slice.
type Job[I any, K comparable, V any, O any] struct {
	Name string
	// Splits are the input partitions; each becomes one map task.
	Splits [][]I
	// Map processes one record. Required.
	Map func(rec I, ctx *MapCtx[K, V])
	// Reduce processes one key group. Required.
	Reduce func(key K, values []V, ctx *ReduceCtx[O])
	// Reducers is the number of reduce tasks (default: cluster slots).
	Reducers int
	// Less optionally orders keys within a reduce partition; when nil,
	// groups are processed in an engine-chosen but deterministic order.
	Less func(a, b K) bool
	// Partition optionally routes keys to reduce tasks; default hashes via
	// the key's string form. Must return a value in [0, Reducers) and be a
	// pure function of the key: the engine memoizes it per key.
	Partition func(key K, reducers int) int
	// Sink, when non-nil, receives every output record one at a time, in
	// exactly the order Result.Output would have held them, and
	// Result.Output stays nil. Delivery is streaming and ordered: a reduce
	// task's records are handed over only after every earlier partition has
	// drained, so the engine never materializes the full output. Sink runs
	// on worker goroutines but its calls never overlap.
	Sink func(O)
}

// Result carries job output and stats.
type Result[O any] struct {
	Output []O
	Stats  Stats
}

// makespan schedules task costs onto n slots longest-first and returns the
// resulting makespan in cost units.
func makespan(tasks []int64, slots int) int64 {
	if len(tasks) == 0 {
		return 0
	}
	sorted := append([]int64(nil), tasks...)
	slices.SortFunc(sorted, func(a, b int64) int { return cmp.Compare(b, a) })
	if slots < 1 {
		slots = 1
	}
	loads := make([]int64, slots)
	for _, t := range sorted {
		// Assign to least-loaded slot.
		min := 0
		for i := 1; i < slots; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += t
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// fnv1a hashes a string.
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// keyString renders a key for the default sort and partitioner, skipping
// fmt.Sprint when K is already a string.
func keyString[K comparable](k K) string {
	if s, ok := any(k).(string); ok {
		return s
	}
	return fmt.Sprint(k)
}

// defaultPartition routes keys by hashing their string form. The engine
// memoizes partition results per key, so the string form is computed once
// per distinct key per task rather than once per emit.
func defaultPartition[K comparable](k K, reducers int) int {
	return int(fnv1a(keyString(k)) % uint64(reducers))
}

// keyedSort orders keys by a memoized string form computed once per key
// (the engine's default key order), instead of re-rendering both keys on
// every comparison.
type keyedSort[K comparable] struct {
	keys []K
	strs []string
}

func (s *keyedSort[K]) Len() int           { return len(s.keys) }
func (s *keyedSort[K]) Less(i, j int) bool { return s.strs[i] < s.strs[j] }
func (s *keyedSort[K]) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.strs[i], s.strs[j] = s.strs[j], s.strs[i]
}

// sortedKeys returns a partition's keys in the job's deterministic reduce
// order: job.Less when given, otherwise the memoized-string default order
// (plain sort.Strings when K is a string).
func sortedKeys[K comparable, V any](g map[K][]V, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	if less != nil {
		sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
		return keys
	}
	if ss, ok := any(keys).([]string); ok {
		sort.Strings(ss)
		return keys
	}
	strs := make([]string, len(keys))
	for i, k := range keys {
		strs[i] = fmt.Sprint(k)
	}
	sort.Sort(&keyedSort[K]{keys: keys, strs: strs})
	return keys
}

// MapOnlyJob is a map-only job (no shuffle or reduce), used for gen_fvs,
// apply_matcher, and speculative rule re-application.
//
// Map may run concurrently across splits; the same sharing rules as
// Job.Map apply.
type MapOnlyJob[I any, O any] struct {
	Name   string
	Splits [][]I
	// Map transforms one record into zero or more outputs via ctx.Output.
	Map func(rec I, ctx *MapOnlyCtx[O])
	// Sink optionally streams output records in Result.Output order; see
	// Job.Sink.
	Sink func(O)
}

// SplitSlice partitions records into n roughly equal contiguous splits.
func SplitSlice[T any](records []T, n int) [][]T {
	if n < 1 {
		n = 1
	}
	if n > len(records) {
		n = len(records)
	}
	if n == 0 {
		return nil
	}
	out := make([][]T, 0, n)
	size := (len(records) + n - 1) / n
	for i := 0; i < len(records); i += size {
		end := i + size
		if end > len(records) {
			end = len(records)
		}
		out = append(out, records[i:end])
	}
	return out
}

// Interleave builds splits that mix records from two inputs proportionally —
// the §7.3 load-balancing optimization that evens out mapper loads when A
// tuples are cheap and B tuples are expensive to process.
func Interleave[T any](a, b []T, n int) [][]T {
	if n < 1 {
		n = 1
	}
	total := len(a) + len(b)
	if total == 0 {
		return nil
	}
	mixed := make([]T, 0, total)
	// Round-robin proportional merge.
	ia, ib := 0, 0
	for ia < len(a) || ib < len(b) {
		// Advance whichever stream is behind its proportional position.
		if ib >= len(b) || (ia < len(a) && ia*len(b) <= ib*len(a)) {
			mixed = append(mixed, a[ia])
			ia++
		} else {
			mixed = append(mixed, b[ib])
			ib++
		}
	}
	return SplitSlice(mixed, n)
}
