package mapreduce

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// wordCountJob builds the canonical MapReduce example over the given lines.
func wordCountJob(lines []string, splits int) Job[string, string, int, [2]string] {
	return Job[string, string, int, [2]string]{
		Name:   "wordcount",
		Splits: SplitSlice(lines, splits),
		Map: func(line string, ctx *MapCtx[string, int]) {
			for _, w := range strings.Fields(line) {
				ctx.Emit(w, 1)
			}
		},
		Reduce: func(key string, values []int, ctx *ReduceCtx[[2]string]) {
			sum := 0
			for _, v := range values {
				sum += v
			}
			ctx.Output([2]string{key, strings.Repeat("*", sum)})
		},
	}
}

func TestWordCount(t *testing.T) {
	lines := []string{"a b a", "b c", "a"}
	res, err := Run(Default(), wordCountJob(lines, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range res.Output {
		got[kv[0]] = len(kv[1])
	}
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	if res.Stats.MapTasks != 2 {
		t.Fatalf("MapTasks = %d", res.Stats.MapTasks)
	}
	if res.Stats.Shuffled != 6 {
		t.Fatalf("Shuffled = %d, want 6", res.Stats.Shuffled)
	}
	if res.Stats.SimTime <= 0 {
		t.Fatal("SimTime not modeled")
	}
}

func TestRunRequiresFunctions(t *testing.T) {
	if _, err := Run(Default(), Job[int, int, int, int]{Name: "x"}); err == nil {
		t.Fatal("missing Map/Reduce should error")
	}
	if _, err := RunMapOnly(Default(), MapOnlyJob[int, int]{Name: "x"}); err == nil {
		t.Fatal("missing Map should error")
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	lines := []string{"z y x w v u t s r q p o n m l k j i h g f e d c b a"}
	run := func() []string {
		res, err := Run(Default(), wordCountJob(lines, 1))
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, kv := range res.Output {
			keys = append(keys, kv[0])
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("output order not deterministic")
		}
	}
}

func TestCustomLessOrdersKeys(t *testing.T) {
	job := wordCountJob([]string{"b a c"}, 1)
	job.Reducers = 1
	job.Less = func(x, y string) bool { return x < y }
	res, err := Run(Default(), job)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, kv := range res.Output {
		keys = append(keys, kv[0])
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("keys not sorted: %v", keys)
	}
}

func TestCustomPartition(t *testing.T) {
	job := wordCountJob([]string{"a b c d"}, 1)
	job.Reducers = 2
	job.Partition = func(k string, r int) int {
		if k < "c" {
			return 0
		}
		return 1
	}
	res, err := Run(Default(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 4 {
		t.Fatalf("output size %d", len(res.Output))
	}
	if res.Stats.ReduceTasks != 2 {
		t.Fatalf("ReduceTasks = %d", res.Stats.ReduceTasks)
	}
}

func TestMapOnly(t *testing.T) {
	job := MapOnlyJob[int, int]{
		Name:   "square",
		Splits: SplitSlice([]int{1, 2, 3, 4}, 2),
		Map: func(x int, ctx *MapOnlyCtx[int]) {
			ctx.Output(x * x)
		},
	}
	res, err := RunMapOnly(Default(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 4 {
		t.Fatalf("output = %v", res.Output)
	}
	sum := 0
	for _, v := range res.Output {
		sum += v
	}
	if sum != 30 {
		t.Fatalf("sum = %d, want 30", sum)
	}
}

func TestCountersAndCost(t *testing.T) {
	job := MapOnlyJob[int, int]{
		Name:   "c",
		Splits: [][]int{{1, 2, 3}},
		Map: func(x int, ctx *MapOnlyCtx[int]) {
			ctx.AddCost(9) // 10 units total per record with the base unit
			ctx.Inc("seen", 1)
		},
	}
	res, err := RunMapOnly(Default(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MapCost != 30 {
		t.Fatalf("MapCost = %d, want 30", res.Stats.MapCost)
	}
	if res.Stats.Counters["seen"] != 3 {
		t.Fatalf("counter = %d", res.Stats.Counters["seen"])
	}
}

func TestClusterSizeSpeedup(t *testing.T) {
	// 64 equal tasks on 5 vs 20 nodes: more slots → shorter sim time, with
	// sub-linear returns once tasks ≤ slots.
	mkCluster := func(nodes int) *Cluster {
		return &Cluster{Nodes: nodes, SlotsPerNode: 8, JobOverhead: time.Second}
	}
	records := make([]int, 64*100)
	job := func() MapOnlyJob[int, int] {
		return MapOnlyJob[int, int]{
			Name:   "sweep",
			Splits: SplitSlice(records, 64),
			Map:    func(x int, ctx *MapOnlyCtx[int]) { ctx.AddCost(99) },
		}
	}
	t5, _ := RunMapOnly(mkCluster(5), job())
	t10, _ := RunMapOnly(mkCluster(10), job())
	t20, _ := RunMapOnly(mkCluster(20), job())
	if !(t5.Stats.SimTime > t10.Stats.SimTime && t10.Stats.SimTime >= t20.Stats.SimTime) {
		t.Fatalf("no speedup: 5=%v 10=%v 20=%v", t5.Stats.SimTime, t10.Stats.SimTime, t20.Stats.SimTime)
	}
	// The 5→10 gain should exceed the 10→20 gain (sub-linear, §11.4).
	gain1 := t5.Stats.SimTime - t10.Stats.SimTime
	gain2 := t10.Stats.SimTime - t20.Stats.SimTime
	if gain1 <= gain2 {
		t.Fatalf("speedup not sub-linear: gain(5→10)=%v gain(10→20)=%v", gain1, gain2)
	}
}

func TestSkewedSplitsSlower(t *testing.T) {
	// Same total work, one split has everything vs evenly spread: skew must
	// cost more simulated time. This is the §7.3 load-balancing rationale.
	records := make([]int, 8000)
	even := MapOnlyJob[int, int]{
		Name:   "even",
		Splits: SplitSlice(records, 80),
		Map:    func(x int, ctx *MapOnlyCtx[int]) { ctx.AddCost(9) },
	}
	skewed := MapOnlyJob[int, int]{
		Name:   "skewed",
		Splits: [][]int{records},
		Map:    func(x int, ctx *MapOnlyCtx[int]) { ctx.AddCost(9) },
	}
	re, _ := RunMapOnly(Default(), even)
	rs, _ := RunMapOnly(Default(), skewed)
	if rs.Stats.SimTime <= re.Stats.SimTime {
		t.Fatalf("skewed (%v) should be slower than even (%v)", rs.Stats.SimTime, re.Stats.SimTime)
	}
}

func TestSplitSlice(t *testing.T) {
	s := SplitSlice([]int{1, 2, 3, 4, 5}, 2)
	if len(s) != 2 || len(s[0]) != 3 || len(s[1]) != 2 {
		t.Fatalf("splits = %v", s)
	}
	if got := SplitSlice([]int{}, 3); got != nil {
		t.Fatalf("empty input should give nil, got %v", got)
	}
	if got := SplitSlice([]int{1}, 5); len(got) != 1 {
		t.Fatalf("oversplit = %v", got)
	}
	if got := SplitSlice([]int{1, 2}, 0); len(got) != 1 {
		t.Fatalf("n<1 should clamp to 1, got %v", got)
	}
}

func TestInterleaveProportional(t *testing.T) {
	a := make([]int, 100)
	b := make([]int, 50)
	for i := range a {
		a[i] = 1
	}
	for i := range b {
		b[i] = 2
	}
	splits := Interleave(a, b, 10)
	if len(splits) != 10 {
		t.Fatalf("splits = %d", len(splits))
	}
	total := 0
	for _, sp := range splits {
		countB := 0
		for _, v := range sp {
			if v == 2 {
				countB++
			}
			total++
		}
		// Each split of 15 should hold roughly 5 B records.
		if countB < 3 || countB > 7 {
			t.Fatalf("split B count = %d, want ≈5", countB)
		}
	}
	if total != 150 {
		t.Fatalf("total records = %d", total)
	}
	if Interleave([]int{}, []int{}, 3) != nil {
		t.Fatal("empty interleave should be nil")
	}
}

func TestMakespanGreedy(t *testing.T) {
	if got := makespan([]int64{10, 10, 10, 10}, 2); got != 20 {
		t.Fatalf("makespan = %d, want 20", got)
	}
	if got := makespan([]int64{100, 1, 1, 1}, 4); got != 100 {
		t.Fatalf("makespan dominated by big task: %d", got)
	}
	if got := makespan(nil, 4); got != 0 {
		t.Fatalf("empty makespan = %d", got)
	}
	if got := makespan([]int64{5}, 0); got != 5 {
		t.Fatalf("zero slots should clamp: %d", got)
	}
}

// Property: makespan ≥ total/slots and ≥ max task; decreasing slots never
// decreases makespan.
func TestQuickMakespanBounds(t *testing.T) {
	f := func(raw []uint16, slots8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		slots := int(slots8%16) + 1
		tasks := make([]int64, len(raw))
		var total, max int64
		for i, r := range raw {
			tasks[i] = int64(r % 1000)
			total += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		m := makespan(tasks, slots)
		if m < max || m*int64(slots) < total {
			return false
		}
		return makespan(tasks, slots+1) <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: word counts are independent of the split arrangement.
func TestQuickSplitInvariance(t *testing.T) {
	f := func(words []string, nSplits uint8) bool {
		var clean []string
		for _, w := range words {
			if f := strings.Fields(w); len(f) > 0 {
				clean = append(clean, strings.Join(f, " "))
			}
		}
		if len(clean) == 0 {
			return true
		}
		n := int(nSplits%5) + 1
		r1, err1 := Run(Default(), wordCountJob(clean, 1))
		r2, err2 := Run(Default(), wordCountJob(clean, n))
		if err1 != nil || err2 != nil {
			return false
		}
		m1, m2 := map[string]int{}, map[string]int{}
		for _, kv := range r1.Output {
			m1[kv[0]] = len(kv[1])
		}
		for _, kv := range r2.Output {
			m2[kv[0]] = len(kv[1])
		}
		if len(m1) != len(m2) {
			return false
		}
		for k, v := range m1 {
			if m2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWordCount(b *testing.B) {
	lines := make([]string, 1000)
	for i := range lines {
		lines[i] = "alpha beta gamma delta epsilon zeta"
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Default(), wordCountJob(lines, 8)); err != nil {
			b.Fatal(err)
		}
	}
}
