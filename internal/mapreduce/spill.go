package mapreduce

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
)

// Out-of-core shuffle (ROADMAP item 2). When Cluster.SpillRecords is
// positive, map tasks no longer build per-partition group maps: each task
// buffers at most SpillRecords raw (key, value) records per reduce
// partition, and on overflow stable-sorts the buffer in the job's key order
// and writes it to a temp-file run. The reduce side merges each partition's
// runs with a loser tree (merge.go), re-grouping keys one group at a time.
//
// Determinism is preserved exactly — output, counters, and SimTime are
// byte-identical to the in-memory path at any threshold and worker count —
// because (a) runs are sorted with a stable sort, so emit order survives
// within a run, (b) run files are merged in (map task, spill sequence)
// order with the stream index as the comparison tiebreak, which
// concatenates equal-key values in task order then emit order, the same
// order the in-memory shuffle merge produces, and (c) the key order used
// for sorting is the same order sortedKeys gives the in-memory reduce.

// kv is one buffered shuffle record. ks caches the key's rendered string
// form while a run buffer is being sorted under the engine's default key
// order; it is never written to disk.
type kv[K comparable, V any] struct {
	k  K
	ks string
	v  V
}

// spillRun describes one sorted run file.
type spillRun struct {
	path string
	n    int
}

// keyOrd is the job's deterministic key order: the user's Less when given,
// otherwise the engine's rendered-string order (identical to sortedKeys).
type keyOrd[K comparable] struct {
	user func(a, b K) bool
}

// byString reports whether ordering compares rendered key strings (the
// default order) rather than calling the user's Less.
func (o *keyOrd[K]) byString() bool { return o.user == nil }

// sortRun stable-sorts a run buffer in the job's key order, rendering
// string forms once per distinct key via the strs memo when the default
// order is in use.
func sortRun[K comparable, V any](recs []kv[K, V], ord *keyOrd[K], strs map[K]string) {
	if ord.user != nil {
		slices.SortStableFunc(recs, func(a, b kv[K, V]) int {
			if ord.user(a.k, b.k) {
				return -1
			}
			if ord.user(b.k, a.k) {
				return 1
			}
			return 0
		})
		return
	}
	for i := range recs {
		ks, ok := strs[recs[i].k]
		if !ok {
			ks = keyString(recs[i].k)
			strs[recs[i].k] = ks //falcon:allow streambound render memo over one capped run's keys, dropped when the run is flushed
		}
		recs[i].ks = ks
	}
	slices.SortStableFunc(recs, func(a, b kv[K, V]) int {
		return strings.Compare(a.ks, b.ks)
	})
}

// scalarCodec returns a fixed encoder/decoder pair when T is one of the
// scalar shuffle types the engine serializes natively; ok is false for
// compound types, which fall back to gob.
func scalarCodec[T any]() (enc func(*bufio.Writer, T) error, dec func(*bufio.Reader) (T, error), ok bool) {
	switch any((*T)(nil)).(type) {
	case *string:
		return func(w *bufio.Writer, v T) error {
				return writeSpillString(w, any(v).(string))
			}, func(r *bufio.Reader) (T, error) {
				s, err := readSpillString(r)
				var v T
				if err == nil {
					v = any(s).(T)
				}
				return v, err
			}, true
	case *int:
		return func(w *bufio.Writer, v T) error {
				return writeSpillVarint(w, int64(any(v).(int)))
			}, func(r *bufio.Reader) (T, error) {
				x, err := binary.ReadVarint(r)
				var v T
				if err == nil {
					v = any(int(x)).(T)
				}
				return v, err
			}, true
	case *int32:
		return func(w *bufio.Writer, v T) error {
				return writeSpillVarint(w, int64(any(v).(int32)))
			}, func(r *bufio.Reader) (T, error) {
				x, err := binary.ReadVarint(r)
				var v T
				if err == nil {
					v = any(int32(x)).(T)
				}
				return v, err
			}, true
	case *int64:
		return func(w *bufio.Writer, v T) error {
				return writeSpillVarint(w, any(v).(int64))
			}, func(r *bufio.Reader) (T, error) {
				x, err := binary.ReadVarint(r)
				var v T
				if err == nil {
					v = any(x).(T)
				}
				return v, err
			}, true
	case *uint32:
		return func(w *bufio.Writer, v T) error {
				return writeSpillUvarint(w, uint64(any(v).(uint32)))
			}, func(r *bufio.Reader) (T, error) {
				x, err := binary.ReadUvarint(r)
				var v T
				if err == nil {
					v = any(uint32(x)).(T)
				}
				return v, err
			}, true
	case *uint64:
		return func(w *bufio.Writer, v T) error {
				return writeSpillUvarint(w, any(v).(uint64))
			}, func(r *bufio.Reader) (T, error) {
				x, err := binary.ReadUvarint(r)
				var v T
				if err == nil {
					v = any(x).(T)
				}
				return v, err
			}, true
	case *struct{}:
		return func(w *bufio.Writer, v T) error { return nil },
			func(r *bufio.Reader) (T, error) {
				var v T
				return v, nil
			}, true
	}
	return nil, nil, false
}

func writeSpillVarint(w *bufio.Writer, x int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	_, err := w.Write(buf[:n])
	return err
}

func writeSpillUvarint(w *bufio.Writer, x uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	_, err := w.Write(buf[:n])
	return err
}

func writeSpillString(w *bufio.Writer, s string) error {
	if err := writeSpillUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readSpillString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// zeroSize reports whether T occupies no storage (e.g. struct{}), in which
// case it carries no information and is skipped on disk: gob refuses types
// with no encodable fields.
func zeroSize[T any]() bool { return reflect.TypeFor[T]().Size() == 0 }

// kvCodec serializes shuffle records for one job. When both the key and
// value types are engine scalars, records use a compact varint framing;
// otherwise each run file is a single gob stream (skipping zero-size
// types), which handles any exported-field struct the tree shuffles
// (table pairs, postings, frequency keys).
type kvCodec[K comparable, V any] struct {
	encK         func(*bufio.Writer, K) error
	decK         func(*bufio.Reader) (K, error)
	encV         func(*bufio.Writer, V) error
	decV         func(*bufio.Reader) (V, error)
	gob          bool
	kTriv, vTriv bool // zero-size: not written in gob mode
}

func newKVCodec[K comparable, V any]() *kvCodec[K, V] {
	ek, dk, okK := scalarCodec[K]()
	ev, dv, okV := scalarCodec[V]()
	if okK && okV {
		return &kvCodec[K, V]{encK: ek, decK: dk, encV: ev, decV: dv}
	}
	return &kvCodec[K, V]{gob: true, kTriv: zeroSize[K](), vTriv: zeroSize[V]()}
}

// writeRun writes one sorted run buffer to dir and returns its descriptor.
// The file is closed on every path; the caller owns deleting it (the
// executor removes the whole job-scoped spill directory when the job
// finishes, fails, or is cancelled).
func (c *kvCodec[K, V]) writeRun(dir string, task, part, seq int, recs []kv[K, V]) (spillRun, error) {
	path := filepath.Join(dir, fmt.Sprintf("map%05d-part%05d-run%05d.spill", task, part, seq))
	f, err := os.Create(path)
	if err != nil {
		return spillRun{}, err
	}
	w := bufio.NewWriterSize(f, 64<<10)
	if c.gob {
		enc := gob.NewEncoder(w)
		for i := range recs {
			if !c.kTriv {
				if err := enc.Encode(&recs[i].k); err != nil {
					_ = f.Close()
					return spillRun{}, err
				}
			}
			if !c.vTriv {
				if err := enc.Encode(&recs[i].v); err != nil {
					_ = f.Close()
					return spillRun{}, err
				}
			}
		}
	} else {
		for i := range recs {
			if err := c.encK(w, recs[i].k); err != nil {
				_ = f.Close()
				return spillRun{}, err
			}
			if err := c.encV(w, recs[i].v); err != nil {
				_ = f.Close()
				return spillRun{}, err
			}
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return spillRun{}, err
	}
	return spillRun{path: path, n: len(recs)}, f.Close()
}

// runReader streams one sorted run back, re-rendering the default-order
// key string per record (the reduce side must not grow a per-key memo).
type runReader[K comparable, V any] struct {
	f     *os.File
	br    *bufio.Reader
	dec   *gob.Decoder
	codec *kvCodec[K, V]
	ord   *keyOrd[K]
	left  int
}

func openRun[K comparable, V any](run spillRun, codec *kvCodec[K, V], ord *keyOrd[K]) (*runReader[K, V], error) {
	f, err := os.Open(run.path)
	if err != nil {
		return nil, err
	}
	r := &runReader[K, V]{f: f, br: bufio.NewReaderSize(f, 64<<10), codec: codec, ord: ord, left: run.n}
	if codec.gob {
		r.dec = gob.NewDecoder(r.br)
	}
	return r, nil
}

// next returns the run's next record; ok is false once the run is
// exhausted.
//
//falcon:streaming
func (r *runReader[K, V]) next() (rec kv[K, V], ok bool, err error) {
	if r.left == 0 {
		return rec, false, nil
	}
	r.left--
	if r.codec.gob {
		if !r.codec.kTriv {
			if err := r.dec.Decode(&rec.k); err != nil {
				return rec, false, err
			}
		}
		if !r.codec.vTriv {
			if err := r.dec.Decode(&rec.v); err != nil {
				return rec, false, err
			}
		}
	} else {
		if rec.k, err = r.codec.decK(r.br); err != nil {
			return rec, false, err
		}
		if rec.v, err = r.codec.decV(r.br); err != nil {
			return rec, false, err
		}
	}
	if r.ord.byString() {
		rec.ks = keyString(rec.k)
	}
	return rec, true, nil
}

// Close releases the run file.
func (r *runReader[K, V]) Close() error { return r.f.Close() }

// closeRuns closes every non-nil reader, keeping the first error.
func closeRuns[K comparable, V any](rs []*runReader[K, V]) error {
	var first error
	for _, r := range rs {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
