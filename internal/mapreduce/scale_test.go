package mapreduce

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"falcon/internal/datagen"
)

// scaleRec is one row of the scale workload: a table-global id and the
// row's title.
type scaleRec struct {
	id    int32
	title string
}

// scalePhase is one measured run in BENCH_scale.json.
type scalePhase struct {
	WallSeconds   float64 `json:"wall_seconds"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
}

// scaleReport is the committed record of the out-of-core scale gate.
type scaleReport struct {
	RowsPerTable  int        `json:"rows_per_table"`
	Workers       int        `json:"workers"`
	SpillRecords  int        `json:"spill_records"`
	GenSeconds    float64    `json:"gen_seconds"`
	Candidates    int64      `json:"kbb_candidates"`
	Shuffled      int64      `json:"shuffled_pairs"`
	SimSeconds    float64    `json:"sim_seconds"`
	InMemory      scalePhase `json:"in_memory"`
	Spill         scalePhase `json:"spill"`
	MemLimitBytes int64      `json:"mem_limit_bytes"`
	SpillLimited  scalePhase `json:"spill_under_limit"`
	PeakRSSBytes  int64      `json:"peak_rss_bytes"`
}

// heapPeak samples runtime.MemStats on a ticker and remembers the highest
// HeapAlloc seen; stop() ends sampling and returns the peak.
func heapPeak() (stop func() uint64) {
	done := make(chan struct{})
	out := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				out <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	return func() uint64 {
		close(done)
		return <-out
	}
}

// peakRSSBytes reads the process high-water-mark RSS from /proc.
func peakRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fs := strings.Fields(rest)
			if len(fs) >= 1 {
				kb, _ := strconv.ParseInt(fs[0], 10, 64)
				return kb << 10
			}
		}
	}
	return 0
}

// TestScaleSongs1M is the CI-optional long gate for out-of-core execution
// (set FALCON_SCALE=1 to run it): a datagen 1M×1M Songs workload —
// key-based-blocking candidate counting over exact titles, the §3.2
// motivating job — is run in-memory and spilled, the two must agree on
// output, counters, and simulated time, and the spilled run must then
// complete under an enforced GOMEMLIMIT strictly below the in-memory
// path's measured heap peak. Makespan and peak memory are committed to
// BENCH_scale.json at the repo root.
func TestScaleSongs1M(t *testing.T) {
	if os.Getenv("FALCON_SCALE") == "" {
		t.Skip("set FALCON_SCALE=1 to run the 1M×1M out-of-core scale gate")
	}
	rows := 1_000_000
	if v := os.Getenv("FALCON_SCALE_ROWS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1000 {
			t.Fatalf("bad FALCON_SCALE_ROWS %q", v)
		}
		rows = n
	}

	genStart := time.Now()
	d := datagen.SongsWith(datagen.SongsOpts{NA: rows, NB: rows}, 42)
	genWall := time.Since(genStart)
	t.Logf("generated %d×%d Songs in %v (%d planted matches)", d.A.Len(), d.B.Len(), genWall.Round(time.Millisecond), d.Matches())

	aTitle := d.A.Schema.Col("title")
	bTitle := d.B.Schema.Col("title")
	recs := make([]scaleRec, 0, d.A.Len()+d.B.Len())
	for i := 0; i < d.A.Len(); i++ {
		recs = append(recs, scaleRec{id: int32(i), title: d.A.Value(i, aTitle)})
	}
	for i := 0; i < d.B.Len(); i++ {
		recs = append(recs, scaleRec{id: int32(rows + i), title: d.B.Value(i, bTitle)})
	}

	const workers = 4
	const spillRecords = 8192
	job := func() Job[scaleRec, string, int32, int64] {
		return Job[scaleRec, string, int32, int64]{
			Name:   "kbb-candidates",
			Splits: SplitSlice(recs, 32),
			Map: func(r scaleRec, ctx *MapCtx[string, int32]) {
				ctx.Emit(r.title, r.id)
			},
			Reduce: func(title string, ids []int32, ctx *ReduceCtx[int64]) {
				var a, b int64
				for _, id := range ids {
					if int(id) < rows {
						a++
					} else {
						b++
					}
				}
				ctx.Inc("candidates", a*b)
			},
		}
	}
	run := func(spill int) (Stats, scalePhase) {
		runtime.GC()
		c := Default()
		c.Workers = workers
		c.SpillRecords = spill
		c.SpillDir = t.TempDir()
		stop := heapPeak()
		start := time.Now()
		res, err := Run(c, job())
		wall := time.Since(start)
		peak := stop()
		if err != nil {
			t.Fatalf("spill=%d: %v", spill, err)
		}
		t.Logf("spill=%d: wall %v, peak heap %d MiB, candidates %d",
			spill, wall.Round(time.Millisecond), peak>>20, res.Stats.Counters["candidates"])
		return res.Stats, scalePhase{WallSeconds: wall.Seconds(), PeakHeapBytes: peak}
	}

	inmemStats, inmem := run(0)
	spillStats, spilled := run(spillRecords)
	if inmemStats.SimTime != spillStats.SimTime ||
		inmemStats.Shuffled != spillStats.Shuffled ||
		inmemStats.Counters["candidates"] != spillStats.Counters["candidates"] {
		t.Fatalf("spill changed results:\n in-memory %+v\n spill %+v", inmemStats, spillStats)
	}
	if spilled.PeakHeapBytes*11/10 >= inmem.PeakHeapBytes {
		t.Fatalf("no headroom: spill peak %d MiB vs in-memory peak %d MiB",
			spilled.PeakHeapBytes>>20, inmem.PeakHeapBytes>>20)
	}

	// Enforce a limit between the two peaks: the in-memory path measurably
	// exceeds it, the spilled path must finish under it.
	limit := int64(spilled.PeakHeapBytes + (inmem.PeakHeapBytes-spilled.PeakHeapBytes)/4)
	prev := debug.SetMemoryLimit(limit)
	limitedStats, limited := run(spillRecords)
	debug.SetMemoryLimit(prev)
	if limitedStats.Counters["candidates"] != inmemStats.Counters["candidates"] {
		t.Fatalf("limited run changed candidates: %d vs %d",
			limitedStats.Counters["candidates"], inmemStats.Counters["candidates"])
	}
	t.Logf("GOMEMLIMIT %d MiB (in-memory peak %d MiB): spilled run finished in %.1fs",
		limit>>20, inmem.PeakHeapBytes>>20, limited.WallSeconds)

	report := scaleReport{
		RowsPerTable:  rows,
		Workers:       workers,
		SpillRecords:  spillRecords,
		GenSeconds:    genWall.Seconds(),
		Candidates:    inmemStats.Counters["candidates"],
		Shuffled:      inmemStats.Shuffled,
		SimSeconds:    inmemStats.SimTime.Seconds(),
		InMemory:      inmem,
		Spill:         spilled,
		MemLimitBytes: limit,
		SpillLimited:  limited,
		PeakRSSBytes:  peakRSSBytes(),
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := "../../BENCH_scale.json"
	if v := os.Getenv("FALCON_SCALE_OUT"); v != "" {
		path = v
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
