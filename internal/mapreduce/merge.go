package mapreduce

import (
	"context"
	"strings"
	"sync"
)

// Reduce-side k-way merge for spilled shuffles. Each reduce partition's
// runs (already sorted in the job's key order) are merged with a classic
// loser tree: internal nodes remember the loser of each match, so
// advancing a stream replays one root-to-leaf path, log(k) comparisons per
// record. Ties compare the stream index, and streams are ordered by
// (map task, spill sequence), so equal keys drain in exactly the order the
// in-memory shuffle merge concatenates them: task order, then emit order.

// loserTree merges the sorted streams of one reduce partition.
type loserTree[K comparable, V any] struct {
	rs   []*runReader[K, V]
	cur  []kv[K, V]
	ok   []bool // cur[i] valid; false = stream exhausted
	node []int  // node[0] = overall winner; node[j>0] = loser at j
	ord  *keyOrd[K]
	err  error

	// pending holds already-grouped key groups when an order tie spans
	// distinct keys (possible only when the default rendered-string order
	// is not injective, or a user Less treats distinct keys as equal).
	pending []keyGroup[K, V]
}

type keyGroup[K comparable, V any] struct {
	k  K
	vs []V
}

func newLoserTree[K comparable, V any](rs []*runReader[K, V], ord *keyOrd[K]) *loserTree[K, V] {
	n := len(rs)
	t := &loserTree[K, V]{
		rs:   rs,
		cur:  make([]kv[K, V], n),
		ok:   make([]bool, n),
		node: make([]int, max(n, 1)),
		ord:  ord,
	}
	for i := range rs {
		t.advance(i)
	}
	if n == 1 {
		t.node[0] = 0
		return t
	}
	// Build the tree bottom-up: win[j] is the winner of the subtree rooted
	// at internal node j (leaves live at positions n..2n-1), and the loser
	// of each match stays behind in node[j].
	win := make([]int, 2*n)
	for i := 0; i < n; i++ {
		win[n+i] = i
	}
	for j := n - 1; j >= 1; j-- {
		a, b := win[2*j], win[2*j+1]
		if t.beats(b, a) {
			a, b = b, a
		}
		win[j] = a
		t.node[j] = b
	}
	t.node[0] = win[1]
	return t
}

// advance reads stream i's next record into cur[i].
func (t *loserTree[K, V]) advance(i int) {
	rec, ok, err := t.rs[i].next()
	if err != nil && t.err == nil {
		t.err = err
	}
	t.cur[i] = rec
	t.ok[i] = ok && err == nil
}

// beats reports whether stream a's head record precedes stream b's:
// exhausted streams sort last, equal keys break toward the lower stream
// index (earlier map task / earlier spill).
func (t *loserTree[K, V]) beats(a, b int) bool {
	if !t.ok[a] {
		return false
	}
	if !t.ok[b] {
		return true
	}
	ea, eb := &t.cur[a], &t.cur[b]
	if t.ord.user != nil {
		if t.ord.user(ea.k, eb.k) {
			return true
		}
		if t.ord.user(eb.k, ea.k) {
			return false
		}
		return a < b
	}
	if c := strings.Compare(ea.ks, eb.ks); c != 0 {
		return c < 0
	}
	return a < b
}

// pop removes and returns the smallest head record.
func (t *loserTree[K, V]) pop() (kv[K, V], bool) {
	w := t.node[0]
	if !t.ok[w] {
		return kv[K, V]{}, false
	}
	rec := t.cur[w]
	t.advance(w)
	winner := w
	for j := (len(t.rs) + w) / 2; j >= 1; j /= 2 {
		if t.beats(t.node[j], winner) {
			winner, t.node[j] = t.node[j], winner
		}
	}
	t.node[0] = winner
	return rec, true
}

// orderEqual reports whether two records tie under the job's key order.
func (t *loserTree[K, V]) orderEqual(a, b *kv[K, V]) bool {
	if t.ord.user != nil {
		return !t.ord.user(a.k, b.k) && !t.ord.user(b.k, a.k)
	}
	return a.ks == b.ks
}

// nextGroup returns the next key group in reduce order. Group state is
// bounded by the group itself (plus any order-tie run): values accumulate
// only until the merge head moves past the current key, then the buffer is
// handed to the reducer and dropped.
//
//falcon:streaming
func (t *loserTree[K, V]) nextGroup() (K, []V, bool, error) {
	var zero K
	if len(t.pending) > 0 {
		g := t.pending[0]
		t.pending = t.pending[1:]
		return g.k, g.vs, true, nil
	}
	first, ok := t.pop()
	if t.err != nil {
		return zero, nil, false, t.err
	}
	if !ok {
		return zero, nil, false, nil
	}
	groups := []keyGroup[K, V]{{k: first.k, vs: []V{first.v}}}
	for {
		w := t.node[0]
		if !t.ok[w] || !t.orderEqual(&first, &t.cur[w]) {
			break
		}
		rec, _ := t.pop()
		if t.err != nil {
			return zero, nil, false, t.err
		}
		// Almost always the tie is the same key continuing; distinct keys
		// that compare equal each get their own group in first-appearance
		// order (the in-memory path orders such keys arbitrarily).
		placed := false
		for gi := range groups {
			if groups[gi].k == rec.k {
				groups[gi].vs = append(groups[gi].vs, rec.v)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, keyGroup[K, V]{k: rec.k, vs: []V{rec.v}})
		}
	}
	t.pending = groups[1:]
	return groups[0].k, groups[0].vs, true, nil
}

// sinkGate serializes streaming output delivery into task order: task p's
// records pass only after every earlier task has finished. runTasks hands
// out task indices in ascending order, so the gate's current turn-holder
// is always scheduled and the gate cannot deadlock; on job failure abort
// releases every waiter.
type sinkGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	turn    int
	done    []bool
	aborted bool
}

func newSinkGate(n int) *sinkGate {
	g := &sinkGate{done: make([]bool, n)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// await blocks until it is task p's turn to deliver output (or the job
// aborted, in which case delivery is skipped — the job is returning an
// error and all output is discarded).
func (g *sinkGate) await(p int) (deliver bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.turn != p && !g.aborted {
		g.cond.Wait()
	}
	return !g.aborted
}

// finish marks task p complete and advances the turn past every finished
// task.
func (g *sinkGate) finish(p int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.done[p] = true
	for g.turn < len(g.done) && g.done[g.turn] {
		g.turn++
	}
	g.cond.Broadcast()
}

// abort releases every waiter; subsequent awaits return false.
func (g *sinkGate) abort() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.aborted = true
	g.cond.Broadcast()
}

// gateTasks wraps a runTasks body so that task completion (or failure)
// always advances the sink gate, keeping ordered delivery deadlock-free.
func gateTasks(gate *sinkGate, fn func(ctx context.Context, p int) error) func(ctx context.Context, p int) error {
	if gate == nil {
		return fn
	}
	return func(ctx context.Context, p int) error {
		err := fn(ctx, p)
		if err != nil {
			gate.abort()
		}
		gate.finish(p)
		return err
	}
}
