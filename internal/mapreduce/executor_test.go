package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// counterJob is a full map/reduce job that exercises output order, counters,
// cost, and shuffle volume at once.
func counterJob(lines []string, splits int) Job[string, string, int, [2]string] {
	return Job[string, string, int, [2]string]{
		Name:   "wordcount-counted",
		Splits: SplitSlice(lines, splits),
		Map: func(line string, ctx *MapCtx[string, int]) {
			for _, w := range strings.Fields(line) {
				ctx.Emit(w, 1)
				ctx.Inc("words", 1)
			}
			ctx.AddCost(int64(len(line)))
		},
		Reduce: func(key string, values []int, ctx *ReduceCtx[[2]string]) {
			sum := 0
			for _, v := range values {
				sum += v
			}
			ctx.Inc("keys", 1)
			ctx.Output([2]string{key, fmt.Sprint(sum)})
		},
	}
}

func manyLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%d shared w%d tail%d", i%17, i%5, i)
	}
	return lines
}

// TestExecutorWorkerCountInvariance is the executor's core contract: output,
// counters, and every Stats field are byte-identical for any worker count.
func TestExecutorWorkerCountInvariance(t *testing.T) {
	lines := manyLines(500)
	run := func(workers int) *Result[[2]string] {
		c := Default()
		c.Workers = workers
		res, err := Run(c, counterJob(lines, 7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, w := range []int{2, 4, 8, 16} {
		par := run(w)
		if !reflect.DeepEqual(seq.Output, par.Output) {
			t.Fatalf("workers=%d changed output order or content", w)
		}
		if !reflect.DeepEqual(seq.Stats, par.Stats) {
			t.Fatalf("workers=%d changed stats: seq=%+v par=%+v", w, seq.Stats, par.Stats)
		}
	}
}

func TestExecutorMapOnlyInvariance(t *testing.T) {
	lines := manyLines(300)
	run := func(workers int) *Result[string] {
		c := Default()
		c.Workers = workers
		res, err := RunMapOnly(c, MapOnlyJob[string, string]{
			Name:   "upper",
			Splits: SplitSlice(lines, 9),
			Map: func(line string, ctx *MapOnlyCtx[string]) {
				ctx.AddCost(1)
				ctx.Inc("lines", 1)
				ctx.Output(strings.ToUpper(line))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, w := range []int{3, runtime.NumCPU() + 2} {
		par := run(w)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential", w)
		}
	}
}

func TestExecutorCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Default(), counterJob(manyLines(10), 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, err = RunMapOnlyContext(ctx, Default(), MapOnlyJob[string, string]{
		Name: "noop", Splits: [][]string{{"x"}},
		Map: func(string, *MapOnlyCtx[string]) {},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("map-only err = %v, want context.Canceled", err)
	}
}

// TestExecutorCancelMidJob cancels from inside a map function and checks the
// job stops within one poll stride instead of mapping every record.
func TestExecutorCancelMidJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		c := Default()
		c.Workers = workers
		mapped := 0
		lines := manyLines(10_000)
		_, err := RunContext(ctx, c, Job[string, string, int, int]{
			Name:   "cancel-me",
			Splits: SplitSlice(lines, 1), // one split → one task, strictly sequential records
			Map: func(line string, mc *MapCtx[string, int]) {
				mapped++
				if mapped == 10 {
					cancel()
				}
			},
			Reduce: func(string, []int, *ReduceCtx[int]) {},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d err = %v, want context.Canceled", workers, err)
		}
		// The poll stride is 64 records; far fewer than all 10k must run.
		if mapped > 10+cancelStride {
			t.Fatalf("workers=%d mapped %d records after cancellation", workers, mapped)
		}
	}
}

func TestExecutorWorkersDoNotChangeSimTime(t *testing.T) {
	// Workers is a real-execution knob; the simulated cluster time must only
	// depend on the cost model.
	lines := manyLines(200)
	c1, c8 := Default(), Default()
	c1.Workers, c8.Workers = 1, 8
	r1, err := Run(c1, counterJob(lines, 5))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(c8, counterJob(lines, 5))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.SimTime != r8.Stats.SimTime {
		t.Fatalf("SimTime changed with workers: %v vs %v", r1.Stats.SimTime, r8.Stats.SimTime)
	}
}

func TestNewExecutorDefaults(t *testing.T) {
	ex := NewExecutor(nil)
	if ex.workers() != runtime.NumCPU() {
		t.Fatalf("default workers = %d, want NumCPU %d", ex.workers(), runtime.NumCPU())
	}
	c := Default()
	c.Workers = 3
	if got := NewExecutor(c).workers(); got != 3 {
		t.Fatalf("Cluster.Workers not honored: %d", got)
	}
	ex.Workers = 5
	if ex.workers() != 5 {
		t.Fatal("Executor.Workers override not honored")
	}
}

// BenchmarkExecutorWorkers measures the worker-pool speedup on a CPU-heavy
// map function. `make bench` records it in BENCH_executor.json.
func BenchmarkExecutorWorkers(b *testing.B) {
	lines := manyLines(2000)
	burn := func(s string) int {
		h := 0
		for i := 0; i < 2000; i++ {
			for _, r := range s {
				h = h*31 + int(r)
			}
		}
		return h
	}
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := Default()
			c.Workers = workers
			job := MapOnlyJob[string, int]{
				Name:   "burn",
				Splits: SplitSlice(lines, 4*workers),
				Map: func(line string, ctx *MapOnlyCtx[int]) {
					ctx.Output(burn(line))
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunMapOnly(c, job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
