package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// orderJob makes per-key value order observable: the reduce output embeds
// the values in arrival order, so any merge that reorders equal keys across
// tasks, runs, or emit positions changes the output.
func orderJob(lines []string, splits int) Job[string, string, int, string] {
	return Job[string, string, int, string]{
		Name:   "value-order",
		Splits: SplitSlice(lines, splits),
		Map: func(line string, ctx *MapCtx[string, int]) {
			for i, w := range strings.Fields(line) {
				ctx.Emit(w, i)
				ctx.Inc("emits", 1)
			}
		},
		Reduce: func(key string, values []int, ctx *ReduceCtx[string]) {
			ctx.Output(fmt.Sprintf("%s:%v", key, values))
		},
	}
}

// gobJob shuffles compound keys and values (the gob codec path) under a
// user-supplied Less, mirroring the index builder's frequency-sort job.
func gobJob(n, splits int) Job[int, [2]int, [2]int32, string] {
	recs := make([]int, n)
	for i := range recs {
		recs[i] = i
	}
	return Job[int, [2]int, [2]int32, string]{
		Name:   "gob-pairs",
		Splits: SplitSlice(recs, splits),
		Map: func(i int, ctx *MapCtx[[2]int, [2]int32]) {
			ctx.Emit([2]int{i % 13, i % 3}, [2]int32{int32(i), int32(i % 7)})
		},
		Less: func(a, b [2]int) bool {
			if a[0] != b[0] {
				return a[0] < b[0]
			}
			return a[1] < b[1]
		},
		Reduce: func(k [2]int, vs [][2]int32, ctx *ReduceCtx[string]) {
			ctx.Output(fmt.Sprintf("%v=%v", k, vs))
		},
	}
}

// structValueJob exercises the gob codec with a zero-size value type
// (which gob itself refuses and the codec must skip) under the engine's
// default rendered-string key order for a compound key.
func structValueJob(n, splits int) Job[int, [2]int, struct{}, int64] {
	recs := make([]int, n)
	for i := range recs {
		recs[i] = i
	}
	return Job[int, [2]int, struct{}, int64]{
		Name:   "dedup",
		Splits: SplitSlice(recs, splits),
		Map: func(i int, ctx *MapCtx[[2]int, struct{}]) {
			ctx.Emit([2]int{i % 61, i % 7}, struct{}{})
			ctx.Emit([2]int{i % 61, i % 7}, struct{}{})
		},
		Reduce: func(k [2]int, vs []struct{}, ctx *ReduceCtx[int64]) {
			ctx.Output(int64(k[0]*1000+k[1]*10) + int64(len(vs)))
		},
	}
}

// assertNoLeftoverSpill fails if the job left anything in its spill dir.
func assertNoLeftoverSpill(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Fatalf("leftover spill entry %s", filepath.Join(dir, e.Name()))
	}
}

// TestSpillByteIdentical is the out-of-core contract: any spill threshold ×
// any worker count produces output, counters, and stats byte-identical to
// the in-memory path, for the scalar codec, the gob codec, and zero-size
// values alike.
func TestSpillByteIdentical(t *testing.T) {
	lines := manyLines(400)
	type variant struct {
		name string
		run  func(c *Cluster) (any, Stats, error)
	}
	variants := []variant{
		{"scalar-counter", func(c *Cluster) (any, Stats, error) {
			res, err := Run(c, counterJob(lines, 7))
			if err != nil {
				return nil, Stats{}, err
			}
			return res.Output, res.Stats, nil
		}},
		{"scalar-order", func(c *Cluster) (any, Stats, error) {
			res, err := Run(c, orderJob(lines, 6))
			if err != nil {
				return nil, Stats{}, err
			}
			return res.Output, res.Stats, nil
		}},
		{"gob-less", func(c *Cluster) (any, Stats, error) {
			res, err := Run(c, gobJob(300, 5))
			if err != nil {
				return nil, Stats{}, err
			}
			return res.Output, res.Stats, nil
		}},
		{"gob-zerosize", func(c *Cluster) (any, Stats, error) {
			res, err := Run(c, structValueJob(300, 5))
			if err != nil {
				return nil, Stats{}, err
			}
			return res.Output, res.Stats, nil
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base := Default()
			base.Workers = 1
			wantOut, wantStats, err := v.run(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, spillRecords := range []int{1, 3, 64, 1 << 20} {
				for _, workers := range []int{1, 8} {
					c := Default()
					c.Workers = workers
					c.SpillRecords = spillRecords
					c.SpillDir = t.TempDir()
					out, stats, err := v.run(c)
					if err != nil {
						t.Fatalf("spill=%d workers=%d: %v", spillRecords, workers, err)
					}
					if !reflect.DeepEqual(out, wantOut) {
						t.Fatalf("spill=%d workers=%d changed output", spillRecords, workers)
					}
					if !reflect.DeepEqual(stats, wantStats) {
						t.Fatalf("spill=%d workers=%d changed stats:\n got %+v\nwant %+v", spillRecords, workers, stats, wantStats)
					}
					assertNoLeftoverSpill(t, c.SpillDir)
				}
			}
		})
	}
}

// TestSpillSinkStreamsInOutputOrder checks Job.Sink delivers exactly
// Result.Output, record for record and in order, in both execution modes,
// and that Result.Output stays nil when a sink is set.
func TestSpillSinkStreamsInOutputOrder(t *testing.T) {
	lines := manyLines(250)
	ref, err := Run(Default(), orderJob(lines, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, spillRecords := range []int{0, 2} {
		for _, workers := range []int{1, 8} {
			c := Default()
			c.Workers = workers
			c.SpillRecords = spillRecords
			c.SpillDir = t.TempDir()
			var got []string
			job := orderJob(lines, 5)
			job.Sink = func(o string) { got = append(got, o) }
			res, err := Run(c, job)
			if err != nil {
				t.Fatal(err)
			}
			if res.Output != nil {
				t.Fatalf("spill=%d workers=%d: Result.Output not nil with Sink set", spillRecords, workers)
			}
			if !reflect.DeepEqual(got, ref.Output) {
				t.Fatalf("spill=%d workers=%d: sink stream diverged from Result.Output", spillRecords, workers)
			}
			if !reflect.DeepEqual(res.Stats, ref.Stats) {
				t.Fatalf("spill=%d workers=%d: sink changed stats", spillRecords, workers)
			}
		}
	}
}

// TestMapOnlySinkStreamsInOutputOrder is the map-only analogue.
func TestMapOnlySinkStreamsInOutputOrder(t *testing.T) {
	lines := manyLines(200)
	mk := func(sink func(string)) MapOnlyJob[string, string] {
		return MapOnlyJob[string, string]{
			Name:   "upper",
			Splits: SplitSlice(lines, 9),
			Map: func(line string, ctx *MapOnlyCtx[string]) {
				ctx.Output(strings.ToUpper(line))
			},
			Sink: sink,
		}
	}
	ref, err := RunMapOnly(Default(), mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		c := Default()
		c.Workers = workers
		var got []string
		if _, err := RunMapOnly(c, mk(func(o string) { got = append(got, o) })); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref.Output) {
			t.Fatalf("workers=%d: map-only sink stream diverged", workers)
		}
	}
}

// TestSpillCancelRemovesTempFiles cancels a spilling job mid-map and
// mid-reduce and asserts the spill directory is empty afterward: the
// job-scoped temp dir must be torn down on every exit path.
func TestSpillCancelRemovesTempFiles(t *testing.T) {
	lines := manyLines(2000)
	for _, phase := range []string{"map", "reduce"} {
		for _, workers := range []int{1, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			c := Default()
			c.Workers = workers
			c.SpillRecords = 2
			c.SpillDir = t.TempDir()
			job := counterJob(lines, 11)
			var n atomic.Int64
			innerMap, innerReduce := job.Map, job.Reduce
			if phase == "map" {
				job.Map = func(line string, mc *MapCtx[string, int]) {
					if n.Add(1) == 200 {
						cancel()
					}
					innerMap(line, mc)
				}
			} else {
				job.Reduce = func(k string, vs []int, rc *ReduceCtx[[2]string]) {
					if n.Add(1) == 20 {
						cancel()
					}
					innerReduce(k, vs, rc)
				}
			}
			_, err := RunContext(ctx, c, job)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("phase=%s workers=%d: err = %v, want context.Canceled", phase, workers, err)
			}
			assertNoLeftoverSpill(t, c.SpillDir)
			cancel()
		}
	}
}
