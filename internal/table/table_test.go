package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestSchemaCol(t *testing.T) {
	s := NewSchema("title", "price", "year")
	if s.Col("price") != 1 {
		t.Fatalf("Col(price) = %d", s.Col("price"))
	}
	if s.Col("missing") != -1 {
		t.Fatalf("Col(missing) = %d, want -1", s.Col("missing"))
	}
	if got := s.Names(); len(got) != 3 || got[0] != "title" || got[2] != "year" {
		t.Fatalf("Names = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAppendAssignsIDs(t *testing.T) {
	tb := New("x", NewSchema("a"))
	tb.Append("v0")
	tb.Append("v1")
	if tb.Tuples[0].ID != 0 || tb.Tuples[1].ID != 1 {
		t.Fatalf("IDs = %d,%d", tb.Tuples[0].ID, tb.Tuples[1].ID)
	}
	if tb.Value(1, 0) != "v1" {
		t.Fatalf("Value(1,0) = %q", tb.Value(1, 0))
	}
}

func TestAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	New("x", NewSchema("a", "b")).Append("only-one")
}

func TestIsMissing(t *testing.T) {
	for _, v := range []string{"", "  ", "null", "NULL", "NaN", "?"} {
		if !IsMissing(v) {
			t.Errorf("IsMissing(%q) = false", v)
		}
	}
	for _, v := range []string{"0", "x", "none at all"} {
		if IsMissing(v) {
			t.Errorf("IsMissing(%q) = true", v)
		}
	}
}

func buildTable(rows [][]string, names ...string) *Table {
	tb := New("t", NewSchema(names...))
	for _, r := range rows {
		tb.Append(r...)
	}
	tb.InferTypes()
	return tb
}

func TestInferNumeric(t *testing.T) {
	tb := buildTable([][]string{{"1.5"}, {"2"}, {"-3"}, {""}}, "price")
	a := tb.Schema.Attrs[0]
	if a.Type != Numeric || a.Char != NumericChar {
		t.Fatalf("price inferred as %v/%v", a.Type, a.Char)
	}
}

func TestInferNumericWithNoise(t *testing.T) {
	// One bad value in 20 still counts as numeric (≥90% threshold).
	rows := make([][]string, 20)
	for i := range rows {
		rows[i] = []string{"42"}
	}
	rows[7] = []string{"N/A-ish"}
	tb := buildTable(rows, "n")
	if tb.Schema.Attrs[0].Type != Numeric {
		t.Fatal("noisy numeric column not inferred Numeric")
	}
}

func TestInferStringCharacteristics(t *testing.T) {
	tb := buildTable([][]string{
		{"smith", "acme inc", "123 north main street madison wi usa zip", strings.Repeat("w ", 15)},
		{"jones", "initech", "456 south park ave new york ny usa apt", strings.Repeat("w ", 20)},
	}, "last", "brand", "addr", "descr")
	want := []AttrChar{SingleWord, ShortString, MediumString, LongString}
	for i, w := range want {
		if got := tb.Schema.Attrs[i].Char; got != w {
			t.Errorf("attr %s char = %v, want %v", tb.Schema.Attrs[i].Name, got, w)
		}
		if tb.Schema.Attrs[i].Type != String {
			t.Errorf("attr %s type = %v, want String", tb.Schema.Attrs[i].Name, tb.Schema.Attrs[i].Type)
		}
	}
}

func TestInferAllMissingDefaults(t *testing.T) {
	tb := buildTable([][]string{{""}, {"null"}}, "ghost")
	a := tb.Schema.Attrs[0]
	if a.Type != String || a.Char != ShortString {
		t.Fatalf("all-missing attr inferred %v/%v", a.Type, a.Char)
	}
}

func TestSub(t *testing.T) {
	tb := New("x", NewSchema("a"))
	for i := 0; i < 5; i++ {
		tb.Append(strings.Repeat("v", i+1))
	}
	sub := tb.Sub("y", 3)
	if sub.Len() != 3 || sub.Name != "y" {
		t.Fatalf("Sub len=%d name=%s", sub.Len(), sub.Name)
	}
	if sub.Tuples[2].ID != 2 {
		t.Fatalf("Sub re-ID failed: %d", sub.Tuples[2].ID)
	}
	if got := tb.Sub("z", 99).Len(); got != 5 {
		t.Fatalf("Sub overlong = %d", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := "title,price\n\"the \"\"thing\"\"\",9.99\nhello world,5\n"
	tb, err := ReadCSV(strings.NewReader(in), "books")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.Value(0, 0) != `the "thing"` {
		t.Fatalf("quoted value = %q", tb.Value(0, 0))
	}
	if tb.Schema.Attrs[1].Type != Numeric {
		t.Fatal("price should infer Numeric after ReadCSV")
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadCSV(&buf, "books2")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != tb.Len() || rt.Value(0, 0) != tb.Value(0, 0) {
		t.Fatal("round trip mismatch")
	}
}

func TestCSVRaggedRowRejected(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b\n1\n"), "bad")
	if err == nil {
		t.Fatal("expected error for ragged row")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the line: %v", err)
	}
}

func TestCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "empty"); err == nil {
		t.Fatal("expected error for missing header")
	}
}

func TestPairString(t *testing.T) {
	if got := (Pair{3, 7}).String(); got != "(3,7)" {
		t.Fatalf("Pair.String = %q", got)
	}
}

func TestTypeStrings(t *testing.T) {
	if String.String() != "string" || Numeric.String() != "numeric" {
		t.Fatal("AttrType strings wrong")
	}
	if NumericChar.String() != "numeric" || LongString.String() != "long-string" {
		t.Fatal("AttrChar strings wrong")
	}
	if AttrType(9).String() == "" || AttrChar(9).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}
