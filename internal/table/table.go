// Package table provides the relational substrate for Falcon: tables of
// tuples with schemas, CSV input/output, and the automatic attribute type
// and characteristic inference that drives feature generation (paper §8,
// Figure 5).
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// AttrType is the inferred type of an attribute.
type AttrType int

const (
	// String attributes hold free text.
	String AttrType = iota
	// Numeric attributes parse as numbers in (almost) every non-missing row.
	Numeric
)

// String implements fmt.Stringer.
func (t AttrType) String() string {
	switch t {
	case String:
		return "string"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// AttrChar is the characteristic of an attribute per Figure 5 of the paper.
type AttrChar int

const (
	// SingleWord strings: first names, zip codes, ISBNs...
	SingleWord AttrChar = iota
	// ShortString: multi-word, ≤5 words (brand names, person names).
	ShortString
	// MediumString: 6–10 words (street addresses, short descriptions).
	MediumString
	// LongString: ≥11 words (long descriptions, reviews).
	LongString
	// NumericChar tags numeric attributes.
	NumericChar
)

// String implements fmt.Stringer.
func (c AttrChar) String() string {
	switch c {
	case SingleWord:
		return "single-word"
	case ShortString:
		return "short-string"
	case MediumString:
		return "medium-string"
	case LongString:
		return "long-string"
	case NumericChar:
		return "numeric"
	default:
		return fmt.Sprintf("char(%d)", int(c))
	}
}

// Attribute describes one column.
type Attribute struct {
	Name string
	Type AttrType
	Char AttrChar
}

// Schema is an ordered list of attributes.
type Schema struct {
	Attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from attribute names; types default to String
// until InferTypes is run on a table.
func NewSchema(names ...string) *Schema {
	s := &Schema{Attrs: make([]Attribute, len(names)), index: make(map[string]int, len(names))}
	for i, n := range names {
		s.Attrs[i] = Attribute{Name: n, Type: String, Char: ShortString}
		s.index[n] = i
	}
	return s
}

// Col returns the position of the named attribute, or -1.
func (s *Schema) Col(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.Attrs) }

// Tuple is one row. ID is the row's position in its table and doubles as the
// tuple identifier used throughout blocking and matching.
type Tuple struct {
	ID     int
	Values []string
}

// Table is a named relation.
type Table struct {
	Name   string
	Schema *Schema
	Tuples []Tuple
}

// New creates an empty table with the given schema.
func New(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Append adds a row, assigning the next ID. It panics if the value count
// does not match the schema.
func (t *Table) Append(values ...string) {
	if len(values) != t.Schema.Len() {
		panic(fmt.Sprintf("table %s: row has %d values, schema has %d", t.Name, len(values), t.Schema.Len()))
	}
	t.Tuples = append(t.Tuples, Tuple{ID: len(t.Tuples), Values: values})
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.Tuples) }

// Value returns tuple row's value in column col.
func (t *Table) Value(row, col int) string { return t.Tuples[row].Values[col] }

// IsMissing reports whether a raw value counts as missing.
func IsMissing(v string) bool {
	v = strings.TrimSpace(v)
	return v == "" || strings.EqualFold(v, "null") || strings.EqualFold(v, "nan") || v == "?"
}

// numericThreshold is the fraction of non-missing values that must parse as
// numbers for an attribute to be inferred Numeric.
const numericThreshold = 0.9

// maxInferSample caps how many rows type inference scans.
const maxInferSample = 5000

// InferTypes scans the table and fills in each attribute's Type and Char
// following Figure 5's characteristic buckets. Attributes whose values are
// all missing default to String/ShortString.
func (t *Table) InferTypes() {
	n := t.Len()
	if n > maxInferSample {
		n = maxInferSample
	}
	for c := range t.Schema.Attrs {
		var nonMissing, numeric, totalWords int
		for r := 0; r < n; r++ {
			v := t.Tuples[r].Values[c]
			if IsMissing(v) {
				continue
			}
			nonMissing++
			if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				numeric++
			}
			totalWords += len(strings.Fields(v))
		}
		attr := &t.Schema.Attrs[c]
		if nonMissing == 0 {
			attr.Type, attr.Char = String, ShortString
			continue
		}
		if float64(numeric) >= numericThreshold*float64(nonMissing) {
			attr.Type, attr.Char = Numeric, NumericChar
			continue
		}
		attr.Type = String
		avgWords := float64(totalWords) / float64(nonMissing)
		switch {
		case avgWords <= 1.2:
			attr.Char = SingleWord
		case avgWords <= 5:
			attr.Char = ShortString
		case avgWords <= 10:
			attr.Char = MediumString
		default:
			attr.Char = LongString
		}
	}
}

// Sub returns a new table containing the first n tuples (or all, if fewer),
// re-IDed from zero. Used for the table-size sweeps of §11.4.
func (t *Table) Sub(name string, n int) *Table {
	if n > t.Len() {
		n = t.Len()
	}
	out := New(name, t.Schema)
	for i := 0; i < n; i++ {
		out.Append(t.Tuples[i].Values...)
	}
	return out
}

// Pair identifies a candidate tuple pair (a ∈ A, b ∈ B) by tuple IDs.
type Pair struct {
	A, B int
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.A, p.B) }
