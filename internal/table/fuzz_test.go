package table

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV loader never panics and that any table it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("title,price\n\"x,y\",3\n")
	f.Add("")
	f.Add("a\n\"unterminated")
	f.Add("a,b\nonly-one\n")
	f.Fuzz(func(t *testing.T, data string) {
		tb, err := ReadCSV(strings.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := tb.WriteCSV(&sb); err != nil {
			t.Fatalf("accepted table failed to write: %v", err)
		}
		rt, err := ReadCSV(strings.NewReader(sb.String()), "fuzz2")
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.Len() != tb.Len() || rt.Schema.Len() != tb.Schema.Len() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				tb.Len(), tb.Schema.Len(), rt.Len(), rt.Schema.Len())
		}
	})
}
