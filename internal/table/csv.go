package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a table from CSV with a header row and infers attribute
// types and characteristics.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows; we validate below
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %s: reading header: %w", name, err)
	}
	t := New(name, NewSchema(header...))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %s: line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("table %s: line %d: %d fields, header has %d", name, line, len(rec), len(header))
		}
		t.Append(rec...)
	}
	t.InferTypes()
	return t, nil
}

// ReadCSVFile opens path and parses it with ReadCSV; the table is named
// after the file path.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, path)
}

// WriteCSV writes the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return err
	}
	for _, tu := range t.Tuples {
		if err := cw.Write(tu.Values); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to path, creating or truncating it.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
