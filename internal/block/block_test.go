package block

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/mapreduce"
	"falcon/internal/rules"
	"falcon/internal/table"
)

// fixture builds tables, features, a realistic two-rule sequence, its
// analysis, indexes, and the Input.
type fixture struct {
	a, b *table.Table
	in   *Input
	seq  []rules.Rule
	set  *feature.Set
}

func mkTables(nA, nB int, seed int64) (*table.Table, *table.Table) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"war", "peace", "art", "code", "go", "data", "cloud", "entity", "match", "block"}
	mk := func(name string, n int) *table.Table {
		t := table.New(name, table.NewSchema("title", "year", "price"))
		for i := 0; i < n; i++ {
			var title string
			for j := 0; j < 2+rng.Intn(4); j++ {
				if j > 0 {
					title += " "
				}
				title += words[rng.Intn(len(words))]
			}
			year := fmt.Sprint(1990 + rng.Intn(25))
			if rng.Intn(12) == 0 {
				year = ""
			}
			price := fmt.Sprintf("%.2f", 10+rng.Float64()*90)
			t.Append(title, year, price)
		}
		t.InferTypes()
		return t
	}
	return mk("A", nA), mk("B", nB)
}

func newFixture(t *testing.T, nA, nB int, seed int64) *fixture {
	t.Helper()
	a, b := mkTables(nA, nB, seed)
	set := feature.Generate(a, b)
	feats := make([]*feature.Feature, len(set.BlockingIdx))
	for i, idx := range set.BlockingIdx {
		feats[i] = &set.Features[idx]
	}
	pos := func(name string) int {
		for i, f := range feats {
			if f.Name == name {
				return i
			}
		}
		t.Fatalf("feature %s missing", name)
		return -1
	}
	seq := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: pos("jaccard_word(title)"), Op: rules.LE, Value: 0.4}}},
		{ID: 1, Preds: []rules.Predicate{
			{Feature: pos("exact_match(year)"), Op: rules.LE, Value: 0.5},
			{Feature: pos("abs_diff(price)"), Op: rules.GE, Value: 15},
		}},
	}
	an := filters.Analyze(rules.ToCNF(seq), feats)
	ix := filters.NewIndexes(mapreduce.Default(), a)
	if _, err := ix.EnsureAll(context.Background(), an.NeededIndexes()); err != nil {
		t.Fatal(err)
	}
	in := &Input{
		A: a, B: b,
		Analysis:   an,
		Indexes:    ix,
		Vectorizer: feature.NewVectorizer(set, a, b),
		ClauseSel:  []float64{0.3, 0.7},
	}
	return &fixture{a: a, b: b, in: in, seq: seq, set: set}
}

// truth computes the expected surviving pairs by brute force.
func (f *fixture) truth() map[table.Pair]bool {
	out := map[table.Pair]bool{}
	for a := 0; a < f.a.Len(); a++ {
		for b := 0; b < f.b.Len(); b++ {
			p := table.Pair{A: a, B: b}
			if f.in.keepPair(p) {
				out[p] = true
			}
		}
	}
	return out
}

func TestAllStrategiesAgree(t *testing.T) {
	fx := newFixture(t, 60, 40, 1)
	want := fx.truth()
	cluster := mapreduce.Default()
	for _, s := range []Strategy{ApplyAll, ApplyGreedy, ApplyConjunct, ApplyPredicate, MapSide, ReduceSplit} {
		res, err := Run(context.Background(), cluster, fx.in, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Pairs) != len(want) {
			t.Fatalf("%v: %d pairs, want %d", s, len(res.Pairs), len(want))
		}
		for _, p := range res.Pairs {
			if !want[p] {
				t.Fatalf("%v: unexpected pair %v", s, p)
			}
		}
		if res.SimTime <= 0 {
			t.Fatalf("%v: no sim time", s)
		}
		if res.Strategy != s {
			t.Fatalf("%v: wrong strategy tag %v", s, res.Strategy)
		}
	}
}

func TestIndexStrategiesEnumerateLess(t *testing.T) {
	fx := newFixture(t, 150, 100, 2)
	cluster := mapreduce.Default()
	aa, err := Run(context.Background(), cluster, fx.in, ApplyAll)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(context.Background(), cluster, fx.in, ReduceSplit)
	if err != nil {
		t.Fatal(err)
	}
	cartesian := int64(fx.a.Len()) * int64(fx.b.Len())
	if rs.PairsEnumerated != cartesian {
		t.Fatalf("reduce-split enumerated %d, want the full %d", rs.PairsEnumerated, cartesian)
	}
	if aa.PairsEnumerated >= cartesian {
		t.Fatalf("apply-all enumerated the whole Cartesian product (%d)", aa.PairsEnumerated)
	}
	if aa.SimTime >= rs.SimTime {
		t.Fatalf("apply-all (%v) should beat reduce-split (%v)", aa.SimTime, rs.SimTime)
	}
}

func TestBaselinesRefuseHugeTables(t *testing.T) {
	fx := newFixture(t, 20, 20, 3)
	// Fake huge tables by growing B's length artificially is intrusive;
	// instead check the guard directly on a synthetic input.
	big := table.New("big", table.NewSchema("x"))
	for i := 0; i < 11000; i++ {
		big.Append("v")
	}
	in := *fx.in
	in.A = big
	in.B = big
	if _, err := in.runMapSide(context.Background(), mapreduce.Default(), nil); err != ErrTooLarge {
		t.Fatalf("map-side on 121M pairs: err = %v, want ErrTooLarge", err)
	}
	if _, err := in.runReduceSplit(context.Background(), mapreduce.Default(), nil); err != ErrTooLarge {
		t.Fatalf("reduce-split on 121M pairs: err = %v, want ErrTooLarge", err)
	}
}

func TestMemoryNeedOrdering(t *testing.T) {
	fx := newFixture(t, 120, 60, 4)
	all := MemoryNeed(fx.in, ApplyAll)
	conj := MemoryNeed(fx.in, ApplyConjunct)
	pred := MemoryNeed(fx.in, ApplyPredicate)
	if all <= 0 || conj <= 0 || pred <= 0 {
		t.Fatalf("memory estimates: all=%d conj=%d pred=%d", all, conj, pred)
	}
	if !(all >= conj && conj >= pred) {
		t.Fatalf("memory ladder violated: all=%d conj=%d pred=%d", all, conj, pred)
	}
	if MemoryNeed(fx.in, ReduceSplit) != 0 {
		t.Fatal("reduce-split needs no mapper memory")
	}
	if MemoryNeed(fx.in, MapSide) != TableBytes(fx.a) {
		t.Fatal("map-side memory should be table A size")
	}
}

func TestChooseLadder(t *testing.T) {
	fx := newFixture(t, 100, 50, 5)
	// Plenty of memory, low greedy ratio → ApplyAll.
	cl := &mapreduce.Cluster{Nodes: 10, SlotsPerNode: 8, MapperMemory: 1 << 40}
	fx.in.ClauseSel = []float64{0.3, 0.7}
	if got := Choose(cl, fx.in, 0.2); got != ApplyAll {
		t.Fatalf("Choose = %v, want apply-all", got)
	}
	// seqSel close to best clause sel → ApplyGreedy.
	if got := Choose(cl, fx.in, 0.29); got != ApplyGreedy {
		t.Fatalf("Choose = %v, want apply-greedy", got)
	}
	// Tiny memory → baselines; A won't fit either → ReduceSplit.
	tiny := &mapreduce.Cluster{Nodes: 10, SlotsPerNode: 8, MapperMemory: 1}
	if got := Choose(tiny, fx.in, 0.2); got != ReduceSplit {
		t.Fatalf("Choose = %v, want reduce-split", got)
	}
	// Memory fitting only per-predicate indexes.
	pred := MemoryNeed(fx.in, ApplyPredicate)
	conj := MemoryNeed(fx.in, ApplyConjunct)
	if pred < conj {
		mid := &mapreduce.Cluster{Nodes: 10, SlotsPerNode: 8, MapperMemory: pred}
		if got := Choose(mid, fx.in, 0.2); got != ApplyPredicate {
			t.Fatalf("Choose = %v, want apply-predicate", got)
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		ApplyAll: "apply-all", ApplyGreedy: "apply-greedy", ApplyConjunct: "apply-conjunct",
		ApplyPredicate: "apply-predicate", MapSide: "map-side", ReduceSplit: "reduce-split",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
	if Strategy(99).String() != "strategy(99)" {
		t.Fatal("unknown strategy string")
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	f := func(a, b int32) bool {
		if a < 0 || b < 0 {
			return true
		}
		p := unpairKey(pairKey(a, b))
		return p.A == int(a) && p.B == int(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPassIDsOnlyCheaper(t *testing.T) {
	fx := newFixture(t, 150, 100, 6)
	cluster := mapreduce.Default()
	fx.in.PassIDsOnly = false
	full, err := Run(context.Background(), cluster, fx.in, ApplyAll)
	if err != nil {
		t.Fatal(err)
	}
	fx.in.PassIDsOnly = true
	ids, err := Run(context.Background(), cluster, fx.in, ApplyAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids.Pairs) != len(full.Pairs) {
		t.Fatal("optimization changed results")
	}
	if ids.SimTime > full.SimTime {
		t.Fatalf("ID-only (%v) should not exceed full-tuple (%v)", ids.SimTime, full.SimTime)
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	fx := newFixture(t, 10, 10, 7)
	if _, err := Run(context.Background(), mapreduce.Default(), fx.in, Strategy(99)); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

func TestUnfilterableRuleFallsBackToFullScan(t *testing.T) {
	a, b := mkTables(20, 15, 8)
	set := feature.Generate(a, b)
	feats := make([]*feature.Feature, len(set.BlockingIdx))
	for i, idx := range set.BlockingIdx {
		feats[i] = &set.Features[idx]
	}
	var jw int
	for i, f := range feats {
		if f.Name == "jaccard_word(title)" {
			jw = i
		}
	}
	// Keep-pred "jaccard ≤ 0.9" — unfilterable dissimilarity clause.
	seq := []rules.Rule{{ID: 0, Preds: []rules.Predicate{{Feature: jw, Op: rules.GT, Value: 0.9}}}}
	an := filters.Analyze(rules.ToCNF(seq), feats)
	in := &Input{
		A: a, B: b, Analysis: an,
		Indexes:    filters.NewIndexes(mapreduce.Default(), a),
		Vectorizer: feature.NewVectorizer(set, a, b),
		ClauseSel:  []float64{0.9},
	}
	res, err := Run(context.Background(), mapreduce.Default(), in, ApplyAll)
	if err != nil {
		t.Fatal(err)
	}
	// Everything must still be correct: compare against brute force.
	want := 0
	for ar := 0; ar < a.Len(); ar++ {
		for br := 0; br < b.Len(); br++ {
			if in.keepPair(table.Pair{A: ar, B: br}) {
				want++
			}
		}
	}
	if len(res.Pairs) != want {
		t.Fatalf("got %d pairs, want %d", len(res.Pairs), want)
	}
	if res.PairsEnumerated != int64(a.Len()*b.Len()) {
		t.Fatal("unfilterable rule should enumerate everything")
	}
}

// Property: every strategy's output is sorted and within the Cartesian
// bounds.
func TestQuickOutputSorted(t *testing.T) {
	fx := newFixture(t, 40, 30, 9)
	cluster := mapreduce.Default()
	f := func(sRaw uint8) bool {
		s := Strategy(int(sRaw) % 4) // index-based strategies
		res, err := Run(context.Background(), cluster, fx.in, s)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Pairs); i++ {
			p, q := res.Pairs[i-1], res.Pairs[i]
			if p.A > q.A || (p.A == q.A && p.B >= q.B) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApplyAll(b *testing.B) {
	fx := newFixture(&testing.T{}, 400, 200, 10)
	cluster := mapreduce.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), cluster, fx.in, ApplyAll); err != nil {
			b.Fatal(err)
		}
	}
}
