package block

import (
	"cmp"
	"slices"
	"sort"
	"strings"

	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// SortedNeighborhood implements the classic sorted-neighborhood blocking
// baseline the paper's related work discusses (Kolb et al., "Parallel
// sorted neighborhood blocking with MapReduce"): both tables' tuples are
// sorted by a key derived from one attribute, and every A-B pair within a
// sliding window of the merged order becomes a candidate.
//
// Falcon's learned rule-based blocking is compared against this baseline in
// the experiments; SNB is sensitive to the key choice and to dirt in the
// key's leading characters, which is exactly the §3.2 critique of
// key-derived blocking.
func SortedNeighborhood(a, b *table.Table, aCol, bCol, window int) []table.Pair {
	if window < 1 {
		window = 1
	}
	type entry struct {
		key string
		id  int32
		isA bool
	}
	entries := make([]entry, 0, a.Len()+b.Len())
	add := func(t *table.Table, col int, isA bool) {
		for i := 0; i < t.Len(); i++ {
			v := t.Value(i, col)
			if table.IsMissing(v) {
				continue
			}
			entries = append(entries, entry{key: snbKey(v), id: int32(i), isA: isA})
		}
	}
	add(a, aCol, true)
	add(b, bCol, false)
	slices.SortFunc(entries, func(a, b entry) int {
		if c := strings.Compare(a.key, b.key); c != 0 {
			return c
		}
		if a.isA != b.isA {
			if a.isA {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.id, b.id)
	})

	seen := map[table.Pair]bool{}
	var out []table.Pair
	for i := range entries {
		for j := i + 1; j < len(entries) && j <= i+window; j++ {
			ei, ej := entries[i], entries[j]
			if ei.isA == ej.isA {
				continue
			}
			p := table.Pair{A: int(ei.id), B: int(ej.id)}
			if !ei.isA {
				p = table.Pair{A: int(ej.id), B: int(ei.id)}
			}
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sortPairs(out)
	return out
}

// snbKey normalizes a value into a sort key: lowercase, tokens sorted so
// word-order variation does not split neighborhoods.
func snbKey(v string) string {
	toks := tokenize.WordSet(v)
	sort.Strings(toks)
	return strings.Join(toks, " ")
}
