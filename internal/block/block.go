// Package block implements Falcon's apply_blocking_rules operator (paper
// §7): executing a blocking-rule sequence over A×B without materializing
// the Cartesian product. It provides the four index-based physical
// operators of §7.3 — apply-all, apply-greedy, apply-conjunct,
// apply-predicate — plus the two prior-work baselines MapSide and
// ReduceSplit, which do enumerate A×B.
//
// All six produce the same candidate set: the pairs the positive CNF rule Q
// keeps. They differ in mapper memory footprint and cluster time, which is
// what §10.1's physical-operator selection trades off.
package block

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"time"

	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/mapreduce"
	"falcon/internal/table"
)

// Strategy names a physical operator for apply_blocking_rules.
type Strategy int

const (
	// ApplyAll loads every index into each mapper (§7.3a).
	ApplyAll Strategy = iota
	// ApplyGreedy loads only the most selective conjunct's indexes (§7.3b).
	ApplyGreedy
	// ApplyConjunct runs one mapper pass per conjunct; reducers intersect
	// (§7.3c).
	ApplyConjunct
	// ApplyPredicate runs one mapper pass per predicate (§7.3d).
	ApplyPredicate
	// MapSide is the prior-work baseline that holds table A in mapper
	// memory and enumerates A×B.
	MapSide
	// ReduceSplit is the prior-work baseline that enumerates A×B in the
	// mappers and spreads rule evaluation across reducers.
	ReduceSplit
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case ApplyAll:
		return "apply-all"
	case ApplyGreedy:
		return "apply-greedy"
	case ApplyConjunct:
		return "apply-conjunct"
	case ApplyPredicate:
		return "apply-predicate"
	case MapSide:
		return "map-side"
	case ReduceSplit:
		return "reduce-split"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ErrTooLarge reports that a baseline strategy would enumerate an A×B too
// big to finish (the paper kills MapSide/ReduceSplit on Songs/Citations).
var ErrTooLarge = errors.New("block: A×B too large for an enumerating baseline")

// baselinePairCap bounds how many pairs the in-process baselines enumerate.
const baselinePairCap = 100_000_000

// Input bundles everything apply_blocking_rules needs.
type Input struct {
	A, B *table.Table
	// Analysis is the filter plan of the positive CNF rule Q.
	Analysis *filters.Analysis
	// Indexes must contain every index Analysis needs (for the index-based
	// strategies).
	Indexes *filters.Indexes
	// Vectorizer computes blocking-feature vectors for final rule checks.
	Vectorizer *feature.Vectorizer
	// ClauseSel gives each clause's selectivity (fraction of sample pairs
	// surviving the corresponding rule); used by ApplyGreedy.
	ClauseSel []float64
	// PassIDsOnly enables §7.3 optimization 2 (reduced intermediate
	// output); when false each emitted B record is charged tuple weight.
	PassIDsOnly bool
	// BTupleWeight is the extra shuffle cost per full B tuple emission
	// when PassIDsOnly is false (≈ tuple bytes / 128). 0 derives it from B.
	BTupleWeight int64
}

// Result is the blocking outcome.
type Result struct {
	Pairs    []table.Pair
	SimTime  time.Duration
	Strategy Strategy
	// PairsEnumerated counts (a,b) pairs that reached rule evaluation.
	PairsEnumerated int64
}

func (in *Input) bWeight() int64 {
	if in.PassIDsOnly {
		return 0
	}
	if in.BTupleWeight > 0 {
		return in.BTupleWeight
	}
	w := TableBytes(in.B) / int64(in.B.Len()+1) / 128
	if w < 1 {
		w = 1
	}
	return w
}

// TableBytes estimates a table's in-memory size.
func TableBytes(t *table.Table) int64 {
	var b int64
	for _, tu := range t.Tuples {
		b += 48
		for _, v := range tu.Values {
			b += int64(len(v)) + 16
		}
	}
	return b
}

// keepPair evaluates the full CNF rule on a pair.
func (in *Input) keepPair(p table.Pair) bool {
	vec := in.Vectorizer.BlockingVector(p)
	return in.Analysis.CNF.Keep(vec.Values)
}

func (in *Input) evalCost() int64 {
	n := 0
	for _, c := range in.Analysis.CNF.Clauses {
		n += len(c)
	}
	if n < 1 {
		n = 1
	}
	return int64(n)
}

// counterEnumerated tallies pairs that reached rule evaluation. It is an
// engine counter (per-task, merged deterministically) rather than a shared
// variable, so rule evaluation stays race-free across concurrent tasks.
const counterEnumerated = "pairs_enumerated"

// Run executes the chosen strategy, honoring ctx cancellation between
// records.
func Run(ctx context.Context, cluster *mapreduce.Cluster, in *Input, s Strategy) (*Result, error) {
	return run(ctx, cluster, in, s, nil)
}

// RunStream executes the chosen strategy delivering candidate pairs to
// sink record-at-a-time instead of materializing Result.Pairs: the engine
// hands each surviving pair over as the reduce side drains, so the
// candidate set is never held in memory by the blocking layer. Pairs
// arrive in the engine's deterministic reduce order (not the sorted order
// Run returns) and never concurrently; Result carries the usual SimTime
// and counters with Pairs nil.
//
//falcon:streaming
func RunStream(ctx context.Context, cluster *mapreduce.Cluster, in *Input, s Strategy, sink func(table.Pair)) (*Result, error) {
	if sink == nil {
		return nil, fmt.Errorf("block: RunStream needs a sink")
	}
	return run(ctx, cluster, in, s, sink)
}

func run(ctx context.Context, cluster *mapreduce.Cluster, in *Input, s Strategy, sink func(table.Pair)) (*Result, error) {
	switch s {
	case ApplyAll:
		return in.runClausePass(ctx, cluster, s, in.Analysis.FilterableClauses(), sink)
	case ApplyGreedy:
		return in.runClausePass(ctx, cluster, s, []int{in.mostSelectiveClause()}, sink)
	case ApplyConjunct:
		return in.runIntersect(ctx, cluster, s, false, sink)
	case ApplyPredicate:
		return in.runIntersect(ctx, cluster, s, true, sink)
	case MapSide:
		return in.runMapSide(ctx, cluster, sink)
	case ReduceSplit:
		return in.runReduceSplit(ctx, cluster, sink)
	default:
		return nil, fmt.Errorf("block: unknown strategy %v", s)
	}
}

// mostSelectiveClause returns the filterable clause with the lowest
// selectivity (drops the most pairs).
func (in *Input) mostSelectiveClause() int {
	best, bestSel := -1, 2.0
	for _, ci := range in.Analysis.FilterableClauses() {
		sel := 1.0
		if ci < len(in.ClauseSel) {
			sel = in.ClauseSel[ci]
		}
		if sel < bestSel {
			best, bestSel = ci, sel
		}
	}
	if best == -1 {
		// No filterable clause: caller should have picked a baseline, but
		// degrade gracefully by signalling "no pruning" with clause -1.
		return -1
	}
	return best
}

// bRows returns B's row numbers split for the cluster, interleaving-style
// balanced (each split carries a contiguous stripe; candidate work is
// data-dependent, which the cost model's wave scheduling absorbs).
func (in *Input) bRows(cluster *mapreduce.Cluster) [][]int {
	rows := make([]int, in.B.Len())
	for i := range rows {
		rows[i] = i
	}
	return mapreduce.SplitSlice(rows, cluster.Slots()*4)
}

// runClausePass implements ApplyAll / ApplyGreedy: one mapper pass that
// probes the given clauses, then reducers evaluate the full rule sequence.
func (in *Input) runClausePass(ctx context.Context, cluster *mapreduce.Cluster, s Strategy, useClauses []int, sink func(table.Pair)) (*Result, error) {
	if len(useClauses) == 1 && useClauses[0] == -1 {
		useClauses = nil
	}
	bw := in.bWeight()
	evalCost := in.evalCost()
	// Map records are whole B-row stripes (one record per split), so the
	// batched probe path amortizes its index sessions and buffers across the
	// stripe. The engine charges one implicit cost unit per map record; a
	// stripe record carries len(rows) probes, so the Map compensates with
	// len(rows)-1 to keep SimTime byte-identical with the per-row record
	// shape (SplitSlice never yields an empty stripe).
	stripes := in.bRows(cluster)
	splits := make([][][]int, len(stripes))
	for i, st := range stripes {
		splits[i] = [][]int{st}
	}
	job := mapreduce.Job[[]int, int32, int32, table.Pair]{
		Name:   "apply-blocking-rules/" + s.String(),
		Sink:   sink,
		Splits: splits,
		Map: func(rows []int, ctx *mapreduce.MapCtx[int32, int32]) {
			ctx.AddCost(int64(len(rows)) - 1)
			in.Indexes.RuleCandidatesBatch(in.Analysis, useClauses, in.B, rows, func(i int, cands []int32, all bool, cost int64) {
				bRow := int32(rows[i])
				ctx.AddCost(cost)
				if all {
					// Filters could not prune this probe: every A tuple is
					// a candidate.
					for a := 0; a < in.A.Len(); a++ {
						ctx.Emit(int32(a), bRow)
						ctx.AddCost(bw)
					}
					return
				}
				for _, aid := range cands {
					ctx.Emit(aid, bRow)
					ctx.AddCost(bw)
				}
			})
		},
		Reduce: func(aid int32, bRows []int32, ctx *mapreduce.ReduceCtx[table.Pair]) {
			in.Vectorizer.BlockingVectorsBatch(int(aid), bRows, func(i int, values []float64) {
				ctx.AddCost(evalCost)
				ctx.Inc(counterEnumerated, 1)
				if in.Analysis.CNF.Keep(values) {
					ctx.Output(table.Pair{A: int(aid), B: int(bRows[i])})
				}
			})
		},
	}
	res, err := mapreduce.RunContext(ctx, cluster, job)
	if err != nil {
		return nil, err
	}
	return finish(res, s), nil
}

// runIntersect implements ApplyConjunct / ApplyPredicate: one mapper pass
// per conjunct (or per predicate), reducers intersect the clause coverage
// then evaluate the full rule.
func (in *Input) runIntersect(ctx context.Context, cluster *mapreduce.Cluster, s Strategy, perPredicate bool, sink func(table.Pair)) (*Result, error) {
	filterable := in.Analysis.FilterableClauses()
	if len(filterable) == 0 {
		return in.runClausePass(ctx, cluster, s, nil, sink)
	}
	need := len(filterable)
	bw := in.bWeight()
	evalCost := in.evalCost()

	// clausePos maps a clause index to a dense bit position in [0, need), so
	// the reducer can count distinct covering clauses with a word-sized
	// bitmask instead of a per-key map.
	maxClause := 0
	for _, ci := range filterable {
		if ci > maxClause {
			maxClause = ci
		}
	}
	clausePos := make([]uint, maxClause+1)
	for i, ci := range filterable {
		clausePos[ci] = uint(i)
	}

	// Build the pass records: (clause, predicate, bRow). predicate = -1
	// probes the whole clause at once (ApplyConjunct).
	type rec struct {
		clause int
		pred   int
		bRow   int
	}
	var recs []rec
	for _, ci := range filterable {
		if perPredicate {
			for pi := range in.Analysis.Clauses[ci].Preds {
				for b := 0; b < in.B.Len(); b++ {
					recs = append(recs, rec{ci, pi, b})
				}
			}
		} else {
			for b := 0; b < in.B.Len(); b++ {
				recs = append(recs, rec{ci, -1, b})
			}
		}
	}

	job := mapreduce.Job[rec, int64, int32, table.Pair]{
		Name:   "apply-blocking-rules/" + s.String(),
		Sink:   sink,
		Splits: mapreduce.SplitSlice(recs, cluster.Slots()*4),
		Map: func(r rec, ctx *mapreduce.MapCtx[int64, int32]) {
			var cands []int32
			var all bool
			var cost int64
			if r.pred >= 0 {
				cands, all, cost = in.Indexes.PredCandidates(in.Analysis.Clauses[r.clause].Preds[r.pred], in.B, r.bRow)
			} else {
				cands, all, cost = in.Indexes.ClauseCandidates(in.Analysis.Clauses[r.clause], in.B, r.bRow)
			}
			ctx.AddCost(cost)
			if all {
				for a := 0; a < in.A.Len(); a++ {
					ctx.Emit(pairKey(int32(a), int32(r.bRow)), int32(r.clause))
					ctx.AddCost(bw)
				}
				return
			}
			for _, aid := range cands {
				ctx.Emit(pairKey(aid, int32(r.bRow)), int32(r.clause))
				ctx.AddCost(bw)
			}
		},
		Reduce: func(key int64, clauses []int32, ctx *mapreduce.ReduceCtx[table.Pair]) {
			// Distinct clauses that produced this pair must cover every
			// filterable clause (per-predicate passes of one clause merge by
			// the dedup). Clause indices map to dense bit positions, so a
			// word-sized bitmask counts distinct coverage with no per-key
			// allocation; rules with more than 64 filterable clauses fall
			// back to a bool slice.
			if need <= 64 {
				var mask uint64
				for _, c := range clauses {
					mask |= 1 << clausePos[c]
				}
				if bits.OnesCount64(mask) < need {
					return
				}
			} else {
				seen := make([]bool, need) //falcon:allow hotalloc — >64-clause fallback
				distinct := 0
				for _, c := range clauses {
					if !seen[clausePos[c]] {
						seen[clausePos[c]] = true
						distinct++
					}
				}
				if distinct < need {
					return
				}
			}
			p := unpairKey(key)
			ctx.AddCost(evalCost)
			ctx.Inc(counterEnumerated, 1)
			if in.keepPair(p) {
				ctx.Output(p)
			}
		},
	}
	res, err := mapreduce.RunContext(ctx, cluster, job)
	if err != nil {
		return nil, err
	}
	return finish(res, s), nil
}

// runMapSide enumerates A×B with A held in mapper memory.
func (in *Input) runMapSide(ctx context.Context, cluster *mapreduce.Cluster, sink func(table.Pair)) (*Result, error) {
	if int64(in.A.Len())*int64(in.B.Len()) > baselinePairCap {
		return nil, ErrTooLarge
	}
	evalCost := in.evalCost()
	job := mapreduce.MapOnlyJob[int, table.Pair]{
		Name:   "apply-blocking-rules/map-side",
		Sink:   sink,
		Splits: in.bRows(cluster),
		Map: func(bRow int, ctx *mapreduce.MapOnlyCtx[table.Pair]) {
			for a := 0; a < in.A.Len(); a++ {
				p := table.Pair{A: a, B: bRow}
				ctx.AddCost(evalCost)
				ctx.Inc(counterEnumerated, 1)
				if in.keepPair(p) {
					ctx.Output(p)
				}
			}
		},
	}
	res, err := mapreduce.RunMapOnlyContext(ctx, cluster, job)
	if err != nil {
		return nil, err
	}
	return finish(res, MapSide), nil
}

// runReduceSplit enumerates A×B in the mappers, spreading evaluation evenly
// over the reducers.
func (in *Input) runReduceSplit(ctx context.Context, cluster *mapreduce.Cluster, sink func(table.Pair)) (*Result, error) {
	if int64(in.A.Len())*int64(in.B.Len()) > baselinePairCap {
		return nil, ErrTooLarge
	}
	bw := in.bWeight()
	evalCost := in.evalCost()
	job := mapreduce.Job[int, int64, struct{}, table.Pair]{
		Name:   "apply-blocking-rules/reduce-split",
		Sink:   sink,
		Splits: in.bRows(cluster),
		Map: func(bRow int, ctx *mapreduce.MapCtx[int64, struct{}]) {
			for a := 0; a < in.A.Len(); a++ {
				ctx.Emit(pairKey(int32(a), int32(bRow)), struct{}{})
				ctx.AddCost(bw)
			}
		},
		Reduce: func(key int64, _ []struct{}, ctx *mapreduce.ReduceCtx[table.Pair]) {
			p := unpairKey(key)
			ctx.AddCost(evalCost)
			ctx.Inc(counterEnumerated, 1)
			if in.keepPair(p) {
				ctx.Output(p)
			}
		},
	}
	res, err := mapreduce.RunContext(ctx, cluster, job)
	if err != nil {
		return nil, err
	}
	return finish(res, ReduceSplit), nil
}

func finish(res *mapreduce.Result[table.Pair], s Strategy) *Result {
	out := &Result{
		Pairs:           res.Output,
		SimTime:         res.Stats.SimTime,
		Strategy:        s,
		PairsEnumerated: res.Stats.Counters[counterEnumerated],
	}
	sortPairs(out.Pairs)
	return out
}

func pairKey(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

func unpairKey(k int64) table.Pair {
	return table.Pair{A: int(k >> 32), B: int(int32(uint32(k)))}
}

func sortPairs(ps []table.Pair) {
	slices.SortFunc(ps, func(x, y table.Pair) int {
		if c := cmp.Compare(x.A, y.A); c != 0 {
			return c
		}
		return cmp.Compare(x.B, y.B)
	})
}

// greedyRatio is the §10.1 threshold: when the most selective conjunct is
// at least this close to the whole rule's selectivity, apply-greedy wins.
const greedyRatio = 0.8

// Choose picks the physical operator per §10.1's decision ladder. seqSel is
// the whole sequence's selectivity (sel(Q)); ClauseSel must be populated.
func Choose(cluster *mapreduce.Cluster, in *Input, seqSel float64) Strategy {
	mem := cluster.MapperMemory
	if mem <= 0 {
		mem = 2 << 30
	}
	ci := in.mostSelectiveClause()
	if ci >= 0 {
		selC := in.ClauseSel[ci]
		if selC > 0 && seqSel/selC > greedyRatio && MemoryNeed(in, ApplyGreedy) <= mem {
			return ApplyGreedy
		}
		if MemoryNeed(in, ApplyAll) <= mem {
			return ApplyAll
		}
		if MemoryNeed(in, ApplyConjunct) <= mem {
			return ApplyConjunct
		}
		if MemoryNeed(in, ApplyPredicate) <= mem {
			return ApplyPredicate
		}
	}
	if MemoryNeed(in, MapSide) <= mem {
		return MapSide
	}
	return ReduceSplit
}

// MemoryNeed estimates the per-mapper memory requirement of each strategy
// (§10.1's selection ladder).
func MemoryNeed(in *Input, s Strategy) int64 {
	switch s {
	case ApplyAll:
		var total int64
		for _, spec := range in.Analysis.NeededIndexes() {
			total += in.Indexes.SpecBytes(spec)
		}
		return total
	case ApplyGreedy:
		ci := in.mostSelectiveClause()
		if ci < 0 {
			return 0
		}
		return in.Indexes.ClauseBytes(in.Analysis.Clauses[ci])
	case ApplyConjunct:
		var max int64
		for _, ci := range in.Analysis.FilterableClauses() {
			if b := in.Indexes.ClauseBytes(in.Analysis.Clauses[ci]); b > max {
				max = b
			}
		}
		return max
	case ApplyPredicate:
		var max int64
		for _, ci := range in.Analysis.FilterableClauses() {
			for _, bp := range in.Analysis.Clauses[ci].Preds {
				if bp.Kind == filters.Unfilterable {
					continue
				}
				ciOnly := filters.ClauseInfo{Preds: []filters.BoundPred{bp}, Filterable: true}
				if b := in.Indexes.ClauseBytes(ciOnly); b > max {
					max = b
				}
			}
		}
		return max
	case MapSide:
		return TableBytes(in.A)
	case ReduceSplit:
		return 0
	default:
		return 0
	}
}
