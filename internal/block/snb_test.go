package block

import (
	"fmt"
	"testing"

	"falcon/internal/table"
)

func snbTables() (*table.Table, *table.Table) {
	a := table.New("A", table.NewSchema("title"))
	b := table.New("B", table.NewSchema("title"))
	titles := []string{"alpha beta", "beta gamma", "delta epsilon", "zeta eta", "theta iota"}
	for _, t := range titles {
		a.Append(t)
	}
	// B holds word-order variants plus one stranger.
	b.Append("beta alpha")
	b.Append("gamma beta")
	b.Append("epsilon delta")
	b.Append("unrelated entirely")
	b.Append("")
	a.InferTypes()
	b.InferTypes()
	return a, b
}

func TestSNBFindsReorderedMatches(t *testing.T) {
	a, b := snbTables()
	pairs := SortedNeighborhood(a, b, 0, 0, 1)
	got := map[table.Pair]bool{}
	for _, p := range pairs {
		got[p] = true
	}
	// Word-order variants sort adjacently, so window 1 finds them.
	for _, want := range []table.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}} {
		if !got[want] {
			t.Fatalf("window-1 SNB missed %v (pairs: %v)", want, pairs)
		}
	}
}

func TestSNBWindowGrowsCandidates(t *testing.T) {
	a, b := snbTables()
	n1 := len(SortedNeighborhood(a, b, 0, 0, 1))
	n3 := len(SortedNeighborhood(a, b, 0, 0, 3))
	nBig := len(SortedNeighborhood(a, b, 0, 0, 100))
	if !(n1 <= n3 && n3 <= nBig) {
		t.Fatalf("window growth not monotone: %d %d %d", n1, n3, nBig)
	}
	// A full-width window covers every non-missing cross pair.
	if nBig != a.Len()*4 { // B has one missing-title row
		t.Fatalf("full window = %d pairs, want %d", nBig, a.Len()*4)
	}
}

func TestSNBSkipsMissingAndClampWindow(t *testing.T) {
	a, b := snbTables()
	pairs := SortedNeighborhood(a, b, 0, 0, 0) // clamps to 1
	for _, p := range pairs {
		if b.Value(p.B, 0) == "" {
			t.Fatal("missing-key tuple produced candidates")
		}
	}
}

func TestSNBDeterministicAndSorted(t *testing.T) {
	a, b := snbTables()
	p1 := SortedNeighborhood(a, b, 0, 0, 2)
	p2 := SortedNeighborhood(a, b, 0, 0, 2)
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic order")
		}
		if i > 0 && (p1[i-1].A > p1[i].A || (p1[i-1].A == p1[i].A && p1[i-1].B >= p1[i].B)) {
			t.Fatal("not sorted")
		}
	}
}

func TestSNBScales(t *testing.T) {
	a := table.New("A", table.NewSchema("k"))
	b := table.New("B", table.NewSchema("k"))
	for i := 0; i < 3000; i++ {
		a.Append(fmt.Sprintf("key%06d", i))
		b.Append(fmt.Sprintf("key%06d", i))
	}
	a.InferTypes()
	b.InferTypes()
	pairs := SortedNeighborhood(a, b, 0, 0, 2)
	// Window 2 on identical sorted keys: ~2 candidates per tuple, and the
	// true match (i,i) is always adjacent.
	found := 0
	seen := map[table.Pair]bool{}
	for _, p := range pairs {
		seen[p] = true
	}
	for i := 0; i < 3000; i++ {
		if seen[table.Pair{A: i, B: i}] {
			found++
		}
	}
	if found != 3000 {
		t.Fatalf("exact-key SNB found %d/3000 matches", found)
	}
	if len(pairs) > 3000*4 {
		t.Fatalf("candidate blowup: %d", len(pairs))
	}
}
