package block

import (
	"context"
	"testing"

	"falcon/internal/datagen"
	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/mapreduce"
	"falcon/internal/rules"
)

// blockingBenchInput builds the full blocking stack over the synthetic
// Products dataset: generated features, a realistic two-rule sequence,
// filter analysis, and warm indexes. reference selects the retired
// string-based probe/vector path and idsOnly pins the sorted-merge ID
// kernels, so `-bench BenchmarkBlocking` reports the retired string path,
// the PR-3 merge baseline, and the bit-parallel default from one binary.
func blockingBenchInput(b *testing.B, reference, idsOnly bool) *Input {
	b.Helper()
	ds := datagen.Products(0.05, 3)
	set := feature.Generate(ds.A, ds.B)
	feats := make([]*feature.Feature, len(set.BlockingIdx))
	for i, idx := range set.BlockingIdx {
		feats[i] = &set.Features[idx]
	}
	pos := func(name string) int {
		for i, f := range feats {
			if f.Name == name {
				return i
			}
		}
		b.Fatalf("feature %s missing", name)
		return -1
	}
	seq := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: pos("jaccard_word(title)"), Op: rules.LE, Value: 0.4}}},
		{ID: 1, Preds: []rules.Predicate{
			{Feature: pos("exact_match(modelno)"), Op: rules.LE, Value: 0.5},
			{Feature: pos("abs_diff(price)"), Op: rules.GE, Value: 15},
		}},
	}
	an := filters.Analyze(rules.ToCNF(seq), feats)
	ix := filters.NewIndexes(mapreduce.Default(), ds.A)
	ix.Reference = reference
	if _, err := ix.EnsureAll(context.Background(), an.NeededIndexes()); err != nil {
		b.Fatal(err)
	}
	vz := feature.NewVectorizer(set, ds.A, ds.B)
	vz.Reference = reference
	vz.IDsOnly = idsOnly
	vz.Warm()
	return &Input{
		A: ds.A, B: ds.B,
		Analysis:   an,
		Indexes:    ix,
		Vectorizer: vz,
		ClauseSel:  []float64{0.3, 0.7},
	}
}

// BenchmarkBlocking measures end-to-end apply_blocking_rules throughput
// (probe + rule evaluation through the in-process engine) on the
// bit-parallel default versus the sorted-merge ID baseline and the retired
// string path.
func BenchmarkBlocking(b *testing.B) {
	for _, mode := range []struct {
		name      string
		reference bool
		idsOnly   bool
	}{{"reference", true, false}, {"ids", false, true}, {"bitparallel", false, false}} {
		b.Run(mode.name, func(b *testing.B) {
			in := blockingBenchInput(b, mode.reference, mode.idsOnly)
			cluster := mapreduce.Default()
			ctx := context.Background()
			// One untimed run warms every column cache and index.
			if _, err := Run(ctx, cluster, in, ApplyAll); err != nil {
				b.Fatal(err)
			}
			crossSize := float64(in.A.Len()) * float64(in.B.Len())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(ctx, cluster, in, ApplyAll); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(crossSize*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}
