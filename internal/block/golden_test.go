package block

import (
	"context"
	"math"
	"testing"

	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/mapreduce"
	"falcon/internal/rules"
	"falcon/internal/table"
)

// The dictionary-encoded token pipeline and the bit-parallel kernels must be
// invisible in every output: candidate pairs, feature vectors, modeled
// SimTime, and engine counters have to match the retired string-based path
// bit for bit, for every physical operator and any worker count. These
// golden tests prove it by running each strategy under six configurations —
// bit-parallel path (the default), sorted-merge ID path (IDsOnly), and
// reference path, each at Workers=1 and Workers=8 — and deep-comparing the
// results. (Plan-template coverage lives in core's worker-invariance tests,
// which run both Figure-3 templates end-to-end on the default path.)

// goldenInput builds a fresh Input over shared tables so per-config column
// caches cannot leak between the reference and ID paths.
func goldenInput(t *testing.T, a, b *table.Table, set *feature.Set, reference, idsOnly bool) *Input {
	t.Helper()
	feats := make([]*feature.Feature, len(set.BlockingIdx))
	for i, idx := range set.BlockingIdx {
		feats[i] = &set.Features[idx]
	}
	pos := func(name string) int {
		for i, f := range feats {
			if f.Name == name {
				return i
			}
		}
		t.Fatalf("feature %s missing", name)
		return -1
	}
	seq := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: pos("jaccard_word(title)"), Op: rules.LE, Value: 0.4}}},
		{ID: 1, Preds: []rules.Predicate{
			{Feature: pos("exact_match(year)"), Op: rules.LE, Value: 0.5},
			{Feature: pos("abs_diff(price)"), Op: rules.GE, Value: 15},
		}},
	}
	an := filters.Analyze(rules.ToCNF(seq), feats)
	ix := filters.NewIndexes(mapreduce.Default(), a)
	ix.Reference = reference
	if _, err := ix.EnsureAll(context.Background(), an.NeededIndexes()); err != nil {
		t.Fatal(err)
	}
	vz := feature.NewVectorizer(set, a, b)
	vz.Reference = reference
	vz.IDsOnly = idsOnly
	return &Input{
		A: a, B: b,
		Analysis:   an,
		Indexes:    ix,
		Vectorizer: vz,
		ClauseSel:  []float64{0.3, 0.7},
	}
}

func TestGoldenStringVsIDPathAllStrategies(t *testing.T) {
	a, bt := mkTables(120, 80, 11)
	set := feature.Generate(a, bt)
	configs := []struct {
		name      string
		reference bool
		idsOnly   bool
		workers   int
	}{
		{"bitparallel-w1", false, false, 1},
		{"bitparallel-w8", false, false, 8},
		{"idsonly-w1", false, true, 1},
		{"idsonly-w8", false, true, 8},
		{"reference-w1", true, false, 1},
		{"reference-w8", true, false, 8},
	}
	for _, s := range []Strategy{ApplyAll, ApplyGreedy, ApplyConjunct, ApplyPredicate, MapSide, ReduceSplit} {
		var base *Result
		var baseName string
		for _, cfg := range configs {
			in := goldenInput(t, a, bt, set, cfg.reference, cfg.idsOnly)
			cluster := mapreduce.Default()
			cluster.Workers = cfg.workers
			res, err := Run(context.Background(), cluster, in, s)
			if err != nil {
				t.Fatalf("%v/%s: %v", s, cfg.name, err)
			}
			if base == nil {
				base, baseName = res, cfg.name
				if len(res.Pairs) == 0 {
					t.Fatalf("%v/%s: degenerate fixture, no candidates", s, cfg.name)
				}
				continue
			}
			if len(res.Pairs) != len(base.Pairs) {
				t.Fatalf("%v: %s has %d pairs, %s has %d", s, cfg.name, len(res.Pairs), baseName, len(base.Pairs))
			}
			for i := range res.Pairs {
				if res.Pairs[i] != base.Pairs[i] {
					t.Fatalf("%v: %s pair[%d]=%v, %s has %v", s, cfg.name, i, res.Pairs[i], baseName, base.Pairs[i])
				}
			}
			if res.SimTime != base.SimTime {
				t.Fatalf("%v: %s SimTime=%v, %s SimTime=%v", s, cfg.name, res.SimTime, baseName, base.SimTime)
			}
			if res.PairsEnumerated != base.PairsEnumerated {
				t.Fatalf("%v: %s enumerated %d, %s enumerated %d", s, cfg.name, res.PairsEnumerated, baseName, base.PairsEnumerated)
			}
		}
	}
}

// TestGoldenVectorsStringVsIDPath proves bit-identical feature vectors —
// the full matching-stage feature space, not just the blocking subset —
// between the reference evaluator, the sorted-merge ID evaluator, and the
// bit-parallel evaluator.
func TestGoldenVectorsStringVsIDPath(t *testing.T) {
	a, bt := mkTables(90, 60, 12)
	set := feature.Generate(a, bt)
	ref := feature.NewVectorizer(set, a, bt)
	ref.Reference = true
	ids := feature.NewVectorizer(set, a, bt)
	ids.IDsOnly = true
	ids.Warm()
	bp := feature.NewVectorizer(set, a, bt)
	bp.Warm()
	for ai := 0; ai < a.Len(); ai += 3 {
		for bi := 0; bi < bt.Len(); bi += 2 {
			p := table.Pair{A: ai, B: bi}
			rv, iv, pv := ref.Vector(p), ids.Vector(p), bp.Vector(p)
			if len(rv.Values) != len(iv.Values) || len(rv.Values) != len(pv.Values) {
				t.Fatalf("%v: vector lengths differ: %d vs %d vs %d", p, len(rv.Values), len(iv.Values), len(pv.Values))
			}
			for k := range rv.Values {
				if math.Float64bits(rv.Values[k]) != math.Float64bits(iv.Values[k]) {
					t.Fatalf("%v: feature %q = %v (reference) vs %v (ids)", p, set.Features[k].Name, rv.Values[k], iv.Values[k])
				}
				if math.Float64bits(rv.Values[k]) != math.Float64bits(pv.Values[k]) {
					t.Fatalf("%v: feature %q = %v (reference) vs %v (bitparallel)", p, set.Features[k].Name, rv.Values[k], pv.Values[k])
				}
			}
			rb, ib, pb := ref.BlockingVector(p), ids.BlockingVector(p), bp.BlockingVector(p)
			for k := range rb.Values {
				if math.Float64bits(rb.Values[k]) != math.Float64bits(ib.Values[k]) ||
					math.Float64bits(rb.Values[k]) != math.Float64bits(pb.Values[k]) {
					t.Fatalf("%v: blocking feature %d = %v vs %v vs %v", p, k, rb.Values[k], ib.Values[k], pb.Values[k])
				}
			}
		}
	}
}
