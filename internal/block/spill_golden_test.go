package block

import (
	"context"
	"os"
	"testing"

	"falcon/internal/feature"
	"falcon/internal/mapreduce"
	"falcon/internal/table"
)

// TestGoldenSpillAllStrategies is the out-of-core acceptance matrix: every
// strategy, at workers 1 and 8, with a tiny spill threshold (every few
// shuffle records hit disk) and with no threshold, must produce
// byte-identical pairs, SimTime, and enumeration counters — and leave
// nothing behind in the spill directory.
func TestGoldenSpillAllStrategies(t *testing.T) {
	a, bt := mkTables(120, 80, 11)
	set := feature.Generate(a, bt)
	configs := []struct {
		name    string
		spill   int
		workers int
	}{
		{"inmemory-w1", 0, 1},
		{"inmemory-w8", 0, 8},
		{"spill3-w1", 3, 1},
		{"spill3-w8", 3, 8},
		{"spill64-w8", 64, 8},
	}
	for _, s := range []Strategy{ApplyAll, ApplyGreedy, ApplyConjunct, ApplyPredicate, MapSide, ReduceSplit} {
		var base *Result
		var baseName string
		for _, cfg := range configs {
			in := goldenInput(t, a, bt, set, false, false)
			cluster := mapreduce.Default()
			cluster.Workers = cfg.workers
			cluster.SpillRecords = cfg.spill
			cluster.SpillDir = t.TempDir()
			res, err := Run(context.Background(), cluster, in, s)
			if err != nil {
				t.Fatalf("%v/%s: %v", s, cfg.name, err)
			}
			if ents := spillDirEntries(t, cluster.SpillDir); ents != 0 {
				t.Fatalf("%v/%s: %d leftover spill entries", s, cfg.name, ents)
			}
			if base == nil {
				base, baseName = res, cfg.name
				if len(res.Pairs) == 0 {
					t.Fatalf("%v/%s: degenerate fixture, no candidates", s, cfg.name)
				}
				continue
			}
			if len(res.Pairs) != len(base.Pairs) {
				t.Fatalf("%v: %s has %d pairs, %s has %d", s, cfg.name, len(res.Pairs), baseName, len(base.Pairs))
			}
			for i := range res.Pairs {
				if res.Pairs[i] != base.Pairs[i] {
					t.Fatalf("%v: %s pair[%d]=%v, %s has %v", s, cfg.name, i, res.Pairs[i], baseName, base.Pairs[i])
				}
			}
			if res.SimTime != base.SimTime {
				t.Fatalf("%v: %s SimTime=%v, %s SimTime=%v", s, cfg.name, res.SimTime, baseName, base.SimTime)
			}
			if res.PairsEnumerated != base.PairsEnumerated {
				t.Fatalf("%v: %s enumerated %d, %s enumerated %d", s, cfg.name, res.PairsEnumerated, baseName, base.PairsEnumerated)
			}
		}
	}
}

func spillDirEntries(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestRunStreamMatchesRun checks the streaming sink delivers exactly the
// candidate set Run materializes — same pairs once sorted, same SimTime and
// counters — under both execution modes.
func TestRunStreamMatchesRun(t *testing.T) {
	a, bt := mkTables(100, 70, 13)
	set := feature.Generate(a, bt)
	for _, s := range []Strategy{ApplyAll, ApplyConjunct, MapSide, ReduceSplit} {
		in := goldenInput(t, a, bt, set, false, false)
		want, err := Run(context.Background(), mapreduce.Default(), in, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, spill := range []int{0, 5} {
			in := goldenInput(t, a, bt, set, false, false)
			cluster := mapreduce.Default()
			cluster.SpillRecords = spill
			cluster.SpillDir = t.TempDir()
			var got []table.Pair
			res, err := RunStream(context.Background(), cluster, in, s, func(p table.Pair) {
				got = append(got, p)
			})
			if err != nil {
				t.Fatalf("%v/spill=%d: %v", s, spill, err)
			}
			if res.Pairs != nil {
				t.Fatalf("%v/spill=%d: RunStream materialized Pairs", s, spill)
			}
			sortPairs(got)
			if len(got) != len(want.Pairs) {
				t.Fatalf("%v/spill=%d: streamed %d pairs, want %d", s, spill, len(got), len(want.Pairs))
			}
			for i := range got {
				if got[i] != want.Pairs[i] {
					t.Fatalf("%v/spill=%d: pair[%d]=%v, want %v", s, spill, i, got[i], want.Pairs[i])
				}
			}
			if res.SimTime != want.SimTime || res.PairsEnumerated != want.PairsEnumerated {
				t.Fatalf("%v/spill=%d: stats diverged", s, spill)
			}
		}
	}
}
