package simfn

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"falcon/internal/tokenize"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccard(t *testing.T) {
	a := []string{"the", "cat", "sat"}
	b := []string{"the", "cat", "ran"}
	if got := Jaccard(a, b); !almost(got, 0.5) {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	if Jaccard(nil, nil) != 0 {
		t.Fatal("Jaccard(empty,empty) should be 0")
	}
	if !almost(Jaccard(a, a), 1) {
		t.Fatal("Jaccard self should be 1")
	}
	if Jaccard(a, []string{"zzz"}) != 0 {
		t.Fatal("disjoint Jaccard should be 0")
	}
}

func TestDiceOverlapCosine(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"y", "z", "w"}
	if got := Dice(a, b); !almost(got, 2.0/5.0) {
		t.Fatalf("Dice = %v", got)
	}
	if got := Overlap(a, b); !almost(got, 0.5) {
		t.Fatalf("Overlap = %v", got)
	}
	if got := Cosine(a, b); !almost(got, 1/math.Sqrt(6)) {
		t.Fatalf("Cosine = %v", got)
	}
	if Dice(nil, nil) != 0 || Overlap(nil, b) != 0 || Cosine(a, nil) != 0 {
		t.Fatal("empty-set measures should be 0")
	}
}

func TestExactMatch(t *testing.T) {
	if ExactMatch("abc", "abc") != 1 {
		t.Fatal("equal should be 1")
	}
	if ExactMatch("abc", "abd") != 0 {
		t.Fatal("unequal should be 0")
	}
	if ExactMatch("", "") != 0 {
		t.Fatal("two missing values should be 0, not a match")
	}
}

func TestNumericDiffs(t *testing.T) {
	if !almost(AbsDiff(10, 3), 7) {
		t.Fatal("AbsDiff wrong")
	}
	if !almost(RelDiff(10, 5), 0.5) {
		t.Fatal("RelDiff wrong")
	}
	if RelDiff(0, 0) != 0 {
		t.Fatal("RelDiff(0,0) should be 0")
	}
	if !almost(RelDiff(-10, 10), 2) {
		t.Fatal("RelDiff with negatives wrong")
	}
}

func TestLevenshteinDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"日本語", "日本", 1},
	}
	for _, c := range cases {
		if got := LevenshteinDistance(c.a, c.b); got != c.want {
			t.Errorf("LevenshteinDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if !almost(Levenshtein("abcd", "abcd"), 1) {
		t.Fatal("self similarity should be 1")
	}
	if !almost(Levenshtein("abcd", "abce"), 0.75) {
		t.Fatal("one edit of four should be 0.75")
	}
	if Levenshtein("", "") != 0 {
		t.Fatal("two empties should be 0")
	}
}

func TestJaro(t *testing.T) {
	// Classic textbook values.
	if got := Jaro("martha", "marhta"); !almost(got, 0.9444444444444445) {
		t.Fatalf("Jaro(martha,marhta) = %v", got)
	}
	if got := Jaro("dixon", "dicksonx"); !almost(got, 0.7666666666666666) {
		t.Fatalf("Jaro(dixon,dicksonx) = %v", got)
	}
	if Jaro("", "abc") != 0 || Jaro("abc", "") != 0 {
		t.Fatal("empty Jaro should be 0")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Fatal("no-match Jaro should be 0")
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); !almost(got, 0.9611111111111111) {
		t.Fatalf("JaroWinkler(martha,marhta) = %v", got)
	}
	// Prefix boost caps at 4 characters.
	a, b := "abcdefgh", "abcdxyzw"
	j := Jaro(a, b)
	if got := JaroWinkler(a, b); !almost(got, j+0.4*(1-j)) {
		t.Fatalf("prefix cap wrong: %v", got)
	}
}

func TestMongeElkan(t *testing.T) {
	a := []string{"paul", "johnson"}
	b := []string{"johson", "paule"}
	got := MongeElkan(a, b)
	if got <= 0.9 || got > 1 {
		t.Fatalf("MongeElkan = %v, want high", got)
	}
	if MongeElkan(nil, b) != 0 {
		t.Fatal("empty MongeElkan should be 0")
	}
	if !almost(MongeElkan(a, a), 1) {
		t.Fatal("self MongeElkan should be 1")
	}
}

func TestAlignments(t *testing.T) {
	for name, fn := range map[string]func(a, b string) float64{
		"nw":  NeedlemanWunsch,
		"sw":  SmithWaterman,
		"swg": SmithWatermanGotoh,
	} {
		if got := fn("match", "match"); !almost(got, 1) {
			t.Errorf("%s self = %v, want 1", name, got)
		}
		if got := fn("", "x"); got != 0 {
			t.Errorf("%s empty = %v, want 0", name, got)
		}
		got := fn("aaaa", "zzzz")
		if got < 0 || got > 0.2 {
			t.Errorf("%s disjoint = %v, want ~0", name, got)
		}
	}
	// Local alignment finds the common substring regardless of prefix junk.
	if got := SmithWaterman("xxxhello", "yyhello"); got < 0.6 {
		t.Errorf("SmithWaterman local = %v, want high", got)
	}
	if got := SmithWatermanGotoh("xxxhello", "yyhello"); got < 0.6 {
		t.Errorf("SmithWatermanGotoh local = %v, want high", got)
	}
}

func TestTFIDF(t *testing.T) {
	c := NewCorpus()
	c.AddDoc([]string{"the", "big", "red", "dog"})
	c.AddDoc([]string{"the", "small", "cat"})
	c.AddDoc([]string{"the", "red", "fox"})
	if c.Docs() != 3 {
		t.Fatalf("Docs = %d", c.Docs())
	}
	// "the" appears everywhere → low IDF; "dog" once → high IDF.
	if c.IDF("the") >= c.IDF("dog") {
		t.Fatal("IDF ordering wrong")
	}
	self := c.TFIDF([]string{"red", "dog"}, []string{"red", "dog"})
	if !almost(self, 1) {
		t.Fatalf("TFIDF self = %v", self)
	}
	rare := c.TFIDF([]string{"red", "dog"}, []string{"red", "cat"})
	common := c.TFIDF([]string{"the", "dog"}, []string{"the", "cat"})
	if rare <= common {
		t.Fatalf("rare-token overlap (%v) should beat common-token overlap (%v)", rare, common)
	}
	if c.TFIDF(nil, []string{"x"}) != 0 {
		t.Fatal("empty TFIDF should be 0")
	}
}

func TestSoftTFIDF(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 5; i++ {
		c.AddDoc([]string{"company", "records", "international"})
	}
	hard := c.TFIDF([]string{"internatioal", "records"}, []string{"international", "records"})
	soft := c.SoftTFIDF([]string{"internatioal", "records"}, []string{"international", "records"})
	if soft <= hard {
		t.Fatalf("SoftTFIDF (%v) should exceed TFIDF (%v) on typo'd token", soft, hard)
	}
	if soft > 1 {
		t.Fatalf("SoftTFIDF = %v > 1", soft)
	}
	if c.SoftTFIDF(nil, []string{"x"}) != 0 {
		t.Fatal("empty SoftTFIDF should be 0")
	}
}

func TestEmptyCorpusIDF(t *testing.T) {
	if NewCorpus().IDF("x") != 0 {
		t.Fatal("empty corpus IDF should be 0")
	}
}

func TestMeasureMetadata(t *testing.T) {
	if MJaccard.String() != "jaccard" || MSoftTFIDF.String() != "soft_tfidf" {
		t.Fatal("Measure names wrong")
	}
	if Measure(99).String() != "measure(99)" {
		t.Fatal("unknown measure name wrong")
	}
	if !MJaccard.SetBased() || MLevenshtein.SetBased() {
		t.Fatal("SetBased wrong")
	}
	if !MAbsDiff.NumericBased() || MJaccard.NumericBased() {
		t.Fatal("NumericBased wrong")
	}
	if !MTFIDF.CorpusBased() || MJaccard.CorpusBased() {
		t.Fatal("CorpusBased wrong")
	}
	if !MAbsDiff.Distance() || MJaccard.Distance() {
		t.Fatal("Distance wrong")
	}
	blockable := 0
	for m := Measure(0); m < numMeasures; m++ {
		if m.Blockable() {
			blockable++
		}
	}
	if blockable != 8 {
		t.Fatalf("paper says eight blockable measures, got %d", blockable)
	}
}

// Property: all normalized similarities stay within [0,1] and are symmetric.
func TestQuickBoundsAndSymmetry(t *testing.T) {
	strFns := map[string]func(a, b string) float64{
		"levenshtein": Levenshtein,
		"jaro":        Jaro,
		"jarowinkler": JaroWinkler,
		"nw":          NeedlemanWunsch,
		"sw":          SmithWaterman,
		"swg":         SmithWatermanGotoh,
	}
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		for name, fn := range strFns {
			ab, ba := fn(a, b), fn(b, a)
			if ab < -1e-9 || ab > 1+1e-9 {
				t.Logf("%s(%q,%q) = %v out of bounds", name, a, b, ab)
				return false
			}
			if name != "sw" && name != "swg" && name != "nw" && !almost(ab, ba) {
				t.Logf("%s asymmetric: %v vs %v", name, ab, ba)
				return false
			}
		}
		ta, tb := tokenize.WordSet(a), tokenize.WordSet(b)
		for name, fn := range map[string]func(x, y []string) float64{
			"jaccard": Jaccard, "dice": Dice, "overlap": Overlap, "cosine": Cosine,
		} {
			v := fn(ta, tb)
			if v < 0 || v > 1+1e-9 || !almost(v, fn(tb, ta)) {
				t.Logf("%s out of bounds or asymmetric: %v", name, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaccard ≤ Dice ≤ Overlap for non-empty sets (standard ordering).
func TestQuickSetMeasureOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		pick := func() []string {
			var s []string
			for _, v := range vocab {
				if rng.Intn(2) == 0 {
					s = append(s, v)
				}
			}
			return s
		}
		a, b := pick(), pick()
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		j, d, o := Jaccard(a, b), Dice(a, b), Overlap(a, b)
		return j <= d+1e-9 && d <= o+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Levenshtein distance satisfies the triangle inequality.
func TestQuickLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		trim := func(s string) string {
			if len(s) > 12 {
				return s[:12]
			}
			return s
		}
		a, b, c = trim(a), trim(b), trim(c)
		return LevenshteinDistance(a, c) <= LevenshteinDistance(a, b)+LevenshteinDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJaccardWord(b *testing.B) {
	x := tokenize.WordSet(strings.Repeat("alpha beta gamma delta epsilon ", 4))
	y := tokenize.WordSet(strings.Repeat("beta gamma zeta eta theta ", 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Jaccard(x, y)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("international business machines", "internatioal busines machine")
	}
}

func BenchmarkSmithWatermanGotoh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SmithWatermanGotoh("international business machines", "internatioal busines machine")
	}
}
