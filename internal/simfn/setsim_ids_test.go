package simfn

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// randomIDSet returns a sorted set of n distinct IDs drawn from [0, space).
func randomIDSet(rng *rand.Rand, n, space int) []uint32 {
	seen := map[uint32]bool{}
	out := make([]uint32, 0, n)
	for len(out) < n {
		id := uint32(rng.Intn(space))
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// idsToStrings maps an ID set to a string token set bijectively, so the
// string measures serve as the oracle for the ID measures.
func idsToStrings(ids []uint32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(rune('A'+id/1000)) + string(rune('a'+(id/26)%26)) + string(rune('a'+id%26))
	}
	return out
}

// TestIDSetMeasuresMatchStringMeasures cross-checks every ID-set measure
// against its string oracle on random sorted sets, including gallop-sized
// imbalance and empty sets.
func TestIDSetMeasuresMatchStringMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][2]int{{0, 0}, {0, 7}, {3, 3}, {5, 80}, {64, 64}, {2, 200}, {17, 40}}
	for _, sh := range shapes {
		for trial := 0; trial < 25; trial++ {
			a := randomIDSet(rng, sh[0], 400)
			b := randomIDSet(rng, sh[1], 400)
			sa, sb := idsToStrings(a), idsToStrings(b)
			checks := []struct {
				name     string
				got, ref float64
			}{
				{"jaccard", JaccardIDs(a, b), Jaccard(sa, sb)},
				{"dice", DiceIDs(a, b), Dice(sa, sb)},
				{"overlap", OverlapSimIDs(a, b), Overlap(sa, sb)},
				{"cosine", CosineIDs(a, b), Cosine(sa, sb)},
			}
			for _, c := range checks {
				if math.Float64bits(c.got) != math.Float64bits(c.ref) {
					t.Fatalf("%s(|a|=%d,|b|=%d) = %v, string path = %v", c.name, len(a), len(b), c.got, c.ref)
				}
			}
		}
	}
}

// TestJaccardIDsAllocs pins the zero-allocation contract of the ID-set hot
// path, for both the linear merge and the galloping probe.
func TestJaccardIDsAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	small := randomIDSet(rng, 4, 4000)
	a := randomIDSet(rng, 60, 4000)
	b := randomIDSet(rng, 70, 4000)
	var sink float64
	if n := testing.AllocsPerRun(100, func() { sink += JaccardIDs(a, b) }); n != 0 {
		t.Fatalf("JaccardIDs (merge) allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { sink += JaccardIDs(small, b) }); n != 0 {
		t.Fatalf("JaccardIDs (gallop) allocates %.1f objects/op, want 0", n)
	}
	_ = sink
}

func BenchmarkJaccard(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randomIDSet(rng, 12, 5000)
	y := randomIDSet(rng, 14, 5000)
	sx, sy := idsToStrings(x), idsToStrings(y)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Jaccard(sx, sy)
		}
	})
	b.Run("ids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			JaccardIDs(x, y)
		}
	})
}
