package simfn

import "unicode/utf8"

// Myers' 1999 bit-vector edit distance (in Hyyrö's 2001 formulation): the
// DP matrix's vertical deltas are kept in two machine words (Pv = +1 runs,
// Mv = −1 runs), and each text character advances a whole DP column in O(1)
// word operations, for O(⌈m/64⌉·n) total instead of the rolling-row DP's
// O(m·n). The pattern is always the shorter string, so one 64-bit word
// covers every pair whose shorter side has ≤ 64 characters; longer pairs
// fall back to the pooled-row DP. Both paths compute the exact distance, so
// the normalized similarity 1 − d/max(|a|,|b|) is bit-identical to the
// reference DP: d and the lengths are integers, and the final float division
// is the same expression either way.

// myersMaxPattern is the exact-dispatch threshold: the bit-vector kernel
// runs when the shorter string fits one 64-bit word.
const myersMaxPattern = 64

// isASCII reports whether s contains only single-byte (ASCII) characters,
// in which case bytes and runes coincide and Peq indexes bytes directly.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// myersCore advances the Hyyrö bit-vector recurrence over one text
// character. peqc is the pattern-match word for that character, hbit the
// mask of the pattern's last row. It returns the updated (Pv, Mv, score).
// Kept as a free function so the ASCII and rune drivers share one copy of
// the arithmetic.
func myersCore(peqc, pv, mv, hbit uint64, score int) (uint64, uint64, int) {
	xv := peqc | mv
	xh := (((peqc & pv) + pv) ^ pv) | peqc
	ph := mv | ^(xh | pv)
	mh := pv & xh
	if ph&hbit != 0 {
		score++
	} else if mh&hbit != 0 {
		score--
	}
	// Shift the horizontal deltas down one row; the +1 on Ph encodes the
	// first column's boundary (D[i][0] = i).
	ph = ph<<1 | 1
	mh <<= 1
	pv = mh | ^(xv | ph)
	mv = ph & xv
	return pv, mv, score
}

// myersASCII returns the edit distance for pure-ASCII strings with
// 1 ≤ len(pattern) ≤ 64. Pattern bitmasks live in the pooled Scratch's peq
// table and are cleared per-pattern-byte on exit, so the kernel neither
// allocates nor pays a table-wide wipe.
func (s *Scratch) myersASCII(pattern, text string) int {
	m := len(pattern)
	for i := 0; i < m; i++ {
		s.peq[pattern[i]] |= 1 << uint(i)
	}
	pv := ^uint64(0) >> uint(64-m)
	mv := uint64(0)
	hbit := uint64(1) << uint(m-1)
	score := m
	for i := 0; i < len(text); i++ {
		pv, mv, score = myersCore(s.peq[text[i]], pv, mv, hbit, score)
	}
	for i := 0; i < m; i++ {
		s.peq[pattern[i]] = 0
	}
	return score
}

// myersRunes returns the edit distance for rune slices with
// 1 ≤ len(pattern) ≤ 64. The pattern's match words are kept as a sorted
// (rune, mask) table in scratch slices — built by insertion (m ≤ 64), probed
// by binary search per text rune.
func (s *Scratch) myersRunes(pattern, text []rune) int {
	m := len(pattern)
	s.mr = s.mr[:0]
	s.mw = s.mw[:0]
	for i, r := range pattern {
		// Find r's slot (first index with mr[j] >= r).
		lo, hi := 0, len(s.mr)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.mr[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(s.mr) && s.mr[lo] == r {
			s.mw[lo] |= 1 << uint(i)
			continue
		}
		s.mr = append(s.mr, 0)
		s.mw = append(s.mw, 0)
		copy(s.mr[lo+1:], s.mr[lo:])
		copy(s.mw[lo+1:], s.mw[lo:])
		s.mr[lo] = r
		s.mw[lo] = 1 << uint(i)
	}
	pv := ^uint64(0) >> uint(64-m)
	mv := uint64(0)
	hbit := uint64(1) << uint(m-1)
	score := m
	for _, r := range text {
		var eq uint64
		lo, hi := 0, len(s.mr)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.mr[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(s.mr) && s.mr[lo] == r {
			eq = s.mw[lo]
		}
		pv, mv, score = myersCore(eq, pv, mv, hbit, score)
	}
	return score
}

// dpDistance is the rolling-row DP over prev/cur buffers (each of length
// len(rb)+1). It is the arithmetic both the package-level reference and the
// scratch fallback share, and the oracle the Myers fuzzers compare against.
func dpDistance(ra, rb []rune, prev, cur []int) int {
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
