// Package simfn implements the similarity functions Falcon uses for feature
// generation (paper Figure 5) and inside blocking-rule predicates (§7).
//
// Set-based measures (Jaccard, Dice, Overlap, Cosine) operate on token sets;
// sequence measures (Levenshtein, Jaro, Jaro-Winkler, Needleman-Wunsch,
// Smith-Waterman, Smith-Waterman-Gotoh, Monge-Elkan) operate on strings or
// word lists; numeric measures (exact match, absolute/relative difference)
// operate on parsed numbers. All similarity scores are in [0,1] except
// AbsDiff, which is an unbounded distance as in the paper's example rules
// ("abs_diff(a.price, b.price) >= 10").
package simfn

import "math"

// overlapCount returns |a ∩ b| for de-duplicated token slices.
func overlapCount(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	//falcon:allow hotalloc retired reference path; blocking uses the ID-set variants in setsim_ids.go
	set := make(map[string]struct{}, len(small))
	for _, t := range small {
		set[t] = struct{}{}
	}
	n := 0
	for _, t := range large {
		if _, ok := set[t]; ok {
			n++
		}
	}
	return n
}

// Jaccard returns |a∩b| / |a∪b| of two token sets. Two empty sets score 0,
// treating missing text as non-evidence of a match.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := overlapCount(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|a∩b| / (|a|+|b|).
func Dice(a, b []string) float64 {
	if len(a)+len(b) == 0 {
		return 0
	}
	return 2 * float64(overlapCount(a, b)) / float64(len(a)+len(b))
}

// Overlap returns |a∩b| / min(|a|,|b|).
func Overlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	return float64(overlapCount(a, b)) / float64(m)
}

// Cosine returns |a∩b| / sqrt(|a|·|b|) (the set-cosine of binary vectors).
func Cosine(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(overlapCount(a, b)) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// ExactMatch returns 1 if the normalized strings are equal and non-missing,
// else 0.
func ExactMatch(a, b string) float64 {
	if a == "" || b == "" {
		return 0
	}
	if a == b {
		return 1
	}
	return 0
}

// AbsDiff returns |x − y| (a distance, not a similarity).
func AbsDiff(x, y float64) float64 { return math.Abs(x - y) }

// RelDiff returns |x − y| / max(|x|, |y|), or 0 when both are 0.
func RelDiff(x, y float64) float64 {
	den := math.Max(math.Abs(x), math.Abs(y))
	if den == 0 {
		return 0
	}
	return math.Abs(x-y) / den
}
