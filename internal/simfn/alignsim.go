package simfn

// Alignment-based similarities (Needleman-Wunsch, Smith-Waterman, and
// Smith-Waterman-Gotoh) used for short-string features in Figure 5. All are
// normalized to [0,1] by dividing the alignment score by the best achievable
// score (match reward × shorter length, or longer length for global
// alignment), so they compose with the rest of the feature space.

const (
	alignMatch    = 1.0
	alignMismatch = -1.0
	alignGap      = -0.5
	gotohOpen     = -1.0
	gotohExtend   = -0.25
)

// NeedlemanWunsch returns the normalized global-alignment similarity.
func NeedlemanWunsch(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	prev := make([]float64, lb+1)
	cur := make([]float64, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = float64(j) * alignGap
	}
	for i := 1; i <= la; i++ {
		cur[0] = float64(i) * alignGap
		for j := 1; j <= lb; j++ {
			sub := alignMismatch
			if ra[i-1] == rb[j-1] {
				sub = alignMatch
			}
			best := prev[j-1] + sub
			if v := prev[j] + alignGap; v > best {
				best = v
			}
			if v := cur[j-1] + alignGap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	score := prev[lb]
	max := float64(la)
	if lb > la {
		max = float64(lb)
	}
	max *= alignMatch
	if score <= 0 {
		return 0
	}
	return score / max
}

// SmithWaterman returns the normalized local-alignment similarity with
// linear gap cost.
func SmithWaterman(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	prev := make([]float64, lb+1)
	cur := make([]float64, lb+1)
	best := 0.0
	for i := 1; i <= la; i++ {
		cur[0] = 0
		for j := 1; j <= lb; j++ {
			sub := alignMismatch
			if ra[i-1] == rb[j-1] {
				sub = alignMatch
			}
			v := prev[j-1] + sub
			if g := prev[j] + alignGap; g > v {
				v = g
			}
			if g := cur[j-1] + alignGap; g > v {
				v = g
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	min := la
	if lb < min {
		min = lb
	}
	return best / (alignMatch * float64(min))
}

// SmithWatermanGotoh returns the normalized local-alignment similarity with
// affine gap penalties (open/extend), per Gotoh's algorithm.
func SmithWatermanGotoh(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	negInf := -1e18
	// h: best score ending at (i,j); e: gap in a (horizontal); f: gap in b.
	hPrev := make([]float64, lb+1)
	hCur := make([]float64, lb+1)
	ePrev := make([]float64, lb+1)
	eCur := make([]float64, lb+1)
	for j := 0; j <= lb; j++ {
		ePrev[j] = negInf
	}
	best := 0.0
	for i := 1; i <= la; i++ {
		hCur[0] = 0
		eCur[0] = negInf
		f := negInf
		for j := 1; j <= lb; j++ {
			eCur[j] = maxf(ePrev[j]+gotohExtend, hPrev[j]+gotohOpen)
			f = maxf(f+gotohExtend, hCur[j-1]+gotohOpen)
			sub := alignMismatch
			if ra[i-1] == rb[j-1] {
				sub = alignMatch
			}
			h := maxf(0, maxf(hPrev[j-1]+sub, maxf(eCur[j], f)))
			hCur[j] = h
			if h > best {
				best = h
			}
		}
		hPrev, hCur = hCur, hPrev
		ePrev, eCur = eCur, ePrev
	}
	min := la
	if lb < min {
		min = lb
	}
	return best / (alignMatch * float64(min))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
