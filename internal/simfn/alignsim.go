package simfn

// Alignment-based similarities (Needleman-Wunsch, Smith-Waterman, and
// Smith-Waterman-Gotoh) used for short-string features in Figure 5. All are
// normalized to [0,1] by dividing the alignment score by the best achievable
// score (match reward × shorter length, or longer length for global
// alignment), so they compose with the rest of the feature space.

const (
	alignMatch    = 1.0
	alignMismatch = -1.0
	alignGap      = -0.5
	gotohOpen     = -1.0
	gotohExtend   = -0.25
)

// NeedlemanWunsch returns the normalized global-alignment similarity.
// Like the other package-level sequence measures it is a pooled-scratch
// wrapper: the DP rows come from the shared Scratch pool, not fresh slices.
func NeedlemanWunsch(a, b string) float64 {
	s := GetScratch()
	v := s.NeedlemanWunsch(a, b)
	PutScratch(s)
	return v
}

// SmithWaterman returns the normalized local-alignment similarity with
// linear gap cost.
func SmithWaterman(a, b string) float64 {
	s := GetScratch()
	v := s.SmithWaterman(a, b)
	PutScratch(s)
	return v
}

// SmithWatermanGotoh returns the normalized local-alignment similarity with
// affine gap penalties (open/extend), per Gotoh's algorithm.
func SmithWatermanGotoh(a, b string) float64 {
	s := GetScratch()
	v := s.SmithWatermanGotoh(a, b)
	PutScratch(s)
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
