package simfn

import (
	"math/rand"
	"strings"
	"testing"
)

// referenceEditDistance is the fresh-allocation rolling-row DP the Myers
// kernels are checked against.
func referenceEditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	return dpDistance(ra, rb, make([]int, len(rb)+1), make([]int, len(rb)+1))
}

func TestMyersKnownDistances(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
		{"abc", "abc", 0},
		{"a", "b", 1},
		{"日本語", "日本", 1},
		{"héllo", "hello", 1},
		// Exactly 64-character pattern (hbit = top bit).
		{strings.Repeat("a", 64), strings.Repeat("a", 63) + "b", 1},
		{strings.Repeat("a", 64), strings.Repeat("b", 64), 64},
		// Shorter side over 64 → DP fallback.
		{strings.Repeat("ab", 40), strings.Repeat("ba", 40), 2},
	}
	s := GetScratch()
	defer PutScratch(s)
	for _, c := range cases {
		if got := s.LevenshteinDistance(c.a, c.b); got != c.want {
			t.Errorf("scratch distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := LevenshteinDistance(c.a, c.b); got != c.want {
			t.Errorf("package distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := referenceEditDistance(c.a, c.b); got != c.want {
			t.Errorf("reference distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestMyersRandomDifferential drives the dispatcher across the ASCII path,
// the rune path, and the >64 DP fallback with random strings, comparing
// every answer to the reference DP. Reusing one Scratch across pairs also
// verifies the peq table is left clean between calls.
func TestMyersRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	alphabets := []string{
		"ab",
		"abcdefgh",
		"abcdefghijklmnopqrstuvwxyz0123456789 ",
		"aé日∆b",
	}
	s := GetScratch()
	defer PutScratch(s)
	randStr := func(alpha string, n int) string {
		runes := []rune(alpha)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(runes[rng.Intn(len(runes))])
		}
		return sb.String()
	}
	for trial := 0; trial < 600; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		// Lengths straddle the 64-char Myers/DP dispatch boundary.
		a := randStr(alpha, rng.Intn(90))
		b := randStr(alpha, rng.Intn(90))
		want := referenceEditDistance(a, b)
		if got := s.LevenshteinDistance(a, b); got != want {
			t.Fatalf("trial %d: distance(%q,%q) = %d, want %d", trial, a, b, got, want)
		}
	}
}

func TestPackedMeasuresMatchIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		universe := []int{80, 1000, 4096, 1 << 20}[trial%4]
		na, nb := rng.Intn(100), rng.Intn(100)
		if na > universe/2 {
			na = universe / 2
		}
		if nb > universe/2 {
			nb = universe / 2
		}
		a := randomIDSet(rng, na, universe)
		b := randomIDSet(rng, nb, universe)
		pa, pb := PackIDs(a), PackIDs(b)
		if got, want := OverlapPacked(&pa, &pb), OverlapIDs(a, b); got != want {
			t.Fatalf("trial %d: OverlapPacked = %d, want %d (a=%v b=%v)", trial, got, want, a, b)
		}
		checks := []struct {
			name      string
			got, want float64
		}{
			{"Jaccard", JaccardPacked(&pa, &pb), JaccardIDs(a, b)},
			{"Dice", DicePacked(&pa, &pb), DiceIDs(a, b)},
			{"Overlap", OverlapSimPacked(&pa, &pb), OverlapSimIDs(a, b)},
			{"Cosine", CosinePacked(&pa, &pb), CosineIDs(a, b)},
		}
		for _, c := range checks {
			if c.got != c.want { // bit-identical, not approximately equal
				t.Fatalf("trial %d: %sPacked = %v, want %v", trial, c.name, c.got, c.want)
			}
		}
	}
}
