package simfn

import "fmt"

// Measure enumerates the similarity measures of Figure 5. A feature combines
// a Measure with a tokenization (for set-based measures) and an attribute
// correspondence; blocking rules reference features, so Measure also drives
// filter inference (§7.4).
type Measure int

const (
	MExactMatch Measure = iota
	MJaccard
	MDice
	MOverlap
	MCosine
	MLevenshtein
	MAbsDiff
	MRelDiff
	MJaro
	MJaroWinkler
	MMongeElkan
	MNeedlemanWunsch
	MSmithWaterman
	MSmithWatermanGotoh
	MTFIDF
	MSoftTFIDF
	numMeasures
)

var measureNames = [numMeasures]string{
	"exact_match", "jaccard", "dice", "overlap", "cosine", "levenshtein",
	"abs_diff", "rel_diff", "jaro", "jaro_winkler", "monge_elkan",
	"needleman_wunsch", "smith_waterman", "smith_waterman_gotoh",
	"tfidf", "soft_tfidf",
}

// String implements fmt.Stringer.
func (m Measure) String() string {
	if m < 0 || m >= numMeasures {
		return fmt.Sprintf("measure(%d)", int(m))
	}
	return measureNames[m]
}

// SetBased reports whether the measure consumes token sets (and therefore
// carries a tokenizer kind in its feature).
func (m Measure) SetBased() bool {
	switch m {
	case MJaccard, MDice, MOverlap, MCosine, MMongeElkan, MTFIDF, MSoftTFIDF:
		return true
	}
	return false
}

// NumericBased reports whether the measure consumes parsed numbers.
func (m Measure) NumericBased() bool {
	return m == MAbsDiff || m == MRelDiff
}

// CorpusBased reports whether the measure needs document-frequency
// statistics (TF/IDF family).
func (m Measure) CorpusBased() bool {
	return m == MTFIDF || m == MSoftTFIDF
}

// Blockable reports whether Figure 5 allows the measure in blocking-stage
// features. The starred measures (Jaro, Jaro-Winkler, Monge-Elkan,
// Needleman-Wunsch, Smith-Waterman(-Gotoh), TF/IDF, Soft TF/IDF) are too
// slow or not filterable and are used only for matching.
func (m Measure) Blockable() bool {
	switch m {
	case MExactMatch, MJaccard, MDice, MOverlap, MCosine, MLevenshtein, MAbsDiff, MRelDiff:
		return true
	}
	return false
}

// Distance reports whether larger values mean *less* similar (AbsDiff and
// RelDiff are distances; everything else is a similarity).
func (m Measure) Distance() bool {
	return m == MAbsDiff || m == MRelDiff
}
