package simfn

import (
	"math/rand"
	"strings"
	"testing"
)

// benchIDSets builds n token-ID sets shaped like 3-gram encodings of short
// product/song titles: 30–80 IDs drawn from a few-thousand-gram dictionary,
// the regime blocking and vectorization spend their time in.
func benchIDSets(n int) [][]uint32 {
	rng := rand.New(rand.NewSource(5))
	sets := make([][]uint32, n)
	for i := range sets {
		sets[i] = randomIDSet(rng, 30+rng.Intn(51), 4096)
	}
	return sets
}

// BenchmarkJaccardKernels compares the sorted-merge ID kernel against the
// bit-parallel signature kernel on identical set pairs. pairs/s is the
// figure BENCH_blocking.json records; the packed case includes no packing
// cost because both blocking and serving pack rows once, not per pair.
func BenchmarkJaccardKernels(b *testing.B) {
	sets := benchIDSets(512)
	packed := make([]PackedIDs, len(sets))
	for i, ids := range sets {
		packed[i] = PackIDs(ids)
	}
	b.Run("ids", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0.0
		for i := 0; i < b.N; i++ {
			a := sets[i%len(sets)]
			c := sets[(i*31+7)%len(sets)]
			sink += JaccardIDs(a, c)
		}
		benchSinkF = sink
		reportPairsPerSec(b)
	})
	b.Run("bitparallel", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0.0
		for i := 0; i < b.N; i++ {
			a := &packed[i%len(packed)]
			c := &packed[(i*31+7)%len(packed)]
			sink += JaccardPacked(a, c)
		}
		benchSinkF = sink
		reportPairsPerSec(b)
	})
}

// BenchmarkEditDistanceKernels compares the rolling-row DP against Myers'
// bit-vector kernel on identical ASCII title pairs (the dominant string
// shape in the Figure 5 feature space).
func BenchmarkEditDistanceKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const alpha = "abcdefghijklmnopqrstuvwxyz 0123456789"
	titles := make([]string, 512)
	for i := range titles {
		n := 24 + rng.Intn(25)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		titles[i] = sb.String()
	}
	b.Run("dp", func(b *testing.B) {
		s := GetScratch()
		defer PutScratch(s)
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			a := titles[i%len(titles)]
			c := titles[(i*17+3)%len(titles)]
			s.ra = appendRunes(s.ra, a)
			s.rb = appendRunes(s.rb, c)
			s.ia = growInts(s.ia, len(s.rb)+1)
			s.ib = growInts(s.ib, len(s.rb)+1)
			sink += dpDistance(s.ra, s.rb, s.ia, s.ib)
		}
		benchSinkI = sink
		reportPairsPerSec(b)
	})
	b.Run("bitparallel", func(b *testing.B) {
		s := GetScratch()
		defer PutScratch(s)
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			a := titles[i%len(titles)]
			c := titles[(i*17+3)%len(titles)]
			sink += s.LevenshteinDistance(a, c)
		}
		benchSinkI = sink
		reportPairsPerSec(b)
	})
}

func reportPairsPerSec(b *testing.B) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "pairs/s")
	}
}

var (
	benchSinkF float64
	benchSinkI int
)
