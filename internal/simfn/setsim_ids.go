package simfn

import "math"

// ID-set variants of the set measures. They operate on dictionary-encoded
// token sets: sorted, duplicate-free []uint32 slices (see tokenize.Dict).
// Because every set measure depends only on |a|, |b|, and |a∩b|, these
// return bit-identical values to the string versions under any injective
// token encoding. None of them allocate.

// gallopCutoff switches OverlapIDs from a linear merge to per-element
// galloping search when the larger set is at least this many times the
// smaller one; the merge is O(|a|+|b|), galloping O(|a|·log|b|).
const gallopCutoff = 8

// OverlapIDs returns |a ∩ b| for two sorted, duplicate-free ID sets.
func OverlapIDs(a, b []uint32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopCutoff*len(a) {
		return gallopOverlap(a, b)
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// gallopOverlap intersects by exponential-then-binary searching each element
// of the small set within the (much larger) big set, advancing a shared
// lower bound so the total work is O(|small|·log(|big|/|small|)).
func gallopOverlap(small, big []uint32) int {
	n, lo := 0, 0
	for _, x := range small {
		// Exponential probe for the first index ≥ lo with big[idx] >= x.
		step := 1
		hi := lo
		for hi < len(big) && big[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(big) {
			hi = len(big)
		}
		// Binary search in (lo-1, hi].
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if big[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(big) {
			return n
		}
		if big[lo] == x {
			n++
			lo++
		}
	}
	return n
}

// JaccardIDs returns |a∩b| / |a∪b|; two empty sets score 0, matching
// Jaccard.
func JaccardIDs(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := OverlapIDs(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// DiceIDs returns 2|a∩b| / (|a|+|b|), matching Dice.
func DiceIDs(a, b []uint32) float64 {
	if len(a)+len(b) == 0 {
		return 0
	}
	return 2 * float64(OverlapIDs(a, b)) / float64(len(a)+len(b))
}

// OverlapSimIDs returns |a∩b| / min(|a|,|b|), matching Overlap.
func OverlapSimIDs(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	return float64(OverlapIDs(a, b)) / float64(m)
}

// CosineIDs returns |a∩b| / sqrt(|a|·|b|), matching Cosine.
func CosineIDs(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(OverlapIDs(a, b)) / math.Sqrt(float64(len(a))*float64(len(b)))
}
