package simfn

import (
	"math"

	"falcon/internal/bitset"
)

// Bit-parallel variants of the ID-set measures. A PackedIDs couples a
// sorted, duplicate-free ID set with its bitset.Signature so the
// intersection cardinality — the only quantity the four set measures need
// beyond the two lengths — comes from AND + popcount over 64-bit words
// instead of an element-wise merge. The final float arithmetic is exactly
// the formula the *IDs functions use, on the same exact integer inputs, so
// the packed measures are bit-identical to the merge path by construction.

// packMinLen is the exact-dispatch threshold: sets shorter than this skip
// signature packing and stay on the sorted-merge/galloping path, where the
// merge's few comparisons beat the signature's fixed word-loop overhead.
const packMinLen = 12

// PackedIDs is a sorted, duplicate-free ID set plus its (optional)
// bit-parallel signature. The zero value is an empty set; build one with
// PackIDs, or rebuild in place with Repack to reuse signature capacity.
type PackedIDs struct {
	IDs []uint32
	sig bitset.Signature
}

// PackIDs returns a PackedIDs over ids (which it aliases, not copies). Sets
// shorter than packMinLen are left unpacked — OverlapPacked dispatches them
// to the merge path.
func PackIDs(ids []uint32) PackedIDs {
	var p PackedIDs
	p.Repack(ids)
	return p
}

// Repack rebuilds p in place over ids, reusing the signature's block/word
// capacity so steady-state repacking (e.g. one serve request's record set)
// does not allocate once buffers reach their high-water mark.
func (p *PackedIDs) Repack(ids []uint32) {
	p.IDs = ids
	if len(ids) >= packMinLen {
		p.sig.AppendSignature(ids)
	} else {
		p.sig.AppendSignature(nil)
	}
}

// Packed reports whether the set carries a signature (i.e. met the
// packMinLen dispatch threshold).
func (p *PackedIDs) Packed() bool { return !p.sig.Empty() }

// OverlapPacked returns |a ∩ b|, exactly. Both sides packed → AND+popcount
// over signature words; otherwise — short sets, or a size imbalance big
// enough that galloping beats the word sweep — the sorted-merge path.
func OverlapPacked(a, b *PackedIDs) int {
	if len(a.IDs) == 0 || len(b.IDs) == 0 {
		return 0
	}
	if a.Packed() && b.Packed() {
		small, big := len(a.IDs), len(b.IDs)
		if small > big {
			small, big = big, small
		}
		if big < gallopCutoff*small {
			return bitset.AndCount(&a.sig, &b.sig)
		}
	}
	return OverlapIDs(a.IDs, b.IDs)
}

// JaccardPacked returns |a∩b| / |a∪b|, bit-identical to JaccardIDs.
func JaccardPacked(a, b *PackedIDs) float64 {
	if len(a.IDs) == 0 && len(b.IDs) == 0 {
		return 0
	}
	inter := OverlapPacked(a, b)
	union := len(a.IDs) + len(b.IDs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// DicePacked returns 2|a∩b| / (|a|+|b|), bit-identical to DiceIDs.
func DicePacked(a, b *PackedIDs) float64 {
	if len(a.IDs)+len(b.IDs) == 0 {
		return 0
	}
	return 2 * float64(OverlapPacked(a, b)) / float64(len(a.IDs)+len(b.IDs))
}

// OverlapSimPacked returns |a∩b| / min(|a|,|b|), bit-identical to
// OverlapSimIDs.
func OverlapSimPacked(a, b *PackedIDs) float64 {
	if len(a.IDs) == 0 || len(b.IDs) == 0 {
		return 0
	}
	m := len(a.IDs)
	if len(b.IDs) < m {
		m = len(b.IDs)
	}
	return float64(OverlapPacked(a, b)) / float64(m)
}

// CosinePacked returns |a∩b| / sqrt(|a|·|b|), bit-identical to CosineIDs.
func CosinePacked(a, b *PackedIDs) float64 {
	if len(a.IDs) == 0 || len(b.IDs) == 0 {
		return 0
	}
	return float64(OverlapPacked(a, b)) / math.Sqrt(float64(len(a.IDs))*float64(len(b.IDs)))
}
