package simfn

// LevenshteinDistance returns the edit distance between a and b, computed
// over runes with two rolling rows.
func LevenshteinDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Levenshtein returns the normalized edit similarity
// 1 − dist(a,b)/max(|a|,|b|). Two empty strings score 0 (missing data is not
// evidence of a match); otherwise the value is in [0,1].
func Levenshtein(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 0
	}
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(LevenshteinDistance(a, b))/float64(max)
}

// Jaro returns the Jaro similarity of two strings.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, la)
	bMatch := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatch[j] || ra[i] != rb[j] {
				continue
			}
			aMatch[i] = true
			bMatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 and maximum prefix length 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// MongeElkan returns the Monge-Elkan similarity of two word-token lists
// using JaroWinkler as the inner measure: the mean over tokens of a of the
// best match in b.
func MongeElkan(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := JaroWinkler(ta, tb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}
