package simfn

import "unicode/utf8"

// Package-level sequence measures are pooled-scratch wrappers: each borrows
// a Scratch from the shared pool and delegates, so one-off callers get the
// same allocation-free kernels the hot paths use (and the same values —
// the scratch variants are bit-identical by construction).

// LevenshteinDistance returns the edit distance between a and b, computed
// over runes. Pairs whose shorter side fits one 64-bit word run Myers'
// bit-vector kernel; longer pairs use the rolling-row DP. Both are exact.
func LevenshteinDistance(a, b string) int {
	s := GetScratch()
	d := s.LevenshteinDistance(a, b)
	PutScratch(s)
	return d
}

// Levenshtein returns the normalized edit similarity
// 1 − dist(a,b)/max(|a|,|b|). Two empty strings score 0 (missing data is not
// evidence of a match); otherwise the value is in [0,1].
func Levenshtein(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la == 0 && lb == 0 {
		return 0
	}
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(LevenshteinDistance(a, b))/float64(max)
}

// Jaro returns the Jaro similarity of two strings.
func Jaro(a, b string) float64 {
	s := GetScratch()
	v := s.Jaro(a, b)
	PutScratch(s)
	return v
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 and maximum prefix length 4.
func JaroWinkler(a, b string) float64 {
	s := GetScratch()
	v := s.JaroWinkler(a, b)
	PutScratch(s)
	return v
}

// MongeElkan returns the Monge-Elkan similarity of two word-token lists
// using JaroWinkler as the inner measure: the mean over tokens of a of the
// best match in b.
func MongeElkan(a, b []string) float64 {
	s := GetScratch()
	v := s.MongeElkan(a, b)
	PutScratch(s)
	return v
}
