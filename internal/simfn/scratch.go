package simfn

import (
	"sync"
	"unicode/utf8"
)

// Scratch holds reusable buffers for the sequence measures (Levenshtein,
// Jaro(-Winkler), Needleman-Wunsch, Smith-Waterman(-Gotoh), Monge-Elkan),
// so per-pair evaluation in the blocking/matching hot path stops allocating
// rune slices, DP rows, and pattern bitmask tables. The scratch methods are
// the one implementation; the package-level functions are pooled-scratch
// wrappers around them, so both spellings return bit-identical values.
//
// A Scratch is not safe for concurrent use: hold one per worker/task, or
// use GetScratch/PutScratch around a batch of evaluations.
type Scratch struct {
	ra, rb []rune
	ia, ib []int
	fa, fb []float64
	fc, fd []float64
	ba, bb []bool

	// Myers bit-vector edit-distance state: peq holds the ASCII pattern
	// bitmasks (cleared per-pattern-byte after each call, never wiped
	// wholesale); mr/mw hold the sorted (rune, mask) table for the rune
	// path.
	peq [128]uint64
	mr  []rune
	mw  []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a Scratch from the shared pool.
//
//falcon:allow scratchescape the pool extractor is the one sanctioned pool-returning function; callers must pair it with PutScratch
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the shared pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// appendRunes decodes str into dst (reusing its capacity). Ranging over a
// string yields the same rune sequence as []rune(str), including U+FFFD for
// invalid UTF-8, so the scratch variants see the inputs the reference
// implementations see.
func appendRunes(dst []rune, str string) []rune {
	dst = dst[:0]
	for _, r := range str {
		dst = append(dst, r)
	}
	return dst
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		//falcon:allow servebudget amortized scratch growth to the high-water mark; steady-state serving reuses the buffer
		return make([]int, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		//falcon:allow servebudget amortized scratch growth to the high-water mark; steady-state serving reuses the buffer
		return make([]float64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		//falcon:allow servebudget amortized scratch growth to the high-water mark; steady-state serving reuses the buffer
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// LevenshteinDistance is the scratch variant of the package function: Myers'
// bit-vector kernel when the shorter side fits one 64-bit word (edit
// distance is symmetric, so taking the shorter string as the pattern is
// exact), rolling-row DP otherwise. ASCII inputs skip rune decoding
// entirely — bytes and runes coincide, and peq indexes bytes directly.
func (s *Scratch) LevenshteinDistance(a, b string) int {
	if isASCII(a) && isASCII(b) {
		p, t := a, b
		if len(p) > len(t) {
			p, t = t, p
		}
		if len(p) == 0 {
			return len(t)
		}
		if len(p) <= myersMaxPattern {
			return s.myersASCII(p, t)
		}
	}
	s.ra = appendRunes(s.ra, a)
	s.rb = appendRunes(s.rb, b)
	p, t := s.ra, s.rb
	if len(p) > len(t) {
		p, t = t, p
	}
	if len(p) == 0 {
		return len(t)
	}
	if len(p) <= myersMaxPattern {
		return s.myersRunes(p, t)
	}
	s.ia = growInts(s.ia, len(t)+1)
	s.ib = growInts(s.ib, len(t)+1)
	return dpDistance(p, t, s.ia, s.ib)
}

// Levenshtein is the scratch variant of the package function.
func (s *Scratch) Levenshtein(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la == 0 && lb == 0 {
		return 0
	}
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(s.LevenshteinDistance(a, b))/float64(max)
}

// Jaro is the scratch variant of the package function. It leaves the decoded
// runes of a and b in s.ra/s.rb for JaroWinkler's prefix scan.
func (s *Scratch) Jaro(a, b string) float64 {
	s.ra = appendRunes(s.ra, a)
	s.rb = appendRunes(s.rb, b)
	ra, rb := s.ra, s.rb
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	s.ba = growBools(s.ba, la)
	s.bb = growBools(s.bb, lb)
	aMatch, bMatch := s.ba, s.bb
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatch[j] || ra[i] != rb[j] {
				continue
			}
			aMatch[i] = true
			bMatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler is the scratch variant of the package function.
func (s *Scratch) JaroWinkler(a, b string) float64 {
	j := s.Jaro(a, b)
	ra, rb := s.ra, s.rb
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// MongeElkan is the scratch variant of the package function.
func (s *Scratch) MongeElkan(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if v := s.JaroWinkler(ta, tb); v > best {
				best = v
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// NeedlemanWunsch is the scratch variant of the package function.
func (s *Scratch) NeedlemanWunsch(a, b string) float64 {
	s.ra = appendRunes(s.ra, a)
	s.rb = appendRunes(s.rb, b)
	ra, rb := s.ra, s.rb
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	s.fa = growFloats(s.fa, lb+1)
	s.fb = growFloats(s.fb, lb+1)
	prev, cur := s.fa, s.fb
	for j := 0; j <= lb; j++ {
		prev[j] = float64(j) * alignGap
	}
	for i := 1; i <= la; i++ {
		cur[0] = float64(i) * alignGap
		for j := 1; j <= lb; j++ {
			sub := alignMismatch
			if ra[i-1] == rb[j-1] {
				sub = alignMatch
			}
			best := prev[j-1] + sub
			if v := prev[j] + alignGap; v > best {
				best = v
			}
			if v := cur[j-1] + alignGap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	score := prev[lb]
	max := float64(la)
	if lb > la {
		max = float64(lb)
	}
	max *= alignMatch
	if score <= 0 {
		return 0
	}
	return score / max
}

// SmithWaterman is the scratch variant of the package function.
func (s *Scratch) SmithWaterman(a, b string) float64 {
	s.ra = appendRunes(s.ra, a)
	s.rb = appendRunes(s.rb, b)
	ra, rb := s.ra, s.rb
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	s.fa = growFloats(s.fa, lb+1)
	s.fb = growFloats(s.fb, lb+1)
	prev, cur := s.fa, s.fb
	for j := range prev {
		prev[j] = 0
	}
	best := 0.0
	for i := 1; i <= la; i++ {
		cur[0] = 0
		for j := 1; j <= lb; j++ {
			sub := alignMismatch
			if ra[i-1] == rb[j-1] {
				sub = alignMatch
			}
			v := prev[j-1] + sub
			if g := prev[j] + alignGap; g > v {
				v = g
			}
			if g := cur[j-1] + alignGap; g > v {
				v = g
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	min := la
	if lb < min {
		min = lb
	}
	return best / (alignMatch * float64(min))
}

// SmithWatermanGotoh is the scratch variant of the package function.
func (s *Scratch) SmithWatermanGotoh(a, b string) float64 {
	s.ra = appendRunes(s.ra, a)
	s.rb = appendRunes(s.rb, b)
	ra, rb := s.ra, s.rb
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	negInf := -1e18
	s.fa = growFloats(s.fa, lb+1)
	s.fb = growFloats(s.fb, lb+1)
	s.fc = growFloats(s.fc, lb+1)
	s.fd = growFloats(s.fd, lb+1)
	hPrev, hCur, ePrev, eCur := s.fa, s.fb, s.fc, s.fd
	for j := 0; j <= lb; j++ {
		hPrev[j] = 0
		ePrev[j] = negInf
	}
	best := 0.0
	for i := 1; i <= la; i++ {
		hCur[0] = 0
		eCur[0] = negInf
		f := negInf
		for j := 1; j <= lb; j++ {
			eCur[j] = maxf(ePrev[j]+gotohExtend, hPrev[j]+gotohOpen)
			f = maxf(f+gotohExtend, hCur[j-1]+gotohOpen)
			sub := alignMismatch
			if ra[i-1] == rb[j-1] {
				sub = alignMatch
			}
			h := maxf(0, maxf(hPrev[j-1]+sub, maxf(eCur[j], f)))
			hCur[j] = h
			if h > best {
				best = h
			}
		}
		hPrev, hCur = hCur, hPrev
		ePrev, eCur = eCur, ePrev
	}
	min := la
	if lb < min {
		min = lb
	}
	return best / (alignMatch * float64(min))
}
