package simfn

import "testing"

// FuzzLevenshtein asserts metric properties on arbitrary inputs.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("日本語", "日本")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 50 {
			a = a[:50]
		}
		if len(b) > 50 {
			b = b[:50]
		}
		d := LevenshteinDistance(a, b)
		if d != LevenshteinDistance(b, a) {
			t.Fatal("not symmetric")
		}
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		if d < diff {
			t.Fatalf("distance %d below length gap %d", d, diff)
		}
		max := la
		if lb > max {
			max = lb
		}
		if d > max {
			t.Fatalf("distance %d above max length %d", d, max)
		}
		if (d == 0) != (a == b) {
			t.Fatal("zero distance iff equal violated")
		}
	})
}

// FuzzJaroWinkler asserts boundedness on arbitrary inputs.
func FuzzJaroWinkler(f *testing.F) {
	f.Add("martha", "marhta")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		v := JaroWinkler(a, b)
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("JaroWinkler(%q,%q) = %v out of [0,1]", a, b, v)
		}
	})
}
