package simfn

import (
	"encoding/binary"
	"slices"
	"testing"
)

// FuzzLevenshtein asserts metric properties on arbitrary inputs.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("日本語", "日本")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 50 {
			a = a[:50]
		}
		if len(b) > 50 {
			b = b[:50]
		}
		d := LevenshteinDistance(a, b)
		if d != LevenshteinDistance(b, a) {
			t.Fatal("not symmetric")
		}
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		if d < diff {
			t.Fatalf("distance %d below length gap %d", d, diff)
		}
		max := la
		if lb > max {
			max = lb
		}
		if d > max {
			t.Fatalf("distance %d above max length %d", d, max)
		}
		if (d == 0) != (a == b) {
			t.Fatal("zero distance iff equal violated")
		}
	})
}

// FuzzMyersVsDP differentially checks the Myers bit-vector dispatcher (both
// the ASCII and rune kernels, plus the >64 DP fallback) against the
// reference rolling-row DP on arbitrary inputs, including invalid UTF-8.
func FuzzMyersVsDP(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("日本語", "日本")
	f.Add("\xff\xfe", "a\x80b")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 200 {
			a = a[:200]
		}
		if len(b) > 200 {
			b = b[:200]
		}
		want := referenceEditDistance(a, b)
		if got := LevenshteinDistance(a, b); got != want {
			t.Fatalf("LevenshteinDistance(%q,%q) = %d, reference DP = %d", a, b, got, want)
		}
		s := GetScratch()
		got := s.LevenshteinDistance(a, b)
		again := s.LevenshteinDistance(a, b) // peq/table state must not leak between calls
		PutScratch(s)
		if got != want || again != want {
			t.Fatalf("scratch distance(%q,%q) = %d/%d, reference DP = %d", a, b, got, again, want)
		}
	})
}

// fuzzIDSet decodes raw fuzz bytes into a sorted, duplicate-free ID set
// bounded by universe, matching the tokenize.Dict invariant.
func fuzzIDSet(raw []byte, universe uint32) []uint32 {
	ids := make([]uint32, 0, len(raw)/2+1)
	for i := 0; i+1 < len(raw); i += 2 {
		ids = append(ids, uint32(binary.LittleEndian.Uint16(raw[i:]))%universe)
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// FuzzPackedSetMeasures differentially checks the popcount set measures
// against the sorted-merge path over arbitrary ID sets — empty, disjoint,
// clustered, and wide-spanning (both signature layouts). It also feeds raw
// unsorted/duplicated slices through the packed kernels to pin down that
// invariant violations stay panic-free (the results are undefined relative
// to the merge path there, exactly as the merge itself desynchronizes).
func FuzzPackedSetMeasures(f *testing.F) {
	f.Add([]byte{}, []byte{1, 0, 2, 0, 3, 0}, uint32(64))
	f.Add([]byte{1, 0, 2, 0}, []byte{1, 0, 2, 0}, uint32(4096))
	f.Add([]byte{0, 0, 255, 255}, []byte{128, 0}, uint32(1<<16))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, universe uint32) {
		if len(rawA) > 400 {
			rawA = rawA[:400]
		}
		if len(rawB) > 400 {
			rawB = rawB[:400]
		}
		universe = universe%(1<<20) + 1
		a := fuzzIDSet(rawA, universe)
		b := fuzzIDSet(rawB, universe)
		pa, pb := PackIDs(a), PackIDs(b)
		if got, want := OverlapPacked(&pa, &pb), OverlapIDs(a, b); got != want {
			t.Fatalf("OverlapPacked = %d, merge = %d (a=%v b=%v)", got, want, a, b)
		}
		if got, want := JaccardPacked(&pa, &pb), JaccardIDs(a, b); got != want {
			t.Fatalf("JaccardPacked = %v, merge = %v", got, want)
		}
		if got, want := DicePacked(&pa, &pb), DiceIDs(a, b); got != want {
			t.Fatalf("DicePacked = %v, merge = %v", got, want)
		}
		if got, want := OverlapSimPacked(&pa, &pb), OverlapSimIDs(a, b); got != want {
			t.Fatalf("OverlapSimPacked = %v, merge = %v", got, want)
		}
		if got, want := CosinePacked(&pa, &pb), CosineIDs(a, b); got != want {
			t.Fatalf("CosinePacked = %v, merge = %v", got, want)
		}
		// Invariant-violating (unsorted, duplicated) inputs: no panics, and
		// signature cardinality still bounded by the element count.
		rawIDs := make([]uint32, 0, len(rawA))
		for _, by := range rawA {
			rawIDs = append(rawIDs, uint32(by))
		}
		pr := PackIDs(rawIDs)
		_ = JaccardPacked(&pr, &pb)
		_ = OverlapPacked(&pr, &pr)
	})
}

// FuzzJaroWinkler asserts boundedness on arbitrary inputs.
func FuzzJaroWinkler(f *testing.F) {
	f.Add("martha", "marhta")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		v := JaroWinkler(a, b)
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("JaroWinkler(%q,%q) = %v out of [0,1]", a, b, v)
		}
	})
}
