package simfn

import (
	"math"
	"sort"
)

// Corpus holds document frequencies for TF/IDF-style measures over long
// string attributes (Figure 5). Falcon builds one corpus per attribute
// correspondence from the union of both tables' values.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// AddDoc records one document's de-duplicated tokens.
func (c *Corpus) AddDoc(tokens []string) {
	c.docs++
	seen := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		c.df[t]++
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// State exports the corpus in serializable form: the document count plus
// every (token, document frequency) pair with tokens in lexicographic
// order, so the encoding is deterministic across map iterations.
func (c *Corpus) State() (docs int, toks []string, dfs []int) {
	toks = make([]string, 0, len(c.df))
	for t := range c.df {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	dfs = make([]int, len(toks))
	for i, t := range toks {
		dfs[i] = c.df[t]
	}
	return c.docs, toks, dfs
}

// CorpusFromState rebuilds a corpus exported by State. IDF depends only on
// the document count and the per-token document frequencies, both of which
// round-trip exactly, so the rebuilt corpus reproduces every weight
// bit-for-bit.
func CorpusFromState(docs int, toks []string, dfs []int) *Corpus {
	c := &Corpus{docs: docs, df: make(map[string]int, len(toks))}
	for i, t := range toks {
		c.df[t] = dfs[i]
	}
	return c
}

// IDF returns the smoothed inverse document frequency of token t:
// log(1 + N/df). Unknown tokens get the maximal IDF log(1 + N).
func (c *Corpus) IDF(t string) float64 {
	if c.docs == 0 {
		return 0
	}
	df := c.df[t]
	if df == 0 {
		df = 1
	}
	return math.Log(1 + float64(c.docs)/float64(df))
}

// tfVector builds an IDF-weighted term-frequency vector for a token bag.
func (c *Corpus) tfVector(tokens []string) map[string]float64 {
	v := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		v[t]++
	}
	for t, tf := range v {
		v[t] = tf * c.IDF(t)
	}
	return v
}

// sortedTokens returns the vector's tokens in lexicographic order so that
// floating-point accumulation is deterministic across map iterations.
func sortedTokens(v map[string]float64) []string {
	keys := make([]string, 0, len(v))
	for t := range v {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	return keys
}

// TFIDF returns the cosine similarity of the IDF-weighted term-frequency
// vectors of the two token bags.
func (c *Corpus) TFIDF(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	va, vb := c.tfVector(a), c.tfVector(b)
	var dot, na, nb float64
	for _, t := range sortedTokens(va) {
		wa := va[t]
		na += wa * wa
		if wb, ok := vb[t]; ok {
			dot += wa * wb
		}
	}
	for _, t := range sortedTokens(vb) {
		nb += vb[t] * vb[t]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// WeightedDoc is one row's IDF-weighted term-frequency vector in frozen
// form: the distinct tokens in lexicographic order, their weights, and the
// squared norm accumulated in that same order. Precomputing these per row
// lets the per-pair TF/IDF measures run without building a single map —
// the serving-path budget the per-pair tfVector path could never meet.
type WeightedDoc struct {
	Toks []string
	Ws   []float64
	Norm float64
}

// WeightedDocOf builds the frozen vector for one token bag. Token order,
// weights, and norm accumulation order match tfVector + sortedTokens
// exactly, so TFIDFDocs/SoftTFIDFDocs reproduce TFIDF/SoftTFIDF
// bit-for-bit.
func (c *Corpus) WeightedDocOf(tokens []string) WeightedDoc {
	v := c.tfVector(tokens)
	toks := sortedTokens(v)
	ws := make([]float64, len(toks))
	var norm float64
	for i, t := range toks {
		w := v[t]
		ws[i] = w
		norm += w * w
	}
	return WeightedDoc{Toks: toks, Ws: ws, Norm: norm}
}

// TFIDFDocs is TFIDF over pre-built docs. The dot product becomes a sorted
// merge (both token lists are lexicographic, so membership tests never
// move the b cursor backwards), and each norm was accumulated at build
// time in the same token order TFIDF accumulates it, so the result is
// bit-identical to the map-based path with zero per-pair allocation.
func TFIDFDocs(a, b *WeightedDoc) float64 {
	if len(a.Toks) == 0 || len(b.Toks) == 0 {
		return 0
	}
	if a.Norm == 0 || b.Norm == 0 {
		return 0
	}
	var dot float64
	j := 0
	for i, t := range a.Toks {
		for j < len(b.Toks) && b.Toks[j] < t {
			j++
		}
		if j < len(b.Toks) && b.Toks[j] == t {
			dot += a.Ws[i] * b.Ws[j]
		}
	}
	return dot / math.Sqrt(a.Norm*b.Norm)
}

// SoftTFIDFDocs is SoftTFIDF over pre-built docs with caller-provided
// scratch for the inner Jaro-Winkler: the same double loop in the same
// lexicographic order as the map-based path, with zero per-pair
// allocation.
func SoftTFIDFDocs(a, b *WeightedDoc, s *Scratch) float64 {
	if len(a.Toks) == 0 || len(b.Toks) == 0 {
		return 0
	}
	if a.Norm == 0 || b.Norm == 0 {
		return 0
	}
	var dot float64
	for i, ta := range a.Toks {
		wa := a.Ws[i]
		bestSim, bestW := 0.0, 0.0
		for j, tb := range b.Toks {
			wb := b.Ws[j]
			sim := s.JaroWinkler(ta, tb)
			if sim >= softTFIDFTheta && sim > bestSim {
				bestSim, bestW = sim, wb
			}
		}
		if bestSim > 0 {
			dot += wa * bestW * bestSim
		}
	}
	sim := dot / math.Sqrt(a.Norm*b.Norm)
	if sim > 1 {
		sim = 1
	}
	return sim
}

// softTFIDFTheta is the inner-similarity threshold for SoftTFIDF's CLOSE set.
const softTFIDFTheta = 0.9

// SoftTFIDF returns the Soft TF/IDF similarity: like TFIDF but tokens of a
// also pair with close tokens of b (JaroWinkler ≥ 0.9), weighted by their
// inner similarity.
func (c *Corpus) SoftTFIDF(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	va, vb := c.tfVector(a), c.tfVector(b)
	aToks, bToks := sortedTokens(va), sortedTokens(vb)
	var na, nb float64
	for _, t := range aToks {
		na += va[t] * va[t]
	}
	for _, t := range bToks {
		nb += vb[t] * vb[t]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var dot float64
	for _, ta := range aToks {
		wa := va[ta]
		bestSim, bestW := 0.0, 0.0
		for _, tb := range bToks {
			wb := vb[tb]
			s := JaroWinkler(ta, tb)
			if s >= softTFIDFTheta && s > bestSim {
				bestSim, bestW = s, wb
			}
		}
		if bestSim > 0 {
			dot += wa * bestW * bestSim
		}
	}
	sim := dot / math.Sqrt(na*nb)
	if sim > 1 {
		sim = 1
	}
	return sim
}
