package simfn

import (
	"math"
	"sort"
)

// Corpus holds document frequencies for TF/IDF-style measures over long
// string attributes (Figure 5). Falcon builds one corpus per attribute
// correspondence from the union of both tables' values.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// AddDoc records one document's de-duplicated tokens.
func (c *Corpus) AddDoc(tokens []string) {
	c.docs++
	seen := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		c.df[t]++
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of token t:
// log(1 + N/df). Unknown tokens get the maximal IDF log(1 + N).
func (c *Corpus) IDF(t string) float64 {
	if c.docs == 0 {
		return 0
	}
	df := c.df[t]
	if df == 0 {
		df = 1
	}
	return math.Log(1 + float64(c.docs)/float64(df))
}

// tfVector builds an IDF-weighted term-frequency vector for a token bag.
func (c *Corpus) tfVector(tokens []string) map[string]float64 {
	v := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		v[t]++
	}
	for t, tf := range v {
		v[t] = tf * c.IDF(t)
	}
	return v
}

// sortedTokens returns the vector's tokens in lexicographic order so that
// floating-point accumulation is deterministic across map iterations.
func sortedTokens(v map[string]float64) []string {
	keys := make([]string, 0, len(v))
	for t := range v {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	return keys
}

// TFIDF returns the cosine similarity of the IDF-weighted term-frequency
// vectors of the two token bags.
func (c *Corpus) TFIDF(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	va, vb := c.tfVector(a), c.tfVector(b)
	var dot, na, nb float64
	for _, t := range sortedTokens(va) {
		wa := va[t]
		na += wa * wa
		if wb, ok := vb[t]; ok {
			dot += wa * wb
		}
	}
	for _, t := range sortedTokens(vb) {
		nb += vb[t] * vb[t]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// softTFIDFTheta is the inner-similarity threshold for SoftTFIDF's CLOSE set.
const softTFIDFTheta = 0.9

// SoftTFIDF returns the Soft TF/IDF similarity: like TFIDF but tokens of a
// also pair with close tokens of b (JaroWinkler ≥ 0.9), weighted by their
// inner similarity.
func (c *Corpus) SoftTFIDF(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	va, vb := c.tfVector(a), c.tfVector(b)
	aToks, bToks := sortedTokens(va), sortedTokens(vb)
	var na, nb float64
	for _, t := range aToks {
		na += va[t] * va[t]
	}
	for _, t := range bToks {
		nb += vb[t] * vb[t]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var dot float64
	for _, ta := range aToks {
		wa := va[ta]
		bestSim, bestW := 0.0, 0.0
		for _, tb := range bToks {
			wb := vb[tb]
			s := JaroWinkler(ta, tb)
			if s >= softTFIDFTheta && s > bestSim {
				bestSim, bestW = s, wb
			}
		}
		if bestSim > 0 {
			dot += wa * bestW * bestSim
		}
	}
	sim := dot / math.Sqrt(na*nb)
	if sim > 1 {
		sim = 1
	}
	return sim
}
