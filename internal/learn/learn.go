// Package learn implements Falcon's al_matcher operator: crowdsourced
// active learning of a random-forest matcher (paper §9) with the iteration
// cap of §3.4 and the masked pair-selection optimization of §10.2(3).
//
// Each iteration trains a forest on the labeled pairs so far, scores the
// unlabeled pool by vote entropy on the cluster, selects the most
// controversial batch (20 pairs), has the crowd label it, and repeats until
// convergence or the iteration cap. The masked variant selects 40 pairs in
// the first iteration and thereafter overlaps "select next batch" with
// "crowd labels current batch", trading an approximate matcher for masked
// selection time.
package learn

import (
	"cmp"
	"context"
	"slices"
	"time"

	"falcon/internal/crowd"
	"falcon/internal/forest"
	"falcon/internal/mapreduce"
	"falcon/internal/table"
)

// Oracle supplies ground-truth labels (the simulated crowd perturbs them).
type Oracle func(table.Pair) bool

// Item is one pool entry: a pair and its feature vector.
type Item struct {
	Pair table.Pair
	Vec  []float64
}

// Config controls active learning.
type Config struct {
	// MaxIterations caps crowd iterations (paper: 30, incl. the seed round).
	MaxIterations int
	// Forest configures matcher training.
	Forest forest.Config
	// Masked enables the §10.2(3) pair-selection masking.
	Masked bool
	// ConvergeDelta: converged when the fraction of pool predictions that
	// changed stays below this for two consecutive iterations (default
	// 0.002).
	ConvergeDelta float64
	// SeedScore ranks pool items for the seed round (higher = more likely
	// to match). Default: mean feature value — callers should supply a
	// similarity-aware score when the feature space mixes similarities
	// with unbounded distances.
	SeedScore func(vec []float64) float64
	// trainCostPerExample models in-memory forest training time.
	TrainCostPerExample time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 30
	}
	if c.ConvergeDelta <= 0 {
		c.ConvergeDelta = 0.002
	}
	if c.TrainCostPerExample <= 0 {
		c.TrainCostPerExample = 200 * time.Microsecond
	}
	return c
}

// IterTrace records one iteration's activity for timeline scheduling.
type IterTrace struct {
	// Selection is cluster time spent scoring the pool and picking pairs.
	Selection time.Duration
	// Training is (modeled) matcher training time.
	Training time.Duration
	// CrowdLatency is the crowd time of this iteration's labeling batch.
	CrowdLatency time.Duration
	// Questions asked this iteration.
	Questions int
	// SelectionMasked marks selections that overlap the previous batch's
	// crowd labeling (the masked variant).
	SelectionMasked bool
}

// Result is the outcome of active learning.
type Result struct {
	Forest *forest.Forest
	// Labeled holds the crowd-labeled training examples;
	// LabeledPairs[i] is the pair behind Labeled[i].
	Labeled      []forest.Example
	LabeledPairs []table.Pair
	Iterations   int
	Converged    bool
	Trace        []IterTrace
}

// Learner runs crowdsourced active learning over a fixed pool.
type Learner struct {
	cluster *mapreduce.Cluster
	crowd   *crowd.Crowd
	oracle  Oracle
	cfg     Config
}

// New creates a learner.
func New(cluster *mapreduce.Cluster, cr *crowd.Crowd, oracle Oracle, cfg Config) *Learner {
	return &Learner{cluster: cluster, crowd: cr, oracle: oracle, cfg: cfg.withDefaults()}
}

// scorePool applies the forest to every pool item on the cluster, returning
// per-item match votes and the job's simulated time.
func (l *Learner) scorePool(ctx context.Context, f *forest.Forest, pool []Item, labeled map[int]bool) ([]int, time.Duration, error) {
	votes := make([]int, len(pool))
	idx := make([]int, 0, len(pool))
	for i := range pool {
		if !labeled[i] {
			idx = append(idx, i)
		}
	}
	job := mapreduce.MapOnlyJob[int, struct{}]{
		Name:   "al-pair-selection",
		Splits: mapreduce.SplitSlice(idx, l.cluster.Slots()),
		Map: func(i int, ctx *mapreduce.MapOnlyCtx[struct{}]) {
			votes[i] = f.Votes(pool[i].Vec)
			ctx.AddCost(int64(len(f.Trees)))
		},
	}
	res, err := mapreduce.RunMapOnlyContext(ctx, l.cluster, job)
	if err != nil {
		return nil, 0, err
	}
	return votes, res.Stats.SimTime, nil
}

// selectControversial returns the `take` unlabeled pool indexes with the
// highest vote entropy (ties by index for determinism). Items with zero
// entropy fill in only when nothing controversial remains.
func selectControversial(votes []int, nTrees int, labeled map[int]bool, take int) []int {
	type scored struct {
		i       int
		entropy float64
	}
	var cands []scored
	for i, v := range votes {
		if labeled[i] {
			continue
		}
		p := float64(v) / float64(nTrees)
		// Entropy ordering is monotone in min(p,1−p); avoid logs.
		e := p
		if e > 0.5 {
			e = 1 - e
		}
		cands = append(cands, scored{i, e})
	}
	slices.SortFunc(cands, func(a, b scored) int {
		if c := cmp.Compare(b.entropy, a.entropy); c != 0 {
			return c
		}
		return cmp.Compare(a.i, b.i)
	})
	if take > len(cands) {
		take = len(cands)
	}
	out := make([]int, take)
	for i := 0; i < take; i++ {
		out[i] = cands[i].i
	}
	return out
}

// labelBatch asks the crowd for labels of the pool items at idx.
func (l *Learner) labelBatch(ctx context.Context, pool []Item, idx []int) ([]bool, time.Duration, error) {
	qs := make([]crowd.Question, len(idx))
	for i, pi := range idx {
		qs[i] = crowd.Question{Pair: pool[pi].Pair, Truth: l.oracle(pool[pi].Pair)}
	}
	return l.crowd.LabelMajorityContext(ctx, qs)
}

// seedSelection picks the initial batch before any matcher exists: half the
// pairs with the highest score (likely matches), half with the lowest
// (likely non-matches).
func seedSelection(pool []Item, take int, score func([]float64) float64) []int {
	if score == nil {
		score = meanScore
	}
	type scored struct {
		i   int
		avg float64
	}
	s := make([]scored, len(pool))
	for i, it := range pool {
		s[i] = scored{i, score(it.Vec)}
	}
	slices.SortFunc(s, func(a, b scored) int {
		if c := cmp.Compare(b.avg, a.avg); c != 0 {
			return c
		}
		return cmp.Compare(a.i, b.i)
	})
	if take > len(s) {
		take = len(s)
	}
	out := make([]int, 0, take)
	for i := 0; i < take/2; i++ {
		out = append(out, s[i].i)
	}
	for i := 0; len(out) < take; i++ {
		out = append(out, s[len(s)-1-i].i)
	}
	return out
}

// meanScore is the default seed ranking: the mean feature value.
func meanScore(vec []float64) float64 {
	sum := 0.0
	for _, v := range vec {
		sum += v
	}
	return sum / float64(len(vec)+1)
}

// Run performs active learning over the pool, honoring ctx cancellation at
// every crowd wait and cluster job. The pool's vectors must all share one
// feature space.
func (l *Learner) Run(ctx context.Context, pool []Item) (*Result, error) {
	res := &Result{}
	if len(pool) == 0 {
		return res, nil
	}
	batch := l.crowd.BatchSize()
	labeled := map[int]bool{}
	addLabels := func(idx []int, lab []bool) {
		for i, pi := range idx {
			labeled[pi] = true
			res.Labeled = append(res.Labeled, forest.Example{Values: pool[pi].Vec, Label: lab[i]})
			res.LabeledPairs = append(res.LabeledPairs, pool[pi].Pair)
		}
	}

	// Iteration 1: seed round (counts against the cap). The masked variant
	// selects a double batch so the next labeling round can start without
	// waiting on selection.
	seedTake := batch
	if l.cfg.Masked {
		seedTake = 2 * batch
	}
	seedIdx := seedSelection(pool, seedTake, l.cfg.SeedScore)
	firstIdx := seedIdx
	var carryIdx []int
	if l.cfg.Masked && len(seedIdx) > batch {
		firstIdx, carryIdx = seedIdx[:batch], seedIdx[batch:]
	}
	lab, lat, err := l.labelBatch(ctx, pool, firstIdx)
	if err != nil {
		return nil, err
	}
	addLabels(firstIdx, lab)
	res.Trace = append(res.Trace, IterTrace{CrowdLatency: lat, Questions: len(firstIdx)})
	res.Iterations = 1

	// Ensure both classes exist before training; top up with extremes.
	ensureBothClasses := func() error {
		hasPos, hasNeg := false, false
		for _, e := range res.Labeled {
			if e.Label {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		for tries := 0; (!hasPos || !hasNeg) && tries < 5 && len(labeled) < len(pool); tries++ {
			idx := seedSelection(pool, len(labeled)+batch, l.cfg.SeedScore)
			var fresh []int
			for _, i := range idx {
				if !labeled[i] {
					fresh = append(fresh, i)
				}
				if len(fresh) == batch {
					break
				}
			}
			if len(fresh) == 0 {
				return nil
			}
			lab, lat, err := l.labelBatch(ctx, pool, fresh)
			if err != nil {
				return err
			}
			addLabels(fresh, lab)
			res.Trace = append(res.Trace, IterTrace{CrowdLatency: lat, Questions: len(fresh)})
			res.Iterations++
			for i := range fresh {
				if lab[i] {
					hasPos = true
				} else {
					hasNeg = true
				}
			}
		}
		return nil
	}
	if err := ensureBothClasses(); err != nil {
		return nil, err
	}

	var prevPred []bool
	stableRounds := 0
	trainSeed := l.cfg.Forest
	for res.Iterations < l.cfg.MaxIterations {
		// Train on everything labeled so far.
		trainSeed.Seed = l.cfg.Forest.Seed + int64(res.Iterations)
		f := forest.Train(res.Labeled, trainSeed)
		res.Forest = f
		trainDur := time.Duration(len(res.Labeled)) * l.cfg.TrainCostPerExample

		votes, selDur, err := l.scorePool(ctx, f, pool, labeled)
		if err != nil {
			return nil, err
		}

		// Convergence: fraction of pool predictions that changed.
		pred := make([]bool, len(pool))
		for i, v := range votes {
			pred[i] = 2*v > len(f.Trees)
		}
		if prevPred != nil {
			changed := 0
			for i := range pred {
				if pred[i] != prevPred[i] {
					changed++
				}
			}
			if float64(changed)/float64(len(pred)) < l.cfg.ConvergeDelta {
				stableRounds++
			} else {
				stableRounds = 0
			}
			if stableRounds >= 2 {
				res.Converged = true
				res.Trace = append(res.Trace, IterTrace{Selection: selDur, Training: trainDur, SelectionMasked: l.cfg.Masked})
				break
			}
		}
		prevPred = pred

		// Pick the next batch. In masked mode the batch labeled now was
		// selected during the previous labeling round.
		var idx []int
		if l.cfg.Masked && len(carryIdx) > 0 {
			idx = carryIdx
			carryIdx = selectControversial(votes, len(f.Trees), labeled, batch)
			// Filter out anything that just got labeled via carry.
			var next []int
			inIdx := map[int]bool{}
			for _, i := range idx {
				inIdx[i] = true
			}
			for _, i := range carryIdx {
				if !inIdx[i] {
					next = append(next, i)
				}
			}
			carryIdx = next
		} else {
			idx = selectControversial(votes, len(f.Trees), labeled, batch)
			if l.cfg.Masked {
				carryIdx = idx
				continue // loop back to select via carry path with no label yet
			}
		}
		if len(idx) == 0 {
			res.Converged = true
			break
		}
		lab, lat, err := l.labelBatch(ctx, pool, idx)
		if err != nil {
			return nil, err
		}
		addLabels(idx, lab)
		res.Trace = append(res.Trace, IterTrace{
			Selection:       selDur,
			Training:        trainDur,
			CrowdLatency:    lat,
			Questions:       len(idx),
			SelectionMasked: l.cfg.Masked,
		})
		res.Iterations++
	}

	// Final matcher: retrain on everything labeled (the last batch's labels
	// would otherwise go unused when the iteration cap fires).
	if len(res.Labeled) == 0 {
		return res, nil
	}
	final := l.cfg.Forest
	final.Seed = l.cfg.Forest.Seed + int64(res.Iterations) + 1000
	res.Forest = forest.Train(res.Labeled, final)
	return res, nil
}
