package learn

import (
	"context"
	"math/rand"
	"testing"

	"falcon/internal/crowd"
	"falcon/internal/forest"
	"falcon/internal/mapreduce"
	"falcon/internal/table"
)

// syntheticPool builds a pool with a crisp decision boundary: a pair
// matches iff vec[0] > 0.55 and vec[1] > 0.3.
func syntheticPool(n int, seed int64) ([]Item, Oracle) {
	rng := rand.New(rand.NewSource(seed))
	truth := map[table.Pair]bool{}
	pool := make([]Item, n)
	for i := range pool {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		p := table.Pair{A: i, B: i}
		pool[i] = Item{Pair: p, Vec: v}
		truth[p] = v[0] > 0.55 && v[1] > 0.3
	}
	return pool, func(p table.Pair) bool { return truth[p] }
}

func poolAccuracy(f *forest.Forest, pool []Item, oracle Oracle) float64 {
	correct := 0
	for _, it := range pool {
		if f.Predict(it.Vec) == oracle(it.Pair) {
			correct++
		}
	}
	return float64(correct) / float64(len(pool))
}

func newLearner(errRate float64, cfg Config) (*Learner, *crowd.Crowd, []Item, Oracle) {
	pool, oracle := syntheticPool(800, 1)
	cr := crowd.New(crowd.NewRandomWorkers(errRate, 0, 7), crowd.Config{})
	l := New(mapreduce.Default(), cr, oracle, cfg)
	return l, cr, pool, oracle
}

func TestActiveLearningLearns(t *testing.T) {
	l, cr, pool, oracle := newLearner(0, Config{Forest: forest.Config{Seed: 3}})
	res, err := l.Run(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forest == nil {
		t.Fatal("no matcher learned")
	}
	if acc := poolAccuracy(res.Forest, pool, oracle); acc < 0.9 {
		t.Fatalf("accuracy %v, want ≥0.9", acc)
	}
	if res.Iterations > 30 {
		t.Fatalf("iterations %d exceed cap", res.Iterations)
	}
	if cr.Ledger().Questions == 0 {
		t.Fatal("no crowd questions asked")
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
}

func TestIterationCapRespected(t *testing.T) {
	l, _, pool, _ := newLearner(0.3, Config{MaxIterations: 5, Forest: forest.Config{Seed: 3}})
	res, err := l.Run(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 5 {
		t.Fatalf("iterations %d exceed cap 5", res.Iterations)
	}
}

func TestLabeledBudget(t *testing.T) {
	// Total questions ≤ iterations × batch (plus masked seed extra).
	l, cr, pool, _ := newLearner(0, Config{MaxIterations: 10, Forest: forest.Config{Seed: 5}})
	res, err := l.Run(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := cr.Ledger().Questions; got > res.Iterations*cr.BatchSize() {
		t.Fatalf("questions %d exceed %d iterations × %d", got, res.Iterations, cr.BatchSize())
	}
	if len(res.Labeled) != cr.Ledger().Questions {
		t.Fatalf("labeled %d != questions %d", len(res.Labeled), cr.Ledger().Questions)
	}
}

func TestMaskedVariantLearnsAndMasks(t *testing.T) {
	l, _, pool, oracle := newLearner(0, Config{Masked: true, Forest: forest.Config{Seed: 3}})
	res, err := l.Run(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if acc := poolAccuracy(res.Forest, pool, oracle); acc < 0.88 {
		t.Fatalf("masked accuracy %v, want ≥0.88", acc)
	}
	// The first trace entry is the 40-pair double seed batch... split into
	// one 20-question round; later selections must be flagged masked.
	foundMasked := false
	for _, tr := range res.Trace {
		if tr.SelectionMasked && tr.Selection > 0 {
			foundMasked = true
		}
	}
	if !foundMasked {
		t.Fatal("no masked selections recorded")
	}
}

func TestNoisyCrowdStillLearns(t *testing.T) {
	l, _, pool, oracle := newLearner(0.1, Config{Forest: forest.Config{Seed: 3}})
	res, err := l.Run(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if acc := poolAccuracy(res.Forest, pool, oracle); acc < 0.8 {
		t.Fatalf("accuracy under 10%% crowd error = %v, want ≥0.8", acc)
	}
}

func TestEmptyPool(t *testing.T) {
	l, _, _, _ := newLearner(0, Config{})
	res, err := l.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forest != nil || res.Iterations != 0 {
		t.Fatal("empty pool should produce empty result")
	}
}

func TestTinyPool(t *testing.T) {
	pool, oracle := syntheticPool(15, 2)
	cr := crowd.New(crowd.NewRandomWorkers(0, 0, 7), crowd.Config{})
	l := New(mapreduce.Default(), cr, oracle, Config{Forest: forest.Config{Seed: 1}})
	res, err := l.Run(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	// Pool smaller than one batch: everything gets labeled, learning stops.
	if len(res.Labeled) != 15 {
		t.Fatalf("labeled %d of 15", len(res.Labeled))
	}
	if res.Forest == nil {
		t.Fatal("no matcher")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []forest.Example {
		pool, oracle := syntheticPool(300, 3)
		cr := crowd.New(crowd.NewRandomWorkers(0.05, 0, 11), crowd.Config{})
		l := New(mapreduce.Default(), cr, oracle, Config{Forest: forest.Config{Seed: 9}})
		res, err := l.Run(context.Background(), pool)
		if err != nil {
			t.Fatal(err)
		}
		return res.Labeled
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("label counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ across identical runs")
		}
	}
}

func TestTraceAccounting(t *testing.T) {
	l, _, pool, _ := newLearner(0, Config{MaxIterations: 8, Forest: forest.Config{Seed: 3}})
	res, err := l.Run(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	var crowdTotal, selTotal int
	for _, tr := range res.Trace {
		if tr.CrowdLatency > 0 {
			crowdTotal++
		}
		if tr.Selection > 0 {
			selTotal++
		}
		if tr.CrowdLatency < 0 || tr.Selection < 0 || tr.Training < 0 {
			t.Fatal("negative durations in trace")
		}
	}
	if crowdTotal == 0 || selTotal == 0 {
		t.Fatalf("trace missing activity: crowd=%d sel=%d", crowdTotal, selTotal)
	}
}

func TestSeedSelectionExtremes(t *testing.T) {
	pool := []Item{
		{Pair: table.Pair{A: 0}, Vec: []float64{0.9}},
		{Pair: table.Pair{A: 1}, Vec: []float64{0.1}},
		{Pair: table.Pair{A: 2}, Vec: []float64{0.5}},
		{Pair: table.Pair{A: 3}, Vec: []float64{0.95}},
	}
	idx := seedSelection(pool, 2, nil)
	if len(idx) != 2 {
		t.Fatalf("seed = %v", idx)
	}
	// Highest (3) and lowest (1).
	if idx[0] != 3 || idx[1] != 1 {
		t.Fatalf("seed = %v, want [3 1]", idx)
	}
}

func TestSelectControversialOrdering(t *testing.T) {
	votes := []int{0, 5, 10, 4, 6}
	idx := selectControversial(votes, 10, map[int]bool{}, 3)
	if idx[0] != 1 { // 5/10 = perfectly controversial
		t.Fatalf("first pick = %d, want 1", idx[0])
	}
	// 4 and 6 votes tie at distance 0.1; index order breaks the tie.
	if idx[1] != 3 || idx[2] != 4 {
		t.Fatalf("picks = %v", idx)
	}
	// Labeled items excluded.
	idx = selectControversial(votes, 10, map[int]bool{1: true}, 2)
	for _, i := range idx {
		if i == 1 {
			t.Fatal("labeled item selected")
		}
	}
}
