package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"falcon/internal/datagen"
	"falcon/internal/mapreduce"
	"falcon/internal/table"
)

// runWithWorkers executes a full seeded run with the given worker count;
// everything else is rebuilt from scratch so runs share no state.
func runWithWorkers(t *testing.T, n int, forceBlocking bool, workers int) *Result {
	t.Helper()
	d := datagen.Songs(n, 42)
	opt := testOptions(11)
	opt.ForceBlocking = &forceBlocking
	c := mapreduce.Default()
	c.Workers = workers
	opt.Cluster = c
	res, err := Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkerInvarianceBlockingPlan asserts the end-to-end contract of the
// worker pool: a Workers=1 run and a Workers=8 run of the blocking plan
// template produce deeply equal results — matches, candidates, rules,
// costs, counters, and the whole simulated timeline.
func TestWorkerInvarianceBlockingPlan(t *testing.T) {
	seq := runWithWorkers(t, 500, true, 1)
	par := runWithWorkers(t, 500, true, 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("blocking plan diverged across worker counts:\nworkers=1: %d matches, %d candidates, total %v\nworkers=8: %d matches, %d candidates, total %v",
			len(seq.Matches), len(seq.Candidates), seq.Timeline.Total,
			len(par.Matches), len(par.Candidates), par.Timeline.Total)
	}
}

// TestWorkerInvarianceMatcherOnlyPlan is the same contract for the
// matcher-only plan template.
func TestWorkerInvarianceMatcherOnlyPlan(t *testing.T) {
	seq := runWithWorkers(t, 60, false, 1)
	par := runWithWorkers(t, 60, false, 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("matcher-only plan diverged across worker counts:\nworkers=1: %d matches, total %v\nworkers=8: %d matches, total %v",
			len(seq.Matches), seq.Timeline.Total, len(par.Matches), par.Timeline.Total)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	d := datagen.Songs(80, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, d.A, d.B, d.Oracle(), testOptions(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
}

// TestRunContextCancelMidPlan cancels from inside the oracle — i.e. while
// the crowd is answering questions mid-blocking-plan — and asserts
// RunContext stops at the next boundary with ctx.Err() instead of finishing
// the workflow.
func TestRunContextCancelMidPlan(t *testing.T) {
	d := datagen.Songs(400, 42)
	opt := testOptions(3)
	force := true
	opt.ForceBlocking = &force
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	truth := d.Oracle()
	calls := 0
	oracle := func(p table.Pair) bool {
		calls++
		if calls == 25 {
			cancel()
		}
		return truth(p)
	}
	res, err := RunContext(ctx, d.A, d.B, oracle, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	// The run must stop soon after the cancel, not label the whole sample:
	// the crowd checks ctx between questions, so at most the in-flight
	// batch completes.
	if calls > 25+3*crowdBatchSlack {
		t.Fatalf("oracle answered %d questions after cancellation", calls)
	}
}

// crowdBatchSlack bounds how many oracle calls may still happen after the
// cancel: voting on in-flight questions can consult the oracle a few times
// per question before the per-question ctx check fires.
const crowdBatchSlack = 20
