package core

import (
	"testing"

	"falcon/internal/crowd"
	"falcon/internal/datagen"
	"falcon/internal/metrics"
)

func TestAccuracyEstimatorReportsSaneNumbers(t *testing.T) {
	opt := testOptions(21)
	force := true
	opt.ForceBlocking = &force
	opt.EstimateAccuracy = true
	d, res := runSongsWith(t, 600, opt)

	if res.Accuracy == nil {
		t.Fatal("no accuracy estimate")
	}
	acc := res.Accuracy
	if acc.Precision < 0 || acc.Precision > 1 || acc.Recall < 0 || acc.Recall > 1 {
		t.Fatalf("estimate out of range: %+v", acc)
	}
	// The estimate should land near the true score.
	truth := metrics.Score(res.Matches, d.Truth)
	// Recall here is w.r.t. the candidate set; blocking recall is high, so
	// the gap should still be moderate.
	if diff := acc.Precision - truth.Precision; diff > 0.2 || diff < -0.2 {
		t.Fatalf("estimated precision %.2f vs true %.2f", acc.Precision, truth.Precision)
	}
	if acc.Labeled == 0 {
		t.Fatal("estimator asked no questions")
	}
	if _, ok := res.Timeline.PerOp[opEstimator]; !ok {
		t.Fatal("estimator time missing from timeline")
	}
	if len(res.RoundF1) != 1 {
		t.Fatalf("RoundF1 = %v, want single round", res.RoundF1)
	}
}

func TestIterativeWorkflow(t *testing.T) {
	opt := testOptions(22)
	force := true
	opt.ForceBlocking = &force
	opt.ALIterations = 4 // weak initial matcher leaves room to improve
	opt.IterateRounds = 3
	d, res := runSongsWith(t, 600, opt)

	if len(res.RoundF1) < 1 {
		t.Fatal("no rounds recorded")
	}
	if len(res.RoundF1) > 4 {
		t.Fatalf("rounds %d exceed cap+1", len(res.RoundF1))
	}
	if res.Accuracy == nil {
		t.Fatal("iterating implies estimation")
	}
	// The accepted matcher must never be worse than the initial estimate
	// (rounds that don't improve are rejected).
	if res.Accuracy.F1+1e-9 < res.RoundF1[0] {
		t.Fatalf("final estimated F1 %.3f below initial %.3f", res.Accuracy.F1, res.RoundF1[0])
	}
	if f1 := metrics.Score(res.Matches, d.Truth).F1; f1 < 0.6 {
		t.Fatalf("true F1 after iteration = %.3f", f1)
	}
}

func TestIterationStopsWhenNoImprovement(t *testing.T) {
	opt := testOptions(23)
	force := true
	opt.ForceBlocking = &force
	opt.IterateRounds = 10 // generous cap; convergence should stop earlier
	_, res := runSongsWith(t, 500, opt)
	// A well-trained matcher (full iterations) should stop after few rounds.
	if len(res.RoundF1) > 5 {
		t.Fatalf("iteration did not converge: %d rounds (%v)", len(res.RoundF1), res.RoundF1)
	}
}

func TestEstimatorOffByDefault(t *testing.T) {
	opt := testOptions(24)
	force := true
	opt.ForceBlocking = &force
	_, res := runSongsWith(t, 400, opt)
	if res.Accuracy != nil || len(res.RoundF1) != 0 {
		t.Fatal("estimator should be off by default")
	}
}

func runSongsWith(t *testing.T, n int, opt Options) (*datagen.Dataset, *Result) {
	t.Helper()
	d := datagen.Songs(n, 42)
	res, err := Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestIterativeWorkflowCostStillAccounted(t *testing.T) {
	opt := testOptions(25)
	force := true
	opt.ForceBlocking = &force
	opt.IterateRounds = 2

	base := testOptions(25)
	base.ForceBlocking = &force

	d := datagen.Songs(500, 42)
	resIter, err := Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := Run(d.A, d.B, d.Oracle(), base)
	if err != nil {
		t.Fatal(err)
	}
	if resIter.Cost <= resBase.Cost {
		t.Fatalf("iterating must cost extra crowd money: %.2f vs %.2f", resIter.Cost, resBase.Cost)
	}
	if resIter.Cost > crowd.CostCap(crowd.DefaultCapParams()) {
		t.Fatalf("cost %.2f blew past C_max", resIter.Cost)
	}
}
