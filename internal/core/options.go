package core

import (
	"time"

	"falcon/internal/block"
	"falcon/internal/crowd"
	"falcon/internal/estimate"
	"falcon/internal/forest"
	"falcon/internal/mapreduce"
	"falcon/internal/model"
	"falcon/internal/rulesel"
	"falcon/internal/table"
	"falcon/internal/vclock"
)

// Options configures an end-to-end Falcon run.
type Options struct {
	// Cluster is the simulated Hadoop cluster (nil = 10-node default).
	Cluster *mapreduce.Cluster
	// Platform is the crowd platform (nil = perfect simulated workers).
	Platform crowd.Platform
	// CrowdCfg holds HIT batching and pricing constants.
	CrowdCfg crowd.Config
	// Budget caps crowd spending in dollars (0 = only the structural
	// C_max cap of §3.4 applies).
	Budget float64
	// Seed drives all randomized components.
	Seed int64

	// SampleN and SampleY configure sample_pairs (§5). Defaults: 1M, 100.
	SampleN int
	SampleY int
	// ALIterations caps active-learning iterations (§3.4; default 30).
	ALIterations int
	// Forest configures matcher training.
	Forest forest.Config
	// EvalCfg configures eval_rules.
	EvalCfg rulesel.EvalConfig
	// Weights configures select_opt_seq scoring.
	Weights rulesel.Weights

	// MaskIndexBuild enables §10.2 optimization 1 (build indexes during
	// crowd time).
	MaskIndexBuild bool
	// Speculative enables §10.2 optimization 2 (speculative rule and
	// matcher execution).
	Speculative bool
	// MaskedSelection enables §10.2 optimization 3 (mask pair selection in
	// the matching-stage al_matcher).
	MaskedSelection bool
	// MaskedSelectionMinPool is the candidate-set size above which masked
	// selection engages (paper: 50M).
	MaskedSelectionMinPool int
	// SpeculativeRuleCap bounds how many rules are speculatively executed.
	SpeculativeRuleCap int

	// EstimateAccuracy runs the Accuracy Estimator extension after
	// matching: crowd-based precision/recall estimation of the matcher.
	EstimateAccuracy bool
	// IterateRounds enables the full Corleone workflow of Figure 1: after
	// matching, estimate accuracy, crowd-label the most difficult pairs,
	// retrain, and repeat up to this many rounds or until the estimated
	// accuracy stops improving. Implies EstimateAccuracy.
	IterateRounds int
	// ExcludeSelfPairs drops pairs with equal row numbers everywhere —
	// used when deduplicating a table against itself (the paper's Songs
	// task matches "songs within a single table").
	ExcludeSelfPairs bool
	// PassIDsOnly enables §7.3 optimization 2 in the blocking jobs.
	PassIDsOnly bool
	// ForceStrategy overrides §10.1 physical-operator selection.
	ForceStrategy *block.Strategy
	// ForceBlocking overrides the plan-template choice of §10.1:
	// nil = automatic, true = always block, false = matcher-only.
	ForceBlocking *bool
}

// DefaultOptions returns the paper's configuration with every optimization
// enabled.
func DefaultOptions() Options {
	return Options{
		SampleN:                1_000_000,
		SampleY:                100,
		ALIterations:           30,
		MaskIndexBuild:         true,
		Speculative:            true,
		MaskedSelection:        true,
		MaskedSelectionMinPool: 50_000_000,
		SpeculativeRuleCap:     20,
		PassIDsOnly:            true,
	}
}

func (o Options) withDefaults() Options {
	if o.Cluster == nil {
		o.Cluster = mapreduce.Default()
	}
	if o.Platform == nil {
		o.Platform = crowd.NewRandomWorkers(0, 0, o.Seed+1)
	}
	if o.SampleN <= 0 {
		o.SampleN = 1_000_000
	}
	if o.SampleY <= 0 {
		o.SampleY = 100
	}
	if o.ALIterations <= 0 {
		o.ALIterations = 30
	}
	if o.MaskedSelectionMinPool <= 0 {
		o.MaskedSelectionMinPool = 50_000_000
	}
	if o.SpeculativeRuleCap <= 0 {
		o.SpeculativeRuleCap = 20
	}
	return o
}

// Result is the outcome of an end-to-end run.
type Result struct {
	// Matches are the predicted matching pairs.
	Matches []table.Pair
	// Candidates are the pairs surviving blocking (equal to A×B for the
	// matcher-only plan).
	Candidates []table.Pair
	// UsedBlocking reports which Figure-3 plan template ran.
	UsedBlocking bool
	// Strategy is the physical operator apply_blocking_rules used.
	Strategy block.Strategy
	// RuleChoice is the selected rule sequence with its §6 statistics.
	RuleChoice rulesel.SeqChoice
	// CandidateRules / RetainedRules count get_blocking_rules output and
	// eval_rules survivors.
	CandidateRules int
	RetainedRules  int

	// Timeline is the full virtual-time accounting (crowd, machine,
	// masked, unmasked, per-operator).
	Timeline vclock.Stats
	// Tasks is the raw scheduled task list (diagnostics).
	Tasks []*vclock.Task
	// UnoptimizedBlockTime is what apply_blocking_rules (incl. index
	// builds) would have cost with no masking (Table 4's parenthetical).
	UnoptimizedBlockTime time.Duration

	// Cost is the crowd spend in dollars; Questions the pair count asked.
	Cost      float64
	Questions int

	// SpecRuleHit / SpecMatcherHit report whether speculative execution
	// results were reused.
	SpecRuleHit    bool
	SpecMatcherHit bool

	// Accuracy is the Accuracy Estimator's crowd-based estimate (nil when
	// the extension is off).
	Accuracy *estimate.Accuracy
	// RoundF1 records the estimated F1 after the initial matcher and each
	// iterative-workflow round (len ≥ 2 only when iterating).
	RoundF1 []float64

	// BlockingForest and MatchingForest are the learned matchers.
	BlockingForest *forest.Forest
	MatchingForest *forest.Forest

	// Model is the exportable learned model (rule sequence + matcher),
	// re-appliable to schema-compatible tables without a crowd.
	Model *model.Model

	// Artifact is the complete serving artifact (the train/serve
	// contract): the model plus frozen dictionaries, corpora, B-row ID
	// sets, and the prefix indexes over B that the point-match path
	// probes. Nil when no matcher was learned.
	Artifact *model.MatcherArtifact
}
