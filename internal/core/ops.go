// Package core is Falcon's plan layer: it turns an EM task over two tables
// into one of the two plan templates of Figure 3, selects physical
// operators (§10.1), executes the plan over the simulated cluster and
// crowd, and applies the §10.2 masking optimizations by scheduling machine
// work inside crowd-wait windows on a shared virtual timeline.
package core

import (
	"context"
	"time"

	"falcon/internal/feature"
	"falcon/internal/mapreduce"
	"falcon/internal/model"
	"falcon/internal/rules"
	"falcon/internal/simfn"
	"falcon/internal/table"
)

// Operator tags for Table-4-style per-operator reporting.
const (
	opSamplePairs   = "sample_pairs"
	opGenFVs        = "gen_fvs"
	opALMatcherB    = "al_matcher(block)"
	opGetBlockRules = "get_blocking_rules"
	opEvalRules     = "eval_rules"
	opSelOptSeq     = "select_opt_seq"
	opApplyRules    = "apply_blocking_rules"
	opGenFVs2       = "gen_fvs(match)"
	opALMatcherM    = "al_matcher(match)"
	opApplyMatcher  = "apply_matcher"
)

// genFVsMR converts pairs into feature vectors as a map-only cluster job
// (the gen_fvs operator of §8). blockingOnly restricts to the blocking
// feature subspace.
func genFVsMR(ctx context.Context, cluster *mapreduce.Cluster, vz *feature.Vectorizer, pairs []table.Pair, blockingOnly bool) ([]feature.Vector, time.Duration, error) {
	nFeats := len(vz.Set.Features)
	if blockingOnly {
		nFeats = vz.Set.NumBlocking()
	}
	vz.Warm()
	job := mapreduce.MapOnlyJob[table.Pair, feature.Vector]{
		Name:   "gen_fvs",
		Splits: mapreduce.SplitSlice(pairs, cluster.Slots()),
		Map: func(p table.Pair, ctx *mapreduce.MapOnlyCtx[feature.Vector]) {
			ctx.AddCost(int64(nFeats))
			if blockingOnly {
				ctx.Output(vz.BlockingVector(p))
			} else {
				ctx.Output(vz.Vector(p))
			}
		},
	}
	res, err := mapreduce.RunMapOnlyContext(ctx, cluster, job)
	if err != nil {
		return nil, 0, err
	}
	return res.Output, res.Stats.SimTime, nil
}

// applyArtifactMR applies a matcher artifact to every vector as a map-only
// cluster job (the apply_matcher operator) — the batch apply half of the
// train/serve split. Job name, split shape, and per-record cost are those
// of the forest it carries, so timings and matches are byte-identical to
// applying the bare forest.
func applyArtifactMR(ctx context.Context, cluster *mapreduce.Cluster, art *model.MatcherArtifact, vecs []feature.Vector) ([]table.Pair, time.Duration, error) {
	f := art.Matcher
	job := mapreduce.MapOnlyJob[int, table.Pair]{
		Name:   "apply_matcher",
		Splits: mapreduce.SplitSlice(indexRange(len(vecs)), cluster.Slots()),
		Map: func(i int, ctx *mapreduce.MapOnlyCtx[table.Pair]) {
			ctx.AddCost(int64(len(f.Trees)))
			if f.Predict(vecs[i].Values) {
				ctx.Output(vecs[i].Pair)
			}
		},
	}
	res, err := mapreduce.RunMapOnlyContext(ctx, cluster, job)
	if err != nil {
		return nil, 0, err
	}
	return res.Output, res.Stats.SimTime, nil
}

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// blockingFeaturePtrs returns feature pointers in blocking-vector order.
func blockingFeaturePtrs(set *feature.Set) []*feature.Feature {
	out := make([]*feature.Feature, len(set.BlockingIdx))
	for i, idx := range set.BlockingIdx {
		out[i] = &set.Features[idx]
	}
	return out
}

// measureCost weights rule predicates by measure for select_opt_seq's
// per-pair time model: numeric comparisons are cheap, token-set measures
// moderate, edit distance expensive.
func measureCost(m simfn.Measure) float64 {
	switch m {
	case simfn.MExactMatch, simfn.MAbsDiff, simfn.MRelDiff:
		return 1
	case simfn.MLevenshtein:
		return 8
	default:
		return 3
	}
}

// ruleTimer builds the feature-aware RuleTimer for select_opt_seq.
func ruleTimer(feats []*feature.Feature) func(r rules.Rule) float64 {
	return func(r rules.Rule) float64 {
		t := 0.0
		for _, p := range r.Preds {
			t += measureCost(feats[p.Feature].Measure)
		}
		if t == 0 {
			t = 1
		}
		return t
	}
}

// estimateVectorBytes estimates the memory of A×B encoded as feature
// vectors, the §10.1 plan-choice criterion.
func estimateVectorBytes(aLen, bLen, nFeatures int) int64 {
	return int64(aLen) * int64(bLen) * (int64(nFeatures)*8 + 24)
}
