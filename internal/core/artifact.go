package core

import (
	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/forest"
	"falcon/internal/index"
	"falcon/internal/model"
	"falcon/internal/rules"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// interimArtifact wraps a point-in-time forest as a model-only artifact so
// the matching stage applies it through the same artifact path the serving
// layer consumes. No serving payload is attached: mid-run, A, B, and the
// vectorizer are still live.
func (st *runState) interimArtifact(f *forest.Forest) *model.MatcherArtifact {
	return model.NewMatcherArtifact(model.New(st.set, st.modelSeq, st.modelSel, f), nil)
}

// buildArtifact assembles the complete serving artifact once the run has
// settled on its final model: feature specs with their corpora, the
// correspondence dictionaries with every B row's encoded token-ID set, and
// prefix indexes over B for the learned blocking rules.
//
// The batch pipeline indexes table A and probes it with rows of B; serving
// flips the roles — it indexes the frozen B and probes with the incoming
// A-shaped record. The flip is sound because every filterable measure is
// symmetric in its two arguments, and exact because every blocking
// strategy converges to "the pairs the positive CNF rule keeps": the
// serving path re-applies the same CNF to bit-identical feature values, so
// its answer for a record equals the batch answer for that row.
//
// The B-side builds run in-process after the workflow finishes; they are
// part of artifact assembly (the train phase's output contract), not of
// the modeled cluster run, so timelines and counters stay untouched.
func (st *runState) buildArtifact() *model.MatcherArtifact {
	sv := &model.ServingData{
		AName:  st.a.Name,
		AAttrs: append([]table.Attribute(nil), st.a.Schema.Attrs...),
		B:      st.b,
		Dicts:  map[string]*tokenize.Dict{},
	}
	corpusIdx := map[*simfn.Corpus]int{}
	seenCorr := map[string]bool{}
	for i := range st.set.Features {
		f := &st.set.Features[i]
		ci := -1
		if c := f.Corpus(); c != nil {
			idx, ok := corpusIdx[c]
			if !ok {
				docs, toks, dfs := c.State()
				idx = len(sv.Corpora)
				corpusIdx[c] = idx
				sv.Corpora = append(sv.Corpora, model.CorpusData{Docs: docs, Toks: toks, DFs: dfs})
			}
			ci = idx
		}
		sv.Feats = append(sv.Feats, model.FeatureSpec{
			Name: f.Name, Measure: f.Measure, Token: f.Token,
			ACol: f.ACol, BCol: f.BCol, Attr: f.Attr,
			Blockable: f.Blockable, Corpus: ci,
		})
		if feature.CountSet(f.Measure) {
			key := model.CorrKey(f.ACol, f.BCol, f.Token)
			if !seenCorr[key] {
				seenCorr[key] = true
				dict, _, rowsB := st.vz.CorrIDs(f.ACol, f.BCol, f.Token)
				sv.Dicts[key] = dict
				sv.Corrs = append(sv.Corrs, model.CorrData{
					ACol: f.ACol, BCol: f.BCol, Kind: f.Token,
					Ranked: append([]string(nil), dict.Tokens()...),
					RowsB:  rowsB,
				})
			}
		}
	}

	if len(st.modelSeq) > 0 {
		// Analyze the learned CNF over role-flipped blocking features so the
		// needed index specs name B columns, then build each prefix/share
		// index over B. Hash and tree indexes are rebuilt from the B table at
		// load time; only the prefix postings ship in the artifact.
		flipped := make([]*feature.Feature, len(st.set.BlockingIdx))
		for i, fi := range st.set.BlockingIdx {
			f := st.set.Features[fi]
			f.ACol, f.BCol = f.BCol, f.ACol
			flipped[i] = &f
		}
		an := filters.Analyze(rules.ToCNF(st.modelSeq), flipped)
		for _, spec := range an.NeededIndexes() {
			if spec.Kind != filters.PrefixSet && spec.Kind != filters.ShareGram {
				continue
			}
			ord := index.BuildOrdering(index.TokenFrequencies(st.b, spec.ACol, spec.Token))
			pidx := index.BuildPrefix(st.b, spec.ACol, spec.Token, ord, spec.Measure, spec.Threshold)
			ranked, post, setLen, ok := pidx.Parts()
			if !ok {
				continue // unreachable: the ordering covers the indexed column
			}
			sv.Prefix = append(sv.Prefix, model.PrefixData{
				Kind: spec.Kind, BCol: spec.ACol, Token: spec.Token,
				Measure: spec.Measure, Threshold: spec.Threshold,
				Ranked: append([]string(nil), ranked...),
				Post:   post, SetLen: setLen,
			})
		}
	}
	return model.NewMatcherArtifact(st.res.Model, sv)
}
