package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"falcon/internal/block"
	"falcon/internal/crowd"
	"falcon/internal/estimate"
	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/forest"
	"falcon/internal/learn"
	"falcon/internal/mapreduce"
	"falcon/internal/model"
	"falcon/internal/rules"
	"falcon/internal/rulesel"
	"falcon/internal/sample"
	"falcon/internal/table"
	"falcon/internal/tokenize"
	"falcon/internal/vclock"
)

// ErrCartesianTooLarge reports a matcher-only plan over a product too big
// to materialize.
var ErrCartesianTooLarge = errors.New("core: matcher-only plan needs to materialize an A×B that is too large")

// matcherOnlyPairCap bounds the Cartesian product a matcher-only plan will
// materialize in-process.
const matcherOnlyPairCap = 5_000_000

// runState carries everything a plan execution threads through.
type runState struct {
	opt    Options
	a, b   *table.Table
	oracle learn.Oracle
	cr     *crowd.Crowd
	tl     *vclock.Timeline
	set    *feature.Set
	vz     *feature.Vectorizer
	res    *Result
	ix     *filters.Indexes
	// modelSeq / modelSel capture the chosen rule sequence for the
	// exportable model.
	modelSeq []rules.Rule
	modelSel []float64
	// indexDurTotal accumulates index-build durations (masked or not) so
	// the unoptimized blocking time (Table 4's parenthetical) can be
	// reported.
	indexDurTotal time.Duration
}

// Run executes the hands-off EM workflow with a background context; see
// RunContext.
func Run(a, b *table.Table, oracle learn.Oracle, opt Options) (*Result, error) {
	return RunContext(context.Background(), a, b, oracle, opt)
}

// RunContext executes the hands-off EM workflow over tables a and b: the
// train phase (TrainContext) followed by the batch apply that the matching
// stage performs through the same artifact path the serving layer
// consumes. It is kept as the batch entry point; the train/serve split
// lives in TrainContext (produce an artifact) and
// model.MatcherArtifact.ApplyContext / internal/serve (consume one).
func RunContext(ctx context.Context, a, b *table.Table, oracle learn.Oracle, opt Options) (*Result, error) {
	return TrainContext(ctx, a, b, oracle, opt)
}

// TrainContext is the train half of the train/serve split: sampling, rule
// selection, forest training, and — on success — assembly of the complete
// serving artifact (Result.Artifact) carrying the model plus the frozen
// dictionaries, corpora, B-row ID sets, and prefix indexes over B. The
// oracle supplies ground truth consumed only by the simulated crowd
// platform. Cancellation propagates into every plan stage — cluster jobs
// stop between records, crowd waits between questions — and TrainContext
// returns ctx.Err().
func TrainContext(ctx context.Context, a, b *table.Table, oracle learn.Oracle, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	st := &runState{
		opt:    opt,
		a:      a,
		b:      b,
		oracle: oracle,
		cr:     crowd.New(opt.Platform, opt.CrowdCfg),
		tl:     vclock.New(),
		res:    &Result{},
	}
	st.set = feature.Generate(a, b)
	if len(st.set.Features) == 0 {
		return nil, fmt.Errorf("core: no attribute correspondences between %s and %s", a.Name, b.Name)
	}
	st.vz = feature.NewVectorizer(st.set, a, b)
	st.ix = filters.NewIndexes(opt.Cluster, a)

	// Plan-template choice (§10.1): block unless A×B encoded as feature
	// vectors fits in node memory.
	useBlocking := estimateVectorBytes(a.Len(), b.Len(), len(st.set.Features)) > nodeMemory(opt.Cluster)
	if opt.ForceBlocking != nil {
		useBlocking = *opt.ForceBlocking
	}

	if useBlocking {
		if err := st.runBlockingPlan(ctx); err != nil {
			return nil, err
		}
	} else {
		pairs, err := cartesianPairs(a, b, opt.ExcludeSelfPairs)
		if err != nil {
			return nil, err
		}
		st.res.Candidates = pairs
		st.res.UsedBlocking = false
		if err := st.runMatchingStage(ctx, pairs, nil); err != nil {
			return nil, err
		}
	}

	st.res.Timeline = st.tl.Stats()
	st.res.Tasks = st.tl.Tasks()
	if st.res.MatchingForest != nil {
		st.res.Model = model.New(st.set, st.modelSeq, st.modelSel, st.res.MatchingForest)
		st.res.Artifact = st.buildArtifact()
	}
	led := st.cr.Ledger()
	st.res.Cost = st.cr.TotalCost()
	st.res.Questions = led.Questions
	if err := st.cr.CheckBudget(opt.Budget); err != nil {
		return st.res, err
	}
	return st.res, nil
}

func nodeMemory(c *mapreduce.Cluster) int64 {
	if c.MapperMemory > 0 {
		return c.MapperMemory
	}
	return 2 << 30
}

func cartesianPairs(a, b *table.Table, excludeSelf bool) ([]table.Pair, error) {
	n := int64(a.Len()) * int64(b.Len())
	if n > matcherOnlyPairCap {
		return nil, ErrCartesianTooLarge
	}
	out := make([]table.Pair, 0, n)
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			if excludeSelf && i == j {
				continue
			}
			out = append(out, table.Pair{A: i, B: j})
		}
	}
	return out, nil
}

// dropSelfPairs filters (i,i) pairs from a candidate list.
func dropSelfPairs(pairs []table.Pair) []table.Pair {
	out := pairs[:0]
	for _, p := range pairs {
		if p.A != p.B {
			out = append(out, p)
		}
	}
	return out
}

// simDuration converts cost units into modeled cluster time using the
// cluster's cost model (for in-process computations that stand for MR
// jobs, like rule-coverage ranking).
func simDuration(c *mapreduce.Cluster, units int64) time.Duration {
	costUnit := c.CostUnit
	if costUnit <= 0 {
		costUnit = 25 * time.Microsecond
	}
	overhead := c.JobOverhead
	if overhead <= 0 {
		overhead = 5 * time.Second
	}
	slots := int64(c.Slots())
	return overhead + time.Duration(units/slots)*costUnit
}

// scheduleALTrace schedules an al_matcher run's iterations on the timeline,
// filling crowd windows from the background queue. Masked selections run in
// parallel with the crowd; unmasked selections gate the next crowd batch.
func (st *runState) scheduleALTrace(op string, trace []learn.IterTrace, bg *bgQueue, startDep *vclock.Task) (lastCrowd *vclock.Task) {
	prev := startDep
	for _, tr := range trace {
		machineDur := tr.Selection + tr.Training
		if tr.CrowdLatency == 0 {
			if machineDur > 0 {
				prev = st.tl.Schedule(op+"/select", op, vclock.Cluster, machineDur, prev)
			}
			continue
		}
		var crowdTask *vclock.Task
		if tr.SelectionMasked {
			// Crowd proceeds without waiting; selection overlaps it.
			crowdTask = st.tl.Schedule(op+"/label", op, vclock.Crowd, tr.CrowdLatency, startDep)
			if machineDur > 0 {
				st.tl.Schedule(op+"/select", op, vclock.Cluster, machineDur)
			}
		} else {
			sel := prev
			if machineDur > 0 {
				sel = st.tl.Schedule(op+"/select", op, vclock.Cluster, machineDur, prev)
			}
			crowdTask = st.tl.Schedule(op+"/label", op, vclock.Crowd, tr.CrowdLatency, sel)
		}
		lastCrowd = crowdTask
		prev = crowdTask
		if bg != nil {
			bg.fillWindow(crowdTask.End)
		}
	}
	return lastCrowd
}

// specResult records one speculatively executed blocking rule.
type specResult struct {
	ruleID int
	kept   int64 // estimated surviving pairs of the single-rule job
	task   *vclock.Task
	killed bool
}

// blockingPlan carries the intermediates flowing between the blocking
// plan's stages. Each stage fills the fields later stages consume.
type blockingPlan struct {
	// stageSamplePairs
	pairs      []table.Pair
	sampleTask *vclock.Task
	// stageSampleFVs
	vecs       []feature.Vector
	sampleVecs [][]float64
	fvTask     *vclock.Task
	// stageBlockingMatcher
	bg          *bgQueue
	alRes       *learn.Result
	lastALCrowd *vclock.Task
	// stageExtractRules
	cands       []rules.Rule
	extractTask *vclock.Task
	feats       []*feature.Feature
	// stageEvalRules
	evalRes       *rulesel.EvalResult
	evalCrowdEnd  time.Duration
	lastEvalCrowd *vclock.Task
	// stageApplyBlocking
	blockTask *vclock.Task
	// fallback marks that the plan degrades to matcher-only (no rules
	// learned or none retained).
	fallback bool
}

// runBlockingPlan executes the Figure-3.a plan template as explicit stages,
// checking ctx between stages (each stage also honors ctx inside its
// cluster jobs and crowd waits).
func (st *runState) runBlockingPlan(ctx context.Context) error {
	st.res.UsedBlocking = true
	p := &blockingPlan{}
	stages := []func(context.Context, *blockingPlan) error{
		st.stageSamplePairs,
		st.stageSampleFVs,
		st.stageBlockingMatcher,
		st.stageExtractRules,
		st.stageEvalRules,
		st.stageApplyBlocking,
	}
	for _, stage := range stages {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := stage(ctx, p); err != nil {
			return err
		}
		if p.fallback {
			return st.fallbackToMatcherOnly(ctx)
		}
	}
	// ---- matching stage over the candidates ----
	return st.runMatchingStage(ctx, st.res.Candidates, p.blockTask)
}

// stageSamplePairs runs sample_pairs (§5) over A×B.
func (st *runState) stageSamplePairs(ctx context.Context, p *blockingPlan) error {
	opt := st.opt
	pairs, sampleDur, err := sample.Pairs(ctx, opt.Cluster, st.a, st.b, sample.Config{
		N: opt.SampleN, Y: opt.SampleY, Seed: opt.Seed, ExcludeSelf: opt.ExcludeSelfPairs,
	})
	if err != nil {
		return err
	}
	if len(pairs) == 0 {
		return fmt.Errorf("core: sample_pairs produced no pairs")
	}
	p.pairs = pairs
	p.sampleTask = st.tl.Schedule(opSamplePairs, opSamplePairs, vclock.Cluster, sampleDur)
	return nil
}

// stageSampleFVs runs gen_fvs over the sample (blocking features only).
func (st *runState) stageSampleFVs(ctx context.Context, p *blockingPlan) error {
	vecs, fvDur, err := genFVsMR(ctx, st.opt.Cluster, st.vz, p.pairs, true)
	if err != nil {
		return err
	}
	p.vecs = vecs
	p.sampleVecs = make([][]float64, len(vecs))
	for i, v := range vecs {
		p.sampleVecs[i] = v.Values
	}
	p.fvTask = st.tl.Schedule(opGenFVs, opGenFVs, vclock.Cluster, fvDur, p.sampleTask)
	return nil
}

// stageBlockingMatcher crowdsources the blocking-stage matcher with
// al_matcher over the sample, masking generic index builds into its crowd
// windows (§10.2 opt 1).
func (st *runState) stageBlockingMatcher(ctx context.Context, p *blockingPlan) error {
	opt := st.opt
	p.bg = newBGQueue(st.tl)
	if opt.MaskIndexBuild {
		st.enqueueGenericIndexJobs(ctx, p.bg)
	}

	pool := make([]learn.Item, len(p.vecs))
	for i, v := range p.vecs {
		pool[i] = learn.Item{Pair: v.Pair, Vec: v.Values}
	}
	learner := learn.New(opt.Cluster, st.cr, st.oracle, learn.Config{
		MaxIterations: opt.ALIterations,
		Forest:        withSeed(opt.Forest, opt.Seed+10),
		SeedScore:     st.seedScoreBlocking(),
	})
	alRes, err := learner.Run(ctx, pool)
	if err != nil {
		return err
	}
	if alRes.Forest == nil {
		return fmt.Errorf("core: blocking-stage active learning produced no matcher")
	}
	p.alRes = alRes
	st.res.BlockingForest = alRes.Forest
	p.lastALCrowd = st.scheduleALTrace(opALMatcherB, alRes.Trace, p.bg, p.fvTask)
	return nil
}

// stageExtractRules runs get_blocking_rules on the blocking forest.
func (st *runState) stageExtractRules(_ context.Context, p *blockingPlan) error {
	p.cands = rules.Extract(p.alRes.Forest)
	st.res.CandidateRules = len(p.cands)
	p.extractTask = st.tl.Schedule(opGetBlockRules, opGetBlockRules, vclock.Cluster,
		2*time.Second+time.Duration(len(p.cands))*10*time.Millisecond, p.lastALCrowd)
	p.feats = blockingFeaturePtrs(st.set)
	if len(p.cands) == 0 {
		p.fallback = true
	}
	return nil
}

// stageEvalRules estimates candidate-rule precision with the crowd
// (eval_rules, §3.4).
func (st *runState) stageEvalRules(ctx context.Context, p *blockingPlan) error {
	opt := st.opt
	evalCfg := opt.EvalCfg
	evalCfg.Seed = opt.Seed + 20
	timer := ruleTimer(p.feats)
	evalRes, err := rulesel.EvalRules(ctx, p.cands, p.pairs, p.sampleVecs, st.cr,
		func(pr table.Pair) bool { return st.oracle(pr) }, timer, evalCfg)
	if err != nil {
		return err
	}
	p.evalRes = evalRes
	st.res.RetainedRules = len(evalRes.Retained)
	// Coverage ranking is a cluster job over all candidates × sample.
	rankDur := simDuration(opt.Cluster, int64(len(p.cands))*int64(len(p.vecs)))
	rankTask := st.tl.Schedule(opEvalRules+"/rank", opEvalRules, vclock.Cluster, rankDur, p.extractTask)
	p.evalCrowdEnd = rankTask.End
	p.lastEvalCrowd = rankTask
	for _, tr := range evalRes.Trace {
		if tr.CrowdLatency == 0 {
			continue
		}
		p.lastEvalCrowd = st.tl.Schedule(opEvalRules+"/label", opEvalRules, vclock.Crowd, tr.CrowdLatency, p.lastEvalCrowd)
		p.evalCrowdEnd = p.lastEvalCrowd.End
	}
	if len(evalRes.Retained) == 0 {
		p.fallback = true
	}
	return nil
}

// stageApplyBlocking picks the optimal rule sequence (select_opt_seq, §6),
// builds the indexes it needs, speculatively executes rules inside the
// eval_rules crowd window (§10.2 opt 2), chooses the physical operator
// (§10.1), and runs apply_blocking_rules.
func (st *runState) stageApplyBlocking(ctx context.Context, p *blockingPlan) error {
	opt := st.opt
	res := st.res

	// ---- select_opt_seq ----
	choice := rulesel.SelectOptSeq(p.evalRes.Retained, len(p.vecs), opt.Weights)
	res.RuleChoice = choice
	seq := choice.RuleSeq()

	// Rule-specific index building during eval_rules' crowd time: we know
	// the evaluated rule set, so build indexes for all of its predicates.
	allEvaluated := make([]rules.Rule, 0, len(p.evalRes.Retained))
	for _, er := range p.evalRes.Retained {
		allEvaluated = append(allEvaluated, er.Rule)
	}
	evalAnalysis := filters.Analyze(rules.ToCNF(allEvaluated), p.feats)
	finalAnalysis := filters.Analyze(rules.ToCNF(seq), p.feats)
	neededFinal := finalAnalysis.NeededIndexes()

	if opt.MaskIndexBuild {
		st.enqueueSpecIndexJobs(ctx, p.bg, evalAnalysis.NeededIndexes())
		p.bg.fillWindow(p.evalCrowdEnd)
	}

	// Speculative rule execution (§10.2 opt 2, Algorithm 2): execute rules
	// one by one in evaluation order while eval_rules crowdsources; jobs
	// that complete before the crowd finishes can be reused.
	clauseSel := make([]float64, len(seq))
	for i, er := range choice.Seq {
		clauseSel[i] = er.Selectivity
	}
	input := &block.Input{
		A: st.a, B: st.b,
		Analysis:    finalAnalysis,
		Indexes:     st.ix,
		Vectorizer:  st.vz,
		ClauseSel:   clauseSel,
		PassIDsOnly: opt.PassIDsOnly,
	}
	var specs []specResult
	var err error
	if opt.Speculative {
		specs, err = st.speculateRules(ctx, p.bg, p.evalRes.Retained, p.feats, p.evalCrowdEnd)
		if err != nil {
			return err
		}
		// The crowd has finished when select_opt_seq runs: kill the (at
		// most one) speculative job still in flight — Algorithm 2's
		// fallback branch. This must happen before anything else lands on
		// the cluster.
		for i := range specs {
			if specs[i].task.End > p.evalCrowdEnd {
				st.tl.Truncate(specs[i].task, p.evalCrowdEnd)
				specs[i].killed = true
			}
		}
	}

	selTask := st.tl.Schedule(opSelOptSeq, opSelOptSeq, vclock.Cluster, 100*time.Millisecond, p.lastEvalCrowd)

	// ---- apply_blocking_rules ----
	// Ensure every index the final rule needs exists (computationally);
	// foreground-schedule only the ones masking didn't already build.
	if err := st.ensureForeground(ctx, neededFinal, opt.MaskIndexBuild, p.bg); err != nil {
		return err
	}

	st.modelSeq = seq
	st.modelSel = clauseSel
	strategy := block.Choose(opt.Cluster, input, choice.Selectivity)
	if opt.ForceStrategy != nil {
		strategy = *opt.ForceStrategy
	}
	res.Strategy = strategy
	full, err := block.Run(ctx, opt.Cluster, input, strategy)
	if err != nil {
		return err
	}
	res.Candidates = full.Pairs
	if opt.ExcludeSelfPairs {
		res.Candidates = dropSelfPairs(res.Candidates)
	}
	res.UnoptimizedBlockTime = st.indexDurTotal + full.SimTime

	if reuseTask := st.reuseSpeculative(specs, seq, full.SimTime, p.evalCrowdEnd, selTask); reuseTask != nil {
		res.SpecRuleHit = true
		p.blockTask = reuseTask
	} else {
		p.blockTask = st.tl.Schedule(opApplyRules, opApplyRules, vclock.Cluster, full.SimTime, selTask)
	}
	return nil
}

// enqueueGenericIndexJobs builds the rule-independent indexes (token
// orderings, hash indexes, tree indexes) and queues their durations as
// maskable background work.
func (st *runState) enqueueGenericIndexJobs(ctx context.Context, bg *bgQueue) {
	seenOrd := map[string]bool{}
	for _, fi := range st.set.BlockingIdx {
		f := &st.set.Features[fi]
		switch {
		case f.Measure.SetBased() || f.Measure.String() == "levenshtein":
			key := orderingKey(f.ACol, f.Token)
			if f.Token == "" || seenOrd[key] {
				continue
			}
			seenOrd[key] = true
			d, err := st.ix.EnsureOrdering(ctx, f.ACol, f.Token)
			if err == nil && d > 0 {
				st.indexDurTotal += d
				bg.enqueue(bgJob{name: "index/ordering", op: opApplyRules, dur: d, key: key})
			}
		case f.Measure.NumericBased():
			d, err := st.ix.EnsureTree(ctx, f.ACol)
			if err == nil && d > 0 {
				st.indexDurTotal += d
				bg.enqueue(bgJob{name: "index/tree", op: opApplyRules, dur: d,
					key: filters.IndexSpec{Kind: filters.Range, ACol: f.ACol}.Key()})
			}
		default: // exact_match
			d, err := st.ix.EnsureHash(ctx, f.ACol)
			if err == nil && d > 0 {
				st.indexDurTotal += d
				bg.enqueue(bgJob{name: "index/hash", op: opApplyRules, dur: d,
					key: filters.IndexSpec{Kind: filters.Equivalence, ACol: f.ACol}.Key()})
			}
		}
	}
}

// enqueueSpecIndexJobs builds predicate-specific indexes for the evaluated
// rules and queues their durations.
func (st *runState) enqueueSpecIndexJobs(ctx context.Context, bg *bgQueue, specs []filters.IndexSpec) {
	for _, spec := range specs {
		d, err := st.ix.EnsureSpec(ctx, spec)
		if err != nil || d == 0 {
			continue
		}
		st.indexDurTotal += d
		bg.enqueue(bgJob{name: "index/" + spec.Kind.String(), op: opApplyRules, dur: d, key: spec.Key()})
	}
}

// ensureForeground builds any indexes the final sequence still needs and
// schedules their durations as foreground cluster tasks. When masking was
// on, queued-but-unscheduled index jobs for the final rules drain here;
// pending builds for predicates the final sequence dropped are cancelled.
func (st *runState) ensureForeground(ctx context.Context, needed []filters.IndexSpec, masked bool, bg *bgQueue) error {
	if masked && bg.pending() {
		neededKeys := map[string]bool{}
		for _, spec := range needed {
			neededKeys[spec.Key()] = true
			if spec.Kind == filters.PrefixSet || spec.Kind == filters.ShareGram {
				neededKeys[orderingKey(spec.ACol, spec.Token)] = true
			}
		}
		bg.drainNeeded(neededKeys)
	}
	for _, spec := range needed {
		d, err := st.ix.EnsureSpec(ctx, spec)
		if err != nil {
			return err
		}
		if d > 0 {
			st.indexDurTotal += d
			st.tl.Schedule("index/"+spec.Kind.String(), opApplyRules, vclock.Cluster, d)
		}
	}
	return nil
}

// speculateRules models the §10.2(2) speculative execution of evaluated
// rules, one at a time (most promising first), inside eval_rules' crowd
// window. Job durations come from the cluster cost model and the rules'
// sample selectivities; the actual candidate set is produced once by the
// full blocking run, so no work is duplicated in-process.
func (st *runState) speculateRules(ctx context.Context, bg *bgQueue, retained []rulesel.EvaluatedRule, feats []*feature.Feature, crowdEnd time.Duration) ([]specResult, error) {
	var out []specResult
	maxSpec := st.opt.SpeculativeRuleCap
	cart := int64(st.a.Len()) * int64(st.b.Len())
	for i, er := range retained {
		if i >= maxSpec {
			break
		}
		if st.tl.ResourceFree(vclock.Cluster) >= crowdEnd {
			break // nothing more can even start inside the window
		}
		an := filters.Analyze(rules.ToCNF([]rules.Rule{er.Rule}), feats)
		// Any index the speculative job needs and masking has not yet
		// built is built as part of the job, so its time counts here.
		ixDur, err := st.ix.EnsureAll(ctx, an.NeededIndexes())
		if err != nil {
			return nil, err
		}
		st.indexDurTotal += ixDur
		kept := int64(er.Selectivity * float64(cart))
		units := int64(st.b.Len())*specProbeCost + kept*int64(len(er.Rule.Preds)+1)
		dur := ixDur + simDuration(st.opt.Cluster, units)
		task := st.tl.Schedule(fmt.Sprintf("spec-rule-%d", er.Rule.ID), opApplyRules, vclock.Cluster, dur)
		out = append(out, specResult{ruleID: er.Rule.ID, kept: kept, task: task})
	}
	return out, nil
}

// specProbeCost is the modeled index-probe cost per B tuple in a
// speculative single-rule job.
const specProbeCost = 20

// reuseSpeculative implements Algorithm 2's decision: if any rule of the
// chosen sequence finished speculatively before the crowd did, reuse the
// smallest completed output and apply the remaining rules to it in a
// map-only job; kill any in-flight speculative job.
func (st *runState) reuseSpeculative(specs []specResult, seq []rules.Rule, fullDur time.Duration, crowdEnd time.Duration, dep *vclock.Task) *vclock.Task {
	if len(specs) == 0 {
		return nil
	}
	inSeq := map[int]bool{}
	for _, r := range seq {
		inSeq[r.ID] = true
	}
	var best *specResult
	for i := range specs {
		sp := &specs[i]
		if sp.killed || sp.task.End > crowdEnd {
			continue // killed in flight; partial-result reuse is not modeled
		}
		if !inSeq[sp.ruleID] {
			continue
		}
		if best == nil || sp.kept < best.kept {
			best = sp
		}
	}
	if best == nil {
		return nil
	}
	// Apply the remaining rules to the completed output in a map-only job.
	// The result equals full blocking (the completed rule already dropped
	// its share), so the candidates come from the full run and only the
	// map-only time is charged — but only when that beats re-running the
	// blocking job outright (on small inputs the job overhead dominates
	// and reuse buys nothing; the planner falls back, as Algorithm 2's
	// non-reuse branches do).
	units := best.kept * int64(len(seq))
	reuseDur := simDuration(st.opt.Cluster, units)
	if reuseDur >= fullDur {
		return nil
	}
	return st.tl.Schedule(opApplyRules+"/reuse", opApplyRules, vclock.Cluster, reuseDur, dep)
}

// seedScoreBlocking ranks blocking-feature vectors for the seed round:
// the mean of bounded similarity features (distances and missing values
// are skipped, since their magnitudes would swamp the similarities).
func (st *runState) seedScoreBlocking() func([]float64) float64 {
	feats := blockingFeaturePtrs(st.set)
	return similarityMean(func(i int) bool { return feats[i].Measure.Distance() })
}

// seedScoreFull is seedScoreBlocking for the full feature space.
func (st *runState) seedScoreFull() func([]float64) float64 {
	return similarityMean(func(i int) bool { return st.set.Features[i].Measure.Distance() })
}

func similarityMean(isDistance func(i int) bool) func([]float64) float64 {
	return func(vec []float64) float64 {
		sum, n := 0.0, 0
		for i, v := range vec {
			if isDistance(i) || v == feature.Missing {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
}

// orderingKey identifies a global-token-ordering build job.
func orderingKey(col int, kind tokenize.Kind) string {
	return fmt.Sprintf("ordering/%d/%s", col, kind)
}

// fallbackToMatcherOnly degrades to the Figure-3.b plan when blocking
// cannot proceed (no rules learned or none retained).
func (st *runState) fallbackToMatcherOnly(ctx context.Context) error {
	pairs, err := cartesianPairs(st.a, st.b, st.opt.ExcludeSelfPairs)
	if err != nil {
		return fmt.Errorf("core: blocking produced no usable rules and %w", err)
	}
	st.res.UsedBlocking = false
	st.res.Candidates = pairs
	return st.runMatchingStage(ctx, pairs, nil)
}

// runMatchingStage runs gen_fvs + al_matcher + apply_matcher over the
// candidate pairs (both plan templates share it).
func (st *runState) runMatchingStage(ctx context.Context, candidates []table.Pair, startDep *vclock.Task) error {
	opt := st.opt
	res := st.res
	if len(candidates) == 0 {
		res.Matches = nil
		return nil
	}

	vecs, fvDur, err := genFVsMR(ctx, opt.Cluster, st.vz, candidates, false)
	if err != nil {
		return err
	}
	fvTask := st.tl.Schedule(opGenFVs2, opGenFVs2, vclock.Cluster, fvDur, startDep)

	pool := make([]learn.Item, len(vecs))
	for i, v := range vecs {
		pool[i] = learn.Item{Pair: v.Pair, Vec: v.Values}
	}
	masked := opt.MaskedSelection && len(pool) >= opt.MaskedSelectionMinPool
	learner := learn.New(opt.Cluster, st.cr, st.oracle, learn.Config{
		MaxIterations: opt.ALIterations,
		Forest:        withSeed(opt.Forest, opt.Seed+30),
		Masked:        masked,
		SeedScore:     st.seedScoreFull(),
	})
	alRes, err := learner.Run(ctx, pool)
	if err != nil {
		return err
	}
	if alRes.Forest == nil {
		return fmt.Errorf("core: matching-stage active learning produced no matcher")
	}
	res.MatchingForest = alRes.Forest
	lastCrowd := st.scheduleALTrace(opALMatcherM, alRes.Trace, nil, fvTask)

	// Apply through an interim artifact so batch Match structurally
	// trains-then-applies along the same path the serving layer consumes.
	matches, applyDur, err := applyArtifactMR(ctx, opt.Cluster, st.interimArtifact(alRes.Forest), vecs)
	if err != nil {
		return err
	}
	res.Matches = matches

	// Speculative matcher execution (§10.2 opt 2): while the final crowd
	// iterations run, apply the best matcher so far to the candidates. If
	// learning had converged, that matcher equals the final one and the
	// foreground application is saved.
	specHit := false
	if opt.Speculative && lastCrowd != nil {
		spec := st.tl.Schedule("spec-matcher", opApplyMatcher, vclock.Cluster, applyDur)
		if alRes.Converged && spec.End <= lastCrowd.End {
			res.SpecMatcherHit = true
			specHit = true
		} else {
			// Miss: the speculative run was wasted; kill what ran past the
			// crowd and apply for real.
			st.tl.Truncate(spec, lastCrowd.End)
		}
	}
	if !specHit {
		st.tl.Schedule(opApplyMatcher, opApplyMatcher, vclock.Cluster, applyDur, lastCrowd)
	}
	return st.runEstimatorAndIterate(ctx, vecs, alRes)
}

// opEstimator tags Accuracy Estimator and iterative-workflow activity.
const opEstimator = "accuracy_estimator"

// runEstimatorAndIterate implements the Corleone extensions of Figure 1:
// the Accuracy Estimator, and (optionally) the full iterative workflow —
// estimate accuracy, crowd-label the most difficult pairs, retrain the
// matcher, re-match, and stop when the estimated accuracy no longer
// improves (paper §3.1; §12 lists the estimator as the next operator).
func (st *runState) runEstimatorAndIterate(ctx context.Context, vecs []feature.Vector, alRes *learn.Result) error {
	opt := st.opt
	res := st.res
	if !opt.EstimateAccuracy && opt.IterateRounds <= 0 {
		return nil
	}

	predictions := func(f *forest.Forest) []estimate.Prediction {
		preds := make([]estimate.Prediction, len(vecs))
		for i, v := range vecs {
			conf := f.Confidence(v.Values)
			preds[i] = estimate.Prediction{Pair: v.Pair, Match: conf > 0.5, Confidence: conf}
		}
		return preds
	}
	estCfg := estimate.Config{Seed: opt.Seed + 40}
	runEstimate := func(f *forest.Forest, round int) (estimate.Accuracy, error) {
		estCfg.Seed = opt.Seed + 40 + int64(round)*31
		acc, err := estimate.MatcherAccuracy(ctx, st.cr, func(p table.Pair) bool { return st.oracle(p) }, predictions(f), estCfg)
		if err != nil {
			return estimate.Accuracy{}, err
		}
		st.tl.Schedule(opEstimator+"/label", opEstimator, vclock.Crowd, acc.CrowdLatency)
		return acc, nil
	}

	f := alRes.Forest
	acc, err := runEstimate(f, 0)
	if err != nil {
		return err
	}
	res.Accuracy = &acc
	res.RoundF1 = []float64{acc.F1}
	if opt.IterateRounds <= 0 {
		return nil
	}

	labeledPairs := map[table.Pair]bool{}
	for _, p := range alRes.LabeledPairs {
		labeledPairs[p] = true
	}
	byPair := map[table.Pair]int{}
	for i, v := range vecs {
		byPair[v.Pair] = i
	}
	training := append([]forest.Example(nil), alRes.Labeled...)
	batch := st.cr.BatchSize()
	const improveDelta = 0.005
	for round := 1; round <= opt.IterateRounds; round++ {
		// Locate the difficult pairs not yet labeled and crowd-label them.
		var fresh []estimate.Prediction
		for _, dp := range estimate.DifficultPairs(predictions(f), len(vecs)) {
			if labeledPairs[dp.Pair] {
				continue
			}
			fresh = append(fresh, dp)
			if len(fresh) == batch {
				break
			}
		}
		if len(fresh) == 0 {
			break
		}
		qs := make([]crowd.Question, len(fresh))
		for i, dp := range fresh {
			qs[i] = crowd.Question{Pair: dp.Pair, Truth: st.oracle(dp.Pair)}
		}
		labels, lat, err := st.cr.LabelMajorityContext(ctx, qs)
		if err != nil {
			return err
		}
		labelTask := st.tl.Schedule(opEstimator+"/difficult", opEstimator, vclock.Crowd, lat)
		for i, dp := range fresh {
			labeledPairs[dp.Pair] = true
			training = append(training, forest.Example{Values: vecs[byPair[dp.Pair]].Values, Label: labels[i]})
		}

		// Retrain and re-apply the matcher.
		cand := forest.Train(training, withSeed(opt.Forest, opt.Seed+50+int64(round)))
		matches, applyDur, err := applyArtifactMR(ctx, opt.Cluster, st.interimArtifact(cand), vecs)
		if err != nil {
			return err
		}
		st.tl.Schedule(opApplyMatcher+"/iterate", opEstimator, vclock.Cluster, applyDur, labelTask)

		newAcc, err := runEstimate(cand, round)
		if err != nil {
			return err
		}
		res.RoundF1 = append(res.RoundF1, newAcc.F1)
		if newAcc.F1 <= acc.F1+improveDelta {
			break // estimated accuracy no longer improves
		}
		// Accept the improved matcher.
		f = cand
		acc = newAcc
		res.Accuracy = &acc
		res.MatchingForest = cand
		res.Matches = matches
	}
	return nil
}

func withSeed(cfg forest.Config, seed int64) forest.Config {
	cfg.Seed = seed
	return cfg
}
