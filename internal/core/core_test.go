package core

import (
	"strings"
	"testing"

	"falcon/internal/block"
	"falcon/internal/crowd"
	"falcon/internal/datagen"
	"falcon/internal/metrics"
	"falcon/internal/vclock"
)

// testOptions returns laptop-scale options with all optimizations on.
func testOptions(seed int64) Options {
	o := DefaultOptions()
	o.Seed = seed
	o.SampleN = 4000
	o.SampleY = 20
	o.ALIterations = 10
	o.MaskedSelectionMinPool = 1000
	o.Platform = crowd.NewRandomWorkers(0, 0, seed+1)
	return o
}

func runSongs(t *testing.T, n int, opt Options) (*datagen.Dataset, *Result) {
	t.Helper()
	d := datagen.Songs(n, 42)
	res, err := Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestEndToEndBlockingPlan(t *testing.T) {
	opt := testOptions(1)
	force := true
	opt.ForceBlocking = &force
	d, res := runSongs(t, 800, opt)

	if !res.UsedBlocking {
		t.Fatal("blocking plan not used")
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates survived blocking")
	}
	// Blocking must prune A×B substantially while keeping recall high.
	cart := d.A.Len() * d.B.Len()
	if len(res.Candidates) >= cart/2 {
		t.Fatalf("blocking kept %d of %d pairs", len(res.Candidates), cart)
	}
	recall := metrics.BlockingRecall(res.Candidates, d.Truth)
	if recall < 0.85 {
		t.Fatalf("blocking recall = %.3f, want ≥0.85", recall)
	}
	// End-to-end F1 should be solid with a perfect crowd.
	m := metrics.Score(res.Matches, d.Truth)
	if m.F1 < 0.75 {
		t.Fatalf("end-to-end F1 = %.3f (%v), want ≥0.75", m.F1, m)
	}
	// Accounting sanity.
	if res.Cost <= 0 || res.Questions <= 0 {
		t.Fatalf("cost/questions = %v/%d", res.Cost, res.Questions)
	}
	if res.Cost > crowd.CostCap(crowd.DefaultCapParams()) {
		t.Fatalf("cost %v exceeds C_max", res.Cost)
	}
	tl := res.Timeline
	if tl.CrowdTime <= 0 || tl.MachineTime <= 0 || tl.Total <= 0 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.MaskedMachine+tl.UnmaskedMachine != tl.MachineTime {
		t.Fatal("masking accounting inconsistent")
	}
	if res.RetainedRules == 0 || res.CandidateRules < res.RetainedRules {
		t.Fatalf("rules: %d candidates, %d retained", res.CandidateRules, res.RetainedRules)
	}
}

func TestEndToEndMatcherOnlyPlan(t *testing.T) {
	opt := testOptions(2)
	d := datagen.Songs(60, 7) // tiny → matcher-only plan chosen automatically
	res, err := Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedBlocking {
		t.Fatal("tiny tables should take the matcher-only plan")
	}
	if len(res.Candidates) != d.A.Len()*d.B.Len() {
		t.Fatalf("matcher-only candidates = %d, want full product", len(res.Candidates))
	}
	m := metrics.Score(res.Matches, d.Truth)
	if m.F1 < 0.7 {
		t.Fatalf("matcher-only F1 = %.3f", m.F1)
	}
}

func TestMaskingReducesUnmaskedTime(t *testing.T) {
	force := true

	optOn := testOptions(3)
	optOn.ForceBlocking = &force
	_, on := runSongs(t, 700, optOn)

	optOff := testOptions(3)
	optOff.ForceBlocking = &force
	optOff.MaskIndexBuild = false
	optOff.Speculative = false
	optOff.MaskedSelection = false
	_, off := runSongs(t, 700, optOff)

	if on.Timeline.UnmaskedMachine >= off.Timeline.UnmaskedMachine {
		t.Fatalf("masking did not reduce unmasked machine time: on=%v off=%v",
			on.Timeline.UnmaskedMachine, off.Timeline.UnmaskedMachine)
	}
	if off.Timeline.MaskedMachine > on.Timeline.MaskedMachine {
		t.Fatalf("masked machine time: on=%v < off=%v", on.Timeline.MaskedMachine, off.Timeline.MaskedMachine)
	}
	// Optimizations must not change the matches.
	if len(on.Matches) == 0 {
		t.Fatal("no matches")
	}
}

func TestForceStrategy(t *testing.T) {
	force := true
	for _, s := range []block.Strategy{block.ApplyAll, block.ApplyGreedy} {
		opt := testOptions(4)
		opt.ForceBlocking = &force
		strat := s
		opt.ForceStrategy = &strat
		_, res := runSongs(t, 400, opt)
		if res.Strategy != s {
			t.Fatalf("strategy = %v, want %v", res.Strategy, s)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	force := true
	opt := testOptions(5)
	opt.ForceBlocking = &force
	_, r1 := runSongs(t, 400, opt)
	_, r2 := runSongs(t, 400, opt)
	if len(r1.Matches) != len(r2.Matches) {
		t.Fatalf("matches differ: %d vs %d", len(r1.Matches), len(r2.Matches))
	}
	if r1.Cost != r2.Cost || r1.Questions != r2.Questions {
		t.Fatal("cost accounting differs across identical runs")
	}
	if r1.Timeline.Total != r2.Timeline.Total {
		t.Fatal("timeline differs across identical runs")
	}
}

func TestCrowdErrorDegradesGracefully(t *testing.T) {
	force := true
	optClean := testOptions(6)
	optClean.ForceBlocking = &force
	dClean, clean := runSongs(t, 500, optClean)

	optNoisy := testOptions(6)
	optNoisy.ForceBlocking = &force
	optNoisy.Platform = crowd.NewRandomWorkers(0.15, 0, 99)
	dNoisy, noisy := runSongs(t, 500, optNoisy)

	f1Clean := metrics.Score(clean.Matches, dClean.Truth).F1
	f1Noisy := metrics.Score(noisy.Matches, dNoisy.Truth).F1
	if f1Noisy > f1Clean+0.05 {
		t.Fatalf("noisy crowd (%v) beat clean crowd (%v)?", f1Noisy, f1Clean)
	}
	if f1Noisy < 0.4 {
		t.Fatalf("15%% crowd error collapsed F1 to %v", f1Noisy)
	}
}

func TestBudgetEnforced(t *testing.T) {
	opt := testOptions(7)
	force := true
	opt.ForceBlocking = &force
	opt.Budget = 0.10 // ten cents
	d := datagen.Songs(400, 42)
	res, err := Run(d.A, d.B, d.Oracle(), opt)
	if err == nil {
		t.Fatalf("budget of $0.10 should be exceeded (spent %v)", res.Cost)
	}
	if _, ok := err.(crowd.ErrBudgetExceeded); !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
}

func TestPerOperatorBreakdown(t *testing.T) {
	force := true
	opt := testOptions(8)
	opt.ForceBlocking = &force
	_, res := runSongs(t, 500, opt)
	for _, op := range []string{opSamplePairs, opGenFVs, opALMatcherB, opEvalRules, opApplyRules, opALMatcherM} {
		ot, ok := res.Timeline.PerOp[op]
		if !ok {
			t.Fatalf("missing per-op entry %s (have %v)", op, keys(res.Timeline.PerOp))
		}
		if ot.Crowd == 0 && ot.Machine == 0 {
			t.Fatalf("operator %s recorded no time", op)
		}
	}
	if res.UnoptimizedBlockTime <= 0 {
		t.Fatal("no unoptimized blocking time recorded")
	}
}

func keys(m map[string]vclock.OpTime) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestMatcherOnlyGuard(t *testing.T) {
	d := datagen.Songs(3000, 1)
	opt := testOptions(9)
	f := false
	opt.ForceBlocking = &f
	if _, err := Run(d.A, d.B, d.Oracle(), opt); err == nil {
		t.Fatal("9M-pair matcher-only plan should refuse")
	}
}

func TestEstimateVectorBytes(t *testing.T) {
	if estimateVectorBytes(1000, 1000, 50) <= estimateVectorBytes(10, 10, 50) {
		t.Fatal("estimate not monotone")
	}
}

func TestExplain(t *testing.T) {
	opt := testOptions(31)
	force := true
	opt.ForceBlocking = &force
	opt.EstimateAccuracy = true
	_, res := runSongsWith(t, 400, opt)
	out := res.Explain()
	for _, want := range []string{
		"Figure 3.a", "sample_pairs", "al_matcher(block)", "eval_rules",
		"apply_blocking_rules", "apply_matcher", "TOTALS", "accuracy_estimator",
		res.Strategy.String(),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
	// Matcher-only plan labels itself.
	d := datagen.Songs(50, 7)
	res2, err := Run(d.A, d.B, d.Oracle(), testOptions(32))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Explain(), "Figure 3.b") {
		t.Fatal("matcher-only plan not labeled")
	}
}
