package core

import (
	"fmt"
	"strings"

	"falcon/internal/metrics"
)

// Explain renders the executed EM plan in RDBMS EXPLAIN style: the Figure-3
// template that was chosen, each operator with its measured crowd/machine
// time, the learned rule sequence with its §6 statistics, the physical
// operator §10.1 selected, and the masking summary. It reads top-down in
// execution order.
func (r *Result) Explain() string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	if r.UsedBlocking {
		w("EM PLAN (Figure 3.a: Blocker + Matcher)\n")
	} else {
		w("EM PLAN (Figure 3.b: Matcher only)\n")
	}

	line := func(op, note string) {
		ot, ok := r.Timeline.PerOp[op]
		if !ok {
			return
		}
		visible := ot.Crowd + ot.Machine - ot.Masked
		w("  %-22s crowd=%-9s machine=%-9s masked=%-9s visible=%-9s %s\n",
			op,
			metrics.FmtDuration(ot.Crowd), metrics.FmtDuration(ot.Machine),
			metrics.FmtDuration(ot.Masked), metrics.FmtDuration(visible), note)
	}

	if r.UsedBlocking {
		line(opSamplePairs, "")
		line(opGenFVs, "(blocking features)")
		line(opALMatcherB, "")
		line(opGetBlockRules, fmt.Sprintf("→ %d candidate rules", r.CandidateRules))
		line(opEvalRules, fmt.Sprintf("→ %d retained", r.RetainedRules))
		line(opSelOptSeq, fmt.Sprintf("→ %d-rule sequence (prec≥%.3f sel=%.4f)",
			len(r.RuleChoice.Seq), r.RuleChoice.Precision, r.RuleChoice.Selectivity))
		specNote := ""
		if r.SpecRuleHit {
			specNote = "[speculative output reused] "
		}
		line(opApplyRules, fmt.Sprintf("%svia %s, unoptimized %s → %s candidates",
			specNote, r.Strategy, metrics.FmtDuration(r.UnoptimizedBlockTime),
			metrics.FmtCount(int64(len(r.Candidates)))))
	}
	line(opGenFVs2, "(full feature space)")
	line(opALMatcherM, "")
	matcherNote := fmt.Sprintf("→ %s matches", metrics.FmtCount(int64(len(r.Matches))))
	if r.SpecMatcherHit {
		matcherNote = "[speculative matcher reused] " + matcherNote
	}
	line(opApplyMatcher, matcherNote)
	line(opEstimator, estimatorNote(r))

	w("TOTALS  crowd=%s machine=%s (masked %s, unmasked %s) total=%s cost=$%.2f (%d questions)\n",
		metrics.FmtDuration(r.Timeline.CrowdTime),
		metrics.FmtDuration(r.Timeline.MachineTime),
		metrics.FmtDuration(r.Timeline.MaskedMachine),
		metrics.FmtDuration(r.Timeline.UnmaskedMachine),
		metrics.FmtDuration(r.Timeline.Total),
		r.Cost, r.Questions)
	return sb.String()
}

func estimatorNote(r *Result) string {
	if r.Accuracy == nil {
		return ""
	}
	note := fmt.Sprintf("→ P=%.1f%%±%.1f R=%.1f%%±%.1f F1=%.1f%%",
		r.Accuracy.Precision*100, r.Accuracy.PrecisionErr*100,
		r.Accuracy.Recall*100, r.Accuracy.RecallErr*100, r.Accuracy.F1*100)
	if len(r.RoundF1) > 1 {
		note += fmt.Sprintf(" over %d rounds", len(r.RoundF1))
	}
	return note
}
