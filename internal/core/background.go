package core

import (
	"time"

	"falcon/internal/vclock"
)

// bgJob is a unit of cluster work that masking may schedule inside a
// crowd-wait window (§10.2): index building or a speculative rule/matcher
// execution. The work itself has already been performed in-process (the
// engine is deterministic); Dur is its modeled cluster time, and the queue
// decides *when* it lands on the timeline.
type bgJob struct {
	name string
	op   string
	dur  time.Duration
	// key identifies the index spec this job builds (empty for other
	// work); pending jobs whose spec the final rules do not need are
	// cancelled instead of drained.
	key string
	// onScheduled receives the scheduled task (e.g. to record a
	// speculative job's end time).
	onScheduled func(*vclock.Task)
}

// bgQueue packs background jobs into the cluster's idle time while the
// crowd works. Jobs run in FIFO order; a job is started inside a window
// only if it fits entirely before the window closes — an overrunning
// background job would block the next foreground operator (pair selection
// gates the next crowd batch) and stretch the critical path, defeating the
// optimization.
type bgQueue struct {
	tl   *vclock.Timeline
	jobs []bgJob
}

func newBGQueue(tl *vclock.Timeline) *bgQueue {
	return &bgQueue{tl: tl}
}

// enqueue adds a job to the back of the queue.
func (q *bgQueue) enqueue(j bgJob) { q.jobs = append(q.jobs, j) }

// pending reports whether jobs remain.
func (q *bgQueue) pending() bool { return len(q.jobs) > 0 }

// fillWindow schedules queued jobs that fit before `until` (typically the
// end of the crowd task just scheduled).
func (q *bgQueue) fillWindow(until time.Duration) {
	for len(q.jobs) > 0 {
		free := q.tl.ResourceFree(vclock.Cluster)
		if free >= until || q.jobs[0].dur > until-free {
			return
		}
		q.pop()
	}
}

// drainNeeded schedules the remaining jobs whose keys are needed
// (foreground completion of index builds masking could not hide) and
// cancels the rest — once the final rule sequence is known, pending builds
// for other rules' predicates are simply never started.
func (q *bgQueue) drainNeeded(needed map[string]bool) *vclock.Task {
	var last *vclock.Task
	for len(q.jobs) > 0 {
		if q.jobs[0].key == "" || needed[q.jobs[0].key] {
			last = q.pop()
			continue
		}
		q.jobs = q.jobs[1:] // cancelled
	}
	return last
}

func (q *bgQueue) pop() *vclock.Task {
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	t := q.tl.Schedule(j.name, j.op, vclock.Cluster, j.dur)
	if j.onScheduled != nil {
		j.onScheduled(t)
	}
	return t
}
