package serve

import (
	"bytes"
	"testing"

	"falcon/internal/block"
	"falcon/internal/core"
	"falcon/internal/crowd"
	"falcon/internal/datagen"
	"falcon/internal/model"
)

// trainSongs runs the full batch workflow at laptop scale and returns the
// dataset and result (with its serving artifact).
func trainSongs(t testing.TB, n int, seed int64, mut func(*core.Options)) (*datagen.Dataset, *core.Result) {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Seed = seed
	opt.SampleN = 4000
	opt.SampleY = 20
	opt.ALIterations = 10
	opt.MaskedSelectionMinPool = 1000
	opt.Platform = crowd.NewRandomWorkers(0, 0, seed+1)
	if mut != nil {
		mut(&opt)
	}
	d := datagen.Songs(n, 42)
	res, err := core.Run(d.A, d.B, d.Oracle(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

// loadBundle round-trips the artifact through the wire format and builds a
// serving bundle, so equivalence checks also exercise Save/Load.
func loadBundle(t testing.TB, res *core.Result) *Bundle {
	t.Helper()
	if res.Artifact == nil {
		t.Fatal("run produced no artifact")
	}
	var buf bytes.Buffer
	if err := res.Artifact.Save(&buf); err != nil {
		t.Fatal(err)
	}
	art, err := model.LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBundle(art)
	if err != nil {
		t.Fatal(err)
	}
	return bn
}

// checkEquivalence asserts that MatchOne on every A row reproduces exactly
// the batch run's matches for that row.
func checkEquivalence(t *testing.T, d *datagen.Dataset, res *core.Result) {
	t.Helper()
	bn := loadBundle(t, res)
	want := map[int]map[int]bool{}
	for _, p := range res.Matches {
		if want[p.A] == nil {
			want[p.A] = map[int]bool{}
		}
		want[p.A][p.B] = true
	}
	if len(res.Matches) == 0 {
		t.Fatal("batch run produced no matches; equivalence check is vacuous")
	}
	for a := 0; a < d.A.Len(); a++ {
		got, err := bn.MatchOne(d.A.Tuples[a].Values)
		if err != nil {
			t.Fatal(err)
		}
		gotSet := map[int]bool{}
		for _, m := range got {
			gotSet[m.BRow] = true
			if m.Score <= 0.5 {
				t.Errorf("row %d: match %d has score %.3f, want majority confidence", a, m.BRow, m.Score)
			}
		}
		for b := range want[a] {
			if !gotSet[b] {
				t.Errorf("row %d: batch match %d missing from serve answer", a, b)
			}
		}
		for b := range gotSet {
			if !want[a][b] {
				t.Errorf("row %d: serve match %d absent from batch answer", a, b)
			}
		}
	}
}

func TestServeMatchesBatchBlockingPlan(t *testing.T) {
	force := true
	d, res := trainSongs(t, 800, 1, func(o *core.Options) { o.ForceBlocking = &force })
	if !res.UsedBlocking {
		t.Fatal("blocking plan not used")
	}
	if len(res.Artifact.Prefix) == 0 && len(res.Artifact.RuleSeq) > 0 {
		t.Log("note: learned rules needed no prefix indexes")
	}
	checkEquivalence(t, d, res)
}

func TestServeMatchesBatchMatcherOnlyPlan(t *testing.T) {
	d, res := trainSongs(t, 60, 2, nil)
	if res.UsedBlocking {
		t.Fatal("tiny tables should take the matcher-only plan")
	}
	checkEquivalence(t, d, res)
}

func TestServeMatchesBatchAllStrategies(t *testing.T) {
	force := true
	for _, s := range []block.Strategy{
		block.ApplyAll, block.ApplyGreedy, block.ApplyConjunct,
		block.ApplyPredicate, block.MapSide, block.ReduceSplit,
	} {
		strat := s
		d, res := trainSongs(t, 400, 4, func(o *core.Options) {
			o.ForceBlocking = &force
			o.ForceStrategy = &strat
		})
		if res.Strategy != s {
			t.Fatalf("strategy = %v, want %v", res.Strategy, s)
		}
		checkEquivalence(t, d, res)
	}
}

func TestRecordByName(t *testing.T) {
	d, res := trainSongs(t, 60, 2, nil)
	bn := loadBundle(t, res)

	names := bn.ColNames()
	vals := map[string]string{}
	for i, n := range names {
		vals[n] = d.A.Tuples[0].Values[i]
	}
	rec, err := bn.Record(vals)
	if err != nil {
		t.Fatal(err)
	}
	fromMap, err := bn.MatchOne(rec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := bn.MatchOne(d.A.Tuples[0].Values)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromMap) != len(direct) {
		t.Fatalf("named record answer %v != positional answer %v", fromMap, direct)
	}

	if _, err := bn.Record(map[string]string{"no_such_column": "x"}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := bn.MatchOne(make([]string, len(names)+1)); err == nil {
		t.Fatal("wrong-arity record accepted")
	}
}

func TestNewBundleRejectsModelOnlyArtifact(t *testing.T) {
	_, res := trainSongs(t, 60, 2, nil)
	interim := model.NewMatcherArtifact(res.Artifact.TrainedModel(), nil)
	if _, err := NewBundle(interim); err == nil {
		t.Fatal("bundle built from artifact without serving payload")
	}
	if _, err := NewBundle(nil); err == nil {
		t.Fatal("bundle built from nil artifact")
	}
}
