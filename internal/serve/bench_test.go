package serve

import (
	"slices"
	"testing"
	"time"

	"falcon/internal/core"
)

// BenchmarkServeMatchOne measures the point-lookup serving path: one
// A-shaped record tokenized, encoded, probed against the frozen prefix
// indexes, CNF-verified, and forest-scored per iteration. Reports
// throughput (qps), tail latency (p99-ns), and allocations per request —
// the serving SLO numbers BENCH_serve.json records.
func BenchmarkServeMatchOne(b *testing.B) {
	force := true
	d, res := trainSongs(b, 800, 1, func(o *core.Options) { o.ForceBlocking = &force })
	bn := loadBundle(b, res)

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := d.A.Tuples[i%d.A.Len()].Values
		t0 := time.Now()
		if _, err := bn.MatchOne(rec); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()

	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "qps")
	}
	slices.Sort(lat)
	idx := len(lat) * 99 / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	if idx >= 0 {
		b.ReportMetric(float64(lat[idx].Nanoseconds()), "p99-ns")
	}
}
