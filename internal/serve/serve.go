// Package serve is the serving half of the train/serve split: it turns a
// frozen model.MatcherArtifact into a Bundle — resolved B-side columns,
// rebuilt filter indexes, and a per-request scratch pool — publishes
// bundles through a lock-free Registry, and answers point-match queries
// with MatchOne, which runs block→feature→forest for one incoming
// A-shaped record against the frozen B table.
//
// The batch pipeline indexes table A and probes it with rows of B; serving
// flips the roles — the artifact carries prefix postings over B, and the
// incoming record probes them. The flip is sound because every filterable
// measure is symmetric in its two arguments (filters yield a candidate
// superset either way), and exact because every blocking strategy
// converges to "the pairs the positive CNF rule keeps": MatchOne
// re-applies the same CNF to bit-identical feature values, so its answer
// for a record equals the batch answer for that row.
package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/forest"
	"falcon/internal/index"
	"falcon/internal/model"
	"falcon/internal/rules"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// tokSlot identifies one per-request tokenization: the record column and
// the scheme. Features sharing a slot tokenize the record once.
type tokSlot struct {
	acol int
	kind tokenize.Kind
}

// featCols is one feature's frozen B-side operands plus its request-side
// slot assignments. Only the fields for the feature's measure family are
// set, mirroring feature.Vectorizer's column bundles.
type featCols struct {
	measure simfn.Measure
	acol    int // record column the request-side operand comes from
	tokSlot int // index into Bundle.tokSlots, -1 when not set-based

	corpus *simfn.Corpus  // corpus-based measures
	dict   *tokenize.Dict // count-set: the correspondence dictionary

	numB  []float64
	okB   []bool
	idsB  [][]uint32
	packB []simfn.PackedIDs // idsB with bit-parallel signatures attached
	tokB  [][]string
	docB  []simfn.WeightedDoc
	normB []string
}

// predPlan is one CNF predicate bound to its B-side filter index; the
// serving twin of filters.BoundPred with the probe roles flipped.
type predPlan struct {
	pred      rules.Predicate
	kind      filters.Kind
	measure   simfn.Measure
	threshold float64
	feat      int // full-space feature index (record-side operand)
	acol      int // record column holding the probe value

	hash   *index.HashIndex
	tree   *index.TreeIndex
	prefix *index.PrefixIndex
	ord    *index.Ordering
	slot   int // per-request encoded-probe-IDs slot (prefix kinds)
}

// clausePlan is one CNF clause's filter plan (union over predicates;
// unfilterable clauses prune nothing).
type clausePlan struct {
	filterable bool
	preds      []predPlan
}

// Bundle is a matcher artifact resolved for serving: B-side operand
// columns per feature, filter indexes over B, the positive CNF, and the
// forest. Nothing reachable from a bundle is written after NewBundle
// returns; per-request state cycles through the scratch pool.
type Bundle struct {
	art *model.MatcherArtifact
	b   *table.Table
	f   *forest.Forest
	cnf rules.CNF

	aCols       map[string]int // A attribute name → record position
	nA          int
	blockingIdx []int // blocking position → full-space feature index
	feats       []featCols
	tokSlots    []tokSlot
	clauses     []clausePlan
	nPredSlots  int

	scratch sync.Pool // *reqScratch
}

// NewBundle resolves an artifact into a serving bundle: it rebuilds the
// corpora and feature space, parses/tokenizes/encodes every B column a
// feature reads, reconstructs the prefix indexes from the artifact's
// postings, and builds the hash/tree indexes over B that equivalence and
// range filters probe. The artifact must carry a serving payload (B table
// and feature specs), i.e. come from a completed training run or a Load.
//
//falcon:frozen
func NewBundle(art *model.MatcherArtifact) (*Bundle, error) {
	if art == nil || art.Matcher == nil {
		return nil, fmt.Errorf("serve: artifact has no matcher")
	}
	if art.B == nil || len(art.Feats) == 0 {
		return nil, fmt.Errorf("serve: artifact carries no serving payload (interim model-only artifact?)")
	}
	if len(art.Feats) != len(art.FeatureNames) {
		return nil, fmt.Errorf("serve: artifact has %d feature specs for %d features", len(art.Feats), len(art.FeatureNames))
	}
	bn := &Bundle{
		art:         art,
		b:           art.B,
		f:           art.Matcher,
		cnf:         rules.ToCNF(art.RuleSeq),
		aCols:       make(map[string]int, len(art.AAttrs)),
		nA:          len(art.AAttrs),
		blockingIdx: art.BlockingIdx,
	}
	for i, at := range art.AAttrs {
		bn.aCols[at.Name] = i
	}

	corpora := make([]*simfn.Corpus, len(art.Corpora))
	for i := range art.Corpora {
		c := &art.Corpora[i]
		corpora[i] = simfn.CorpusFromState(c.Docs, c.Toks, c.DFs)
	}

	if err := bn.resolveFeatures(corpora); err != nil {
		return nil, err
	}
	if err := bn.planClauses(corpora); err != nil {
		return nil, err
	}

	nf := len(bn.feats)
	nb := len(bn.blockingIdx)
	nt := len(bn.tokSlots)
	np := bn.nPredSlots
	bn.scratch.New = func() any {
		return &reqScratch{
			num:    make([]float64, nf),
			numOk:  make([]bool, nf),
			ids:    make([][]uint32, nf),
			pack:   make([]simfn.PackedIDs, nf),
			docs:   make([]simfn.WeightedDoc, nf),
			norm:   make([]string, nf),
			toks:   make([][]string, nt),
			pids:   make([][]uint32, np),
			pcands: make([][]int32, np),
			bvals:  make([]float64, nb),
			vals:   make([]float64, nf),
		}
	}
	return bn, nil
}

// resolveFeatures builds every feature's frozen B-side operand column,
// sharing per-(column, scheme) tokenizations and parses across features.
func (bn *Bundle) resolveFeatures(corpora []*simfn.Corpus) error {
	b := bn.b
	tokCache := map[tokSlot][][]string{}
	numCache := map[int][]float64{}
	okCache := map[int][]bool{}
	normCache := map[int][]string{}
	packCache := map[string][]simfn.PackedIDs{}
	slotOf := map[tokSlot]int{}

	tokCol := func(col int, kind tokenize.Kind) [][]string {
		k := tokSlot{col, kind}
		if rows, ok := tokCache[k]; ok {
			return rows
		}
		rows := make([][]string, b.Len())
		for row := range rows {
			val := b.Value(row, col)
			if table.IsMissing(val) {
				rows[row] = []string{}
			} else {
				rows[row] = tokenize.Set(kind, val)
			}
		}
		tokCache[k] = rows
		return rows
	}
	reqSlot := func(acol int, kind tokenize.Kind) int {
		k := tokSlot{acol, kind}
		if s, ok := slotOf[k]; ok {
			return s
		}
		s := len(bn.tokSlots)
		slotOf[k] = s
		bn.tokSlots = append(bn.tokSlots, k)
		return s
	}

	bn.feats = make([]featCols, len(bn.art.Feats))
	for i := range bn.art.Feats {
		sp := &bn.art.Feats[i]
		fc := &bn.feats[i]
		fc.measure = sp.Measure
		fc.acol = sp.ACol
		fc.tokSlot = -1
		switch {
		case sp.Measure.NumericBased():
			if nums, ok := numCache[sp.BCol]; ok {
				fc.numB, fc.okB = nums, okCache[sp.BCol]
				break
			}
			nums := make([]float64, b.Len())
			oks := make([]bool, b.Len())
			for row := 0; row < b.Len(); row++ {
				s := strings.TrimSpace(b.Value(row, sp.BCol))
				if table.IsMissing(s) {
					continue
				}
				if f, err := strconv.ParseFloat(s, 64); err == nil {
					nums[row], oks[row] = f, true
				}
			}
			numCache[sp.BCol], okCache[sp.BCol] = nums, oks
			fc.numB, fc.okB = nums, oks
		case sp.Measure.SetBased():
			fc.tokSlot = reqSlot(sp.ACol, sp.Token)
			switch {
			case feature.CountSet(sp.Measure):
				key := model.CorrKey(sp.ACol, sp.BCol, sp.Token)
				dict := bn.art.Dicts[key]
				corr := bn.corrData(sp.ACol, sp.BCol, sp.Token)
				if dict == nil || corr == nil {
					return fmt.Errorf("serve: artifact missing correspondence %s", key)
				}
				fc.dict = dict
				fc.idsB = corr.RowsB
				// Signatures are a serving-side resolution of the frozen ID
				// rows — the artifact wire format is untouched. Features of
				// one correspondence share the packed column.
				if packed, ok := packCache[key]; ok {
					fc.packB = packed
				} else {
					packed = make([]simfn.PackedIDs, len(corr.RowsB))
					for row, ids := range corr.RowsB {
						packed[row] = simfn.PackIDs(ids)
					}
					packCache[key] = packed
					fc.packB = packed
				}
			case sp.Measure.CorpusBased():
				if sp.Corpus < 0 || sp.Corpus >= len(corpora) {
					return fmt.Errorf("serve: feature %q references missing corpus %d", sp.Name, sp.Corpus)
				}
				fc.corpus = corpora[sp.Corpus]
				toks := tokCol(sp.BCol, sp.Token)
				fc.docB = make([]simfn.WeightedDoc, len(toks))
				for row, ts := range toks {
					fc.docB[row] = fc.corpus.WeightedDocOf(ts)
				}
			default: // MongeElkan: raw token sets
				fc.tokB = tokCol(sp.BCol, sp.Token)
			}
		default:
			if norm, ok := normCache[sp.BCol]; ok {
				fc.normB = norm
				break
			}
			norm := make([]string, b.Len())
			for row := range norm {
				val := b.Value(row, sp.BCol)
				if table.IsMissing(val) {
					continue
				}
				norm[row] = strings.ToLower(strings.TrimSpace(val))
			}
			normCache[sp.BCol] = norm
			fc.normB = norm
		}
	}
	return nil
}

// planClauses re-derives the filter plan of the learned CNF over the
// role-flipped feature space (probe record against indexed B) and binds
// every filterable predicate to its B-side index: prefix indexes come from
// the artifact's postings, hash and tree indexes are rebuilt from the B
// table (cheap and deterministic).
func (bn *Bundle) planClauses(corpora []*simfn.Corpus) error {
	if len(bn.cnf.Clauses) == 0 {
		return nil
	}
	flipped := make([]*feature.Feature, len(bn.blockingIdx))
	for pos, fi := range bn.blockingIdx {
		if fi < 0 || fi >= len(bn.art.Feats) {
			return fmt.Errorf("serve: blocking index %d out of range", fi)
		}
		sp := &bn.art.Feats[fi]
		var c *simfn.Corpus
		if sp.Corpus >= 0 && sp.Corpus < len(corpora) {
			c = corpora[sp.Corpus]
		}
		// A and B columns swap roles: the spec's "A" side is the indexed B.
		f := feature.NewBoundFeature(pos, sp.Name, sp.Measure, sp.Token, sp.BCol, sp.ACol, sp.Attr, sp.Blockable, c)
		flipped[pos] = &f
	}
	an := filters.Analyze(bn.cnf, flipped)

	prefixByKey := map[string]*index.PrefixIndex{}
	thrByKey := map[string]float64{}
	for i := range bn.art.Prefix {
		pd := &bn.art.Prefix[i]
		ord := index.OrderingOf(pd.Ranked)
		prefixByKey[pd.Spec().Key()] = index.PrefixFromParts(pd.Token, pd.Threshold, ord, pd.Post, pd.SetLen)
		thrByKey[pd.Spec().Key()] = pd.Threshold
	}
	hashBy := map[int]*index.HashIndex{}
	treeBy := map[int]*index.TreeIndex{}

	bn.clauses = make([]clausePlan, len(an.Clauses))
	for ci := range an.Clauses {
		info := &an.Clauses[ci]
		cp := &bn.clauses[ci]
		cp.filterable = info.Filterable
		for _, bp := range info.Preds {
			pp := predPlan{
				pred:      bp.Pred,
				kind:      bp.Kind,
				measure:   bp.Feat.Measure,
				threshold: bp.Threshold,
				feat:      bn.blockingIdx[bp.Pred.Feature],
				acol:      bp.Feat.BCol, // flipped: the record-side column
				slot:      -1,
			}
			bcol := bp.Feat.ACol // flipped: the indexed B column
			switch bp.Kind {
			case filters.Equivalence:
				if hashBy[bcol] == nil {
					hashBy[bcol] = index.BuildHash(bn.b, bcol)
				}
				pp.hash = hashBy[bcol]
			case filters.Range:
				if treeBy[bcol] == nil {
					treeBy[bcol] = index.BuildTree(bn.b, bcol)
				}
				pp.tree = treeBy[bcol]
			case filters.PrefixSet, filters.ShareGram:
				spec := filters.IndexSpec{Kind: bp.Kind, ACol: bcol, Token: bp.Feat.Token, Measure: bp.Feat.Measure}
				if bp.Kind == filters.ShareGram {
					spec.Token, spec.Measure = tokenize.Gram3, simfn.MLevenshtein
				}
				idx := prefixByKey[spec.Key()]
				if idx == nil {
					return fmt.Errorf("serve: artifact missing prefix index %s", spec.Key())
				}
				if bp.Threshold < thrByKey[spec.Key()] {
					return fmt.Errorf("serve: prefix index %s built at threshold %g, predicate needs %g",
						spec.Key(), thrByKey[spec.Key()], bp.Threshold)
				}
				pp.prefix = idx
				pp.ord = idx.Ord()
				pp.slot = bn.nPredSlots
				bn.nPredSlots++
			}
			cp.preds = append(cp.preds, pp)
		}
	}
	return nil
}

// corrData finds the artifact's correspondence entry, or nil.
func (bn *Bundle) corrData(acol, bcol int, kind tokenize.Kind) *model.CorrData {
	for i := range bn.art.Corrs {
		c := &bn.art.Corrs[i]
		if c.ACol == acol && c.BCol == bcol && c.Kind == kind {
			return c
		}
	}
	return nil
}

// Artifact returns the bundle's underlying (frozen) artifact.
func (bn *Bundle) Artifact() *model.MatcherArtifact { return bn.art }

// BRows returns the size of the frozen reference table.
func (bn *Bundle) BRows() int { return bn.b.Len() }

// BValues returns one frozen B row's values (the table's backing slice;
// callers must not mutate it).
func (bn *Bundle) BValues(row int) []string { return bn.b.Tuples[row].Values }

// BNames returns the frozen B table's column names.
func (bn *Bundle) BNames() []string { return bn.b.Schema.Names() }

// ColNames returns the A-schema column names a record must follow.
func (bn *Bundle) ColNames() []string {
	out := make([]string, len(bn.art.AAttrs))
	for i, at := range bn.art.AAttrs {
		out[i] = at.Name
	}
	return out
}

// Record builds the A-schema-ordered value slice from named values.
// Unknown names are rejected; absent columns become empty (missing).
func (bn *Bundle) Record(values map[string]string) ([]string, error) {
	rec := make([]string, bn.nA)
	for name, v := range values {
		col, ok := bn.aCols[name]
		if !ok {
			return nil, fmt.Errorf("serve: record column %q not in schema %v", name, bn.ColNames())
		}
		rec[col] = v
	}
	return rec, nil
}
