package serve

import (
	"sync"
	"testing"
)

// TestRegistrySwapUnderLoad hammers MatchOne through the registry while
// another goroutine keeps swapping bundles — the serving path's core
// concurrency claim, meaningful under -race (the race gate runs this
// package).
func TestRegistrySwapUnderLoad(t *testing.T) {
	d, res := trainSongs(t, 120, 5, nil)
	b1 := loadBundle(t, res)
	b2 := loadBundle(t, res)

	var reg Registry
	if reg.Current() != nil {
		t.Fatal("registry not empty before first swap")
	}
	reg.Swap(b1)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		cur := b2
		for {
			select {
			case <-stop:
				return
			default:
			}
			if old := reg.Swap(cur); old != nil {
				cur = old
			}
		}
	}()

	const readers = 4
	var rd sync.WaitGroup
	for r := 0; r < readers; r++ {
		rd.Add(1)
		go func(r int) {
			defer rd.Done()
			for i := 0; i < 200; i++ {
				bn := reg.Current()
				if bn == nil {
					t.Error("Current returned nil after first swap")
					return
				}
				row := (i*readers + r) % d.A.Len()
				if _, err := bn.MatchOne(d.A.Tuples[row].Values); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	rd.Wait()
	close(stop)
	swapper.Wait()
}
