package serve

import "sync/atomic"

// Registry publishes the current serving bundle to request handlers with a
// single atomic pointer: reloads build a complete new Bundle off to the
// side (clone-then-swap) and publish it with Swap, so MatchOne never takes
// a lock and never observes a half-built bundle. Requests that loaded the
// old bundle finish against it; its scratch pools are garbage-collected
// with it.
type Registry struct {
	cur atomic.Pointer[Bundle]
}

// Current returns the published bundle, or nil before the first Swap.
//
//falcon:hotpath
func (r *Registry) Current() *Bundle { return r.cur.Load() }

// Swap publishes b (which must be fully constructed — NewBundle freezes it)
// and returns the previous bundle, nil on first publish.
func (r *Registry) Swap(b *Bundle) *Bundle { return r.cur.Swap(b) }
