package serve

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"falcon/internal/feature"
	"falcon/internal/filters"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Match is one served match: a row of the frozen B table and the forest's
// confidence (fraction of trees voting match).
type Match struct {
	BRow  int     `json:"b_row"`
	Score float64 `json:"score"`
}

// reqScratch is one request's working state, cycled through Bundle.scratch.
// Slices are reused via [:0] re-slicing; capacities grow to the workload's
// high-water mark and stick.
type reqScratch struct {
	num    []float64           // per feature: parsed record numeric
	numOk  []bool              // per feature: numeric parse success
	ids    [][]uint32          // per feature: encoded record token-ID set
	pack   []simfn.PackedIDs   // per feature: ids with signature attached
	docs   []simfn.WeightedDoc // per feature: record weighted document
	norm   []string            // per feature: normalized record string
	toks   [][]string          // per token slot: record token set
	pids   [][]uint32          // per prefix pred slot: probe-encoded IDs
	pcands [][]int32           // per prefix pred slot: probe result buffer
	bvals  []float64           // blocking-vector buffer
	vals   []float64           // full-vector buffer

	union []int32 // clause-union double buffer
	utmp  []int32
	cands []int32 // cross-clause intersection double buffer
	itmp  []int32
	out   []Match
}

// MatchOne matches one incoming A-shaped record (values in A-schema column
// order) against the frozen B table: candidate generation through the
// learned CNF's filter indexes, CNF verification on the blocking vector,
// then forest scoring on the full vector. Lock-free: all shared state is
// the frozen bundle; per-request state comes from the scratch pool. The
// documented per-request allocations are the record tokenizations and the
// returned match slice; probe results land in pooled per-slot buffers via
// the batched probe entry points.
//
//falcon:hotpath
func (bn *Bundle) MatchOne(rec []string) ([]Match, error) {
	if len(rec) != bn.nA {
		return nil, fmt.Errorf("serve: record has %d values, schema has %d", len(rec), bn.nA)
	}
	rs := bn.scratch.Get().(*reqScratch)
	s := simfn.GetScratch()
	bn.prepare(rs, rec)
	cands, all := bn.candidates(rs, rec)
	rs.out = rs.out[:0]
	if all {
		for row := 0; row < bn.b.Len(); row++ {
			bn.scoreRow(rs, s, row)
		}
	} else {
		for _, row := range cands {
			bn.scoreRow(rs, s, int(row))
		}
	}
	out := append([]Match(nil), rs.out...)
	simfn.PutScratch(s)
	bn.scratch.Put(rs)
	return out, nil
}

// prepare computes the record's per-feature operands — the request-side
// twin of the vectorizer's frozen A columns: token sets per (column,
// scheme) slot, encoded ID sets under the correspondence dictionaries,
// parsed numerics, weighted documents, normalized strings, and the
// ordering-encoded probe sets for the prefix predicates.
//
//falcon:hotpath
func (bn *Bundle) prepare(rs *reqScratch, rec []string) {
	for si := range bn.tokSlots {
		ts := &bn.tokSlots[si]
		val := rec[ts.acol]
		if table.IsMissing(val) {
			rs.toks[si] = rs.toks[si][:0]
			continue
		}
		//falcon:allow servebudget documented per-request tokenization of the incoming record
		rs.toks[si] = tokenize.Set(ts.kind, val)
	}
	for fi := range bn.feats {
		fc := &bn.feats[fi]
		switch {
		case fc.measure.NumericBased():
			rs.numOk[fi] = false
			v := strings.TrimSpace(rec[fc.acol])
			if table.IsMissing(v) {
				continue
			}
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				rs.num[fi], rs.numOk[fi] = f, true
			}
		case fc.dict != nil: // count-set: encode under the frozen dictionary
			toks := rs.toks[fc.tokSlot]
			ids := rs.ids[fi][:0]
			ext := uint32(fc.dict.Len())
			for _, t := range toks {
				if id, known := fc.dict.ID(t); known {
					ids = append(ids, id)
				} else {
					// Distinct extension IDs ≥ Len: the dictionary covers every
					// B token, so unknowns overlap nothing, as in training.
					ids = append(ids, ext)
					ext++
				}
			}
			slices.Sort(ids)
			rs.ids[fi] = ids
			rs.pack[fi].Repack(ids)
		case fc.corpus != nil:
			//falcon:allow servebudget documented per-request weighted-document build over the frozen corpus
			rs.docs[fi] = fc.corpus.WeightedDocOf(rs.toks[fc.tokSlot])
		case fc.measure.SetBased():
			// Monge-Elkan reads the token slot directly.
		default:
			val := rec[fc.acol]
			if table.IsMissing(val) {
				rs.norm[fi] = ""
			} else {
				rs.norm[fi] = strings.ToLower(strings.TrimSpace(val))
			}
		}
	}
	for ci := range bn.clauses {
		for pi := range bn.clauses[ci].preds {
			pp := &bn.clauses[ci].preds[pi]
			if pp.slot < 0 {
				continue
			}
			// Raw values are tokenized as-is (no missing check), matching the
			// batch probe path; missing tokenizes to the empty set anyway.
			//falcon:allow servebudget documented per-request tokenization for the prefix probe
			toks := tokenize.Set(pp.prefix.Kind, rec[pp.acol])
			ids := rs.pids[pp.slot][:0]
			dict := pp.ord.Dict()
			ext := uint32(pp.ord.Len())
			for _, t := range toks {
				if id, known := dict.ID(t); known {
					ids = append(ids, id)
				} else {
					ids = append(ids, ext)
					ext++
				}
			}
			slices.Sort(ids)
			rs.pids[pp.slot] = ids
		}
	}
}

// candidates runs Algorithm 1's C_Q ← ∩_q ∪_p FindProbableCandidates step
// with the roles flipped: the record probes the B-side indexes. all=true
// means no clause could prune (including the empty, matcher-only CNF) and
// every B row is a candidate. Results are sorted ascending.
//
//falcon:hotpath
func (bn *Bundle) candidates(rs *reqScratch, rec []string) (cands []int32, all bool) {
	first := true
	var acc []int32
	m := 0
	for ci := range bn.clauses {
		cp := &bn.clauses[ci]
		if !cp.filterable {
			continue
		}
		got, isAll := bn.clauseCands(rs, cp, rec)
		if isAll {
			continue
		}
		first = false
		m++
		if m == 1 {
			// Copy: got lives in the clause-union buffers the next clause reuses.
			rs.cands = append(rs.cands[:0], got...)
			acc = rs.cands
			continue
		}
		// Alternate intersection buffers so the destination never aliases acc.
		buf := rs.itmp
		if m%2 == 1 {
			buf = rs.cands
		}
		buf = intersectInto(buf[:0], acc, got)
		if m%2 == 1 {
			rs.cands = buf
		} else {
			rs.itmp = buf
		}
		acc = buf
		if len(acc) == 0 {
			return nil, false
		}
	}
	if first {
		return nil, true
	}
	return acc, false
}

// clauseCands unions the clause's predicate candidates (disjunction).
//
//falcon:hotpath
func (bn *Bundle) clauseCands(rs *reqScratch, cp *clausePlan, rec []string) (cands []int32, all bool) {
	var acc []int32
	n := 0
	for pi := range cp.preds {
		got, isAll := bn.predCands(rs, &cp.preds[pi], rec)
		if isAll {
			return nil, true
		}
		n++
		if n == 1 {
			acc = got
			continue
		}
		// Alternate union buffers so the destination never aliases acc.
		buf := rs.utmp
		if n%2 == 1 {
			buf = rs.union
		}
		buf = unionInto(buf[:0], acc, got)
		if n%2 == 1 {
			rs.union = buf
		} else {
			rs.utmp = buf
		}
		acc = buf
	}
	return acc, false
}

// predCands returns the B rows that may satisfy one CNF predicate for this
// record — the serving twin of Indexes.PredCandidates with probe roles
// flipped. all=true means the filter cannot prune for this probe.
//
//falcon:hotpath
func (bn *Bundle) predCands(rs *reqScratch, pp *predPlan, rec []string) (cands []int32, all bool) {
	switch pp.kind {
	case filters.Equivalence:
		return pp.hash.Probe(rec[pp.acol]), false
	case filters.Range:
		if !rs.numOk[pp.feat] {
			// Feature value is Missing for every B row; prune nothing when the
			// keep predicate accepts Missing, everything otherwise.
			return nil, pp.pred.Eval(feature.Missing)
		}
		lo, hi := filters.RangeBounds(pp.measure, rs.num[pp.feat], pp.threshold)
		got := pp.tree.ProbeRange(lo, hi) // fresh slice: safe to extend and sort
		if pp.pred.Eval(feature.Missing) {
			// B-side unparseables also evaluate to Missing → keep.
			got = append(got, pp.tree.Unparseable()...)
		}
		slices.Sort(got)
		return got, false
	default: // PrefixSet, ShareGram
		got, _ := pp.prefix.ProbeIDsInto(pp.measure, pp.threshold, rs.pids[pp.slot], rs.pcands[pp.slot][:0])
		rs.pcands[pp.slot] = got
		return got, false
	}
}

// scoreRow verifies one candidate B row against the CNF on the blocking
// vector, then scores the full vector with the forest, appending a Match
// when the forest votes yes.
//
//falcon:hotpath
func (bn *Bundle) scoreRow(rs *reqScratch, s *simfn.Scratch, row int) {
	if len(bn.cnf.Clauses) > 0 {
		for pos, fi := range bn.blockingIdx {
			rs.bvals[pos] = bn.evalFeature(fi, rs, s, row)
		}
		if !bn.cnf.Keep(rs.bvals) {
			return
		}
	}
	for fi := range bn.feats {
		rs.vals[fi] = bn.evalFeature(fi, rs, s, row)
	}
	if bn.f.Predict(rs.vals) {
		rs.out = append(rs.out, Match{BRow: row, Score: bn.f.Confidence(rs.vals)})
	}
}

// evalFeature computes one feature between the prepared record and B row —
// the serving twin of the vectorizer's evalCached, over the same frozen
// B-side operands, so values are bit-identical to the batch path's.
//
//falcon:hotpath
func (bn *Bundle) evalFeature(fi int, rs *reqScratch, s *simfn.Scratch, row int) float64 {
	fc := &bn.feats[fi]
	switch {
	case fc.measure.NumericBased():
		if !rs.numOk[fi] || !fc.okB[row] {
			return feature.Missing
		}
		if fc.measure == simfn.MAbsDiff {
			return simfn.AbsDiff(rs.num[fi], fc.numB[row])
		}
		return simfn.RelDiff(rs.num[fi], fc.numB[row])
	case fc.dict != nil:
		return feature.EvalCountSetPacked(fc.measure, &rs.pack[fi], &fc.packB[row])
	case fc.measure == simfn.MMongeElkan:
		return s.MongeElkan(rs.toks[fc.tokSlot], fc.tokB[row])
	case fc.measure.CorpusBased():
		if fc.measure == simfn.MTFIDF {
			return simfn.TFIDFDocs(&rs.docs[fi], &fc.docB[row])
		}
		return simfn.SoftTFIDFDocs(&rs.docs[fi], &fc.docB[row], s)
	default:
		return feature.EvalStrings(fc.measure, rs.norm[fi], fc.normB[row], s)
	}
}

// unionInto merges two sorted ID lists into dst (sorted, de-duplicated).
func unionInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// intersectInto intersects two sorted ID lists into dst.
func intersectInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
