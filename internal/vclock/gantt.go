package vclock

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"
)

// RenderGantt writes an ASCII Gantt chart of the timeline: one row per
// operator and resource, time flowing left to right across `width` columns.
// Crowd activity renders as '▒', cluster activity as '█'. It gives a quick
// visual of which machine work hides under crowd time (§10.2).
func (tl *Timeline) RenderGantt(w io.Writer, width int) {
	RenderGantt(w, tl.tasks, width)
}

// RenderGantt renders a task list (e.g. a finished run's Tasks) as a Gantt
// chart.
func RenderGantt(w io.Writer, tasks []*Task, width int) {
	// The chart is a best-effort debugging aid rendered into in-memory
	// builders; write errors are deliberately discarded at this one funnel.
	p := func(format string, args ...any) { _, _ = fmt.Fprintf(w, format, args...) }
	if width < 20 {
		width = 20
	}
	var total time.Duration
	for _, t := range tasks {
		if t.End > total {
			total = t.End
		}
	}
	if total <= 0 {
		p("(empty timeline)\n")
		return
	}

	type rowKey struct {
		op  string
		res Resource
	}
	rows := map[rowKey][]*Task{}
	var order []rowKey
	for _, t := range tasks {
		if t.Dur == 0 {
			continue
		}
		k := rowKey{t.Op, t.Resource}
		if _, ok := rows[k]; !ok {
			order = append(order, k)
		}
		rows[k] = append(rows[k], t)
	}
	// Stable order: by first task start.
	slices.SortStableFunc(order, func(a, b rowKey) int {
		return cmp.Compare(rows[a][0].Start, rows[b][0].Start)
	})

	col := func(d time.Duration) int {
		c := int(int64(d) * int64(width) / int64(total))
		if c >= width {
			c = width - 1
		}
		return c
	}
	p("%-28s %s (total %s)\n", "operator", "timeline", total.Round(time.Second))
	for _, k := range order {
		line := []rune(strings.Repeat("·", width))
		mark := '█'
		if k.res == Crowd {
			mark = '▒'
		}
		for _, t := range rows[k] {
			for c := col(t.Start); c <= col(t.End-1); c++ {
				line[c] = mark
			}
		}
		p("%-28s %s\n", fmt.Sprintf("%s [%s]", k.op, k.res), string(line))
	}
}
