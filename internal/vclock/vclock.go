// Package vclock provides a discrete-event virtual timeline used to account
// Falcon's crowd time, machine time, and masking overlap (paper §3.4, §10.2).
//
// The paper's total run time is t_c + t_u where t_c is total crowd time and
// t_u is the machine time that could not be masked (scheduled during crowd
// activities). We model this with two sequential resources — the crowd
// platform and the Hadoop cluster — and a list scheduler: a task starts when
// its resource is free and all of its dependencies have finished.
//
// The orchestrator (internal/core) executes the real computation in-process
// and records each activity here with a duration taken from the MapReduce
// cost model or the crowd latency model. Masking falls out of the schedule:
// machine work that overlaps crowd-busy intervals is "masked".
package vclock

import (
	"cmp"
	"fmt"
	"slices"
	"time"
)

// Resource identifies which sequential resource executes a task.
type Resource int

const (
	// Crowd is the crowd platform: one HIT batch outstanding at a time.
	Crowd Resource = iota
	// Cluster is the Hadoop cluster: one MapReduce job at a time (each job
	// uses every node, as in the paper's per-operator execution).
	Cluster
	numResources
)

// String implements fmt.Stringer.
func (r Resource) String() string {
	switch r {
	case Crowd:
		return "crowd"
	case Cluster:
		return "cluster"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Task is a scheduled activity on the timeline.
type Task struct {
	Name     string
	Resource Resource
	Dur      time.Duration
	Start    time.Duration
	End      time.Duration
	// Op tags the task with the logical operator it belongs to
	// (e.g. "al_matcher", "apply_blocking_rules") for Table-4 style
	// per-operator breakdowns.
	Op string
}

// Timeline is an incremental list scheduler over virtual time. The zero
// value is not usable; call New.
type Timeline struct {
	avail [numResources]time.Duration
	tasks []*Task
}

// New returns an empty timeline starting at virtual time zero.
func New() *Timeline {
	return &Timeline{}
}

// Schedule places a task on resource r with duration d, starting no earlier
// than the ends of all deps and no earlier than the time r becomes free.
// It returns the scheduled task, whose Start and End are fixed immediately.
func (tl *Timeline) Schedule(name string, op string, r Resource, d time.Duration, deps ...*Task) *Task {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative duration %v for %q", d, name))
	}
	start := tl.avail[r]
	for _, dep := range deps {
		if dep == nil {
			continue
		}
		if dep.End > start {
			start = dep.End
		}
	}
	t := &Task{Name: name, Op: op, Resource: r, Dur: d, Start: start, End: start + d}
	tl.avail[r] = t.End
	tl.tasks = append(tl.tasks, t)
	return t
}

// Truncate cuts a previously scheduled task short at virtual time `at`,
// modeling a killed speculative job (Algorithm 2). It only has an effect if
// the task is the most recently scheduled task on its resource and `at`
// falls inside [Start, End). Truncate returns true if the task was shortened.
func (tl *Timeline) Truncate(t *Task, at time.Duration) bool {
	if at < t.Start || at >= t.End {
		return false
	}
	if tl.avail[t.Resource] != t.End {
		return false // a later task already depends on this end time
	}
	t.End = at
	t.Dur = at - t.Start
	tl.avail[t.Resource] = at
	return true
}

// ResourceFree returns the virtual time at which resource r next becomes
// idle given everything scheduled so far.
func (tl *Timeline) ResourceFree(r Resource) time.Duration { return tl.avail[r] }

// Now returns the latest end time across all resources (the makespan so far).
func (tl *Timeline) Now() time.Duration {
	var max time.Duration
	for _, a := range tl.avail {
		if a > max {
			max = a
		}
	}
	return max
}

// Tasks returns the scheduled tasks in scheduling order.
func (tl *Timeline) Tasks() []*Task { return tl.tasks }

// Stats summarizes a finished timeline in the paper's terms.
type Stats struct {
	// Total is the makespan: the paper's "Total Time".
	Total time.Duration
	// CrowdTime is the sum of crowd task durations (t_c).
	CrowdTime time.Duration
	// MachineTime is the sum of cluster task durations (t_m).
	MachineTime time.Duration
	// MaskedMachine is the portion of machine time that overlapped
	// crowd-busy intervals.
	MaskedMachine time.Duration
	// UnmaskedMachine is MachineTime − MaskedMachine (t_u).
	UnmaskedMachine time.Duration
	// PerOp maps operator tag → summed durations per resource.
	PerOp map[string]OpTime
}

// OpTime is the crowd/machine split of one logical operator's time.
// Masked is the part of Machine that overlapped crowd-busy intervals.
type OpTime struct {
	Crowd   time.Duration
	Machine time.Duration
	Masked  time.Duration
}

type interval struct{ s, e time.Duration }

// mergeIntervals coalesces overlapping intervals; input need not be sorted.
func mergeIntervals(in []interval) []interval {
	if len(in) == 0 {
		return nil
	}
	slices.SortFunc(in, func(a, b interval) int { return cmp.Compare(a.s, b.s) })
	out := []interval{in[0]}
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.s <= last.e {
			if iv.e > last.e {
				last.e = iv.e
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// overlap returns the total length of iv ∩ merged.
func overlap(iv interval, merged []interval) time.Duration {
	var total time.Duration
	for _, m := range merged {
		s, e := iv.s, iv.e
		if m.s > s {
			s = m.s
		}
		if m.e < e {
			e = m.e
		}
		if e > s {
			total += e - s
		}
	}
	return total
}

// Stats computes the summary of the timeline so far.
func (tl *Timeline) Stats() Stats {
	st := Stats{PerOp: map[string]OpTime{}}
	var crowdIvs []interval
	for _, t := range tl.tasks {
		op := st.PerOp[t.Op]
		switch t.Resource {
		case Crowd:
			st.CrowdTime += t.Dur
			op.Crowd += t.Dur
			if t.Dur > 0 {
				crowdIvs = append(crowdIvs, interval{t.Start, t.End})
			}
		case Cluster:
			st.MachineTime += t.Dur
			op.Machine += t.Dur
		}
		st.PerOp[t.Op] = op
	}
	merged := mergeIntervals(crowdIvs)
	for _, t := range tl.tasks {
		if t.Resource == Cluster && t.Dur > 0 {
			ov := overlap(interval{t.Start, t.End}, merged)
			st.MaskedMachine += ov
			op := st.PerOp[t.Op]
			op.Masked += ov
			st.PerOp[t.Op] = op
		}
	}
	st.UnmaskedMachine = st.MachineTime - st.MaskedMachine
	st.Total = tl.Now()
	return st
}
