package vclock

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const (
	sec = time.Second
	min = time.Minute
)

func TestSequentialSameResource(t *testing.T) {
	tl := New()
	a := tl.Schedule("a", "op", Cluster, 10*sec)
	b := tl.Schedule("b", "op", Cluster, 5*sec)
	if a.Start != 0 || a.End != 10*sec {
		t.Fatalf("a = [%v,%v]", a.Start, a.End)
	}
	if b.Start != 10*sec || b.End != 15*sec {
		t.Fatalf("b = [%v,%v], want starts after a", b.Start, b.End)
	}
}

func TestParallelResources(t *testing.T) {
	tl := New()
	c := tl.Schedule("label", "al_matcher", Crowd, 10*min)
	m := tl.Schedule("index", "apply_blocking_rules", Cluster, 4*min)
	if m.Start != 0 {
		t.Fatalf("cluster task delayed to %v; resources should be parallel", m.Start)
	}
	if c.End != 10*min || tl.Now() != 10*min {
		t.Fatalf("makespan %v, want 10m", tl.Now())
	}
}

func TestDependencyOrdering(t *testing.T) {
	tl := New()
	c := tl.Schedule("label", "op", Crowd, 10*sec)
	m := tl.Schedule("train", "op", Cluster, 5*sec, c)
	if m.Start != c.End {
		t.Fatalf("dependent task started at %v, want %v", m.Start, c.End)
	}
	if tl.Now() != 15*sec {
		t.Fatalf("makespan = %v, want 15s", tl.Now())
	}
}

func TestNilDepsIgnored(t *testing.T) {
	tl := New()
	m := tl.Schedule("x", "op", Cluster, sec, nil, nil)
	if m.Start != 0 {
		t.Fatalf("nil dep delayed start to %v", m.Start)
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Schedule("bad", "op", Cluster, -sec)
}

func TestMaskingAccounting(t *testing.T) {
	// Crowd labels for 10 minutes; during that window the cluster builds
	// indexes for 6 minutes, then afterwards does 3 minutes of blocking.
	tl := New()
	c := tl.Schedule("label", "al_matcher", Crowd, 10*min)
	tl.Schedule("index", "index_build", Cluster, 6*min)
	tl.Schedule("block", "apply_blocking_rules", Cluster, 3*min, c)

	st := tl.Stats()
	if st.CrowdTime != 10*min {
		t.Fatalf("crowd = %v", st.CrowdTime)
	}
	if st.MachineTime != 9*min {
		t.Fatalf("machine = %v", st.MachineTime)
	}
	if st.MaskedMachine != 6*min {
		t.Fatalf("masked = %v, want 6m", st.MaskedMachine)
	}
	if st.UnmaskedMachine != 3*min {
		t.Fatalf("unmasked = %v, want 3m", st.UnmaskedMachine)
	}
	if st.Total != 13*min {
		t.Fatalf("total = %v, want 13m (= t_c + t_u)", st.Total)
	}
}

func TestPartialMasking(t *testing.T) {
	// Machine job longer than the crowd window masks only partially.
	tl := New()
	tl.Schedule("label", "op", Crowd, 2*min)
	tl.Schedule("big", "op", Cluster, 5*min)
	st := tl.Stats()
	if st.MaskedMachine != 2*min {
		t.Fatalf("masked = %v, want 2m", st.MaskedMachine)
	}
	if st.UnmaskedMachine != 3*min {
		t.Fatalf("unmasked = %v, want 3m", st.UnmaskedMachine)
	}
}

func TestTruncateSpeculativeJob(t *testing.T) {
	tl := New()
	c := tl.Schedule("eval_rules", "eval_rules", Crowd, 10*min)
	spec := tl.Schedule("spec-rule-1", "apply_blocking_rules", Cluster, 30*min)
	// eval_rules finished at 10m; the speculative job is killed there.
	if !tl.Truncate(spec, c.End) {
		t.Fatal("Truncate failed")
	}
	if spec.Dur != 10*min || spec.End != 10*min {
		t.Fatalf("truncated task = [%v,%v] dur %v", spec.Start, spec.End, spec.Dur)
	}
	// Next cluster job starts right at the kill time.
	next := tl.Schedule("block", "apply_blocking_rules", Cluster, time.Minute)
	if next.Start != 10*min {
		t.Fatalf("next start = %v, want 10m", next.Start)
	}
}

func TestTruncateOutOfRangeNoop(t *testing.T) {
	tl := New()
	j := tl.Schedule("j", "op", Cluster, 5*min)
	if tl.Truncate(j, 6*min) {
		t.Fatal("Truncate after end should fail")
	}
	if tl.Truncate(j, -1) {
		t.Fatal("Truncate before start should fail")
	}
	if j.End != 5*min {
		t.Fatalf("task modified: end %v", j.End)
	}
}

func TestTruncateBlockedByLaterTask(t *testing.T) {
	tl := New()
	a := tl.Schedule("a", "op", Cluster, 5*min)
	tl.Schedule("b", "op", Cluster, 5*min)
	if tl.Truncate(a, 2*min) {
		t.Fatal("Truncate should refuse when a later task is scheduled on the resource")
	}
}

func TestPerOpBreakdown(t *testing.T) {
	tl := New()
	tl.Schedule("l1", "al_matcher", Crowd, 3*min)
	tl.Schedule("t1", "al_matcher", Cluster, time.Minute)
	tl.Schedule("b1", "apply_blocking_rules", Cluster, 2*min)
	st := tl.Stats()
	if got := st.PerOp["al_matcher"]; got.Crowd != 3*min || got.Machine != time.Minute {
		t.Fatalf("al_matcher = %+v", got)
	}
	if got := st.PerOp["apply_blocking_rules"]; got.Machine != 2*min {
		t.Fatalf("apply_blocking_rules = %+v", got)
	}
}

func TestZeroDurationTasksIgnoredInMasking(t *testing.T) {
	tl := New()
	tl.Schedule("noop", "op", Crowd, 0)
	tl.Schedule("job", "op", Cluster, time.Minute)
	st := tl.Stats()
	if st.MaskedMachine != 0 {
		t.Fatalf("masked = %v, want 0", st.MaskedMachine)
	}
}

func TestResourceString(t *testing.T) {
	if Crowd.String() != "crowd" || Cluster.String() != "cluster" {
		t.Fatal("Resource.String wrong")
	}
	if Resource(9).String() != "resource(9)" {
		t.Fatal("unknown Resource.String wrong")
	}
}

// Property: for any schedule, Total ≥ CrowdTime and Total ≥ UnmaskedMachine,
// masked + unmasked = machine, and masked ≤ min(machine, crowd).
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := New()
		var prev *Task
		for i := 0; i < 40; i++ {
			r := Resource(rng.Intn(2))
			d := time.Duration(rng.Intn(300)) * sec
			var deps []*Task
			if prev != nil && rng.Intn(3) == 0 {
				deps = append(deps, prev)
			}
			prev = tl.Schedule("t", "op", r, d, deps...)
		}
		st := tl.Stats()
		if st.MaskedMachine+st.UnmaskedMachine != st.MachineTime {
			return false
		}
		if st.MaskedMachine > st.MachineTime || st.MaskedMachine > st.CrowdTime {
			return false
		}
		if st.Total < st.CrowdTime && st.Total < st.MachineTime {
			return false
		}
		// With both resources starting at 0 and sequential, makespan is at
		// least the larger busy sum... not in general with deps; but total
		// must be at least max task end.
		for _, task := range tl.Tasks() {
			if task.End > st.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderGantt(t *testing.T) {
	tl := New()
	c := tl.Schedule("label", "al_matcher", Crowd, 10*min)
	tl.Schedule("index", "apply_blocking_rules", Cluster, 4*min)
	tl.Schedule("block", "apply_blocking_rules", Cluster, 2*min, c)
	var sb strings.Builder
	tl.RenderGantt(&sb, 40)
	out := sb.String()
	if !strings.Contains(out, "al_matcher [crowd]") {
		t.Fatalf("missing crowd row:\n%s", out)
	}
	if !strings.Contains(out, "apply_blocking_rules [cluster]") {
		t.Fatalf("missing cluster row:\n%s", out)
	}
	if !strings.Contains(out, "▒") || !strings.Contains(out, "█") {
		t.Fatalf("missing marks:\n%s", out)
	}
	// Width clamps and empty timeline handled.
	var sb2 strings.Builder
	New().RenderGantt(&sb2, 5)
	if !strings.Contains(sb2.String(), "empty") {
		t.Fatal("empty timeline not handled")
	}
}
