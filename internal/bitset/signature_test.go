package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedUnique(ids []uint32) []uint32 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

func naiveOverlap(a, b []uint32) int {
	in := make(map[uint32]bool, len(a))
	for _, id := range a {
		in[id] = true
	}
	n := 0
	for _, id := range b {
		if in[id] {
			n++
		}
	}
	return n
}

func sigOf(ids []uint32) *Signature {
	var s Signature
	s.AppendSignature(ids)
	return &s
}

func TestSignatureEmpty(t *testing.T) {
	var z Signature
	if !z.Empty() || z.Count() != 0 {
		t.Fatalf("zero signature not empty: %+v", z)
	}
	e := sigOf(nil)
	if !e.Empty() || e.Count() != 0 {
		t.Fatalf("empty-build signature not empty: %+v", e)
	}
	full := sigOf([]uint32{1, 2, 3})
	if got := AndCount(full, e); got != 0 {
		t.Fatalf("AndCount(x, empty) = %d, want 0", got)
	}
	if got := AndCount(e, full); got != 0 {
		t.Fatalf("AndCount(empty, x) = %d, want 0", got)
	}
}

func TestSignatureLayouts(t *testing.T) {
	// Tight cluster → dense.
	dense := sigOf([]uint32{0, 1, 5, 64, 65, 130})
	if !dense.Dense() {
		t.Fatalf("clustered set should pack dense")
	}
	if dense.Count() != 6 {
		t.Fatalf("dense Count = %d, want 6", dense.Count())
	}
	// One ID per far-apart block → sparse.
	sparse := sigOf([]uint32{0, 1 << 16, 1 << 20, 1 << 24})
	if sparse.Dense() {
		t.Fatalf("far-apart set should pack sparse")
	}
	if sparse.Count() != 4 {
		t.Fatalf("sparse Count = %d, want 4", sparse.Count())
	}
	// Offset dense spans (base > 0) must still align.
	hiA := sigOf([]uint32{1000, 1001, 1002, 1064})
	hiB := sigOf([]uint32{1001, 1064, 1065})
	if got := AndCount(hiA, hiB); got != 2 {
		t.Fatalf("offset dense AndCount = %d, want 2", got)
	}
}

func TestSignatureDisjointSpans(t *testing.T) {
	lo := sigOf([]uint32{1, 2, 3, 4})
	hi := sigOf([]uint32{100000, 100001, 100002, 100003})
	if got := AndCount(lo, hi); got != 0 {
		t.Fatalf("disjoint spans AndCount = %d, want 0", got)
	}
	if got := AndCount(hi, lo); got != 0 {
		t.Fatalf("disjoint spans AndCount (swapped) = %d, want 0", got)
	}
}

func TestSignatureReuse(t *testing.T) {
	var s Signature
	s.AppendSignature([]uint32{0, 1, 2, 3, 64})
	if !s.Dense() || s.Count() != 5 {
		t.Fatalf("first build wrong: dense=%v count=%d", s.Dense(), s.Count())
	}
	// Rebuild sparse over the same struct; dense remnants must not leak.
	s.AppendSignature([]uint32{7, 1 << 20})
	if s.Dense() || s.Count() != 2 {
		t.Fatalf("rebuild wrong: dense=%v count=%d", s.Dense(), s.Count())
	}
	// And back to dense again.
	s.AppendSignature([]uint32{128, 129, 130})
	if !s.Dense() || s.Count() != 3 {
		t.Fatalf("second rebuild wrong: dense=%v count=%d", s.Dense(), s.Count())
	}
	if got := AndCount(&s, sigOf([]uint32{129, 131})); got != 1 {
		t.Fatalf("reused signature AndCount = %d, want 1", got)
	}
}

// TestSignatureRandomDifferential cross-checks AndCount against a naive map
// intersection across layout combinations (dense×dense, dense×sparse,
// sparse×sparse arise naturally from the universe sizes below).
func TestSignatureRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	universes := []uint32{64, 500, 4096, 1 << 20}
	for trial := 0; trial < 500; trial++ {
		ua := universes[trial%len(universes)]
		ub := universes[(trial/2)%len(universes)]
		na, nb := rng.Intn(120), rng.Intn(120)
		a := make([]uint32, 0, na)
		for i := 0; i < na; i++ {
			a = append(a, uint32(rng.Intn(int(ua))))
		}
		b := make([]uint32, 0, nb)
		for i := 0; i < nb; i++ {
			b = append(b, uint32(rng.Intn(int(ub))))
		}
		a, b = sortedUnique(a), sortedUnique(b)
		want := naiveOverlap(a, b)
		sa, sb := sigOf(a), sigOf(b)
		if got := AndCount(sa, sb); got != want {
			t.Fatalf("trial %d: AndCount = %d, want %d (a=%v b=%v)", trial, got, want, a, b)
		}
		if got := AndCount(sb, sa); got != want {
			t.Fatalf("trial %d: AndCount swapped = %d, want %d", trial, got, want)
		}
		if sa.Count() != len(a) || sb.Count() != len(b) {
			t.Fatalf("trial %d: Count mismatch: %d/%d vs %d/%d", trial, sa.Count(), len(a), sb.Count(), len(b))
		}
	}
}
