package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(0)
	if b.Len() != 0 || b.Count() != 0 || b.Any() {
		t.Fatalf("empty bitset not empty: %v", b)
	}
}

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Set")
		}
	}()
	New(10).Set(10)
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative size")
		}
	}()
	New(-1)
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(10).Or(New(11))
}

func TestOrAndAndNot(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(99)

	or := a.Clone()
	or.Or(b)
	if !or.Get(3) || !or.Get(70) || !or.Get(99) || or.Count() != 3 {
		t.Fatalf("Or wrong: %v", or.Ones())
	}

	and := a.Clone()
	and.And(b)
	if !and.Get(70) || and.Count() != 1 {
		t.Fatalf("And wrong: %v", and.Ones())
	}

	diff := a.Clone()
	diff.AndNot(b)
	if !diff.Get(3) || diff.Count() != 1 {
		t.Fatalf("AndNot wrong: %v", diff.Ones())
	}
}

func TestUnionAndUnionCount(t *testing.T) {
	a, b, c := New(200), New(200), New(200)
	a.Set(1)
	b.Set(1)
	b.Set(150)
	c.Set(199)
	u := Union(a, b, c)
	if u.Count() != 3 {
		t.Fatalf("Union count = %d, want 3", u.Count())
	}
	if got := UnionCount(a, b, c); got != 3 {
		t.Fatalf("UnionCount = %d, want 3", got)
	}
	if got := UnionCount(a); got != 1 {
		t.Fatalf("UnionCount single = %d, want 1", got)
	}
	if got := UnionCount(); got != 0 {
		t.Fatalf("UnionCount none = %d, want 0", got)
	}
}

func TestOnesAndIterate(t *testing.T) {
	b := New(300)
	want := []int{0, 64, 65, 128, 299}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Ones()
	if len(got) != len(want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	b.OnesIterate(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("OnesIterate early stop visited %d, want 2", count)
	}
}

func TestReset(t *testing.T) {
	b := New(128)
	b.Set(5)
	b.Set(100)
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Reset did not clear bits")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(10)
	c := a.Clone()
	c.Set(20)
	if a.Get(20) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(10) {
		t.Fatal("Clone lost original bits")
	}
}

func TestString(t *testing.T) {
	b := New(64)
	b.Set(0)
	if got := b.String(); got != "Bitset(1/64)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Count equals the cardinality of the set of indexes inserted.
func TestQuickCountMatchesInsertions(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		const n = 1 << 14
		b := New(n)
		seen := map[int]bool{}
		for _, r := range raw {
			i := int(r) % n
			b.Set(i)
			seen[i] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: |A ∪ B| = |A| + |B| − |A ∩ B| (inclusion–exclusion).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 2048
		a, b := New(n), New(n)
		for i := 0; i < 500; i++ {
			a.Set(rng.Intn(n))
			b.Set(rng.Intn(n))
		}
		inter := a.Clone()
		inter.And(b)
		return UnionCount(a, b) == a.Count()+b.Count()-inter.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: OR is commutative and idempotent on coverage counts.
func TestQuickOrCommutativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 1024
		a, b := New(n), New(n)
		for i := 0; i < 200; i++ {
			a.Set(rng.Intn(n))
			b.Set(rng.Intn(n))
		}
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		aa := a.Clone()
		aa.Or(a)
		return ab.Count() == ba.Count() && aa.Count() == a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionCount(b *testing.B) {
	const n = 1 << 20
	sets := make([]*Bitset, 8)
	rng := rand.New(rand.NewSource(1))
	for i := range sets {
		sets[i] = New(n)
		for j := 0; j < n/64; j++ {
			sets[i].Set(rng.Intn(n))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionCount(sets...)
	}
}
