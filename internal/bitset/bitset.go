// Package bitset provides a dense, fixed-capacity bitmap used to track
// blocking-rule coverage over a sample of tuple pairs (Falcon §6).
//
// Each blocking rule R_i maintains a bitmap B_i of size |S| where bit j says
// whether rule R_i would drop the j-th pair of sample S. Coverage of a rule
// sequence is then the OR of the constituent bitmaps, which this package
// computes word-at-a-time.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitset is a fixed-length bitmap. The zero value is an empty bitmap of
// length 0; use New to create one with capacity.
type Bitset struct {
	words []uint64
	n     int // logical number of bits
}

// New returns a Bitset holding n bits, all zero.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the set holds.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits (the coverage size |cov(R,S)|).
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets b = b | other. Both bitsets must have the same length.
func (b *Bitset) Or(other *Bitset) {
	b.sameLen(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b = b & other. Both bitsets must have the same length.
func (b *Bitset) And(other *Bitset) {
	b.sameLen(other)
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot sets b = b &^ other. Both bitsets must have the same length.
func (b *Bitset) AndNot(other *Bitset) {
	b.sameLen(other)
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

func (b *Bitset) sameLen(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", b.n, other.n))
	}
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Union returns a new bitset equal to the OR of all inputs. All inputs must
// share a length; Union panics on an empty input list.
func Union(sets ...*Bitset) *Bitset {
	if len(sets) == 0 {
		panic("bitset: Union of no sets")
	}
	u := sets[0].Clone()
	for _, s := range sets[1:] {
		u.Or(s)
	}
	return u
}

// UnionCount returns the number of bits set in the OR of all inputs without
// allocating more than one scratch bitset.
func UnionCount(sets ...*Bitset) int {
	if len(sets) == 0 {
		return 0
	}
	if len(sets) == 1 {
		return sets[0].Count()
	}
	n := len(sets[0].words)
	c := 0
	for i := 0; i < n; i++ {
		var w uint64
		for _, s := range sets {
			w |= s.words[i]
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// OnesIterate calls fn for every set bit, in increasing index order, stopping
// early if fn returns false.
func (b *Bitset) OnesIterate(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + t) {
				return
			}
			w &= w - 1
		}
	}
}

// Ones returns the indexes of all set bits in increasing order.
func (b *Bitset) Ones() []int {
	out := make([]int, 0, b.Count())
	b.OnesIterate(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// String renders the bitmap as a compact summary, e.g. "Bitset(5/64)".
func (b *Bitset) String() string {
	return fmt.Sprintf("Bitset(%d/%d)", b.Count(), b.n)
}
