package bitset

import "math/bits"

// Signature is a bit-parallel fingerprint of a sorted, duplicate-free
// []uint32 ID set: each ID occupies one bit inside a 64-bit block keyed by
// id>>6, so |a ∩ b| becomes AND + OnesCount64 over aligned words instead of
// an element-wise merge (Falcon's set measures — Jaccard, Dice, Overlap,
// Cosine — all reduce to exactly that intersection cardinality).
//
// Two layouts share the type:
//
//   - dense: keys == nil, words[i] covers block base+i. Chosen when the set's
//     block span is small relative to its cardinality, so the AND loop is a
//     short branch-free sweep over contiguous words.
//   - blocked (sparse): keys[i] holds the block index of words[i], strictly
//     increasing. Chosen for long-spanning sets so memory stays O(occupied
//     blocks); intersection merges the key lists and popcounts only blocks
//     both sides occupy.
//
// The zero value is an empty signature. Signatures are immutable after
// AppendSignature returns; AndCount takes pointer receivers only to avoid
// copying the headers on the hot path.
type Signature struct {
	base  uint32   // first block covered (dense layout only)
	keys  []uint32 // nil ⇒ dense; else block keys, strictly increasing
	words []uint64
}

// denseSlackWords bounds the dense layout: dense is chosen only when the
// block span is at most this many words per occupied block, keeping both the
// memory and the AND-loop length within a small constant factor of the
// sparse representation.
const denseSlackWords = 4

// Empty reports whether the signature covers no IDs (either the zero value
// or one built from an empty set).
func (s *Signature) Empty() bool { return len(s.words) == 0 }

// Words returns the number of 64-bit words the signature occupies.
func (s *Signature) Words() int { return len(s.words) }

// Dense reports whether the signature uses the dense (contiguous-span)
// layout.
func (s *Signature) Dense() bool { return s.keys == nil }

// Count returns the number of IDs the signature covers.
func (s *Signature) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// AppendSignature rebuilds s from ids, reusing s's existing key/word
// capacity so steady-state repacking (one probe record per serve request)
// does not allocate. ids must be sorted ascending and duplicate-free — the
// same invariant tokenize.Dict encodings carry; violations leave the
// popcount intersection undefined relative to the merge path, exactly as
// they would desynchronize the sorted merge itself.
func (s *Signature) AppendSignature(ids []uint32) {
	s.keys = s.keys[:0]
	s.words = s.words[:0]
	if len(ids) == 0 {
		s.keys = nil
		s.base = 0
		return
	}
	// Scan for the block range and a transition count to pick the layout.
	// Min/max are taken explicitly (not from the endpoints) so an
	// invariant-violating unsorted input degrades to undefined similarity
	// values, never to an out-of-range write.
	first, last := ids[0]>>6, ids[0]>>6
	blocks := 1
	prev := first
	for _, id := range ids[1:] {
		k := id >> 6
		if k != prev {
			blocks++
			prev = k
		}
		if k < first {
			first = k
		}
		if k > last {
			last = k
		}
	}
	span := int(last-first) + 1

	if span <= denseSlackWords*blocks {
		// Dense: words cover [first, last] contiguously.
		s.keys = nil
		s.base = first
		s.words = growWords(s.words, span)
		for _, id := range ids {
			s.words[(id>>6)-first] |= 1 << (id & 63)
		}
		return
	}

	// Blocked: one (key, word) pair per occupied block.
	s.base = 0
	s.keys = growKeys(s.keys, 0)
	s.words = growWords(s.words, 0)
	cur := ids[0] >> 6
	var w uint64
	for _, id := range ids {
		if k := id >> 6; k != cur {
			s.keys = append(s.keys, cur)
			s.words = append(s.words, w)
			cur, w = k, 0
		}
		w |= 1 << (id & 63)
	}
	s.keys = append(s.keys, cur)
	s.words = append(s.words, w)
}

func growWords(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		//falcon:allow servebudget amortized signature growth to the high-water mark; steady-state repacking reuses the buffer
		return make([]uint64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growKeys(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		//falcon:allow servebudget amortized signature growth to the high-water mark; steady-state repacking reuses the buffer
		return make([]uint32, n)
	}
	return buf[:n]
}

// AndCount returns the exact intersection cardinality |a ∩ b| of the two ID
// sets the signatures were built from. It never approximates: every occupied
// block either aligns with a block on the other side (AND + popcount) or
// contributes zero.
func AndCount(a, b *Signature) int {
	if a.Empty() || b.Empty() {
		return 0
	}
	switch {
	case a.keys == nil && b.keys == nil:
		return andDenseDense(a, b)
	case a.keys == nil:
		return andDenseSparse(a, b)
	case b.keys == nil:
		return andDenseSparse(b, a)
	default:
		return andSparseSparse(a, b)
	}
}

func andDenseDense(a, b *Signature) int {
	// Clip to the overlapping block range; disjoint spans cost nothing.
	lo := a.base
	if b.base > lo {
		lo = b.base
	}
	aEnd := a.base + uint32(len(a.words))
	bEnd := b.base + uint32(len(b.words))
	hi := aEnd
	if bEnd < hi {
		hi = bEnd
	}
	if lo >= hi {
		return 0
	}
	aw := a.words[lo-a.base : hi-a.base]
	bw := b.words[lo-b.base : hi-b.base]
	n := 0
	for i, w := range aw {
		n += bits.OnesCount64(w & bw[i])
	}
	return n
}

func andDenseSparse(d, s *Signature) int {
	end := d.base + uint32(len(d.words))
	// Skip sparse blocks below the dense span with a binary search.
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < d.base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	n := 0
	for i := lo; i < len(s.keys); i++ {
		k := s.keys[i]
		if k >= end {
			break
		}
		n += bits.OnesCount64(s.words[i] & d.words[k-d.base])
	}
	return n
}

func andSparseSparse(a, b *Signature) int {
	n, i, j := 0, 0, 0
	ak, bk := a.keys, b.keys
	for i < len(ak) && j < len(bk) {
		switch {
		case ak[i] < bk[j]:
			i++
		case ak[i] > bk[j]:
			j++
		default:
			n += bits.OnesCount64(a.words[i] & b.words[j])
			i++
			j++
		}
	}
	return n
}
