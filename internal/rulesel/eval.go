// Package rulesel implements Falcon's eval_rules operator (crowd-based rule
// precision estimation, paper §3.4 and Corleone §4.2) and select_opt_seq
// (optimal rule-sequence selection, paper §6).
package rulesel

import (
	"cmp"
	"context"
	"math"
	"math/rand"
	"slices"
	"time"

	"falcon/internal/bitset"
	"falcon/internal/crowd"
	"falcon/internal/rules"
	"falcon/internal/table"
)

// EvalConfig holds the eval_rules parameters of §3.4.
type EvalConfig struct {
	// TopK rules (by sample coverage) are evaluated. Paper: 20.
	TopK int
	// BatchPerIteration examples labeled per rule iteration (b). Paper: 20.
	BatchPerIteration int
	// MaxIterPerRule caps iterations per rule. Paper: 5 (Prop. 2 shows 20
	// is the unconditional worst case).
	MaxIterPerRule int
	// PMin is the precision bar for retaining a rule. Paper: 0.95.
	PMin float64
	// EpsMax is the maximal error margin. Paper: 0.05.
	EpsMax float64
	// Z is the normal quantile for the δ=0.95 confidence. Paper: 1.96.
	Z float64
	// Seed drives example selection.
	Seed int64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.TopK <= 0 {
		c.TopK = 20
	}
	if c.BatchPerIteration <= 0 {
		c.BatchPerIteration = 20
	}
	if c.MaxIterPerRule <= 0 {
		c.MaxIterPerRule = 5
	}
	if c.PMin <= 0 {
		c.PMin = 0.95
	}
	if c.EpsMax <= 0 {
		c.EpsMax = 0.05
	}
	if c.Z <= 0 {
		c.Z = 1.96
	}
	return c
}

// EvaluatedRule is a retained rule with its crowd-estimated precision and
// sample statistics used by select_opt_seq.
type EvaluatedRule struct {
	Rule      rules.Rule
	Precision float64
	Coverage  *bitset.Bitset
	CovCount  int
	// Selectivity = 1 − |cov|/|S| (§6): the fraction of pairs surviving.
	Selectivity float64
	// Time is the modeled per-pair evaluation cost of the rule in abstract
	// units (predicate-weighted).
	Time float64
}

// EvalTrace records one crowd iteration of rule evaluation.
type EvalTrace struct {
	RuleID       int
	CrowdLatency time.Duration
	Questions    int
}

// EvalResult is the eval_rules output.
type EvalResult struct {
	Retained []EvaluatedRule
	// Dropped counts rules rejected for low precision.
	Dropped int
	Trace   []EvalTrace
	// Iterations is the total crowd iterations across rules.
	Iterations int
}

// RuleTimer models the per-pair evaluation cost of a rule; it sums
// per-predicate weights. Pass nil to EvalRules to use DefaultRuleTime.
type RuleTimer func(r rules.Rule) float64

// DefaultRuleTime charges one unit per predicate — a deliberate
// simplification; core wires in a feature-aware timer that weights string
// measures more heavily.
func DefaultRuleTime(r rules.Rule) float64 { return float64(len(r.Preds)) }

// EvalRules ranks candidate rules by sample coverage, then uses the crowd
// (strong-majority voting) to estimate each top rule's precision, retaining
// the precise ones. pool holds the sample's pairs and vecs; oracle supplies
// ground truth for the simulated crowd. The crowd waits honor ctx: on
// cancellation the partial result is discarded and ctx.Err() returned.
func EvalRules(ctx context.Context, cands []rules.Rule, pairs []table.Pair, vecs [][]float64,
	cr *crowd.Crowd, oracle func(table.Pair) bool, timer RuleTimer, cfg EvalConfig) (*EvalResult, error) {

	cfg = cfg.withDefaults()
	if timer == nil {
		timer = DefaultRuleTime
	}
	res := &EvalResult{}
	if len(cands) == 0 || len(vecs) == 0 {
		return res, nil
	}

	// Rank rules by coverage (desc), ID asc, and keep the top K.
	type ranked struct {
		rule rules.Rule
		cov  *bitset.Bitset
		n    int
	}
	rs := make([]ranked, 0, len(cands))
	for _, r := range cands {
		cov := r.Coverage(vecs)
		rs = append(rs, ranked{r, cov, cov.Count()})
	}
	slices.SortFunc(rs, func(a, b ranked) int {
		if c := cmp.Compare(b.n, a.n); c != 0 {
			return c
		}
		return cmp.Compare(a.rule.ID, b.rule.ID)
	})
	if len(rs) > cfg.TopK {
		rs = rs[:cfg.TopK]
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	labelCache := map[int]bool{} // sample index → crowd label
	for _, cand := range rs {
		if cand.n == 0 {
			res.Dropped++
			continue
		}
		covIdx := cand.cov.Ones()
		m := len(covIdx)
		// X: labeled examples drawn for this rule.
		drawn := map[int]bool{}
		var n, nNeg int
		retained, decided := false, false
		for iter := 0; iter < cfg.MaxIterPerRule && !decided; iter++ {
			// Step 1: randomly select b unlabeled-for-this-rule examples.
			var batch []int
			perm := rng.Perm(m)
			for _, pi := range perm {
				if drawn[covIdx[pi]] {
					continue
				}
				batch = append(batch, covIdx[pi])
				if len(batch) == cfg.BatchPerIteration {
					break
				}
			}
			if len(batch) == 0 {
				break // coverage exhausted
			}
			// Ask the crowd for labels not already cached.
			var qs []crowd.Question
			var qIdx []int
			for _, si := range batch {
				drawn[si] = true
				if _, ok := labelCache[si]; !ok {
					qs = append(qs, crowd.Question{Pair: pairs[si], Truth: oracle(pairs[si])})
					qIdx = append(qIdx, si)
				}
			}
			if len(qs) > 0 {
				labels, lat, err := cr.LabelStrongMajorityContext(ctx, qs)
				if err != nil {
					return nil, err
				}
				for i, si := range qIdx {
					labelCache[si] = labels[i]
				}
				res.Trace = append(res.Trace, EvalTrace{RuleID: cand.rule.ID, CrowdLatency: lat, Questions: len(qs)})
			} else {
				res.Trace = append(res.Trace, EvalTrace{RuleID: cand.rule.ID})
			}
			res.Iterations++
			// Step 2: estimate precision with finite-population correction.
			for _, si := range batch {
				n++
				if !labelCache[si] {
					nNeg++
				}
			}
			p := float64(nNeg) / float64(n)
			eps := math.Inf(1)
			if m > 1 {
				eps = cfg.Z * math.Sqrt(p*(1-p)/float64(n)*float64(m-n)/float64(m-1))
			} else {
				eps = 0
			}
			// Step 3: retain / drop / continue.
			switch {
			case p >= cfg.PMin && eps <= cfg.EpsMax:
				retained, decided = true, true
			case p+eps < cfg.PMin, eps <= cfg.EpsMax && p < cfg.PMin:
				decided = true
			}
			if iter == cfg.MaxIterPerRule-1 && !decided {
				// Iteration cap: decide on the current point estimate.
				retained, decided = p >= cfg.PMin, true
			}
		}
		if retained {
			prec := float64(nNeg) / float64(n)
			res.Retained = append(res.Retained, EvaluatedRule{
				Rule:        cand.rule,
				Precision:   prec,
				Coverage:    cand.cov,
				CovCount:    cand.n,
				Selectivity: 1 - float64(cand.n)/float64(len(vecs)),
				Time:        timer(cand.rule),
			})
		} else {
			res.Dropped++
		}
	}
	return res, nil
}
