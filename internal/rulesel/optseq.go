package rulesel

import (
	"cmp"
	"math"
	"slices"

	"falcon/internal/bitset"
	"falcon/internal/rules"
)

// Weights are the α, β, γ of the §6 sequence score
//
//	score = α·prec − β·sel − γ·time.
//
// Applications trade precision (matches lost to blocking) against candidate
// set size (sel) and blocking run time.
type Weights struct {
	Alpha, Beta, Gamma float64
	// MaxEnumRules caps subset enumeration; if more rules are retained,
	// only the top rules by rank ([1−sel]/time) enter enumeration.
	MaxEnumRules int
}

// DefaultWeights favors precision strongly, as Falcon does: losing true
// matches to blocking is far costlier than a somewhat larger candidate set.
func DefaultWeights() Weights {
	return Weights{Alpha: 1.0, Beta: 0.05, Gamma: 0.01, MaxEnumRules: 12}
}

func (w Weights) withDefaults() Weights {
	d := DefaultWeights()
	if w.Alpha == 0 && w.Beta == 0 && w.Gamma == 0 {
		w.Alpha, w.Beta, w.Gamma = d.Alpha, d.Beta, d.Gamma
	}
	if w.MaxEnumRules <= 0 {
		w.MaxEnumRules = d.MaxEnumRules
	}
	return w
}

// SeqChoice is a scored rule sequence.
type SeqChoice struct {
	Seq         []EvaluatedRule
	Score       float64
	Precision   float64 // lower bound on sequence precision (§6)
	Selectivity float64
	Time        float64 // expected per-pair evaluation cost
	CovCount    int
}

// seqStats computes selectivity, expected time, and the precision lower
// bound of an ordered sequence over a sample of size n.
func seqStats(seq []EvaluatedRule, n int) (sel, t, prec float64, cov int) {
	if len(seq) == 0 || n == 0 {
		return 1, 0, 1, 0
	}
	union := bitset.New(seq[0].Coverage.Len())
	t = 0.0
	surviving := 1.0
	for _, r := range seq {
		t += surviving * r.Time
		union.Or(r.Coverage)
		surviving = 1 - float64(union.Count())/float64(n)
	}
	cov = union.Count()
	sel = 1 - float64(cov)/float64(n)
	// Precision lower bound: 1 − Σ|cov(R_i)|(1−prec_i) / |cov(seq)|.
	if cov > 0 {
		bad := 0.0
		for _, r := range seq {
			bad += float64(r.CovCount) * (1 - r.Precision)
		}
		prec = 1 - bad/float64(cov)
		if prec < 0 {
			prec = 0
		}
	} else {
		prec = 1
	}
	return sel, t, prec, cov
}

// greedyOrder orders a rule subset with the 4-approximation greedy of §6
// (adapted from pipelined-filter ordering): repeatedly pick the rule with
// the largest marginal drop rate per unit time given what is already in the
// sequence.
func greedyOrder(subset []EvaluatedRule, n int) []EvaluatedRule {
	if len(subset) <= 1 {
		return subset
	}
	remaining := append([]EvaluatedRule(nil), subset...)
	var out []EvaluatedRule
	union := bitset.New(subset[0].Coverage.Len())
	prevSel := 1.0
	for len(remaining) > 0 {
		bestIdx, bestScore := 0, math.Inf(-1)
		for i, r := range remaining {
			// Marginal selectivity if r were appended.
			u := union.Clone()
			u.Or(r.Coverage)
			newSel := 1 - float64(u.Count())/float64(n)
			var drop float64
			if prevSel > 0 {
				drop = 1 - newSel/prevSel
			}
			score := drop / r.Time
			if score > bestScore || (score == bestScore && r.Rule.ID < remaining[bestIdx].Rule.ID) {
				bestIdx, bestScore = i, score
			}
		}
		chosen := remaining[bestIdx]
		out = append(out, chosen)
		union.Or(chosen.Coverage)
		prevSel = 1 - float64(union.Count())/float64(n)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out
}

// SelectOptSeq enumerates rule subsets, orders each with the greedy
// algorithm, scores the results, and returns the globally best sequence.
// n is the sample size the coverage bitmaps were computed over.
func SelectOptSeq(retained []EvaluatedRule, n int, w Weights) SeqChoice {
	w = w.withDefaults()
	if len(retained) == 0 || n == 0 {
		return SeqChoice{Precision: 1, Selectivity: 1}
	}
	pool := retained
	if len(pool) > w.MaxEnumRules {
		// Keep the best rules by rank = [1−sel]/time.
		ranked := append([]EvaluatedRule(nil), pool...)
		slices.SortFunc(ranked, func(a, b EvaluatedRule) int {
			ra := (1 - a.Selectivity) / a.Time
			rb := (1 - b.Selectivity) / b.Time
			if c := cmp.Compare(rb, ra); c != 0 {
				return c
			}
			return cmp.Compare(a.Rule.ID, b.Rule.ID)
		})
		pool = ranked[:w.MaxEnumRules]
	}

	best := SeqChoice{Score: math.Inf(-1)}
	for mask := 1; mask < 1<<len(pool); mask++ {
		var subset []EvaluatedRule
		for i := range pool {
			if mask&(1<<i) != 0 {
				subset = append(subset, pool[i])
			}
		}
		seq := greedyOrder(subset, n)
		sel, t, prec, cov := seqStats(seq, n)
		score := w.Alpha*prec - w.Beta*sel - w.Gamma*t
		if score > best.Score {
			best = SeqChoice{Seq: seq, Score: score, Precision: prec, Selectivity: sel, Time: t, CovCount: cov}
		}
	}
	return best
}

// SequenceOf builds a SeqChoice for a fixed rule list (used by the E13
// rule-sequence comparison: all rules, top-1, top-3).
func SequenceOf(seq []EvaluatedRule, n int, w Weights) SeqChoice {
	w = w.withDefaults()
	sel, t, prec, cov := seqStats(seq, n)
	return SeqChoice{
		Seq: seq, Precision: prec, Selectivity: sel, Time: t, CovCount: cov,
		Score: w.Alpha*prec - w.Beta*sel - w.Gamma*t,
	}
}

// RuleSeq extracts the plain rules of the chosen sequence in order.
func (c SeqChoice) RuleSeq() []rules.Rule {
	out := make([]rules.Rule, len(c.Seq))
	for i, r := range c.Seq {
		out[i] = r.Rule
	}
	return out
}
