package rulesel

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/bitset"
	"falcon/internal/crowd"
	"falcon/internal/rules"
	"falcon/internal/table"
)

// fixture builds a sample with ground truth: pairs with vec[0] ≤ 0.5 are
// non-matches (rule 0's territory), a small band are matches.
func fixture(n int, seed int64) (pairs []table.Pair, vecs [][]float64, oracle func(table.Pair) bool) {
	rng := rand.New(rand.NewSource(seed))
	truth := map[table.Pair]bool{}
	for i := 0; i < n; i++ {
		v := []float64{rng.Float64(), rng.Float64()}
		p := table.Pair{A: i, B: i}
		pairs = append(pairs, p)
		vecs = append(vecs, v)
		truth[p] = v[0] > 0.8 // matches have high similarity
	}
	return pairs, vecs, func(p table.Pair) bool { return truth[p] }
}

func newCrowd(err float64) *crowd.Crowd {
	return crowd.New(crowd.NewRandomWorkers(err, 0, 5), crowd.Config{})
}

func TestEvalRulesRetainsPrecise(t *testing.T) {
	pairs, vecs, oracle := fixture(2000, 1)
	// Rule 0: high precision (drops only sim ≤ 0.5, all true non-matches).
	// Rule 1: terrible (drops sim ≤ 0.9, including many matches).
	cands := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: 0, Op: rules.LE, Value: 0.5}}},
		{ID: 1, Preds: []rules.Predicate{{Feature: 0, Op: rules.LE, Value: 0.95}}},
	}
	res, err := EvalRules(context.Background(), cands, pairs, vecs, newCrowd(0), oracle, nil, EvalConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retained) != 1 {
		t.Fatalf("retained %d rules, want 1", len(res.Retained))
	}
	if res.Retained[0].Rule.ID != 0 {
		t.Fatalf("retained rule %d, want 0", res.Retained[0].Rule.ID)
	}
	if res.Dropped != 1 {
		t.Fatalf("dropped = %d", res.Dropped)
	}
	r := res.Retained[0]
	if r.Precision < 0.95 {
		t.Fatalf("precision = %v", r.Precision)
	}
	if r.CovCount == 0 || r.Coverage == nil {
		t.Fatal("coverage missing")
	}
	if math.Abs(r.Selectivity-(1-float64(r.CovCount)/2000)) > 1e-9 {
		t.Fatalf("selectivity = %v", r.Selectivity)
	}
}

func TestEvalRulesIterationCap(t *testing.T) {
	pairs, vecs, oracle := fixture(3000, 3)
	// A borderline rule (~93% precision) keeps the loop undecided.
	cands := []rules.Rule{{ID: 0, Preds: []rules.Predicate{{Feature: 0, Op: rules.LE, Value: 0.82}}}}
	cfg := EvalConfig{MaxIterPerRule: 3, Seed: 4}
	res, err := EvalRules(context.Background(), cands, pairs, vecs, newCrowd(0), oracle, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Fatalf("iterations %d exceed cap 3", res.Iterations)
	}
}

func TestEvalRulesProposition2Bound(t *testing.T) {
	// With b=20 per iteration, ε ≤ 0.05 at 95% is guaranteed by n ≥ 384
	// (Prop. 2) — i.e. at most 20 iterations even with no cap.
	pairs, vecs, oracle := fixture(20000, 5)
	cands := []rules.Rule{{ID: 0, Preds: []rules.Predicate{{Feature: 0, Op: rules.LE, Value: 0.8}}}}
	cfg := EvalConfig{MaxIterPerRule: 100, Seed: 6} // effectively uncapped
	res, err := EvalRules(context.Background(), cands, pairs, vecs, newCrowd(0.3), oracle, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 20 {
		t.Fatalf("iterations %d exceed the Prop. 2 bound of 20", res.Iterations)
	}
}

func TestEvalRulesTopK(t *testing.T) {
	pairs, vecs, oracle := fixture(500, 7)
	var cands []rules.Rule
	for i := 0; i < 30; i++ {
		cands = append(cands, rules.Rule{ID: i, Preds: []rules.Predicate{{Feature: 0, Op: rules.LE, Value: 0.3 + float64(i)*0.001}}})
	}
	cfg := EvalConfig{TopK: 5, Seed: 8}
	res, err := EvalRules(context.Background(), cands, pairs, vecs, newCrowd(0), oracle, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retained)+res.Dropped > 5 {
		t.Fatalf("evaluated %d rules, cap was 5", len(res.Retained)+res.Dropped)
	}
}

func TestEvalRulesLabelCacheSavesQuestions(t *testing.T) {
	pairs, vecs, oracle := fixture(300, 9)
	// Two nearly identical rules share coverage; the cache should avoid
	// re-asking the crowd for shared pairs.
	cands := []rules.Rule{
		{ID: 0, Preds: []rules.Predicate{{Feature: 0, Op: rules.LE, Value: 0.5}}},
		{ID: 1, Preds: []rules.Predicate{{Feature: 0, Op: rules.LE, Value: 0.5}, {Feature: 1, Op: rules.LE, Value: 2}}},
	}
	cr := newCrowd(0)
	if _, err := EvalRules(context.Background(), cands, pairs, vecs, cr, oracle, nil, EvalConfig{Seed: 10}); err != nil {
		t.Fatal(err)
	}
	// Coverage of both rules is identical (~150 pairs); without the cache
	// we'd ask up to 2×coverage questions.
	cov := cands[0].Coverage(vecs).Count()
	if cr.Ledger().Questions > cov {
		t.Fatalf("questions %d exceed unique coverage %d; cache not working", cr.Ledger().Questions, cov)
	}
}

func TestEvalRulesEmpty(t *testing.T) {
	res, err := EvalRules(context.Background(), nil, nil, nil, newCrowd(0), nil, nil, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retained) != 0 || res.Dropped != 0 {
		t.Fatal("empty eval should be empty")
	}
}

func TestDefaultRuleTime(t *testing.T) {
	r := rules.Rule{Preds: make([]rules.Predicate, 3)}
	if DefaultRuleTime(r) != 3 {
		t.Fatal("DefaultRuleTime wrong")
	}
}

// mkEval builds an EvaluatedRule with a synthetic coverage bitmap.
func mkEval(id, n int, coverFrac float64, prec, cost float64, seed int64) EvaluatedRule {
	rng := rand.New(rand.NewSource(seed))
	b := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < coverFrac {
			b.Set(i)
		}
	}
	c := b.Count()
	return EvaluatedRule{
		Rule:        rules.Rule{ID: id},
		Precision:   prec,
		Coverage:    b,
		CovCount:    c,
		Selectivity: 1 - float64(c)/float64(n),
		Time:        cost,
	}
}

func TestGreedyOrderPrefersCheapSelective(t *testing.T) {
	const n = 10000
	cheap := mkEval(0, n, 0.5, 0.99, 1, 1)   // drops half, cost 1
	pricey := mkEval(1, n, 0.5, 0.99, 10, 2) // drops half, cost 10
	seq := greedyOrder([]EvaluatedRule{pricey, cheap}, n)
	if seq[0].Rule.ID != 0 {
		t.Fatalf("greedy should put the cheap rule first, got %d", seq[0].Rule.ID)
	}
}

func TestSeqStatsOrderIndependentSelPrec(t *testing.T) {
	const n = 5000
	a := mkEval(0, n, 0.4, 0.98, 1, 3)
	b := mkEval(1, n, 0.3, 0.97, 2, 4)
	s1, _, p1, c1 := seqStats([]EvaluatedRule{a, b}, n)
	s2, _, p2, c2 := seqStats([]EvaluatedRule{b, a}, n)
	if s1 != s2 || p1 != p2 || c1 != c2 {
		t.Fatal("selectivity/precision must be order-independent")
	}
}

func TestSeqStatsTimeOrderDependent(t *testing.T) {
	const n = 5000
	a := mkEval(0, n, 0.6, 0.98, 1, 5)
	b := mkEval(1, n, 0.1, 0.97, 9, 6)
	_, tAB, _, _ := seqStats([]EvaluatedRule{a, b}, n)
	_, tBA, _, _ := seqStats([]EvaluatedRule{b, a}, n)
	// Cheap selective rule first should cost less overall.
	if tAB >= tBA {
		t.Fatalf("time(a,b)=%v should beat time(b,a)=%v", tAB, tBA)
	}
}

func TestSelectOptSeqBeatsFixedChoices(t *testing.T) {
	const n = 8000
	pool := []EvaluatedRule{
		mkEval(0, n, 0.5, 0.99, 1, 11),
		mkEval(1, n, 0.45, 0.98, 2, 12),
		mkEval(2, n, 0.2, 0.90, 1, 13),  // imprecise
		mkEval(3, n, 0.05, 0.99, 8, 14), // expensive, low coverage
	}
	w := DefaultWeights()
	best := SelectOptSeq(pool, n, w)
	if len(best.Seq) == 0 {
		t.Fatal("no sequence chosen")
	}
	// The optimum must score at least as well as using all rules, top-1,
	// and top-3 in given order.
	for _, alt := range [][]EvaluatedRule{pool, pool[:1], pool[:3]} {
		c := SequenceOf(alt, n, w)
		if c.Score > best.Score+1e-12 {
			t.Fatalf("fixed sequence scored %v > optimal %v", c.Score, best.Score)
		}
	}
}

func TestSelectOptSeqEmpty(t *testing.T) {
	c := SelectOptSeq(nil, 100, Weights{})
	if len(c.Seq) != 0 || c.Precision != 1 {
		t.Fatalf("empty choice = %+v", c)
	}
}

func TestSelectOptSeqEnumCap(t *testing.T) {
	const n = 1000
	var pool []EvaluatedRule
	for i := 0; i < 15; i++ {
		pool = append(pool, mkEval(i, n, 0.1+float64(i)*0.02, 0.99, 1+float64(i%3), int64(20+i)))
	}
	w := Weights{Alpha: 1, Beta: 0.25, Gamma: 0.02, MaxEnumRules: 6}
	best := SelectOptSeq(pool, n, w)
	if len(best.Seq) > 6 {
		t.Fatalf("sequence length %d exceeds enumeration cap", len(best.Seq))
	}
}

func TestRuleSeq(t *testing.T) {
	const n = 100
	pool := []EvaluatedRule{mkEval(7, n, 0.5, 0.99, 1, 31)}
	c := SelectOptSeq(pool, n, DefaultWeights())
	rs := c.RuleSeq()
	if len(rs) != 1 || rs[0].ID != 7 {
		t.Fatalf("RuleSeq = %v", rs)
	}
}

// Property: the precision lower bound never exceeds 1 and never goes below
// 0; selectivity stays in [0,1]; greedy order is a permutation.
func TestQuickSeqInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 2000
		k := 1 + rng.Intn(5)
		var pool []EvaluatedRule
		for i := 0; i < k; i++ {
			pool = append(pool, mkEval(i, n, rng.Float64()*0.8, 0.9+rng.Float64()*0.1, 1+rng.Float64()*5, rng.Int63()))
		}
		seq := greedyOrder(pool, n)
		if len(seq) != k {
			return false
		}
		seen := map[int]bool{}
		for _, r := range seq {
			if seen[r.Rule.ID] {
				return false
			}
			seen[r.Rule.ID] = true
		}
		sel, tm, prec, _ := seqStats(seq, n)
		return sel >= 0 && sel <= 1 && prec >= 0 && prec <= 1 && tm >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SelectOptSeq's score is the max over every explicit subset
// ordering score for small pools.
func TestQuickOptSeqDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 500
		var pool []EvaluatedRule
		for i := 0; i < 3; i++ {
			pool = append(pool, mkEval(i, n, rng.Float64()*0.7, 0.92+rng.Float64()*0.08, 1+rng.Float64()*4, rng.Int63()))
		}
		w := DefaultWeights()
		best := SelectOptSeq(pool, n, w)
		// Compare against each singleton and each pair in both orders.
		alts := [][]EvaluatedRule{
			{pool[0]}, {pool[1]}, {pool[2]},
			{pool[0], pool[1]}, {pool[1], pool[0]},
			{pool[0], pool[2]}, {pool[2], pool[0]},
			{pool[1], pool[2]}, {pool[2], pool[1]},
		}
		for _, alt := range alts {
			// Optimal uses greedy ordering, so compare on sel/prec score
			// only up to greedy's 4-approximation on time; allow slack γ·Δt.
			c := SequenceOf(alt, n, w)
			if c.Score > best.Score+w.Gamma*c.Time*3+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectOptSeq(b *testing.B) {
	const n = 50000
	var pool []EvaluatedRule
	for i := 0; i < 10; i++ {
		pool = append(pool, mkEval(i, n, 0.1+float64(i)*0.05, 0.95+float64(i%5)*0.01, 1+float64(i%4), int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectOptSeq(pool, n, DefaultWeights())
	}
}
