package feature

import (
	"strconv"
	"strings"
	"sync"

	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Vector is a tuple pair encoded as feature values (the gen_fvs output).
type Vector struct {
	Pair   table.Pair
	Values []float64
}

// Vectorizer converts tuple pairs into feature vectors with per-table token
// and numeric-parse caches, so repeated pairs touching the same tuple do not
// re-tokenize.
//
// It is safe for concurrent use: columns are tokenized/parsed whole on first
// access under a lock and published as immutable slices, so map tasks on the
// worker pool can share one vectorizer.
type Vectorizer struct {
	Set  *Set
	A, B *table.Table

	mu     sync.RWMutex
	tokA   map[tokKey][][]string // (col,kind) → per-row token sets
	tokB   map[tokKey][][]string
	numA   map[int][]float64 // col → per-row parsed numbers
	numB   map[int][]float64
	numOkA map[int][]bool
	numOkB map[int][]bool
}

type tokKey struct {
	col  int
	kind tokenize.Kind
}

// NewVectorizer builds a vectorizer for the feature set over tables a and b.
func NewVectorizer(set *Set, a, b *table.Table) *Vectorizer {
	return &Vectorizer{
		Set: set, A: a, B: b,
		tokA: map[tokKey][][]string{}, tokB: map[tokKey][][]string{},
		numA: map[int][]float64{}, numB: map[int][]float64{},
		numOkA: map[int][]bool{}, numOkB: map[int][]bool{},
	}
}

// tokenCol returns the fully-built token column for (col, kind), building it
// on first access. Once published the slice is never mutated again, so
// callers may read it without holding the lock.
func (v *Vectorizer) tokenCol(isA bool, col int, kind tokenize.Kind) [][]string {
	cache, t := v.tokA, v.A
	if !isA {
		cache, t = v.tokB, v.B
	}
	k := tokKey{col, kind}
	v.mu.RLock()
	rows, ok := cache[k]
	v.mu.RUnlock()
	if ok {
		return rows
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if rows, ok := cache[k]; ok {
		return rows
	}
	rows = make([][]string, t.Len())
	for row := range rows {
		val := t.Value(row, col)
		if table.IsMissing(val) {
			rows[row] = []string{}
		} else {
			rows[row] = tokenize.Set(kind, val)
		}
	}
	cache[k] = rows
	return rows
}

func (v *Vectorizer) tokens(isA bool, col int, kind tokenize.Kind, row int) []string {
	return v.tokenCol(isA, col, kind)[row]
}

// numberCol returns the fully-parsed numeric column, building it on first
// access; like tokenCol, published slices are immutable.
func (v *Vectorizer) numberCol(isA bool, col int) ([]float64, []bool) {
	nums, oks, t := v.numA, v.numOkA, v.A
	if !isA {
		nums, oks, t = v.numB, v.numOkB, v.B
	}
	v.mu.RLock()
	col2, ok := nums[col], oks[col]
	v.mu.RUnlock()
	if col2 != nil {
		return col2, ok
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if col2, ok := nums[col], oks[col]; col2 != nil {
		return col2, ok
	}
	col2 = make([]float64, t.Len())
	ok = make([]bool, t.Len())
	for r := 0; r < t.Len(); r++ {
		s := strings.TrimSpace(t.Value(r, col))
		if table.IsMissing(s) {
			continue
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			col2[r], ok[r] = f, true
		}
	}
	nums[col], oks[col] = col2, ok
	return col2, ok
}

func (v *Vectorizer) number(isA bool, col, row int) (float64, bool) {
	col2, ok := v.numberCol(isA, col)
	return col2[row], ok[row]
}

// Vector computes the full feature vector for pair p.
func (v *Vectorizer) Vector(p table.Pair) Vector {
	return v.vector(p, v.Set.Features, nil)
}

// BlockingVector computes only the blocking-stage features for pair p. The
// returned Values are indexed by position in Set.BlockingIdx.
func (v *Vectorizer) BlockingVector(p table.Pair) Vector {
	return v.vector(p, v.Set.Features, v.Set.BlockingIdx)
}

func (v *Vectorizer) vector(p table.Pair, feats []Feature, idx []int) Vector {
	n := len(feats)
	if idx != nil {
		n = len(idx)
	}
	out := Vector{Pair: p, Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		f := &feats[i]
		if idx != nil {
			f = &feats[idx[i]]
		}
		out.Values[i] = v.evalCached(f, p)
	}
	return out
}

// EvalFeature computes one feature on pair p using the caches.
func (v *Vectorizer) EvalFeature(f *Feature, p table.Pair) float64 {
	return v.evalCached(f, p)
}

func (v *Vectorizer) evalCached(f *Feature, p table.Pair) float64 {
	switch {
	case f.Measure.NumericBased():
		x, okx := v.number(true, f.ACol, p.A)
		y, oky := v.number(false, f.BCol, p.B)
		if !okx || !oky {
			return Missing
		}
		if f.Measure == simfn.MAbsDiff {
			return simfn.AbsDiff(x, y)
		}
		return simfn.RelDiff(x, y)
	case f.Measure.SetBased():
		ta := v.tokens(true, f.ACol, f.Token, p.A)
		tb := v.tokens(false, f.BCol, f.Token, p.B)
		return f.evalSets(ta, tb)
	default:
		av := v.A.Value(p.A, f.ACol)
		bv := v.B.Value(p.B, f.BCol)
		if table.IsMissing(av) {
			av = ""
		}
		if table.IsMissing(bv) {
			bv = ""
		}
		return f.evalStrings(strings.ToLower(strings.TrimSpace(av)), strings.ToLower(strings.TrimSpace(bv)))
	}
}

// Warm pre-builds every column cache the feature set can touch, so that
// subsequent concurrent evaluation never takes the write lock.
func (v *Vectorizer) Warm() {
	for i := range v.Set.Features {
		f := &v.Set.Features[i]
		switch {
		case f.Measure.NumericBased():
			v.numberCol(true, f.ACol)
			v.numberCol(false, f.BCol)
		case f.Measure.SetBased():
			v.tokenCol(true, f.ACol, f.Token)
			v.tokenCol(false, f.BCol, f.Token)
		}
	}
}

// VectorizeAll converts a pair list into vectors (full feature space).
func (v *Vectorizer) VectorizeAll(pairs []table.Pair) []Vector {
	out := make([]Vector, len(pairs))
	for i, p := range pairs {
		out[i] = v.Vector(p)
	}
	return out
}

// BlockingVectorizeAll converts a pair list into blocking-feature vectors.
func (v *Vectorizer) BlockingVectorizeAll(pairs []table.Pair) []Vector {
	out := make([]Vector, len(pairs))
	for i, p := range pairs {
		out[i] = v.BlockingVector(p)
	}
	return out
}
