package feature

import (
	"strconv"
	"strings"

	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Vector is a tuple pair encoded as feature values (the gen_fvs output).
type Vector struct {
	Pair   table.Pair
	Values []float64
}

// Vectorizer converts tuple pairs into feature vectors with per-table token
// and numeric-parse caches, so repeated pairs touching the same tuple do not
// re-tokenize.
type Vectorizer struct {
	Set  *Set
	A, B *table.Table

	tokA, tokB map[tokKey][][]string // (col,kind) → per-row token sets
	numA, numB map[int][]float64     // col → per-row parsed numbers (NaN pattern via ok slice)
	numOkA     map[int][]bool
	numOkB     map[int][]bool
}

type tokKey struct {
	col  int
	kind tokenize.Kind
}

// NewVectorizer builds a vectorizer for the feature set over tables a and b.
func NewVectorizer(set *Set, a, b *table.Table) *Vectorizer {
	return &Vectorizer{
		Set: set, A: a, B: b,
		tokA: map[tokKey][][]string{}, tokB: map[tokKey][][]string{},
		numA: map[int][]float64{}, numB: map[int][]float64{},
		numOkA: map[int][]bool{}, numOkB: map[int][]bool{},
	}
}

func (v *Vectorizer) tokens(isA bool, col int, kind tokenize.Kind, row int) []string {
	cache := v.tokA
	t := v.A
	if !isA {
		cache = v.tokB
		t = v.B
	}
	k := tokKey{col, kind}
	rows, ok := cache[k]
	if !ok {
		rows = make([][]string, t.Len())
		cache[k] = rows
	}
	if rows[row] == nil {
		val := t.Value(row, col)
		if table.IsMissing(val) {
			rows[row] = []string{}
		} else {
			rows[row] = tokenize.Set(kind, val)
		}
	}
	return rows[row]
}

func (v *Vectorizer) number(isA bool, col, row int) (float64, bool) {
	nums, oks, t := v.numA, v.numOkA, v.A
	if !isA {
		nums, oks, t = v.numB, v.numOkB, v.B
	}
	col2, ok := nums[col], oks[col]
	if col2 == nil {
		col2 = make([]float64, t.Len())
		ok = make([]bool, t.Len())
		for r := 0; r < t.Len(); r++ {
			s := strings.TrimSpace(t.Value(r, col))
			if table.IsMissing(s) {
				continue
			}
			if f, err := strconv.ParseFloat(s, 64); err == nil {
				col2[r], ok[r] = f, true
			}
		}
		nums[col], oks[col] = col2, ok
	}
	return col2[row], ok[row]
}

// Vector computes the full feature vector for pair p.
func (v *Vectorizer) Vector(p table.Pair) Vector {
	return v.vector(p, v.Set.Features, nil)
}

// BlockingVector computes only the blocking-stage features for pair p. The
// returned Values are indexed by position in Set.BlockingIdx.
func (v *Vectorizer) BlockingVector(p table.Pair) Vector {
	return v.vector(p, v.Set.Features, v.Set.BlockingIdx)
}

func (v *Vectorizer) vector(p table.Pair, feats []Feature, idx []int) Vector {
	n := len(feats)
	if idx != nil {
		n = len(idx)
	}
	out := Vector{Pair: p, Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		f := &feats[i]
		if idx != nil {
			f = &feats[idx[i]]
		}
		out.Values[i] = v.evalCached(f, p)
	}
	return out
}

// EvalFeature computes one feature on pair p using the caches.
func (v *Vectorizer) EvalFeature(f *Feature, p table.Pair) float64 {
	return v.evalCached(f, p)
}

func (v *Vectorizer) evalCached(f *Feature, p table.Pair) float64 {
	switch {
	case f.Measure.NumericBased():
		x, okx := v.number(true, f.ACol, p.A)
		y, oky := v.number(false, f.BCol, p.B)
		if !okx || !oky {
			return Missing
		}
		if f.Measure == simfn.MAbsDiff {
			return simfn.AbsDiff(x, y)
		}
		return simfn.RelDiff(x, y)
	case f.Measure.SetBased():
		ta := v.tokens(true, f.ACol, f.Token, p.A)
		tb := v.tokens(false, f.BCol, f.Token, p.B)
		return f.evalSets(ta, tb)
	default:
		av := v.A.Value(p.A, f.ACol)
		bv := v.B.Value(p.B, f.BCol)
		if table.IsMissing(av) {
			av = ""
		}
		if table.IsMissing(bv) {
			bv = ""
		}
		return f.evalStrings(strings.ToLower(strings.TrimSpace(av)), strings.ToLower(strings.TrimSpace(bv)))
	}
}

// VectorizeAll converts a pair list into vectors (full feature space).
func (v *Vectorizer) VectorizeAll(pairs []table.Pair) []Vector {
	out := make([]Vector, len(pairs))
	for i, p := range pairs {
		out[i] = v.Vector(p)
	}
	return out
}

// BlockingVectorizeAll converts a pair list into blocking-feature vectors.
func (v *Vectorizer) BlockingVectorizeAll(pairs []table.Pair) []Vector {
	out := make([]Vector, len(pairs))
	for i, p := range pairs {
		out[i] = v.BlockingVector(p)
	}
	return out
}
