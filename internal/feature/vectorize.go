package feature

import (
	"cmp"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Vector is a tuple pair encoded as feature values (the gen_fvs output).
type Vector struct {
	Pair   table.Pair
	Values []float64
}

// Vectorizer converts tuple pairs into feature vectors with per-table
// column caches, so repeated pairs touching the same tuple re-derive
// nothing. Four column representations are kept per (column, measure
// family):
//
//   - token sets as sorted []uint32 dictionary IDs (per attribute
//     correspondence, frequency-ordered — see tokenize.Dict), feeding the
//     allocation-free simfn ID set measures;
//   - token sets as strings, for the measures that need the actual tokens
//     (Monge-Elkan and the TF/IDF family);
//   - normalized (lowercased, trimmed) strings for the sequence measures;
//   - parsed numbers for the numeric measures.
//
// It is safe for concurrent use: columns are built whole on first access
// under a lock and published as immutable slices, so map tasks on the
// worker pool can share one vectorizer. Per-feature resolved column
// bundles are published through atomic pointers, making the per-pair hot
// path lock-free.
type Vectorizer struct {
	Set  *Set
	A, B *table.Table

	// Reference routes evaluation through the retired string-based path
	// (string-token sets + per-pair normalization + allocating simfn
	// calls). Test-only: the golden equivalence tests prove both paths
	// produce bit-identical vectors.
	Reference bool

	// IDsOnly routes the count-set measures through the sorted-merge ID
	// kernels instead of the bit-parallel signature kernels. Test- and
	// benchmark-only: it pins down the PR-3 baseline the golden tests and
	// BENCH_blocking.json compare the packed kernels against (the two paths
	// are bit-identical; see simfn.OverlapPacked).
	IDsOnly bool

	mu     sync.RWMutex
	tokA   map[tokKey][][]string // (col,kind) → per-row token sets
	tokB   map[tokKey][][]string
	numA   map[int][]float64 // col → per-row parsed numbers
	numB   map[int][]float64
	numOkA map[int][]bool
	numOkB map[int][]bool
	normA  map[int][]string // col → per-row normalized values
	normB  map[int][]string
	ids    map[corrKey]*idCols        // correspondence → encoded token sets
	docs   map[*simfn.Corpus]*docCols // corpus → IDF-weighted row vectors

	// feats[f.ID] caches the resolved per-feature column bundle so the
	// per-pair path does one atomic load instead of map lookups under
	// RLock.
	feats []atomic.Pointer[featCols]
}

type tokKey struct {
	col  int
	kind tokenize.Kind
}

// corrKey identifies one attribute correspondence's shared token
// dictionary: both columns' token sets are encoded under one
// frequency-ordered dictionary so IDs are comparable across tables.
type corrKey struct {
	acol, bcol int
	kind       tokenize.Kind
}

// idCols holds both sides of a correspondence as sorted token-ID sets,
// plus the shared dictionary they are encoded under (retained so the
// trained artifact can ship the correspondence frozen). pa/pb carry the
// same rows with bit-parallel signatures attached (the IDs slices are
// shared, not copied), packed once at column-build time so the per-pair
// kernels never pay packing cost.
type idCols struct {
	dict   *tokenize.Dict
	a, b   [][]uint32
	pa, pb []simfn.PackedIDs
}

// docCols holds both sides of a correspondence as frozen IDF-weighted
// term-frequency vectors, one per row, shared by every feature bound to
// the same corpus (the TF/IDF family of one correspondence).
type docCols struct {
	a, b []simfn.WeightedDoc
}

// featCols is the resolved, immutable column bundle one feature reads
// per pair. Only the fields for the feature's measure family are set.
type featCols struct {
	numA, numB   []float64
	okA, okB     []bool
	idsA, idsB   [][]uint32
	packA, packB []simfn.PackedIDs
	tokA, tokB   [][]string
	docA, docB   []simfn.WeightedDoc
	normA, normB []string
}

// NewVectorizer builds a vectorizer for the feature set over tables a and b.
func NewVectorizer(set *Set, a, b *table.Table) *Vectorizer {
	return &Vectorizer{
		Set: set, A: a, B: b,
		tokA: map[tokKey][][]string{}, tokB: map[tokKey][][]string{},
		numA: map[int][]float64{}, numB: map[int][]float64{},
		numOkA: map[int][]bool{}, numOkB: map[int][]bool{},
		normA: map[int][]string{}, normB: map[int][]string{},
		ids:   map[corrKey]*idCols{},
		docs:  map[*simfn.Corpus]*docCols{},
		feats: make([]atomic.Pointer[featCols], len(set.Features)),
	}
}

// tokenCol returns the fully-built token column for (col, kind), building it
// on first access. Once published the slice is never mutated again, so
// callers may read it without holding the lock.
func (v *Vectorizer) tokenCol(isA bool, col int, kind tokenize.Kind) [][]string {
	cache, t := v.tokA, v.A
	if !isA {
		cache, t = v.tokB, v.B
	}
	k := tokKey{col, kind}
	v.mu.RLock()
	rows, ok := cache[k]
	v.mu.RUnlock()
	if ok {
		return rows
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if rows, ok := cache[k]; ok {
		return rows
	}
	rows = make([][]string, t.Len())
	for row := range rows {
		val := t.Value(row, col)
		if table.IsMissing(val) {
			rows[row] = []string{}
		} else {
			rows[row] = tokenize.Set(kind, val)
		}
	}
	cache[k] = rows //falcon:allow streambound one token column per (column, kind) — bounded by the schema, not the record stream
	return rows
}

func (v *Vectorizer) tokens(isA bool, col int, kind tokenize.Kind, row int) []string {
	return v.tokenCol(isA, col, kind)[row]
}

// numberCol returns the fully-parsed numeric column, building it on first
// access; like tokenCol, published slices are immutable.
func (v *Vectorizer) numberCol(isA bool, col int) ([]float64, []bool) {
	nums, oks, t := v.numA, v.numOkA, v.A
	if !isA {
		nums, oks, t = v.numB, v.numOkB, v.B
	}
	v.mu.RLock()
	col2, ok := nums[col], oks[col]
	v.mu.RUnlock()
	if col2 != nil {
		return col2, ok
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if col2, ok := nums[col], oks[col]; col2 != nil {
		return col2, ok
	}
	col2 = make([]float64, t.Len())
	ok = make([]bool, t.Len())
	for r := 0; r < t.Len(); r++ {
		s := strings.TrimSpace(t.Value(r, col))
		if table.IsMissing(s) {
			continue
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			col2[r], ok[r] = f, true
		}
	}
	nums[col], oks[col] = col2, ok //falcon:allow streambound one parsed column per table column — bounded by the schema, not the record stream
	return col2, ok
}

func (v *Vectorizer) number(isA bool, col, row int) (float64, bool) {
	col2, ok := v.numberCol(isA, col)
	return col2[row], ok[row]
}

// normCol returns the normalized string column: missing values become "",
// everything else is lowercased and trimmed — exactly the per-pair
// normalization the sequence measures previously applied on every call.
func (v *Vectorizer) normCol(isA bool, col int) []string {
	cache, t := v.normA, v.A
	if !isA {
		cache, t = v.normB, v.B
	}
	v.mu.RLock()
	rows, ok := cache[col]
	v.mu.RUnlock()
	if ok {
		return rows
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if rows, ok := cache[col]; ok {
		return rows
	}
	rows = make([]string, t.Len())
	for row := range rows {
		val := t.Value(row, col)
		if table.IsMissing(val) {
			continue
		}
		rows[row] = strings.ToLower(strings.TrimSpace(val))
	}
	cache[col] = rows //falcon:allow streambound one normalized column per table column — bounded by the schema, not the record stream
	return rows
}

// idCols returns both columns of the correspondence encoded as sorted
// token-ID sets under one shared frequency-ordered dictionary, building the
// dictionary and both encodings on first access.
func (v *Vectorizer) idColsFor(acol, bcol int, kind tokenize.Kind) *idCols {
	k := corrKey{acol, bcol, kind}
	v.mu.RLock()
	c, ok := v.ids[k]
	v.mu.RUnlock()
	if ok {
		return c
	}
	// Token columns are built outside v.mu (tokenCol locks internally).
	ta := v.tokenCol(true, acol, kind)
	tb := v.tokenCol(false, bcol, kind)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.ids[k]; ok {
		return c
	}
	c = buildIDCols(ta, tb)
	v.ids[k] = c //falcon:allow streambound one encoding per correspondence — bounded by the feature set, not the record stream
	return c
}

// docColsFor returns both columns of f's correspondence as frozen
// IDF-weighted row vectors under f's corpus, building them on first
// access. TFIDF and SoftTFIDF features of one correspondence share a
// corpus, so they share one docCols.
func (v *Vectorizer) docColsFor(f *Feature) *docCols {
	v.mu.RLock()
	d, ok := v.docs[f.corpus]
	v.mu.RUnlock()
	if ok {
		return d
	}
	// Token columns are built outside v.mu (tokenCol locks internally).
	ta := v.tokenCol(true, f.ACol, f.Token)
	tb := v.tokenCol(false, f.BCol, f.Token)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d, ok := v.docs[f.corpus]; ok {
		return d
	}
	d = &docCols{a: weightedDocs(f.corpus, ta), b: weightedDocs(f.corpus, tb)}
	v.docs[f.corpus] = d //falcon:allow streambound one weighted-doc pair per corpus — bounded by the feature set, not the record stream
	return d
}

// weightedDocs precomputes the frozen tf·idf vector of every row.
func weightedDocs(c *simfn.Corpus, rows [][]string) []simfn.WeightedDoc {
	out := make([]simfn.WeightedDoc, len(rows))
	for i, toks := range rows {
		out[i] = c.WeightedDocOf(toks)
	}
	return out
}

// buildIDCols interns both columns' tokens into one dictionary ordered by
// (frequency asc, token asc) — the same global ordering §7.5 uses — and
// encodes every row as a sorted ID set. Sorted-ascending ID sets are thus
// rank-reordered token sets, and the sorted-merge intersection visits
// rarest tokens first.
func buildIDCols(ta, tb [][]string) *idCols {
	freq := map[string]int{}
	for _, rows := range [2][][]string{ta, tb} {
		for _, toks := range rows {
			for _, t := range toks {
				freq[t]++
			}
		}
	}
	ranked := make([]string, 0, len(freq))
	for t := range freq {
		ranked = append(ranked, t)
	}
	slices.SortFunc(ranked, func(a, b string) int {
		if c := cmp.Compare(freq[a], freq[b]); c != 0 {
			return c
		}
		return strings.Compare(a, b)
	})
	dict := tokenize.DictOf(ranked)
	encode := func(rows [][]string) [][]uint32 {
		out := make([][]uint32, len(rows))
		for i, toks := range rows {
			if len(toks) == 0 {
				continue
			}
			ids := make([]uint32, len(toks))
			for j, t := range toks {
				id, _ := dict.ID(t)
				ids[j] = id
			}
			slices.Sort(ids)
			out[i] = ids
		}
		return out
	}
	pack := func(rows [][]uint32) []simfn.PackedIDs {
		out := make([]simfn.PackedIDs, len(rows))
		for i, ids := range rows {
			out[i] = simfn.PackIDs(ids)
		}
		return out
	}
	c := &idCols{dict: dict, a: encode(ta), b: encode(tb)}
	c.pa, c.pb = pack(c.a), pack(c.b)
	return c
}

// CorrIDs exposes one correspondence's shared frequency-ordered dictionary
// and both encoded columns, building them on first access. The artifact
// builder uses this to freeze the dictionary and B-row ID sets into the
// serving contract.
func (v *Vectorizer) CorrIDs(acol, bcol int, kind tokenize.Kind) (*tokenize.Dict, [][]uint32, [][]uint32) {
	c := v.idColsFor(acol, bcol, kind)
	return c.dict, c.a, c.b
}

// isCountSet reports whether the measure depends only on set sizes and
// overlap count, and can therefore run on encoded ID sets.
func isCountSet(m simfn.Measure) bool {
	switch m {
	case simfn.MJaccard, simfn.MDice, simfn.MOverlap, simfn.MCosine:
		return true
	}
	return false
}

// featData returns the feature's resolved column bundle, building and
// publishing it on first access. Features not belonging to v.Set (defensive
// case) are resolved without caching.
func (v *Vectorizer) featData(f *Feature) *featCols {
	cached := f.ID >= 0 && f.ID < len(v.feats) && &v.Set.Features[f.ID] == f
	if cached {
		if fc := v.feats[f.ID].Load(); fc != nil {
			return fc
		}
	}
	fc := &featCols{}
	switch {
	case f.Measure.NumericBased():
		fc.numA, fc.okA = v.numberCol(true, f.ACol)
		fc.numB, fc.okB = v.numberCol(false, f.BCol)
	case isCountSet(f.Measure):
		c := v.idColsFor(f.ACol, f.BCol, f.Token)
		fc.idsA, fc.idsB = c.a, c.b
		fc.packA, fc.packB = c.pa, c.pb
	case f.Measure.SetBased(): // Monge-Elkan, TF/IDF family: real tokens
		fc.tokA = v.tokenCol(true, f.ACol, f.Token)
		fc.tokB = v.tokenCol(false, f.BCol, f.Token)
		if f.Measure.CorpusBased() {
			d := v.docColsFor(f)
			fc.docA, fc.docB = d.a, d.b
		}
	default:
		fc.normA = v.normCol(true, f.ACol)
		fc.normB = v.normCol(false, f.BCol)
	}
	if cached {
		v.feats[f.ID].Store(fc)
	}
	return fc
}

// Vector computes the full feature vector for pair p.
func (v *Vectorizer) Vector(p table.Pair) Vector {
	s := simfn.GetScratch()
	out := v.vector(p, v.Set.Features, nil, s)
	simfn.PutScratch(s)
	return out
}

// VectorScratch is Vector with caller-provided simfn scratch, for hot loops
// that hold one scratch per worker or task.
//
//falcon:hotpath
func (v *Vectorizer) VectorScratch(p table.Pair, s *simfn.Scratch) Vector {
	return v.vector(p, v.Set.Features, nil, s)
}

// BlockingVector computes only the blocking-stage features for pair p. The
// returned Values are indexed by position in Set.BlockingIdx.
func (v *Vectorizer) BlockingVector(p table.Pair) Vector {
	s := simfn.GetScratch()
	out := v.vector(p, v.Set.Features, v.Set.BlockingIdx, s)
	simfn.PutScratch(s)
	return out
}

// BlockingVectorScratch is BlockingVector with caller-provided scratch.
// After Warm it performs exactly one allocation: the Values slice.
//
//falcon:hotpath
func (v *Vectorizer) BlockingVectorScratch(p table.Pair, s *simfn.Scratch) Vector {
	return v.vector(p, v.Set.Features, v.Set.BlockingIdx, s)
}

func (v *Vectorizer) vector(p table.Pair, feats []Feature, idx []int, s *simfn.Scratch) Vector {
	n := len(feats)
	if idx != nil {
		n = len(idx)
	}
	//falcon:allow servebudget the documented single Values allocation per vector
	out := Vector{Pair: p, Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		f := &feats[i]
		if idx != nil {
			f = &feats[idx[i]]
		}
		out.Values[i] = v.evalCached(f, p, s)
	}
	return out
}

// EvalFeature computes one feature on pair p using the caches.
func (v *Vectorizer) EvalFeature(f *Feature, p table.Pair) float64 {
	s := simfn.GetScratch()
	out := v.evalCached(f, p, s)
	simfn.PutScratch(s)
	return out
}

// evalCached computes one feature on pair p from the published column
// bundles: an atomic Load of the frozen featCols, then pure arithmetic
// over pre-tokenized IDs and pre-normalized strings.
//
//falcon:hotpath
func (v *Vectorizer) evalCached(f *Feature, p table.Pair, s *simfn.Scratch) float64 {
	if v.Reference {
		//falcon:allow servebudget retired reference path, enabled only by golden equivalence tests, never when serving
		return v.evalReference(f, p)
	}
	//falcon:allow servebudget cold-path column build under the write lock; Warm() pre-builds every bundle so serving always takes the atomic Load fast path
	fc := v.featData(f)
	return v.evalWithCols(f, fc, p, s)
}

// evalWithCols is evalCached after bundle resolution: pure arithmetic over
// the frozen columns. Split out so batch entry points can hoist the featData
// loads out of their per-pair loops.
//
//falcon:hotpath
func (v *Vectorizer) evalWithCols(f *Feature, fc *featCols, p table.Pair, s *simfn.Scratch) float64 {
	switch {
	case f.Measure.NumericBased():
		if !fc.okA[p.A] || !fc.okB[p.B] {
			return Missing
		}
		if f.Measure == simfn.MAbsDiff {
			return simfn.AbsDiff(fc.numA[p.A], fc.numB[p.B])
		}
		return simfn.RelDiff(fc.numA[p.A], fc.numB[p.B])
	case isCountSet(f.Measure):
		if v.IDsOnly {
			return evalSetIDs(f.Measure, fc.idsA[p.A], fc.idsB[p.B])
		}
		return EvalCountSetPacked(f.Measure, &fc.packA[p.A], &fc.packB[p.B])
	case f.Measure == simfn.MMongeElkan:
		return s.MongeElkan(fc.tokA[p.A], fc.tokB[p.B])
	case f.Measure.CorpusBased():
		if f.Measure == simfn.MTFIDF {
			return simfn.TFIDFDocs(&fc.docA[p.A], &fc.docB[p.B])
		}
		return simfn.SoftTFIDFDocs(&fc.docA[p.A], &fc.docB[p.B], s)
	default:
		return f.evalStringsScratch(fc.normA[p.A], fc.normB[p.B], s)
	}
}

// evalReference is the retired per-pair path, kept verbatim for the golden
// equivalence tests: string token sets through the allocating simfn set
// measures, and per-pair normalization for the sequence measures.
func (v *Vectorizer) evalReference(f *Feature, p table.Pair) float64 {
	switch {
	case f.Measure.NumericBased():
		x, okx := v.number(true, f.ACol, p.A)
		y, oky := v.number(false, f.BCol, p.B)
		if !okx || !oky {
			return Missing
		}
		if f.Measure == simfn.MAbsDiff {
			return simfn.AbsDiff(x, y)
		}
		return simfn.RelDiff(x, y)
	case f.Measure.SetBased():
		ta := v.tokens(true, f.ACol, f.Token, p.A)
		tb := v.tokens(false, f.BCol, f.Token, p.B)
		return f.evalSets(ta, tb)
	default:
		av := v.A.Value(p.A, f.ACol)
		bv := v.B.Value(p.B, f.BCol)
		if table.IsMissing(av) {
			av = ""
		}
		if table.IsMissing(bv) {
			bv = ""
		}
		return f.evalStrings(strings.ToLower(strings.TrimSpace(av)), strings.ToLower(strings.TrimSpace(bv)))
	}
}

// Warm pre-builds every column cache the feature set can touch — including
// the per-feature resolved bundles — so that subsequent concurrent
// evaluation never takes the write lock and the per-pair path is
// allocation-free (modulo the returned Values).
func (v *Vectorizer) Warm() {
	for i := range v.Set.Features {
		f := &v.Set.Features[i]
		v.featData(f)
		// The reference path additionally reads raw token columns for all
		// set measures; featData covers them for every family except the
		// count-set measures, whose bundle holds only encoded IDs.
		if isCountSet(f.Measure) {
			v.tokenCol(true, f.ACol, f.Token)
			v.tokenCol(false, f.BCol, f.Token)
		}
	}
}

// batchBuf pools the reusable state of one BlockingVectorsBatch call — the
// value row handed to visit and the hoisted per-feature bundle loads — so
// steady-state batch scoring allocates nothing.
type batchBuf struct {
	vals  []float64
	feats []*Feature
	cols  []*featCols
}

var batchPool = sync.Pool{New: func() any { return new(batchBuf) }}

// BlockingVectorsBatch evaluates the blocking features of pair (a, bRow) for
// every bRow in bRows, calling visit(i, values) in input order. values is
// indexed by position in Set.BlockingIdx, reused across rows, and valid only
// during the visit call. Each row computes exactly what BlockingVectorScratch
// computes — same features, same order, same arithmetic — with the scratch
// acquisition, column-bundle loads, and Values allocation hoisted out of the
// per-pair loop.
func (v *Vectorizer) BlockingVectorsBatch(a int, bRows []int32, visit func(i int, values []float64)) {
	idx := v.Set.BlockingIdx
	s := simfn.GetScratch()
	defer simfn.PutScratch(s)
	bb := batchPool.Get().(*batchBuf)
	defer batchPool.Put(bb)
	if cap(bb.vals) < len(idx) {
		bb.vals = make([]float64, len(idx))
	}
	vals := bb.vals[:len(idx)]
	if v.Reference {
		// The oracle path stays per-pair; evalCached routes to it.
		for i, bRow := range bRows {
			p := table.Pair{A: a, B: int(bRow)}
			for j, fi := range idx {
				vals[j] = v.evalCached(&v.Set.Features[fi], p, s)
			}
			visit(i, vals)
		}
		return
	}
	bb.feats, bb.cols = bb.feats[:0], bb.cols[:0]
	for _, fi := range idx {
		f := &v.Set.Features[fi]
		bb.feats = append(bb.feats, f)
		bb.cols = append(bb.cols, v.featData(f))
	}
	for i, bRow := range bRows {
		p := table.Pair{A: a, B: int(bRow)}
		for j, f := range bb.feats {
			vals[j] = v.evalWithCols(f, bb.cols[j], p, s)
		}
		visit(i, vals)
	}
}

// VectorizeAll converts a pair list into vectors (full feature space).
func (v *Vectorizer) VectorizeAll(pairs []table.Pair) []Vector {
	s := simfn.GetScratch()
	out := make([]Vector, len(pairs))
	for i, p := range pairs {
		out[i] = v.vector(p, v.Set.Features, nil, s)
	}
	simfn.PutScratch(s)
	return out
}

// BlockingVectorizeAll converts a pair list into blocking-feature vectors.
func (v *Vectorizer) BlockingVectorizeAll(pairs []table.Pair) []Vector {
	s := simfn.GetScratch()
	out := make([]Vector, len(pairs))
	for i, p := range pairs {
		out[i] = v.vector(p, v.Set.Features, v.Set.BlockingIdx, s)
	}
	simfn.PutScratch(s)
	return out
}
