// Package feature implements Falcon's automatic feature generation (paper
// §8, Figure 5) and feature-vector computation (the gen_fvs operator).
//
// A feature is sim(a.x, b.y): a similarity measure applied to an attribute
// correspondence. Falcon generates features hands-off by inferring attribute
// types and characteristics, pairing attributes across the two tables, and
// instantiating the Figure-5 measure list for each pair. Starred measures
// are generated only for the matching stage; the blocking stage is limited
// to fast, filterable measures.
package feature

import (
	"fmt"
	"strconv"
	"strings"

	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Missing is the sentinel feature value emitted when either side of a
// numeric feature cannot be parsed. Similarity measures handle missing text
// themselves (empty token sets score 0).
const Missing = -1.0

// Feature is one similarity function over one attribute correspondence.
type Feature struct {
	ID      int
	Name    string
	Measure simfn.Measure
	Token   tokenize.Kind // set for set-based measures
	ACol    int           // column in table A
	BCol    int           // column in table B
	Attr    string        // display name of the correspondence
	// Blockable mirrors Figure 5's star: only blockable features may appear
	// in blocking rules.
	Blockable bool
	corpus    *simfn.Corpus // shared per-correspondence corpus (TF/IDF family)
}

// Set is the generated feature space for one table pair.
type Set struct {
	Features []Feature
	// BlockingIdx indexes Features usable during the blocking stage.
	BlockingIdx []int
}

// NumBlocking returns the number of blocking-stage features.
func (s *Set) NumBlocking() int { return len(s.BlockingIdx) }

// ByName returns the feature with the given name, or nil.
func (s *Set) ByName(name string) *Feature {
	for i := range s.Features {
		if s.Features[i].Name == name {
			return &s.Features[i]
		}
	}
	return nil
}

// Correspondence pairs attribute x of A with attribute y of B.
type Correspondence struct {
	ACol, BCol int
	Char       table.AttrChar // the governing characteristic (lower Figure-5 row wins)
	Name       string
}

// Correspond computes attribute correspondences between two tables: first by
// case-insensitive name, then the Figure-5 rule that when the two sides have
// different characteristics the lower row (longer/most general) governs.
// Numeric pairs with numeric only; a numeric attribute matched by name to a
// string attribute is treated as a string pair.
func Correspond(a, b *table.Table) []Correspondence {
	var out []Correspondence
	bIndex := map[string]int{}
	for i, attr := range b.Schema.Attrs {
		bIndex[strings.ToLower(attr.Name)] = i
	}
	for i, attr := range a.Schema.Attrs {
		j, ok := bIndex[strings.ToLower(attr.Name)]
		if !ok {
			continue
		}
		ca, cb := attr.Char, b.Schema.Attrs[j].Char
		var char table.AttrChar
		switch {
		case ca == table.NumericChar && cb == table.NumericChar:
			char = table.NumericChar
		case ca == table.NumericChar:
			char = cb
		case cb == table.NumericChar:
			char = ca
		case cb > ca:
			char = cb
		default:
			char = ca
		}
		out = append(out, Correspondence{ACol: i, BCol: j, Char: char, Name: attr.Name})
	}
	return out
}

// measureSpec describes one generated measure.
type measureSpec struct {
	m         simfn.Measure
	tok       tokenize.Kind
	blockable bool
}

// figure5 maps an attribute characteristic to its Figure-5 measure list.
func figure5(char table.AttrChar) []measureSpec {
	switch char {
	case table.SingleWord:
		return []measureSpec{
			{simfn.MExactMatch, "", true},
			{simfn.MJaccard, tokenize.Gram3, true},
			{simfn.MOverlap, tokenize.Gram3, true},
			{simfn.MDice, tokenize.Gram3, true},
			{simfn.MLevenshtein, "", true},
			{simfn.MJaro, "", false},
			{simfn.MJaroWinkler, "", false},
		}
	case table.ShortString:
		return []measureSpec{
			{simfn.MJaccard, tokenize.Gram3, true},
			{simfn.MOverlap, tokenize.Gram3, true},
			{simfn.MDice, tokenize.Gram3, true},
			{simfn.MJaccard, tokenize.Word, true},
			{simfn.MOverlap, tokenize.Word, true},
			{simfn.MDice, tokenize.Word, true},
			{simfn.MCosine, tokenize.Word, true},
			{simfn.MMongeElkan, tokenize.Word, false},
			{simfn.MNeedlemanWunsch, "", false},
			{simfn.MSmithWaterman, "", false},
			{simfn.MSmithWatermanGotoh, "", false},
		}
	case table.MediumString:
		return []measureSpec{
			{simfn.MJaccard, tokenize.Word, true},
			{simfn.MOverlap, tokenize.Word, true},
			{simfn.MDice, tokenize.Word, true},
			{simfn.MCosine, tokenize.Word, true},
			{simfn.MMongeElkan, tokenize.Word, false},
		}
	case table.LongString:
		return []measureSpec{
			{simfn.MJaccard, tokenize.Word, true},
			{simfn.MOverlap, tokenize.Word, true},
			{simfn.MDice, tokenize.Word, true},
			{simfn.MCosine, tokenize.Word, true},
			{simfn.MTFIDF, tokenize.Word, false},
			{simfn.MSoftTFIDF, tokenize.Word, false},
		}
	case table.NumericChar:
		return []measureSpec{
			{simfn.MExactMatch, "", true},
			{simfn.MAbsDiff, "", true},
			{simfn.MRelDiff, "", true},
			{simfn.MLevenshtein, "", true},
		}
	default:
		return nil
	}
}

// corpusSampleCap limits how many values feed each TF/IDF corpus.
const corpusSampleCap = 20000

// Generate builds the feature set for tables A and B following Figure 5.
func Generate(a, b *table.Table) *Set {
	set := &Set{}
	for _, c := range Correspond(a, b) {
		specs := figure5(c.Char)
		var corpus *simfn.Corpus
		for _, sp := range specs {
			if sp.m.CorpusBased() && corpus == nil {
				corpus = buildCorpus(a, c.ACol, b, c.BCol, sp.tok)
			}
		}
		for _, sp := range specs {
			name := sp.m.String()
			if sp.m.SetBased() {
				name += "_" + string(sp.tok)
			}
			f := Feature{
				ID:        len(set.Features),
				Name:      fmt.Sprintf("%s(%s)", name, c.Name),
				Measure:   sp.m,
				Token:     sp.tok,
				ACol:      c.ACol,
				BCol:      c.BCol,
				Attr:      c.Name,
				Blockable: sp.blockable,
			}
			if sp.m.CorpusBased() {
				f.corpus = corpus
			}
			set.Features = append(set.Features, f)
			if sp.blockable {
				set.BlockingIdx = append(set.BlockingIdx, f.ID)
			}
		}
	}
	return set
}

func buildCorpus(a *table.Table, aCol int, b *table.Table, bCol int, kind tokenize.Kind) *simfn.Corpus {
	c := simfn.NewCorpus()
	add := func(t *table.Table, col int) {
		n := t.Len()
		step := 1
		if n > corpusSampleCap {
			step = n / corpusSampleCap
		}
		for i := 0; i < n; i += step {
			v := t.Value(i, col)
			if table.IsMissing(v) {
				continue
			}
			c.AddDoc(tokenize.Set(kind, v))
		}
	}
	add(a, aCol)
	add(b, bCol)
	return c
}

// Corpus returns the shared per-correspondence corpus, or nil unless the
// measure is corpus-based. Exported so the artifact builder can freeze the
// corpus state alongside the feature definitions.
func (f *Feature) Corpus() *simfn.Corpus { return f.corpus }

// NewBoundFeature reconstructs a feature from its serialized definition,
// rebinding it to a (possibly rebuilt) corpus. Every other field is plain
// data, so a round-tripped feature evaluates bit-identically.
func NewBoundFeature(id int, name string, m simfn.Measure, tok tokenize.Kind, acol, bcol int, attr string, blockable bool, corpus *simfn.Corpus) Feature {
	return Feature{
		ID: id, Name: name, Measure: m, Token: tok,
		ACol: acol, BCol: bcol, Attr: attr, Blockable: blockable,
		corpus: corpus,
	}
}

// CountSet reports whether the measure depends only on the two token-set
// sizes and their overlap count, so it can run on dictionary-encoded IDs.
func CountSet(m simfn.Measure) bool { return isCountSet(m) }

// EvalCountSet evaluates a count-set measure on dictionary-encoded token
// sets (sorted ascending IDs). Exported for the serving path, which
// resolves operands from the artifact's frozen columns rather than a
// Vectorizer.
func EvalCountSet(m simfn.Measure, a, b []uint32) float64 { return evalSetIDs(m, a, b) }

// EvalCountSetPacked is EvalCountSet on pre-packed operands: the measure runs
// on the bit-parallel signatures when both sides carry one, and falls back to
// the sorted merge otherwise. Bit-identical to EvalCountSet by construction —
// both paths feed the same intersection cardinality through the same float
// arithmetic (see simfn.OverlapPacked).
//
//falcon:hotpath
func EvalCountSetPacked(m simfn.Measure, a, b *simfn.PackedIDs) float64 {
	switch m {
	case simfn.MJaccard:
		return simfn.JaccardPacked(a, b)
	case simfn.MDice:
		return simfn.DicePacked(a, b)
	case simfn.MOverlap:
		return simfn.OverlapSimPacked(a, b)
	case simfn.MCosine:
		return simfn.CosinePacked(a, b)
	default:
		panic("feature: not a count-set measure: " + m.String())
	}
}

// EvalStrings evaluates a sequence/string measure on pre-normalized values
// with reusable DP scratch — the serving-path twin of evalStringsScratch.
func EvalStrings(m simfn.Measure, av, bv string, s *simfn.Scratch) float64 {
	f := Feature{Measure: m}
	return f.evalStringsScratch(av, bv, s)
}

// Eval computes the feature value on raw attribute values.
func (f *Feature) Eval(av, bv string) float64 {
	if table.IsMissing(av) {
		av = ""
	}
	if table.IsMissing(bv) {
		bv = ""
	}
	switch {
	case f.Measure.NumericBased():
		x, errx := strconv.ParseFloat(strings.TrimSpace(av), 64)
		y, erry := strconv.ParseFloat(strings.TrimSpace(bv), 64)
		if errx != nil || erry != nil {
			return Missing
		}
		if f.Measure == simfn.MAbsDiff {
			return simfn.AbsDiff(x, y)
		}
		return simfn.RelDiff(x, y)
	case f.Measure.SetBased():
		ta := tokenize.Set(f.Token, av)
		tb := tokenize.Set(f.Token, bv)
		return f.evalSets(ta, tb)
	default:
		return f.evalStrings(strings.ToLower(strings.TrimSpace(av)), strings.ToLower(strings.TrimSpace(bv)))
	}
}

func (f *Feature) evalSets(ta, tb []string) float64 {
	switch f.Measure {
	case simfn.MJaccard:
		return simfn.Jaccard(ta, tb)
	case simfn.MDice:
		return simfn.Dice(ta, tb)
	case simfn.MOverlap:
		return simfn.Overlap(ta, tb)
	case simfn.MCosine:
		return simfn.Cosine(ta, tb)
	case simfn.MMongeElkan:
		return simfn.MongeElkan(ta, tb)
	case simfn.MTFIDF:
		return f.corpus.TFIDF(ta, tb)
	case simfn.MSoftTFIDF:
		return f.corpus.SoftTFIDF(ta, tb)
	default:
		panic("feature: not a set-based measure: " + f.Measure.String())
	}
}

// evalSetIDs evaluates a count-based set measure on dictionary-encoded
// token sets (sorted ascending IDs). Jaccard/Dice/Overlap/Cosine depend
// only on the two set sizes and the overlap count, so any bijective
// encoding yields the same value as the string path.
func evalSetIDs(m simfn.Measure, a, b []uint32) float64 {
	switch m {
	case simfn.MJaccard:
		return simfn.JaccardIDs(a, b)
	case simfn.MDice:
		return simfn.DiceIDs(a, b)
	case simfn.MOverlap:
		return simfn.OverlapSimIDs(a, b)
	case simfn.MCosine:
		return simfn.CosineIDs(a, b)
	default:
		panic("feature: not a count-set measure: " + m.String())
	}
}

// evalStringsScratch is evalStrings on pre-normalized values with reusable
// DP scratch, avoiding the per-call matrix allocations of the plain path.
func (f *Feature) evalStringsScratch(av, bv string, s *simfn.Scratch) float64 {
	switch f.Measure {
	case simfn.MExactMatch:
		return simfn.ExactMatch(av, bv)
	case simfn.MLevenshtein:
		return s.Levenshtein(av, bv)
	case simfn.MJaro:
		return s.Jaro(av, bv)
	case simfn.MJaroWinkler:
		return s.JaroWinkler(av, bv)
	case simfn.MNeedlemanWunsch:
		return s.NeedlemanWunsch(av, bv)
	case simfn.MSmithWaterman:
		return s.SmithWaterman(av, bv)
	case simfn.MSmithWatermanGotoh:
		return s.SmithWatermanGotoh(av, bv)
	default:
		panic("feature: not a string-based measure: " + f.Measure.String())
	}
}

func (f *Feature) evalStrings(av, bv string) float64 {
	switch f.Measure {
	case simfn.MExactMatch:
		return simfn.ExactMatch(av, bv)
	case simfn.MLevenshtein:
		return simfn.Levenshtein(av, bv)
	case simfn.MJaro:
		return simfn.Jaro(av, bv)
	case simfn.MJaroWinkler:
		return simfn.JaroWinkler(av, bv)
	case simfn.MNeedlemanWunsch:
		return simfn.NeedlemanWunsch(av, bv)
	case simfn.MSmithWaterman:
		return simfn.SmithWaterman(av, bv)
	case simfn.MSmithWatermanGotoh:
		return simfn.SmithWatermanGotoh(av, bv)
	default:
		panic("feature: not a string-based measure: " + f.Measure.String())
	}
}
