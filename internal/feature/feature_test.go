package feature

import (
	"math"
	"testing"
	"testing/quick"

	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

func bookTables() (*table.Table, *table.Table) {
	a := table.New("A", table.NewSchema("title", "price", "isbn", "descr"))
	a.Append("the art of computer programming volume one fundamental algorithms third edition hardcover", "99.5", "0201896834", "classic text on algorithms and data structures by donald knuth covering fundamentals in depth")
	a.Append("go programming language", "45", "0134190440", "introduction to go by donovan and kernighan with exercises and examples for working programmers today")
	a.Append("clean code", "40", "0132350882", "a handbook of agile software craftsmanship by robert martin with heuristics and smells catalogued")
	a.InferTypes()

	b := table.New("B", table.NewSchema("title", "price", "isbn", "descr"))
	b.Append("art of computer programming vol 1 fundamental algorithms 3rd edition by knuth hardcover print", "98.0", "0201896834", "the classic algorithms text by knuth volume one third edition covering fundamental algorithms deeply")
	b.Append("the go programming language", "44.99", "0134190440", "the definitive go book by alan donovan and brian kernighan for programmers learning go now")
	b.Append("refactoring", "50", "0201485672", "improving the design of existing code by martin fowler with catalog of refactorings explained")
	b.InferTypes()
	return a, b
}

func TestCorrespondByName(t *testing.T) {
	a, b := bookTables()
	cs := Correspond(a, b)
	if len(cs) != 4 {
		t.Fatalf("got %d correspondences, want 4", len(cs))
	}
	for _, c := range cs {
		if a.Schema.Attrs[c.ACol].Name != b.Schema.Attrs[c.BCol].Name {
			t.Fatalf("misaligned correspondence %v", c)
		}
	}
}

func TestCorrespondCharRules(t *testing.T) {
	a := table.New("A", table.NewSchema("x"))
	a.Append("one two three four five six seven") // medium
	a.InferTypes()
	b := table.New("B", table.NewSchema("x"))
	b.Append("word") // single-word
	b.InferTypes()
	cs := Correspond(a, b)
	if len(cs) != 1 || cs[0].Char != table.MediumString {
		t.Fatalf("char = %v, want medium (lower Figure-5 row wins)", cs[0].Char)
	}
}

func TestCorrespondNumericVsString(t *testing.T) {
	a := table.New("A", table.NewSchema("v"))
	a.Append("123")
	a.InferTypes()
	b := table.New("B", table.NewSchema("v"))
	b.Append("hello there")
	b.InferTypes()
	cs := Correspond(a, b)
	if len(cs) != 1 || cs[0].Char == table.NumericChar {
		t.Fatalf("numeric×string should fall back to the string characteristic, got %v", cs[0].Char)
	}
}

func TestGenerateCounts(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	if len(set.Features) == 0 {
		t.Fatal("no features generated")
	}
	// title: short string (4-5 words avg) → 11 measures; price numeric → 4;
	// isbn numeric(all digits) → 4; descr long → 6.
	if set.NumBlocking() >= len(set.Features) {
		t.Fatalf("blocking features (%d) should be a strict subset of all (%d)", set.NumBlocking(), len(set.Features))
	}
	for _, i := range set.BlockingIdx {
		if !set.Features[i].Blockable {
			t.Fatalf("BlockingIdx includes non-blockable feature %s", set.Features[i].Name)
		}
	}
	// IDs must be dense and ordered.
	for i, f := range set.Features {
		if f.ID != i {
			t.Fatalf("feature %d has ID %d", i, f.ID)
		}
	}
}

func TestGenerateIncludesTFIDFForLongStrings(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	f := set.ByName("tfidf_word(descr)")
	if f == nil {
		t.Fatal("tfidf_word(descr) not generated for long-string attribute")
	}
	if f.Blockable {
		t.Fatal("tfidf must not be blockable")
	}
	if f.corpus == nil {
		t.Fatal("tfidf feature has no corpus")
	}
	if v := f.Eval("classic algorithms text", "classic algorithms text"); !(v > 0.99) {
		t.Fatalf("tfidf self-similarity = %v", v)
	}
}

func TestByNameMissing(t *testing.T) {
	a, b := bookTables()
	if Generate(a, b).ByName("nope") != nil {
		t.Fatal("ByName should return nil for unknown name")
	}
}

func TestEvalNumeric(t *testing.T) {
	f := Feature{Measure: simfn.MAbsDiff}
	if got := f.Eval("10", "3.5"); got != 6.5 {
		t.Fatalf("abs_diff = %v", got)
	}
	if got := f.Eval("abc", "3"); got != Missing {
		t.Fatalf("unparseable should be Missing, got %v", got)
	}
	if got := f.Eval("", "3"); got != Missing {
		t.Fatalf("missing should be Missing, got %v", got)
	}
	r := Feature{Measure: simfn.MRelDiff}
	if got := r.Eval("10", "5"); got != 0.5 {
		t.Fatalf("rel_diff = %v", got)
	}
}

func TestEvalStringMeasures(t *testing.T) {
	em := Feature{Measure: simfn.MExactMatch}
	if em.Eval("X", " x ") != 1 {
		t.Fatal("exact match should normalize case and space")
	}
	lev := Feature{Measure: simfn.MLevenshtein}
	if got := lev.Eval("abcd", "abce"); got != 0.75 {
		t.Fatalf("levenshtein = %v", got)
	}
	jac := Feature{Measure: simfn.MJaccard, Token: tokenize.Word}
	if got := jac.Eval("a b", "b c"); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("jaccard = %v", got)
	}
}

func TestVectorizerMatchesEval(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	vz := NewVectorizer(set, a, b)
	for _, p := range []table.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}, {A: 0, B: 2}} {
		vec := vz.Vector(p)
		if len(vec.Values) != len(set.Features) {
			t.Fatalf("vector length %d, want %d", len(vec.Values), len(set.Features))
		}
		for i := range set.Features {
			f := &set.Features[i]
			want := f.Eval(a.Value(p.A, f.ACol), b.Value(p.B, f.BCol))
			if math.Abs(vec.Values[i]-want) > 1e-9 {
				t.Fatalf("pair %v feature %s: vectorizer %v != eval %v", p, f.Name, vec.Values[i], want)
			}
		}
	}
}

func TestVectorizerCacheReuse(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	vz := NewVectorizer(set, a, b)
	v1 := vz.Vector(table.Pair{A: 0, B: 0})
	v2 := vz.Vector(table.Pair{A: 0, B: 0})
	for i := range v1.Values {
		if v1.Values[i] != v2.Values[i] {
			t.Fatal("cached vectorization not deterministic")
		}
	}
}

func TestBlockingVector(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	vz := NewVectorizer(set, a, b)
	p := table.Pair{A: 1, B: 1}
	bv := vz.BlockingVector(p)
	if len(bv.Values) != set.NumBlocking() {
		t.Fatalf("blocking vector length %d, want %d", len(bv.Values), set.NumBlocking())
	}
	full := vz.Vector(p)
	for i, fi := range set.BlockingIdx {
		if bv.Values[i] != full.Values[fi] {
			t.Fatalf("blocking value %d mismatch", i)
		}
	}
}

func TestMatchingPairsScoreHigher(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	vz := NewVectorizer(set, a, b)
	f := set.ByName("jaccard_word(title)")
	if f == nil {
		// title may be short-string: jaccard_word only for short/medium/long
		t.Fatal("expected jaccard_word(title)")
	}
	match := vz.EvalFeature(f, table.Pair{A: 1, B: 1})
	nonMatch := vz.EvalFeature(f, table.Pair{A: 1, B: 2})
	if match <= nonMatch {
		t.Fatalf("match sim %v should exceed non-match %v", match, nonMatch)
	}
}

func TestVectorizeAll(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	vz := NewVectorizer(set, a, b)
	pairs := []table.Pair{{A: 0, B: 0}, {A: 1, B: 2}}
	vecs := vz.VectorizeAll(pairs)
	if len(vecs) != 2 || vecs[1].Pair != pairs[1] {
		t.Fatal("VectorizeAll wrong")
	}
	bvecs := vz.BlockingVectorizeAll(pairs)
	if len(bvecs) != 2 || len(bvecs[0].Values) != set.NumBlocking() {
		t.Fatal("BlockingVectorizeAll wrong")
	}
}

// Property: every generated blocking feature value is either Missing or in
// [0, ∞), and pure similarities stay within [0,1].
func TestQuickFeatureBounds(t *testing.T) {
	a, b := bookTables()
	set := Generate(a, b)
	vz := NewVectorizer(set, a, b)
	f := func(ai, bi uint8) bool {
		p := table.Pair{A: int(ai) % a.Len(), B: int(bi) % b.Len()}
		vec := vz.Vector(p)
		for i, val := range vec.Values {
			ft := set.Features[i]
			if val == Missing {
				continue
			}
			if val < 0 {
				return false
			}
			if !ft.Measure.Distance() && val > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkVectorize lives in bench_test.go, comparing the dictionary ID
// path against the retired reference path over datagen tables.
