package feature

import (
	"testing"

	"falcon/internal/datagen"
	"falcon/internal/simfn"
	"falcon/internal/table"
)

func benchPairs(a, b *table.Table, n int) []table.Pair {
	pairs := make([]table.Pair, n)
	for i := range pairs {
		pairs[i] = table.Pair{A: (i * 7) % a.Len(), B: (i * 13) % b.Len()}
	}
	return pairs
}

// BenchmarkVectorize measures blocking-vector throughput per tuple pair on
// the dictionary/scratch path versus the retired string path.
func BenchmarkVectorize(b *testing.B) {
	ds := datagen.Products(0.05, 5)
	set := Generate(ds.A, ds.B)
	pairs := benchPairs(ds.A, ds.B, 1024)
	for _, mode := range []struct {
		name      string
		reference bool
	}{{"reference", true}, {"ids", false}} {
		b.Run(mode.name, func(b *testing.B) {
			vz := NewVectorizer(set, ds.A, ds.B)
			vz.Reference = mode.reference
			vz.Warm()
			vz.BlockingVector(pairs[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vz.BlockingVector(pairs[i%len(pairs)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// TestBlockingVectorScratchAllocs pins the hot path's allocation budget:
// after Warm, computing a blocking vector with caller-held scratch performs
// exactly one allocation — the returned Values slice.
func TestBlockingVectorScratchAllocs(t *testing.T) {
	ds := datagen.Products(0.02, 7)
	set := Generate(ds.A, ds.B)
	vz := NewVectorizer(set, ds.A, ds.B)
	vz.Warm()
	s := simfn.GetScratch()
	defer simfn.PutScratch(s)
	pairs := benchPairs(ds.A, ds.B, 16)
	// Warm-up pass grows the scratch buffers to steady state.
	for _, p := range pairs {
		vz.BlockingVectorScratch(p, s)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		vz.BlockingVectorScratch(pairs[i%len(pairs)], s)
		i++
	})
	if allocs > 1 {
		t.Fatalf("BlockingVectorScratch allocates %.1f objects/op after warm-up, want <= 1", allocs)
	}
}

// TestBlockingVectorAllocs sanity-checks the pooled wrapper: the scratch
// pool keeps the DP buffers out of steady-state allocation, so the wrapper
// stays within a few objects per call.
func TestBlockingVectorAllocs(t *testing.T) {
	ds := datagen.Products(0.02, 7)
	set := Generate(ds.A, ds.B)
	vz := NewVectorizer(set, ds.A, ds.B)
	vz.Warm()
	pairs := benchPairs(ds.A, ds.B, 16)
	for _, p := range pairs {
		vz.BlockingVector(p)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		vz.BlockingVector(pairs[i%len(pairs)])
		i++
	})
	if allocs > 4 {
		t.Fatalf("BlockingVector allocates %.1f objects/op after warm-up, want <= 4", allocs)
	}
}
