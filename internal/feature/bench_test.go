package feature

import (
	"math"
	"testing"

	"falcon/internal/datagen"
	"falcon/internal/simfn"
	"falcon/internal/table"
)

func benchPairs(a, b *table.Table, n int) []table.Pair {
	pairs := make([]table.Pair, n)
	for i := range pairs {
		pairs[i] = table.Pair{A: (i * 7) % a.Len(), B: (i * 13) % b.Len()}
	}
	return pairs
}

// BenchmarkVectorize measures blocking-vector throughput per tuple pair on
// the bit-parallel default versus the sorted-merge ID baseline and the
// retired string path.
func BenchmarkVectorize(b *testing.B) {
	ds := datagen.Products(0.05, 5)
	set := Generate(ds.A, ds.B)
	pairs := benchPairs(ds.A, ds.B, 1024)
	for _, mode := range []struct {
		name      string
		reference bool
		idsOnly   bool
	}{{"reference", true, false}, {"ids", false, true}, {"bitparallel", false, false}} {
		b.Run(mode.name, func(b *testing.B) {
			vz := NewVectorizer(set, ds.A, ds.B)
			vz.Reference = mode.reference
			vz.IDsOnly = mode.idsOnly
			vz.Warm()
			vz.BlockingVector(pairs[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vz.BlockingVector(pairs[i%len(pairs)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// TestBlockingVectorScratchAllocs pins the hot path's allocation budget:
// after Warm, computing a blocking vector with caller-held scratch performs
// exactly one allocation — the returned Values slice.
func TestBlockingVectorScratchAllocs(t *testing.T) {
	ds := datagen.Products(0.02, 7)
	set := Generate(ds.A, ds.B)
	vz := NewVectorizer(set, ds.A, ds.B)
	vz.Warm()
	s := simfn.GetScratch()
	defer simfn.PutScratch(s)
	pairs := benchPairs(ds.A, ds.B, 16)
	// Warm-up pass grows the scratch buffers to steady state.
	for _, p := range pairs {
		vz.BlockingVectorScratch(p, s)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		vz.BlockingVectorScratch(pairs[i%len(pairs)], s)
		i++
	})
	if allocs > 1 {
		t.Fatalf("BlockingVectorScratch allocates %.1f objects/op after warm-up, want <= 1", allocs)
	}
}

// TestBlockingVectorAllocs sanity-checks the pooled wrapper: the scratch
// pool keeps the DP buffers out of steady-state allocation, so the wrapper
// stays within a few objects per call.
func TestBlockingVectorAllocs(t *testing.T) {
	ds := datagen.Products(0.02, 7)
	set := Generate(ds.A, ds.B)
	vz := NewVectorizer(set, ds.A, ds.B)
	vz.Warm()
	pairs := benchPairs(ds.A, ds.B, 16)
	for _, p := range pairs {
		vz.BlockingVector(p)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		vz.BlockingVector(pairs[i%len(pairs)])
		i++
	})
	if allocs > 4 {
		t.Fatalf("BlockingVector allocates %.1f objects/op after warm-up, want <= 4", allocs)
	}
}

// TestBlockingVectorsBatch proves the batch entry point computes exactly
// what BlockingVector computes — same features, same order, bit-identical
// values — in all three evaluator modes, and that the steady-state batch
// path allocates (almost) nothing per stripe.
func TestBlockingVectorsBatch(t *testing.T) {
	ds := datagen.Products(0.02, 9)
	set := Generate(ds.A, ds.B)
	bRows := make([]int32, 24)
	for i := range bRows {
		bRows[i] = int32((i * 11) % ds.B.Len())
	}
	for _, mode := range []struct {
		name      string
		reference bool
		idsOnly   bool
	}{{"reference", true, false}, {"ids", false, true}, {"bitparallel", false, false}} {
		vz := NewVectorizer(set, ds.A, ds.B)
		vz.Reference = mode.reference
		vz.IDsOnly = mode.idsOnly
		if !mode.reference {
			vz.Warm()
		}
		aRow := 3
		visited := 0
		vz.BlockingVectorsBatch(aRow, bRows, func(i int, values []float64) {
			if i != visited {
				t.Fatalf("%s: visit order %d, want %d", mode.name, i, visited)
			}
			visited++
			want := vz.BlockingVector(table.Pair{A: aRow, B: int(bRows[i])})
			if len(values) != len(want.Values) {
				t.Fatalf("%s row %d: %d values, want %d", mode.name, bRows[i], len(values), len(want.Values))
			}
			for k := range values {
				if math.Float64bits(values[k]) != math.Float64bits(want.Values[k]) {
					t.Fatalf("%s row %d: values[%d]=%v, want %v", mode.name, bRows[i], k, values[k], want.Values[k])
				}
			}
		})
		if visited != len(bRows) {
			t.Fatalf("%s: visited %d rows, want %d", mode.name, visited, len(bRows))
		}
	}

	// Steady-state allocation budget on the default path.
	vz := NewVectorizer(set, ds.A, ds.B)
	vz.Warm()
	sink := 0.0
	visit := func(_ int, values []float64) { sink += values[0] }
	vz.BlockingVectorsBatch(0, bRows, visit)
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		vz.BlockingVectorsBatch(i%ds.A.Len(), bRows, visit)
		i++
	})
	if allocs > 2 {
		t.Fatalf("BlockingVectorsBatch allocates %.1f objects/stripe after warm-up, want <= 2", allocs)
	}
	_ = sink
}
