package estimate

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/crowd"
	"falcon/internal/table"
)

// world builds predictions with known true precision/recall: nPos predicted
// positives of which tpFrac are true, and nNeg predicted negatives hiding
// fnCount false negatives near the boundary.
func world(nPos int, tpFrac float64, nNeg, fnCount int, seed int64) ([]Prediction, func(table.Pair) bool) {
	rng := rand.New(rand.NewSource(seed))
	truth := map[table.Pair]bool{}
	var preds []Prediction
	id := 0
	for i := 0; i < nPos; i++ {
		p := table.Pair{A: id, B: id}
		id++
		truth[p] = rng.Float64() < tpFrac
		preds = append(preds, Prediction{Pair: p, Match: true, Confidence: 0.7 + rng.Float64()*0.3})
	}
	for i := 0; i < nNeg; i++ {
		p := table.Pair{A: id, B: id}
		id++
		isFN := i < fnCount
		truth[p] = isFN
		conf := rng.Float64() * 0.1 // far from boundary
		if isFN {
			conf = 0.3 + rng.Float64()*0.19 // FNs hide near the boundary
		}
		preds = append(preds, Prediction{Pair: p, Match: false, Confidence: conf})
	}
	return preds, func(p table.Pair) bool { return truth[p] }
}

func newCrowd() *crowd.Crowd {
	return crowd.New(crowd.NewRandomWorkers(0, 0, 3), crowd.Config{})
}

func TestPrecisionEstimate(t *testing.T) {
	preds, oracle := world(400, 0.9, 400, 0, 1)
	acc, err := MatcherAccuracy(context.Background(), newCrowd(), oracle, preds, Config{Seed: 2, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.Precision-0.9) > 0.08 {
		t.Fatalf("precision estimate %.3f, truth 0.9", acc.Precision)
	}
	if acc.PrecisionErr <= 0 || acc.PrecisionErr > 0.2 {
		t.Fatalf("precision margin %.3f", acc.PrecisionErr)
	}
	if acc.Labeled == 0 || acc.CrowdLatency == 0 {
		t.Fatal("no crowd activity recorded")
	}
}

func TestRecallFindsBoundaryFNs(t *testing.T) {
	// 200 TP (perfect precision), 50 FN near the boundary among 1000
	// negatives → true recall = 200/250 = 0.8.
	preds, oracle := world(200, 1.0, 1000, 50, 4)
	acc, err := MatcherAccuracy(context.Background(), newCrowd(), oracle, preds, Config{Seed: 5, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.Recall-0.8) > 0.12 {
		t.Fatalf("recall estimate %.3f, truth 0.8", acc.Recall)
	}
	if acc.F1 <= 0 || acc.F1 > 1 {
		t.Fatalf("F1 = %v", acc.F1)
	}
}

func TestPerfectMatcher(t *testing.T) {
	preds, oracle := world(300, 1.0, 300, 0, 6)
	acc, err := MatcherAccuracy(context.Background(), newCrowd(), oracle, preds, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Precision < 0.99 || acc.Recall < 0.99 {
		t.Fatalf("perfect matcher scored %v/%v", acc.Precision, acc.Recall)
	}
	if acc.F1 < 0.99 {
		t.Fatalf("F1 = %v", acc.F1)
	}
}

func TestNoPositives(t *testing.T) {
	preds, oracle := world(0, 0, 100, 0, 8)
	acc, err := MatcherAccuracy(context.Background(), newCrowd(), oracle, preds, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Precision != 1 || acc.Recall != 1 {
		t.Fatalf("vacuous case: %v/%v", acc.Precision, acc.Recall)
	}
}

func TestEmptyPredictions(t *testing.T) {
	acc, err := MatcherAccuracy(context.Background(), newCrowd(), func(table.Pair) bool { return false }, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Labeled != 0 {
		t.Fatal("no predictions should ask no questions")
	}
}

func TestLabelBudgetBounded(t *testing.T) {
	preds, oracle := world(5000, 0.95, 5000, 100, 10)
	cfg := Config{Seed: 11, BatchSize: 20, MaxIterations: 3}
	cr := newCrowd()
	if _, err := MatcherAccuracy(context.Background(), cr, oracle, preds, cfg); err != nil {
		t.Fatal(err)
	}
	// Precision pass + 3 strata, each ≤ 3 iterations × 20 questions.
	if got := cr.Ledger().Questions; got > 4*3*20 {
		t.Fatalf("labeled %d pairs, budget is %d", got, 4*3*20)
	}
}

func TestEarlyStopOnTightMargin(t *testing.T) {
	// A huge, perfectly pure positive pool: margin shrinks fast, so the
	// estimator should stop well before MaxIterations×BatchSize.
	preds, oracle := world(100000, 1.0, 0, 0, 12)
	cfg := Config{Seed: 13, BatchSize: 100, MaxIterations: 50}
	cr := newCrowd()
	if _, err := MatcherAccuracy(context.Background(), cr, oracle, preds, cfg); err != nil {
		t.Fatal(err)
	}
	if got := cr.Ledger().Questions; got > 500 {
		t.Fatalf("early stop failed: %d questions", got)
	}
}

func TestMargin(t *testing.T) {
	if !math.IsInf(margin(0.5, 0, 10, 1.96), 1) {
		t.Fatal("zero-sample margin should be infinite")
	}
	// Full census → zero margin.
	if m := margin(0.5, 10, 10, 1.96); m != 0 {
		t.Fatalf("census margin = %v", m)
	}
	// More samples → smaller margin.
	if margin(0.5, 100, 10000, 1.96) >= margin(0.5, 10, 10000, 1.96) {
		t.Fatal("margin not shrinking with n")
	}
}

func TestDifficultPairs(t *testing.T) {
	preds := []Prediction{
		{Pair: table.Pair{A: 0, B: 0}, Confidence: 0.9},
		{Pair: table.Pair{A: 1, B: 1}, Confidence: 0.52},
		{Pair: table.Pair{A: 2, B: 2}, Confidence: 0.1},
		{Pair: table.Pair{A: 3, B: 3}, Confidence: 0.48},
	}
	got := DifficultPairs(preds, 2)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	if got[0].Pair.A != 3 && got[0].Pair.A != 1 {
		t.Fatalf("most difficult = %v", got[0])
	}
	// Both boundary pairs, no confident ones.
	for _, p := range got {
		if p.Confidence < 0.4 || p.Confidence > 0.6 {
			t.Fatalf("non-boundary pair selected: %v", p)
		}
	}
	if len(DifficultPairs(preds, 99)) != 4 {
		t.Fatal("k clamp failed")
	}
}

func TestShuffledIndexesDeterministicPermutation(t *testing.T) {
	a := shuffledIndexes(100, 42)
	b := shuffledIndexes(100, 42)
	seen := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		seen[a[i]] = true
	}
	if len(seen) != 100 {
		t.Fatal("not a permutation")
	}
	c := shuffledIndexes(100, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds gave identical shuffles")
	}
}

// Property: estimates stay in [0,1] and F1 is consistent with P and R.
func TestQuickAccuracyBounds(t *testing.T) {
	f := func(seed int64, tpPct, fnRaw uint8) bool {
		tpFrac := float64(tpPct%101) / 100
		fn := int(fnRaw % 40)
		preds, oracle := world(150, tpFrac, 400, fn, seed)
		acc, err := MatcherAccuracy(context.Background(), newCrowd(), oracle, preds, Config{Seed: seed + 1})
		if err != nil {
			return false
		}
		if acc.Precision < 0 || acc.Precision > 1 || acc.Recall < 0 || acc.Recall > 1 {
			return false
		}
		if acc.F1 < 0 || acc.F1 > 1 {
			return false
		}
		if acc.Precision+acc.Recall > 0 {
			want := 2 * acc.Precision * acc.Recall / (acc.Precision + acc.Recall)
			return math.Abs(acc.F1-want) < 1e-9
		}
		return acc.F1 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
