// Package estimate implements Corleone's remaining two modules as Falcon
// extensions (paper §12 names the Accuracy Estimator as the next operator
// to add; Figure 1 shows both in the full EM workflow):
//
//   - the Accuracy Estimator: crowd-based estimation of the matcher's
//     precision and recall over the candidate set, with confidence
//     intervals, using stratified sampling of the predicted negatives so
//     the (rare) false negatives near the decision boundary are found
//     without labeling everything;
//   - the Difficult Pairs' Locator: the pairs the current matcher is most
//     likely wrong about — the lowest-confidence predictions — which the
//     iterative workflow feeds back into training.
package estimate

import (
	"cmp"
	"context"
	"math"
	"slices"
	"time"

	"falcon/internal/crowd"
	"falcon/internal/table"
)

// Prediction is one matcher decision over a candidate pair.
type Prediction struct {
	Pair  table.Pair
	Match bool
	// Confidence is the forest's match-vote fraction in [0,1].
	Confidence float64
}

// Config controls crowd-based accuracy estimation.
type Config struct {
	// BatchSize pairs are labeled per crowd iteration (default 20).
	BatchSize int
	// MaxIterations caps crowd iterations per estimated quantity
	// (default 5, as eval_rules caps per-rule iterations).
	MaxIterations int
	// EpsTarget stops early once both error margins are below it
	// (default 0.05 at Z = 1.96, the §3.4 setting).
	EpsTarget float64
	Z         float64
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 5
	}
	if c.EpsTarget <= 0 {
		c.EpsTarget = 0.05
	}
	if c.Z <= 0 {
		c.Z = 1.96
	}
	return c
}

// Accuracy is the estimator's output.
type Accuracy struct {
	Precision    float64
	PrecisionErr float64 // half-width of the CI
	Recall       float64
	RecallErr    float64
	F1           float64
	// Labeled counts pairs sent to the crowd.
	Labeled int
	// CrowdLatency is the summed labeling latency for timeline scheduling.
	CrowdLatency time.Duration
}

// strata are the confidence bands of predicted negatives, nearest the
// boundary first — false negatives concentrate there, so stratified
// sampling spends labels where they are informative.
var strata = [][2]float64{{0.3, 0.5}, {0.1, 0.3}, {0, 0.1}}

// MatcherAccuracy estimates precision and recall of the predictions using
// the crowd. The oracle supplies ground truth behind the simulated crowd.
// Crowd waits honor ctx; on cancellation the zero Accuracy and ctx.Err()
// are returned.
func MatcherAccuracy(ctx context.Context, cr *crowd.Crowd, oracle func(table.Pair) bool, preds []Prediction, cfg Config) (Accuracy, error) {
	cfg = cfg.withDefaults()
	var acc Accuracy

	var positives, negatives []Prediction
	for _, p := range preds {
		if p.Match {
			positives = append(positives, p)
		} else {
			negatives = append(negatives, p)
		}
	}

	// ---- Precision: simple random sampling from predicted positives ----
	posLabels, lat, err := sampleAndLabel(ctx, cr, oracle, positives, cfg, cfg.Seed)
	if err != nil {
		return Accuracy{}, err
	}
	acc.CrowdLatency += lat
	acc.Labeled += len(posLabels)
	tp := 0
	for _, l := range posLabels {
		if l {
			tp++
		}
	}
	if len(posLabels) > 0 {
		acc.Precision = float64(tp) / float64(len(posLabels))
		acc.PrecisionErr = margin(acc.Precision, len(posLabels), len(positives), cfg.Z)
	} else {
		acc.Precision = 1 // vacuous: nothing predicted positive
	}

	// ---- Recall: stratified sampling of predicted negatives ----
	// FN estimate per stratum, weighted by stratum size.
	estTP := acc.Precision * float64(len(positives))
	var estFN, fnVar float64
	for si, band := range strata {
		var stratum []Prediction
		for _, p := range negatives {
			if p.Confidence >= band[0] && p.Confidence < band[1] {
				stratum = append(stratum, p)
			}
		}
		if len(stratum) == 0 {
			continue
		}
		labels, lat, err := sampleAndLabel(ctx, cr, oracle, stratum, cfg, cfg.Seed+int64(si+1)*977)
		if err != nil {
			return Accuracy{}, err
		}
		acc.CrowdLatency += lat
		acc.Labeled += len(labels)
		if len(labels) == 0 {
			continue
		}
		fn := 0
		for _, l := range labels {
			if l {
				fn++
			}
		}
		rate := float64(fn) / float64(len(labels))
		w := float64(len(stratum))
		estFN += rate * w
		// Stratum variance contribution (finite population ignored: the
		// strata are big relative to samples).
		fnVar += w * w * rate * (1 - rate) / float64(len(labels))
	}
	den := estTP + estFN
	if den > 0 {
		acc.Recall = estTP / den
		// Propagate the FN uncertainty through recall = TP/(TP+FN).
		dFN := cfg.Z * math.Sqrt(fnVar)
		if low := estTP / (estTP + estFN + dFN); low > 0 {
			acc.RecallErr = acc.Recall - low
		}
	} else {
		acc.Recall = 1 // nothing matched and no FN found
	}

	if acc.Precision+acc.Recall > 0 {
		acc.F1 = 2 * acc.Precision * acc.Recall / (acc.Precision + acc.Recall)
	}
	return acc, nil
}

// sampleAndLabel draws up to BatchSize×MaxIterations pairs from pool
// (deterministically shuffled) and has the crowd label them, stopping early
// once the estimate's margin is under EpsTarget.
func sampleAndLabel(ctx context.Context, cr *crowd.Crowd, oracle func(table.Pair) bool, pool []Prediction, cfg Config, seed int64) ([]bool, time.Duration, error) {
	if len(pool) == 0 {
		return nil, 0, nil
	}
	order := shuffledIndexes(len(pool), seed)
	var labels []bool
	var total time.Duration
	yes := 0
	for iter := 0; iter < cfg.MaxIterations && len(labels) < len(pool); iter++ {
		var qs []crowd.Question
		for _, pi := range order[len(labels):] {
			qs = append(qs, crowd.Question{Pair: pool[pi].Pair, Truth: oracle(pool[pi].Pair)})
			if len(qs) == cfg.BatchSize {
				break
			}
		}
		got, lat, err := cr.LabelMajorityContext(ctx, qs)
		if err != nil {
			return nil, 0, err
		}
		total += lat
		for _, l := range got {
			labels = append(labels, l)
			if l {
				yes++
			}
		}
		p := float64(yes) / float64(len(labels))
		if margin(p, len(labels), len(pool), cfg.Z) <= cfg.EpsTarget {
			break
		}
	}
	return labels, total, nil
}

// margin is the §3.4 error margin with finite-population correction.
func margin(p float64, n, m int, z float64) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	fpc := 1.0
	if m > 1 {
		fpc = float64(m-n) / float64(m-1)
		if fpc < 0 {
			fpc = 0
		}
	}
	return z * math.Sqrt(p*(1-p)/float64(n)*fpc)
}

// shuffledIndexes is a deterministic Fisher–Yates permutation.
func shuffledIndexes(n int, seed int64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	s := uint64(seed)*2654435761 + 1
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx
}

// DifficultPairs returns the k predictions the matcher is least sure about
// (confidence closest to 0.5), most uncertain first — the Difficult Pairs'
// Locator of Figure 1.
func DifficultPairs(preds []Prediction, k int) []Prediction {
	out := append([]Prediction(nil), preds...)
	slices.SortFunc(out, func(a, b Prediction) int {
		da := math.Abs(a.Confidence - 0.5)
		db := math.Abs(b.Confidence - 0.5)
		if c := cmp.Compare(da, db); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pair.A, b.Pair.A); c != 0 {
			return c
		}
		return cmp.Compare(a.Pair.B, b.Pair.B)
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}
