package sample

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/mapreduce"
	"falcon/internal/table"
)

// matchedTables builds A and B where B row i matches A row i (same title
// with a typo) for i < nMatch; the rest are unrelated.
func matchedTables(nA, nB, nMatch int, seed int64) (*table.Table, *table.Table) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"entity", "match", "cloud", "service", "crowd", "data", "rule", "block", "learn", "forest",
		"alpha", "beta", "gamma", "delta", "kappa", "sigma", "omega", "query", "plan", "index"}
	title := func() string {
		out := ""
		for j := 0; j < 4+rng.Intn(3); j++ {
			if j > 0 {
				out += " "
			}
			out += words[rng.Intn(len(words))]
		}
		return out
	}
	a := table.New("A", table.NewSchema("title", "price"))
	b := table.New("B", table.NewSchema("title", "price"))
	for i := 0; i < nA; i++ {
		a.Append(title(), fmt.Sprintf("%d", 10+rng.Intn(90)))
	}
	for i := 0; i < nB; i++ {
		if i < nMatch && i < nA {
			b.Append(a.Value(i, 0)+" x", a.Value(i, 1))
		} else {
			b.Append(title(), fmt.Sprintf("%d", 10+rng.Intn(90)))
		}
	}
	a.InferTypes()
	b.InferTypes()
	return a, b
}

func TestPairsBasic(t *testing.T) {
	a, b := matchedTables(200, 200, 50, 1)
	pairs, sim, err := Pairs(context.Background(), mapreduce.Default(), a, b, Config{N: 1000, Y: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 {
		t.Fatal("no sim time")
	}
	// n/y = 50 b-tuples × y = 20 pairs each.
	if len(pairs) != 1000 {
		t.Fatalf("got %d pairs, want 1000", len(pairs))
	}
	// All IDs valid, no duplicate (a,b).
	seen := map[table.Pair]bool{}
	for _, p := range pairs {
		if p.A < 0 || p.A >= a.Len() || p.B < 0 || p.B >= b.Len() {
			t.Fatalf("invalid pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestPairsContainsMatches(t *testing.T) {
	// Sampling must pull true matches into S (the whole point of the
	// token-sharing half). B row i matches A row i.
	a, b := matchedTables(300, 300, 300, 2)
	pairs, _, err := Pairs(context.Background(), mapreduce.Default(), a, b, Config{N: 2000, Y: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	sampledB := map[int]bool{}
	for _, p := range pairs {
		sampledB[p.B] = true
		if p.A == p.B {
			matches++
		}
	}
	// Every sampled b has an existing match; the top-shared-token half
	// should find most of them.
	if matches < len(sampledB)*5/10 {
		t.Fatalf("only %d of %d sampled b-tuples got their match into S", matches, len(sampledB))
	}
}

func TestPairsRandomHalf(t *testing.T) {
	a, b := matchedTables(500, 100, 0, 4)
	pairs, _, err := Pairs(context.Background(), mapreduce.Default(), a, b, Config{N: 400, Y: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct A tuples should be spread widely by the random half.
	distinct := map[int]bool{}
	for _, p := range pairs {
		distinct[p.A] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("random half covers only %d distinct A tuples", len(distinct))
	}
}

func TestPairsDeterministic(t *testing.T) {
	a, b := matchedTables(100, 100, 20, 6)
	run := func() []table.Pair {
		pairs, _, err := Pairs(context.Background(), mapreduce.Default(), a, b, Config{N: 500, Y: 10, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return pairs
	}
	p1, p2 := run(), run()
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic size")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic pairs")
		}
	}
}

func TestPairsSmallTables(t *testing.T) {
	a, b := matchedTables(5, 5, 5, 7)
	pairs, _, err := Pairs(context.Background(), mapreduce.Default(), a, b, Config{N: 100, Y: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// y clamps to |A| = 5; all 5 b-tuples selected → 25 pairs.
	if len(pairs) != 25 {
		t.Fatalf("got %d pairs, want 25", len(pairs))
	}
}

func TestPairsEmptyTables(t *testing.T) {
	a, _ := matchedTables(5, 5, 0, 8)
	empty := table.New("E", table.NewSchema("title", "price"))
	pairs, _, err := Pairs(context.Background(), mapreduce.Default(), a, empty, Config{N: 10, Y: 2, Seed: 1})
	if err != nil || pairs != nil {
		t.Fatalf("empty B: pairs=%v err=%v", pairs, err)
	}
	pairs, _, err = Pairs(context.Background(), mapreduce.Default(), empty, a, Config{N: 10, Y: 2, Seed: 1})
	if err != nil || pairs != nil {
		t.Fatalf("empty A: pairs=%v err=%v", pairs, err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(50000)
	if c.N != 1_000_000 || c.Y != 100 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.StopwordDF != 5000 {
		t.Fatalf("StopwordDF = %d, want |A|/10", c.StopwordDF)
	}
	if got := (Config{}).withDefaults(100).StopwordDF; got != 1000 {
		t.Fatalf("small-table StopwordDF = %d, want 1000 floor", got)
	}
}

// Property: sample size is exactly numB × min(y, |A|) and pairs are unique.
func TestQuickSampleShape(t *testing.T) {
	a, b := matchedTables(80, 60, 10, 9)
	f := func(seed int64, yRaw uint8) bool {
		y := int(yRaw%30) + 2
		n := y * 10
		pairs, _, err := Pairs(context.Background(), mapreduce.Default(), a, b, Config{N: n, Y: y, Seed: seed})
		if err != nil {
			return false
		}
		yEff := y
		if yEff > a.Len() {
			yEff = a.Len()
		}
		if len(pairs) != 10*yEff {
			return false
		}
		seen := map[table.Pair]bool{}
		for _, p := range pairs {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPairs(b *testing.B) {
	ta, tb := matchedTables(2000, 2000, 500, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Pairs(context.Background(), mapreduce.Default(), ta, tb, Config{N: 5000, Y: 50, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
