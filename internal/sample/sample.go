// Package sample implements Falcon's sample_pairs operator (paper §5).
//
// Learning blocking rules on A×B is impractical, so Falcon draws a sample S
// of n pairs that is both representative and match-rich: it builds an
// inverted index over the documents d(a) of the smaller table A, selects
// n/y random tuples from B, and pairs each selected b with (1) the top y/2
// tuples of A sharing the most tokens with d(b) — likely matches — and
// (2) y/2 random tuples of A. Two MapReduce jobs implement this: one builds
// the inverted index, one generates the pairs.
package sample

import (
	"cmp"
	"context"
	"math/rand"
	"slices"
	"time"

	"falcon/internal/mapreduce"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Config controls sampling.
type Config struct {
	// N is the sample size (paper default 1M pairs; sweeps use 500K–2M).
	N int
	// Y is the per-b pairing fan-out (paper: 100).
	Y int
	// Seed drives all random selection.
	Seed int64
	// StopwordDF: tokens appearing in more than this many A documents are
	// skipped when counting shared tokens (0 = max(1000, |A|/10)). Very
	// frequent tokens carry no match signal and would blow up probe cost.
	StopwordDF int
	// ExcludeSelf skips pairs with equal row numbers — used when matching
	// a table against itself (deduplication, like the paper's Songs task).
	ExcludeSelf bool
}

func (c Config) withDefaults(aLen int) Config {
	if c.N <= 0 {
		c.N = 1_000_000
	}
	if c.Y <= 0 {
		c.Y = 100
	}
	if c.StopwordDF <= 0 {
		c.StopwordDF = 1000
		if aLen/10 > c.StopwordDF {
			c.StopwordDF = aLen / 10
		}
	}
	return c
}

// stringCols returns the columns of t inferred as strings.
func stringCols(t *table.Table) []int {
	var out []int
	for i, a := range t.Schema.Attrs {
		if a.Type == table.String {
			out = append(out, i)
		}
	}
	return out
}

// document returns d(x): the de-duplicated word tokens of the tuple's
// string attributes.
func document(t *table.Table, row int, cols []int) []string {
	vals := make([]string, len(cols))
	for i, c := range cols {
		vals[i] = t.Value(row, c)
	}
	return tokenize.Document(vals)
}

// Pairs draws the sample S from A×B. It returns the pairs and the modeled
// cluster time of the two MapReduce jobs, honoring ctx cancellation between
// records.
func Pairs(ctx context.Context, cluster *mapreduce.Cluster, a, b *table.Table, cfg Config) ([]table.Pair, time.Duration, error) {
	cfg = cfg.withDefaults(a.Len())
	if a.Len() == 0 || b.Len() == 0 {
		return nil, 0, nil
	}
	aCols := stringCols(a)
	bCols := stringCols(b)

	// Job 1: inverted index over A documents.
	type tokID struct {
		Tok string
		ID  int32
	}
	rows := make([]int, a.Len())
	for i := range rows {
		rows[i] = i
	}
	idxJob := mapreduce.Job[int, string, int32, tokID]{
		Name:   "sample-inverted-index",
		Splits: mapreduce.SplitSlice(rows, cluster.Slots()),
		Map: func(row int, ctx *mapreduce.MapCtx[string, int32]) {
			doc := document(a, row, aCols)
			ctx.AddCost(int64(len(doc)))
			for _, tok := range doc {
				ctx.Emit(tok, int32(row))
			}
		},
		Reduce: func(tok string, ids []int32, ctx *mapreduce.ReduceCtx[tokID]) {
			// Materializing the posting list costs a unit per entry beyond
			// the engine's per-value grouping charge.
			ctx.AddCost(int64(len(ids)))
			for _, id := range ids {
				ctx.Output(tokID{tok, id})
			}
		},
	}
	ir, err := mapreduce.RunContext(ctx, cluster, idxJob)
	if err != nil {
		return nil, 0, err
	}
	inverted := map[string][]int32{}
	for _, ti := range ir.Output {
		inverted[ti.Tok] = append(inverted[ti.Tok], ti.ID)
	}
	for _, ids := range inverted {
		slices.Sort(ids)
	}

	// Select n/y tuples from B.
	rng := rand.New(rand.NewSource(cfg.Seed))
	numB := cfg.N / cfg.Y
	if numB < 1 {
		numB = 1
	}
	if numB > b.Len() {
		numB = b.Len()
	}
	perm := rng.Perm(b.Len())[:numB]
	slices.Sort(perm) // deterministic split layout

	// Job 2: generate pairs for each selected b.
	genJob := mapreduce.MapOnlyJob[int, table.Pair]{
		Name:   "sample-gen-pairs",
		Splits: mapreduce.SplitSlice(perm, cluster.Slots()),
		Map: func(bRow int, ctx *mapreduce.MapOnlyCtx[table.Pair]) {
			local := rand.New(rand.NewSource(cfg.Seed ^ (int64(bRow)+1)*0x5851F42D4C957F2D))
			doc := document(b, bRow, bCols)
			// Count shared tokens per A tuple via the inverted index.
			//falcon:allow hotalloc sampling runs once per sampled B tuple, not per pair
			counts := map[int32]int{}
			var probeCost int64
			for _, tok := range doc {
				ids := inverted[tok]
				if len(ids) > cfg.StopwordDF {
					continue
				}
				probeCost += int64(len(ids)) + 1
				for _, id := range ids {
					counts[id]++
				}
			}
			ctx.AddCost(probeCost + int64(len(doc)))
			// Rank X by shared-token count desc, ID asc.
			type scored struct {
				id    int32
				count int
			}
			xs := make([]scored, 0, len(counts)) //falcon:allow hotalloc sampling stage, size varies per B tuple
			for id, c := range counts {
				xs = append(xs, scored{id, c})
			}
			slices.SortFunc(xs, func(a, b scored) int {
				if c := cmp.Compare(b.count, a.count); c != 0 {
					return c
				}
				return cmp.Compare(a.id, b.id)
			})
			y := cfg.Y
			if y > a.Len() {
				y = a.Len()
			}
			y1 := y / 2
			chosen := make(map[int32]bool, y) //falcon:allow hotalloc sampling stage, tiny map of Y picks
			if cfg.ExcludeSelf {
				chosen[int32(bRow)] = true
			}
			taken := 0
			for i := 0; i < len(xs) && taken < y1; i++ {
				if chosen[xs[i].id] {
					continue
				}
				chosen[xs[i].id] = true
				ctx.Output(table.Pair{A: int(xs[i].id), B: bRow})
				taken++
			}
			// Fill the rest with random A tuples not yet chosen.
			limit := y
			if cfg.ExcludeSelf {
				limit++ // the self slot does not count toward y
				if limit > a.Len() {
					limit = a.Len()
				}
			}
			for len(chosen) < limit {
				id := int32(local.Intn(a.Len()))
				if chosen[id] {
					continue
				}
				chosen[id] = true
				ctx.Output(table.Pair{A: int(id), B: bRow})
			}
		},
	}
	gr, err := mapreduce.RunMapOnlyContext(ctx, cluster, genJob)
	if err != nil {
		return nil, 0, err
	}
	return gr.Output, ir.Stats.SimTime + gr.Stats.SimTime, nil
}
