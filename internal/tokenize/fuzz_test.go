package tokenize

import (
	"testing"
	"unicode"
)

// FuzzWords asserts tokenization output is always lowercase alphanumeric.
func FuzzWords(f *testing.F) {
	f.Add("Hello, World!")
	f.Add("日本語 text ÅÄÖ")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		for _, w := range Words(s) {
			if w == "" {
				t.Fatal("empty token")
			}
			for _, r := range w {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q has separator rune %q", w, r)
				}
				if unicode.IsUpper(r) {
					t.Fatalf("token %q not lowercased", w)
				}
			}
		}
	})
}

// FuzzQGrams asserts every gram has exactly q runes.
func FuzzQGrams(f *testing.F) {
	f.Add("hello world")
	f.Add("")
	f.Add("ab")
	f.Fuzz(func(t *testing.T, s string) {
		for _, g := range QGrams(s, 3) {
			if n := len([]rune(g)); n != 3 {
				t.Fatalf("gram %q has %d runes", g, n)
			}
		}
	})
}
