package tokenize

// Dict is a token interner: it maps each distinct token string to a dense
// uint32 ID and back. When built from a frequency-ranked token list (see
// index.BuildOrdering), ID order equals global rank order, so a token-ID set
// sorted ascending is exactly the §7.5 reordered token set — rarest first —
// and set intersections become branch-predictable merges over int arrays
// instead of map probes over strings.
//
// A Dict is immutable after construction unless the caller interns new
// tokens; Intern is not safe for concurrent use (callers synchronize, e.g.
// by building whole columns under a lock).
type Dict struct {
	ids  map[string]uint32
	toks []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// DictOf builds a dictionary whose IDs follow the given token order: the
// i-th token gets ID i. Duplicate tokens panic — the caller promised a
// ranked set.
func DictOf(tokens []string) *Dict {
	d := &Dict{ids: make(map[string]uint32, len(tokens)), toks: make([]string, 0, len(tokens))}
	for _, t := range tokens {
		if _, ok := d.ids[t]; ok {
			panic("tokenize: DictOf with duplicate token " + t)
		}
		d.ids[t] = uint32(len(d.toks))
		d.toks = append(d.toks, t)
	}
	return d
}

// Intern returns the token's ID, assigning the next dense ID on first sight.
func (d *Dict) Intern(t string) uint32 {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := uint32(len(d.toks))
	d.ids[t] = id              //falcon:allow streambound interning is bounded by the token vocabulary; streaming callers intern into per-column scratch dicts
	d.toks = append(d.toks, t) //falcon:allow streambound interning is bounded by the token vocabulary; streaming callers intern into per-column scratch dicts
	return id
}

// ID returns the token's ID if it is interned.
func (d *Dict) ID(t string) (uint32, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// Token returns the token string for an ID.
func (d *Dict) Token(id uint32) string { return d.toks[id] }

// Len returns the number of interned tokens.
func (d *Dict) Len() int { return len(d.toks) }

// Tokens returns the interned tokens in ID order. The returned slice is the
// dictionary's backing array: callers must not mutate it.
func (d *Dict) Tokens() []string { return d.toks }
