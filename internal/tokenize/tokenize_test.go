package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"", nil},
		{"---", nil},
		{"C++ vs Go-1.22", []string{"c", "vs", "go", "1", "22"}},
		{"ISBN 978-3-16", []string{"isbn", "978", "3", "16"}},
	}
	for _, c := range cases {
		got := Words(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWordSetDedupes(t *testing.T) {
	got := WordSet("the cat the hat the cat")
	want := []string{"the", "cat", "hat"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WordSet = %v, want %v", got, want)
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 3)
	want := []string{"##a", "#ab", "ab#", "b##"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QGrams(ab,3) = %v, want %v", got, want)
	}
	if QGrams("", 3) != nil {
		t.Fatal("QGrams empty should be nil")
	}
	if QGrams("  !! ", 3) != nil {
		t.Fatal("QGrams all-punct should be nil")
	}
}

func TestQGramsNormalizeCaseAndSpace(t *testing.T) {
	a := QGrams("Hello  World", 3)
	b := QGrams("hello world", 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("case/space normalization failed: %v vs %v", a, b)
	}
}

func TestTokenizeDispatch(t *testing.T) {
	if !reflect.DeepEqual(Tokenize(Word, "a b"), []string{"a", "b"}) {
		t.Fatal("Word dispatch wrong")
	}
	if len(Tokenize(Gram3, "abc")) == 0 {
		t.Fatal("Gram3 dispatch wrong")
	}
}

func TestTokenizeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Tokenize(Kind("bogus"), "x")
}

func TestSet(t *testing.T) {
	got := Set(Word, "a a b")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Set = %v", got)
	}
}

func TestDocument(t *testing.T) {
	got := Document([]string{"The Cat", "cat food", ""})
	want := []string{"the", "cat", "food"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Document = %v, want %v", got, want)
	}
}

// Property: number of 3-grams of a normalized non-empty string of n runes is
// n + q − 1 (with padding q−1 on each side).
func TestQuickQGramCount(t *testing.T) {
	f := func(s string) bool {
		norm := strings.Join(Words(s), " ")
		grams := QGrams(s, 3)
		if norm == "" {
			return grams == nil
		}
		return len(grams) == len([]rune(norm))+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WordSet output contains no duplicates and is a subset of Words.
func TestQuickWordSetProperties(t *testing.T) {
	f := func(s string) bool {
		set := WordSet(s)
		seen := map[string]bool{}
		for _, w := range set {
			if seen[w] {
				return false
			}
			seen[w] = true
		}
		all := map[string]bool{}
		for _, w := range Words(s) {
			all[w] = true
		}
		if len(all) != len(set) {
			return false
		}
		for _, w := range set {
			if !all[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWords(b *testing.B) {
	s := strings.Repeat("the quick brown fox jumps over the lazy dog ", 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Words(s)
	}
}

func BenchmarkQGrams(b *testing.B) {
	s := "entity matching at cloud scale with crowdsourcing"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QGrams(s, 3)
	}
}
