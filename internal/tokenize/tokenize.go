// Package tokenize provides the word and q-gram tokenizers that underlie
// Falcon's set-based similarity functions and its inverted indexes
// (paper §5, §7.5). Tokenization is deterministic: lowercase, punctuation
// stripped, and (for sets) duplicates removed while preserving first-seen
// order so prefix filtering stays stable.
package tokenize

import (
	"strings"
	"unicode"
)

// Kind names a tokenization scheme. A (attribute, Kind) pair identifies one
// token universe for global token ordering (§7.5).
type Kind string

const (
	// Word splits on non-alphanumeric runs.
	Word Kind = "word"
	// Gram3 produces padded 3-grams.
	Gram3 Kind = "3gram"
)

// Tokenize applies the named scheme. Unknown kinds panic, since they signal
// a programming error in feature generation.
func Tokenize(kind Kind, s string) []string {
	switch kind {
	case Word:
		return Words(s)
	case Gram3:
		return QGrams(s, 3)
	default:
		panic("tokenize: unknown kind " + string(kind))
	}
}

// Words lowercases s and splits it into maximal alphanumeric runs.
func Words(s string) []string {
	s = strings.ToLower(s)
	return strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// WordSet returns the de-duplicated word tokens in first-seen order.
func WordSet(s string) []string { return dedupe(Words(s)) }

// QGrams returns the padded q-grams of the lowercased, whitespace-normalized
// string. Padding with q−1 sentinel characters on each side follows the
// standard construction so short strings still produce grams. An empty or
// all-space string yields no grams.
func QGrams(s string, q int) []string {
	s = strings.Join(Words(s), " ")
	if s == "" {
		return nil
	}
	pad := strings.Repeat("#", q-1)
	s = pad + s + pad
	runes := []rune(s)
	if len(runes) < q {
		return nil
	}
	out := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		out = append(out, string(runes[i:i+q]))
	}
	return out
}

// QGramSet returns the de-duplicated q-grams in first-seen order.
func QGramSet(s string, q int) []string { return dedupe(QGrams(s, q)) }

// Set returns the de-duplicated tokens of the named scheme.
func Set(kind Kind, s string) []string { return dedupe(Tokenize(kind, s)) }

func dedupe(in []string) []string {
	if len(in) <= 1 {
		return in
	}
	seen := make(map[string]struct{}, len(in))
	out := in[:0]
	for _, t := range in {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Document converts a tuple's string-attribute values into the bag of word
// tokens d(a) used by sample_pairs (§5).
func Document(values []string) []string {
	var out []string
	for _, v := range values {
		out = append(out, Words(v)...)
	}
	return dedupe(out)
}
