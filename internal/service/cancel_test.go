package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"falcon/internal/core"
	"falcon/internal/learn"
	"falcon/internal/table"
)

// blockingRun is a runFunc that parks until its context dies, signalling
// `started` once it is running.
func blockingRun(started chan<- struct{}) runFunc {
	return func(ctx context.Context, a, b *table.Table, oracle learn.Oracle, opt core.Options) (*core.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func getState(t *testing.T, ts *httptest.Server, id string) State {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job.State
}

func waitForState(t *testing.T, ts *httptest.Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got := getState(t, ts, id); got == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s (last: %s)", id, want, getState(t, ts, id))
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	ts := httptest.NewServer(New(withRunFunc(blockingRun(started))))
	defer ts.Close()

	a, b := songsWithKey(30, 3)
	id, _ := postJob(t, ts, a, b, map[string]string{"oracle_key": "match_key"})
	<-started

	resp := deleteJob(t, ts, id)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	waitForState(t, ts, id, StateCancelled)
}

func TestCancelFinishedJobConflicts(t *testing.T) {
	ts := newTestServer() // synchronous: job is done when POST returns
	defer ts.Close()
	a, b := songsWithKey(30, 4)
	id, _ := postJob(t, ts, a, b, map[string]string{"oracle_key": "match_key", "sample": "300", "max_iter": "4"})
	waitForState(t, ts, id, StateDone)

	resp := deleteJob(t, ts, id)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of done job = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestCancelUnknownJob(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp := deleteJob(t, ts, "job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel of unknown job = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestJobTimeout(t *testing.T) {
	started := make(chan struct{})
	ts := httptest.NewServer(New(
		withRunFunc(blockingRun(started)),
		WithJobTimeout(30*time.Millisecond),
	))
	defer ts.Close()

	a, b := songsWithKey(30, 5)
	id, _ := postJob(t, ts, a, b, map[string]string{"oracle_key": "match_key"})
	<-started
	waitForState(t, ts, id, StateFailed)

	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Error == "" {
		t.Fatal("timed-out job has no error message")
	}
}

// TestCancelEndsRealPipeline runs the actual core pipeline (not a stub) and
// cancels it mid-flight: the DELETE must end the job within one task
// boundary rather than letting the workflow finish.
func TestCancelEndsRealPipeline(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	a, b := songsWithKey(400, 6)
	id, _ := postJob(t, ts, a, b, map[string]string{"oracle_key": "match_key"})
	waitForState(t, ts, id, StateRunning)

	resp := deleteJob(t, ts, id)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	waitForState(t, ts, id, StateCancelled)
}
