package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"

	"falcon/internal/model"
	"falcon/internal/serve"
)

// artifactInfo is the metadata view of a published (or downloadable)
// artifact.
type artifactInfo struct {
	ArtifactVersion int      `json:"artifact_version"`
	Features        int      `json:"features"`
	BlockingRules   int      `json:"blocking_rules"`
	PrefixIndexes   int      `json:"prefix_indexes"`
	Trees           int      `json:"trees"`
	BRows           int      `json:"b_rows"`
	TableA          string   `json:"table_a"`
	TableB          string   `json:"table_b"`
	Columns         []string `json:"columns"`
}

func infoOf(art *model.MatcherArtifact) artifactInfo {
	info := artifactInfo{
		ArtifactVersion: art.Version,
		Features:        len(art.FeatureNames),
		BlockingRules:   len(art.RuleSeq),
		PrefixIndexes:   len(art.Prefix),
		TableA:          art.AName,
	}
	if art.Matcher != nil {
		info.Trees = len(art.Matcher.Trees)
	}
	if art.B != nil {
		info.BRows = art.B.Len()
		info.TableB = art.B.Name
	}
	for _, at := range art.AAttrs {
		info.Columns = append(info.Columns, at.Name)
	}
	return info
}

// handleVersion reports the serving contract's layout versions plus build
// information — what a client needs to decide whether its saved artifacts
// are loadable here.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"artifact_version": model.ArtifactVersion,
		"model_version":    model.Version,
		"go":               runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out["module"] = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				out["revision"] = kv.Value
			}
		}
	}
	writeJSON(w, out)
}

// handleArtifactBuild trains an artifact synchronously from an uploaded
// table pair (same multipart form as POST /jobs) and publishes it for
// serving. The response is the published artifact's metadata.
func (s *Server) handleArtifactBuild(w http.ResponseWriter, r *http.Request) {
	job, _, run, ok := s.acceptSubmission(w, r)
	if !ok {
		return
	}
	// Run synchronously: an artifact build is a provisioning call, not an
	// interactive job. The job record keeps the run inspectable afterwards.
	run()
	snap, _ := s.snapshot(job.ID)
	if snap.State != StateDone {
		httpError(w, http.StatusUnprocessableEntity, "build %s: %s", snap.State, snap.Error)
		return
	}
	art := snap.result.Artifact
	if art == nil {
		httpError(w, http.StatusUnprocessableEntity, "run learned no matcher; nothing to serve")
		return
	}
	bn, err := serve.NewBundle(art)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.reg.Swap(bn)
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{"id": job.ID, "artifact": infoOf(art)})
}

// handleArtifactLoad reads a binary artifact (as written by Save or GET
// /jobs/{id}/artifact) from the request body, resolves it into a serving
// bundle off to the side, and atomically swaps it in.
func (s *Server) handleArtifactLoad(w http.ResponseWriter, r *http.Request) {
	art, err := model.LoadArtifact(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bn, err := serve.NewBundle(art)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.reg.Swap(bn)
	writeJSON(w, map[string]any{"artifact": infoOf(art)})
}

// Publish resolves art into a serving bundle and atomically swaps it in —
// the programmatic equivalent of PUT /artifacts/current, used by `falcon
// serve` to pre-load an artifact at boot.
func (s *Server) Publish(art *model.MatcherArtifact) error {
	bn, err := serve.NewBundle(art)
	if err != nil {
		return err
	}
	s.reg.Swap(bn)
	return nil
}

// handleArtifactInfo reports the currently served artifact's metadata.
func (s *Server) handleArtifactInfo(w http.ResponseWriter, r *http.Request) {
	bn := s.reg.Current()
	if bn == nil {
		httpError(w, http.StatusNotFound, "no artifact published; PUT /artifacts/current or POST /artifacts first")
		return
	}
	writeJSON(w, map[string]any{"artifact": infoOf(bn.Artifact())})
}

// handleJobArtifact downloads a finished job's artifact in the versioned
// binary format — the train→save leg of the train/serve contract.
func (s *Server) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	job, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if job.State != StateDone || job.result.Artifact == nil {
		httpError(w, http.StatusConflict, "job is %s or has no artifact", job.State)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.falcon", job.ID))
	_ = job.result.Artifact.Save(w)
}

// matchOneRequest is the POST /match/one body: one record's values keyed
// by the A-schema column names the artifact was trained with. Absent
// columns are treated as missing.
type matchOneRequest struct {
	Record map[string]string `json:"record"`
}

// matchOneMatch is one match in the response, with the B row's values.
type matchOneMatch struct {
	BRow   int               `json:"b_row"`
	Score  float64           `json:"score"`
	Values map[string]string `json:"values"`
}

// handleMatchOne matches one record against the published artifact on the
// lock-free serving path.
func (s *Server) handleMatchOne(w http.ResponseWriter, r *http.Request) {
	bn := s.reg.Current()
	if bn == nil {
		httpError(w, http.StatusServiceUnavailable, "no artifact published; PUT /artifacts/current or POST /artifacts first")
		return
	}
	var req matchOneRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Record) == 0 {
		httpError(w, http.StatusBadRequest, `body must be {"record": {"column": "value", ...}}; columns: %s`,
			strings.Join(bn.ColNames(), ", "))
		return
	}
	rec, err := bn.Record(req.Record)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	matches, err := bn.MatchOne(rec)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	bNames := bn.BNames()
	out := make([]matchOneMatch, 0, len(matches))
	for _, m := range matches {
		vals := map[string]string{}
		for i, v := range bn.BValues(m.BRow) {
			vals[bNames[i]] = v
		}
		out = append(out, matchOneMatch{BRow: m.BRow, Score: m.Score, Values: vals})
	}
	writeJSON(w, map[string]any{"count": len(out), "matches": out})
}
