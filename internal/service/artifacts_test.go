package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"falcon/internal/model"
)

// postArtifactBuild trains synchronously via POST /artifacts and returns
// the response body.
func postArtifactBuild(t *testing.T, ts *httptest.Server, n int) map[string]any {
	t.Helper()
	a, b := songsWithKey(n, 42)
	body, ctype := submitBody(t, a, b, map[string]string{"oracle_key": "match_key", "seed": "2"})
	resp, err := http.Post(ts.URL+"/artifacts", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("build status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// matchOne posts one record and returns the decoded response and status.
func matchOne(t *testing.T, ts *httptest.Server, record map[string]string) (map[string]any, int) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"record": record})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/match/one", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

func TestVersionEndpoint(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if int(out["artifact_version"].(float64)) != model.ArtifactVersion {
		t.Fatalf("artifact_version = %v, want %d", out["artifact_version"], model.ArtifactVersion)
	}
	if int(out["model_version"].(float64)) != model.Version {
		t.Fatalf("model_version = %v, want %d", out["model_version"], model.Version)
	}
	if !strings.HasPrefix(out["go"].(string), "go") {
		t.Fatalf("go = %v", out["go"])
	}
}

func TestMatchOneWithoutArtifact(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	out, code := matchOne(t, ts, map[string]string{"title": "x"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%v), want 503", code, out)
	}
	resp, err := http.Get(ts.URL + "/artifacts/current")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /artifacts/current = %d, want 404", resp.StatusCode)
	}
}

func TestArtifactServingLifecycle(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()

	built := postArtifactBuild(t, ts, 60)
	jobID := built["id"].(string)

	// Metadata of the published artifact.
	resp, err := http.Get(ts.URL + "/artifacts/current")
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	art := info["artifact"].(map[string]any)
	if int(art["artifact_version"].(float64)) != model.ArtifactVersion {
		t.Fatalf("published artifact version %v", art["artifact_version"])
	}
	if int(art["b_rows"].(float64)) == 0 || int(art["features"].(float64)) == 0 {
		t.Fatalf("empty artifact metadata: %v", art)
	}

	// Match a record taken straight from a frozen B row: it must at least
	// match itself... the record is A-shaped, so use a matching A row via
	// its own values.
	cols := art["columns"].([]any)
	a, _ := songsWithKey(60, 42)
	record := map[string]string{}
	for i, c := range cols {
		record[c.(string)] = a.Tuples[0].Values[i]
	}
	out, code := matchOne(t, ts, record)
	if code != http.StatusOK {
		t.Fatalf("match status %d: %v", code, out)
	}
	firstCount := int(out["count"].(float64))
	if matches, ok := out["matches"].([]any); !ok || len(matches) != firstCount {
		t.Fatalf("match response shape: %v", out)
	}

	// Download the job's artifact, reload it through PUT, and re-ask: the
	// answer must be identical (same artifact, fresh bundle).
	resp, err = http.Get(ts.URL + "/jobs/" + jobID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	artBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(artBytes) == 0 {
		t.Fatalf("artifact download status %d, %d bytes", resp.StatusCode, len(artBytes))
	}
	if _, err := model.LoadArtifact(bytes.NewReader(artBytes)); err != nil {
		t.Fatalf("downloaded artifact does not load: %v", err)
	}

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/artifacts/current", bytes.NewReader(artBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	swapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d: %s", resp.StatusCode, swapBody)
	}
	out2, code := matchOne(t, ts, record)
	if code != http.StatusOK || int(out2["count"].(float64)) != firstCount {
		t.Fatalf("answer changed after reload: %v vs %v", out2, out)
	}
}

func TestMatchOneBadRequests(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	postArtifactBuild(t, ts, 60)

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/match/one", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", code)
	}
	if code := post("{}"); code != http.StatusBadRequest {
		t.Fatalf("empty record: %d", code)
	}
	if code := post(`{"record": {"no_such_column": "x"}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown column: %d", code)
	}
	if code := post(`{"unknown_field": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/artifacts/current", strings.NewReader("garbage"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage artifact: %d", resp.StatusCode)
	}
}

// TestConcurrentMatchAndSwap hammers POST /match/one while another client
// keeps PUTting the artifact — the serving path's lock-free swap claim at
// the HTTP layer. The race gate runs this package under -race.
func TestConcurrentMatchAndSwap(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	built := postArtifactBuild(t, ts, 60)
	jobID := built["id"].(string)

	resp, err := http.Get(ts.URL + "/jobs/" + jobID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	artBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	a, _ := songsWithKey(60, 42)
	var infoOut map[string]any
	r2, err := http.Get(ts.URL + "/artifacts/current")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&infoOut); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	cols := infoOut["artifact"].(map[string]any)["columns"].([]any)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, err := http.NewRequest(http.MethodPut, ts.URL+"/artifacts/current", bytes.NewReader(artBytes))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("swap status %d", resp.StatusCode)
				return
			}
		}
	}()

	const readers = 4
	var rd sync.WaitGroup
	for r := 0; r < readers; r++ {
		rd.Add(1)
		go func(r int) {
			defer rd.Done()
			for i := 0; i < 25; i++ {
				row := (i*readers + r) % a.Len()
				record := map[string]string{}
				for ci, c := range cols {
					record[c.(string)] = a.Tuples[row].Values[ci]
				}
				body, err := json.Marshal(map[string]any{"record": record})
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/match/one", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("match status %d", resp.StatusCode)
					return
				}
			}
		}(r)
	}
	rd.Wait()
	close(stop)
	swapper.Wait()
}
