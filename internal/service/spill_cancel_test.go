package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"falcon/internal/core"
	"falcon/internal/learn"
	"falcon/internal/mapreduce"
	"falcon/internal/table"
)

// TestCancelRemovesSpillFiles runs a job whose pipeline is spilling shuffle
// runs to disk, cancels it mid-run via DELETE /jobs/{id}, and asserts the
// spill directory is empty afterward: the engine's job-scoped temp dir must
// be torn down on the cancellation path, all the way through the service.
func TestCancelRemovesSpillFiles(t *testing.T) {
	started := make(chan struct{})
	spillDir := t.TempDir()
	run := func(ctx context.Context, a, b *table.Table, oracle learn.Oracle, opt core.Options) (*core.Result, error) {
		c := mapreduce.Default()
		c.SpillRecords = 1 // every shuffle record becomes a run file
		c.SpillDir = spillDir
		rows := make([]int, 5000)
		for i := range rows {
			rows[i] = i
		}
		var once sync.Once
		job := mapreduce.Job[int, int, int, int]{
			Name:   "spill-park",
			Splits: mapreduce.SplitSlice(rows, 4),
			Map: func(i int, mc *mapreduce.MapCtx[int, int]) {
				mc.Emit(i%97, i)
				if i == 300 {
					// Enough runs are on disk; park until the DELETE lands.
					once.Do(func() { close(started) })
					<-ctx.Done()
				}
			},
			Reduce: func(k int, vs []int, rc *mapreduce.ReduceCtx[int]) {
				rc.Output(k + len(vs))
			},
		}
		if _, err := mapreduce.RunContext(ctx, c, job); err != nil {
			return nil, err
		}
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(New(withRunFunc(run)))
	defer ts.Close()

	a, b := songsWithKey(30, 7)
	id, _ := postJob(t, ts, a, b, map[string]string{"oracle_key": "match_key"})
	<-started

	resp := deleteJob(t, ts, id)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	waitForState(t, ts, id, StateCancelled)

	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d leftover spill entries after cancelled job", len(ents))
	}
}
