package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"falcon/internal/datagen"
	"falcon/internal/model"
	"falcon/internal/table"
)

// submitBody builds a multipart submission from two tables.
func submitBody(t *testing.T, a, b *table.Table, fields map[string]string) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	addTable := func(field string, tb *table.Table) {
		fw, err := mw.CreateFormFile(field, tb.Name+".csv")
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.WriteCSV(fw); err != nil {
			t.Fatal(err)
		}
	}
	addTable("tableA", a)
	addTable("tableB", b)
	for k, v := range fields {
		mw.WriteField(k, v)
	}
	mw.Close()
	return &buf, mw.FormDataContentType()
}

// songsWithKey builds a Songs dataset and appends a hidden match-key column
// the service's oracle can use.
func songsWithKey(n int, seed int64) (*table.Table, *table.Table) {
	d := datagen.Songs(n, seed)
	addKey := func(src *table.Table, isA bool) *table.Table {
		cols := append(src.Schema.Names(), "match_key")
		out := table.New(src.Name, table.NewSchema(cols...))
		for i := 0; i < src.Len(); i++ {
			key := ""
			if isA {
				key = fmt.Sprintf("k%d", i)
			} else {
				for p := range d.Truth {
					if p.B == i {
						key = fmt.Sprintf("k%d", p.A)
						break
					}
				}
				if key == "" {
					key = fmt.Sprintf("b%d", i)
				}
			}
			out.Append(append(append([]string(nil), src.Tuples[i].Values...), key)...)
		}
		out.InferTypes()
		return out
	}
	return addKey(d.A, true), addKey(d.B, false)
}

func newTestServer() *httptest.Server {
	return httptest.NewServer(New(Synchronous(), WithClock(func() time.Time {
		return time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	})))
}

func postJob(t *testing.T, ts *httptest.Server, a, b *table.Table, fields map[string]string) (string, *http.Response) {
	t.Helper()
	body, ctype := submitBody(t, a, b, fields)
	resp, err := http.Post(ts.URL+"/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return out["id"], resp
}

func TestHealthz(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestSubmitAndFetchLifecycle(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	a, b := songsWithKey(120, 3)
	id, _ := postJob(t, ts, a, b, map[string]string{
		"oracle_key": "match_key",
		"seed":       "4",
		"sample":     "1500",
		"max_iter":   "6",
	})

	// Status.
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != StateDone {
		t.Fatalf("job state = %s (%s)", job.State, job.Error)
	}
	if job.Matches == 0 || job.CrowdCost <= 0 {
		t.Fatalf("summary empty: %+v", job)
	}

	// Matches CSV.
	resp, err = http.Get(ts.URL + "/jobs/" + id + "/matches")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "a_row,b_row" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines)-1 != job.Matches {
		t.Fatalf("csv rows %d != summary matches %d", len(lines)-1, job.Matches)
	}

	// Model JSON loads.
	resp, err = http.Get(ts.URL + "/jobs/" + id + "/model")
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.Load(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("model endpoint: %v", err)
	}
	if m.Matcher == nil {
		t.Fatal("model missing matcher")
	}

	// List.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("list = %+v", jobs)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	a, b := songsWithKey(30, 5)

	// Missing oracle_key.
	body, ctype := submitBody(t, a, b, nil)
	resp, _ := http.Post(ts.URL+"/jobs", ctype, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing key: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown oracle_key column.
	body, ctype = submitBody(t, a, b, map[string]string{"oracle_key": "nope"})
	resp, _ = http.Post(ts.URL+"/jobs", ctype, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad numeric field.
	body, ctype = submitBody(t, a, b, map[string]string{"oracle_key": "match_key", "budget": "lots"})
	resp, _ = http.Post(ts.URL+"/jobs", ctype, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad budget: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing file.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("oracle_key", "match_key")
	mw.Close()
	resp, _ = http.Post(ts.URL+"/jobs", mw.FormDataContentType(), &buf)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing file: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestUnknownJob(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	for _, path := range []string{"/jobs/nope", "/jobs/nope/matches", "/jobs/nope/model"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestFailedJobReportsError(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	a, b := songsWithKey(120, 7)
	// Five-cent budget forces a budget failure.
	id, _ := postJob(t, ts, a, b, map[string]string{
		"oracle_key": "match_key",
		"budget":     "0.05",
		"sample":     "1500",
		"max_iter":   "6",
	})
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if job.State != StateFailed || job.Error == "" {
		t.Fatalf("job = %+v, want failed with error", job)
	}
	// Matches endpoint refuses.
	resp, _ = http.Get(ts.URL + "/jobs/" + id + "/matches")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("matches on failed job: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestAsyncJobEventuallyCompletes(t *testing.T) {
	// No Synchronous(): the job runs in a goroutine and the client polls.
	ts := httptest.NewServer(New())
	defer ts.Close()
	a, b := songsWithKey(60, 11)
	id, _ := postJob(t, ts, a, b, map[string]string{
		"oracle_key": "match_key",
		"sample":     "800",
		"max_iter":   "4",
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job Job
		json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		switch job.State {
		case StateDone:
			if job.Matches == 0 {
				t.Fatal("async job found nothing")
			}
			return
		case StateFailed:
			t.Fatalf("async job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", job.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestConcurrentSubmitAndPollNoTornSnapshots is the race-detector
// regression test for the service: several clients POST jobs to an
// asynchronous server while pollers hammer the list, status, and matches
// endpoints. Every observed snapshot must be internally consistent — a
// torn snapshot (summary fields visible before the state flips to done,
// or a done job missing its summary) means job state escaped s.mu.
// Run with -race to make the handler/worker interleavings count.
func TestConcurrentSubmitAndPollNoTornSnapshots(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	a, b := songsWithKey(50, 13)

	const jobs = 3
	type posted struct {
		body  *bytes.Buffer
		ctype string
	}
	reqs := make([]posted, jobs)
	for i := range reqs {
		body, ctype := submitBody(t, a, b, map[string]string{
			"oracle_key": "match_key",
			"seed":       fmt.Sprint(i + 1),
			"sample":     "600",
			"max_iter":   "3",
		})
		reqs[i] = posted{body, ctype}
	}

	// Goroutines must not call t.Fatal; violations funnel through errc.
	errc := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	checkJob := func(j Job) {
		switch j.State {
		case StatePending, StateRunning:
			if j.Matches != 0 || j.Strategy != "" || j.CrowdCost != 0 || j.TotalTime != 0 {
				report("torn snapshot: summary fields set while %s: %+v", j.State, j)
			}
		case StateDone:
			if j.Strategy == "" || j.TotalTime == 0 {
				report("torn snapshot: done job missing summary: %+v", j)
			}
		case StateFailed:
			if j.Error == "" {
				report("failed job carries no error: %+v", j)
			}
		default:
			report("unknown job state %q", j.State)
		}
	}

	// Submit all jobs concurrently.
	idc := make(chan string, jobs)
	var submitWG sync.WaitGroup
	for i := range reqs {
		submitWG.Add(1)
		go func(p posted) {
			defer submitWG.Done()
			resp, err := http.Post(ts.URL+"/jobs", p.ctype, p.body)
			if err != nil {
				report("submit: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				report("submit status %d", resp.StatusCode)
				return
			}
			var out map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				report("submit decode: %v", err)
				return
			}
			idc <- out["id"]
		}(reqs[i])
	}

	// Pollers hammer list + status + matches while the workers run.
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/jobs")
				if err != nil {
					report("list: %v", err)
					return
				}
				var list []Job
				if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
					report("list decode: %v", err)
				}
				resp.Body.Close()
				for _, j := range list {
					checkJob(j)
					mr, err := http.Get(ts.URL + "/jobs/" + j.ID + "/matches")
					if err != nil {
						report("matches: %v", err)
						continue
					}
					raw, _ := io.ReadAll(mr.Body)
					mr.Body.Close()
					switch mr.StatusCode {
					case http.StatusOK:
						rows := len(strings.Split(strings.TrimSpace(string(raw)), "\n")) - 1
						if j.State == StateDone && rows != j.Matches {
							report("matches csv rows %d != snapshot matches %d", rows, j.Matches)
						}
					case http.StatusConflict:
						// job not done at serve time: expected mid-run
					default:
						report("matches status %d", mr.StatusCode)
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	submitWG.Wait()
	close(idc)
	var ids []string
	for id := range idc {
		ids = append(ids, id)
	}

	// Wait until every job reaches a terminal state, checking each
	// snapshot on the way.
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			resp, err := http.Get(ts.URL + "/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var j Job
			if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			checkJob(j)
			if j.State == StateDone || j.State == StateFailed {
				if j.State == StateFailed {
					t.Fatalf("job %s failed: %s", id, j.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in state %s", id, j.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	close(stop)
	pollWG.Wait()

	if len(ids) != jobs {
		t.Fatalf("only %d/%d jobs submitted", len(ids), jobs)
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
