// Package service implements the EM-as-a-cloud-service front end the paper
// motivates (Example 1): users submit two tables and a crowdsourcing
// budget over HTTP; the service runs the hands-off EM workflow in the
// backend and serves the matches, the run report, and the learned model.
//
// Endpoints:
//
//	POST   /jobs            multipart form: tableA, tableB (CSV files),
//	                        oracle_key, budget, error_rate, seed, sample,
//	                        max_iter → {"id": ...}
//	GET    /jobs            list job summaries
//	GET    /jobs/{id}       status + report
//	DELETE /jobs/{id}       cancel a pending/running job
//	GET    /jobs/{id}/matches   matched row pairs as CSV
//	GET    /jobs/{id}/model     the learned model as JSON
//	GET    /jobs/{id}/artifact  the serving artifact (versioned binary)
//	POST   /artifacts       train synchronously and publish for serving
//	PUT    /artifacts/current   load a binary artifact and swap it in
//	GET    /artifacts/current   published artifact metadata
//	POST   /match/one       {"record": {col: val}} → matches from the
//	                        frozen B table (lock-free serving path)
//	GET    /version         artifact/model layout versions + build info
//	GET    /healthz         liveness
//
// The demo crowd is simulated from the oracle_key column (with optional
// worker error); a production deployment would swap in a crowd.Platform
// that posts real HITs.
package service

import (
	"cmp"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"falcon/internal/core"
	"falcon/internal/crowd"
	"falcon/internal/learn"
	"falcon/internal/serve"
	"falcon/internal/table"
)

// State is a job's lifecycle phase.
type State string

// Job states.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Job tracks one submitted EM task.
type Job struct {
	ID        string    `json:"id"`
	State     State     `json:"state"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`

	// Summary fields, populated when done.
	Matches      int           `json:"matches"`
	Candidates   int           `json:"candidates"`
	UsedBlocking bool          `json:"used_blocking"`
	Strategy     string        `json:"strategy,omitempty"`
	CrowdCost    float64       `json:"crowd_cost"`
	Questions    int           `json:"questions"`
	CrowdTime    time.Duration `json:"crowd_time_ns"`
	MachineTime  time.Duration `json:"machine_time_ns"`
	TotalTime    time.Duration `json:"total_time_ns"`

	a, b   *table.Table
	result *core.Result
	cancel context.CancelFunc
}

// Server is the HTTP EM service.
type Server struct {
	mux     *http.ServeMux
	now     func() time.Time
	sync    bool // run jobs synchronously (tests)
	timeout time.Duration
	run     runFunc

	// reg publishes the serving bundle for POST /match/one; swaps are
	// atomic, so match requests never block on artifact reloads.
	reg serve.Registry

	mu   sync.Mutex
	jobs map[string]*Job
	next int
}

// runFunc executes the EM pipeline; tests substitute a controllable one.
type runFunc func(ctx context.Context, a, b *table.Table, oracle learn.Oracle, opt core.Options) (*core.Result, error)

// Option configures the server.
type Option func(*Server)

// Synchronous makes job execution block the POST (deterministic tests).
func Synchronous() Option {
	return func(s *Server) { s.sync = true }
}

// WithClock overrides the submission timestamp source.
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// WithJobTimeout bounds each job's wall-clock runtime; a job past the
// deadline is cancelled and reported as failed. Zero means no limit.
func WithJobTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// withRunFunc substitutes the pipeline (tests).
func withRunFunc(fn runFunc) Option {
	return func(s *Server) { s.run = fn }
}

// New builds the service.
func New(opts ...Option) *Server {
	s := &Server{
		mux:  http.NewServeMux(),
		jobs: map[string]*Job{},
		now:  time.Now,
		run:  core.RunContext,
	}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/matches", s.handleMatches)
	s.mux.HandleFunc("GET /jobs/{id}/model", s.handleModel)
	s.mux.HandleFunc("GET /jobs/{id}/artifact", s.handleJobArtifact)
	s.mux.HandleFunc("POST /artifacts", s.handleArtifactBuild)
	s.mux.HandleFunc("PUT /artifacts/current", s.handleArtifactLoad)
	s.mux.HandleFunc("GET /artifacts/current", s.handleArtifactInfo)
	s.mux.HandleFunc("POST /match/one", s.handleMatchOne)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Encode/write errors after the response has started mean the client went
// away; there is nothing useful left to do with them, so the JSON and CSV
// writers below discard them explicitly.

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// submitParams parses the numeric knobs of a submission.
type submitParams struct {
	oracleKey string
	budget    float64
	errRate   float64
	seed      int64
	sampleN   int
	maxIter   int
}

func parseParams(r *http.Request) (submitParams, error) {
	p := submitParams{oracleKey: strings.TrimSpace(r.FormValue("oracle_key")), seed: 1}
	if p.oracleKey == "" {
		return p, fmt.Errorf("oracle_key is required (the demo crowd simulates from it)")
	}
	parseF := func(name string, into *float64) error {
		if v := r.FormValue(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad %s: %v", name, err)
			}
			*into = f
		}
		return nil
	}
	parseI := func(name string, into *int) error {
		if v := r.FormValue(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s: %v", name, err)
			}
			*into = n
		}
		return nil
	}
	if err := parseF("budget", &p.budget); err != nil {
		return p, err
	}
	if err := parseF("error_rate", &p.errRate); err != nil {
		return p, err
	}
	if v := r.FormValue("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed: %v", err)
		}
		p.seed = n
	}
	if err := parseI("sample", &p.sampleN); err != nil {
		return p, err
	}
	if err := parseI("max_iter", &p.maxIter); err != nil {
		return p, err
	}
	return p, nil
}

// acceptSubmission parses a multipart job submission, registers the job,
// and returns it with its ready-to-call run closure. ok=false means the
// HTTP error response was already written.
func (s *Server) acceptSubmission(w http.ResponseWriter, r *http.Request) (job *Job, params submitParams, run func(), ok bool) {
	if err := r.ParseMultipartForm(64 << 20); err != nil {
		httpError(w, http.StatusBadRequest, "parsing form: %v", err)
		return nil, params, nil, false
	}
	params, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, params, nil, false
	}
	readTable := func(field string) (*table.Table, error) {
		f, hdr, err := r.FormFile(field)
		if err != nil {
			return nil, fmt.Errorf("missing file %q", field)
		}
		defer f.Close()
		return table.ReadCSV(f, hdr.Filename)
	}
	a, err := readTable("tableA")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, params, nil, false
	}
	b, err := readTable("tableB")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, params, nil, false
	}
	if a.Schema.Col(params.oracleKey) < 0 || b.Schema.Col(params.oracleKey) < 0 {
		httpError(w, http.StatusBadRequest, "oracle_key %q not in both tables", params.oracleKey)
		return nil, params, nil, false
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	s.mu.Lock()
	s.next++
	job = &Job{
		ID:        fmt.Sprintf("job-%d", s.next),
		State:     StatePending,
		Submitted: s.now(),
		a:         a,
		b:         b,
		cancel:    cancel,
	}
	s.jobs[job.ID] = job
	s.mu.Unlock()

	run = func() {
		defer cancel()
		s.runJob(ctx, job, params)
	}
	return job, params, run, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job, _, run, ok := s.acceptSubmission(w, r)
	if !ok {
		return
	}
	if s.sync {
		run()
	} else {
		go run()
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"id": job.ID})
}

// runJob executes the EM pipeline for a submitted job.
func (s *Server) runJob(ctx context.Context, job *Job, p submitParams) {
	s.setState(job, StateRunning, "")
	aKey := job.a.Schema.Col(p.oracleKey)
	bKey := job.b.Schema.Col(p.oracleKey)
	oracle := func(pair table.Pair) bool {
		av := strings.TrimSpace(strings.ToLower(job.a.Value(pair.A, aKey)))
		bv := strings.TrimSpace(strings.ToLower(job.b.Value(pair.B, bKey)))
		return av != "" && av == bv
	}

	opt := core.DefaultOptions()
	opt.Seed = p.seed
	opt.Budget = p.budget
	opt.Platform = crowd.NewRandomWorkers(p.errRate, 0, p.seed+1)
	if p.sampleN > 0 {
		opt.SampleN = p.sampleN
	}
	if p.maxIter > 0 {
		opt.ALIterations = p.maxIter
	}

	res, err := s.run(ctx, job.a, job.b, oracle, opt)
	switch {
	case errors.Is(err, context.Canceled):
		s.setState(job, StateCancelled, "cancelled by client")
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.setState(job, StateFailed, fmt.Sprintf("timed out after %s", s.timeout))
		return
	case err != nil:
		s.setState(job, StateFailed, err.Error())
		return
	}
	s.mu.Lock()
	job.result = res
	job.State = StateDone
	job.Matches = len(res.Matches)
	job.Candidates = len(res.Candidates)
	job.UsedBlocking = res.UsedBlocking
	job.Strategy = res.Strategy.String()
	job.CrowdCost = res.Cost
	job.Questions = res.Questions
	job.CrowdTime = res.Timeline.CrowdTime
	job.MachineTime = res.Timeline.MachineTime
	job.TotalTime = res.Timeline.Total
	s.mu.Unlock()
}

func (s *Server) setState(job *Job, st State, errMsg string) {
	s.mu.Lock()
	job.State = st
	job.Error = errMsg
	s.mu.Unlock()
}

// snapshot copies a job's public state under the lock so handlers can
// serialize it while the worker goroutine keeps mutating the original. The
// result pointer is immutable once the state reaches done.
func (s *Server) snapshot(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	s.mu.Unlock()
	// Stable order by numeric suffix: IDs are "job-<n>", so shorter IDs sort
	// first and equal lengths compare lexically ("job-9" before "job-10").
	slices.SortFunc(out, func(a, b Job) int {
		if c := cmp.Compare(len(a.ID), len(b.ID)); c != 0 {
			return c
		}
		return strings.Compare(a.ID, b.ID)
	})
	writeJSON(w, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, job)
}

// handleCancel cancels a pending or running job. The job's context is
// cancelled immediately; the pipeline stops at its next task boundary and
// the state flips to cancelled.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var state State
	var cancel context.CancelFunc
	if ok {
		state = job.State
		cancel = job.cancel
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if state != StatePending && state != StateRunning {
		httpError(w, http.StatusConflict, "job is %s", state)
		return
	}
	cancel()
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"id": job.ID, "state": string(StateCancelled)})
}

func (s *Server) handleMatches(w http.ResponseWriter, r *http.Request) {
	job, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if job.State != StateDone {
		httpError(w, http.StatusConflict, "job is %s", job.State)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"a_row", "b_row"})
	for _, m := range job.result.Matches {
		_ = cw.Write([]string{strconv.Itoa(m.A), strconv.Itoa(m.B)})
	}
	cw.Flush()
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if job.State != StateDone || job.result.Model == nil {
		httpError(w, http.StatusConflict, "job is %s or has no model", job.State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = job.result.Model.Save(w)
}
