package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"falcon/internal/table"
)

func TestScore(t *testing.T) {
	truth := map[table.Pair]bool{
		{A: 1, B: 1}: true,
		{A: 2, B: 2}: true,
		{A: 3, B: 3}: true,
		{A: 4, B: 4}: true,
	}
	pred := []table.Pair{{A: 1, B: 1}, {A: 2, B: 2}, {A: 9, B: 9}}
	m := Score(pred, truth)
	if m.TP != 2 || m.FP != 1 || m.FN != 2 {
		t.Fatalf("counts = %+v", m)
	}
	if m.Precision != 2.0/3.0 {
		t.Fatalf("P = %v", m.Precision)
	}
	if m.Recall != 0.5 {
		t.Fatalf("R = %v", m.Recall)
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / (2.0/3.0 + 0.5)
	if diff := m.F1 - wantF1; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("F1 = %v, want %v", m.F1, wantF1)
	}
}

func TestScoreDeduplicates(t *testing.T) {
	truth := map[table.Pair]bool{{A: 1, B: 1}: true}
	m := Score([]table.Pair{{A: 1, B: 1}, {A: 1, B: 1}}, truth)
	if m.TP != 1 || m.FP != 0 {
		t.Fatalf("duplicate prediction double-counted: %+v", m)
	}
}

func TestScoreEmpty(t *testing.T) {
	m := Score(nil, nil)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("empty score = %+v", m)
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestBlockingRecall(t *testing.T) {
	truth := map[table.Pair]bool{{A: 1, B: 1}: true, {A: 2, B: 2}: true}
	cands := []table.Pair{{A: 1, B: 1}, {A: 5, B: 9}, {A: 1, B: 1}}
	if got := BlockingRecall(cands, truth); got != 0.5 {
		t.Fatalf("recall = %v", got)
	}
	if BlockingRecall(nil, nil) != 1 {
		t.Fatal("no truth should give recall 1")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2*time.Hour + 7*time.Minute:                 "2h 7m",
		52 * time.Minute:                            "52m",
		31*time.Minute + 52*time.Second:             "31m 52s",
		13*time.Hour + time.Minute + 23*time.Second: "13h 1m 23s",
		45 * time.Second:                            "45s",
		0:                                           "0s",
	}
	for d, want := range cases {
		if got := FmtDuration(d); got != want {
			t.Errorf("FmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[int64]string{
		536_000:    "536K",
		51_400_000: "51.4M",
		999:        "999",
		1_600_000:  "1.6M",
	}
	for n, want := range cases {
		if got := FmtCount(n); got != want {
			t.Errorf("FmtCount(%d) = %q, want %q", n, got, want)
		}
	}
}

// Property: F1 is the harmonic mean, bounded by min and max of P and R.
func TestQuickF1Bounds(t *testing.T) {
	f := func(tpRaw, fpRaw, fnRaw uint8) bool {
		tp, fp, fn := int(tpRaw%50), int(fpRaw%50), int(fnRaw%50)
		truth := map[table.Pair]bool{}
		var pred []table.Pair
		id := 0
		for i := 0; i < tp; i++ {
			p := table.Pair{A: id, B: id}
			truth[p] = true
			pred = append(pred, p)
			id++
		}
		for i := 0; i < fn; i++ {
			truth[table.Pair{A: id, B: id}] = true
			id++
		}
		for i := 0; i < fp; i++ {
			pred = append(pred, table.Pair{A: id, B: id})
			id++
		}
		m := Score(pred, truth)
		if m.F1 < 0 || m.F1 > 1 {
			return false
		}
		lo, hi := m.Precision, m.Recall
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.F1 >= lo*0.999-1e-9 && m.F1 <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
