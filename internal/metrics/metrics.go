// Package metrics computes the evaluation measures reported in the paper's
// §11: precision, recall, F1 over predicted match sets, and blocking recall
// (the fraction of true matches surviving the blocking step).
package metrics

import (
	"fmt"
	"time"

	"falcon/internal/table"
)

// PRF1 is a precision/recall/F1 triple.
type PRF1 struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	FN        int
}

// Score compares predicted match pairs against the ground-truth match set.
func Score(predicted []table.Pair, truth map[table.Pair]bool) PRF1 {
	var m PRF1
	seen := map[table.Pair]bool{}
	for _, p := range predicted {
		if seen[p] {
			continue
		}
		seen[p] = true
		if truth[p] {
			m.TP++
		} else {
			m.FP++
		}
	}
	m.FN = len(truth) - m.TP
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// String renders percentages like the paper's tables.
func (m PRF1) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%% F1=%.1f%%", m.Precision*100, m.Recall*100, m.F1*100)
}

// BlockingRecall measures the fraction of true matches that survive
// blocking (§3.2's recall numbers).
func BlockingRecall(candidates []table.Pair, truth map[table.Pair]bool) float64 {
	if len(truth) == 0 {
		return 1
	}
	surviving := 0
	seen := map[table.Pair]bool{}
	for _, p := range candidates {
		if seen[p] {
			continue
		}
		seen[p] = true
		if truth[p] {
			surviving++
		}
	}
	return float64(surviving) / float64(len(truth))
}

// FmtDuration renders durations the way the paper does ("2h 7m", "52m",
// "31m 52s").
func FmtDuration(d time.Duration) string {
	d = d.Round(time.Second)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := (d % time.Minute) / time.Second
	switch {
	case h > 0 && s > 0:
		return fmt.Sprintf("%dh %dm %ds", h, m, s)
	case h > 0:
		return fmt.Sprintf("%dh %dm", h, m)
	case m > 0 && s > 0:
		return fmt.Sprintf("%dm %ds", m, s)
	case m > 0:
		return fmt.Sprintf("%dm", m)
	default:
		return fmt.Sprintf("%ds", s)
	}
}

// FmtCount renders candidate-set sizes the way the paper does ("536K",
// "51.4M").
func FmtCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.0fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
