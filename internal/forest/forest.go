// Package forest implements the random-forest matcher Falcon learns via
// crowdsourced active learning (paper §3.2). Trees are CART-style binary
// decision trees over numeric feature vectors with Gini-impurity splits,
// bagged training sets, and per-node random feature subsets.
//
// Tree structure is exported because get_blocking_rules extracts root→"No"
// paths from the trees as candidate blocking rules (Figure 2).
package forest

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Example is one labeled feature vector.
type Example struct {
	Values []float64
	Label  bool // true = the pair matches
}

// Node is a decision-tree node. Leaf nodes have Feature == -1.
type Node struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature int
	// Threshold splits: value <= Threshold goes Left, else Right.
	Threshold float64
	Left      *Node
	Right     *Node
	// Match is the leaf prediction (valid only when Feature == -1).
	Match bool
	// NPos and NNeg record the training examples that reached this node,
	// useful for diagnostics and rule ranking.
	NPos, NNeg int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature == -1 }

// Tree is one decision tree.
type Tree struct {
	Root *Node
}

// Predict returns the tree's vote for the vector.
func (t *Tree) Predict(v []float64) bool {
	n := t.Root
	for !n.IsLeaf() {
		if v[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Match
}

// Config controls forest training.
type Config struct {
	// NumTrees is the forest size (default 10, as in Corleone).
	NumTrees int
	// MaxDepth bounds tree depth (default 10).
	MaxDepth int
	// MinLeaf is the minimum examples per leaf (default 2).
	MinLeaf int
	// FeatureFrac is the fraction of features sampled at each node; 0 means
	// sqrt(numFeatures)/numFeatures.
	FeatureFrac float64
	// Seed makes training deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumTrees <= 0 {
		c.NumTrees = 10
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	return c
}

// Forest is a trained random forest.
type Forest struct {
	Trees       []*Tree
	NumFeatures int
}

// Train fits a random forest on the examples. It panics on an empty training
// set (callers always seed active learning with labeled pairs first).
func Train(examples []Example, cfg Config) *Forest {
	if len(examples) == 0 {
		panic("forest: empty training set")
	}
	cfg = cfg.withDefaults()
	m := len(examples[0].Values)
	rng := rand.New(rand.NewSource(cfg.Seed))
	mtry := int(cfg.FeatureFrac * float64(m))
	if cfg.FeatureFrac <= 0 {
		mtry = int(math.Sqrt(float64(m)))
	}
	if mtry < 1 {
		mtry = 1
	}
	if mtry > m {
		mtry = m
	}
	f := &Forest{NumFeatures: m}
	for t := 0; t < cfg.NumTrees; t++ {
		bag := make([]int, len(examples))
		for i := range bag {
			bag[i] = rng.Intn(len(examples))
		}
		b := &builder{
			examples: examples,
			mtry:     mtry,
			maxDepth: cfg.MaxDepth,
			minLeaf:  cfg.MinLeaf,
			rng:      rand.New(rand.NewSource(rng.Int63())),
		}
		f.Trees = append(f.Trees, &Tree{Root: b.build(bag, 0)})
	}
	return f
}

type builder struct {
	examples []Example
	mtry     int
	maxDepth int
	minLeaf  int
	rng      *rand.Rand
}

func counts(examples []Example, idx []int) (pos, neg int) {
	for _, i := range idx {
		if examples[i].Label {
			pos++
		} else {
			neg++
		}
	}
	return
}

func gini(pos, neg int) float64 {
	n := pos + neg
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

func (b *builder) leaf(idx []int) *Node {
	pos, neg := counts(b.examples, idx)
	return &Node{Feature: -1, Match: pos > neg, NPos: pos, NNeg: neg}
}

func (b *builder) build(idx []int, depth int) *Node {
	pos, neg := counts(b.examples, idx)
	if depth >= b.maxDepth || pos == 0 || neg == 0 || len(idx) < 2*b.minLeaf {
		return &Node{Feature: -1, Match: pos > neg, NPos: pos, NNeg: neg}
	}
	feat, thr, ok := b.bestSplit(idx, gini(pos, neg))
	if !ok {
		return &Node{Feature: -1, Match: pos > neg, NPos: pos, NNeg: neg}
	}
	var left, right []int
	for _, i := range idx {
		if b.examples[i].Values[feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return &Node{Feature: -1, Match: pos > neg, NPos: pos, NNeg: neg}
	}
	return &Node{
		Feature:   feat,
		Threshold: thr,
		Left:      b.build(left, depth+1),
		Right:     b.build(right, depth+1),
		NPos:      pos,
		NNeg:      neg,
	}
}

// bestSplit scans a random feature subset for the split with the largest
// Gini decrease. Thresholds are midpoints between adjacent distinct values.
func (b *builder) bestSplit(idx []int, parentGini float64) (feat int, thr float64, ok bool) {
	m := len(b.examples[0].Values)
	perm := b.rng.Perm(m)[:b.mtry]
	bestGain := 1e-12
	type valLabel struct {
		v     float64
		label bool
	}
	vals := make([]valLabel, 0, len(idx))
	for _, fi := range perm {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, valLabel{b.examples[i].Values[fi], b.examples[i].Label})
		}
		slices.SortFunc(vals, func(a, b valLabel) int { return cmp.Compare(a.v, b.v) })
		totalPos, totalNeg := 0, 0
		for _, v := range vals {
			if v.label {
				totalPos++
			} else {
				totalNeg++
			}
		}
		leftPos, leftNeg := 0, 0
		n := len(vals)
		for i := 0; i < n-1; i++ {
			if vals[i].label {
				leftPos++
			} else {
				leftNeg++
			}
			if vals[i].v == vals[i+1].v {
				continue
			}
			nl, nr := i+1, n-i-1
			g := (float64(nl)*gini(leftPos, leftNeg) + float64(nr)*gini(totalPos-leftPos, totalNeg-leftNeg)) / float64(n)
			if gain := parentGini - g; gain > bestGain {
				bestGain = gain
				feat = fi
				thr = (vals[i].v + vals[i+1].v) / 2
				ok = true
			}
		}
	}
	return
}

// Votes returns the number of trees voting "match" for the vector.
func (f *Forest) Votes(v []float64) int {
	n := 0
	for _, t := range f.Trees {
		if t.Predict(v) {
			n++
		}
	}
	return n
}

// Predict returns the majority vote.
func (f *Forest) Predict(v []float64) bool {
	return 2*f.Votes(v) > len(f.Trees)
}

// Confidence returns the fraction of trees voting "match", in [0,1].
// Values near 0.5 identify the controversial pairs active learning selects.
func (f *Forest) Confidence(v []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	return float64(f.Votes(v)) / float64(len(f.Trees))
}

// Entropy returns the binary vote entropy, maximal at confidence 0.5.
func (f *Forest) Entropy(v []float64) float64 {
	p := f.Confidence(v)
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Size returns the total node count across trees (diagnostics).
func (f *Forest) Size() int {
	total := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		total++
		if !n.IsLeaf() {
			walk(n.Left)
			walk(n.Right)
		}
	}
	for _, t := range f.Trees {
		walk(t.Root)
	}
	return total
}

// String summarizes the forest.
func (f *Forest) String() string {
	return fmt.Sprintf("Forest(%d trees, %d features, %d nodes)", len(f.Trees), f.NumFeatures, f.Size())
}
