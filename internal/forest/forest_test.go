package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearData generates a separable two-feature problem: label = (x0 > 0.5).
func linearData(n int, seed int64, noise float64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, n)
	for i := range out {
		x0, x1 := rng.Float64(), rng.Float64()
		label := x0 > 0.5
		if rng.Float64() < noise {
			label = !label
		}
		out[i] = Example{Values: []float64{x0, x1}, Label: label}
	}
	return out
}

func accuracy(f *Forest, data []Example) float64 {
	correct := 0
	for _, e := range data {
		if f.Predict(e.Values) == e.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

func TestTrainSeparable(t *testing.T) {
	train := linearData(400, 1, 0)
	test := linearData(200, 2, 0)
	f := Train(train, Config{Seed: 7})
	if acc := accuracy(f, test); acc < 0.95 {
		t.Fatalf("accuracy %v on separable data, want ≥0.95", acc)
	}
	if len(f.Trees) != 10 {
		t.Fatalf("default forest size %d, want 10", len(f.Trees))
	}
	if f.NumFeatures != 2 {
		t.Fatalf("NumFeatures = %d", f.NumFeatures)
	}
}

func TestTrainNoisy(t *testing.T) {
	train := linearData(600, 3, 0.1)
	test := linearData(300, 4, 0)
	f := Train(train, Config{Seed: 7, NumTrees: 15})
	if acc := accuracy(f, test); acc < 0.85 {
		t.Fatalf("accuracy %v on noisy data, want ≥0.85", acc)
	}
}

func TestTrainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(nil, Config{})
}

func TestDeterminism(t *testing.T) {
	train := linearData(200, 5, 0.05)
	f1 := Train(train, Config{Seed: 42})
	f2 := Train(train, Config{Seed: 42})
	probe := linearData(100, 6, 0)
	for _, e := range probe {
		if f1.Confidence(e.Values) != f2.Confidence(e.Values) {
			t.Fatal("same seed should give identical forests")
		}
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	// All positive: root must be a match leaf.
	exs := []Example{
		{Values: []float64{0.1}, Label: true},
		{Values: []float64{0.9}, Label: true},
	}
	f := Train(exs, Config{Seed: 1, NumTrees: 3})
	for _, tree := range f.Trees {
		if !tree.Root.IsLeaf() || !tree.Root.Match {
			t.Fatal("pure-positive training should yield match leaves")
		}
	}
}

func TestConstantFeatureNoSplit(t *testing.T) {
	// Identical vectors with mixed labels: no split exists.
	exs := []Example{
		{Values: []float64{0.5}, Label: true},
		{Values: []float64{0.5}, Label: false},
		{Values: []float64{0.5}, Label: false},
		{Values: []float64{0.5}, Label: false},
	}
	f := Train(exs, Config{Seed: 1, NumTrees: 1})
	root := f.Trees[0].Root
	if !root.IsLeaf() {
		t.Fatal("unsplittable data should produce a leaf")
	}
	if f.Predict([]float64{0.5}) {
		t.Fatal("majority-negative leaf should predict no-match")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	train := linearData(500, 8, 0.2)
	f := Train(train, Config{Seed: 1, MaxDepth: 2, NumTrees: 5})
	var depth func(n *Node) int
	depth = func(n *Node) int {
		if n.IsLeaf() {
			return 0
		}
		l, r := depth(n.Left), depth(n.Right)
		if r > l {
			l = r
		}
		return 1 + l
	}
	for _, tree := range f.Trees {
		if d := depth(tree.Root); d > 2 {
			t.Fatalf("tree depth %d exceeds MaxDepth 2", d)
		}
	}
}

func TestVotesAndConfidence(t *testing.T) {
	train := linearData(300, 9, 0)
	f := Train(train, Config{Seed: 1})
	v := []float64{0.95, 0.5}
	votes := f.Votes(v)
	if votes < 8 {
		t.Fatalf("clear positive got only %d/10 votes", votes)
	}
	if got := f.Confidence(v); got != float64(votes)/10 {
		t.Fatalf("Confidence = %v, want %v", got, float64(votes)/10)
	}
}

func TestEntropy(t *testing.T) {
	f := &Forest{Trees: nil}
	if f.Entropy([]float64{0}) != 0 {
		t.Fatal("empty forest entropy should be 0")
	}
	// Build a fake forest with half/half votes.
	leafYes := &Tree{Root: &Node{Feature: -1, Match: true}}
	leafNo := &Tree{Root: &Node{Feature: -1, Match: false}}
	f = &Forest{Trees: []*Tree{leafYes, leafNo}}
	if got := f.Entropy([]float64{0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("50/50 entropy = %v, want 1", got)
	}
	f = &Forest{Trees: []*Tree{leafYes, leafYes}}
	if got := f.Entropy([]float64{0}); got != 0 {
		t.Fatalf("unanimous entropy = %v, want 0", got)
	}
}

func TestSizeAndString(t *testing.T) {
	train := linearData(100, 10, 0)
	f := Train(train, Config{Seed: 1, NumTrees: 2})
	if f.Size() < 2 {
		t.Fatalf("Size = %d", f.Size())
	}
	if f.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPredictUsesThresholdDirection(t *testing.T) {
	// Manual tree: x0 <= 0.5 → no-match, else match.
	tree := &Tree{Root: &Node{
		Feature:   0,
		Threshold: 0.5,
		Left:      &Node{Feature: -1, Match: false},
		Right:     &Node{Feature: -1, Match: true},
	}}
	if tree.Predict([]float64{0.5}) {
		t.Fatal("boundary value should go left")
	}
	if !tree.Predict([]float64{0.51}) {
		t.Fatal("value above threshold should go right")
	}
}

// Property: forest predictions are invariant to example order (training is
// seeded on indices, so this checks bagging uses the permuted copy correctly
// — it shouldn't be identical, but accuracy must stay high).
func TestQuickAccuracyStableUnderReseed(t *testing.T) {
	test := linearData(200, 99, 0)
	f := func(seed int64) bool {
		train := linearData(300, seed, 0.05)
		forest := Train(train, Config{Seed: seed})
		return accuracy(forest, test) > 0.8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: Confidence is always in [0,1] and Predict agrees with it.
func TestQuickConfidenceConsistency(t *testing.T) {
	train := linearData(300, 11, 0.1)
	forest := Train(train, Config{Seed: 3})
	f := func(a, b float64) bool {
		v := []float64{math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))}
		c := forest.Confidence(v)
		if c < 0 || c > 1 {
			return false
		}
		return forest.Predict(v) == (c > 0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrain(b *testing.B) {
	train := linearData(1000, 1, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Train(train, Config{Seed: int64(i)})
	}
}

func BenchmarkPredict(b *testing.B) {
	train := linearData(1000, 1, 0.05)
	f := Train(train, Config{Seed: 1})
	v := []float64{0.4, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(v)
	}
}
