package index

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"time"

	"falcon/internal/mapreduce"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// The §7.5 index-build pipeline as MapReduce jobs:
//
//  1. count token frequencies over A's column,
//  2. sort tokens by frequency into the global token ordering,
//  3. build the prefix inverted index (and the length information it
//     embeds) with one more pass.
//
// Hash and tree indexes are single-scan map jobs. Every builder returns the
// modeled cluster time of its jobs so the optimizer can schedule index
// building inside crowd time (§10.2 optimization 1).

type tokenCount struct {
	Tok   string
	Count int
}

// BuildOrderingMR runs jobs 1–2 and returns the global token ordering.
func BuildOrderingMR(ctx context.Context, c *mapreduce.Cluster, t *table.Table, col int, kind tokenize.Kind) (*Ordering, time.Duration, error) {
	rows := rowSplits(t, c.Slots())
	freqJob := mapreduce.Job[int, string, int, tokenCount]{
		Name:   fmt.Sprintf("token-freq(%s,%s)", t.Schema.Attrs[col].Name, kind),
		Splits: rows,
		Map: func(row int, ctx *mapreduce.MapCtx[string, int]) {
			v := t.Value(row, col)
			if table.IsMissing(v) {
				return
			}
			toks := tokenize.Set(kind, v)
			ctx.AddCost(int64(len(toks)))
			for _, tok := range toks {
				ctx.Emit(tok, 1)
			}
		},
		Reduce: func(tok string, ones []int, ctx *mapreduce.ReduceCtx[tokenCount]) {
			ctx.Output(tokenCount{Tok: tok, Count: len(ones)})
		},
	}
	fr, err := mapreduce.RunContext(ctx, c, freqJob)
	if err != nil {
		return nil, 0, err
	}

	type freqKey struct {
		Count int
		Tok   string
	}
	sortJob := mapreduce.Job[tokenCount, freqKey, struct{}, string]{
		Name:     "token-order",
		Splits:   mapreduce.SplitSlice(fr.Output, c.Slots()),
		Reducers: 1,
		Map: func(tc tokenCount, ctx *mapreduce.MapCtx[freqKey, struct{}]) {
			ctx.Emit(freqKey{tc.Count, tc.Tok}, struct{}{})
		},
		Less: func(a, b freqKey) bool {
			if a.Count != b.Count {
				return a.Count < b.Count
			}
			return a.Tok < b.Tok
		},
		Reduce: func(k freqKey, _ []struct{}, ctx *mapreduce.ReduceCtx[string]) {
			ctx.Output(k.Tok)
		},
	}
	sr, err := mapreduce.RunContext(ctx, c, sortJob)
	if err != nil {
		return nil, 0, err
	}
	return OrderingOf(sr.Output), fr.Stats.SimTime + sr.Stats.SimTime, nil
}

type postingRec struct {
	Tok string
	P   Posting
}

// BuildPrefixMR runs job 3 and returns the prefix index.
func BuildPrefixMR(ctx context.Context, c *mapreduce.Cluster, t *table.Table, col int, kind tokenize.Kind, ord *Ordering, m simfn.Measure, threshold float64) (*PrefixIndex, time.Duration, error) {
	setLen := make([]int32, t.Len())
	job := mapreduce.Job[int, string, Posting, postingRec]{
		Name:   fmt.Sprintf("prefix-index(%s,%s,%.2f)", t.Schema.Attrs[col].Name, kind, threshold),
		Splits: rowSplits(t, c.Slots()),
		Map: func(row int, ctx *mapreduce.MapCtx[string, Posting]) {
			v := t.Value(row, col)
			if table.IsMissing(v) {
				return
			}
			tokens := ord.Reorder(tokenize.Set(kind, v))
			setLen[row] = int32(len(tokens))
			ctx.AddCost(int64(len(tokens)))
			p := PrefixLen(m, len(tokens), threshold)
			for pos := 0; pos < p; pos++ {
				ctx.Emit(tokens[pos], Posting{ID: int32(row), Pos: int32(pos)})
			}
		},
		Reduce: func(tok string, ps []Posting, ctx *mapreduce.ReduceCtx[postingRec]) {
			// Writing the posting list out costs a unit per posting on top
			// of the engine's per-value grouping charge.
			ctx.AddCost(int64(len(ps)))
			for _, p := range ps {
				ctx.Output(postingRec{Tok: tok, P: p})
			}
		},
	}
	res, err := mapreduce.RunContext(ctx, c, job)
	if err != nil {
		return nil, 0, err
	}
	idx := newPrefixIndex(t, kind, ord, threshold)
	idx.setLen = setLen
	for _, pr := range res.Output {
		idx.addPosting(pr.Tok, pr.P)
	}
	// Postings arrive grouped by token but per-token order must follow
	// tuple ID for deterministic probing.
	byID := func(a, b Posting) int { return cmp.Compare(a.ID, b.ID) }
	for _, ps := range idx.post {
		slices.SortFunc(ps, byID)
	}
	for _, ps := range idx.extPost {
		slices.SortFunc(ps, byID)
	}
	idx.bytes += int64(len(setLen)) * 4
	return idx, res.Stats.SimTime, nil
}

// BuildHashMR builds a hash index, charging one scan of the table.
func BuildHashMR(ctx context.Context, c *mapreduce.Cluster, t *table.Table, col int) (*HashIndex, time.Duration, error) {
	res, err := mapreduce.RunMapOnlyContext(ctx, c, mapreduce.MapOnlyJob[int, struct{}]{
		Name:   fmt.Sprintf("hash-index(%s)", t.Schema.Attrs[col].Name),
		Splits: rowSplits(t, c.Slots()),
		Map:    func(row int, ctx *mapreduce.MapOnlyCtx[struct{}]) {},
	})
	if err != nil {
		return nil, 0, err
	}
	return BuildHash(t, col), res.Stats.SimTime, nil
}

// BuildTreeMR builds a tree (range) index, charging one scan plus sort.
func BuildTreeMR(ctx context.Context, c *mapreduce.Cluster, t *table.Table, col int) (*TreeIndex, time.Duration, error) {
	res, err := mapreduce.RunMapOnlyContext(ctx, c, mapreduce.MapOnlyJob[int, struct{}]{
		Name:   fmt.Sprintf("tree-index(%s)", t.Schema.Attrs[col].Name),
		Splits: rowSplits(t, c.Slots()),
		Map:    func(row int, ctx *mapreduce.MapOnlyCtx[struct{}]) { ctx.AddCost(1) },
	})
	if err != nil {
		return nil, 0, err
	}
	return BuildTree(t, col), res.Stats.SimTime, nil
}

func rowSplits(t *table.Table, n int) [][]int {
	rows := make([]int, t.Len())
	for i := range rows {
		rows[i] = i
	}
	return mapreduce.SplitSlice(rows, n)
}
