// Package index implements the filter indexes of Falcon §7.4–7.5: hash
// indexes (equivalence filter), tree indexes (range filter), length indexes
// (length filter), global token orderings, and prefix inverted indexes
// (prefix + position filters). Indexes are built over table A (the indexed
// side) and probed with tuples of B.
//
// Every index reports an estimated in-memory size so physical-operator
// selection (§10.1) can respect the per-mapper memory budget.
package index

import (
	"cmp"
	"slices"
	"sort"
	"strconv"
	"strings"

	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// HashIndex supports the equivalence filter: value → tuple IDs.
type HashIndex struct {
	m     map[string][]int32
	bytes int64
}

// BuildHash indexes the normalized values of column col of t. Missing
// values are not indexed (a missing value never satisfies exact_match = 1).
func BuildHash(t *table.Table, col int) *HashIndex {
	h := &HashIndex{m: make(map[string][]int32)}
	for i := 0; i < t.Len(); i++ {
		v := normalize(t.Value(i, col))
		if v == "" {
			continue
		}
		if _, ok := h.m[v]; !ok {
			h.bytes += int64(len(v)) + 48
		}
		h.m[v] = append(h.m[v], int32(i))
		h.bytes += 4
	}
	return h
}

// Probe returns the IDs of tuples whose value equals v (normalized).
func (h *HashIndex) Probe(v string) []int32 { return h.m[normalize(v)] }

// SizeBytes estimates the index memory footprint.
func (h *HashIndex) SizeBytes() int64 { return h.bytes }

func normalize(v string) string {
	if table.IsMissing(v) {
		return ""
	}
	return strings.ToLower(strings.TrimSpace(v))
}

// TreeIndex supports the range filter: a sorted array of (value, id),
// standing in for a B-tree. Tuples whose value does not parse are kept
// aside: their numeric features evaluate to the Missing sentinel, which
// keep-side predicates like "abs_diff ≤ v" accept, so candidate generation
// must be able to include them.
type TreeIndex struct {
	vals        []float64
	ids         []int32
	unparseable []int32
}

// BuildTree indexes the parseable numeric values of column col.
func BuildTree(t *table.Table, col int) *TreeIndex {
	type pair struct {
		v  float64
		id int32
	}
	var ps []pair
	var unparseable []int32
	for i := 0; i < t.Len(); i++ {
		if f, ok := parseNum(t.Value(i, col)); ok {
			ps = append(ps, pair{f, int32(i)})
		} else {
			unparseable = append(unparseable, int32(i))
		}
	}
	slices.SortFunc(ps, func(a, b pair) int {
		if c := cmp.Compare(a.v, b.v); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
	idx := &TreeIndex{vals: make([]float64, len(ps)), ids: make([]int32, len(ps)), unparseable: unparseable}
	for i, p := range ps {
		idx.vals[i] = p.v
		idx.ids[i] = p.id
	}
	return idx
}

// Unparseable returns the IDs of tuples whose value did not parse.
func (ti *TreeIndex) Unparseable() []int32 { return ti.unparseable }

func parseNum(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if table.IsMissing(s) {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// ProbeRange returns IDs with value in [lo, hi].
func (ti *TreeIndex) ProbeRange(lo, hi float64) []int32 {
	start := sort.SearchFloat64s(ti.vals, lo)
	var out []int32
	for i := start; i < len(ti.vals) && ti.vals[i] <= hi; i++ {
		out = append(out, ti.ids[i])
	}
	return out
}

// SizeBytes estimates the index memory footprint.
func (ti *TreeIndex) SizeBytes() int64 { return int64(len(ti.vals)) * 12 }

// Ordering is the global token ordering of §7.5: tokens ranked by increasing
// corpus frequency, so prefixes hold the rarest tokens. It is backed by a
// token dictionary whose dense uint32 IDs equal the ranks, so rank-sorted
// token sets can be represented as sorted []uint32 ID sets.
type Ordering struct {
	dict *tokenize.Dict
}

// BuildOrdering ranks tokens by (frequency asc, token asc).
func BuildOrdering(freq map[string]int) *Ordering {
	tokens := make([]string, 0, len(freq))
	for t := range freq {
		tokens = append(tokens, t)
	}
	slices.SortFunc(tokens, func(a, b string) int {
		if c := cmp.Compare(freq[a], freq[b]); c != 0 {
			return c
		}
		return strings.Compare(a, b)
	})
	return OrderingOf(tokens)
}

// OrderingOf builds an ordering from an already rank-sorted token list (the
// §7.5 token-order job's output): the i-th token gets rank/ID i.
func OrderingOf(ranked []string) *Ordering {
	return &Ordering{dict: tokenize.DictOf(ranked)}
}

// Rank returns the token's rank; unknown tokens rank after all known ones.
func (o *Ordering) Rank(t string) int32 {
	if id, ok := o.dict.ID(t); ok {
		return int32(id)
	}
	return int32(o.dict.Len())
}

// Len returns the number of ranked tokens.
func (o *Ordering) Len() int { return o.dict.Len() }

// Dict returns the backing dictionary (rank i ↔ token ID i).
func (o *Ordering) Dict() *tokenize.Dict { return o.dict }

// Reorder sorts a token set by rank ascending (rarest first); unknown
// tokens go last, ordered lexicographically for determinism.
func (o *Ordering) Reorder(tokens []string) []string {
	out := append([]string(nil), tokens...)
	slices.SortFunc(out, func(a, b string) int {
		if c := cmp.Compare(o.Rank(a), o.Rank(b)); c != 0 {
			return c
		}
		return strings.Compare(a, b)
	})
	return out
}

// SizeBytes estimates the ordering memory footprint.
func (o *Ordering) SizeBytes() int64 {
	var b int64
	for _, t := range o.dict.Tokens() {
		b += int64(len(t)) + 20
	}
	return b
}

// TokenFrequencies counts token frequencies of column col under the given
// tokenization across the table — the §7.5 first MR job's computation.
func TokenFrequencies(t *table.Table, col int, kind tokenize.Kind) map[string]int {
	freq := map[string]int{}
	for i := 0; i < t.Len(); i++ {
		v := t.Value(i, col)
		if table.IsMissing(v) {
			continue
		}
		for _, tok := range tokenize.Set(kind, v) {
			freq[tok]++
		}
	}
	return freq
}
