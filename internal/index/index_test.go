package index

import (
	"context"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"falcon/internal/datagen"
	"falcon/internal/mapreduce"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

func yearPriceTable() *table.Table {
	t := table.New("A", table.NewSchema("year", "price", "title"))
	t.Append("1999", "10.5", "the art of war")
	t.Append("2005", "30", "war and peace")
	t.Append("1999", "12", "the go programming language")
	t.Append("", "abc", "art history of war and peace treaties")
	t.Append("2010", "50", "peace")
	t.InferTypes()
	return t
}

func TestHashIndex(t *testing.T) {
	tb := yearPriceTable()
	h := BuildHash(tb, 0)
	got := h.Probe("1999")
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Probe(1999) = %v", got)
	}
	if h.Probe("2020") != nil {
		t.Fatal("unknown year should probe empty")
	}
	if h.Probe("") != nil {
		t.Fatal("missing value should not be indexed")
	}
	if h.Probe(" 1999 ") == nil {
		t.Fatal("probe should normalize whitespace")
	}
	if h.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not estimated")
	}
}

func TestTreeIndex(t *testing.T) {
	tb := yearPriceTable()
	ti := BuildTree(tb, 1)
	got := ti.ProbeRange(10, 15)
	if len(got) != 2 {
		t.Fatalf("ProbeRange(10,15) = %v", got)
	}
	if got[0] != 0 || got[1] != 2 {
		t.Fatalf("ProbeRange order = %v", got)
	}
	if ti.ProbeRange(100, 200) != nil {
		t.Fatal("out-of-range probe should be empty")
	}
	all := ti.ProbeRange(-1e9, 1e9)
	if len(all) != 4 { // "abc" row is unparseable
		t.Fatalf("all probe = %v", all)
	}
	if ti.SizeBytes() != 4*12 {
		t.Fatalf("SizeBytes = %d", ti.SizeBytes())
	}
}

func TestOrdering(t *testing.T) {
	freq := map[string]int{"the": 10, "war": 3, "zebra": 1, "art": 3}
	o := BuildOrdering(freq)
	if o.Len() != 4 {
		t.Fatalf("Len = %d", o.Len())
	}
	// zebra (1) < art (3, lex) < war (3) < the (10)
	if !(o.Rank("zebra") < o.Rank("art") && o.Rank("art") < o.Rank("war") && o.Rank("war") < o.Rank("the")) {
		t.Fatalf("ranks wrong: zebra=%d art=%d war=%d the=%d", o.Rank("zebra"), o.Rank("art"), o.Rank("war"), o.Rank("the"))
	}
	if o.Rank("unknown") != 4 {
		t.Fatalf("unknown rank = %d, want 4", o.Rank("unknown"))
	}
	re := o.Reorder([]string{"the", "war", "zebra"})
	if re[0] != "zebra" || re[2] != "the" {
		t.Fatalf("Reorder = %v", re)
	}
	if o.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not estimated")
	}
}

func TestTokenFrequencies(t *testing.T) {
	tb := yearPriceTable()
	freq := TokenFrequencies(tb, 2, tokenize.Word)
	if freq["war"] != 3 {
		t.Fatalf(`freq["war"] = %d, want 3`, freq["war"])
	}
	if freq["go"] != 1 {
		t.Fatalf(`freq["go"] = %d`, freq["go"])
	}
}

func TestPrefixLen(t *testing.T) {
	// Jaccard t=0.6, l=10: alpha=6 → prefix 5.
	if got := PrefixLen(simfn.MJaccard, 10, 0.6); got != 5 {
		t.Fatalf("jaccard prefix = %d, want 5", got)
	}
	// Overlap: conservative full set.
	if got := PrefixLen(simfn.MOverlap, 10, 0.6); got != 10 {
		t.Fatalf("overlap prefix = %d, want 10", got)
	}
	if PrefixLen(simfn.MJaccard, 0, 0.6) != 0 {
		t.Fatal("empty set prefix should be 0")
	}
	if PrefixLen(simfn.MJaccard, 5, 0) != 5 {
		t.Fatal("zero threshold should use full set")
	}
	// Prefix never exceeds l nor drops below 1 for non-empty sets.
	if got := PrefixLen(simfn.MJaccard, 3, 0.99); got != 1 {
		t.Fatalf("tight threshold prefix = %d, want 1", got)
	}
}

func TestLengthBounds(t *testing.T) {
	lo, hi, ok := LengthBounds(simfn.MJaccard, 10, 0.5)
	if !ok || lo != 5 || hi != 20 {
		t.Fatalf("jaccard bounds = [%d,%d] ok=%v", lo, hi, ok)
	}
	if _, _, ok := LengthBounds(simfn.MOverlap, 10, 0.5); ok {
		t.Fatal("overlap should admit no length bound")
	}
	if _, _, ok := LengthBounds(simfn.MJaccard, 0, 0.5); ok {
		t.Fatal("empty probe should admit no bound")
	}
}

func titlesTable(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa", "war", "peace", "art"}
	t := table.New("A", table.NewSchema("title"))
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(6)
		var ts []string
		for j := 0; j < k; j++ {
			ts = append(ts, words[rng.Intn(len(words))])
		}
		t.Append(joinWords(ts))
	}
	t.InferTypes()
	return t
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// TestPrefixIndexCompleteness is the critical correctness property of §7.4:
// the filters are necessary conditions, so every tuple that actually
// satisfies the predicate must be in the candidate set.
func TestPrefixIndexCompleteness(t *testing.T) {
	for _, m := range []simfn.Measure{simfn.MJaccard, simfn.MDice, simfn.MCosine, simfn.MOverlap} {
		for _, thr := range []float64{0.3, 0.5, 0.7, 0.9} {
			a := titlesTable(120, 1)
			probeT := titlesTable(40, 2)
			ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
			idx := BuildPrefix(a, 0, tokenize.Word, ord, m, thr)
			for row := 0; row < probeT.Len(); row++ {
				val := probeT.Value(row, 0)
				cands, _ := idx.Probe(m, thr, val)
				candSet := map[int32]bool{}
				for _, c := range cands {
					candSet[c] = true
				}
				bToks := tokenize.Set(tokenize.Word, val)
				for aRow := 0; aRow < a.Len(); aRow++ {
					aToks := tokenize.Set(tokenize.Word, a.Value(aRow, 0))
					var sim float64
					switch m {
					case simfn.MJaccard:
						sim = simfn.Jaccard(aToks, bToks)
					case simfn.MDice:
						sim = simfn.Dice(aToks, bToks)
					case simfn.MCosine:
						sim = simfn.Cosine(aToks, bToks)
					case simfn.MOverlap:
						sim = simfn.Overlap(aToks, bToks)
					}
					if sim >= thr && !candSet[int32(aRow)] {
						t.Fatalf("%v thr=%.1f: tuple %d (sim=%.3f vs %q) missing from candidates",
							m, thr, aRow, sim, val)
					}
				}
			}
		}
	}
}

func TestPrefixIndexPrunes(t *testing.T) {
	a := titlesTable(500, 3)
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	idx := BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, 0.8)
	cands, probes := idx.Probe(simfn.MJaccard, 0.8, "alpha beta gamma")
	if len(cands) >= a.Len()/2 {
		t.Fatalf("filter pruned nothing: %d of %d", len(cands), a.Len())
	}
	if probes <= 0 {
		t.Fatal("probe cost not accounted")
	}
}

func TestPrefixProbeBelowBuildThresholdPanics(t *testing.T) {
	a := titlesTable(10, 4)
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	idx := BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.Probe(simfn.MJaccard, 0.3, "alpha")
}

func TestPrefixProbeEmptyValue(t *testing.T) {
	a := titlesTable(10, 5)
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	idx := BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, 0.5)
	cands, probes := idx.Probe(simfn.MJaccard, 0.5, "")
	if cands != nil || probes != 0 {
		t.Fatal("empty probe should return nothing")
	}
}

func TestLengthIndex(t *testing.T) {
	tb := yearPriceTable()
	li := BuildLength(tb, 2, tokenize.Word)
	got := li.ProbeRange(4, 5)
	// "the art of war"(4), "war and peace"(3)? no: 3 tokens. titles:
	// row0: 4 tokens, row1: 3, row2: 5 ("the go programming language" = 4),
	// recompute: row2 "the go programming language" = 4 tokens.
	for _, id := range got {
		n := len(tokenize.Set(tokenize.Word, tb.Value(int(id), 2)))
		if n < 4 || n > 5 {
			t.Fatalf("id %d has %d tokens, outside [4,5]", id, n)
		}
	}
	if li.SizeBytes() <= 0 {
		t.Fatal("SizeBytes missing")
	}
}

func TestBuildOrderingMR(t *testing.T) {
	tb := yearPriceTable()
	c := mapreduce.Default()
	ord, sim, err := BuildOrderingMR(context.Background(), c, tb, 2, tokenize.Word)
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 {
		t.Fatal("no sim time")
	}
	// MR ordering must agree with the pure builder.
	pure := BuildOrdering(TokenFrequencies(tb, 2, tokenize.Word))
	if ord.Len() != pure.Len() {
		t.Fatalf("MR ordering size %d vs pure %d", ord.Len(), pure.Len())
	}
	for _, tok := range []string{"the", "war", "peace", "go"} {
		if ord.Rank(tok) != pure.Rank(tok) {
			t.Fatalf("rank(%s): MR %d vs pure %d", tok, ord.Rank(tok), pure.Rank(tok))
		}
	}
}

func TestBuildPrefixMRMatchesPure(t *testing.T) {
	a := titlesTable(100, 6)
	c := mapreduce.Default()
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	mrIdx, sim, err := BuildPrefixMR(context.Background(), c, a, 0, tokenize.Word, ord, simfn.MJaccard, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 {
		t.Fatal("no sim time")
	}
	pure := BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, 0.6)
	for row := 0; row < 20; row++ {
		val := a.Value(row, 0)
		c1, _ := mrIdx.Probe(simfn.MJaccard, 0.6, val)
		c2, _ := pure.Probe(simfn.MJaccard, 0.6, val)
		if len(c1) != len(c2) {
			t.Fatalf("probe %q: MR %v vs pure %v", val, c1, c2)
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("probe %q order: MR %v vs pure %v", val, c1, c2)
			}
		}
	}
}

func TestBuildHashTreeMR(t *testing.T) {
	tb := yearPriceTable()
	c := mapreduce.Default()
	h, sim1, err := BuildHashMR(context.Background(), c, tb, 0)
	if err != nil || sim1 <= 0 {
		t.Fatalf("hash MR: %v %v", err, sim1)
	}
	if len(h.Probe("1999")) != 2 {
		t.Fatal("hash MR content wrong")
	}
	ti, sim2, err := BuildTreeMR(context.Background(), c, tb, 1)
	if err != nil || sim2 <= 0 {
		t.Fatalf("tree MR: %v %v", err, sim2)
	}
	if len(ti.ProbeRange(10, 15)) != 2 {
		t.Fatal("tree MR content wrong")
	}
}

// Property: self-probe always returns self (any tuple satisfies sim ≥ t
// against itself for t ≤ 1 when it has tokens).
func TestQuickSelfProbe(t *testing.T) {
	a := titlesTable(80, 7)
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	idx := BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, 0.5)
	f := func(row uint8) bool {
		r := int(row) % a.Len()
		cands, _ := idx.Probe(simfn.MJaccard, 0.5, a.Value(r, 0))
		for _, c := range cands {
			if int(c) == r {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: raising the probe threshold never grows the candidate set.
func TestQuickThresholdMonotone(t *testing.T) {
	a := titlesTable(100, 8)
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	idx := BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, 0.4)
	f := func(row uint8) bool {
		r := int(row) % a.Len()
		v := a.Value(r, 0)
		c1, _ := idx.Probe(simfn.MJaccard, 0.4, v)
		c2, _ := idx.Probe(simfn.MJaccard, 0.8, v)
		return len(c2) <= len(c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestProbeBatchedEntryPoints proves the buffer-reusing probe entry points
// (ProbeIDsInto, the Prober session, and ProbeIDsBatch) return exactly the
// candidates and lookup counts of ProbeIDs, probe after probe, including
// empty probes and scratch reuse across rows.
func TestProbeBatchedEntryPoints(t *testing.T) {
	a := titlesTable(300, 6)
	probeT := titlesTable(80, 7)
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	for _, thr := range []float64{0.4, 0.7} {
		idx := BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, thr)
		rows := make([][]uint32, probeT.Len())
		for r := range rows {
			toks := tokenize.Set(tokenize.Word, probeT.Value(r, 0))
			if r == 17 {
				toks = nil // exercise the empty-probe path mid-batch
			}
			ids := make([]uint32, 0, len(toks))
			for _, tok := range toks {
				if id, known := ord.Dict().ID(tok); known {
					ids = append(ids, id)
				}
			}
			slices.Sort(ids)
			rows[r] = ids
		}

		wantCands := make([][]int32, len(rows))
		wantProbes := make([]int64, len(rows))
		for r, ids := range rows {
			wantCands[r], wantProbes[r] = idx.ProbeIDs(simfn.MJaccard, thr, ids)
		}

		// ProbeIDsInto with a shared, growing buffer.
		var buf []int32
		for r, ids := range rows {
			start := len(buf)
			var n int64
			buf, n = idx.ProbeIDsInto(simfn.MJaccard, thr, ids, buf)
			if !slices.Equal(buf[start:], wantCands[r]) && len(buf[start:])+len(wantCands[r]) > 0 {
				t.Fatalf("thr=%.1f row %d: ProbeIDsInto cands %v, want %v", thr, r, buf[start:], wantCands[r])
			}
			if n != wantProbes[r] {
				t.Fatalf("thr=%.1f row %d: ProbeIDsInto probes %d, want %d", thr, r, n, wantProbes[r])
			}
		}

		// Prober session reused across every row.
		p := idx.AcquireProber()
		for r, ids := range rows {
			var got []int32
			got, n := p.ProbeIDsInto(simfn.MJaccard, thr, ids, nil)
			if !slices.Equal(got, wantCands[r]) && len(got)+len(wantCands[r]) > 0 {
				t.Fatalf("thr=%.1f row %d: Prober cands %v, want %v", thr, r, got, wantCands[r])
			}
			if n != wantProbes[r] {
				t.Fatalf("thr=%.1f row %d: Prober probes %d, want %d", thr, r, n, wantProbes[r])
			}
		}
		p.Release()

		// ProbeIDsBatch over the whole row set at once.
		var total int64
		visited := 0
		probes := idx.ProbeIDsBatch(simfn.MJaccard, thr, rows, func(row int, cands []int32) {
			if row != visited {
				t.Fatalf("batch visited row %d, want %d", row, visited)
			}
			if !slices.Equal(cands, wantCands[row]) && len(cands)+len(wantCands[row]) > 0 {
				t.Fatalf("thr=%.1f row %d: batch cands %v, want %v", thr, row, cands, wantCands[row])
			}
			visited++
		})
		for _, n := range wantProbes {
			total += n
		}
		if visited != len(rows) || probes != total {
			t.Fatalf("thr=%.1f: batch visited %d/%d rows, probes %d want %d", thr, visited, len(rows), probes, total)
		}
	}
}

// BenchmarkPrefixProbe measures prefix-index probe throughput over the
// synthetic Products titles, comparing the retired string probe against the
// dictionary-ID probe. The B rows are encoded once up front — mirroring the
// filters-layer encoded-column cache, including extension IDs for tokens the
// A-side ordering has never seen — so the timed loop isolates probe cost.
func BenchmarkPrefixProbe(b *testing.B) {
	ds := datagen.Products(0.05, 9)
	col := ds.A.Schema.Col("title")
	ord := BuildOrdering(TokenFrequencies(ds.A, col, tokenize.Word))
	idx := BuildPrefix(ds.A, col, tokenize.Word, ord, simfn.MJaccard, 0.6)
	bcol := ds.B.Schema.Col("title")
	values := make([]string, ds.B.Len())
	rows := make([][]uint32, ds.B.Len())
	dict := ord.Dict()
	ext := tokenize.NewDict()
	base := uint32(ord.Len())
	for r := range rows {
		values[r] = ds.B.Value(r, bcol)
		toks := tokenize.Set(tokenize.Word, values[r])
		if len(toks) == 0 {
			continue
		}
		ids := make([]uint32, len(toks))
		for i, t := range toks {
			if id, known := dict.ID(t); known {
				ids[i] = id
			} else {
				ids[i] = base + ext.Intern(t)
			}
		}
		slices.Sort(ids)
		rows[r] = ids
	}
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.ReferenceProbe(simfn.MJaccard, 0.6, values[i%len(values)])
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
	})
	b.Run("ids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.ProbeIDs(simfn.MJaccard, 0.6, rows[i%len(rows)])
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
	})
	b.Run("bitparallel", func(b *testing.B) {
		p := idx.AcquireProber()
		defer p.Release()
		buf := make([]int32, 0, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			buf, _ = p.ProbeIDsInto(simfn.MJaccard, 0.6, rows[i%len(rows)], buf)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
	})
}

func BenchmarkBuildPrefix(b *testing.B) {
	a := titlesTable(2000, 10)
	ord := BuildOrdering(TokenFrequencies(a, 0, tokenize.Word))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildPrefix(a, 0, tokenize.Word, ord, simfn.MJaccard, 0.6)
	}
}
