package index

import (
	"math"
	"sort"

	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Posting locates one prefix token occurrence: the tuple and the token's
// position within the tuple's reordered token set.
type Posting struct {
	ID  int32
	Pos int32
}

// PrefixLen returns how many tokens of an l-token set must be indexed (or
// probed) so that any pair satisfying measure ≥ t shares a token within both
// prefixes. For Overlap and Levenshtein no tight prefix bound applies, so
// the full set is used (a share-token filter).
func PrefixLen(m simfn.Measure, l int, t float64) int {
	if l == 0 {
		return 0
	}
	if t <= 0 {
		return l
	}
	var alpha int // minimal possible overlap with an equal-size partner
	switch m {
	case simfn.MJaccard:
		alpha = int(math.Ceil(t * float64(l)))
	case simfn.MDice:
		alpha = int(math.Ceil(t / (2 - t) * float64(l)))
	case simfn.MCosine:
		alpha = int(math.Ceil(t * t * float64(l)))
	default:
		return l
	}
	p := l - alpha + 1
	if p < 1 {
		p = 1
	}
	if p > l {
		p = l
	}
	return p
}

// LengthBounds returns the [lo,hi] token-set size range an indexed set must
// fall in to possibly satisfy measure ≥ t against a probe set of size lb.
// ok=false means the measure admits no length filter.
func LengthBounds(m simfn.Measure, lb int, t float64) (lo, hi int, ok bool) {
	if t <= 0 || lb == 0 {
		return 0, 0, false
	}
	switch m {
	case simfn.MJaccard:
		return int(math.Ceil(t * float64(lb))), int(math.Floor(float64(lb) / t)), true
	case simfn.MDice:
		r := t / (2 - t)
		return int(math.Ceil(r * float64(lb))), int(math.Floor(float64(lb) / r)), true
	case simfn.MCosine:
		return int(math.Ceil(t * t * float64(lb))), int(math.Floor(float64(lb) / (t * t))), true
	default:
		return 0, 0, false
	}
}

// requiredOverlap returns the minimal |x∩y| for measure ≥ t given both set
// sizes (used by the position filter). ok=false means no bound.
func requiredOverlap(m simfn.Measure, lx, ly int, t float64) (int, bool) {
	if t <= 0 {
		return 0, false
	}
	switch m {
	case simfn.MJaccard:
		return int(math.Ceil(t / (1 + t) * float64(lx+ly))), true
	case simfn.MDice:
		return int(math.Ceil(t * float64(lx+ly) / 2)), true
	case simfn.MCosine:
		return int(math.Ceil(t * math.Sqrt(float64(lx)*float64(ly)))), true
	case simfn.MOverlap:
		lo := lx
		if ly < lo {
			lo = ly
		}
		return int(math.Ceil(t * float64(lo))), true
	default:
		return 0, false
	}
}

// PrefixIndex is the inverted index over reordered prefix tokens plus the
// per-tuple set lengths, implementing the prefix, position, and length
// filters for one (attribute, tokenization) pair at a build threshold.
// Probing with any threshold ≥ the build threshold remains correct.
type PrefixIndex struct {
	Kind      tokenize.Kind
	Threshold float64
	ord       *Ordering
	post      map[string][]Posting
	setLen    []int32
	bytes     int64
}

// BuildPrefix builds the index over column col of t for the given measure
// and threshold.
func BuildPrefix(t *table.Table, col int, kind tokenize.Kind, ord *Ordering, m simfn.Measure, threshold float64) *PrefixIndex {
	idx := &PrefixIndex{
		Kind:      kind,
		Threshold: threshold,
		ord:       ord,
		post:      map[string][]Posting{},
		setLen:    make([]int32, t.Len()),
	}
	for i := 0; i < t.Len(); i++ {
		v := t.Value(i, col)
		if table.IsMissing(v) {
			continue
		}
		tokens := ord.Reorder(tokenize.Set(kind, v))
		idx.setLen[i] = int32(len(tokens))
		p := PrefixLen(m, len(tokens), threshold)
		for pos := 0; pos < p; pos++ {
			tok := tokens[pos]
			if _, ok := idx.post[tok]; !ok {
				idx.bytes += int64(len(tok)) + 48
			}
			idx.post[tok] = append(idx.post[tok], Posting{ID: int32(i), Pos: int32(pos)})
			idx.bytes += 12
		}
	}
	idx.bytes += int64(len(idx.setLen)) * 4
	return idx
}

// SetLen returns the indexed tuple's token-set size.
func (idx *PrefixIndex) SetLen(id int32) int { return int(idx.setLen[id]) }

// SizeBytes estimates the index memory footprint.
func (idx *PrefixIndex) SizeBytes() int64 { return idx.bytes }

// Probe returns candidate tuple IDs that may satisfy measure ≥ threshold
// against the probe value, applying prefix, length, and position filters.
// probes counts index lookups for cost accounting.
func (idx *PrefixIndex) Probe(m simfn.Measure, threshold float64, value string) (cands []int32, probes int64) {
	if threshold < idx.Threshold {
		// The index prefix is too short for a laxer threshold; treat as a
		// programming error rather than silently losing recall.
		panic("index: probe threshold below build threshold")
	}
	tokens := idx.ord.Reorder(tokenize.Set(idx.Kind, value))
	ly := len(tokens)
	if ly == 0 {
		return nil, 0
	}
	p := PrefixLen(m, ly, threshold)
	lo, hi, hasLen := LengthBounds(m, ly, threshold)
	seen := map[int32]bool{}
	for pos := 0; pos < p; pos++ {
		plist := idx.post[tokens[pos]]
		probes++
		for _, pst := range plist {
			probes++
			if seen[pst.ID] {
				continue
			}
			lx := int(idx.setLen[pst.ID])
			if hasLen && (lx < lo || lx > hi) {
				continue
			}
			// Position filter: overlap achievable from here on must reach
			// the required overlap.
			if alpha, ok := requiredOverlap(m, lx, ly, threshold); ok {
				ub := 1 + min(lx-int(pst.Pos)-1, ly-pos-1)
				if ub < alpha {
					continue
				}
			}
			seen[pst.ID] = true
			cands = append(cands, pst.ID)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return cands, probes
}

// LengthIndex is a standalone length filter: token-set length → tuple IDs.
type LengthIndex struct {
	lens []int32 // sorted
	ids  []int32
}

// BuildLength indexes token-set lengths of column col under kind.
func BuildLength(t *table.Table, col int, kind tokenize.Kind) *LengthIndex {
	type pair struct{ l, id int32 }
	var ps []pair
	for i := 0; i < t.Len(); i++ {
		v := t.Value(i, col)
		if table.IsMissing(v) {
			continue
		}
		ps = append(ps, pair{int32(len(tokenize.Set(kind, v))), int32(i)})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].l != ps[j].l {
			return ps[i].l < ps[j].l
		}
		return ps[i].id < ps[j].id
	})
	li := &LengthIndex{lens: make([]int32, len(ps)), ids: make([]int32, len(ps))}
	for i, p := range ps {
		li.lens[i] = p.l
		li.ids[i] = p.id
	}
	return li
}

// ProbeRange returns IDs whose length lies in [lo, hi].
func (li *LengthIndex) ProbeRange(lo, hi int) []int32 {
	start := sort.Search(len(li.lens), func(i int) bool { return li.lens[i] >= int32(lo) })
	var out []int32
	for i := start; i < len(li.lens) && li.lens[i] <= int32(hi); i++ {
		out = append(out, li.ids[i])
	}
	return out
}

// SizeBytes estimates the index memory footprint.
func (li *LengthIndex) SizeBytes() int64 { return int64(len(li.lens)) * 8 }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
