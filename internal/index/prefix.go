package index

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"sync"

	"falcon/internal/bitset"
	"falcon/internal/simfn"
	"falcon/internal/table"
	"falcon/internal/tokenize"
)

// Posting locates one prefix token occurrence: the tuple and the token's
// position within the tuple's reordered token set.
type Posting struct {
	ID  int32
	Pos int32
}

// PrefixLen returns how many tokens of an l-token set must be indexed (or
// probed) so that any pair satisfying measure ≥ t shares a token within both
// prefixes. For Overlap and Levenshtein no tight prefix bound applies, so
// the full set is used (a share-token filter).
func PrefixLen(m simfn.Measure, l int, t float64) int {
	if l == 0 {
		return 0
	}
	if t <= 0 {
		return l
	}
	var alpha int // minimal possible overlap with an equal-size partner
	switch m {
	case simfn.MJaccard:
		alpha = int(math.Ceil(t * float64(l)))
	case simfn.MDice:
		alpha = int(math.Ceil(t / (2 - t) * float64(l)))
	case simfn.MCosine:
		alpha = int(math.Ceil(t * t * float64(l)))
	default:
		return l
	}
	p := l - alpha + 1
	if p < 1 {
		p = 1
	}
	if p > l {
		p = l
	}
	return p
}

// LengthBounds returns the [lo,hi] token-set size range an indexed set must
// fall in to possibly satisfy measure ≥ t against a probe set of size lb.
// ok=false means the measure admits no length filter.
func LengthBounds(m simfn.Measure, lb int, t float64) (lo, hi int, ok bool) {
	if t <= 0 || lb == 0 {
		return 0, 0, false
	}
	switch m {
	case simfn.MJaccard:
		return int(math.Ceil(t * float64(lb))), int(math.Floor(float64(lb) / t)), true
	case simfn.MDice:
		r := t / (2 - t)
		return int(math.Ceil(r * float64(lb))), int(math.Floor(float64(lb) / r)), true
	case simfn.MCosine:
		return int(math.Ceil(t * t * float64(lb))), int(math.Floor(float64(lb) / (t * t))), true
	default:
		return 0, 0, false
	}
}

// requiredOverlap returns the minimal |x∩y| for measure ≥ t given both set
// sizes (used by the position filter). ok=false means no bound.
func requiredOverlap(m simfn.Measure, lx, ly int, t float64) (int, bool) {
	if t <= 0 {
		return 0, false
	}
	switch m {
	case simfn.MJaccard:
		return int(math.Ceil(t / (1 + t) * float64(lx+ly))), true
	case simfn.MDice:
		return int(math.Ceil(t * float64(lx+ly) / 2)), true
	case simfn.MCosine:
		return int(math.Ceil(t * math.Sqrt(float64(lx)*float64(ly)))), true
	case simfn.MOverlap:
		lo := lx
		if ly < lo {
			lo = ly
		}
		return int(math.Ceil(t * float64(lo))), true
	default:
		return 0, false
	}
}

// PrefixIndex is the inverted index over reordered prefix tokens plus the
// per-tuple set lengths, implementing the prefix, position, and length
// filters for one (attribute, tokenization) pair at a build threshold.
// Probing with any threshold ≥ the build threshold remains correct.
//
// Postings are keyed by dictionary token ID (the ordering's rank), so the
// hot probe path works on integer token sets without touching strings.
// Tokens the ordering does not cover — possible only when the index is
// built with a mismatched ordering — fall back to a string-keyed side map
// so behavior matches the retired string-keyed implementation exactly.
type PrefixIndex struct {
	Kind      tokenize.Kind
	Threshold float64
	ord       *Ordering
	post      [][]Posting          // token ID (rank) → postings
	extPost   map[string][]Posting // tokens outside the ordering (rare)
	setLen    []int32
	bytes     int64

	scratch sync.Pool // *probeScratch, sized to the indexed table
}

// probeScratch is the reusable per-probe state: the candidate-dedup bitmap
// (cleared bit-by-bit after use, so reuse is O(|cands|), not O(|A|)) and the
// candidate accumulation buffer.
type probeScratch struct {
	seen  *bitset.Bitset
	cands []int32
}

func newPrefixIndex(t *table.Table, kind tokenize.Kind, ord *Ordering, threshold float64) *PrefixIndex {
	idx := &PrefixIndex{
		Kind:      kind,
		Threshold: threshold,
		ord:       ord,
		post:      make([][]Posting, ord.Len()),
		setLen:    make([]int32, t.Len()),
	}
	n := t.Len()
	idx.scratch.New = func() any { return &probeScratch{seen: bitset.New(n)} }
	return idx
}

// addPosting appends one posting, keeping the byte accounting of the
// string-keyed implementation: len(token)+48 per distinct token, 12 per
// posting.
func (idx *PrefixIndex) addPosting(tok string, pst Posting) {
	if id, ok := idx.ord.dict.ID(tok); ok {
		if len(idx.post[id]) == 0 {
			idx.bytes += int64(len(tok)) + 48
		}
		idx.post[id] = append(idx.post[id], pst)
	} else {
		if idx.extPost == nil {
			idx.extPost = map[string][]Posting{}
		}
		if _, ok := idx.extPost[tok]; !ok {
			idx.bytes += int64(len(tok)) + 48
		}
		idx.extPost[tok] = append(idx.extPost[tok], pst)
	}
	idx.bytes += 12
}

// postings returns the posting list for a token string (ID path when the
// ordering knows it, side map otherwise).
func (idx *PrefixIndex) postings(tok string) []Posting {
	if id, ok := idx.ord.dict.ID(tok); ok {
		return idx.post[id]
	}
	return idx.extPost[tok]
}

// HasExtension reports whether any indexed token fell outside the ordering;
// callers probing by pre-encoded IDs must fall back to string probing then.
func (idx *PrefixIndex) HasExtension() bool { return len(idx.extPost) > 0 }

// Parts exports the index's frozen state for artifact serialization: the
// ordering's ranked tokens, the per-rank posting lists, and the per-tuple
// set lengths. Indexes holding extension postings (built under a
// mismatched ordering) cannot be exported by ID; ok is false then. The
// artifact builder always derives the ordering from the indexed column
// itself, so every indexed token has a rank and ok holds.
func (idx *PrefixIndex) Parts() (ranked []string, post [][]Posting, setLen []int32, ok bool) {
	if idx.HasExtension() {
		return nil, nil, nil, false
	}
	return idx.ord.dict.Tokens(), idx.post, idx.setLen, true
}

// PrefixFromParts rebuilds an index exported by Parts. The byte accounting
// (len(token)+48 per distinct posted token, 12 per posting, 4 per setLen
// entry) and the probe-scratch pool match BuildPrefix, so a rebuilt index
// probes and meters identically to the one built at train time.
func PrefixFromParts(kind tokenize.Kind, threshold float64, ord *Ordering, post [][]Posting, setLen []int32) *PrefixIndex {
	idx := &PrefixIndex{
		Kind:      kind,
		Threshold: threshold,
		ord:       ord,
		post:      post,
		setLen:    setLen,
	}
	n := len(setLen)
	idx.scratch.New = func() any { return &probeScratch{seen: bitset.New(n)} }
	for id, ps := range post {
		if len(ps) > 0 {
			idx.bytes += int64(len(ord.dict.Token(uint32(id)))) + 48
		}
		idx.bytes += 12 * int64(len(ps))
	}
	idx.bytes += int64(len(setLen)) * 4
	return idx
}

// BuildPrefix builds the index over column col of t for the given measure
// and threshold.
func BuildPrefix(t *table.Table, col int, kind tokenize.Kind, ord *Ordering, m simfn.Measure, threshold float64) *PrefixIndex {
	idx := newPrefixIndex(t, kind, ord, threshold)
	for i := 0; i < t.Len(); i++ {
		v := t.Value(i, col)
		if table.IsMissing(v) {
			continue
		}
		tokens := ord.Reorder(tokenize.Set(kind, v))
		idx.setLen[i] = int32(len(tokens))
		p := PrefixLen(m, len(tokens), threshold)
		for pos := 0; pos < p; pos++ {
			idx.addPosting(tokens[pos], Posting{ID: int32(i), Pos: int32(pos)})
		}
	}
	idx.bytes += int64(len(idx.setLen)) * 4
	return idx
}

// Ord returns the index's global token ordering.
func (idx *PrefixIndex) Ord() *Ordering { return idx.ord }

// SetLen returns the indexed tuple's token-set size.
func (idx *PrefixIndex) SetLen(id int32) int { return int(idx.setLen[id]) }

// SizeBytes estimates the index memory footprint.
func (idx *PrefixIndex) SizeBytes() int64 { return idx.bytes }

// checkThreshold rejects probes laxer than the build threshold: the index
// prefix would be too short, and silently losing recall is worse than a
// panic on a programming error.
func (idx *PrefixIndex) checkThreshold(threshold float64) {
	if threshold < idx.Threshold {
		panic("index: probe threshold below build threshold")
	}
}

// filterPosting applies the length and position filters to one posting and
// records survivors in the scratch (the seen bitmap dedups across posting
// lists). probe position pos and probe length ly are in reordered-set space.
func (idx *PrefixIndex) filterPosting(s *probeScratch, m simfn.Measure, threshold float64, ly, pos int, pst Posting, lo, hi int, hasLen bool) {
	if s.seen.Get(int(pst.ID)) {
		return
	}
	lx := int(idx.setLen[pst.ID])
	if hasLen && (lx < lo || lx > hi) {
		return
	}
	// Position filter: overlap achievable from here on must reach the
	// required overlap.
	if alpha, ok := requiredOverlap(m, lx, ly, threshold); ok {
		ub := 1 + min(lx-int(pst.Pos)-1, ly-pos-1)
		if ub < alpha {
			return
		}
	}
	s.seen.Set(int(pst.ID))
	s.cands = append(s.cands, pst.ID) //falcon:allow streambound pooled probe scratch, truncated to [:0] by finishProbe/drainSorted after every probe
}

// finishProbe sorts and copies out the candidates and returns the scratch
// to the pool with its bitmap cleared.
func (idx *PrefixIndex) finishProbe(s *probeScratch) []int32 {
	var cands []int32
	if len(s.cands) > 0 {
		slices.Sort(s.cands)
		//falcon:allow servebudget the single exactly-sized result slice per probe; dedup bitmap and accumulator come from the pool
		cands = make([]int32, len(s.cands))
		copy(cands, s.cands)
	}
	for _, id := range s.cands {
		s.seen.Clear(int(id))
	}
	s.cands = s.cands[:0]
	idx.scratch.Put(s)
	return cands
}

// Probe returns candidate tuple IDs that may satisfy measure ≥ threshold
// against the probe value, applying prefix, length, and position filters.
// probes counts index lookups for cost accounting.
//
// The probe value is tokenized and reordered per call; hot paths that probe
// whole columns should encode once and use ProbeIDs instead.
func (idx *PrefixIndex) Probe(m simfn.Measure, threshold float64, value string) (cands []int32, probes int64) {
	idx.checkThreshold(threshold)
	tokens := idx.ord.Reorder(tokenize.Set(idx.Kind, value))
	ly := len(tokens)
	if ly == 0 {
		return nil, 0
	}
	p := PrefixLen(m, ly, threshold)
	lo, hi, hasLen := LengthBounds(m, ly, threshold)
	s := idx.scratch.Get().(*probeScratch)
	for pos := 0; pos < p; pos++ {
		plist := idx.postings(tokens[pos])
		probes++
		for _, pst := range plist {
			probes++
			idx.filterPosting(s, m, threshold, ly, pos, pst, lo, hi, hasLen)
		}
	}
	return idx.finishProbe(s), probes
}

// collectIDProbe runs one encoded probe into the scratch: prefix length and
// length-filter bounds are computed once up front, then every posting under
// the prefix goes through the length/position filters. Survivors accumulate
// unsorted in s.cands with the seen bitmap deduplicating. Returns the lookup
// count (1 per prefix position + 1 per posting, exactly like the string
// path).
//
//falcon:hotpath
func (idx *PrefixIndex) collectIDProbe(s *probeScratch, m simfn.Measure, threshold float64, ids []uint32) (probes int64) {
	ly := len(ids)
	if ly == 0 {
		return 0
	}
	p := PrefixLen(m, ly, threshold)
	lo, hi, hasLen := LengthBounds(m, ly, threshold)
	for pos := 0; pos < p; pos++ {
		var plist []Posting
		if id := ids[pos]; int64(id) < int64(len(idx.post)) {
			plist = idx.post[id]
		}
		probes++
		for _, pst := range plist {
			probes++
			idx.filterPosting(s, m, threshold, ly, pos, pst, lo, hi, hasLen)
		}
	}
	return probes
}

// drainSorted sorts the accumulated candidates, appends them to dst, and
// resets the scratch (bitmap cleared per-candidate, accumulator truncated)
// so the next probe starts clean. It never allocates beyond dst's growth.
func drainSorted(s *probeScratch, dst []int32) []int32 {
	if len(s.cands) > 0 {
		slices.Sort(s.cands)
		dst = append(dst, s.cands...) //falcon:allow streambound append-into-caller idiom; the batch buffer is the caller's to truncate per batch
	}
	for _, id := range s.cands {
		s.seen.Clear(int(id))
	}
	s.cands = s.cands[:0]
	return dst
}

// ProbeIDs is Probe over a dictionary-encoded token set: ids must be the
// probe value's token IDs under the index ordering's dictionary, sorted
// ascending (= reordered), with tokens unknown to the ordering encoded as
// any distinct values ≥ Ordering.Len(). Unknown tokens have no postings but
// still cost one lookup each, exactly like the string path. ProbeIDs
// requires an index without extension tokens (see hasExtension); the
// registry guarantees that by falling back to Probe.
//
//falcon:hotpath
func (idx *PrefixIndex) ProbeIDs(m simfn.Measure, threshold float64, ids []uint32) (cands []int32, probes int64) {
	idx.checkThreshold(threshold)
	if len(ids) == 0 {
		return nil, 0
	}
	s := idx.scratch.Get().(*probeScratch)
	probes = idx.collectIDProbe(s, m, threshold, ids)
	return idx.finishProbe(s), probes
}

// ProbeIDsInto is ProbeIDs appending into a caller-owned buffer: the sorted
// candidates land at the end of dst and no result slice is allocated, so
// steady-state callers (one probe per request per predicate) stay
// allocation-free once dst reaches its high-water mark.
//
//falcon:hotpath
func (idx *PrefixIndex) ProbeIDsInto(m simfn.Measure, threshold float64, ids []uint32, dst []int32) ([]int32, int64) {
	idx.checkThreshold(threshold)
	if len(ids) == 0 {
		return dst, 0
	}
	s := idx.scratch.Get().(*probeScratch)
	probes := idx.collectIDProbe(s, m, threshold, ids)
	dst = drainSorted(s, dst)
	idx.scratch.Put(s)
	return dst, probes
}

// Prober is a reusable probe session over one PrefixIndex: it pins a probe
// scratch (dedup bitmap + accumulator) for its lifetime, so a caller
// probing many rows — a blocking stripe, a serve request's predicates —
// pays the pool round-trip once instead of per probe. Not safe for
// concurrent use; Release returns the scratch to the index's pool.
type Prober struct {
	idx *PrefixIndex
	s   *probeScratch
	buf []int32
}

// AcquireProber pins a probe scratch and returns the session.
func (idx *PrefixIndex) AcquireProber() *Prober {
	//falcon:allow scratchescape the prober is the sanctioned session wrapper around the probe scratch; callers must pair it with Release
	return &Prober{idx: idx, s: idx.scratch.Get().(*probeScratch)}
}

// Release returns the session's scratch to the index pool.
func (p *Prober) Release() {
	p.idx.scratch.Put(p.s)
	p.s = nil
}

// ProbeIDsInto probes one encoded row and appends the sorted surviving
// candidates to dst, reusing the session scratch. Semantics and lookup
// accounting match PrefixIndex.ProbeIDs exactly.
//
//falcon:hotpath
func (p *Prober) ProbeIDsInto(m simfn.Measure, threshold float64, ids []uint32, dst []int32) ([]int32, int64) {
	p.idx.checkThreshold(threshold)
	if len(ids) == 0 {
		return dst, 0
	}
	probes := p.idx.collectIDProbe(p.s, m, threshold, ids)
	return drainSorted(p.s, dst), probes
}

// ProbeIDsBatch probes every encoded row in one call and hands each row's
// surviving candidates to visit in row order, reusing one scratch and one
// candidate buffer across the whole batch (the cands slice is only valid
// during the visit call). Returns the total lookup count; per-row semantics
// and accounting match ProbeIDs exactly.
func (idx *PrefixIndex) ProbeIDsBatch(m simfn.Measure, threshold float64, rows [][]uint32, visit func(row int, cands []int32)) int64 {
	idx.checkThreshold(threshold)
	p := idx.AcquireProber()
	defer p.Release()
	var probes int64
	for r, ids := range rows {
		p.buf = p.buf[:0]
		var n int64
		p.buf, n = p.ProbeIDsInto(m, threshold, ids, p.buf)
		probes += n
		visit(r, p.buf)
	}
	return probes
}

// referenceProbe is the retired string-keyed probe, kept verbatim as the
// reference implementation for the golden equivalence tests: per-call map
// allocation, map-based dedup, comparison-callback sort.
func (idx *PrefixIndex) referenceProbe(m simfn.Measure, threshold float64, value string) (cands []int32, probes int64) {
	idx.checkThreshold(threshold)
	tokens := idx.ord.Reorder(tokenize.Set(idx.Kind, value))
	ly := len(tokens)
	if ly == 0 {
		return nil, 0
	}
	p := PrefixLen(m, ly, threshold)
	lo, hi, hasLen := LengthBounds(m, ly, threshold)
	seen := map[int32]bool{}
	for pos := 0; pos < p; pos++ {
		plist := idx.postings(tokens[pos])
		probes++
		for _, pst := range plist {
			probes++
			if seen[pst.ID] {
				continue
			}
			lx := int(idx.setLen[pst.ID])
			if hasLen && (lx < lo || lx > hi) {
				continue
			}
			if alpha, ok := requiredOverlap(m, lx, ly, threshold); ok {
				ub := 1 + min(lx-int(pst.Pos)-1, ly-pos-1)
				if ub < alpha {
					continue
				}
			}
			seen[pst.ID] = true
			cands = append(cands, pst.ID)
		}
	}
	slices.Sort(cands)
	return cands, probes
}

// ReferenceProbe exposes the retired string-keyed probe for equivalence
// tests and baseline benchmarks. Production callers use Probe/ProbeIDs.
func (idx *PrefixIndex) ReferenceProbe(m simfn.Measure, threshold float64, value string) ([]int32, int64) {
	return idx.referenceProbe(m, threshold, value)
}

// LengthIndex is a standalone length filter: token-set length → tuple IDs.
type LengthIndex struct {
	lens []int32 // sorted
	ids  []int32
}

// BuildLength indexes token-set lengths of column col under kind.
func BuildLength(t *table.Table, col int, kind tokenize.Kind) *LengthIndex {
	type pair struct{ l, id int32 }
	var ps []pair
	for i := 0; i < t.Len(); i++ {
		v := t.Value(i, col)
		if table.IsMissing(v) {
			continue
		}
		ps = append(ps, pair{int32(len(tokenize.Set(kind, v))), int32(i)})
	}
	slices.SortFunc(ps, func(a, b pair) int {
		if c := cmp.Compare(a.l, b.l); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
	li := &LengthIndex{lens: make([]int32, len(ps)), ids: make([]int32, len(ps))}
	for i, p := range ps {
		li.lens[i] = p.l
		li.ids[i] = p.id
	}
	return li
}

// ProbeRange returns IDs whose length lies in [lo, hi].
func (li *LengthIndex) ProbeRange(lo, hi int) []int32 {
	start := sort.Search(len(li.lens), func(i int) bool { return li.lens[i] >= int32(lo) })
	var out []int32
	for i := start; i < len(li.lens) && li.lens[i] <= int32(hi); i++ {
		out = append(out, li.ids[i])
	}
	return out
}

// SizeBytes estimates the index memory footprint.
func (li *LengthIndex) SizeBytes() int64 { return int64(len(li.lens)) * 8 }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
