package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Immutpublish enforces the publish-then-freeze contract the lock-free
// serving path depends on (freeze.go has the directive and publication
// model). A value is published when it is stored into an atomic.Pointer /
// atomic.Value, sent on a channel, loaded back out of an atomic cell, or
// returned from a //falcon:frozen constructor. From that point on the
// published heap region — every may-alias root of the value, per the flow
// layer — is frozen: a map write, element write, pointer store, field
// write, or append through it races with the concurrent readers the
// publication handed it to, and no lock discipline can save them (the
// readers intentionally take no lock).
//
// The analyzer is interprocedural: every function exports a FreezeFact
// recording which parameters it writes through (directly or via callees,
// to a fixpoint over the call graph), so a post-publication call that
// hands the published value to a mutating helper in another package is
// flagged at the call site with the chain down to the write.
//
// The mechanical violation — a single-pair map update `m[k] = v` after
// `cell.Store(&m)` — carries a SuggestedFix rewriting it into the
// sanctioned copy-on-write shape:
//
//	{
//		next := maps.Clone(*cell.Load())
//		next[k] = v
//		cell.Store(&next)
//	}
//
// so `falcon-vet -fix` converts in-place mutation into clone-then-swap.
//
// Limits: the freeze line is positional within one function (a loop that
// writes at an earlier line and publishes at a later one re-freezes each
// iteration), writes behind function values stored in fields are opaque,
// and stdlib internals export no facts.
var Immutpublish = &Analyzer{
	Name:  "immutpublish",
	Doc:   "flags writes to published state (atomic.Pointer stores, channel sends, //falcon:frozen results) after the publication point, cross-package via FreezeFacts",
	Facts: true,
	Run:   runImmutpublish,
}

// FreezeFact summarizes a function for the freeze contract. Frozen marks a
// //falcon:frozen constructor: its results are published at every call
// site. Params is a bitmask in MutFact's convention (bit 0 the receiver,
// bit i+1 parameter i) of the arguments the function (transitively)
// writes through; ParamDesc and ParamChain describe the write and the
// call path down to it.
type FreezeFact struct {
	Frozen     bool
	Params     uint32
	ParamDesc  map[int]string
	ParamChain map[int][]string
}

func (*FreezeFact) AFact() {}

func runImmutpublish(pass *Pass) {
	fns := declaredFuncs(pass)
	flows := make([]*FuncFlow, len(fns))
	for i, fd := range fns {
		flows[i] = funcFlowOf(pass, fd.decl)
	}

	// Seed: //falcon:frozen constructors. Their Frozen bit is what turns a
	// call-site assignment into a publication event in downstream packages.
	for _, fd := range fns {
		if hasFalconDirective(fd.decl, "frozen") {
			pass.ExportObjectFact(fd.obj, &FreezeFact{
				Frozen:     true,
				ParamDesc:  map[int]string{},
				ParamChain: map[int][]string{},
			})
		}
	}

	// Fixpoint: each round recomputes every function's mutation summary
	// from its direct writes plus its callees' facts; bits only grow.
	for changed := true; changed; {
		changed = false
		for i, fd := range fns {
			if exportFreezeFact(pass, fd, flows[i]) {
				changed = true
			}
		}
	}

	for i, fd := range fns {
		checkPublished(pass, fd, flows[i])
	}
}

// freezeMutatesParam reports whether a write of this kind through a
// parameter reaches the caller's heap region. WriteField on a value
// parameter only touches the callee's copy and is excluded; append is
// included because it may write the shared backing array.
func freezeMutatesParam(k WriteKind) bool {
	switch k {
	case WriteMapIndex, WriteSliceIndex, WriteDeref, WriteAppend:
		return true
	}
	return false
}

// exportFreezeFact merges one function's direct and call-derived mutation
// summary into the facts store, reporting whether anything new appeared.
// The summary struct is built lazily, only on the round that first grows a
// bit — the steady-state rounds of the fixpoint allocate nothing.
func exportFreezeFact(pass *Pass, fd funcWithDecl, fl *FuncFlow) bool {
	var cur *FreezeFact
	if f, ok := pass.ImportObjectFact(fd.obj); ok {
		cur = f.(*FreezeFact)
	}
	var next *FreezeFact
	params := func() uint32 {
		if next != nil {
			return next.Params
		}
		if cur != nil {
			return cur.Params
		}
		return 0
	}
	ensure := func() *FreezeFact {
		if next != nil {
			return next
		}
		next = &FreezeFact{ParamDesc: map[int]string{}, ParamChain: map[int][]string{}}
		if cur != nil {
			next.Frozen = cur.Frozen
			next.Params = cur.Params
			for k, v := range cur.ParamDesc {
				next.ParamDesc[k] = v
			}
			for k, v := range cur.ParamChain {
				next.ParamChain[k] = v
			}
		}
		return next
	}
	selfName := ""
	self := func() string {
		if selfName == "" {
			selfName = fd.obj.FullName()
		}
		return selfName
	}

	// Direct writes through parameters. An allow at the write site kills
	// the taint: a sanctioned mutating helper must not flag every caller.
	for _, w := range fl.Writes() {
		if w.Root == nil || !freezeMutatesParam(w.Kind) || pass.Allowed(w.Pos, "immutpublish") {
			continue
		}
		for _, root := range fl.Roots(w.Root) {
			j, ok := paramIndex(fd.obj, root)
			if !ok || params()&(1<<j) != 0 {
				continue
			}
			n := ensure()
			n.Params |= 1 << j
			n.ParamDesc[j] = fmt.Sprintf("%s through its %s", w.Kind, paramName(fd.obj, j))
			n.ParamChain[j] = []string{self()}
		}
	}

	// Call-derived mutation: callee facts flow back through arguments.
	for _, cs := range callsOf(pass, fd.decl) {
		if pass.Allowed(cs.call.Pos(), "immutpublish") {
			continue
		}
		for _, callee := range cs.callees {
			f, ok := pass.ImportObjectFact(callee)
			if !ok {
				continue
			}
			fact := f.(*FreezeFact)
			if fact.Params == 0 {
				continue
			}
			for j := 0; j < 32; j++ {
				if fact.Params&(1<<j) == 0 {
					continue
				}
				arg := argExprAt(cs.call, callee, j)
				if arg == nil {
					continue
				}
				for _, root := range fl.Roots(fl.rootVar(arg)) {
					k, ok := paramIndex(fd.obj, root)
					if !ok || params()&(1<<k) != 0 {
						continue
					}
					n := ensure()
					n.Params |= 1 << k
					n.ParamDesc[k] = fact.ParamDesc[j]
					n.ParamChain[k] = append([]string{self()}, fact.ParamChain[j]...)
				}
			}
		}
	}

	// next is non-nil exactly when a new bit appeared this round; the
	// Frozen seed is exported up front by runImmutpublish.
	if next == nil {
		return false
	}
	pass.ExportObjectFact(fd.obj, next)
	return true
}

// checkPublished reports post-publication writes inside one declaration:
// direct writes to a published root, and calls handing a published root to
// a FreezeFact-carrying mutator.
func checkPublished(pass *Pass, fd funcWithDecl, fl *FuncFlow) {
	events := publications(pass, fd.decl, fl)
	if len(events) == 0 {
		return
	}
	fixes := cloneSwapFixes(pass, fd.decl, events)

	for _, w := range fl.Writes() {
		if w.Root == nil || !freezeViolation(w.Kind) {
			continue
		}
		for i := range events {
			ev := &events[i]
			if w.Pos <= ev.pos {
				continue
			}
			root := publishedRoot(fl, w.Root, ev)
			if root == nil {
				continue
			}
			msg := fmt.Sprintf("%s to published %q after %s at %s; published state is frozen — clone-then-swap instead of mutating in place",
				w.Kind, root.Name(), ev.what, pass.Fset.Position(ev.pos))
			if fix, ok := fixes[w.Pos]; ok {
				pass.ReportFixf(w.Pos, fix, "%s", msg)
			} else {
				pass.Reportf(w.Pos, "%s", msg)
			}
			break
		}
	}

	for _, cs := range callsOf(pass, fd.decl) {
		checkPublishedCall(pass, fd, fl, events, cs)
	}
}

// checkPublishedCall reports the first published root cs hands to a
// FreezeFact-carrying mutator (at most one diagnostic per call, from its
// first fact-carrying callee).
func checkPublishedCall(pass *Pass, fd funcWithDecl, fl *FuncFlow, events []pubEvent, cs callSite) {
	for _, callee := range cs.callees {
		f, ok := pass.ImportObjectFact(callee)
		if !ok {
			continue
		}
		fact := f.(*FreezeFact)
		if fact.Params == 0 {
			continue
		}
		for i := range events {
			ev := &events[i]
			if cs.call.Pos() <= ev.pos {
				continue
			}
			for j := 0; j < 32; j++ {
				if fact.Params&(1<<j) == 0 {
					continue
				}
				arg := argExprAt(cs.call, callee, j)
				if arg == nil {
					continue
				}
				root := publishedRoot(fl, fl.rootVar(arg), ev)
				if root == nil {
					continue
				}
				chain := append([]string{fd.obj.FullName()}, fact.ParamChain[j]...)
				pass.ReportChain(cs.call.Pos(), chain,
					"passes published %q (%s at %s) to %s, which performs a %s; published state is frozen; chain: %s",
					root.Name(), ev.what, pass.Fset.Position(ev.pos),
					callee.FullName(), fact.ParamDesc[j], strings.Join(chain, " -> "))
				return
			}
		}
		return
	}
}

// publishedRoot returns the first may-alias root of v the event published,
// or nil.
func publishedRoot(fl *FuncFlow, v *types.Var, ev *pubEvent) *types.Var {
	for _, root := range fl.Roots(v) {
		if ev.roots[root] {
			return root
		}
	}
	return nil
}

// cloneSwapFixes builds the clone-then-swap rewrites for the mechanically
// fixable shape: a publication `cell.Store(&m)` (cell an atomic.Pointer, m
// a map) followed by a single-pair plain map update `m[k] = v`. The
// rewrite is a self-contained block, so several updates in one function
// each get an independent, non-overlapping fix; the rewritten code reads
// the cell and writes only a fresh clone, so re-running the analyzer finds
// nothing (the -fix idempotence contract). Fixes are keyed by the written
// l-value's position, matching the flow layer's Write.Pos.
func cloneSwapFixes(pass *Pass, decl *ast.FuncDecl, events []pubEvent) map[token.Pos]SuggestedFix {
	var fixes map[token.Pos]SuggestedFix
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.AssignStmt)
		if !ok || stmt.Tok != token.ASSIGN || len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
			return true
		}
		idx, ok := stmt.Lhs[0].(*ast.IndexExpr)
		if !ok || !isMapType(pass.Info.TypeOf(idx.X)) {
			return true
		}
		id, ok := ast.Unparen(idx.X).(*ast.Ident)
		if !ok {
			return true
		}
		target, _ := pass.Info.Uses[id].(*types.Var)
		if target == nil {
			return true
		}
		for i := range events {
			ev := &events[i]
			if ev.cellVar == nil || ev.cellVar != target || stmt.Pos() <= ev.pos {
				continue
			}
			cell := render(pass.Fset, ev.cell)
			start := pass.Fset.Position(stmt.Pos())
			body := fmt.Sprintf("{\nnext := maps.Clone(*%s.Load())\nnext[%s] = %s\n%s.Store(&next)\n}",
				cell, render(pass.Fset, idx.Index), render(pass.Fset, stmt.Rhs[0]), cell)
			if fixes == nil {
				fixes = map[token.Pos]SuggestedFix{}
			}
			fixes[stmt.Lhs[0].Pos()] = SuggestedFix{
				Message: "rewrite the frozen-map update into clone-then-swap",
				Edits: []TextEdit{{
					File:  start.Filename,
					Start: start.Offset,
					End:   pass.Fset.Position(stmt.End()).Offset,
					New:   body,
				}},
			}
			break
		}
		return true
	})
	return fixes
}
