package analysis

import (
	"cmp"
	"go/ast"
	"go/types"
	"slices"
)

// Graph is the conservative whole-program call graph falcon-vet's
// interprocedural analyzers resolve call sites through. It handles two
// kinds of edges:
//
//   - static calls: a direct call to a package function or a method on a
//     concrete receiver resolves to exactly that *types.Func;
//   - dynamic calls through an interface method: resolved by method-set
//     matching over every named type declared in the loaded program — the
//     paper-relevant interface surfaces are small (crowd.Platform, the
//     mapreduce sort/partition hooks, the filters registry), so "every
//     concrete type that implements the interface might be the callee" is
//     both sound for module types and cheap.
//
// Limits, by construction: callees reached only through stored function
// values are not modeled (the analyzers treat function-typed fields and
// variables as opaque), standard-library internals are opaque (their known
// nondeterminism/blocking entry points are modeled as direct sources
// instead), and generic named types are skipped during interface matching
// (none of the guarded interfaces are generic).
type Graph struct {
	// impls maps an interface method declaration to the concrete methods
	// implementing it, in deterministic order.
	impls map[*types.Func][]*types.Func
	// visible, when non-nil, restricts interface dispatch to
	// implementations declared in this package set (see Restrict).
	visible map[*types.Package]bool
}

// BuildGraph indexes interface implementations across the packages
// (normally the full DepOrder closure).
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{impls: map[*types.Func][]*types.Func{}}

	var ifaces []*types.Interface
	var concrete []types.Type
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, iface)
				}
				continue
			}
			concrete = append(concrete, named)
		}
	}

	for _, iface := range ifaces {
		for _, t := range concrete {
			impl := t
			if !types.Implements(t, iface) {
				ptr := types.NewPointer(t)
				if !types.Implements(ptr, iface) {
					continue
				}
				impl = ptr
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i).Origin()
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				fn, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				g.impls[m] = append(g.impls[m], fn.Origin())
			}
		}
	}
	for m, fns := range g.impls {
		slices.SortFunc(fns, func(a, b *types.Func) int { return cmp.Compare(a.FullName(), b.FullName()) })
		g.impls[m] = dedupeFuncs(fns)
	}
	return g
}

// Restrict returns a view of the graph whose interface-dispatch edges
// resolve only to implementations declared in the visible package set —
// one package's transitive dependency closure. Static callees need no
// filtering: a call the type-checker resolved is necessarily to a package
// in the closure (or the standard library, which carries no facts).
// Restricting dispatch this way is what makes each package's analysis a
// pure function of its closure: a concrete type declared in an unrelated
// module package cannot influence this package's verdict, so neither
// scheduling order nor cache state can either. The view shares the
// underlying (immutable after BuildGraph) implementation index;
// filtering happens per lookup in Callees.
func (g *Graph) Restrict(visible map[*types.Package]bool) *Graph {
	return &Graph{impls: g.impls, visible: visible}
}

func dedupeFuncs(fns []*types.Func) []*types.Func {
	out := fns[:0]
	var prev *types.Func
	for _, f := range fns {
		if f != prev {
			out = append(out, f)
		}
		prev = f
	}
	return out
}

// funcSig returns a function object's signature. (*types.Func).Signature
// exists only from go1.23; this keeps the module at its declared go1.22.
func funcSig(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// Callees resolves one call expression to the set of functions it may
// invoke: the single static callee, or every implementation of an
// interface method. Builtins, conversions, and calls of stored function
// values resolve to nil.
func (g *Graph) Callees(info *types.Info, call *ast.CallExpr) []*types.Func {
	fn := staticCallee(info, call)
	if fn == nil {
		return nil
	}
	if recv := funcSig(fn).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		impls := g.impls[fn.Origin()]
		if g.visible != nil {
			var kept []*types.Func
			for _, impl := range impls {
				if impl.Pkg() == nil || g.visible[impl.Pkg()] {
					kept = append(kept, impl)
				}
			}
			impls = kept
		}
		if len(impls) > 0 {
			return impls
		}
		return nil
	}
	return []*types.Func{fn.Origin()}
}

// staticCallee resolves the function object a call expression names, or nil
// for builtins, conversions, and dynamic function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified package function (pkg.Fn).
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		// Generic instantiation f[T](...): the index operand names the
		// generic function.
		return staticCallee(info, &ast.CallExpr{Fun: e.X})
	case *ast.IndexListExpr:
		return staticCallee(info, &ast.CallExpr{Fun: e.X})
	}
	return nil
}
