package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ScratchEscape guards the zero-alloc hot path: pooled scratch state
// (simfn.Scratch, feature's BlockingVectorScratch, the prefix index's
// probeScratch — any named type ending in "Scratch") is borrowed per pair
// and recycled by its pool, so a value aliasing scratch memory must not
// outlive the borrow. It flags, in any function where such a value is in
// hand:
//
//   - storing it into a struct field, map/slice element, or package-level
//     variable whose base is not itself scratch-derived (the heap now
//     holds memory the pool will hand to someone else);
//   - returning pool-derived memory to the caller;
//   - handing it to a goroutine (the pool may recycle it concurrently).
//
// The analysis is a flow-insensitive taint over each function's locals.
// Taint seeds are scratch-typed parameters and receivers (tagged with a
// per-parameter bit) and pool extraction (a type assertion to a scratch
// type, i.e. pool.Get().(*Scratch)). Taint follows field reads, indexing,
// slicing, address-taking, composite literals embedding tainted values,
// and — the interprocedural part — calls: every function exports an
// EscapeFact summarizing which parameters its results alias and whether
// they carry pooled memory, so a helper returning its receiver's buffer
// taints the result at call sites any number of packages away. Scalar
// results (ints, floats, strings) never carry taint: copying a number out
// of a scratch buffer is the hot path working as intended.
//
// Returning parameter-derived memory is not itself a violation — that is
// the summary callers consume (GetScratch-style pool extractors are the
// one legitimate pool-returning exception, suppressed in place with a
// reason).
var ScratchEscape = &Analyzer{
	Name:  "scratchescape",
	Doc:   "flags pooled scratch buffers escaping the per-pair hot path: heap stores, returns, goroutine captures (cross-package via alias summaries)",
	Facts: true,
	Run:   runScratchEscape,
}

// EscapeFact summarizes how a function's results alias its inputs:
// ParamMask bit 0 is the receiver, bit i (i ≥ 1) is parameter i-1; Pool
// means a result carries pool-derived scratch memory regardless of inputs.
type EscapeFact struct {
	ParamMask uint64
	Pool      bool
}

func (*EscapeFact) AFact() {}

func runScratchEscape(pass *Pass) {
	fns := declaredFuncs(pass)

	// Package-level fixpoint: function summaries feed call-site taint in
	// sibling functions, so sweep until no fact grows.
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			sc := newEscScan(pass, fd)
			sc.propagate()
			mask, pool := sc.summary()
			if mask == 0 && !pool {
				continue
			}
			prev, ok := pass.ImportObjectFact(fd.obj)
			if ok {
				f := prev.(*EscapeFact)
				if f.ParamMask|mask == f.ParamMask && (f.Pool || !pool) {
					continue
				}
				mask |= f.ParamMask
				pool = pool || f.Pool
			}
			pass.ExportObjectFact(fd.obj, &EscapeFact{ParamMask: mask, Pool: pool})
			changed = true
		}
	}

	// Violations, with summaries stable.
	for _, fd := range fns {
		sc := newEscScan(pass, fd)
		sc.propagate()
		sc.reportViolations()
	}
}

// taintVal is the escape lattice: which parameters the value may alias
// (mask) and whether it may alias pooled memory (pool).
type taintVal struct {
	mask uint64
	pool bool
}

func (t taintVal) zero() bool { return t.mask == 0 && !t.pool }

func (t taintVal) union(o taintVal) taintVal {
	return taintVal{mask: t.mask | o.mask, pool: t.pool || o.pool}
}

// escScan is one function's flow-insensitive scratch-taint state.
type escScan struct {
	pass  *Pass
	fd    funcWithDecl
	taint map[types.Object]taintVal
}

func newEscScan(pass *Pass, fd funcWithDecl) *escScan {
	sc := &escScan{pass: pass, fd: fd, taint: map[types.Object]taintVal{}}
	// Seed scratch-typed receiver (bit 0) and parameters (bit i+1).
	if fd.decl.Recv != nil {
		for _, field := range fd.decl.Recv.List {
			for _, name := range field.Names {
				sc.seedParam(name, 0)
			}
		}
	}
	i := 0
	for _, field := range fd.decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			sc.seedParam(name, uint64(i+1))
			i++
		}
	}
	return sc
}

func (sc *escScan) seedParam(name *ast.Ident, bit uint64) {
	obj := sc.pass.Info.Defs[name]
	if obj == nil || bit >= 64 || !isScratchType(obj.Type()) {
		return
	}
	sc.taint[obj] = taintVal{mask: 1 << bit}
}

// propagate runs the intra-function fixpoint over assignments, var specs,
// and range clauses (function literals included — closures share the
// enclosing frame's variables).
func (sc *escScan) propagate() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(sc.fd.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if sc.mergeInto(lhs, sc.rhsTaint(n.Lhs, n.Rhs, i)) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if len(n.Values) == 0 {
						continue
					}
					var tv taintVal
					if len(n.Values) == len(n.Names) {
						tv = sc.exprTaint(n.Values[i])
					} else {
						tv = sc.exprTaint(n.Values[0])
					}
					if sc.mergeInto(name, tv) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if sc.mergeInto(n.Value, sc.exprTaint(n.X)) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// rhsTaint resolves the taint flowing into Lhs[i]: element-wise for a
// balanced assignment, the single call's taint for a tuple assignment.
func (sc *escScan) rhsTaint(lhs, rhs []ast.Expr, i int) taintVal {
	if len(lhs) == len(rhs) {
		return sc.exprTaint(rhs[i])
	}
	return sc.exprTaint(rhs[0])
}

// mergeInto folds taint into the variable an identifier names; reports
// whether anything new was learned.
func (sc *escScan) mergeInto(lhs ast.Expr, tv taintVal) bool {
	if tv.zero() {
		return false
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := sc.objOf(id)
	if obj == nil || !taintableType(obj.Type()) {
		return false
	}
	cur := sc.taint[obj]
	next := cur.union(tv)
	if next == cur {
		return false
	}
	sc.taint[obj] = next
	return true
}

func (sc *escScan) objOf(id *ast.Ident) types.Object {
	if obj := sc.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return sc.pass.Info.Uses[id]
}

// exprTaint computes the taint of one expression. Values of scalar type
// never carry taint: they are copies, not aliases.
func (sc *escScan) exprTaint(expr ast.Expr) taintVal {
	tv := sc.rawExprTaint(expr)
	if tv.zero() {
		return tv
	}
	if t := sc.pass.Info.TypeOf(expr); t != nil && !taintableType(t) {
		return taintVal{}
	}
	return tv
}

func (sc *escScan) rawExprTaint(expr ast.Expr) taintVal {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := sc.objOf(e); obj != nil {
			return sc.taint[obj]
		}
	case *ast.ParenExpr:
		return sc.rawExprTaint(e.X)
	case *ast.SelectorExpr:
		if pkgNameOf(sc.pass.Info, e.X) != nil {
			return taintVal{}
		}
		return sc.exprTaint(e.X)
	case *ast.IndexExpr:
		return sc.exprTaint(e.X)
	case *ast.IndexListExpr:
		return sc.exprTaint(e.X)
	case *ast.SliceExpr:
		return sc.exprTaint(e.X)
	case *ast.StarExpr:
		return sc.exprTaint(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return sc.exprTaint(e.X)
		}
	case *ast.TypeAssertExpr:
		if e.Type != nil && isScratchType(sc.pass.Info.TypeOf(e)) {
			// pool.Get().(*Scratch): memory straight out of a pool.
			return taintVal{pool: true}
		}
		return sc.exprTaint(e.X)
	case *ast.CompositeLit:
		// A literal embedding a tainted value is as dangerous as the value.
		var tv taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			tv = tv.union(sc.exprTaint(el))
		}
		return tv
	case *ast.CallExpr:
		return sc.callTaint(e)
	}
	return taintVal{}
}

// callTaint resolves a call's result taint: appends alias their first
// argument, conversions their operand, and resolved callees contribute
// their EscapeFact (pool results, plus the arguments their ParamMask
// selects).
func (sc *escScan) callTaint(call *ast.CallExpr) taintVal {
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(sc.pass.Info, fun) {
		if fun.Name == "append" && len(call.Args) > 0 {
			return sc.exprTaint(call.Args[0])
		}
		return taintVal{}
	}
	if tv, ok := sc.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Conversion: same memory, new type (string conversions copy, but
		// the scalar gate already clears those).
		return sc.exprTaint(call.Args[0])
	}
	var out taintVal
	for _, callee := range sc.pass.Graph.Callees(sc.pass.Info, call) {
		f, ok := sc.pass.ImportObjectFact(callee)
		if !ok {
			continue
		}
		fact := f.(*EscapeFact)
		if fact.Pool {
			out.pool = true
		}
		if fact.ParamMask&1 != 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if _, isMethod := sc.pass.Info.Selections[sel]; isMethod {
					out = out.union(sc.exprTaint(sel.X))
				}
			}
		}
		for j, arg := range call.Args {
			if j+1 < 64 && fact.ParamMask&(1<<uint(j+1)) != 0 {
				out = out.union(sc.exprTaint(arg))
			}
		}
	}
	return out
}

// summary folds the taint of the declaration's own return statements
// (returns inside nested literals return from the literal, not from this
// function).
func (sc *escScan) summary() (mask uint64, pool bool) {
	for _, ret := range sc.declReturns() {
		for _, res := range ret.Results {
			tv := sc.exprTaint(res)
			mask |= tv.mask
			pool = pool || tv.pool
		}
	}
	return mask, pool
}

func (sc *escScan) declReturns() []*ast.ReturnStmt {
	var rets []*ast.ReturnStmt
	inspectShallow(sc.fd.decl.Body, func(n ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			rets = append(rets, ret)
		}
	})
	return rets
}

// reportViolations flags the three escape shapes once taint is stable.
func (sc *escScan) reportViolations() {
	pass := sc.pass
	// Pool-derived returns: the caller would hold recycled memory.
	for _, ret := range sc.declReturns() {
		for _, res := range ret.Results {
			if sc.exprTaint(res).pool {
				pass.Reportf(ret.Pos(), "pooled scratch memory returned from %s; the pool will recycle it out from under the caller", sc.fd.obj.Name())
			}
		}
	}
	ast.Inspect(sc.fd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				tv := sc.rhsTaint(n.Lhs, n.Rhs, i)
				if tv.zero() {
					continue
				}
				sc.checkStore(lhs, n.Pos())
			}
		case *ast.GoStmt:
			sc.checkGoroutine(n)
		}
		return true
	})
}

// checkStore flags a tainted value landing in a location that outlives the
// borrow: a field or element of a non-scratch base, or a package-level
// variable. Writing into the scratch value's own fields (s.ra = ...) is
// the hot path working as intended.
func (sc *escScan) checkStore(lhs ast.Expr, pos token.Pos) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sc.exprTaint(l.X).zero() {
			sc.pass.Reportf(pos, "scratch-derived value stored into a struct field; it outlives the borrow and the pool will recycle it")
		}
	case *ast.IndexExpr:
		if sc.exprTaint(l.X).zero() {
			sc.pass.Reportf(pos, "scratch-derived value stored into a map or slice element; it outlives the borrow and the pool will recycle it")
		}
	case *ast.Ident:
		obj, ok := sc.objOf(l).(*types.Var)
		if ok && obj.Parent() == sc.pass.Pkg.Scope() {
			sc.pass.Reportf(pos, "scratch-derived value stored into package-level variable %s; it outlives the borrow and the pool will recycle it", obj.Name())
		}
	}
}

// checkGoroutine flags scratch taint crossing into a goroutine, either as
// an argument or captured by the literal's body.
func (sc *escScan) checkGoroutine(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if !sc.exprTaint(arg).zero() {
			sc.pass.Reportf(arg.Pos(), "scratch-derived value passed to a goroutine; the pool may recycle it concurrently")
			return
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := sc.pass.Info.Uses[id]; obj != nil && !sc.taint[obj].zero() {
			reported = true
			sc.pass.Reportf(g.Pos(), "goroutine captures scratch-derived value %s; the pool may recycle it concurrently", id.Name)
		}
		return true
	})
}

// isScratchType matches (pointers to) named types whose name ends in
// "Scratch" — the repo's naming convention for pooled per-pair state.
func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && strings.HasSuffix(n.Obj().Name(), "Scratch")
}

// taintableType reports whether values of a type can alias scratch memory.
// Scalars (numbers, strings, bools) are copies and never carry taint.
func taintableType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Basic:
		return false
	}
	return true
}
