package analysis

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"slices"
	"strings"
)

// This file is falcon-vet's autofix engine. Analyzers attach
// SuggestedFixes to diagnostics (via Pass.ReportFixf); ApplyFixes turns
// the first fix of every diagnostic into concrete file contents, refusing
// overlapping edits so the result is always a valid single application.
// The contract the -fix CLI mode and CI rely on is idempotence: running
// the analyzers again over the fixed tree yields zero fixable
// diagnostics, because every fix removes the pattern its analyzer
// matches.

// TextEdit replaces the byte range [Start, End) of File with New. A
// zero-width range (Start == End) is an insertion.
type TextEdit struct {
	File  string
	Start int
	End   int
	New   string
}

// SuggestedFix is one machine-applicable correction for a diagnostic. All
// edits are applied together or not at all.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// FixResult is the outcome of ApplyFixes.
type FixResult struct {
	// Files maps each modified path to its complete new contents.
	Files map[string][]byte
	// Applied counts diagnostics whose fix was accepted.
	Applied int
	// Skipped counts fixable diagnostics dropped because their edits
	// overlap a fix accepted earlier (they surface again on the next run).
	Skipped int
}

// ApplyFixes applies the first suggested fix of every diagnostic, in
// diagnostic order. A fix is accepted atomically: if any of its edits
// overlaps an already-accepted edit, the whole fix is skipped. Identical
// edits (two diagnostics proposing the same change) coalesce. Managed
// stdlib imports ("sort", "slices", "cmp", "maps") are added or removed to match
// the edited code, and every touched file is reformatted.
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	res := &FixResult{Files: map[string][]byte{}}
	accepted := map[string][]TextEdit{}

	conflicts := func(e TextEdit) bool {
		for _, a := range accepted[e.File] {
			if a == e {
				continue
			}
			if e.Start < a.End && a.Start < e.End {
				return true
			}
			// Distinct insertions at the same point have no defined order.
			if e.Start == a.Start && (e.Start == e.End || a.Start == a.End) {
				return true
			}
		}
		return false
	}
	duplicate := func(e TextEdit) bool {
		for _, a := range accepted[e.File] {
			if a == e {
				return true
			}
		}
		return false
	}

	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		var fresh []TextEdit
		ok := len(fix.Edits) > 0
		for _, e := range fix.Edits {
			if e.Start < 0 || e.End < e.Start {
				return nil, fmt.Errorf("%s: invalid edit range [%d,%d)", e.File, e.Start, e.End)
			}
			if duplicate(e) {
				continue
			}
			if conflicts(e) {
				ok = false
				break
			}
			fresh = append(fresh, e)
		}
		if !ok {
			res.Skipped++
			continue
		}
		for _, e := range fresh {
			accepted[e.File] = append(accepted[e.File], e)
		}
		res.Applied++
	}

	files := make([]string, 0, len(accepted))
	for file := range accepted {
		files = append(files, file)
	}
	slices.Sort(files)
	for _, file := range files {
		edits := accepted[file]
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		slices.SortFunc(edits, func(a, b TextEdit) int {
			if a.Start != b.Start {
				return b.Start - a.Start // descending: apply from the end
			}
			return b.End - a.End
		})
		for _, e := range edits {
			if e.End > len(src) {
				return nil, fmt.Errorf("%s: edit end %d beyond file size %d", file, e.End, len(src))
			}
			src = append(src[:e.Start], append([]byte(e.New), src[e.End:]...)...)
		}
		src = adjustImports(src)
		formatted, err := format.Source(src)
		if err != nil {
			return nil, fmt.Errorf("%s: fixed source does not parse: %v", file, err)
		}
		res.Files[file] = formatted
	}
	return res, nil
}

// Write persists every fixed file back to disk.
func (r *FixResult) Write() error {
	for name, data := range r.Files {
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// managedImports are the only import paths the fix engine will add or
// remove — the stdlib packages its own rewrites introduce or obsolete.
// For all of them the import path equals the package name.
var managedImports = map[string]bool{"sort": true, "slices": true, "cmp": true, "maps": true}

// adjustImports reconciles the managed imports of a just-edited file with
// its code: a managed package that is imported but no longer referenced is
// removed, one that is referenced but not imported is inserted into the
// first import group in sorted order. Unparseable input is returned
// unchanged (the caller's format.Source reports the real error).
func adjustImports(src []byte) []byte {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		return src
	}

	// Local import names in scope, and managed names referenced without an
	// import (our rewrites emit `slices.` / `cmp.` qualifiers verbatim).
	local := map[string]string{}
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := path[strings.LastIndexByte(path, '/')+1:]
		if spec.Name != nil {
			name = spec.Name.Name
		}
		local[name] = path
	}
	usedPaths := map[string]bool{}
	needed := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if p, ok := local[id.Name]; ok {
				usedPaths[p] = true
			} else if managedImports[id.Name] {
				needed[id.Name] = true
			}
		}
		return true
	})

	lineStart := func(off int) int {
		for off > 0 && src[off-1] != '\n' {
			off--
		}
		return off
	}
	lineEnd := func(off int) int {
		for off < len(src) && src[off] != '\n' {
			off++
		}
		if off < len(src) {
			off++ // include the newline
		}
		return off
	}

	var edits []TextEdit
	var firstBlock *ast.GenDecl
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if firstBlock == nil && gd.Lparen.IsValid() {
			firstBlock = gd
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			path := strings.Trim(is.Path.Value, `"`)
			if managedImports[path] && !usedPaths[path] && is.Name == nil {
				off := fset.Position(is.Pos()).Offset
				edits = append(edits, TextEdit{Start: lineStart(off), End: lineEnd(fset.Position(is.End()).Offset)})
			}
		}
	}

	var missing []string
	for name := range needed {
		missing = append(missing, name)
	}
	slices.Sort(missing)
	for _, name := range missing {
		text := "\t" + `"` + name + `"` + "\n"
		if firstBlock == nil {
			// No parenthesized block: add a standalone import after the
			// package clause (format.Source keeps it valid).
			off := lineEnd(fset.Position(f.Name.End()).Offset)
			edits = append(edits, TextEdit{Start: off, End: off, New: "\nimport " + `"` + name + `"` + "\n"})
			continue
		}
		// Insert within the first group (the stdlib group — all managed
		// packages are stdlib), keeping it sorted so gofmt stays happy.
		insert := -1
		prevLine := -1
		var lastInGroup *ast.ImportSpec
		for _, spec := range firstBlock.Specs {
			is := spec.(*ast.ImportSpec)
			if prevLine >= 0 && fset.Position(is.Pos()).Line > prevLine+1 {
				break // blank line: end of the first group
			}
			prevLine = fset.Position(is.End()).Line
			lastInGroup = is
			if insert < 0 && strings.Trim(is.Path.Value, `"`) > name {
				insert = lineStart(fset.Position(is.Pos()).Offset)
			}
		}
		if insert < 0 {
			if lastInGroup == nil {
				insert = lineEnd(fset.Position(firstBlock.Lparen).Offset)
			} else {
				insert = lineEnd(fset.Position(lastInGroup.End()).Offset)
			}
		}
		edits = append(edits, TextEdit{Start: insert, End: insert, New: text})
	}

	slices.SortFunc(edits, func(a, b TextEdit) int {
		if a.Start != b.Start {
			return b.Start - a.Start
		}
		return b.End - a.End
	})
	for _, e := range edits {
		src = append(src[:e.Start], append([]byte(e.New), src[e.End:]...)...)
	}
	return src
}

// staleAllowFix builds the deletion edit for a stale //falcon:allow
// directive: the whole line when the directive stands alone, otherwise
// just the comment and the spaces separating it from the code it trails.
// src may be nil (unreadable file), in which case no fix is offered.
func staleAllowFix(src []byte, d *allowDirective) []SuggestedFix {
	start := d.pos.Offset
	end := d.endOff
	if src == nil || start < 0 || end > len(src) || start >= end {
		return nil
	}
	lineStart := start - (d.pos.Column - 1)
	if lineStart < 0 {
		return nil
	}
	alone := strings.TrimSpace(string(src[lineStart:start])) == ""
	if alone {
		start = lineStart
		if end < len(src) && src[end] == '\n' {
			end++
		}
	} else {
		for start > lineStart && (src[start-1] == ' ' || src[start-1] == '\t') {
			start--
		}
	}
	return []SuggestedFix{{
		Message: "remove stale //falcon:allow directive",
		Edits:   []TextEdit{{File: d.pos.Filename, Start: start, End: end}},
	}}
}
