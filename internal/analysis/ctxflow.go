package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow guards the cancellation story: once a function has a
// context.Context, that context must actually flow into the blocking work
// below it. Three rules, checked wherever ctx is in scope (a parameter of
// the function, or inherited by a closure):
//
//	R1 — context.Background()/context.TODO() must not appear as a call
//	     argument: it severs the cancellation chain right where a real ctx
//	     was available. (Plain `ctx = context.Background()` nil-defaulting
//	     assignments are fine — nothing was severed.)
//	R2 — calling a ctx-less function that has a *Context sibling
//	     (LabelMajority vs LabelMajorityContext, Run vs RunContext) drops
//	     ctx on the floor; call the sibling.
//	R3 — calling a ctx-less function that *transitively* blocks on
//	     crowd/mapreduce work (a BlocksFact, propagated cross-package in
//	     dependency order) makes that whole subtree uncancellable. This is
//	     the interprocedural rule: the blocking call may be any number of
//	     packages away.
//
// Convenience wrappers without a ctx parameter (falcon.Match, crowd's
// LabelMajority) are legal — they had no ctx to drop. They do carry a
// BlocksFact, so a ctx-holding caller reaching for them is flagged by R3.
//
// BlocksFact seeds are structural, matching the repo's simulation
// primitives by shape so fixtures can reproduce them: methods named
// Label* on a type Crowd in a package named "crowd", and the
// Run/Execute family in a package named "mapreduce", when they take no
// ctx; plus any ctx-less function passing context.Background()/TODO()
// into a ctx-taking callee.
var CtxFlow = &Analyzer{
	Name:  "ctxflow",
	Doc:   "flags ctx-holding code that severs cancellation: Background/TODO as call args, dropped-ctx calls with *Context siblings, and calls into uncancellable blocking subtrees",
	Facts: true,
	Run:   runCtxFlow,
}

// BlocksFact marks a ctx-less function that (transitively) blocks on
// crowd/mapreduce work. Chain[0] is the function itself; the last entry is
// the blocking primitive.
type BlocksFact struct {
	Chain []string
}

func (*BlocksFact) AFact() {}

// mapreduceBlocking is the Run/Execute family in a package named
// "mapreduce"; the ctx-less members block until the whole job finishes.
var mapreduceBlocking = map[string]bool{
	"Run": true, "RunContext": true, "RunMapOnly": true,
	"RunMapOnlyContext": true, "Execute": true, "ExecuteMapOnly": true,
}

func runCtxFlow(pass *Pass) {
	fns := declaredFuncs(pass)

	// Seed: structural blocking primitives without a ctx parameter.
	for _, fd := range fns {
		if hasCtxParam(funcSig(fd.obj)) {
			continue
		}
		if isBlockingPrimitive(fd.obj) {
			pass.ExportObjectFact(fd.obj, &BlocksFact{Chain: []string{fd.obj.FullName()}})
		}
	}

	// Fixpoint: a ctx-less function that calls into a blocking fact, or
	// hands context.Background()/TODO() to a ctx-taking callee, blocks too.
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			if hasCtxParam(funcSig(fd.obj)) {
				continue
			}
			if _, ok := pass.ImportObjectFact(fd.obj); ok {
				continue
			}
			fact := blockingCall(pass, fd.decl)
			if fact == nil {
				continue
			}
			chain := append([]string{fd.obj.FullName()}, fact.Chain...)
			pass.ExportObjectFact(fd.obj, &BlocksFact{Chain: chain})
			changed = true
		}
	}

	// Report R1/R2/R3 wherever ctx is in scope.
	for _, fd := range fns {
		inCtx := hasCtxParam(funcSig(fd.obj))
		inspectCtxScoped(pass.Info, fd.decl.Body, inCtx, func(n ast.Node, inCtx bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !inCtx {
				return
			}
			checkCtxCall(pass, fd, call)
		})
	}
}

// checkCtxCall applies R1/R2/R3 to one call made while ctx is in scope.
func checkCtxCall(pass *Pass, fd funcWithDecl, call *ast.CallExpr) {
	// R1: Background/TODO as an argument severs the chain in place.
	for _, arg := range call.Args {
		if name := backgroundCtxCall(pass.Info, arg); name != "" {
			pass.Reportf(arg.Pos(), "ctx is in scope but context.%s() is passed instead; the cancellation chain is severed here", name)
		}
	}
	for _, callee := range pass.Graph.Callees(pass.Info, call) {
		if hasCtxParam(funcSig(callee)) {
			continue
		}
		// R2: a *Context sibling exists — ctx was droppable only by choice.
		if sib := contextSibling(callee); sib != nil {
			pass.Reportf(call.Pos(), "call to %s drops ctx; use %s", callee.Name(), sib.Name())
			return
		}
		// R3: the ctx-less callee transitively blocks on crowd/MR work.
		if f, ok := pass.ImportObjectFact(callee); ok {
			fact := f.(*BlocksFact)
			chain := append([]string{fd.obj.FullName()}, fact.Chain...)
			pass.ReportChain(call.Pos(), chain,
				"call to %s reaches blocking work that cannot be cancelled from here; thread ctx through it; chain: %s",
				callee.FullName(), strings.Join(chain, " -> "))
			return
		}
	}
}

// blockingCall finds the first call in a ctx-less declaration that makes it
// blocking: a callee carrying a BlocksFact, or context.Background()/TODO()
// handed to a ctx-taking callee. Per-edge ctxflow allows stop propagation.
func blockingCall(pass *Pass, decl *ast.FuncDecl) *BlocksFact {
	for _, cs := range callsOf(pass, decl) {
		if pass.Allowed(cs.call.Pos(), "ctxflow") {
			continue
		}
		for _, callee := range cs.callees {
			if hasCtxParam(funcSig(callee)) {
				for _, arg := range cs.call.Args {
					if backgroundCtxCall(pass.Info, arg) != "" {
						return &BlocksFact{Chain: []string{callee.FullName()}}
					}
				}
				continue
			}
			if f, ok := pass.ImportObjectFact(callee); ok {
				return f.(*BlocksFact)
			}
		}
	}
	return nil
}

// isBlockingPrimitive matches the simulation's blocking surfaces by shape:
// Label* methods on a Crowd type in a package named "crowd", and the
// Run/Execute family in a package named "mapreduce".
func isBlockingPrimitive(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Name() {
	case "crowd":
		if !strings.HasPrefix(fn.Name(), "Label") {
			return false
		}
		recv := funcSig(fn).Recv()
		return recv != nil && namedTypeName(recv.Type()) == "Crowd"
	case "mapreduce":
		return funcSig(fn).Recv() == nil && mapreduceBlocking[fn.Name()]
	}
	return false
}

// namedTypeName returns the name of the (possibly pointed-to) named type,
// or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// contextSibling returns the ctx-taking Name+"Context" counterpart of a
// function or method, or nil.
func contextSibling(fn *types.Func) *types.Func {
	name := fn.Name() + "Context"
	var obj types.Object
	if recv := funcSig(fn).Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else if fn.Pkg() != nil {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	sib, ok := obj.(*types.Func)
	if !ok || !hasCtxParam(funcSig(sib)) {
		return nil
	}
	return sib
}

// backgroundCtxCall reports whether an expression is a direct
// context.Background() or context.TODO() call, returning the function name.
func backgroundCtxCall(info *types.Info, expr ast.Expr) string {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil || pn.Imported().Path() != "context" {
		return ""
	}
	if name := sel.Sel.Name; name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// hasCtxParam reports whether the signature takes a context.Context.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isStdContext(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isStdContext matches the context.Context interface type.
func isStdContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// inspectCtxScoped walks a body tracking whether a context parameter is in
// scope: closures inherit the enclosing scope's ctx, and a literal with its
// own ctx parameter opens a ctx scope of its own.
func inspectCtxScoped(info *types.Info, body *ast.BlockStmt, inCtx bool, visit func(n ast.Node, inCtx bool)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litCtx := inCtx
			if sig, ok := info.TypeOf(lit).(*types.Signature); ok && hasCtxParam(sig) {
				litCtx = true
			}
			inspectCtxScoped(info, lit.Body, litCtx, visit)
			return false
		}
		if n != nil {
			visit(n, inCtx)
		}
		return true
	})
}
