package analysis

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"sync"
)

// This file is falcon-vet's content-addressed on-disk result cache. One
// entry holds everything a package's analysis task produces — its
// diagnostics (stale-allow findings and autofix edits included), its
// exported facts, and its published lock-edge stream — keyed by a hash
// that covers everything the task's verdict can depend on:
//
//	key(P) = sha256( format ‖ salt ‖ P.path
//	               ‖ (name, sha256(bytes)) for each of P's source files
//	               ‖ key(D) for each direct module-local import D, path order )
//
// where salt = go toolchain version ‖ EngineVersion ‖ the sorted selected
// analyzer names. The dep component is the dep's *key*, recursively, so a
// change anywhere in a package's transitive dependency closure changes
// its own key. That is the whole invalidation story: touch a file and the
// package plus every reverse dependent re-runs; everything else hits.
//
// Deliberately NOT in the key: any early-cutoff hash of dep *facts*.
// Facts are not a complete interface between packages — a new method on a
// dependency's concrete type can change how a dependent's interface
// dispatch resolves (and so its verdict) without changing any exported
// fact — so "dep facts unchanged → skip dependent" is unsound. Source
// keys over-invalidate slightly and are sound by construction; see
// DESIGN.md "Incremental vet".
//
// Entries are immutable and content-addressed (the key is the file name),
// so a cache directory restored from another run, branch, or CI machine
// can only ever produce hits that are exactly right or misses — never a
// wrong answer.

// EngineVersion names the analyzer-suite revision and participates in
// every cache key. Bump it whenever any analyzer's semantics change so
// entries written by older binaries can never satisfy a new run.
const EngineVersion = "11"

// cacheFormat guards the gob layout of entries, independent of analyzer
// semantics.
const cacheFormat = "falcon-vet/1"

func init() {
	// Every Fact implementation crosses the gob boundary as an interface
	// value and must be registered.
	gob.Register(&ReachFact{})
	gob.Register(&BlocksFact{})
	gob.Register(&EscapeFact{})
	gob.Register(&MutFact{})
	gob.Register(&LockFact{})
	gob.Register(&FreezeFact{})
	gob.Register(&ServeFact{})
	gob.Register(&StreamFact{})
	gob.Register(&SpillResFact{})
}

// srcFile is one source file's identity in a cache key.
type srcFile struct {
	name string
	sum  [sha256.Size]byte
}

// sourceFiles hashes a loaded package's retained sources, sorted by base
// name — the same shape moduleScan produces from raw disk reads, so the
// loaded-package and scan-only key computations agree byte for byte.
func sourceFiles(sources map[string][]byte) []srcFile {
	files := make([]srcFile, 0, len(sources))
	for path, src := range sources {
		files = append(files, srcFile{name: filepath.Base(path), sum: sha256.Sum256(src)})
	}
	slices.SortFunc(files, func(a, b srcFile) int { return strings.Compare(a.name, b.name) })
	return files
}

// analyzerSalt builds the run-configuration component of cache keys.
// extra is a test hook standing in for an analyzer-version bump.
func analyzerSalt(analyzers []*Analyzer, extra string) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	slices.Sort(names)
	return runtime.Version() + "\x00" + EngineVersion + "\x00" + strings.Join(names, ",") + "\x00" + extra
}

// cacheKey combines one package's identity, content, and dependency keys.
func cacheKey(salt, path string, files []srcFile, depKeys []string) string {
	h := sha256.New()
	field := func(s string) {
		// hash.Hash writes never fail.
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	field(cacheFormat)
	field(salt)
	field(path)
	for _, f := range files {
		field(f.name)
		_, _ = h.Write(f.sum[:])
	}
	for _, k := range depKeys {
		field(k)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the on-disk record of one package's analysis. File names
// inside (diagnostic positions, fix edits, and lock-edge witness
// positions) are module-root-relative so a cache directory survives
// checkout moves and CI restores.
type cacheEntry struct {
	Format string
	Path   string
	Diags  []Diagnostic
	Edges  []LockEdge
	Facts  []factRecord
}

// factRecord is one exported fact, keyed by its analyzer and its owning
// function's FullName (the only objects falcon-vet's analyzers export
// facts about are their own package's declared functions and methods).
type factRecord struct {
	Analyzer string
	Func     string
	Fact     Fact
}

// cacheSession is one run's view of a cache directory.
type cacheSession struct {
	dir  string // cache directory
	root string // module root, for path relativization
	salt string

	mu     sync.Mutex
	hits   []string
	misses []string
}

func newCacheSession(dir, root string, analyzers []*Analyzer, saltExtra string) *cacheSession {
	return &cacheSession{dir: dir, root: root, salt: analyzerSalt(analyzers, saltExtra)}
}

func (cs *cacheSession) entryFile(key string) string {
	return filepath.Join(cs.dir, key[:2], key+".gob")
}

// keyFor computes a package's cache key. Its direct deps' tasks have
// already completed (DAG scheduling), so their keys are final.
func (cs *cacheSession) keyFor(pc *pkgCtx) string {
	depKeys := make([]string, 0, len(pc.deps))
	for _, d := range pc.deps {
		depKeys = append(depKeys, d.key)
	}
	return cacheKey(cs.salt, pc.pkg.Path, sourceFiles(pc.pkg.Sources), depKeys)
}

func (cs *cacheSession) recordHit(path string) {
	cs.mu.Lock()
	cs.hits = append(cs.hits, path)
	cs.mu.Unlock()
}

func (cs *cacheSession) recordMiss(path string) {
	cs.mu.Lock()
	cs.misses = append(cs.misses, path)
	cs.mu.Unlock()
}

// loadEntry reads and sanity-checks one entry by key.
func (cs *cacheSession) loadEntry(key, path string) *cacheEntry {
	f, err := os.Open(cs.entryFile(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	var e cacheEntry
	if gob.NewDecoder(f).Decode(&e) != nil || e.Format != cacheFormat || e.Path != path {
		return nil
	}
	return &e
}

// restore satisfies one package task from the cache: diagnostics and the
// lock-edge stream land on the pkgCtx, facts land in the package's shard
// rehydrated onto the freshly type-checked objects. Any unresolvable fact
// owner makes the whole probe a miss (nothing is committed), so a re-run
// never sees half-restored state.
func (cs *cacheSession) restore(pc *pkgCtx, facts *factStore, analyzers []*Analyzer) bool {
	e := cs.loadEntry(pc.key, pc.pkg.Path)
	if e == nil {
		cs.recordMiss(pc.pkg.Path)
		return false
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	shard := facts.shards[pc.pkg.Types]
	objs := packageFuncs(pc.pkg.Types)
	type resolved struct {
		key  factKey
		fact Fact
	}
	recs := make([]resolved, 0, len(e.Facts))
	for _, r := range e.Facts {
		a := byName[r.Analyzer]
		obj := objs[r.Func]
		if a == nil || obj == nil || r.Fact == nil || shard == nil {
			cs.recordMiss(pc.pkg.Path)
			return false
		}
		recs = append(recs, resolved{factKey{a, obj}, r.Fact})
	}
	for _, r := range recs {
		shard.m[r.key] = r.fact
	}
	pc.edges = mapEdgePaths(e.Edges, cs.absPath)
	pc.diags = cs.absDiags(e.Diags)
	cs.recordHit(pc.pkg.Path)
	return true
}

// store writes one freshly analyzed package's entry, best-effort: a
// failed write only costs a future miss.
func (cs *cacheSession) store(pc *pkgCtx, facts *factStore) {
	e := &cacheEntry{
		Format: cacheFormat,
		Path:   pc.pkg.Path,
		Diags:  cs.relDiags(pc.diags),
		Edges:  mapEdgePaths(pc.edges, cs.relPath),
	}
	if shard := facts.shards[pc.pkg.Types]; shard != nil {
		for k, f := range shard.m {
			fn, ok := k.obj.(*types.Func)
			if !ok || fn.Name() == "init" {
				// init functions collide on FullName and are never called,
				// so their facts are never imported; skip them.
				continue
			}
			e.Facts = append(e.Facts, factRecord{Analyzer: k.analyzer.Name, Func: fn.FullName(), Fact: f})
		}
	}
	slices.SortFunc(e.Facts, func(a, b factRecord) int {
		if c := strings.Compare(a.Analyzer, b.Analyzer); c != 0 {
			return c
		}
		return strings.Compare(a.Func, b.Func)
	})

	sub := filepath.Dir(cs.entryFile(pc.key))
	if os.MkdirAll(sub, 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(sub, "entry-*.tmp")
	if err != nil {
		return
	}
	encErr := gob.NewEncoder(tmp).Encode(e)
	closeErr := tmp.Close()
	if encErr != nil || closeErr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), cs.entryFile(pc.key)) != nil {
		_ = os.Remove(tmp.Name())
	}
}

// packageFuncs indexes a type-checked package's declared functions and
// methods by FullName, the inverse of factRecord.Func.
func packageFuncs(pkg *types.Package) map[string]types.Object {
	m := map[string]types.Object{}
	if pkg == nil {
		return m
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		switch o := scope.Lookup(name).(type) {
		case *types.Func:
			m[o.FullName()] = o
		case *types.TypeName:
			if named, ok := o.Type().(*types.Named); ok {
				for i := 0; i < named.NumMethods(); i++ {
					fn := named.Method(i)
					m[fn.FullName()] = fn
				}
			}
		}
	}
	return m
}

// relPath makes one file name module-root-relative; absPath is its
// inverse at restore time. Paths outside the module root pass through
// unchanged.
func (cs *cacheSession) relPath(p string) string {
	if rel, err := filepath.Rel(cs.root, p); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return p
}

func (cs *cacheSession) absPath(p string) string {
	if !filepath.IsAbs(p) {
		return filepath.Join(cs.root, filepath.FromSlash(p))
	}
	return p
}

// relDiags deep-copies diagnostics with file names made module-root-
// relative; absDiags is its inverse at restore time.
func (cs *cacheSession) relDiags(diags []Diagnostic) []Diagnostic {
	return mapDiagPaths(diags, cs.relPath)
}

func (cs *cacheSession) absDiags(diags []Diagnostic) []Diagnostic {
	return mapDiagPaths(diags, cs.absPath)
}

// mapEdgePaths rewrites a lock-edge stream's witness-position file names,
// so edge positions — like diagnostic positions — survive checkout moves
// and CI cache restores.
func mapEdgePaths(edges []LockEdge, f func(string) string) []LockEdge {
	out := make([]LockEdge, len(edges))
	for i, e := range edges {
		e.Pos.Filename = f(e.Pos.Filename)
		out[i] = e
	}
	return out
}

func mapDiagPaths(diags []Diagnostic, f func(string) string) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.Pos.Filename = f(d.Pos.Filename)
		if len(d.Fixes) > 0 {
			fixes := make([]SuggestedFix, len(d.Fixes))
			for j, fix := range d.Fixes {
				edits := make([]TextEdit, len(fix.Edits))
				for k, e := range fix.Edits {
					e.File = f(e.File)
					edits[k] = e
				}
				fix.Edits = edits
				fixes[j] = fix
			}
			d.Fixes = fixes
		}
		out[i] = d
	}
	return out
}
