package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MRPurity enforces the mapreduce sharing contract on task bodies. The
// engine runs Map/Reduce/MapOnly functions concurrently across splits and
// partitions (PR 2), and mapreduce.go's documented rules for task state
// are: consume the record, emit through ctx, and only ever write disjoint
// elements of preallocated slices. Everything else a closure can reach is
// shared between tasks, so a task body that
//
//   - assigns to or increments a captured variable,
//   - appends to a captured slice (len and backing array race),
//   - writes a captured map (concurrent map writes fault at runtime),
//   - stores through a captured pointer, or
//   - does any of the above to package-level state,
//
// is a data race the -race gate only catches under a lucky schedule. The
// analyzer is flow-aware on two axes: writes are classified through the
// FuncFlow dataflow layer (flow.go) with may-alias chasing, so a store
// through `q := p` is attributed to the captured p; and writes made while
// a mutex is held (per the lock-region interpreter) are exempt — guarded
// mutation is serialized, merely slow, and lockorder owns that story.
//
// A task body is any function with a *mapreduce.MapCtx / ReduceCtx /
// MapOnlyCtx parameter, matching costaccounting's and hotalloc's
// definition. Diagnostics report both the mutation site (the position)
// and the capture site (in the message).
//
// The analyzer is interprocedural: every function exports a MutFact
// recording which parameters it mutates through (map writes, pointer
// stores) and whether it writes package-level state, propagated to a
// fixpoint through the call graph. A task body that hands a captured map
// to a helper in another package is flagged at the call, with the chain
// down to the mutation. Limits: function values stored in fields or
// passed as callbacks are opaque, and mutation hidden inside standard-
// library calls (rand.Rand methods, atomic stores) is invisible — atomics
// are treated as synchronized by design.
var MRPurity = &Analyzer{
	Name:  "mrpurity",
	Doc:   "flags Map/Reduce task bodies that capture-and-mutate shared state (directly or via helpers, cross-package)",
	Facts: true,
	Run:   runMRPurity,
}

// MutFact summarizes how a function mutates state visible to its caller.
// Params is a bitmask: bit 0 is the receiver, bit i+1 is parameter i. A
// bit is set when the function (transitively) writes through that
// argument's referent — map writes and pointer stores, not slice-element
// writes (the sanctioned disjoint idiom) and not rebinding the local
// copy. Global, when non-empty, describes an unsynchronized write to
// package-level state reachable from the function.
type MutFact struct {
	Params     uint32
	ParamDesc  map[int]string
	ParamChain map[int][]string

	Global      string
	GlobalChain []string
}

func (*MutFact) AFact() {}

// mrFuncInfo caches the per-declaration dataflow artifacts.
type mrFuncInfo struct {
	fd   funcWithDecl
	flow *FuncFlow
	// held marks node positions where at least one lock is held.
	held map[token.Pos]bool
}

func runMRPurity(pass *Pass) {
	fns := declaredFuncs(pass)
	infos := make([]*mrFuncInfo, len(fns))
	for i, fd := range fns {
		infos[i] = &mrFuncInfo{
			fd:   fd,
			flow: funcFlowOf(pass, fd.decl),
		}
		// Positions can only be lock-held if the body acquires a lock
		// somewhere; the cached call sites answer that without the full
		// flow-sensitive interpretation (a nil held map reads as "never").
		for _, cs := range callsOf(pass, fd.decl) {
			if _, op, ok := lockOpOf(pass, cs.call); ok && (op == "Lock" || op == "RLock") {
				infos[i].held = heldPositions(pass, fd.decl.Body)
				break
			}
		}
	}

	// Fixpoint: each round recomputes every function's MutFact from its
	// direct writes plus its callees' facts; bits and globals only grow.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if exportMutFact(pass, fi) {
				changed = true
			}
		}
	}

	// Report inside task bodies.
	for _, fi := range infos {
		tasks := taskFuncs(pass, fi.fd.decl)
		for _, task := range tasks {
			checkTaskPurity(pass, fi, task, tasks)
		}
	}
}

// heldPositions interprets the body's lock regions and returns the node
// positions at which some mutex is held.
func heldPositions(pass *Pass, body *ast.BlockStmt) map[token.Pos]bool {
	held := map[token.Pos]bool{}
	walkLockFlow(pass, body, lockFlowEvents{
		acquire: func(string, bool, token.Pos, heldSet, bool) {},
		node: func(n ast.Node, h heldSet, _ bool) {
			if len(h) > 0 {
				held[n.Pos()] = true
			}
		},
	})
	return held
}

// exportMutFact merges one function's direct and call-derived mutation
// summary into the facts store, reporting whether anything new appeared.
// The summary struct is built lazily, only on the round that first grows
// the fact — the steady-state rounds of the fixpoint allocate nothing.
func exportMutFact(pass *Pass, fi *mrFuncInfo) bool {
	var cur *MutFact
	if f, ok := pass.ImportObjectFact(fi.fd.obj); ok {
		cur = f.(*MutFact)
	}
	var next *MutFact
	params := func() uint32 {
		if next != nil {
			return next.Params
		}
		if cur != nil {
			return cur.Params
		}
		return 0
	}
	global := func() string {
		if next != nil {
			return next.Global
		}
		if cur != nil {
			return cur.Global
		}
		return ""
	}
	ensure := func() *MutFact {
		if next != nil {
			return next
		}
		next = &MutFact{ParamDesc: map[int]string{}, ParamChain: map[int][]string{}}
		if cur != nil {
			next.Params = cur.Params
			next.Global, next.GlobalChain = cur.Global, cur.GlobalChain
			for k, v := range cur.ParamDesc {
				next.ParamDesc[k] = v
			}
			for k, v := range cur.ParamChain {
				next.ParamChain[k] = v
			}
		}
		return next
	}
	selfName := ""
	self := func() string {
		if selfName == "" {
			selfName = fi.fd.obj.FullName()
		}
		return selfName
	}

	// Direct writes.
	for _, w := range fi.flow.Writes() {
		if w.Root == nil || w.Kind == WriteSliceIndex || fi.held[w.Pos] {
			continue
		}
		if pass.Allowed(w.Pos, "mrpurity") {
			continue
		}
		for _, root := range fi.flow.Roots(w.Root) {
			if packageLevel(root) && global() == "" {
				n := ensure()
				n.Global = fmt.Sprintf("%s to package-level %s.%s", w.Kind, pkgPathOf(root), root.Name())
				n.GlobalChain = []string{self()}
			}
			if j, ok := paramIndex(fi.fd.obj, root); ok && mutatesReferent(w.Kind) {
				if params()&(1<<j) == 0 {
					n := ensure()
					n.Params |= 1 << j
					n.ParamDesc[j] = fmt.Sprintf("%s through its %s", w.Kind, paramName(fi.fd.obj, j))
					n.ParamChain[j] = []string{self()}
				}
			}
		}
	}

	// Call-derived mutation: callee facts flow back through arguments.
	for _, cs := range callsOf(pass, fi.fd.decl) {
		call := cs.call
		if fi.held[call.Pos()] || pass.Allowed(call.Pos(), "mrpurity") {
			continue
		}
		for _, callee := range cs.callees {
			f, ok := pass.ImportObjectFact(callee)
			if !ok {
				continue
			}
			fact := f.(*MutFact)
			if fact.Global != "" && global() == "" {
				n := ensure()
				n.Global = fact.Global
				n.GlobalChain = append([]string{self()}, fact.GlobalChain...)
			}
			if fact.Params == 0 {
				continue
			}
			for j := 0; j < 32; j++ {
				if fact.Params&(1<<j) == 0 {
					continue
				}
				arg := argExprAt(call, callee, j)
				if arg == nil {
					continue
				}
				for _, root := range fi.flow.Roots(fi.flow.rootVar(arg)) {
					if packageLevel(root) && global() == "" {
						n := ensure()
						n.Global = fmt.Sprintf("%s (package-level %s.%s)", fact.ParamDesc[j], pkgPathOf(root), root.Name())
						n.GlobalChain = append([]string{self()}, fact.ParamChain[j]...)
					}
					if k, ok := paramIndex(fi.fd.obj, root); ok {
						if params()&(1<<k) == 0 {
							n := ensure()
							n.Params |= 1 << k
							n.ParamDesc[k] = fact.ParamDesc[j]
							n.ParamChain[k] = append([]string{self()}, fact.ParamChain[j]...)
						}
					}
				}
			}
		}
	}

	// next is non-nil exactly when something new appeared this round.
	if next == nil {
		return false
	}
	pass.ExportObjectFact(fi.fd.obj, next)
	return true
}

// taskFunc is one Map/Reduce/MapOnly task body: the declaration itself or
// a nested literal with a mapreduce ctx parameter.
type taskFunc struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit: Pos..End spans params too
	body *ast.BlockStmt
}

// taskFuncs finds the task bodies in one declaration.
func taskFuncs(pass *Pass, decl *ast.FuncDecl) []taskFunc {
	var tasks []taskFunc
	if hasMapReduceCtxParam(pass, decl.Type) {
		tasks = append(tasks, taskFunc{node: decl, body: decl.Body})
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && hasMapReduceCtxParam(pass, lit.Type) {
			tasks = append(tasks, taskFunc{node: lit, body: lit.Body})
		}
		return true
	})
	return tasks
}

// checkTaskPurity reports capture-and-mutate violations inside one task
// body.
func checkTaskPurity(pass *Pass, fi *mrFuncInfo, task taskFunc, all []taskFunc) {
	lo, hi := task.node.Pos(), task.node.End()
	inTask := func(p token.Pos) bool {
		if p < lo || p > hi {
			return false
		}
		// A task body nested inside this one is its own checking scope.
		for _, other := range all {
			if other.node != task.node && other.node.Pos() > lo && other.node.End() < hi &&
				p >= other.node.Pos() && p <= other.node.End() {
				return false
			}
		}
		return true
	}
	// shared reports whether root is state outside the task: package-level
	// or declared before the task function (captured).
	shared := func(root *types.Var) (string, bool) {
		switch {
		case root == nil:
			return "", false
		case packageLevel(root):
			return fmt.Sprintf("package-level %s.%s", pkgPathOf(root), root.Name()), true
		case root.Pos() < lo || root.Pos() > hi:
			return fmt.Sprintf("captured %q", root.Name()), true
		}
		return "", false
	}

	for _, w := range fi.flow.Writes() {
		if !inTask(w.Pos) || w.Root == nil || w.Kind == WriteSliceIndex || fi.held[w.Pos] {
			continue
		}
		for _, root := range fi.flow.Roots(w.Root) {
			desc, ok := shared(root)
			if !ok {
				continue
			}
			site := fi.flow.FirstUseIn(root, lo, hi)
			if site == token.NoPos {
				site = w.Pos
			}
			pass.Reportf(w.Pos,
				"Map/Reduce task body: %s to %s (captured at %s, declared at %s); parallel tasks race — emit through ctx or write disjoint preallocated elements",
				w.Kind, desc, pass.Fset.Position(site), pass.Fset.Position(root.Pos()))
			break
		}
	}

	for _, cs := range callsOf(pass, fi.fd.decl) {
		call := cs.call
		if !inTask(call.Pos()) || fi.held[call.Pos()] {
			continue
		}
		for _, callee := range cs.callees {
			f, ok := pass.ImportObjectFact(callee)
			if !ok {
				continue
			}
			fact := f.(*MutFact)
			for j := 0; j < 32; j++ {
				if fact.Params&(1<<j) == 0 {
					continue
				}
				arg := argExprAt(call, callee, j)
				if arg == nil {
					continue
				}
				reported := false
				for _, root := range fi.flow.Roots(fi.flow.rootVar(arg)) {
					desc, ok := shared(root)
					if !ok {
						continue
					}
					chain := append([]string{fi.fd.obj.FullName()}, fact.ParamChain[j]...)
					pass.ReportChain(call.Pos(), chain,
						"Map/Reduce task body passes %s to %s, which performs a %s (declared at %s); parallel tasks race; chain: %s",
						desc, callee.FullName(), fact.ParamDesc[j], pass.Fset.Position(root.Pos()), strings.Join(chain, " -> "))
					reported = true
					break
				}
				if reported {
					break
				}
			}
			if fact.Global != "" {
				chain := append([]string{fi.fd.obj.FullName()}, fact.GlobalChain...)
				pass.ReportChain(call.Pos(), chain,
					"Map/Reduce task body calls %s, which performs an unsynchronized %s; parallel tasks race; chain: %s",
					callee.FullName(), fact.Global, strings.Join(chain, " -> "))
			}
			break
		}
	}
}

// mutatesReferent reports whether a write of this kind through a
// parameter mutates caller-visible state (rather than a local copy).
func mutatesReferent(k WriteKind) bool {
	return k == WriteMapIndex || k == WriteDeref
}

// paramIndex maps a variable to its MutFact bit for fn: 0 for the
// receiver, i+1 for parameter i.
func paramIndex(fn *types.Func, v *types.Var) (int, bool) {
	sig := funcSig(fn)
	if recv := sig.Recv(); recv != nil && recv == v {
		return 0, true
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < 31; i++ {
		if params.At(i) == v {
			return i + 1, true
		}
	}
	return 0, false
}

// paramName renders the parameter a MutFact bit refers to.
func paramName(fn *types.Func, j int) string {
	sig := funcSig(fn)
	if j == 0 {
		if recv := sig.Recv(); recv != nil {
			return fmt.Sprintf("receiver %s", recv.Name())
		}
		return "receiver"
	}
	params := sig.Params()
	if j-1 < params.Len() {
		return fmt.Sprintf("parameter %s", params.At(j-1).Name())
	}
	return fmt.Sprintf("parameter #%d", j-1)
}

// argExprAt returns the call-site expression feeding the callee's MutFact
// bit j: the receiver expression for bit 0, the j-1th argument otherwise.
func argExprAt(call *ast.CallExpr, callee *types.Func, j int) ast.Expr {
	if j == 0 {
		if funcSig(callee).Recv() == nil {
			return nil
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if j-1 < len(call.Args) {
		return call.Args[j-1]
	}
	return nil
}
