package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SortSlice modernizes the reflection-based sort.Slice/sort.SliceStable
// calls to the generic slices API. It is deliberately narrow: only
// comparators of the exact shape
//
//	func(i, j int) bool { return KEY(x[i]) < KEY(x[j]) }   // or >
//
// where both operands are the same expression over the indexed element,
// are matched — those rewrite mechanically to slices.SortFunc with
// cmp.Compare (or slices.Sort when the element itself is the ordered
// key). Anything else — custom less functions, multi-clause comparators,
// index arithmetic — is left alone and produces no diagnostic, so the
// analyzer never demands a fix it cannot apply. Every diagnostic it does
// produce carries a complete rewrite, which keeps `falcon-vet -fix`
// idempotent: after the edit there is no sort.Slice call left to match.
//
// The payoff on the hot paths is the usual one: slices.SortFunc is
// type-checked, inlines the comparator, and skips reflect.Swapper — the
// blocking-path sorts (candidate ranking, key grouping) get measurably
// cheaper for free.
var SortSlice = &Analyzer{
	Name: "sortslice",
	Doc:  "flags sort.Slice calls with mechanical comparators and rewrites them to slices.Sort / slices.SortFunc",
	Run:  runSortSlice,
}

// marker stands in for the indexed element while comparing the two
// comparator operands; \x00 cannot occur in rendered source.
const sortKeyMarker = "\x00"

func runSortSlice(pass *Pass) {
	for _, f := range pass.Files {
		imports := fileImportNames(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			text, ok := sortSliceRewrite(pass, imports, call)
			if !ok {
				return true
			}
			start := pass.Fset.Position(call.Pos())
			end := pass.Fset.Position(call.End())
			fn := text[:strings.IndexByte(text, '(')]
			pass.ReportFixf(call.Pos(), SuggestedFix{
				Message: "replace with " + fn,
				Edits:   []TextEdit{{File: start.Filename, Start: start.Offset, End: end.Offset, New: text}},
			}, "%s with a mechanical comparator; %s is type-checked and reflection-free",
				render(pass.Fset, call.Fun), fn)
			return true
		})
	}
}

// fileImportNames maps import paths to their local name in one file.
func fileImportNames(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := path[strings.LastIndexByte(path, '/')+1:]
		if spec.Name != nil {
			name = spec.Name.Name
		}
		m[path] = name
	}
	return m
}

// sortSliceRewrite matches a provably-rewritable sort.Slice call and
// returns the replacement expression text.
func sortSliceRewrite(pass *Pass, imports map[string]string, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 {
		return "", false
	}
	pn := pkgNameOf(pass.Info, sel.X)
	if pn == nil || pn.Imported().Path() != "sort" {
		return "", false
	}
	stable := false
	switch sel.Sel.Name {
	case "Slice":
	case "SliceStable":
		stable = true
	default:
		return "", false
	}
	lit, ok := call.Args[1].(*ast.FuncLit)
	if !ok || lit.Type.Params == nil || len(lit.Type.Params.List) != 1 {
		return "", false
	}
	names := lit.Type.Params.List[0].Names
	if len(names) != 2 {
		return "", false
	}
	iName, jName := names[0].Name, names[1].Name
	if len(lit.Body.List) != 1 {
		return "", false
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	bin, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.LSS && bin.Op != token.GTR) {
		return "", false
	}

	sliceText := render(pass.Fset, call.Args[0])
	kA, ok := indexedKey(render(pass.Fset, bin.X), sliceText, iName, jName)
	if !ok {
		return "", false
	}
	kB, ok := indexedKey(render(pass.Fset, bin.Y), sliceText, jName, iName)
	if !ok || kA != kB {
		return "", false
	}

	// Bare ascending element comparison: slices.Sort covers it.
	elem, ok := sliceElem(pass.Info.TypeOf(call.Args[0]))
	if !ok {
		return "", false
	}
	if kA == sortKeyMarker && bin.Op == token.LSS && isOrderedBasic(elem) {
		if !stable {
			return "slices.Sort(" + sliceText + ")", true
		}
		// SliceStable on equal basic keys is order-indifferent, but keep
		// the explicit stable form for clarity.
	}

	elemText, ok := typeTextFor(pass, imports, elem)
	if !ok {
		return "", false
	}
	a, b, ok := pickParamNames(kA, sliceText)
	if !ok {
		return "", false
	}
	keyA := strings.ReplaceAll(kA, sortKeyMarker, a)
	keyB := strings.ReplaceAll(kA, sortKeyMarker, b)
	cmpCall := "cmp.Compare(" + keyA + ", " + keyB + ")"
	if bin.Op == token.GTR {
		cmpCall = "cmp.Compare(" + keyB + ", " + keyA + ")"
	}
	fn := "slices.SortFunc"
	if stable {
		fn = "slices.SortStableFunc"
	}
	return fn + "(" + sliceText + ", func(" + a + ", " + b + " " + elemText + ") int { return " + cmpCall + " })", true
}

// indexedKey rewrites every occurrence of base[idx] in text to the
// marker and verifies nothing else references either index variable; ok
// is false when the operand is not a pure function of the indexed
// element.
func indexedKey(text, base, idx, otherIdx string) (string, bool) {
	pattern := base + "[" + idx + "]"
	var out strings.Builder
	for i := 0; i < len(text); {
		if strings.HasPrefix(text[i:], pattern) && !identChar(prevByte(text, i)) {
			out.WriteString(sortKeyMarker)
			i += len(pattern)
			continue
		}
		out.WriteByte(text[i])
		i++
	}
	key := out.String()
	if wordIn(key, idx) || wordIn(key, otherIdx) {
		return "", false
	}
	return key, true
}

func prevByte(s string, i int) byte {
	if i == 0 {
		return 0
	}
	return s[i-1]
}

// identChar treats '.' as joining, so a selector prefix (`s.` in `s.xs`)
// blocks a match on `xs`.
func identChar(c byte) bool {
	return c == '_' || c == '.' || isAlnum(c)
}

func isAlnum(c byte) bool {
	return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9') || c == '_'
}

// wordIn reports whether name occurs in s as a standalone identifier. A
// following '.' still counts (`a.x` references a); a preceding '.' does
// not (`x.a` selects a field).
func wordIn(s, name string) bool {
	for i := 0; i+len(name) <= len(s); i++ {
		if s[i:i+len(name)] != name {
			continue
		}
		if identChar(prevByte(s, i)) {
			continue
		}
		if i+len(name) < len(s) && isAlnum(s[i+len(name)]) {
			continue
		}
		return true
	}
	return false
}

// pickParamNames chooses comparator parameter names that collide with
// nothing in the key expression or the slice expression.
func pickParamNames(key, sliceText string) (string, string, bool) {
	for _, cand := range [][2]string{{"a", "b"}, {"x", "y"}, {"va", "vb"}} {
		if !wordIn(key, cand[0]) && !wordIn(key, cand[1]) &&
			!wordIn(sliceText, cand[0]) && !wordIn(sliceText, cand[1]) {
			return cand[0], cand[1], true
		}
	}
	return "", "", false
}

func sliceElem(t types.Type) (types.Type, bool) {
	if t == nil {
		return nil, false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil, false
	}
	return s.Elem(), true
}

func isOrderedBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsOrdered != 0
}

// typeTextFor renders a type for use in generated source within pass's
// package, verifying every named component is reachable: local, or
// exported from a package this file imports. ok is false otherwise — the
// caller then declines to offer a rewrite at all.
func typeTextFor(pass *Pass, imports map[string]string, t types.Type) (string, bool) {
	ok := true
	var check func(t types.Type)
	seen := map[types.Type]bool{}
	check = func(t types.Type) {
		if !ok || seen[t] {
			return
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Basic:
		case *types.Pointer:
			check(t.Elem())
		case *types.Slice:
			check(t.Elem())
		case *types.Array:
			check(t.Elem())
		case *types.Map:
			check(t.Key())
			check(t.Elem())
		case *types.Chan:
			check(t.Elem())
		case *types.Interface:
			if !t.Empty() {
				ok = false
			}
		case *types.Named:
			obj := t.Obj()
			if obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
				if !obj.Exported() {
					ok = false
					return
				}
				if _, imported := imports[obj.Pkg().Path()]; !imported {
					ok = false
					return
				}
			}
			for i := 0; i < t.TypeArgs().Len(); i++ {
				check(t.TypeArgs().At(i))
			}
		default:
			ok = false
		}
	}
	check(t)
	if !ok {
		return "", false
	}
	qual := func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return imports[p.Path()]
	}
	return types.TypeString(t, qual), true
}
