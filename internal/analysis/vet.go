package analysis

import (
	"fmt"
	"slices"
)

// Vet is the falcon-vet pipeline behind the CLI: pattern resolution,
// optional diff-mode package selection, the cached fast path, and the
// (possibly parallel, possibly cache-assisted) engine run. It exists so
// the CLI, the benchmarks, and the equality/invalidation tests all drive
// the exact same code.

// VetRequest configures one Vet run.
type VetRequest struct {
	// Dir is the working directory the module is resolved from ("." when
	// empty).
	Dir string
	// Patterns select the packages to report on ("./..." when empty).
	Patterns []string
	// Analyzers is the suite to run (All() when empty).
	Analyzers []*Analyzer
	// Parallel is the number of concurrent package tasks; <= 1 is serial.
	Parallel int
	// CacheDir, when non-empty, enables the on-disk result cache.
	CacheDir string
	// DiffRef, when non-empty, restricts analysis to packages with .go
	// files changed since the git ref, plus their transitive reverse
	// dependents.
	DiffRef string
	// saltExtra perturbs the cache-key salt; the invalidation tests use it
	// to simulate an analyzer-version bump.
	saltExtra string
}

// VetResult is one Vet run's outcome.
type VetResult struct {
	// Diags are the merged diagnostics of the requested packages, in the
	// total compareDiagnostics order.
	Diags []Diagnostic
	// Errors are parse/type-check problems across the loaded closure.
	Errors []error
	// Requested are the selected packages' import paths, sorted.
	Requested []string
	// Analyzed are the closure packages actually (re-)analyzed, sorted.
	Analyzed []string
	// CacheHits are the closure packages satisfied from the cache, sorted.
	CacheHits []string
	// FastPath reports that every requested package hit the cache and the
	// run finished without type-checking anything.
	FastPath bool
}

// Vet runs the pipeline.
func Vet(req VetRequest) (*VetResult, error) {
	dir := req.Dir
	if dir == "" {
		dir = "."
	}
	analyzers := req.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.ResolveDirs(req.Patterns)
	if err != nil {
		return nil, err
	}
	res := &VetResult{}

	var scan *moduleScan
	if req.DiffRef != "" || req.CacheDir != "" {
		if scan, err = scanModule(loader); err != nil {
			return nil, err
		}
	}

	if req.DiffRef != "" {
		changed, err := changedGoDirs(loader.Root, req.DiffRef)
		if err != nil {
			return nil, err
		}
		want := scan.withReverseDeps(changed)
		dirs = slices.DeleteFunc(dirs, func(d string) bool { return !want[d] })
	}

	var cs *cacheSession
	if req.CacheDir != "" {
		cs = newCacheSession(req.CacheDir, loader.Root, analyzers, req.saltExtra)
		scan.computeKeys(cs.salt)

		// Fast path: when every requested package's entry is current, the
		// scan's keys prove the whole transitive closure unchanged, so the
		// cached diagnostics are the run's exact output — emit them without
		// type-checking a single package. This is where the warm no-change
		// run's ≥5× speedup comes from: the load is the dominant cost.
		fast := true
		var diags []Diagnostic
		for _, d := range dirs {
			sp := scan.byDir[d]
			if sp == nil {
				fast = false
				break
			}
			e := cs.loadEntry(sp.key, sp.Path)
			if e == nil {
				fast = false
				break
			}
			diags = append(diags, cs.absDiags(e.Diags)...)
		}
		if fast {
			// Count the requested packages' whole transitive closure as
			// hits: the engine path records a hit per closure package it
			// restores, and the fast path's keys prove exactly that closure
			// unchanged — so warm fast-path and partially-cached runs report
			// comparable "cache N hit(s)" numbers.
			seen := map[*scanPkg]bool{}
			var visit func(sp *scanPkg)
			visit = func(sp *scanPkg) {
				if seen[sp] {
					return
				}
				seen[sp] = true
				for _, dep := range sp.deps {
					visit(dep)
				}
				res.CacheHits = append(res.CacheHits, sp.Path)
			}
			for _, d := range dirs {
				res.Requested = append(res.Requested, scan.byDir[d].Path)
				visit(scan.byDir[d])
			}
			slices.Sort(res.Requested)
			slices.Sort(res.CacheHits)
			res.Diags = mergeDiagnostics(diags)
			res.FastPath = true
			return res, nil
		}
	}

	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	opts := Options{Parallel: req.Parallel}
	if cs != nil {
		opts.cache = cs
	}
	res.Diags = RunPackages(analyzers, pkgs, opts)

	closure := DepOrder(pkgs)
	for _, pkg := range pkgs {
		res.Requested = append(res.Requested, pkg.Path)
	}
	for _, pkg := range closure {
		res.Errors = append(res.Errors, pkg.Errors...)
	}
	if cs != nil {
		res.Analyzed = append(res.Analyzed, cs.misses...)
		res.CacheHits = append(res.CacheHits, cs.hits...)
	} else {
		for _, pkg := range closure {
			res.Analyzed = append(res.Analyzed, pkg.Path)
		}
	}
	slices.Sort(res.Requested)
	slices.Sort(res.Analyzed)
	slices.Sort(res.CacheHits)
	return res, nil
}
