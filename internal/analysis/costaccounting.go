package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CostAccounting protects the cluster-time model every figure-shaped
// experiment depends on. The mapreduce engine charges one cost unit per
// input record (map) and per grouped value (reduce) automatically; any
// Map/Reduce implementation that amplifies work — emitting inside a loop,
// so one input can produce many records — must charge that extra work via
// ctx.AddCost, or the simulated makespan silently undercounts it and the
// §10.1 operator-selection and §11.4 scale-up numbers drift.
//
// A Map/Reduce implementation is any function with a *mapreduce.MapCtx,
// *mapreduce.ReduceCtx, or *mapreduce.MapOnlyCtx parameter. It is flagged
// when it calls Emit/Output inside a for/range loop but never calls
// AddCost.
var CostAccounting = &Analyzer{
	Name: "costaccounting",
	Doc:  "flags mapreduce Map/Reduce funcs that emit in a loop without accruing cost units",
	Run:  runCostAccounting,
}

func runCostAccounting(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ftype, body = n.Type, n.Body
			case *ast.FuncLit:
				ftype, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil || !hasMapReduceCtxParam(pass, ftype) {
				return true
			}
			checkTaskBody(pass, body)
			return true
		})
	}
}

// hasMapReduceCtxParam reports whether the function takes a mapreduce
// context pointer.
func hasMapReduceCtxParam(pass *Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if isMapReduceCtx(t) {
			return true
		}
	}
	return false
}

func isMapReduceCtx(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "mapreduce") {
		return false
	}
	switch obj.Name() {
	case "MapCtx", "ReduceCtx", "MapOnlyCtx":
		return true
	}
	return false
}

// checkTaskBody flags amplified emits without cost accrual in one
// Map/Reduce body.
func checkTaskBody(pass *Pass, body *ast.BlockStmt) {
	var emitInLoop *ast.CallExpr
	var addsCost bool

	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// A nested literal is its own task body only if it takes a ctx;
			// otherwise its emits still run per-record of this task.
			if hasMapReduceCtxParam(pass, n.Type) {
				return
			}
		case *ast.ForStmt:
			if n.Init != nil {
				walk(n.Init, inLoop)
			}
			if n.Cond != nil {
				walk(n.Cond, true)
			}
			if n.Post != nil {
				walk(n.Post, true)
			}
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
			return
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Emit", "Output":
					if isCtxMethod(pass, sel) && inLoop && emitInLoop == nil {
						emitInLoop = n
					}
				case "AddCost":
					if isCtxMethod(pass, sel) {
						addsCost = true
					}
				}
			}
		}
		// Generic descent preserving the inLoop flag.
		children(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(body, false)

	if emitInLoop != nil && !addsCost {
		pass.Reportf(emitInLoop.Pos(), "Map/Reduce emits multiple records per input but never calls AddCost; the cluster-time model undercharges this task")
	}
}

// isCtxMethod reports whether sel is a method selection on a mapreduce ctx
// pointer.
func isCtxMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	return isMapReduceCtx(pass.Info.TypeOf(sel.X))
}

// children visits the direct children of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
