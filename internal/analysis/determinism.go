package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the replayability invariant Falcon's evaluation
// rests on: the simulated cluster clock, the seeded crowd, and the plan
// ladder must produce identical runs for identical seeds.
//
// It flags four nondeterminism sources:
//
//  1. Wall-clock reads — time.Now(), time.Since(), time.Until() —
//     simulation code must use the virtual clock (or an injected
//     `func() time.Time`, as internal/service does; storing time.Now as a
//     value for injection is fine, calling it is not).
//  2. Global math/rand functions (rand.Intn, rand.Shuffle, ...) — all
//     randomness must flow from a seeded *rand.Rand so a run's seed fully
//     determines it. Constructors (rand.New, rand.NewSource, rand.NewZipf)
//     are allowed.
//  3. Map iterations whose order can reach output: a `for k := range m`
//     loop whose body appends to a slice, sends on a channel, or calls an
//     Emit/Output-style sink. Appends are fine when a sort call follows
//     the loop in the same function (the sort-before-emit idiom).
//  4. Channel ranges that append results: `for r := range results` receives
//     in completion order, so appending inside the loop merges worker
//     results nondeterministically. Write into a task-indexed slice (the
//     worker-pool merge idiom of internal/mapreduce) or sort after the
//     loop instead.
//
// Determinism only sees sources in the function it inspects; its
// interprocedural companion (transdeterminism.go) reuses the source
// detectors below to chase the same sources across call and package
// boundaries.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock reads, global math/rand use, unsorted map-iteration output, and completion-order channel merges",
	Run:  runDeterminism,
}

// randConstructors are the allowed package-level math/rand functions.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// wallClockFuncs are the package time functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			case *ast.FuncLit:
				checkMapRanges(pass, n.Body)
			}
			return true
		})
	}
}

// wallClockName returns the time-package function name a call reads the
// wall clock through ("Now", "Since", "Until"), or "".
func wallClockName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil || pn.Imported().Path() != "time" || !wallClockFuncs[sel.Sel.Name] {
		return ""
	}
	return sel.Sel.Name
}

// globalRandName returns the global math/rand function a call invokes
// (constructors excepted), or "".
func globalRandName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil {
		return ""
	}
	switch pn.Imported().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			return sel.Sel.Name
		}
	}
	return ""
}

// checkDeterministicCall flags wall-clock reads and global math/rand calls.
func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	if name := wallClockName(pass.Info, call); name != "" {
		if name == "Now" {
			pass.Reportf(call.Pos(), "time.Now() breaks replayability; use the simulated clock or an injected clock func")
		} else {
			pass.Reportf(call.Pos(), "time.%s() reads the wall clock and breaks replayability; use the simulated clock or an injected clock func", name)
		}
		return
	}
	if name := globalRandName(pass.Info, call); name != "" {
		pass.Reportf(call.Pos(), "global rand.%s is not seed-deterministic; use a seeded *rand.Rand", name)
	}
}

// checkMapRanges examines every map-range and channel-range loop in one
// function body. Only top-level traversal per function: nested function
// literals are handled when the inspector reaches them, so sort calls are
// matched within the right function scope.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	inspectShallow(body, func(n ast.Node) {
		if rs, ok := n.(*ast.RangeStmt); ok {
			t := pass.Info.TypeOf(rs.X)
			if isMapType(t) || isChanType(t) {
				ranges = append(ranges, rs)
			}
		}
	})
	for _, rs := range ranges {
		if msg := mapRangeFinding(pass.Info, body, rs); msg != "" {
			pass.Reportf(rs.Pos(), "%s", msg)
		}
	}
}

// mapRangeFinding returns the diagnostic message for one map- or
// channel-range loop, or "" when the loop is fine. Shared by determinism
// (reporting in place) and transdeterminism (treating the loop as a taint
// source for callers).
func mapRangeFinding(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt) string {
	var appends bool
	var sink string
	inspectShallowFrom(rs.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if sink == "" {
				sink = "a channel send"
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && isBuiltin(info, fun) {
					appends = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if name == "Emit" || name == "Output" {
					if sink == "" {
						sink = name + " on a mapreduce sink"
					}
				}
				if pn := pkgNameOf(info, fun.X); pn != nil && pn.Imported().Path() == "fmt" &&
					(name == "Fprintf" || name == "Fprintln" || name == "Fprint") {
					if sink == "" {
						sink = "fmt." + name + " output"
					}
				}
			}
		}
	})
	if isChanType(info.TypeOf(rs.X)) {
		// Receiving from a channel yields results in completion order;
		// appending inside the loop bakes that order into the output.
		// Task-indexed writes don't append, and a sort re-establishes a
		// deterministic order.
		if appends && !sortFollows(info, fnBody, rs) {
			return "channel receive order is completion order; append inside the loop merges results nondeterministically — write into a task-indexed slice or sort after the loop"
		}
		return ""
	}
	if sink != "" {
		return "map iteration order reaches " + sink + "; iterate sorted keys instead"
	}
	if appends && !sortFollows(info, fnBody, rs) {
		return "map iteration appends to a slice with no sort after the loop; sort before the data is consumed"
	}
	return ""
}

// sortFollows reports whether a sort.* or slices.Sort* call appears after
// the range statement within the same function body.
func sortFollows(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	inspectShallowFrom(fnBody, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		pn := pkgNameOf(info, sel.X)
		if pn == nil {
			return
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
			found = true
		}
	})
	return found
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// inspectShallow walks a function body without descending into nested
// function literals.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// inspectShallowFrom is inspectShallow for any subtree root.
func inspectShallowFrom(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
