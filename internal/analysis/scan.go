package analysis

import (
	"crypto/sha256"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
)

// This file is the lightweight module scan behind Vet's cache fast path
// and -diff mode: a sweep over every package directory in the module that
// reads and hashes source bytes and parses import clauses only — no
// type-checking, no full ASTs. It yields exactly the inputs cache keys
// are made of (file names, content hashes, the module-local import
// graph), so a warm no-change run can prove every requested package's
// entry current and emit its cached diagnostics without ever paying for
// a type-checked load. The scan's keys and the engine's keys (computed
// from loaded packages in cache.go) hash identical inputs by
// construction: same sorted base names, same bytes, same path-sorted
// direct deps.

// scanPkg is one package as the scan sees it.
type scanPkg struct {
	// Path is the import path, derived exactly as the Loader derives it.
	Path string
	// Dir is the absolute package directory.
	Dir   string
	files []srcFile
	// deps are the direct module-local imports, path order, matching
	// Package.Imports.
	deps []*scanPkg
	key  string
}

// moduleScan is the scanned module package graph.
type moduleScan struct {
	root   string
	byPath map[string]*scanPkg
	byDir  map[string]*scanPkg
	// pkgs is path-sorted.
	pkgs []*scanPkg
}

// scanModule sweeps every package directory in the loader's module.
func scanModule(l *Loader) (*moduleScan, error) {
	dirs, err := l.ResolveDirs([]string{"./..."})
	if err != nil {
		return nil, err
	}
	ms := &moduleScan{root: l.Root, byPath: map[string]*scanPkg{}, byDir: map[string]*scanPkg{}}
	fset := token.NewFileSet()
	depPaths := map[*scanPkg][]string{}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		sp := &scanPkg{Path: l.importPathFor(dir), Dir: dir}
		seenDep := map[string]bool{}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			sp.files = append(sp.files, srcFile{name: name, sum: sha256.Sum256(src)})
			f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
			if err != nil {
				// The full load will surface the parse error; the scan just
				// keeps the content hash (which the broken bytes perturb).
				continue
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if (path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")) && !seenDep[path] {
					seenDep[path] = true
					depPaths[sp] = append(depPaths[sp], path)
				}
			}
		}
		if len(sp.files) == 0 {
			continue
		}
		slices.SortFunc(sp.files, func(a, b srcFile) int { return strings.Compare(a.name, b.name) })
		ms.byPath[sp.Path] = sp
		ms.byDir[sp.Dir] = sp
		ms.pkgs = append(ms.pkgs, sp)
	}
	slices.SortFunc(ms.pkgs, func(a, b *scanPkg) int { return strings.Compare(a.Path, b.Path) })
	for _, sp := range ms.pkgs {
		paths := depPaths[sp]
		slices.Sort(paths)
		for _, p := range paths {
			if dep := ms.byPath[p]; dep != nil {
				sp.deps = append(sp.deps, dep)
			}
		}
	}
	return ms, nil
}

// computeKeys fills every package's cache key for one salt, bottom-up.
func (ms *moduleScan) computeKeys(salt string) {
	visiting := map[*scanPkg]bool{}
	var keyOf func(sp *scanPkg) string
	keyOf = func(sp *scanPkg) string {
		if sp.key != "" {
			return sp.key
		}
		if visiting[sp] {
			// Import cycle — illegal Go, the full load will report it; any
			// stable value keeps the scan terminating.
			return "cycle"
		}
		visiting[sp] = true
		depKeys := make([]string, 0, len(sp.deps))
		for _, d := range sp.deps {
			depKeys = append(depKeys, keyOf(d))
		}
		delete(visiting, sp)
		sp.key = cacheKey(salt, sp.Path, sp.files, depKeys)
		return sp.key
	}
	for _, sp := range ms.pkgs {
		keyOf(sp)
	}
}

// withReverseDeps expands a set of changed directories to the directories
// of every transitive reverse dependent — the exact invalidation frontier
// of a change under source-transitive cache keys.
func (ms *moduleScan) withReverseDeps(changedDirs map[string]bool) map[string]bool {
	dependents := map[*scanPkg][]*scanPkg{}
	for _, sp := range ms.pkgs {
		for _, d := range sp.deps {
			dependents[d] = append(dependents[d], sp)
		}
	}
	out := map[string]bool{}
	var queue []*scanPkg
	for _, sp := range ms.pkgs {
		if changedDirs[sp.Dir] {
			out[sp.Dir] = true
			queue = append(queue, sp)
		}
	}
	for len(queue) > 0 {
		sp := queue[0]
		queue = queue[1:]
		for _, d := range dependents[sp] {
			if !out[d.Dir] {
				out[d.Dir] = true
				queue = append(queue, d)
			}
		}
	}
	return out
}

// changedGoDirs lists the absolute directories holding non-test .go files
// that differ from ref — committed, staged, unstaged, and untracked alike
// — by asking git. Deleted files count: their package's contents changed.
func changedGoDirs(root, ref string) (map[string]bool, error) {
	dirs := map[string]bool{}
	collect := func(out []byte) {
		for _, line := range strings.Split(string(out), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || !strings.HasSuffix(line, ".go") || strings.HasSuffix(line, "_test.go") {
				continue
			}
			dirs[filepath.Join(root, filepath.FromSlash(filepath.Dir(line)))] = true
		}
	}
	// git diff prints paths relative to the repository top-level, which is
	// NOT the -C directory when the module sits inside a larger repo;
	// --relative rescopes (and limits) the output to the module root, so
	// joining onto root is correct in both layouts. git ls-files needs no
	// flag: it lists the cwd subtree with cwd-relative paths by default.
	diff := exec.Command("git", "-C", root, "diff", "--name-only", "--relative", ref, "--")
	out, err := diff.Output()
	if err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %w", ref, err)
	}
	collect(out)
	untracked := exec.Command("git", "-C", root, "ls-files", "--others", "--exclude-standard")
	out, err = untracked.Output()
	if err != nil {
		return nil, fmt.Errorf("git ls-files --others: %w", err)
	}
	collect(out)
	return dirs, nil
}
