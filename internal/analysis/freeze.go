package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the publish-then-freeze layer shared by the immutpublish
// and servebudget analyzers: source directives, detection of the atomic
// publication primitives, the per-function publication-event scan, and a
// Run-wide FuncFlow cache.
//
// The serving story (ROADMAP item 1) rests on one idiom: build an
// artifact, publish it once — a Store into an atomic.Pointer, a send on a
// channel to another goroutine, a return from an annotated constructor —
// and from then on read it lock-free from many goroutines. The moment of
// publication is a freeze line: everything reachable from the published
// value (its heap region, approximated by the flow layer's may-alias
// roots) must never be written again. freeze.go finds the publication
// points; immutpublish.go finds the writes that cross them.
//
// Two directives extend the //falcon: comment namespace:
//
//	//falcon:frozen   on a constructor: values it returns are published
//	                  at every call site — callers must treat the result
//	                  as immutable from the assignment on.
//	//falcon:hotpath  on a function: it is part of the lock-free serving
//	                  path and must satisfy the servebudget contract (no
//	                  lock acquisition, no channel operations, no blocking
//	                  crowd/mapreduce submission, no per-call allocation),
//	                  transitively through everything it calls.

// hasFalconDirective reports whether the declaration's doc comment carries
// a //falcon:<name> directive.
func hasFalconDirective(decl *ast.FuncDecl, name string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text, ok := strings.CutPrefix(c.Text, "//falcon:")
		if !ok {
			continue
		}
		if fields := strings.Fields(text); len(fields) > 0 && fields[0] == name {
			return true
		}
	}
	return false
}

// flowCacheKey is the sentinel identity for the Run-wide FuncFlow cache.
// Building a function's dataflow summary is the dominant cost of a flow
// pass and the summary is identical for every analyzer, so mrpurity and
// immutpublish share one cache through Pass.sharedState instead of each
// re-walking every body (which is what keeps the suite inside the 2x
// vet-overhead budget as flow consumers accumulate).
var flowCacheKey = &Analyzer{Name: "flowcache"}

// funcFlowOf returns the (possibly cached) dataflow summary for one
// declaration.
func funcFlowOf(pass *Pass, decl *ast.FuncDecl) *FuncFlow {
	cache := pass.sharedState(flowCacheKey, func() any {
		return map[*ast.FuncDecl]*FuncFlow{}
	}).(map[*ast.FuncDecl]*FuncFlow)
	fl, ok := cache[decl]
	if !ok {
		fl = NewFuncFlow(pass.Info, decl.Body)
		cache[decl] = fl
	}
	return fl
}

// atomicCellName returns "Pointer" or "Value" when t is that sync/atomic
// cell type (possibly behind a pointer), "" otherwise.
func atomicCellName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	if name := obj.Name(); name == "Pointer" || name == "Value" {
		return name
	}
	return ""
}

// callCacheKey is the sentinel identity for the Run-wide call-site cache.
var callCacheKey = &Analyzer{Name: "callcache"}

// callSite is one call expression with its statically resolved callees.
type callSite struct {
	call    *ast.CallExpr
	callees []*types.Func
}

// callsOf returns the (possibly cached) call sites of one declaration, in
// source order, with callees pre-resolved. The interprocedural fixpoint
// passes re-visit every function's calls once per round; walking the AST
// and re-resolving callees each time is what this cache avoids.
func callsOf(pass *Pass, decl *ast.FuncDecl) []callSite {
	cache := pass.sharedState(callCacheKey, func() any {
		return map[*ast.FuncDecl][]callSite{}
	}).(map[*ast.FuncDecl][]callSite)
	sites, ok := cache[decl]
	if !ok {
		sites = []callSite{}
		eachCall(decl, func(call *ast.CallExpr) {
			sites = append(sites, callSite{call: call, callees: pass.Graph.Callees(pass.Info, call)})
		})
		cache[decl] = sites
	}
	return sites
}

// isAtomicCell reports whether t is sync/atomic.Pointer[T] or
// sync/atomic.Value (possibly behind a pointer) — the cells whose Store
// publishes and whose Load republishes on the reader side.
func isAtomicCell(t types.Type) bool {
	return atomicCellName(t) != ""
}

// atomicCellMethod matches a method call on an atomic cell, returning the
// cell expression and method name ("" when expr is no such call).
func atomicCellMethod(info *types.Info, expr ast.Expr) (cell ast.Expr, method string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	if !isAtomicCell(info.TypeOf(sel.X)) {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// pubEvent is one publication point inside a function: the position after
// which the published roots are frozen.
type pubEvent struct {
	// roots are the may-alias roots of the published value.
	roots map[*types.Var]bool
	pos   token.Pos
	// what describes the publication for diagnostics ("atomic store",
	// "channel send", "frozen constructor result", "atomic load").
	what string
	// cell and cellVar describe the mechanically fixable shape
	// cell.Store(&cellVar) with cellVar a map: a later single-pair map
	// write to cellVar can be rewritten into clone-then-swap.
	cell    ast.Expr
	cellVar *types.Var
}

// addRoots merges an expression's may-alias roots into the event.
func (ev *pubEvent) addRoots(fl *FuncFlow, e ast.Expr) {
	for _, r := range fl.Roots(fl.rootVar(e)) {
		ev.roots[r] = true
	}
}

// publications scans one declaration for publication events, in source
// order. The freeze line is positional: a write textually after the
// publication is treated as post-publication (a loop that writes early
// and publishes late re-freezes each iteration and is out of model).
func publications(pass *Pass, decl *ast.FuncDecl, fl *FuncFlow) []pubEvent {
	var events []pubEvent
	newEvent := func(pos token.Pos, what string) *pubEvent {
		events = append(events, pubEvent{roots: map[*types.Var]bool{}, pos: pos, what: what})
		return &events[len(events)-1]
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			cell, method := atomicCellMethod(pass.Info, n)
			var published ast.Expr
			switch method {
			case "Store", "Swap":
				if len(n.Args) > 0 {
					published = n.Args[0]
				}
			case "CompareAndSwap":
				if len(n.Args) > 1 {
					published = n.Args[1]
				}
			}
			if published == nil {
				return true
			}
			ev := newEvent(n.Pos(), "atomic store")
			ev.addRoots(fl, published)
			// The fixable clone-then-swap shape: cell.Store(&m) with m a map
			// and cell an atomic.Pointer — the rewrite dereferences
			// cell.Load(), which an atomic.Value cannot offer (its Load
			// returns any), so Value cells get the diagnostic without a fix.
			if u, ok := ast.Unparen(published).(*ast.UnaryExpr); ok && u.Op == token.AND && method == "Store" &&
				atomicCellName(pass.Info.TypeOf(cell)) == "Pointer" {
				if id, ok := ast.Unparen(u.X).(*ast.Ident); ok && isMapType(pass.Info.TypeOf(id)) {
					ev.cell = cell
					ev.cellVar = fl.varOf(id)
				}
			}
		case *ast.SendStmt:
			// A channel send hands the value to another goroutine; writes
			// after the send race with the receiver.
			newEvent(n.Pos(), "channel send").addRoots(fl, n.Value)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if what := publishingRHS(pass, n.Rhs[i]); what != "" {
					newEvent(n.Pos(), what).addRoots(fl, lhs)
				}
			}
		}
		return true
	})
	return events
}

// publishingRHS classifies an assignment right-hand side that publishes
// the left-hand side: a direct atomic Load/Swap (the reader half of the
// idiom — a loaded value is someone else's published state), or a call to
// a //falcon:frozen constructor (its own package's directive or an
// imported FreezeFact). Returns the event description, or "".
func publishingRHS(pass *Pass, rhs ast.Expr) string {
	e := ast.Unparen(rhs)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	if _, method := atomicCellMethod(pass.Info, e); method == "Load" || method == "Swap" {
		return "atomic load"
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	for _, callee := range pass.Graph.Callees(pass.Info, call) {
		if f, ok := pass.ImportObjectFact(callee); ok {
			if ff, ok := f.(*FreezeFact); ok && ff.Frozen {
				return "frozen constructor result"
			}
		}
	}
	return ""
}

// freezeViolation reports whether a write of this kind mutates the heap
// region the root refers to (rather than rebinding the name). Unlike the
// mapreduce purity contract, element writes and appends are violations
// here: a published slice's backing array is frozen too.
func freezeViolation(k WriteKind) bool {
	switch k {
	case WriteMapIndex, WriteSliceIndex, WriteDeref, WriteField, WriteAppend:
		return true
	}
	return false
}
