package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// LockOrder guards the crowd-latency-masking scheduler's liveness. The
// whole point of the executor (PR 2) is to keep machine work running
// inside crowd-wait time; a goroutine that blocks while holding a mutex —
// on a crowd Label* wait, a mapreduce Run/Execute submission, a channel,
// or any of locksafety's known-blocking stdlib calls — serializes every
// other goroutine that needs the lock behind a wait that is supposed to
// be masked. And two goroutines that take the same locks in opposite
// orders deadlock outright under the right schedule, which the -race gate
// cannot see at all (deadlocks are not data races).
//
// The analyzer interprets every function with the flow-sensitive
// lock-region walker (flow.go): sequential statements thread the held-set
// through, branches re-join by intersection, deferred unlocks pin the
// lock to function end, and goroutine bodies get their own empty held
// set. On top of that, two interprocedural structures, propagated as
// LockFacts through the call graph in dependency order:
//
//   - a lock-acquisition graph over type-based lock identities
//     (pkg.Type.field for locks reached through a receiver or parameter,
//     pkg.var for package-level locks; function-local mutexes are
//     excluded). An edge A→B means "B was acquired while A was held",
//     possibly through any number of calls; a cycle in the graph is a
//     potential deadlock, reported at the acquisition that closes it.
//     The graph is closure-scoped: each package's pass collects its own
//     edge observations, and the engine replays them on top of the edge
//     streams published by the package's dependency closure (see
//     replayLockOrder). A cycle whose halves live in two packages neither
//     of which imports the other is reported in the first package (in
//     dependency order) whose closure contains both halves: the replay
//     runs cycle detection while seeding dependency streams, suppressing
//     cycles already contained in a single direct import's graph, and the
//     run-level merge drops exact-duplicate diagnostics — so the cycle
//     surfaces exactly once. This is the price of making every package's
//     verdict a pure function of its own closure, which the parallel
//     scheduler and the fact cache both require.
//   - a blocking summary: a function that (transitively) performs a
//     blocking operation is flagged at any call site where a lock is
//     held, with the chain down to the blocking primitive.
//
// locksafety keeps its per-block copied-lock and same-function checks;
// lockorder is the cross-function, flow-sensitive half of the story.
var LockOrder = &Analyzer{
	Name:  "lockorder",
	Doc:   "builds a cross-function lock-acquisition graph: flags acquisition cycles and blocking work (crowd/MR waits, channels, stdlib) reachable while a mutex is held",
	Facts: true,
	Run:   runLockOrder,
}

// LockFact summarizes a function's lock behavior for callers: the global
// lock identities it (transitively) acquires, and the first blocking
// operation it (transitively) performs, each with a witness chain.
type LockFact struct {
	Acquires []AcquiredLock

	Blocks      string
	BlocksChain []string
}

// AcquiredLock is one global lock identity a function may take, with the
// call chain from the function down to the acquisition.
type AcquiredLock struct {
	ID    string
	Chain []string
}

func (*LockFact) AFact() {}

// LockEdge is one "To was acquired while From was held" observation, the
// unit of the per-package edge stream the engine replays (and the cache
// persists) in place of the old Run-wide shared graph. Pos is the file
// position of the acquisition that first produced the edge, recorded as a
// token.Position (not a token.Pos) so it survives the cache boundary,
// where FileSet offsets from the producing process mean nothing: a
// dependent that joins two sibling streams into a cycle anchors its
// report here.
type LockEdge struct {
	From, To string
	Pos      token.Position
}

// lockEdgeKey is a LockEdge's graph identity — the endpoints without the
// witness position.
type lockEdgeKey struct {
	from, to string
}

// lockEdgeObs is a LockEdge still carrying the position that produced it,
// so the replay can report a cycle at the acquisition that closed it.
type lockEdgeObs struct {
	from, to string
	pos      token.Pos
}

// loAcquire / loCall / loBlock are the walker observations one function
// yields.
type loAcquire struct {
	id     string
	global bool
	pos    token.Pos
	held   []string
	async  bool
}

type loCall struct {
	call  *ast.CallExpr
	pos   token.Pos
	held  []string
	async bool
}

type loBlock struct {
	desc  string
	pos   token.Pos
	held  []string
	async bool
}

type loSummary struct {
	fd       funcWithDecl
	acquires []loAcquire
	calls    []loCall
	blocks   []loBlock
}

func runLockOrder(pass *Pass) {
	var sums []*loSummary
	for _, fd := range declaredFuncs(pass) {
		sums = append(sums, summarizeLocks(pass, fd))
	}

	// Facts fixpoint: acquires and blocking summaries grow monotonically
	// through call edges.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			if exportLockFact(pass, s) {
				changed = true
			}
		}
	}

	// Reports and edge observations, now that facts are stable. Cycle
	// detection happens later, in the engine's replayLockOrder, on top of
	// the dependency closure's published edge streams.
	for _, s := range sums {
		collectLockOrder(pass, s)
	}
}

// summarizeLocks interprets one declaration's lock regions.
func summarizeLocks(pass *Pass, fd funcWithDecl) *loSummary {
	s := &loSummary{fd: fd}
	// Channel operations in a select's comm clauses are the select's
	// alternatives, not independent blocking points; the SelectStmt event
	// (delivered before its clauses) accounts for them.
	var commRanges [][2]token.Pos
	inComm := func(p token.Pos) bool {
		for _, r := range commRanges {
			if p >= r[0] && p < r[1] {
				return true
			}
		}
		return false
	}
	walkLockFlow(pass, fd.decl.Body, lockFlowEvents{
		acquire: func(id string, global bool, pos token.Pos, held heldSet, async bool) {
			s.acquires = append(s.acquires, loAcquire{id: id, global: global, pos: pos, held: held.sortedIDs(), async: async})
		},
		node: func(n ast.Node, held heldSet, async bool) {
			switch n := n.(type) {
			case *ast.SendStmt:
				if !inComm(n.Pos()) {
					s.blocks = append(s.blocks, loBlock{desc: "channel send", pos: n.Pos(), held: held.sortedIDs(), async: async})
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !inComm(n.Pos()) {
					s.blocks = append(s.blocks, loBlock{desc: "channel receive", pos: n.Pos(), held: held.sortedIDs(), async: async})
				}
			case *ast.SelectStmt:
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						commRanges = append(commRanges, [2]token.Pos{cc.Comm.Pos(), cc.Comm.End()})
					}
				}
				if !selectHasDefault(n) {
					s.blocks = append(s.blocks, loBlock{desc: "select", pos: n.Pos(), held: held.sortedIDs(), async: async})
				}
			case *ast.CallExpr:
				s.calls = append(s.calls, loCall{call: n, pos: n.Pos(), held: held.sortedIDs(), async: async})
				if desc := stdBlockingCall(pass, n); desc != "" {
					s.blocks = append(s.blocks, loBlock{desc: desc, pos: n.Pos(), held: held.sortedIDs(), async: async})
				}
			}
		},
	})
	return s
}

// selectHasDefault reports whether the select can fall through without
// blocking.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// stdBlockingCall matches the locksafety stdlib blocking tables
// syntactically (standard-library functions carry no facts).
func stdBlockingCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if pn := pkgNameOf(pass.Info, sel.X); pn != nil {
		if blockingFuncs[pn.Imported().Path()][name] {
			return pn.Imported().Name() + "." + name
		}
		return ""
	}
	t := pass.Info.TypeOf(sel.X)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if blockingMethods[key][name] {
		return "(" + key + ")." + name
	}
	return ""
}

// blockingSurface matches the simulation's own blocking entry points by
// shape: crowd Label* waits and the mapreduce Run/Execute family. These
// seed Blocks facts in their defining package so callers anywhere in the
// closure inherit them.
func blockingSurface(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Name() {
	case "crowd":
		if strings.HasPrefix(fn.Name(), "Label") {
			if recv := funcSig(fn).Recv(); recv != nil && namedTypeName(recv.Type()) == "Crowd" {
				return "crowd wait " + fn.Name()
			}
		}
	case "mapreduce":
		if mapreduceBlocking[fn.Name()] {
			return "mapreduce job submission " + fn.Name()
		}
	}
	return ""
}

// exportLockFact merges one function's direct and call-derived lock
// summary into the facts store.
func exportLockFact(pass *Pass, s *loSummary) bool {
	var cur *LockFact
	if f, ok := pass.ImportObjectFact(s.fd.obj); ok {
		cur = f.(*LockFact)
	}
	next := &LockFact{}
	if cur != nil {
		next.Acquires = append(next.Acquires, cur.Acquires...)
		next.Blocks, next.BlocksChain = cur.Blocks, cur.BlocksChain
	}
	self := s.fd.obj.FullName()
	addAcquire := func(id string, chain []string) bool {
		for _, a := range next.Acquires {
			if a.ID == id {
				return false
			}
		}
		next.Acquires = append(next.Acquires, AcquiredLock{ID: id, Chain: chain})
		return true
	}
	changed := false

	// The function may itself be a blocking surface.
	if next.Blocks == "" {
		if desc := blockingSurface(s.fd.obj); desc != "" {
			next.Blocks, next.BlocksChain = desc, []string{self}
			changed = true
		}
	}
	// Direct observations. Async (goroutine-body) events stay out of the
	// fact: a caller does not wait on them and does not hold their locks.
	for _, a := range s.acquires {
		if a.global && !a.async && addAcquire(a.id, []string{self}) {
			changed = true
		}
	}
	if next.Blocks == "" {
		for _, b := range s.blocks {
			if !b.async {
				next.Blocks, next.BlocksChain = b.desc, []string{self}
				changed = true
				break
			}
		}
	}
	// Call-derived: callee facts flow up, unless suppressed at the edge.
	for _, c := range s.calls {
		if c.async || pass.Allowed(c.pos, "lockorder") {
			continue
		}
		for _, callee := range pass.Graph.Callees(pass.Info, c.call) {
			f, ok := pass.ImportObjectFact(callee)
			if !ok {
				continue
			}
			fact := f.(*LockFact)
			for _, a := range fact.Acquires {
				if addAcquire(a.ID, append([]string{self}, a.Chain...)) {
					changed = true
				}
			}
			if next.Blocks == "" && fact.Blocks != "" {
				next.Blocks = fact.Blocks
				next.BlocksChain = append([]string{self}, fact.BlocksChain...)
				changed = true
			}
		}
	}

	if !changed {
		return false
	}
	pass.ExportObjectFact(s.fd.obj, next)
	return true
}

// collectLockOrder emits one function's direct diagnostics (blocking
// while held, recursive acquisition) and appends its acquisition-edge
// observations to the pass's package-local stream.
func collectLockOrder(pass *Pass, s *loSummary) {
	// Direct blocking while a lock is held (goroutine bodies included:
	// the goroutine itself holds the lock it blocks under).
	for _, b := range s.blocks {
		if len(b.held) > 0 {
			pass.Reportf(b.pos, "%s while holding %s; release the lock around blocking work",
				b.desc, strings.Join(b.held, ", "))
		}
	}

	// Acquisition edges from direct lock operations.
	for _, a := range s.acquires {
		if !a.global {
			continue
		}
		for _, h := range a.held {
			if !globalLockID(h) {
				continue
			}
			observeLockEdge(pass, h, a.id, a.pos)
		}
	}

	// Call sites: blocking callees while held, and edges for every lock
	// the callee transitively acquires.
	for _, c := range s.calls {
		if pass.Allowed(c.pos, "lockorder") {
			continue
		}
		for _, callee := range pass.Graph.Callees(pass.Info, c.call) {
			var fact *LockFact
			if f, ok := pass.ImportObjectFact(callee); ok {
				fact = f.(*LockFact)
			}
			if fact == nil {
				continue
			}
			if fact.Blocks != "" && len(c.held) > 0 {
				chain := append([]string{s.fd.obj.FullName()}, fact.BlocksChain...)
				pass.ReportChain(c.pos, chain,
					"call to %s blocks (%s) while holding %s; chain: %s",
					callee.FullName(), fact.Blocks, strings.Join(c.held, ", "), strings.Join(chain, " -> "))
			}
			for _, a := range fact.Acquires {
				for _, h := range c.held {
					if !globalLockID(h) {
						continue
					}
					observeLockEdge(pass, h, a.ID, c.pos)
				}
			}
		}
	}
}

// globalLockID reports whether a held-set identity participates in the
// cross-function graph (function-local mutexes do not).
func globalLockID(id string) bool {
	return !strings.HasPrefix(id, "local:") && !strings.HasPrefix(id, "expr:")
}

// observeLockEdge records "to was acquired while from was held" for the
// engine's replay. Recursive acquisition needs no graph at all and is
// reported immediately.
func observeLockEdge(pass *Pass, from, to string, pos token.Pos) {
	if from == to {
		pass.ReportChain(pos, []string{from, to},
			"acquiring %s while already holding it; recursive locking deadlocks sync mutexes", from)
		return
	}
	if pass.lockObs != nil {
		*pass.lockObs = append(*pass.lockObs, lockEdgeObs{from: from, to: to, pos: pos})
	}
}

// replayLockOrder builds one package's closure-scoped acquisition graph.
// The dependency closure's published edge streams seed it in DepOrder,
// with cycle detection at each novel edge: a seeded edge that closes a
// cycle is reported here — canonicalized, anchored at the recorded
// acquisition position of the cycle's lexicographically first edge —
// unless the whole cycle already sits inside a single direct import's
// graph, in which case that import's own replay (or one deeper still)
// already reported it. This is how a cycle split across two sibling
// packages, neither importing the other, surfaces: in the first package
// whose closure joins both streams. Then the package's own observations
// are replayed in collection order with the same detection. Each edge
// enters the graph (and can report) at most once, at the first
// observation that produces it; the returned stream is the package's own
// novel edges in that order — what its reverse dependents replay and the
// cache persists. The guarantee, inductively: if any cycle exists in a
// package's merged graph, at least one cycle diagnostic was reported by
// some task in its closure. Cycles are found the same way regardless of
// which packages ran live and which came from cache, which is what keeps
// cached runs byte-identical to cold ones; sibling cycles seen from
// several joining packages collapse to one report in the run-level
// duplicate-dropping merge (see mergeDiagnostics).
func replayLockOrder(pass *Pass, depEdges []LockEdge, depGraphs [][]LockEdge, own []lockEdgeObs) []LockEdge {
	edges := map[string]map[string]bool{}
	add := func(from, to string) bool {
		if edges[from][to] {
			return false
		}
		if edges[from] == nil {
			edges[from] = map[string]bool{}
		}
		edges[from][to] = true
		return true
	}
	depSets := make([]map[lockEdgeKey]bool, len(depGraphs))
	for i, g := range depGraphs {
		depSets[i] = make(map[lockEdgeKey]bool, len(g))
		for _, e := range g {
			depSets[i][lockEdgeKey{e.From, e.To}] = true
		}
	}
	// seededPos remembers each seeded edge's witness position: the report
	// below anchors at the canonical cycle's first edge, which need not be
	// the edge whose arrival closed the cycle.
	seededPos := map[lockEdgeKey]token.Position{}
	for _, e := range depEdges {
		if !add(e.From, e.To) {
			continue
		}
		seededPos[lockEdgeKey{e.From, e.To}] = e.Pos
		cycle := lockPath(edges, e.To, e.From)
		if cycle == nil {
			continue
		}
		full := append([]string{e.From}, cycle...)
		if cycleInOneDep(depSets, full) {
			continue
		}
		// Canonicalize so every joining package — whatever order its
		// closure seeded the streams in — emits the byte-identical
		// diagnostic, which the run-level merge then collapses to one.
		canon := canonicalCycle(full)
		pass.reportAtPosition(seededPos[lockEdgeKey{canon[0], canon[1]}], canon,
			"acquiring %s while holding %s closes a lock-order cycle across dependency packages: %s; a parallel goroutine taking them in the printed order deadlocks",
			canon[1], canon[0], strings.Join(canon, " -> "))
	}
	var stream []LockEdge
	for _, o := range own {
		if !add(o.from, o.to) {
			continue
		}
		stream = append(stream, LockEdge{From: o.from, To: o.to, Pos: pass.Fset.Position(o.pos)})
		if cycle := lockPath(edges, o.to, o.from); cycle != nil {
			full := append([]string{o.from}, cycle...)
			pass.ReportChain(o.pos, full,
				"acquiring %s while holding %s closes a lock-order cycle: %s; a parallel goroutine taking them in the printed order deadlocks",
				o.to, o.from, strings.Join(full, " -> "))
		}
	}
	return stream
}

// canonicalCycle rotates a closed lock-ID walk (first element repeated
// last) so it starts — and ends — at its lexicographically smallest lock.
// The walk is simple (lockPath's DFS never revisits a node), so the
// rotation is unique: every package that detects the same cycle renders
// the same chain, message, and witness edge.
func canonicalCycle(full []string) []string {
	nodes := full[:len(full)-1]
	min := 0
	for i, id := range nodes {
		if id < nodes[min] {
			min = i
		}
	}
	canon := make([]string, 0, len(full))
	canon = append(canon, nodes[min:]...)
	canon = append(canon, nodes[:min]...)
	return append(canon, nodes[min])
}

// cycleInOneDep reports whether every edge of the cycle (a closed lock-ID
// walk, first element repeated last) is present in a single direct
// dependency's acquisition graph — the proof that the dependency's own
// replay already reported it.
func cycleInOneDep(depSets []map[lockEdgeKey]bool, cycle []string) bool {
deps:
	for _, set := range depSets {
		for i := 0; i+1 < len(cycle); i++ {
			if !set[lockEdgeKey{cycle[i], cycle[i+1]}] {
				continue deps
			}
		}
		return true
	}
	return false
}

// lockPath finds a deterministic path from -> to in the acquisition
// graph, or nil.
func lockPath(edges map[string]map[string]bool, from, to string) []string {
	seen := map[string]bool{from: true}
	var dfs func(cur string, path []string) []string
	dfs = func(cur string, path []string) []string {
		if cur == to {
			return path
		}
		var nexts []string
		for n := range edges[cur] {
			nexts = append(nexts, n)
		}
		slices.Sort(nexts)
		for _, n := range nexts {
			if seen[n] {
				continue
			}
			seen[n] = true
			if p := dfs(n, append(path, n)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(from, []string{from})
}
